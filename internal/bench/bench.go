// Package bench is the native benchmark harness: it drives the paper's
// workloads (§5 user-space and §6 kernel) against real locks on real
// goroutines, following the paper's run protocol — fixed measurement
// intervals, fixed-role threads, and the median of several independent
// runs per data point.
//
// Native runs exercise the true implementations end to end; on small hosts
// they measure per-operation overhead rather than cross-socket scalability
// (use internal/sim for the scalability shapes). Intervals default to a
// fraction of the paper's to keep full sweeps tractable and are
// flag-configurable in the cmd wrappers.
package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bravolock/bravo/internal/xrand"
)

// Point is one (x, value) sample; X is a thread count unless a workload
// documents otherwise.
type Point struct {
	X     int
	Value float64
}

// Series maps a configuration name (usually a lock) to its curve.
type Series map[string][]Point

// Config is the shared run protocol.
type Config struct {
	// Interval is the measurement interval per run (the paper uses 10s for
	// user-space figures; defaults here are smaller).
	Interval time.Duration
	// Runs is the number of independent runs per data point; the reported
	// value is the median (the paper uses 7).
	Runs int
	// Threads is the X axis.
	Threads []int
}

// DefaultConfig returns a laptop-scale protocol: 200ms intervals, median of
// 3, the paper's user-space thread counts.
func DefaultConfig() Config {
	return Config{
		Interval: 200 * time.Millisecond,
		Runs:     3,
		Threads:  []int{1, 2, 5, 10, 20, 50},
	}
}

// Median reports the median of one metric over cfg.Runs executions of run.
func (cfg Config) Median(run func() float64) float64 {
	n := cfg.Runs
	if n < 1 {
		n = 1
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = run()
	}
	sort.Float64s(vals)
	return vals[n/2]
}

// RunWorkers launches n workers, lets them run for the interval, and
// returns the summed per-worker operation counts. Workers must poll stop.
func RunWorkers(n int, interval time.Duration, worker func(id int, stop *atomic.Bool) uint64) uint64 {
	var stop atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	var ready sync.WaitGroup
	start := make(chan struct{})
	ready.Add(n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ready.Done()
			<-start
			total.Add(worker(id, &stop))
		}(i)
	}
	ready.Wait()
	close(start)
	time.Sleep(interval)
	stop.Store(true)
	wg.Wait()
	return total.Load()
}

// workSink defeats dead-code elimination of synthetic work loops.
var workSink atomic.Uint64

// Work executes n abstract units of CPU work (the benchmarks' "advance a
// local RNG n steps" / "count down a local variable" loops).
func Work(rng *xrand.XorShift64, n int) {
	var x uint64
	for i := 0; i < n; i++ {
		x = rng.Next()
	}
	if x == 0 {
		workSink.Add(1)
	}
}

// WriteSeries renders a Series as an aligned table, one row per thread
// count, one column per lock — the same layout as the paper's figures'
// underlying data.
func WriteSeries(w io.Writer, title, xlabel, unit string, s Series) {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# %s (%s)\n", title, unit)
	fmt.Fprintf(w, "%-10s", xlabel)
	for _, n := range names {
		fmt.Fprintf(w, " %16s", n)
	}
	fmt.Fprintln(w)
	if len(names) == 0 {
		return
	}
	for i := range s[names[0]] {
		fmt.Fprintf(w, "%-10d", s[names[0]][i].X)
		for _, n := range names {
			fmt.Fprintf(w, " %16.1f", s[n][i].Value)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// WritePoints renders a single curve (e.g. Figure 1's ratio-vs-locks).
func WritePoints(w io.Writer, title, xlabel, unit string, pts []Point) {
	fmt.Fprintf(w, "# %s (%s)\n", title, unit)
	fmt.Fprintf(w, "%-10s %16s\n", xlabel, unit)
	for _, p := range pts {
		fmt.Fprintf(w, "%-10d %16.4f\n", p.X, p.Value)
	}
	fmt.Fprintln(w)
}
