package bench

import (
	"strings"
	"testing"
	"time"

	_ "github.com/bravolock/bravo/internal/locks/all"
)

func TestReadLatencyCompareProducesSamples(t *testing.T) {
	cfg := Config{Interval: 20 * time.Millisecond, Runs: 1}
	r, err := ReadLatencyCompare("bravo-ba", 2, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.HandleOpsPerSec <= 0 || r.PlainOpsPerSec <= 0 || r.SeqOpsPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", r)
	}
	if r.HandleP50Ns <= 0 || r.PlainP50Ns <= 0 || r.SeqP50Ns <= 0 {
		t.Fatalf("no latency percentiles: %+v", r)
	}
	if r.HandleP50LEPlain != (r.HandleP50Ns <= r.PlainP50Ns) {
		t.Fatalf("comparison flag inconsistent: %+v", r)
	}
	if r.SeqP50LEHandle != (r.SeqP50Ns <= r.HandleP50Ns) {
		t.Fatalf("seq comparison flag inconsistent: %+v", r)
	}
	// Pure readers: the counter never moves, so no optimistic read can fail.
	if r.SeqFallbackRate != 0 {
		t.Fatalf("fallbacks with zero writers: %+v", r)
	}
}

// TestReadLatencyCompareWithWriters pins the write-ratio axis: with 10%
// writers the seq column still measures, and the fallback rate stays a
// rate (a failed validation falls back once, it does not retry forever).
func TestReadLatencyCompareWithWriters(t *testing.T) {
	cfg := Config{Interval: 20 * time.Millisecond, Runs: 1}
	r, err := ReadLatencyCompare("bravo-go", 2, 0.10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.WriteRatio != 0.10 {
		t.Fatalf("write ratio not recorded: %+v", r)
	}
	if r.SeqOpsPerSec <= 0 || r.SeqP50Ns <= 0 {
		t.Fatalf("seq column empty under writers: %+v", r)
	}
	if r.SeqFallbackRate < 0 || r.SeqFallbackRate > 1 {
		t.Fatalf("fallback rate out of range: %+v", r)
	}
}

func TestReadLatencyCompareRejectsNonBravoLocks(t *testing.T) {
	cfg := Config{Interval: time.Millisecond, Runs: 1}
	if _, err := ReadLatencyCompare("ba", 1, 0, cfg); err == nil {
		t.Fatal("plain substrate accepted by readlatency")
	}
}

func TestRunMetaStamped(t *testing.T) {
	m := NewRunMeta()
	if m.GOMAXPROCS < 1 || m.NumCPU < 1 {
		t.Fatalf("CPU shape missing: %+v", m)
	}
	if m.Commit == "" {
		t.Fatal("commit empty (want hash or \"unknown\")")
	}
	if !strings.Contains(m.GoVersion, "go") {
		t.Fatalf("go version missing: %+v", m)
	}
	if _, err := time.Parse(time.RFC3339, m.Timestamp); err != nil {
		t.Fatalf("timestamp not RFC3339: %v", err)
	}
}

func TestShardedKVReportCarriesMeta(t *testing.T) {
	rep := NewShardedKVReport(Config{Interval: time.Second, Runs: 1}, nil)
	if rep.Meta.Timestamp == "" || rep.Meta.Commit == "" {
		t.Fatalf("shardedkv report missing run metadata: %+v", rep.Meta)
	}
	lat := NewHandleLatencyReport(Config{Interval: time.Second, Runs: 1}, nil)
	if lat.Benchmark != "readlatency" || lat.Meta.Timestamp == "" {
		t.Fatalf("readlatency report missing run metadata: %+v", lat)
	}
}

// TestCompareGuardOverhead pins the guard-cost comparison: row matching by
// (lock, goroutines, write_ratio), the 2% p50 gate in both directions, the
// geometric mean over mean-latency ratios, and the no-shared-rows error.
func TestCompareGuardOverhead(t *testing.T) {
	row := func(lock string, g int, wr float64, p50 int64, mean float64) HandleLatencyResult {
		return HandleLatencyResult{Lock: lock, Goroutines: g, WriteRatio: wr, HandleP50Ns: p50, HandleMeanNs: mean}
	}
	base := HandleLatencyReport{
		Meta: RunMeta{Commit: "abc123"},
		Results: []HandleLatencyResult{
			row("bravo-ba", 1, 0, 64, 40),
			row("bravo-ba", 4, 0, 64, 50),
			row("bravo-go", 1, 0.1, 128, 90),
		},
	}
	cur := HandleLatencyReport{Results: []HandleLatencyResult{
		row("bravo-ba", 1, 0, 64, 42),
		row("bravo-ba", 4, 0, 64, 48),
		row("bravo-go", 1, 0.1, 128, 90),
		row("bravo-go", 16, 0.1, 128, 95), // no baseline row: skipped
	}}
	g, err := CompareGuardOverhead(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if g.BaselineCommit != "abc123" || g.RowsCompared != 3 {
		t.Fatalf("comparison shape wrong: %+v", g)
	}
	if g.MaxHandleP50Ratio != 1.0 || !g.HandleP50Within2Pct {
		t.Fatalf("equal p50 buckets must pass the 2%% gate: %+v", g)
	}
	// (42/40 * 48/50 * 90/90)^(1/3) = 1.00265...
	if g.GeoMeanHandleMeanRatio < 1.002 || g.GeoMeanHandleMeanRatio > 1.003 {
		t.Fatalf("geomean mean ratio = %v, want ~1.0027", g.GeoMeanHandleMeanRatio)
	}

	// One row crossing a histogram bucket fails the gate.
	cur.Results[1].HandleP50Ns = 128
	g, err = CompareGuardOverhead(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if g.HandleP50Within2Pct || g.MaxHandleP50Ratio != 2.0 {
		t.Fatalf("bucket regression must fail the gate: %+v", g)
	}

	// No shared rows is an error, not a vacuous pass.
	if _, err := CompareGuardOverhead(HandleLatencyReport{}, cur); err == nil {
		t.Fatal("empty baseline produced a comparison")
	}
}
