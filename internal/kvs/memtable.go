// Package kvs provides the repository's key-value engines: the substrates
// of the paper's rocksdb experiments — a memtable with striped GetLock
// reader-writer locks and in-place updates (the readwhilewriting benchmark
// of §5.5) and a single-lock hash table cache (the persistent-cache
// hash_table_bench of §5.6) — plus Sharded, the scale-out engine that
// stripes the keyspace across per-shard locks (see sharded.go).
//
// The paper ran rocksdb with --inplace_update_support=1 and
// --inplace_update_num_locks=1: readers of ::Get take GetLock for read on
// every lookup, and with one stripe every thread hammers the same
// reader-writer lock — precisely the centralized-reader-indicator bottleneck
// BRAVO removes. Both structures are parameterized by the lock constructor,
// which is how the benchmarks interpose different locks, LD_PRELOAD-style.
package kvs

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/bravolock/bravo/internal/hash"
	"github.com/bravolock/bravo/internal/rwl"
)

// Memtable is a rocksdb-style in-memory table with in-place value updates
// guarded by striped reader-writer locks.
type Memtable struct {
	stripes []stripe
	mask    uint64
}

type stripe struct {
	lock rwl.RWLock
	data map[uint64][]byte
	// exp tracks PutTTL deadlines (see ttlMap). Memtable expiry is
	// lazy-only (no reaper): expired entries stay resident but invisible
	// until overwritten. Guarded by lock.
	exp ttlMap
}

// NewMemtable returns a memtable with the given number of GetLock stripes
// (a power of two; the paper's configuration uses 1).
func NewMemtable(stripes int, mkLock rwl.Factory) (*Memtable, error) {
	if stripes <= 0 || stripes&(stripes-1) != 0 {
		return nil, fmt.Errorf("kvs: stripe count %d is not a positive power of two", stripes)
	}
	m := &Memtable{stripes: make([]stripe, stripes), mask: uint64(stripes - 1)}
	for i := range m.stripes {
		m.stripes[i] = stripe{lock: mkLock(), data: make(map[uint64][]byte)}
	}
	return m, nil
}

func (m *Memtable) stripeOf(key uint64) *stripe {
	return &m.stripes[hash.Mix64(key)&m.mask]
}

// Get returns the value stored under key, taking the stripe's GetLock for
// read (the rocksdb ::Get path the paper instruments). The value is copied
// out while the lock is held — as rocksdb's MemTable::Get copies into the
// caller's string — since in-place Put mutates the stored buffer.
func (m *Memtable) Get(key uint64) ([]byte, bool) {
	return m.GetInto(key, nil)
}

// GetInto is Get with caller-managed memory: the value is appended to
// buf[:0] and the filled slice returned (buf[:0] itself on a miss), so a
// reused buffer makes reads allocation-free.
func (m *Memtable) GetInto(key uint64, buf []byte) ([]byte, bool) {
	s := m.stripeOf(key)
	tok := s.lock.RLock()
	v, ok := s.data[key]
	if ok && s.exp.expired(key) {
		ok = false // lazy expiry, inclusive at the deadline
	}
	out := buf[:0]
	if ok {
		out = append(out, v...)
	}
	s.lock.RUnlock(tok)
	return out, ok
}

// Put performs an in-place update (or insert) of key, taking the stripe's
// GetLock for write. A plain Put clears any TTL a previous PutTTL attached.
func (m *Memtable) Put(key uint64, value []byte) {
	m.put(key, value, 0)
}

// PutTTL is Put with a time-to-live: the key expires — becomes invisible
// to Get — once ttl elapses, inclusively at the deadline. Memtable expiry
// is lazy-only; the sharded engine adds incremental reaping (Sharded.Reap).
func (m *Memtable) PutTTL(key uint64, value []byte, ttl time.Duration) {
	m.put(key, value, ttlDeadline(ttl))
}

func (m *Memtable) put(key uint64, value []byte, deadline int64) {
	s := m.stripeOf(key)
	s.lock.Lock()
	// In-place update semantics: reuse the existing buffer when it fits,
	// as rocksdb's inplace_update_support does.
	if old, ok := s.data[key]; ok && len(old) >= len(value) {
		copy(old, value)
		s.data[key] = old[:len(value)]
	} else {
		buf := make([]byte, len(value))
		copy(buf, value)
		s.data[key] = buf
	}
	s.exp.set(key, deadline)
	s.lock.Unlock()
}

// Len returns the total number of keys, taking every stripe lock for read.
func (m *Memtable) Len() int {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		tok := s.lock.RLock()
		n += len(s.data)
		s.lock.RUnlock(tok)
	}
	return n
}

// EncodeValue builds the fixed-format value used by the benchmarks: an
// 8-byte counter the writer bumps in place.
func EncodeValue(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// DecodeValue parses a benchmark value.
func DecodeValue(b []byte) (uint64, bool) {
	if len(b) != 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b), true
}
