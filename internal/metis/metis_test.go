package metis

import (
	"bytes"
	"strings"
	"testing"

	"github.com/bravolock/bravo/internal/rwsem"
)

func TestGenerateCorpusDeterministic(t *testing.T) {
	a := GenerateCorpus(1000, 42)
	b := GenerateCorpus(1000, 42)
	if !bytes.Equal(a, b) {
		t.Fatal("corpus not deterministic in seed")
	}
	if words := len(bytes.Fields(a)); words != 1000 {
		t.Fatalf("corpus has %d words, want 1000", words)
	}
}

func TestSplitCorpusPreservesWords(t *testing.T) {
	corpus := GenerateCorpus(503, 7)
	want := len(bytes.Fields(corpus))
	for _, n := range []int{1, 2, 3, 8, 16} {
		splits := SplitCorpus(corpus, n)
		got := 0
		for _, s := range splits {
			got += len(bytes.Fields(s))
		}
		if got != want {
			t.Fatalf("splits=%d: %d words, want %d", n, got, want)
		}
	}
}

func TestWCCountsExactly(t *testing.T) {
	as := NewStockAS()
	corpus := []byte("lock reader lock writer lock bias reader")
	res := WC(as, corpus, 2)
	if res.Values["lock"] != 3 || res.Values["reader"] != 2 || res.Values["writer"] != 1 || res.Values["bias"] != 1 {
		t.Fatalf("counts wrong: %v", res.Values)
	}
	if len(res.Keys) != 4 {
		t.Fatalf("distinct keys = %d, want 4", len(res.Keys))
	}
	if !strings.HasPrefix(strings.Join(res.Keys, ","), "bias,lock") {
		t.Fatalf("keys not sorted: %v", res.Keys)
	}
}

func TestWCMatchesAcrossKernelsAndParallelism(t *testing.T) {
	corpus := GenerateCorpus(20000, 99)
	ref := WC(NewStockAS(), corpus, 1)
	for _, workers := range []int{2, 4, 8} {
		stock := WC(NewStockAS(), corpus, workers)
		bravo := WC(NewBravoAS(), corpus, workers)
		for _, k := range ref.Keys {
			if stock.Values[k] != ref.Values[k] {
				t.Fatalf("stock workers=%d: %q = %d, want %d", workers, k, stock.Values[k], ref.Values[k])
			}
			if bravo.Values[k] != ref.Values[k] {
				t.Fatalf("bravo workers=%d: %q = %d, want %d", workers, k, bravo.Values[k], ref.Values[k])
			}
		}
	}
}

func TestWCGeneratesMMTraffic(t *testing.T) {
	as := NewStockAS()
	corpus := GenerateCorpus(50000, 3)
	WC(as, corpus, 4)
	faults, mmaps, _ := as.Stats()
	if mmaps == 0 {
		t.Fatal("wc performed no simulated mmaps")
	}
	if faults == 0 {
		t.Fatal("wc performed no simulated page faults")
	}
	// Metis is read-heavy on mmap_sem: faults must dominate mmaps.
	if faults < mmaps*4 {
		t.Fatalf("expected fault-dominated mix, got faults=%d mmaps=%d", faults, mmaps)
	}
}

func TestWrmemTotals(t *testing.T) {
	const workers, splits, wordsPer = 4, 8, 2000
	res := Wrmem(NewBravoAS(), workers, splits, wordsPer)
	var total uint64
	for _, k := range res.Keys {
		total += res.Values[k]
	}
	if total != splits*wordsPer {
		t.Fatalf("total indexed words = %d, want %d", total, splits*wordsPer)
	}
}

func TestWrmemDeterministicAcrossParallelism(t *testing.T) {
	a := Wrmem(NewStockAS(), 1, 4, 500)
	b := Wrmem(NewBravoAS(), 4, 4, 500)
	if len(a.Keys) != len(b.Keys) {
		t.Fatalf("key counts differ: %d vs %d", len(a.Keys), len(b.Keys))
	}
	for _, k := range a.Keys {
		if a.Values[k] != b.Values[k] {
			t.Fatalf("%q: %d vs %d", k, a.Values[k], b.Values[k])
		}
	}
}

func TestAllocatorFaultsPages(t *testing.T) {
	as := NewStockAS()
	task := rwsem.NewTask()
	alloc := NewAllocator(as, task)
	// Allocate 10 pages' worth in small pieces; every page must fault
	// exactly once.
	for i := 0; i < 40; i++ {
		buf := alloc.Alloc(1024)
		if len(buf) != 1024 {
			t.Fatalf("alloc returned %d bytes", len(buf))
		}
	}
	faults, mmaps, _ := as.Stats()
	if mmaps != 1 {
		t.Fatalf("mmaps = %d, want 1 (one chunk)", mmaps)
	}
	if faults != 10 {
		t.Fatalf("faults = %d, want 10 (40KiB touched)", faults)
	}
}

func TestAllocatorGrowsChunks(t *testing.T) {
	as := NewStockAS()
	alloc := NewAllocator(as, rwsem.NewTask())
	for i := 0; i < 3; i++ {
		alloc.Alloc(chunkSize) // each fills a whole chunk
	}
	_, mmaps, _ := as.Stats()
	if mmaps != 3 {
		t.Fatalf("mmaps = %d, want 3", mmaps)
	}
}

func TestAllocatorCopy(t *testing.T) {
	alloc := NewAllocator(NewStockAS(), rwsem.NewTask())
	src := []byte("bravo")
	dst := alloc.Copy(src)
	if !bytes.Equal(src, dst) {
		t.Fatal("copy mismatch")
	}
	src[0] = 'x'
	if dst[0] == 'x' {
		t.Fatal("copy aliases source")
	}
}
