package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	_ "github.com/bravolock/bravo/internal/locks/all"
)

func TestClusterPointValidation(t *testing.T) {
	cfg := Config{Interval: time.Millisecond, Runs: 1}
	if _, err := ClusterPoint("bravo-go", 0, 2, 1, 2, 16, 32, cfg); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if _, err := ClusterPoint("bravo-go", 2, 2, 0, 2, 16, 32, cfg); err == nil {
		t.Fatal("zero followers accepted (no failover pool)")
	}
	if _, err := ClusterPoint("bravo-go", 2, 2, 1, 2, 1, 32, cfg); err == nil {
		t.Fatal("batch < 2 accepted")
	}
	if _, err := ClusterPoint("no-such-lock", 2, 2, 1, 2, 16, 32, cfg); err == nil {
		t.Fatal("unknown lock accepted")
	}
}

// TestClusterSweepSmoke runs a tiny partitioned deployment end to end:
// routed storm traffic, a graceful failover of every partition with
// recovery-time-to-first-write, and a JSON-marshalable report carrying the
// partition axis.
func TestClusterSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a primaries+followers deployment per point")
	}
	cfg := Config{Interval: 60 * time.Millisecond, Runs: 1}
	results, err := ClusterSweep([]string{"bravo-go"}, []int{1, 2}, 2, 1, 2, 16, 32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("sweep returned %d results, want 2", len(results))
	}
	for _, r := range results {
		if r.WriteKeysPerSec <= 0 || r.ReadsPerSec <= 0 {
			t.Fatalf("degenerate result %+v", r)
		}
		if r.Failovers != r.Partitions || r.RecoveryMaxMS <= 0 {
			t.Fatalf("failover fields %+v, want one measured failover per partition", r)
		}
	}
	var buf bytes.Buffer
	rep := NewClusterReport(cfg, 16, results)
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ClusterReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmark != "cluster" || len(back.Results) != 2 || back.Results[1].Partitions != 2 {
		t.Fatalf("report round-trip %+v", back)
	}
	WriteClusterTable(&buf, results)
}
