package fairrw_test

import (
	"testing"

	"github.com/bravolock/bravo/internal/lockcheck"
	"github.com/bravolock/bravo/internal/locks/fairrw"
	"github.com/bravolock/bravo/internal/rwl"
)

// The shared battery, like every lock package. The FIFO-specific probes
// (arrival order, wraparound) live in fairrw_test.go.

func mk() rwl.RWLock { return new(fairrw.Lock) }

func TestExclusion(t *testing.T) {
	lockcheck.Exclusion(t, mk, 4, 2, 2000)
}

func TestExclusionWriteHeavy(t *testing.T) {
	lockcheck.Exclusion(t, mk, 2, 4, 1500)
}

func TestTryExclusion(t *testing.T) {
	lockcheck.TryExclusion(t, mk, 6, 1500)
}

func TestReadersConcurrent(t *testing.T) {
	lockcheck.ReadersConcurrent(t, mk())
}

func TestWriterExcludesReaders(t *testing.T) {
	lockcheck.WriterExcludesReaders(t, mk())
}

func TestFIFOAdmission(t *testing.T) {
	// Ticket order: a reader arriving while a writer waits queues behind it.
	lockcheck.WaitingWriterBlocksReaders(t, mk())
}
