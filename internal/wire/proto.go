// Package wire is the engine's pipelined binary protocol: the front-end
// that turns one network batch into one lock acquisition per shard, end to
// end. HTTP/1.x parses text, allocates headers, and serializes one op per
// round trip; the wire protocol frames fixed-width binary requests with
// the same length-prefixed CRC envelope the WAL and the replication stream
// already use (internal/frame), supports multi-op batches (MGET/MPUT/
// MDELETE) that the server feeds straight into the engine's shard-grouping
// pass, and pipelines: a client may have any number of requests in flight
// on one connection, matched to responses by request id.
//
// Message layout (integers little-endian; the envelope is
// internal/frame's `u32 len | u32 crc32c | payload`):
//
//	request  := u8 version(=1) | u8 op | u8 flags | u64 id
//	            [u64 minLSN]  when flagMinLSN    (read-your-writes token)
//	            [u64 epoch]   when flagEpoch     (the token's fencing epoch;
//	                                              requires flagMinLSN)
//	            [u64 ttlNanos] when flagTTL
//	            body
//	body     := GET/DELETE:   u64 key
//	            PUT:          u64 key | u32 vlen | vlen bytes
//	            MGET/MDELETE: u32 count | count × u64 key
//	            MPUT:         u32 count | count × (u64 key | u32 vlen | vlen bytes)
//	            CAS:          u64 key | optval old | optval new
//	            TXN:          u32 ncond | ncond × (u64 key | optval)
//	                          | u32 nops | nops × txnop
//	            FLUSH/STATS:  empty
//	optval   := u8 present(0|1) | present? (u32 vlen | vlen bytes)
//	txnop    := u8 kind(1=put 2=putttl 3=delete) | u64 key
//	            | kind=put:    u32 vlen | vlen bytes
//	            | kind=putttl: u64 ttlNanos(>0) | u32 vlen | vlen bytes
//
//	response := u8 version(=1) | u8 op | u8 status | u8 flags | u64 id
//	            [u32 mlen | mlen bytes]  when status != OK (detail message)
//	            [body]                   when status == OK
//	            [u32 n | n × (u32 shard | u64 lsn)]  when flagLSNs
//	            ... or n × (u32 shard | u64 lsn | u64 epoch) when flagEpochs
//	                too (cluster responses; requires flagLSNs)
//	body     := GET:          u32 vlen | vlen bytes
//	            MGET:         u32 count | count × (u8 present | present? u32 vlen | vlen bytes)
//	            MPUT/MDELETE/FLUSH: u32 applied
//	            STATS:        u32 jlen | jlen bytes (the /stats JSON document)
//	            CAS:          u8 swapped(0|1)
//	            TXN:          u8 committed(0|1) | committed=0: u64 mismatchKey
//	            PUT/DELETE:   empty
//
// The trailing shard/LSN pairs are the binary form of the HTTP front-end's
// X-Commit-Shard/X-Commit-Lsn headers (and /mput's "lsns" map): the commit
// LSN of every shard a write touched, which a client hands back as a
// request's MinLSN to read its writes from a follower. Replication
// semantics survive the transport change byte for byte.
//
// Decoders are strict — every field must parse and the payload must end
// exactly at the last one — and never panic, whatever the bytes
// (FuzzWireFrame). Framing errors split the same way the WAL's do:
// Incomplete means wait for more bytes, Corrupt means the connection is
// unrecoverable and closes.
package wire

import (
	"encoding/binary"
	"time"

	"github.com/bravolock/bravo/internal/frame"
)

// Version is the protocol version every message leads with.
const Version = 1

// DefaultMaxFrame bounds an accepted frame's total length (header +
// payload): a shade over the HTTP front-end's 16MB batch cap, so any batch
// admissible there is admissible here, while a malicious length header
// cannot make a peer buffer gigabytes. frame.MaxPayload is the codec's
// absolute bound; this is the wire's admission cap on top of it.
const DefaultMaxFrame = 17 << 20

// Op identifies a request's operation; responses echo it.
type Op byte

// Operations. The multi-op batches (MGET/MPUT/MDELETE) are the protocol's
// point: the server applies each through the engine's shard-grouping pass,
// so one wire batch is one lock acquisition — and one bias revocation —
// per shard it touches.
const (
	OpGet     Op = 1
	OpPut     Op = 2
	OpDelete  Op = 3
	OpMGet    Op = 4
	OpMPut    Op = 5
	OpMDelete Op = 6
	OpFlush   Op = 7
	OpStats   Op = 8
	// OpCas is single-key compare-and-swap; OpTxn is a conditional atomic
	// batch (preconditions on current values plus writes, applied
	// all-or-nothing under the engine's two-phase locking). Both follow the
	// HTTP front-end's POST /cas and /txn semantics byte for byte.
	OpCas Op = 9
	OpTxn Op = 10
)

// String names op for errors and stats.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDelete:
		return "DELETE"
	case OpMGet:
		return "MGET"
	case OpMPut:
		return "MPUT"
	case OpMDelete:
		return "MDELETE"
	case OpFlush:
		return "FLUSH"
	case OpStats:
		return "STATS"
	case OpCas:
		return "CAS"
	case OpTxn:
		return "TXN"
	}
	return "Op(?)"
}

// Status is a response's outcome, mirroring the HTTP front-end's statuses.
type Status byte

const (
	// StatusOK: the operation succeeded; the body is op-specific.
	StatusOK Status = 0
	// StatusNotFound: GET miss or DELETE of an absent key (the HTTP 404).
	StatusNotFound Status = 1
	// StatusBadRequest: the request decoded but is semantically invalid
	// (e.g. ttl+async together, MinLSN against a volatile server).
	StatusBadRequest Status = 2
	// StatusReadOnly: a write sent to a follower (the HTTP 403).
	StatusReadOnly Status = 3
	// StatusConflict: a MinLSN token the serving side cannot cover (the
	// HTTP 409) — retry, or read the primary.
	StatusConflict Status = 4
	// StatusTooLarge: a value over the server's per-value cap (HTTP 413).
	StatusTooLarge Status = 5
	// StatusUnsupported: an op the server does not recognize — the one
	// response a server sends for a frame it could parse but not serve.
	StatusUnsupported Status = 6
	// StatusUnavailable: the partition owning the key is mid-failover (its
	// primary is fenced and a follower is being promoted) — retry shortly
	// (the HTTP 503).
	StatusUnavailable Status = 7
)

// String names st for errors.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not found"
	case StatusBadRequest:
		return "bad request"
	case StatusReadOnly:
		return "read-only"
	case StatusConflict:
		return "conflict"
	case StatusTooLarge:
		return "too large"
	case StatusUnsupported:
		return "unsupported"
	case StatusUnavailable:
		return "unavailable"
	}
	return "Status(?)"
}

// Request flag bits.
const (
	reqFlagTTL    = 1 << 0
	reqFlagAsync  = 1 << 1
	reqFlagMinLSN = 1 << 2
	// reqFlagEpoch accompanies reqFlagMinLSN on cluster reads: a u64 fencing
	// epoch follows the minLSN, scoping the token to the primary generation
	// that issued it. Requires reqFlagMinLSN (an epoch without a token is
	// meaningless and rejected).
	reqFlagEpoch = 1 << 3
)

// Response flag bits.
const (
	respFlagLSNs = 1 << 0
	// respFlagEpochs widens the trailing commit-LSN list from (shard, lsn)
	// pairs to (shard, lsn, epoch) triples — the cluster's fenced
	// read-your-writes token. Requires respFlagLSNs.
	respFlagEpochs = 1 << 1
)

// Request is one decoded (or to-be-encoded) wire request.
type Request struct {
	Op Op
	// ID is the pipelining correlation token: the client picks it, the
	// response echoes it. Conn manages IDs itself; hand-built requests
	// choose their own.
	ID uint64
	// Async marks a PUT for the shard write queue (the HTTP ?async=1).
	Async bool
	// TTL, when positive, attaches an expiry to PUT/MPUT.
	TTL time.Duration
	// MinLSN, when nonzero, is a read-your-writes token: every shard the
	// read touches must have applied at least this LSN.
	MinLSN uint64
	// Epoch, when nonzero, scopes MinLSN to the fencing epoch of the cluster
	// primary that issued it. Only meaningful with MinLSN set; a cluster
	// front-end uses it to adjudicate tokens issued before a failover.
	Epoch uint64

	Key    uint64   // GET/PUT/DELETE/CAS
	Value  []byte   // PUT (aliases the decode buffer)
	Keys   []uint64 // MGET/MPUT/MDELETE
	Values [][]byte // MPUT, parallel to Keys (alias the decode buffer)

	// Old and New are CAS's compared and replacement values: a nil Old
	// means "only if absent", a nil New means "delete on match". Empty
	// non-nil values are distinct from nil on the wire (a presence byte).
	Old []byte
	New []byte
	// Conds and TxnOps carry TXN's preconditions and writes.
	Conds  []TxnCond
	TxnOps []TxnOp
}

// TxnCond is one TXN precondition: the key's current value must equal
// Value (nil Value = the key must be absent) for the batch to commit.
type TxnCond struct {
	Key   uint64
	Value []byte // nil = must be absent (aliases the decode buffer)
}

// TxnOp is one TXN write: a delete, or a put with an optional expiry.
type TxnOp struct {
	Del   bool
	Key   uint64
	Value []byte        // put payload (aliases the decode buffer)
	TTL   time.Duration // put expiry; 0 = none, must be positive when set
}

// TXN op kind bytes on the wire.
const (
	txnOpPut    = 1
	txnOpPutTTL = 2
	txnOpDelete = 3
)

// ShardLSN is one shard's commit LSN in a response: the read-your-writes
// token, binary form of the X-Commit-Shard/X-Commit-Lsn header pair. In
// cluster responses Epoch carries the issuing partition's fencing epoch
// (respFlagEpochs); single-primary responses leave it zero.
type ShardLSN struct {
	Shard uint32
	LSN   uint64
	Epoch uint64
}

// Response is one decoded (or to-be-encoded) wire response.
type Response struct {
	Op     Op
	ID     uint64
	Status Status
	// Msg is the non-OK detail (the HTTP error body).
	Msg string
	// Value is a GET hit's bytes (aliases the decode buffer).
	Value []byte
	// Values answers MGET, parallel to the request's keys; nil marks
	// absent (entries alias the decode buffer).
	Values [][]byte
	// Applied is MPUT's applied count, MDELETE's removed count, or FLUSH's
	// flushed count.
	Applied uint32
	// Stats is STATS's JSON document (the /stats response body).
	Stats []byte
	// Swapped answers CAS; Committed answers TXN, with Mismatch carrying
	// the first failing precondition's key when Committed is false.
	Swapped   bool
	Committed bool
	Mismatch  uint64
	// LSNs carries the commit LSN of every shard a write touched.
	LSNs []ShardLSN
}

// Err converts a non-OK response into an error (nil for OK and for
// StatusNotFound, which is an outcome, not a failure).
func (r *Response) Err() error {
	switch r.Status {
	case StatusOK, StatusNotFound:
		return nil
	}
	return &StatusError{Op: r.Op, Status: r.Status, Msg: r.Msg}
}

// StatusError is a non-OK wire response as an error.
type StatusError struct {
	Op     Op
	Status Status
	Msg    string
}

func (e *StatusError) Error() string {
	if e.Msg == "" {
		return "wire: " + e.Op.String() + ": " + e.Status.String()
	}
	return "wire: " + e.Op.String() + ": " + e.Status.String() + ": " + e.Msg
}

// AppendRequest frames req onto dst and returns the extended slice: one
// ready-to-write wire frame (envelope included). The zero-copy form —
// header reserved, payload built in place, sealed once.
func AppendRequest(dst []byte, req *Request) []byte {
	base := len(dst)
	dst = append(dst, make([]byte, frame.HeaderSize)...)
	flags := byte(0)
	if req.TTL > 0 {
		flags |= reqFlagTTL
	}
	if req.Async {
		flags |= reqFlagAsync
	}
	if req.MinLSN > 0 {
		flags |= reqFlagMinLSN
		if req.Epoch > 0 {
			flags |= reqFlagEpoch
		}
	}
	dst = append(dst, Version, byte(req.Op), flags)
	dst = binary.LittleEndian.AppendUint64(dst, req.ID)
	if flags&reqFlagMinLSN != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, req.MinLSN)
	}
	if flags&reqFlagEpoch != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, req.Epoch)
	}
	if flags&reqFlagTTL != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(req.TTL))
	}
	switch req.Op {
	case OpGet, OpDelete:
		dst = binary.LittleEndian.AppendUint64(dst, req.Key)
	case OpPut:
		dst = binary.LittleEndian.AppendUint64(dst, req.Key)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(req.Value)))
		dst = append(dst, req.Value...)
	case OpMGet, OpMDelete:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(req.Keys)))
		for _, k := range req.Keys {
			dst = binary.LittleEndian.AppendUint64(dst, k)
		}
	case OpMPut:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(req.Keys)))
		for i, k := range req.Keys {
			dst = binary.LittleEndian.AppendUint64(dst, k)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(req.Values[i])))
			dst = append(dst, req.Values[i]...)
		}
	case OpCas:
		dst = binary.LittleEndian.AppendUint64(dst, req.Key)
		dst = appendOptValue(dst, req.Old)
		dst = appendOptValue(dst, req.New)
	case OpTxn:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(req.Conds)))
		for _, c := range req.Conds {
			dst = binary.LittleEndian.AppendUint64(dst, c.Key)
			dst = appendOptValue(dst, c.Value)
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(req.TxnOps)))
		for _, o := range req.TxnOps {
			switch {
			case o.Del:
				dst = append(dst, txnOpDelete)
				dst = binary.LittleEndian.AppendUint64(dst, o.Key)
			case o.TTL > 0:
				dst = append(dst, txnOpPutTTL)
				dst = binary.LittleEndian.AppendUint64(dst, o.Key)
				dst = binary.LittleEndian.AppendUint64(dst, uint64(o.TTL))
				dst = binary.LittleEndian.AppendUint32(dst, uint32(len(o.Value)))
				dst = append(dst, o.Value...)
			default:
				dst = append(dst, txnOpPut)
				dst = binary.LittleEndian.AppendUint64(dst, o.Key)
				dst = binary.LittleEndian.AppendUint32(dst, uint32(len(o.Value)))
				dst = append(dst, o.Value...)
			}
		}
	}
	frame.Seal(dst[base:])
	return dst
}

// appendOptValue encodes a presence-tagged value: nil is absent, anything
// else (the empty value included) is present with its bytes.
func appendOptValue(dst, v []byte) []byte {
	if v == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
	return append(dst, v...)
}

// decodeOptValue parses one presence-tagged value at off. Strict: the
// presence byte must be 0 or 1. An absent value decodes to nil; a present
// empty one to a non-nil empty slice.
func decodeOptValue(p []byte, off int) ([]byte, int, bool) {
	if len(p)-off < 1 {
		return nil, 0, false
	}
	present := p[off]
	off++
	if present == 0 {
		return nil, off, true
	}
	if present != 1 || len(p)-off < 4 {
		return nil, 0, false
	}
	vlen := int(binary.LittleEndian.Uint32(p[off:]))
	off += 4
	if vlen < 0 || vlen > len(p)-off {
		return nil, 0, false
	}
	return p[off : off+vlen : off+vlen], off + vlen, true
}

// DecodeRequest parses one request payload (the frame body, after
// frame.Split). Strict: every field must parse and the payload must end
// exactly at the last one. It never panics, whatever the bytes.
func DecodeRequest(p []byte) (Request, bool) {
	var req Request
	if len(p) < 3+8 || p[0] != Version {
		return req, false
	}
	req.Op = Op(p[1])
	flags := p[2]
	// Unknown flag bits are rejected, not ignored: silently dropping them
	// would make a request mean something other than what its sender
	// encoded (and break decode→encode canonical stability).
	if flags&^(reqFlagTTL|reqFlagAsync|reqFlagMinLSN|reqFlagEpoch) != 0 {
		return req, false
	}
	if flags&reqFlagEpoch != 0 && flags&reqFlagMinLSN == 0 {
		// An epoch scopes a token; an epoch without one is not a canonical
		// encoding.
		return req, false
	}
	req.ID = binary.LittleEndian.Uint64(p[3:])
	off := 11
	if flags&reqFlagMinLSN != 0 {
		if len(p)-off < 8 {
			return req, false
		}
		req.MinLSN = binary.LittleEndian.Uint64(p[off:])
		off += 8
		if req.MinLSN == 0 {
			// The encoder expresses "no token" by clearing the flag; a
			// zero token under the flag is not a canonical encoding.
			return req, false
		}
	}
	if flags&reqFlagEpoch != 0 {
		if len(p)-off < 8 {
			return req, false
		}
		req.Epoch = binary.LittleEndian.Uint64(p[off:])
		off += 8
		if req.Epoch == 0 {
			return req, false // same: the flag promises a nonzero epoch
		}
	}
	if flags&reqFlagTTL != 0 {
		if len(p)-off < 8 {
			return req, false
		}
		req.TTL = time.Duration(binary.LittleEndian.Uint64(p[off:]))
		off += 8
		if req.TTL <= 0 {
			return req, false // same: the flag promises a positive TTL
		}
	}
	req.Async = flags&reqFlagAsync != 0
	switch req.Op {
	case OpGet, OpDelete:
		if len(p)-off != 8 {
			return req, false
		}
		req.Key = binary.LittleEndian.Uint64(p[off:])
	case OpPut:
		if len(p)-off < 12 {
			return req, false
		}
		req.Key = binary.LittleEndian.Uint64(p[off:])
		vlen := int(binary.LittleEndian.Uint32(p[off+8:]))
		off += 12
		if vlen < 0 || vlen != len(p)-off {
			return req, false
		}
		req.Value = p[off : off+vlen]
	case OpMGet, OpMDelete:
		if len(p)-off < 4 {
			return req, false
		}
		count := int(binary.LittleEndian.Uint32(p[off:]))
		off += 4
		if count < 0 || count*8 != len(p)-off {
			return req, false
		}
		req.Keys = make([]uint64, count)
		for i := range req.Keys {
			req.Keys[i] = binary.LittleEndian.Uint64(p[off:])
			off += 8
		}
	case OpMPut:
		if len(p)-off < 4 {
			return req, false
		}
		count := int(binary.LittleEndian.Uint32(p[off:]))
		off += 4
		// Each entry is at least 12 bytes; the bound keeps the
		// preallocation honest on adversarial counts.
		if count < 0 || count > (len(p)-off)/12 {
			return req, false
		}
		req.Keys = make([]uint64, 0, count)
		req.Values = make([][]byte, 0, count)
		for i := 0; i < count; i++ {
			if len(p)-off < 12 {
				return req, false
			}
			key := binary.LittleEndian.Uint64(p[off:])
			vlen := int(binary.LittleEndian.Uint32(p[off+8:]))
			off += 12
			if vlen < 0 || vlen > len(p)-off {
				return req, false
			}
			req.Keys = append(req.Keys, key)
			req.Values = append(req.Values, p[off:off+vlen])
			off += vlen
		}
		if off != len(p) {
			return req, false
		}
	case OpCas:
		if len(p)-off < 8 {
			return req, false
		}
		req.Key = binary.LittleEndian.Uint64(p[off:])
		off += 8
		var ok bool
		if req.Old, off, ok = decodeOptValue(p, off); !ok {
			return req, false
		}
		if req.New, off, ok = decodeOptValue(p, off); !ok {
			return req, false
		}
		if off != len(p) {
			return req, false
		}
	case OpTxn:
		if len(p)-off < 4 {
			return req, false
		}
		ncond := int(binary.LittleEndian.Uint32(p[off:]))
		off += 4
		// Each condition is at least 9 bytes (key + presence byte).
		if ncond < 0 || ncond > (len(p)-off)/9 {
			return req, false
		}
		req.Conds = make([]TxnCond, 0, ncond)
		for i := 0; i < ncond; i++ {
			if len(p)-off < 8 {
				return req, false
			}
			c := TxnCond{Key: binary.LittleEndian.Uint64(p[off:])}
			off += 8
			var ok bool
			if c.Value, off, ok = decodeOptValue(p, off); !ok {
				return req, false
			}
			req.Conds = append(req.Conds, c)
		}
		if len(p)-off < 4 {
			return req, false
		}
		nops := int(binary.LittleEndian.Uint32(p[off:]))
		off += 4
		// Each op is at least 9 bytes (kind + key).
		if nops < 0 || nops > (len(p)-off)/9 {
			return req, false
		}
		req.TxnOps = make([]TxnOp, 0, nops)
		for i := 0; i < nops; i++ {
			if len(p)-off < 9 {
				return req, false
			}
			kind := p[off]
			o := TxnOp{Key: binary.LittleEndian.Uint64(p[off+1:])}
			off += 9
			switch kind {
			case txnOpDelete:
				o.Del = true
			case txnOpPutTTL:
				if len(p)-off < 8 {
					return req, false
				}
				o.TTL = time.Duration(binary.LittleEndian.Uint64(p[off:]))
				off += 8
				if o.TTL <= 0 {
					// Same rule as the request-level TTL flag: the putttl
					// kind promises a positive expiry; zero, negative, and
					// int64-overflowed encodings are not canonical.
					return req, false
				}
				fallthrough
			case txnOpPut:
				if len(p)-off < 4 {
					return req, false
				}
				vlen := int(binary.LittleEndian.Uint32(p[off:]))
				off += 4
				if vlen < 0 || vlen > len(p)-off {
					return req, false
				}
				o.Value = p[off : off+vlen : off+vlen]
				off += vlen
			default:
				return req, false
			}
			req.TxnOps = append(req.TxnOps, o)
		}
		if off != len(p) {
			return req, false
		}
	case OpFlush, OpStats:
		if off != len(p) {
			return req, false
		}
	default:
		return req, false
	}
	return req, true
}

// AppendResponse frames resp onto dst and returns the extended slice.
func AppendResponse(dst []byte, resp *Response) []byte {
	base := len(dst)
	dst = append(dst, make([]byte, frame.HeaderSize)...)
	flags := byte(0)
	if len(resp.LSNs) > 0 {
		flags |= respFlagLSNs
		// Any nonzero epoch widens the whole list to triples: the entries
		// come from one cluster partition, so they share an encoding.
		for _, sl := range resp.LSNs {
			if sl.Epoch > 0 {
				flags |= respFlagEpochs
				break
			}
		}
	}
	dst = append(dst, Version, byte(resp.Op), byte(resp.Status), flags)
	dst = binary.LittleEndian.AppendUint64(dst, resp.ID)
	if resp.Status != StatusOK {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(resp.Msg)))
		dst = append(dst, resp.Msg...)
	} else {
		switch resp.Op {
		case OpGet:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(resp.Value)))
			dst = append(dst, resp.Value...)
		case OpMGet:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(resp.Values)))
			for _, v := range resp.Values {
				if v == nil {
					dst = append(dst, 0)
					continue
				}
				dst = append(dst, 1)
				dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
				dst = append(dst, v...)
			}
		case OpMPut, OpMDelete, OpFlush:
			dst = binary.LittleEndian.AppendUint32(dst, resp.Applied)
		case OpStats:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(resp.Stats)))
			dst = append(dst, resp.Stats...)
		case OpCas:
			b := byte(0)
			if resp.Swapped {
				b = 1
			}
			dst = append(dst, b)
		case OpTxn:
			if resp.Committed {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
				dst = binary.LittleEndian.AppendUint64(dst, resp.Mismatch)
			}
		}
	}
	if flags&respFlagLSNs != 0 {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(resp.LSNs)))
		for _, sl := range resp.LSNs {
			dst = binary.LittleEndian.AppendUint32(dst, sl.Shard)
			dst = binary.LittleEndian.AppendUint64(dst, sl.LSN)
			if flags&respFlagEpochs != 0 {
				dst = binary.LittleEndian.AppendUint64(dst, sl.Epoch)
			}
		}
	}
	frame.Seal(dst[base:])
	return dst
}

// DecodeResponse parses one response payload. Strict, panic-free, same
// contract as DecodeRequest.
func DecodeResponse(p []byte) (Response, bool) {
	var resp Response
	if len(p) < 4+8 || p[0] != Version {
		return resp, false
	}
	resp.Op = Op(p[1])
	resp.Status = Status(p[2])
	flags := p[3]
	if flags&^(respFlagLSNs|respFlagEpochs) != 0 {
		return resp, false // unknown flag bits: see DecodeRequest
	}
	if flags&respFlagEpochs != 0 && flags&respFlagLSNs == 0 {
		return resp, false // epochs widen the LSN list; alone they carry nothing
	}
	resp.ID = binary.LittleEndian.Uint64(p[4:])
	off := 12
	if resp.Status != StatusOK {
		if len(p)-off < 4 {
			return resp, false
		}
		mlen := int(binary.LittleEndian.Uint32(p[off:]))
		off += 4
		if mlen < 0 || mlen > len(p)-off {
			return resp, false
		}
		resp.Msg = string(p[off : off+mlen])
		off += mlen
	} else {
		switch resp.Op {
		case OpGet:
			if len(p)-off < 4 {
				return resp, false
			}
			vlen := int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
			if vlen < 0 || vlen > len(p)-off {
				return resp, false
			}
			resp.Value = p[off : off+vlen]
			off += vlen
		case OpMGet:
			if len(p)-off < 4 {
				return resp, false
			}
			count := int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
			if count < 0 || count > len(p)-off {
				return resp, false
			}
			resp.Values = make([][]byte, count)
			for i := 0; i < count; i++ {
				if len(p)-off < 1 {
					return resp, false
				}
				present := p[off]
				off++
				if present == 0 {
					continue
				}
				if present != 1 || len(p)-off < 4 {
					return resp, false
				}
				vlen := int(binary.LittleEndian.Uint32(p[off:]))
				off += 4
				if vlen < 0 || vlen > len(p)-off {
					return resp, false
				}
				resp.Values[i] = p[off : off+vlen]
				off += vlen
			}
		case OpMPut, OpMDelete, OpFlush:
			if len(p)-off < 4 {
				return resp, false
			}
			resp.Applied = binary.LittleEndian.Uint32(p[off:])
			off += 4
		case OpStats:
			if len(p)-off < 4 {
				return resp, false
			}
			jlen := int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
			if jlen < 0 || jlen > len(p)-off {
				return resp, false
			}
			resp.Stats = p[off : off+jlen]
			off += jlen
		case OpCas:
			if len(p)-off < 1 || p[off] > 1 {
				return resp, false
			}
			resp.Swapped = p[off] == 1
			off++
		case OpTxn:
			if len(p)-off < 1 || p[off] > 1 {
				return resp, false
			}
			resp.Committed = p[off] == 1
			off++
			if !resp.Committed {
				if len(p)-off < 8 {
					return resp, false
				}
				resp.Mismatch = binary.LittleEndian.Uint64(p[off:])
				off += 8
			}
		case OpPut, OpDelete:
		default:
			return resp, false
		}
	}
	if flags&respFlagLSNs != 0 {
		if len(p)-off < 4 {
			return resp, false
		}
		count := int(binary.LittleEndian.Uint32(p[off:]))
		off += 4
		width := 12
		if flags&respFlagEpochs != 0 {
			width = 20
		}
		// count == 0 is rejected too: the encoder expresses "no LSNs" by
		// clearing the flag, so the empty-list-with-flag shape is not a
		// canonical encoding.
		if count <= 0 || count > (len(p)-off)/width {
			return resp, false
		}
		resp.LSNs = make([]ShardLSN, count)
		sawEpoch := false
		for i := range resp.LSNs {
			sl := ShardLSN{
				Shard: binary.LittleEndian.Uint32(p[off:]),
				LSN:   binary.LittleEndian.Uint64(p[off+4:]),
			}
			if width == 20 {
				sl.Epoch = binary.LittleEndian.Uint64(p[off+12:])
				sawEpoch = sawEpoch || sl.Epoch > 0
			}
			resp.LSNs[i] = sl
			off += width
		}
		if width == 20 && !sawEpoch {
			// All-zero epochs under the flag re-encode as pairs — not a
			// canonical triple encoding.
			return resp, false
		}
	}
	return resp, off == len(p)
}
