package model

import (
	"math"
	"testing"
)

func TestCollisionRateFormula(t *testing.T) {
	if got := CollisionRatePerAccess(64, 4096); got != 64.0/8192 {
		t.Fatalf("rate = %v", got)
	}
	if got := CollisionRatePerAccess(10, 0); got != 1 {
		t.Fatalf("degenerate bins should saturate, got %v", got)
	}
}

func TestBirthdayProbabilityKnownValue(t *testing.T) {
	// The classic: 23 people, 365 days → ~50.7%.
	p := BirthdayCollisionProbability(23, 365)
	if p < 0.5 || p > 0.52 {
		t.Fatalf("birthday(23, 365) = %v, want ≈0.507", p)
	}
	if BirthdayCollisionProbability(0, 10) != 0 {
		t.Fatal("no occupants should mean no collision")
	}
	if BirthdayCollisionProbability(11, 10) != 1 {
		t.Fatal("pigeonhole should force collision")
	}
}

func TestBirthdayMonotonic(t *testing.T) {
	prev := 0.0
	for n := 1; n <= 256; n *= 2 {
		p := BirthdayCollisionProbability(n, 4096)
		if p < prev {
			t.Fatalf("probability decreased at n=%d", n)
		}
		prev = p
	}
}

func TestExpectedOccupancyBounds(t *testing.T) {
	if got := ExpectedOccupancy(0, 4096); got != 0 {
		t.Fatalf("occupancy(0) = %v", got)
	}
	got := ExpectedOccupancy(64, 4096)
	if got < 63 || got > 64 {
		// With 64 balls in 4096 bins nearly all land in distinct slots.
		t.Fatalf("occupancy(64, 4096) = %v, want ≈63.5", got)
	}
	// Saturation: occupancy approaches bins as balls → ∞.
	if got := ExpectedOccupancy(1<<20, 64); got < 63.9 {
		t.Fatalf("occupancy should saturate, got %v", got)
	}
}

func TestSimulatedCollisionMatchesFormula(t *testing.T) {
	// The measured per-access collision rate should be near balls/(2·bins).
	// (The lockstep model is an approximation; allow a 2× band.)
	for _, tc := range []struct{ threads, bins int }{
		{16, 512}, {64, 4096}, {128, 1024},
	} {
		measured := SimulateCollisionRate(tc.threads, 8, tc.bins, 2000, 42)
		predicted := CollisionRatePerAccess(tc.threads, tc.bins)
		if measured > predicted*2.5 || measured < predicted/2.5 {
			t.Errorf("threads=%d bins=%d: measured %v vs predicted %v",
				tc.threads, tc.bins, measured, predicted)
		}
	}
}

func TestCollisionRateIndependentOfLockCount(t *testing.T) {
	// The paper's central interference claim: "the collision rate in the
	// readers table is purely a function of just the tablesize and the
	// number of concurrent threads and NOT the number of distinct locks."
	base := SimulateCollisionRate(64, 1, 4096, 4000, 7)
	for _, nlocks := range []int{2, 16, 256, 8192} {
		r := SimulateCollisionRate(64, nlocks, 4096, 4000, 7)
		if math.Abs(r-base) > 0.01 {
			t.Errorf("nlocks=%d: rate %v deviates from base %v", nlocks, r, base)
		}
	}
}

func TestWriterSlowdownBound(t *testing.T) {
	if got := WriterSlowdownBound(9); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("bound(9) = %v, want 0.1 (the paper's ≈10%%)", got)
	}
	if WriterSlowdownBound(0) != 1 {
		t.Fatal("N=0 should allow 100% slow-down")
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{FastReadSaving: 50, RevocationCost: 5000}
	if m.Improvement(100) != 0 {
		t.Fatalf("improvement at break-even should be 0, got %v", m.Improvement(100))
	}
	if m.Improvement(200) <= 0 {
		t.Fatal("improvement above break-even should be positive")
	}
	if got := m.BreakEvenReads(); got != 100 {
		t.Fatalf("break-even = %v, want 100", got)
	}
	if !math.IsInf((CostModel{RevocationCost: 1}).BreakEvenReads(), 1) {
		t.Fatal("zero saving should never break even")
	}
}

func TestRevocationScanNanos(t *testing.T) {
	// The paper: "We observe a scan rate of about 1.1 nanoseconds per
	// element", so a 4096-entry table costs ≈4.5µs per revocation.
	got := RevocationScanNanos(4096, 1.1)
	if got < 4000 || got > 5000 {
		t.Fatalf("scan estimate %vns outside the paper's ballpark", got)
	}
}
