package kvs

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bravolock/bravo/internal/arch"
	"github.com/bravolock/bravo/internal/bias"
	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/hash"
	"github.com/bravolock/bravo/internal/locks/seq"
	"github.com/bravolock/bravo/internal/rwl"
)

// Sharded is a sharded key-value engine: the keyspace is striped across a
// power-of-two number of shards, each an independent hash map guarded by its
// own reader-writer lock from a caller-supplied factory. It is the
// scale-out form of the single-stripe Memtable/HashCache substrates: with a
// BRAVO-wrapped lock per shard the read path is one CAS into the shared
// visible-readers table regardless of shard count, while writers only
// exclude readers of their own shard.
//
// Read paths accept an optional rwl.Reader handle (GetH, GetIntoH,
// MultiGetH): a request pins one identity on its handle and carries it
// across every shard it touches, so each shard lock's steady-state fast
// path is a cached-slot CAS — no per-shard, per-acquisition identity
// derivation or hashing. Handles are single-goroutine; give each worker or
// request its own.
//
// Like Memtable.Get, Sharded.Get and MultiGet copy values out under the
// shard's read lock, so returned values stay valid after the lock is
// released even while writers update buffers in place.
//
// Write batching: MultiPut and MultiDelete group their keys by shard and
// apply each shard's group under a single write-lock acquisition (write
// combining), and PutAsync/Flush (async.go) coalesce writers through a
// per-shard queue. Keys can carry a TTL (PutTTL): expired entries are
// invisible to every read path the instant the deadline passes (lazy
// expiry), and Reap incrementally removes them under the ordinary shard
// write locks — never a stop-the-world scan.
//
// With WithDurability (or OpenSharded) the engine is persistent: every
// write appends to its shard's write-ahead log before applying, each of
// the batches above is one log record — and, under SyncAlways, one fsync
// (group commit; see wal.go) — Checkpoint bounds log growth with per-shard
// snapshots, and reopening the directory recovers snapshot + log tail.
type Sharded struct {
	shards []kvShard
	mask   uint64
	// Durability state (durable.go); zero-valued on volatile engines.
	dir     string
	durable bool
	policy  SyncPolicy
	ckptMu  sync.Mutex
	// reapCursor round-robins Reap's starting shard across calls, so an
	// incremental budget eventually covers every shard.
	reapCursor atomic.Uint64
	// asyncN is the per-shard queue depth at which PutAsync applies the
	// queued batch inline; 0 means DefaultAsyncBatch (see async.go).
	asyncN atomic.Int64
	// seqAttempts is the optimistic read attempt budget per read before
	// falling back to the shard read lock; 0 disables the optimistic path.
	seqAttempts atomic.Int32
}

// kvShard is one stripe: a lock, its store, and its operation counters.
// Shards are sector-padded so one shard's lock and counter traffic does not
// false-share with its neighbours.
//
// The lock is the caller's substrate wrapped in rwl.WrapOptimistic, so
// every write-lock section is bracketed by the shard's sequence counter
// (seqc) — the structural guarantee that every mutation site bumps the
// sequence, which the optimistic read path's validation depends on.
type kvShard struct {
	lock rwl.RWLock
	// hlock is lock's handle-accepting view, nil when the lock does not
	// implement rwl.HandleRWLock. Resolved once at construction so the read
	// hot paths pay a nil check, not a type assertion, per acquisition.
	hlock rwl.HandleRWLock
	// seqc is the wrapped lock's write-section counter: even when
	// quiescent, odd while a writer is inside. Optimistic reads bracket
	// their lock-free copies with it.
	seqc *seq.Count
	// seqStore is the shard's keyed storage: cell map + TTL deadlines +
	// the lock-free seq index, mutated only under lock's write sections.
	seqStore
	q writeQueue
	// wal is the shard's write-ahead log, nil on volatile engines. Its
	// mutex orders before lock: writers append (and fsync) before applying.
	wal *shardWAL
	// ad is the shard lock's bias adaptor, nil unless the factory built an
	// adaptive lock. The shard feeds it the read/write counters it already
	// maintains (adaptTick), closing the per-shard bias feedback loop.
	ad *bias.Adaptor
	// innerH is the adaptive composite's inner handle read path and fairBit
	// its fair-gate token tag, set only when ad is set and the inner lock is
	// handle-capable. Non-fair reads route straight to innerH — skipping the
	// optimistic wrapper and the composite, both pure forwarders on reads —
	// so the adaptive read path costs one mode load over a static lock.
	// Unlock routes by the token, not the mode, so a flip between lock and
	// unlock cannot strand an acquisition on the wrong path. Writers always
	// go through the full stack: they need the wrapper's seq bracket and the
	// composite's gate+inner pairing.
	innerH  rwl.HandleRWLock
	fairBit rwl.Token
	ops     shardOps
	_       arch.SectorPad
}

// adaptTickMask samples the adaptor feed: roughly every 256th operation per
// shard offers the cumulative counts (Adaptor.Offer is a counter compare
// mid-window, so the feed costs nothing on the per-op path and one window
// evaluation per few thousand ops).
const adaptTickMask = 255

// adaptTick offers the shard's cumulative read/write counts to its adaptor
// on a sampled cadence. n is the op-counter value the caller just produced;
// callers invoke this outside the shard lock.
func (sh *kvShard) adaptTick(n uint64) {
	if sh.ad != nil && n&adaptTickMask == 0 {
		reads := sh.ops.gets.Load() + sh.ops.batchKeys.Load()
		writes := sh.ops.puts.Load() + sh.ops.deletes.Load()
		sh.ad.Offer(reads, writes)
	}
}

// putCounted is putLocked plus the shard's fresh-insert accounting.
func (sh *kvShard) putCounted(key uint64, value []byte, deadline int64) {
	if sh.putLocked(key, value, deadline) {
		sh.ops.putsFresh.Add(1)
	}
}

// rlock acquires the shard's read lock, through the handle when both the
// caller supplied one and the lock supports it. Adaptive shards route
// non-fair reads straight to the composite's inner lock (see the innerH
// field comment for why that is sound).
func (sh *kvShard) rlock(h *rwl.Reader) rwl.Token {
	if h != nil {
		if sh.innerH != nil && sh.ad.Mode() != bias.ModeFair {
			return sh.innerH.RLockH(h)
		}
		if sh.hlock != nil {
			return sh.hlock.RLockH(h)
		}
	}
	return sh.lock.RLock()
}

// runlock releases a read acquisition made by rlock with the same handle.
// The bypass decision is re-derived from the token, not the current mode:
// only fair-gate tokens carry fairBit, so an acquisition is always released
// on the path that made it even if the mode flipped in between.
func (sh *kvShard) runlock(h *rwl.Reader, tok rwl.Token) {
	if h != nil {
		if sh.innerH != nil && tok&sh.fairBit == 0 {
			sh.innerH.RUnlockH(h, tok)
			return
		}
		if sh.hlock != nil {
			sh.hlock.RUnlockH(h, tok)
			return
		}
	}
	sh.lock.RUnlock(tok)
}

// shardOps counts operations against one shard. Counters are atomics and
// are bumped outside the shard lock (after release on the read paths), so
// they are eventually consistent with the data, never exact even under all
// locks; the hot paths pay one atomic add each by counting the rare
// outcome — misses and fresh inserts — and deriving hits and in-place
// updates in Stats.
type shardOps struct {
	gets      atomic.Uint64
	getMisses atomic.Uint64
	puts      atomic.Uint64
	putsFresh atomic.Uint64
	deletes   atomic.Uint64
	delMisses atomic.Uint64
	batches   atomic.Uint64
	batchKeys atomic.Uint64
	// wbatches/wbatchKeys count combined write applications: one batch per
	// shard group applied by MultiPut, MultiDelete, or an async-queue flush.
	wbatches   atomic.Uint64
	wbatchKeys atomic.Uint64
	asyncPuts  atomic.Uint64
	// seqReads counts read sections served by the optimistic (seqlock)
	// path — one per Get/GetInto served lock-free, one per MultiGet shard
	// group validated as a unit. seqRetries counts optimistic attempts
	// that collided with a writer (blocked on an odd sequence or failed
	// validation); seqFallbacks counts read sections that exhausted their
	// attempt budget and fell back to the shard read lock.
	seqReads     atomic.Uint64
	seqRetries   atomic.Uint64
	seqFallbacks atomic.Uint64
	// txnCommits/txnAborts count transactions that touched the shard (as a
	// read or write participant) and committed or aborted; txnKeys counts
	// the staged writes transactions applied to this shard. A transaction
	// spanning k shards bumps the commit counter on each of the k.
	txnCommits atomic.Uint64
	txnAborts  atomic.Uint64
	txnKeys    atomic.Uint64
	// expired counts lazy TTL observations: reads (or deletes) that found a
	// resident entry past its deadline and treated it as a miss. reaped
	// counts entries Reap physically removed.
	expired   atomic.Uint64
	reaped    atomic.Uint64
	snapshots atomic.Uint64
	// checkpoints counts completed durable checkpoints of this shard; the
	// WAL's own counters live on shardWAL.
	checkpoints atomic.Uint64
}

// ShardStats is a point-in-time summary of one shard (or, via Total, of the
// whole engine).
type ShardStats struct {
	Keys            int    `json:"keys"`
	TTLKeys         int    `json:"ttl_keys"`
	Gets            uint64 `json:"gets"`
	GetHits         uint64 `json:"get_hits"`
	Puts            uint64 `json:"puts"`
	PutsInPlace     uint64 `json:"puts_in_place"`
	Deletes         uint64 `json:"deletes"`
	DeleteHits      uint64 `json:"delete_hits"`
	MultiGetBatches uint64 `json:"multi_get_batches"`
	MultiGetKeys    uint64 `json:"multi_get_keys"`
	// WriteBatches/WriteBatchKeys count combined write applications (one
	// batch per shard group from MultiPut, MultiDelete, or a queue flush);
	// the keys they carried are also counted in Puts/Deletes.
	WriteBatches   uint64 `json:"write_batches"`
	WriteBatchKeys uint64 `json:"write_batch_keys"`
	AsyncPuts      uint64 `json:"async_puts"`
	// SeqReads counts read sections served by the optimistic zero-CAS path
	// (one per Get/GetInto, one per MultiGet shard group); SeqRetries
	// counts attempts that collided with a writer and were discarded;
	// SeqFallbacks counts reads that exhausted the attempt budget and took
	// the shard read lock instead. Gets/GetHits count those reads too —
	// the seq counters classify how reads were served, not extra traffic.
	SeqReads     uint64 `json:"seq_reads"`
	SeqRetries   uint64 `json:"seq_retries"`
	SeqFallbacks uint64 `json:"seq_fallbacks"`
	// TxnCommits/TxnAborts count transactions that touched the shard and
	// committed or aborted (a k-shard transaction counts on each of its k
	// participants); TxnKeys counts the staged writes they applied here.
	TxnCommits uint64 `json:"txn_commits"`
	TxnAborts  uint64 `json:"txn_aborts"`
	TxnKeys    uint64 `json:"txn_keys"`
	// Expired counts lazy TTL observations (reads and deletes that found an
	// entry past its deadline); Reaped counts entries Reap removed.
	Expired   uint64 `json:"expired"`
	Reaped    uint64 `json:"reaped"`
	Snapshots uint64 `json:"snapshots"`
	// WAL counters (zero on volatile engines). WALRecords is appended
	// group-commit records, WALKeys the entries they carried —
	// WALKeys/WALRecords is the achieved group-commit batch size. WALSyncs
	// counts fsyncs, WALBytes bytes appended, WALErrors append/sync
	// failures (the engine keeps serving from memory; see WALError), and
	// Checkpoints completed snapshot checkpoints.
	WALRecords  uint64 `json:"wal_records"`
	WALKeys     uint64 `json:"wal_keys"`
	WALSyncs    uint64 `json:"wal_syncs"`
	WALBytes    uint64 `json:"wal_bytes"`
	WALErrors   uint64 `json:"wal_errors"`
	Checkpoints uint64 `json:"checkpoints"`
	// BiasMode is the shard lock's current bias posture ("biased",
	// "neutral", "fair"), empty when the shard lock carries no adaptor;
	// Total/Add report "mixed" when shards disagree. BiasFlips counts mode
	// changes. Both are captured under the adaptor's seq bracket
	// (bias.Adaptor.Snapshot), so one stats row can never pair a mode with
	// flip/window counters from a different instant.
	BiasMode  string `json:"bias_mode,omitempty"`
	BiasFlips uint64 `json:"bias_flips,omitempty"`
}

// Add folds o into s: cross-engine aggregation, e.g. a cluster front-end
// totaling its partitions.
func (s *ShardStats) Add(o ShardStats) { s.add(o) }

// add folds o into s.
func (s *ShardStats) add(o ShardStats) {
	s.Keys += o.Keys
	s.TTLKeys += o.TTLKeys
	s.Gets += o.Gets
	s.GetHits += o.GetHits
	s.Puts += o.Puts
	s.PutsInPlace += o.PutsInPlace
	s.Deletes += o.Deletes
	s.DeleteHits += o.DeleteHits
	s.MultiGetBatches += o.MultiGetBatches
	s.MultiGetKeys += o.MultiGetKeys
	s.WriteBatches += o.WriteBatches
	s.WriteBatchKeys += o.WriteBatchKeys
	s.AsyncPuts += o.AsyncPuts
	s.SeqReads += o.SeqReads
	s.SeqRetries += o.SeqRetries
	s.SeqFallbacks += o.SeqFallbacks
	s.TxnCommits += o.TxnCommits
	s.TxnAborts += o.TxnAborts
	s.TxnKeys += o.TxnKeys
	s.Expired += o.Expired
	s.Reaped += o.Reaped
	s.Snapshots += o.Snapshots
	s.WALRecords += o.WALRecords
	s.WALKeys += o.WALKeys
	s.WALSyncs += o.WALSyncs
	s.WALBytes += o.WALBytes
	s.WALErrors += o.WALErrors
	s.Checkpoints += o.Checkpoints
	s.BiasFlips += o.BiasFlips
	switch {
	case s.BiasMode == "":
		s.BiasMode = o.BiasMode
	case o.BiasMode != "" && o.BiasMode != s.BiasMode:
		s.BiasMode = "mixed"
	}
}

// ShardedStats aggregates the per-shard summaries of a Sharded engine.
type ShardedStats struct {
	Shards []ShardStats `json:"shards"`
}

// Total folds every shard's summary into one.
func (st ShardedStats) Total() ShardStats {
	var t ShardStats
	for _, s := range st.Shards {
		t.add(s)
	}
	return t
}

// NewSharded returns an engine with the given number of shards (a positive
// power of two), each guarded by a fresh lock from mkLock. With no options
// the engine is volatile; WithDurability makes it persistent (recovering
// whatever the directory already holds — see OpenSharded).
func NewSharded(shards int, mkLock rwl.Factory, opts ...Option) (*Sharded, error) {
	if shards <= 0 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("kvs: shard count %d is not a positive power of two", shards)
	}
	var cfg engineConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	s := &Sharded{shards: make([]kvShard, shards), mask: uint64(shards - 1)}
	s.seqAttempts.Store(DefaultSeqReadAttempts)
	for i := range s.shards {
		// Wrap the substrate so every write section is seq-bracketed; the
		// wrapper preserves the handle read path when the substrate has one.
		raw := mkLock()
		if al, ok := raw.(interface{ Adaptor() *bias.Adaptor }); ok {
			s.shards[i].ad = al.Adaptor()
			if bp, ok := raw.(interface {
				InnerHandle() rwl.HandleRWLock
				FairBit() rwl.Token
			}); ok {
				s.shards[i].innerH = bp.InnerHandle()
				s.shards[i].fairBit = bp.FairBit()
			}
		}
		wrapped := rwl.WrapOptimistic(raw)
		s.shards[i].lock = wrapped
		s.shards[i].hlock, _ = rwl.RWLock(wrapped).(rwl.HandleRWLock)
		s.shards[i].seqc = wrapped.Seq()
		s.shards[i].data = make(map[uint64]*seqCell)
	}
	if cfg.dir != "" {
		if err := s.openDurable(cfg.dir, cfg.policy, cfg.lsnBase); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// HandleCapable reports whether the shard locks accept reader handles.
func (s *Sharded) HandleCapable() bool { return s.shards[0].hlock != nil }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardOf returns the index of the shard responsible for key.
func (s *Sharded) ShardOf(key uint64) int {
	return int(hash.Mix64(key) & s.mask)
}

func (s *Sharded) shardOf(key uint64) *kvShard {
	return &s.shards[hash.Mix64(key)&s.mask]
}

// Get returns a copy of the value stored under key.
func (s *Sharded) Get(key uint64) ([]byte, bool) {
	return s.getInto(nil, key, nil)
}

// GetH is Get through a reader handle: the request's identity is pinned on
// the handle, so the shard lock's fast path is a cached-slot CAS with no
// per-shard identity derivation or hashing.
func (s *Sharded) GetH(h *rwl.Reader, key uint64) ([]byte, bool) {
	return s.getInto(h, key, nil)
}

// GetInto is Get with caller-managed memory: the value is appended to
// buf[:0] (growing it only when too small) and the filled slice returned.
// On a miss the returned slice is buf[:0], so a worker that reuses its
// buffer across calls — hits and misses alike — reads without allocating.
func (s *Sharded) GetInto(key uint64, buf []byte) ([]byte, bool) {
	return s.getInto(nil, key, buf)
}

// GetIntoH is GetInto through a reader handle.
func (s *Sharded) GetIntoH(h *rwl.Reader, key uint64, buf []byte) ([]byte, bool) {
	return s.getInto(h, key, buf)
}

func (s *Sharded) getInto(h *rwl.Reader, key uint64, buf []byte) ([]byte, bool) {
	sh := s.shardOf(key)
	var out []byte
	var ok, expired bool
	served := false
	// Zero-CAS fast path: copy the value with no lock held and validate
	// the shard's write-section sequence around the copy. A validated
	// section is exactly what some quiescent instant held; a collided one
	// is discarded, and after the attempt budget the read falls back to
	// the pessimistic BRAVO path below (handle or anonymous).
	if att := int(s.seqAttempts.Load()); att > 0 {
		var retries int
		out, ok, expired, retries, served = sh.seqGetInto(sh.seqc, key, buf, att)
		if retries > 0 {
			sh.ops.seqRetries.Add(uint64(retries))
		}
		if served {
			sh.ops.seqReads.Add(1)
		} else {
			sh.ops.seqFallbacks.Add(1)
		}
	}
	if !served {
		tok := sh.rlock(h)
		v, present := sh.data[key]
		ok = present
		expired = ok && sh.expiredLocked(key)
		if expired {
			ok = false
		}
		out = buf[:0]
		if ok {
			out = v.appendTo(out)
		}
		sh.runlock(h, tok)
	}
	n := sh.ops.gets.Add(1)
	if !ok {
		sh.ops.getMisses.Add(1)
	}
	if expired {
		sh.ops.expired.Add(1)
	}
	sh.adaptTick(n)
	return out, ok
}

// SetSeqReadAttempts sets the optimistic read attempt budget: how many
// lock-free seq-validated copies a read tries before taking the shard read
// lock. n <= 0 disables the optimistic path entirely (every read goes
// through the BRAVO lock, the pre-seqlock behavior); n > 0 bounds the
// retry loop. Safe to call at any time; the paper-figure benches and the
// handle fast-path tests disable it to keep measuring the locks.
func (s *Sharded) SetSeqReadAttempts(n int) {
	if n < 0 {
		n = 0
	}
	s.seqAttempts.Store(int32(n))
}

// SeqReadAttempts returns the current optimistic read attempt budget.
func (s *Sharded) SeqReadAttempts() int { return int(s.seqAttempts.Load()) }

// AdaptiveCapable reports whether the shard locks expose bias adaptors
// (the factory built adaptive locks — see internal/locks/adaptive).
func (s *Sharded) AdaptiveCapable() bool { return s.shards[0].ad != nil }

// SetAdaptive turns per-shard adaptive biasing on or off. Off pins every
// shard back to static biased BRAVO. A no-op when the shard locks carry no
// adaptor. Safe at any time.
func (s *Sharded) SetAdaptive(on bool) {
	for i := range s.shards {
		if ad := s.shards[i].ad; ad != nil {
			ad.SetEnabled(on)
		}
	}
}

// SetAdaptiveThresholds installs one hysteresis configuration on every
// shard's adaptor (zero fields take defaults). A no-op when the shard locks
// carry no adaptor. Safe at any time; applies from each shard's next
// window.
func (s *Sharded) SetAdaptiveThresholds(th bias.Thresholds) {
	for i := range s.shards {
		if ad := s.shards[i].ad; ad != nil {
			ad.SetThresholds(th)
		}
	}
}

// ShardAdaptor returns shard i's bias adaptor, or nil. Diagnostic: tests
// use it to force modes deterministically.
func (s *Sharded) ShardAdaptor(i int) *bias.Adaptor { return s.shards[i].ad }

// Put stores a copy of value under key, reusing the existing buffer in
// place when it fits (Memtable's rocksdb-style in-place update). A plain
// Put clears any TTL a previous PutTTL attached to the key.
func (s *Sharded) Put(key uint64, value []byte) {
	s.put(key, value, 0)
}

// PutTTL is Put with a time-to-live: the key expires (becomes invisible to
// reads) once ttl elapses, inclusively — exactly at the deadline counts as
// expired. Expired entries are removed by Reap or by a later write to the
// same key; until then they occupy memory but never satisfy a read. A
// non-positive ttl stores a value that is already expired.
func (s *Sharded) PutTTL(key uint64, value []byte, ttl time.Duration) {
	s.put(key, value, ttlDeadline(ttl))
}

// putDeadline is PutTTL against an absolute clock.Nanos deadline; tests use
// it to pin expiry boundary conditions exactly.
func (s *Sharded) putDeadline(key uint64, value []byte, deadline int64) {
	s.put(key, value, deadline)
}

func (s *Sharded) put(key uint64, value []byte, deadline int64) {
	sh := s.shardOf(key)
	w := sh.wal
	w.lock()
	if w != nil {
		w.begin(1)
		w.addPut(key, value, deadline)
		w.commit(1)
	}
	sh.lock.Lock()
	n := sh.ops.puts.Add(1) // total before rare: see the Stats load-order note
	sh.putCounted(key, value, deadline)
	sh.lock.Unlock()
	w.unlock()
	sh.adaptTick(n)
}

// Delete removes key, reporting whether it was (visibly) present. Deleting
// a TTL-expired entry removes the residue but reports false, matching what
// a reader would have observed.
func (s *Sharded) Delete(key uint64) bool {
	sh := s.shardOf(key)
	w := sh.wal
	w.lock()
	if w != nil {
		w.begin(1)
		w.addDelete(key)
		w.commit(1)
	}
	sh.lock.Lock()
	n := sh.ops.deletes.Add(1) // total before rare: see the Stats load-order note
	ok, expired := sh.deleteLocked(key)
	sh.lock.Unlock()
	w.unlock()
	if !ok {
		sh.ops.delMisses.Add(1)
	}
	if expired {
		sh.ops.expired.Add(1)
	}
	sh.adaptTick(n)
	return ok
}

// MultiGet performs a batched lookup: keys are grouped by shard and each
// shard's read lock is taken once per batch, not once per key. The result
// is parallel to keys; absent keys yield nil entries.
func (s *Sharded) MultiGet(keys []uint64) [][]byte {
	return s.multiGet(nil, keys, nil)
}

// MultiGetH is MultiGet through a reader handle: one pinned identity covers
// every shard the batch touches, rather than a fresh derivation per shard
// lock acquisition.
func (s *Sharded) MultiGetH(h *rwl.Reader, keys []uint64) [][]byte {
	return s.multiGet(h, keys, nil)
}

// MultiGetIntoH is MultiGetH with a caller-reused result slice: when dst
// has capacity for the batch it is cleared, resliced, and filled in place,
// so a serving loop's steady-state MGET does not allocate the
// slice-of-slices. The values themselves are still fresh copies (they leave
// the shard's critical section). Returns the filled slice, parallel to
// keys.
func (s *Sharded) MultiGetIntoH(h *rwl.Reader, keys []uint64, dst [][]byte) [][]byte {
	return s.multiGet(h, keys, dst)
}

func (s *Sharded) multiGet(h *rwl.Reader, keys []uint64, dst [][]byte) [][]byte {
	out := dst
	if cap(out) >= len(keys) {
		out = out[:len(keys)]
		// The locked path only writes hits; stale entries must not survive
		// as phantom values.
		clear(out)
	} else {
		out = make([][]byte, len(keys))
	}
	s.forEachShardGroup(keys, func(sh *kvShard, group []shardPos) {
		expired := 0
		served := false
		// Optimistic batch read: the whole shard group is copied under one
		// seq bracket, so a validated group is a consistent point-in-time
		// view of its shard — the same guarantee the read lock gives.
		if att := int(s.seqAttempts.Load()); att > 0 {
			var retries int
			expired, retries, served = sh.seqMultiGet(keys, group, out, att)
			if retries > 0 {
				sh.ops.seqRetries.Add(uint64(retries))
			}
			if served {
				sh.ops.seqReads.Add(1)
			} else {
				sh.ops.seqFallbacks.Add(1)
				for _, p := range group {
					out[p.pos] = nil // discard torn optimistic copies
				}
			}
		}
		if !served {
			expired = 0
			tok := sh.rlock(h)
			for _, p := range group {
				v, ok := sh.data[keys[p.pos]]
				if ok && sh.expiredLocked(keys[p.pos]) {
					expired++
					continue
				}
				if ok {
					// Non-nil even for empty values: nil means absent here.
					out[p.pos] = v.bytes()
				}
			}
			sh.runlock(h, tok)
		}
		sh.ops.batches.Add(1)
		bk := sh.ops.batchKeys.Add(uint64(len(group)))
		if expired > 0 {
			sh.ops.expired.Add(uint64(expired))
		}
		sh.adaptTick(bk)
	})
	return out
}

// seqMultiGet optimistically copies one shard group under a single seq
// bracket, filling out at the group's positions. done=false means every
// attempt collided; the caller clears the group's positions and falls back
// to the locked path.
func (sh *kvShard) seqMultiGet(keys []uint64, group []shardPos, out [][]byte, attempts int) (expired, retries int, done bool) {
	// Typical shard groups (batch size / shard count) fit on the stack;
	// heap-allocating the deadline scratch per group made every MGET pay
	// one allocation per shard touched.
	var dstack [32]int64
	deadlines := dstack[:]
	if len(group) > len(dstack) {
		deadlines = make([]int64, len(group))
	}
	for a := 0; a < attempts; a++ {
		s0, even := sh.seqc.TryBegin()
		if !even {
			retries++
			continue
		}
		for gi, p := range group {
			out[p.pos] = nil
			deadlines[gi] = 0
			if c := sh.idx.lookup(keys[p.pos]); c != nil {
				out[p.pos] = c.bytes()
				deadlines[gi] = c.deadline.Load()
			}
		}
		if h := seqReadHook.Load(); h != nil {
			(*h)(keys[group[0].pos])
		}
		if sh.seqc.Retry(s0) {
			retries++
			continue
		}
		// Validated: apply lazy expiry on the captured deadlines.
		now := int64(0)
		for gi, p := range group {
			if d := deadlines[gi]; d != 0 && out[p.pos] != nil {
				if now == 0 {
					now = clock.Nanos()
				}
				if now >= d {
					out[p.pos] = nil
					expired++
				}
			}
		}
		return expired, retries, true
	}
	return 0, retries, false
}

// MultiPut stores a copy of each values[i] under keys[i], grouping the
// batch by shard and applying each shard's group under a single write-lock
// acquisition — write combining: per key, the lock traffic (and, for
// BRAVO-wrapped shards, the bias revocation) is amortized across the
// group. Within one batch, later positions win duplicate keys. It panics
// when the slices disagree in length.
func (s *Sharded) MultiPut(keys []uint64, values [][]byte) {
	s.multiPut(keys, values, 0)
}

// MultiPutTTL is MultiPut with one time-to-live covering the whole batch,
// with PutTTL's semantics per key (so a non-positive ttl stores the batch
// born-expired).
func (s *Sharded) MultiPutTTL(keys []uint64, values [][]byte, ttl time.Duration) {
	s.multiPut(keys, values, ttlDeadline(ttl))
}

func (s *Sharded) multiPut(keys []uint64, values [][]byte, deadline int64) {
	if len(keys) != len(values) {
		panic(fmt.Sprintf("kvs: MultiPut with %d keys but %d values", len(keys), len(values)))
	}
	s.forEachShardGroup(keys, func(sh *kvShard, group []shardPos) {
		// Group commit: the whole shard group is one WAL record and, under
		// SyncAlways, one fsync — the log analogue of amortizing one bias
		// revocation across the group.
		w := sh.wal
		w.lock()
		if w != nil {
			w.begin(len(group))
			for _, p := range group {
				w.addPut(keys[p.pos], values[p.pos], deadline)
			}
			w.commit(len(group))
		}
		sh.lock.Lock()
		np := sh.ops.puts.Add(uint64(len(group))) // total before rare, as in Put
		for _, p := range group {
			sh.putCounted(keys[p.pos], values[p.pos], deadline)
		}
		sh.lock.Unlock()
		w.unlock()
		sh.ops.wbatches.Add(1)
		sh.ops.wbatchKeys.Add(uint64(len(group)))
		sh.adaptTick(np)
	})
}

// MultiDelete removes the given keys, one write-lock acquisition per shard
// touched, and returns how many were visibly present (expired residues are
// removed but not counted, as in Delete).
func (s *Sharded) MultiDelete(keys []uint64) int {
	removed := 0
	s.forEachShardGroup(keys, func(sh *kvShard, group []shardPos) {
		hits, expired := 0, 0
		w := sh.wal
		w.lock()
		if w != nil {
			w.begin(len(group))
			for _, p := range group {
				w.addDelete(keys[p.pos])
			}
			w.commit(len(group))
		}
		sh.lock.Lock()
		nd := sh.ops.deletes.Add(uint64(len(group))) // total before rare, as in Delete
		for _, p := range group {
			ok, exp := sh.deleteLocked(keys[p.pos])
			if ok {
				hits++
			}
			if exp {
				expired++
			}
		}
		sh.lock.Unlock()
		w.unlock()
		sh.ops.delMisses.Add(uint64(len(group) - hits))
		if expired > 0 {
			sh.ops.expired.Add(uint64(expired))
		}
		sh.ops.wbatches.Add(1)
		sh.ops.wbatchKeys.Add(uint64(len(group)))
		sh.adaptTick(nd)
		removed += hits
	})
	return removed
}

// shardPos pairs a shard index with a position in a batched operation.
type shardPos struct{ shard, pos int }

// forEachShardGroup is the batched operations' shared key→shard grouping:
// it sorts the batch's (shard, position) pairs and invokes fn once per run
// of same-shard keys, in ascending shard order. Per batch it allocates one
// pairs slice — O(len(keys)), independent of the engine's shard count — and
// each group slice aliases it. fn runs with no lock held; it takes the
// shard lock itself in whichever mode it needs.
func (s *Sharded) forEachShardGroup(keys []uint64, fn func(sh *kvShard, group []shardPos)) {
	if len(keys) == 0 {
		return
	}
	pairs := make([]shardPos, len(keys))
	for i, k := range keys {
		pairs[i] = shardPos{shard: s.ShardOf(k), pos: i}
	}
	// Stable, so positions stay ascending within a group and duplicate keys
	// in a MultiPut batch resolve later-position-wins.
	slices.SortStableFunc(pairs, func(a, b shardPos) int { return a.shard - b.shard })
	for lo := 0; lo < len(pairs); {
		hi := lo + 1
		for hi < len(pairs) && pairs[hi].shard == pairs[lo].shard {
			hi++
		}
		fn(&s.shards[pairs[lo].shard], pairs[lo:hi])
		lo = hi
	}
}

// Len returns the total number of resident keys, visiting each shard under
// its read lock. The count includes TTL-expired entries that have not been
// reaped yet (they still occupy memory even though reads cannot see them).
func (s *Sharded) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		tok := sh.lock.RLock()
		n += len(sh.data)
		sh.lock.RUnlock(tok)
	}
	return n
}

// Range calls fn for every visible (unexpired) key/value pair. Each shard
// is visited atomically under its read lock; the engine-wide view is the
// concatenation of per-shard snapshots, not a global snapshot. The value
// slice passed to fn is a scratch buffer reused between calls and must not
// be retained or mutated after fn returns. Iteration stops early when fn
// returns false.
func (s *Sharded) Range(fn func(key uint64, value []byte) bool) {
	var scratch []byte
	for i := range s.shards {
		sh := &s.shards[i]
		tok := sh.lock.RLock()
		for k, v := range sh.data {
			if sh.expiredLocked(k) {
				continue
			}
			scratch = v.appendTo(scratch[:0])
			if !fn(k, scratch) {
				sh.lock.RUnlock(tok)
				return
			}
		}
		sh.lock.RUnlock(tok)
	}
}

// RangeTTL is Range with each key's remaining TTL: zero for keys without a
// deadline, otherwise the positive time left before expiry. Failover
// promotion uses it to copy a follower's state — values and deadlines both
// — into a fresh durable engine.
func (s *Sharded) RangeTTL(fn func(key uint64, value []byte, remaining time.Duration) bool) {
	var scratch []byte
	for i := range s.shards {
		sh := &s.shards[i]
		tok := sh.lock.RLock()
		now := int64(0)
		if len(sh.exp) > 0 {
			now = clock.Nanos()
		}
		for k, v := range sh.data {
			if sh.expiredLocked(k) {
				continue
			}
			var rem time.Duration
			if d, ok := sh.exp[k]; ok {
				rem = time.Duration(d - now)
			}
			scratch = v.appendTo(scratch[:0])
			if !fn(k, scratch, rem) {
				sh.lock.RUnlock(tok)
				return
			}
		}
		sh.lock.RUnlock(tok)
	}
}

// SnapshotShard returns an atomic deep copy of one shard's visible
// (unexpired) contents.
func (s *Sharded) SnapshotShard(i int) map[uint64][]byte {
	sh := &s.shards[i]
	tok := sh.lock.RLock()
	out := make(map[uint64][]byte, len(sh.data))
	for k, v := range sh.data {
		if sh.expiredLocked(k) {
			continue
		}
		out[k] = v.bytes()
	}
	sh.lock.RUnlock(tok)
	sh.ops.snapshots.Add(1)
	return out
}

// DefaultReapBudget is Reap's per-call examination budget when the caller
// passes none: small enough that no shard write lock is held long, large
// enough that a modest reap cadence keeps up with expirations.
const DefaultReapBudget = 256

// Reap incrementally removes TTL-expired entries: it examines up to budget
// TTL-tracked entries (budget <= 0 means DefaultReapBudget), resuming
// round-robin at the shard after the previous call's, and deletes those
// whose deadlines have passed, returning the number removed. Each shard's
// work happens under that shard's ordinary write lock with the examination
// budget bounding the hold — there is no stop-the-world scan. Entries are
// drawn in Go's randomized map order, so repeated calls probabilistically
// cover a shard's TTL set even when it exceeds the budget; lazy expiry
// keeps not-yet-reaped entries invisible to readers regardless. Reap is
// safe to call concurrently with every other operation (and with itself).
// Reaping is not logged to the WAL: a recovered TTL entry replays as
// already-expired (deadlines persist as remaining time), so it stays
// invisible and is re-reaped — and checkpoints compact expired residue out
// of the snapshot entirely.
func (s *Sharded) Reap(budget int) int {
	if budget <= 0 {
		budget = DefaultReapBudget
	}
	reaped := 0
	for visited := 0; visited < len(s.shards) && budget > 0; visited++ {
		sh := &s.shards[(s.reapCursor.Add(1)-1)&s.mask]
		removed := 0
		leftover := false
		sh.lock.Lock()
		if len(sh.exp) > 0 {
			now := clock.Nanos()
			examined := 0
			for k, d := range sh.exp {
				if examined >= budget {
					break
				}
				examined++
				if now >= d {
					// Through removeLocked so the seq index sheds the
					// entry with the map — reaping is a mutation site
					// like any other, bracketed by the shard write lock.
					sh.removeLocked(k)
					removed++
				}
			}
			// The budget ran out with TTL entries still unexamined: the
			// shard's TTL set is larger than what this call could cover.
			// (Counted under the lock — a concurrent delete can shrink exp
			// below the cursor's expectations the instant it is released,
			// which is why this is a point-in-time hint, not a claim.)
			leftover = examined >= budget && len(sh.exp) > examined-removed
			budget -= examined
		}
		sh.lock.Unlock()
		if removed > 0 {
			sh.ops.reaped.Add(uint64(removed))
			reaped += removed
		}
		if leftover && budget <= 0 {
			// Rewind the cursor so the next call resumes at this shard
			// rather than skipping its unexamined tail for a full
			// round-robin cycle. Racing Reap calls make the step a
			// heuristic either way; randomized map order keeps repeated
			// visits covering different entries.
			s.reapCursor.Add(^uint64(0))
		}
	}
	return reaped
}

// Snapshot returns a deep copy of the whole engine, shard by shard. Each
// shard is copied atomically; the union is only per-shard consistent.
func (s *Sharded) Snapshot() map[uint64][]byte {
	out := make(map[uint64][]byte, s.Len())
	for i := range s.shards {
		for k, v := range s.SnapshotShard(i) {
			out[k] = v
		}
	}
	return out
}

// Stats returns the per-shard operation counters and key counts.
func (s *Sharded) Stats() ShardedStats {
	st := ShardedStats{Shards: make([]ShardStats, len(s.shards))}
	for i := range s.shards {
		sh := &s.shards[i]
		tok := sh.lock.RLock()
		keys := len(sh.data)
		ttlKeys := len(sh.exp)
		sh.lock.RUnlock(tok)
		// Load each rare counter before its total: every op bumps the
		// total first (Get/Put/Delete), so rare <= total holds at every
		// instant, and loading rare first keeps the derived hit counts
		// from underflowing when snapshotting under load.
		getMisses := sh.ops.getMisses.Load()
		gets := sh.ops.gets.Load()
		putsFresh := sh.ops.putsFresh.Load()
		puts := sh.ops.puts.Load()
		delMisses := sh.ops.delMisses.Load()
		deletes := sh.ops.deletes.Load()
		st.Shards[i] = ShardStats{
			Keys:            keys,
			TTLKeys:         ttlKeys,
			Gets:            gets,
			GetHits:         gets - getMisses,
			Puts:            puts,
			PutsInPlace:     puts - putsFresh,
			Deletes:         deletes,
			DeleteHits:      deletes - delMisses,
			MultiGetBatches: sh.ops.batches.Load(),
			MultiGetKeys:    sh.ops.batchKeys.Load(),
			WriteBatches:    sh.ops.wbatches.Load(),
			WriteBatchKeys:  sh.ops.wbatchKeys.Load(),
			AsyncPuts:       sh.ops.asyncPuts.Load(),
			SeqReads:        sh.ops.seqReads.Load(),
			SeqRetries:      sh.ops.seqRetries.Load(),
			SeqFallbacks:    sh.ops.seqFallbacks.Load(),
			TxnCommits:      sh.ops.txnCommits.Load(),
			TxnAborts:       sh.ops.txnAborts.Load(),
			TxnKeys:         sh.ops.txnKeys.Load(),
			Expired:         sh.ops.expired.Load(),
			Reaped:          sh.ops.reaped.Load(),
			Snapshots:       sh.ops.snapshots.Load(),
			Checkpoints:     sh.ops.checkpoints.Load(),
		}
		if w := sh.wal; w != nil {
			st.Shards[i].WALRecords = w.records.Load()
			st.Shards[i].WALKeys = w.keys.Load()
			st.Shards[i].WALSyncs = w.syncs.Load()
			st.Shards[i].WALBytes = w.bytes.Load()
			st.Shards[i].WALErrors = w.errs.Load()
		}
		if sh.ad != nil {
			// One coherent bracket for mode + flips: a concurrent flip can
			// delay this snapshot but never tear it.
			snap := sh.ad.Snapshot()
			st.Shards[i].BiasMode = snap.Mode.String()
			st.Shards[i].BiasFlips = snap.Flips
		}
	}
	return st
}
