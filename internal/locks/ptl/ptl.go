// Package ptl implements a pthread_rwlock-style reader-writer lock, modeled
// on the default Linux POSIX implementation as characterized by the paper
// (§5): a centralized reader indicator, *strong reader preference* that
// admits indefinite writer starvation, a compact footprint, and waiters that
// "block immediately in the kernel without spinning" — here, immediately on
// a condition variable.
package ptl

import (
	"sync"

	"github.com/bravolock/bravo/internal/rwl"
)

// Lock is a blocking, reader-preference reader-writer lock.
type Lock struct {
	mu      sync.Mutex
	rcond   sync.Cond
	wcond   sync.Cond
	readers int  // active readers
	writer  bool // writer active
	rwait   int  // readers blocked
	wwait   int  // writers blocked
}

var _ rwl.TryRWLock = (*Lock)(nil)

// New returns an unlocked pthread-style lock.
func New() *Lock {
	l := &Lock{}
	l.rcond.L = &l.mu
	l.wcond.L = &l.mu
	return l
}

// RLock acquires read permission. Readers are admitted whenever no writer
// *holds* the lock; waiting writers are ignored (strong reader preference).
func (l *Lock) RLock() rwl.Token {
	l.mu.Lock()
	for l.writer {
		l.rwait++
		l.rcond.Wait()
		l.rwait--
	}
	l.readers++
	l.mu.Unlock()
	return 0
}

// RUnlock releases read permission.
func (l *Lock) RUnlock(rwl.Token) {
	l.mu.Lock()
	l.readers--
	if l.readers == 0 && !l.writer && l.wwait > 0 {
		l.wcond.Signal()
	}
	l.mu.Unlock()
}

// Lock acquires write permission, waiting for all readers to drain.
func (l *Lock) Lock() {
	l.mu.Lock()
	for l.writer || l.readers > 0 {
		l.wwait++
		l.wcond.Wait()
		l.wwait--
	}
	l.writer = true
	l.mu.Unlock()
}

// Unlock releases write permission. Blocked readers, if any, are preferred
// over blocked writers, which is what makes writer starvation possible.
func (l *Lock) Unlock() {
	l.mu.Lock()
	l.writer = false
	if l.rwait > 0 {
		l.rcond.Broadcast()
	} else if l.wwait > 0 {
		l.wcond.Signal()
	}
	l.mu.Unlock()
}

// TryRLock attempts to acquire read permission without blocking.
func (l *Lock) TryRLock() (rwl.Token, bool) {
	l.mu.Lock()
	if l.writer {
		l.mu.Unlock()
		return 0, false
	}
	l.readers++
	l.mu.Unlock()
	return 0, true
}

// TryLock attempts to acquire write permission without blocking.
func (l *Lock) TryLock() bool {
	l.mu.Lock()
	if l.writer || l.readers > 0 {
		l.mu.Unlock()
		return false
	}
	l.writer = true
	l.mu.Unlock()
	return true
}
