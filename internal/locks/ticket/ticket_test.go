package ticket

import (
	"runtime"
	"sync"
	"testing"
)

func TestMutualExclusion(t *testing.T) {
	var m Mutex
	var counter int
	var wg sync.WaitGroup
	const workers, iters = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d (lost updates imply broken exclusion)", counter, workers*iters)
	}
}

func TestTryLock(t *testing.T) {
	var m Mutex
	if !m.TryLock() {
		t.Fatal("TryLock failed on a free lock")
	}
	if m.TryLock() {
		t.Fatal("TryLock succeeded on a held lock")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock failed after unlock")
	}
	m.Unlock()
}

func TestHasWaiters(t *testing.T) {
	var m Mutex
	m.Lock()
	if m.HasWaiters() {
		t.Fatal("HasWaiters true with no waiters")
	}
	arrived := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(arrived)
		m.Lock()
		m.Unlock()
		close(done)
	}()
	<-arrived
	// Wait for the contender to take its ticket.
	for !m.HasWaiters() {
		runtime.Gosched()
	}
	m.Unlock()
	<-done
	if m.HasWaiters() {
		t.Fatal("HasWaiters true after queue drained")
	}
}

func TestFIFOOrdering(t *testing.T) {
	// Tickets are granted in arrival order: a chain of lockers that record
	// their admission sequence must observe it strictly increasing in ticket
	// order. We serialize arrivals with a handshake to pin the arrival order.
	var m Mutex
	const n = 16
	order := make([]int, 0, n)
	var mu sync.Mutex
	m.Lock() // hold so all contenders queue up
	ready := make(chan struct{})
	var wg sync.WaitGroup
	// arrivalSeq numbers contenders in ticket-acquisition order. The
	// handshake below serializes the [send → seq read → ticket take]
	// window, so the accesses are ordered by the atomic ticket counter and
	// the channel operations.
	arrivalSeq := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ready <- struct{}{} // arrival handshake, one at a time
			my := arrivalSeq
			arrivalSeq++
			m.Lock()
			mu.Lock()
			order = append(order, my)
			mu.Unlock()
			m.Unlock()
		}()
	}
	for i := 0; i < n; i++ {
		<-ready
		// Ensure the released contender has taken its ticket before the
		// next arrival: the ticket count must reach i+2 (holder + i+1
		// arrivals).
		for m.next.Load() != uint32(i+2) {
			runtime.Gosched()
		}
	}
	m.Unlock()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order %v violates FIFO at position %d", order, i)
		}
	}
}
