package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrConnClosed reports an operation on a closed (or failed) connection;
// the underlying cause, when known, is wrapped.
var ErrConnClosed = errors.New("wire: connection closed")

// Conn is one pipelined protocol connection: any number of requests may be
// in flight at once, each matched to its response through the in-flight
// table by request id. Start/Flush/Wait is the pipelined form; Do is the
// one-shot convenience. Start and Do are safe for concurrent use by
// multiple goroutines (responses are routed by id, not order), though the
// intended shape is one goroutine driving a window of Starts.
type Conn struct {
	nc net.Conn

	wmu  sync.Mutex // serializes encode+write (and Flush)
	bw   *bufio.Writer
	wbuf []byte // encode scratch, reused under wmu
	werr error  // first write-side failure

	tmu      sync.Mutex
	inflight map[uint64]*Pending
	nextID   uint64
	closed   error // terminal state, set once under tmu

	readerDone chan struct{}
}

// Pending is an in-flight request's handle: Wait blocks for its response.
type Pending struct {
	ch   chan Response
	conn *Conn
}

// NewConn wraps an established connection in the protocol. The caller
// hands over nc's lifecycle: Close closes it.
func NewConn(nc net.Conn) *Conn {
	c := &Conn{
		nc:         nc,
		bw:         bufio.NewWriterSize(nc, 64<<10),
		inflight:   make(map[uint64]*Pending),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Dial connects to addr and wraps the connection.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // pipelined batches flush explicitly
	}
	return NewConn(nc), nil
}

// readLoop is the connection's demultiplexer: decode responses, deliver
// each to its Pending by id. Any decode or transport error is terminal —
// it fails every in-flight request and all future ones.
func (c *Conn) readLoop() {
	defer close(c.readerDone)
	dec := NewStreamDecoder(c.nc, DefaultMaxFrame)
	for {
		payload, err := dec.Next()
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		// One clone detaches the frame from the decoder's reused buffer;
		// the decoded response's Value/Values/Stats alias the clone, so a
		// 64-value MGET costs one allocation here, not 64.
		buf := append(make([]byte, 0, len(payload)), payload...)
		resp, ok := DecodeResponse(buf)
		if !ok {
			c.fail(fmt.Errorf("%w: undecodable response", ErrConnClosed))
			return
		}
		c.tmu.Lock()
		p := c.inflight[resp.ID]
		delete(c.inflight, resp.ID)
		c.tmu.Unlock()
		if p != nil {
			p.ch <- resp
		}
	}
}

// fail marks the connection dead and releases every waiter.
func (c *Conn) fail(err error) {
	c.tmu.Lock()
	if c.closed == nil {
		c.closed = err
	}
	pending := c.inflight
	c.inflight = make(map[uint64]*Pending)
	c.tmu.Unlock()
	c.nc.Close()
	for _, p := range pending {
		close(p.ch)
	}
}

// Close tears the connection down, failing any in-flight requests.
func (c *Conn) Close() error {
	c.fail(ErrConnClosed)
	<-c.readerDone
	return nil
}

// Err returns the connection's terminal error, nil while it is healthy.
func (c *Conn) Err() error {
	c.tmu.Lock()
	defer c.tmu.Unlock()
	return c.closed
}

// Start enqueues req on the pipeline and returns its Pending without
// waiting for the response — the pipelining primitive. The request is
// buffered; call Flush when the window is issued (or use Do). req.ID is
// assigned by the connection; the caller's value is ignored.
func (c *Conn) Start(req *Request) (*Pending, error) {
	p := &Pending{ch: make(chan Response, 1), conn: c}
	c.tmu.Lock()
	if c.closed != nil {
		err := c.closed
		c.tmu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	c.inflight[req.ID] = p
	c.tmu.Unlock()

	c.wmu.Lock()
	if c.werr == nil {
		c.wbuf = AppendRequest(c.wbuf[:0], req)
		if _, err := c.bw.Write(c.wbuf); err != nil {
			c.werr = err
		}
	}
	err := c.werr
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("%w: %v", ErrConnClosed, err))
		return nil, err
	}
	return p, nil
}

// Flush pushes buffered requests to the wire. A pipelined caller issues a
// window of Starts, one Flush, then Waits.
func (c *Conn) Flush() error {
	c.wmu.Lock()
	if c.werr == nil {
		c.werr = c.bw.Flush()
	}
	err := c.werr
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("%w: %v", ErrConnClosed, err))
	}
	return err
}

// Wait blocks for the response. A closed connection yields its terminal
// error.
func (p *Pending) Wait() (Response, error) {
	resp, ok := <-p.ch
	if !ok {
		err := p.conn.Err()
		if err == nil {
			err = ErrConnClosed
		}
		return Response{}, err
	}
	return resp, nil
}

// Do is Start+Flush+Wait: the unpipelined convenience.
func (c *Conn) Do(req *Request) (Response, error) {
	p, err := c.Start(req)
	if err != nil {
		return Response{}, err
	}
	if err := c.Flush(); err != nil {
		return Response{}, err
	}
	return p.Wait()
}

// Batch accumulates a multi-op request — the builder the serving path
// turns into one lock acquisition per shard group. Add entries, then
// MPutRequest/MGetRequest/MDeleteRequest to produce the request (the batch
// may be reused after Reset). Values are aliased, not copied; they must
// stay immutable until the request is written.
type Batch struct {
	keys []uint64
	vals [][]byte
}

// Add appends one key (for MGET/MDELETE) or key/value pair (for MPUT).
func (b *Batch) Add(key uint64, value []byte) {
	b.keys = append(b.keys, key)
	b.vals = append(b.vals, value)
}

// Len returns the number of accumulated entries.
func (b *Batch) Len() int { return len(b.keys) }

// Reset empties the batch, keeping capacity.
func (b *Batch) Reset() {
	b.keys = b.keys[:0]
	b.vals = b.vals[:0]
}

// Keys exposes the accumulated keys (aliased, valid until Reset).
func (b *Batch) Keys() []uint64 { return b.keys }

// MPutRequest builds the batch's MPUT (ttl <= 0 means no expiry).
func (b *Batch) MPutRequest(ttl time.Duration) *Request {
	return &Request{Op: OpMPut, Keys: b.keys, Values: b.vals, TTL: ttl}
}

// MGetRequest builds the batch's MGET (minLSN 0 means no token).
func (b *Batch) MGetRequest(minLSN uint64) *Request {
	return &Request{Op: OpMGet, Keys: b.keys, MinLSN: minLSN}
}

// MDeleteRequest builds the batch's MDELETE.
func (b *Batch) MDeleteRequest() *Request {
	return &Request{Op: OpMDelete, Keys: b.keys}
}

// Client is a connection-pooled protocol client: the drop-in counterpart
// of an http.Client against the HTTP front-end. Connections are created on
// demand, reused when idle, and dropped on failure. The convenience
// methods are synchronous; for pipelining, take a Conn (Acquire/Release)
// and drive Start/Flush/Wait directly.
type Client struct {
	addr    string
	timeout time.Duration

	mu     sync.Mutex
	idle   []*Conn
	closed bool
}

// NewClient returns a pool dialing addr. dialTimeout <= 0 means 5s.
func NewClient(addr string, dialTimeout time.Duration) *Client {
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	return &Client{addr: addr, timeout: dialTimeout}
}

// Acquire returns a healthy pooled connection, dialing when none is idle.
func (c *Client) Acquire() (*Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrConnClosed
	}
	for len(c.idle) > 0 {
		conn := c.idle[len(c.idle)-1]
		c.idle = c.idle[:len(c.idle)-1]
		if conn.Err() == nil {
			c.mu.Unlock()
			return conn, nil
		}
	}
	c.mu.Unlock()
	return Dial(c.addr, c.timeout)
}

// Release returns a connection to the pool. Anything a pipelined holder
// left buffered is flushed first — an unflushed request would never reach
// the server, and its Wait would hang forever. Failed connections (broken
// before Release, or broken by that flush) are Closed, not pooled: Close
// fails every in-flight Pending, so a Wait racing this Release gets
// ErrConnClosed immediately instead of waiting out a response that can
// never arrive.
func (c *Client) Release(conn *Conn) {
	if conn.Err() == nil {
		conn.Flush()
	}
	if conn.Err() != nil {
		conn.Close()
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
	c.mu.Unlock()
}

// Close drops every idle connection. Connections currently Acquired are
// the holder's to close.
func (c *Client) Close() error {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.closed = true
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	return nil
}

// do runs one request on a pooled connection.
func (c *Client) do(req *Request) (Response, error) {
	conn, err := c.Acquire()
	if err != nil {
		return Response{}, err
	}
	resp, err := conn.Do(req)
	c.Release(conn)
	if err != nil {
		return Response{}, err
	}
	return resp, resp.Err()
}

// Get fetches key; ok reports presence. minLSN, when nonzero, is the
// read-your-writes token.
func (c *Client) Get(key uint64, minLSN uint64) (value []byte, ok bool, err error) {
	resp, err := c.do(&Request{Op: OpGet, Key: key, MinLSN: minLSN})
	if err != nil {
		return nil, false, err
	}
	if resp.Status == StatusNotFound {
		return nil, false, nil
	}
	return resp.Value, true, nil
}

// Put stores value under key (ttl <= 0 means no expiry; async enqueues on
// the shard write queue). It returns the write's commit LSNs — the
// read-your-writes tokens (nil on volatile servers and async writes).
func (c *Client) Put(key uint64, value []byte, ttl time.Duration, async bool) ([]ShardLSN, error) {
	resp, err := c.do(&Request{Op: OpPut, Key: key, Value: value, TTL: ttl, Async: async})
	if err != nil {
		return nil, err
	}
	return resp.LSNs, nil
}

// Delete removes key; ok reports whether it was visibly present.
func (c *Client) Delete(key uint64) (lsns []ShardLSN, ok bool, err error) {
	resp, err := c.do(&Request{Op: OpDelete, Key: key})
	if err != nil {
		return nil, false, err
	}
	return resp.LSNs, resp.Status != StatusNotFound, nil
}

// GetWithToken is Get presenting a full cluster token: minLSN plus the
// fencing epoch it was earned under. Against a clustered server a stale
// epoch's token is adjudicated at the promotion cut (honored or
// StatusConflict); single-primary servers take minLSN alone (epoch 0).
func (c *Client) GetWithToken(key, minLSN, epoch uint64) (value []byte, ok bool, err error) {
	resp, err := c.do(&Request{Op: OpGet, Key: key, MinLSN: minLSN, Epoch: epoch})
	if err != nil {
		return nil, false, err
	}
	if resp.Status == StatusNotFound {
		return nil, false, nil
	}
	return resp.Value, true, nil
}

// MGet fetches keys as one wire batch → one lock acquisition per shard
// group server-side. The result is parallel to keys, nil marking absent.
func (c *Client) MGet(keys []uint64, minLSN uint64) ([][]byte, error) {
	resp, err := c.do(&Request{Op: OpMGet, Keys: keys, MinLSN: minLSN})
	if err != nil {
		return nil, err
	}
	return resp.Values, nil
}

// MGetWithToken is MGet under a full (minLSN, epoch) cluster token.
func (c *Client) MGetWithToken(keys []uint64, minLSN, epoch uint64) ([][]byte, error) {
	resp, err := c.do(&Request{Op: OpMGet, Keys: keys, MinLSN: minLSN, Epoch: epoch})
	if err != nil {
		return nil, err
	}
	return resp.Values, nil
}

// MPut stores the batch as one MultiPut, returning the commit LSN of every
// shard the batch touched.
func (c *Client) MPut(keys []uint64, values [][]byte, ttl time.Duration) ([]ShardLSN, error) {
	resp, err := c.do(&Request{Op: OpMPut, Keys: keys, Values: values, TTL: ttl})
	if err != nil {
		return nil, err
	}
	return resp.LSNs, nil
}

// MDelete removes the batch, returning how many keys were visibly present.
func (c *Client) MDelete(keys []uint64) (removed int, lsns []ShardLSN, err error) {
	resp, err := c.do(&Request{Op: OpMDelete, Keys: keys})
	if err != nil {
		return 0, nil, err
	}
	return int(resp.Applied), resp.LSNs, nil
}

// Cas compares-and-swaps key atomically server-side: old nil means "only
// if absent", new nil means "delete on match". swapped reports whether the
// precondition held and the swap applied.
func (c *Client) Cas(key uint64, old, new []byte) (swapped bool, lsns []ShardLSN, err error) {
	resp, err := c.do(&Request{Op: OpCas, Key: key, Old: old, New: new})
	if err != nil {
		return false, nil, err
	}
	return resp.Swapped, resp.LSNs, nil
}

// Txn runs a conditional atomic batch: every condition must hold (nil
// value = key absent) for the ops to apply all-or-nothing. committed
// reports the decision; when false, mismatch is the first failing
// condition's key. lsns are the touched shards' commit LSNs on commit.
func (c *Client) Txn(conds []TxnCond, ops []TxnOp) (committed bool, mismatch uint64, lsns []ShardLSN, err error) {
	resp, err := c.do(&Request{Op: OpTxn, Conds: conds, TxnOps: ops})
	if err != nil {
		return false, 0, nil, err
	}
	return resp.Committed, resp.Mismatch, resp.LSNs, nil
}

// Flush applies the server's queued async writes, returning the count.
func (c *Client) Flush() (int, error) {
	resp, err := c.do(&Request{Op: OpFlush})
	if err != nil {
		return 0, err
	}
	return int(resp.Applied), nil
}

// Stats fetches the server's stats document (the /stats JSON).
func (c *Client) Stats() ([]byte, error) {
	resp, err := c.do(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}
