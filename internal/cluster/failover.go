package cluster

import (
	"errors"
	"fmt"

	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/repl"
)

// ErrNotReady is returned by Failover when no follower has applied the
// partition's full promoted base yet (a fresh follower mid-bootstrap).
// Promoting such a follower would regress below a previous promotion's
// cut — un-surviving history an earlier epoch bump already certified as
// kept — so the failover is refused before anything is fenced; retry once
// replication has had a moment.
var ErrNotReady = errors.New("cluster: no follower has caught up to the promoted base")

// Failover deposes partition pi's primary and promotes its most-caught-up
// follower. The protocol, in fencing order:
//
//  1. Fence the old primary. Fence blocks until in-flight writes commit;
//     after it returns nothing can ever commit there again, so the
//     follower positions read below are final.
//  2. Stop the replication endpoint and the followers' pullers, freezing
//     each follower at an exact per-shard applied prefix of the old
//     primary's history.
//  3. Pick the eligible follower (one that has applied at least the
//     promoted base — see ErrNotReady) with the highest total applied LSN;
//     its positions are the promotion cut — the boundary between history
//     that survived and acknowledged writes that are lost (the price of
//     asynchronous replication; call WaitCaughtUp first for a zero-loss
//     planned handoff). Cuts are therefore monotonic per shard across
//     promotions, which is what lets token adjudication bind a stale token
//     to the first promotion after its epoch.
//  4. Seed a fresh durable directory from the follower's state, stamped at
//     the cut (kvs.SeedSnapshotDir), and open the new primary over it at
//     epoch+1 with its LSNs floored at the cut: the new log continues the
//     old sequence, so tokens stay comparable across the bump.
//  5. Record the cut against the new epoch (token adjudication), swap the
//     partition to the new member, and rebuild the follower set against
//     it.
//
// The partition's lock is held for the duration: operations on this
// partition block until promotion completes (recovery-time-to-first-write)
// while other partitions keep serving. The fenced corpse is retained —
// chaos tests keep writing to it to prove the fence holds — and closed
// with the cluster.
func (c *Cluster) Failover(pi int) (newEpoch uint64, err error) {
	if pi < 0 || pi >= len(c.parts) {
		return 0, fmt.Errorf("cluster: no partition %d", pi)
	}
	p := c.parts[pi]
	p.mu.Lock()
	defer p.mu.Unlock()

	if len(p.followers) == 0 {
		return 0, fmt.Errorf("cluster: partition %d has no followers to promote", pi)
	}
	// Eligibility gate, checked before fencing anything: a follower is
	// promotable only once every shard has applied at least the promoted
	// base (the previous promotion's cut) — otherwise its position would
	// drag the new cut below the old one, losing history a previous epoch
	// bump already adjudicated as survived. Applied positions are monotonic
	// while pullers run, so an eligible follower stays eligible through the
	// fence below.
	base := p.base()
	if !anyEligible(p.followers, base) {
		return 0, fmt.Errorf("cluster: partition %d: %w", pi, ErrNotReady)
	}

	old := p.member
	old.Fence()
	old.StopServing()
	for _, f := range p.followers {
		f.Stop()
	}

	var best *repl.Follower
	var bestSum uint64
	for _, f := range p.followers {
		if !eligible(f, base) {
			continue
		}
		if s := appliedSum(f); best == nil || s > bestSum {
			best, bestSum = f, s
		}
	}
	cut := best.AppliedLSNs()

	newEpoch = p.epoch + 1
	dir := c.partDir(pi, newEpoch)
	if err := kvs.SeedSnapshotDir(dir, best.Engine(), cut); err != nil {
		return 0, fmt.Errorf("cluster: partition %d: seeding promoted state: %w", pi, err)
	}
	m, err := newMember(pi, newEpoch, dir, c.cfg.Shards, c.cfg.MkLock, c.cfg.Policy, cut)
	if err != nil {
		return 0, fmt.Errorf("cluster: partition %d: opening promoted primary: %w", pi, err)
	}
	// The whole old follower set retires: the promoted one's state now
	// lives in the new primary, the rest bootstrap fresh from it (snapshot
	// frame resync — cheaper than reasoning about resuming mid-epoch).
	for _, f := range p.followers {
		f.Close()
	}
	fs, err := c.openFollowers(m)
	if err != nil {
		m.Close()
		return 0, fmt.Errorf("cluster: partition %d: rebuilding followers: %w", pi, err)
	}

	p.promotions = append(p.promotions, promotion{epoch: newEpoch, cut: cut})
	p.corpses = append(p.corpses, old)
	p.member = m
	p.followers = fs
	p.epoch = newEpoch
	return newEpoch, nil
}

func appliedSum(f *repl.Follower) uint64 {
	var sum uint64
	for _, l := range f.AppliedLSNs() {
		sum += l
	}
	return sum
}

// base returns the partition's promoted base: the latest promotion's cut,
// or nil (all zeros) in the partition's first epoch. Caller holds p.mu.
func (p *partition) base() []uint64 {
	if len(p.promotions) == 0 {
		return nil
	}
	return p.promotions[len(p.promotions)-1].cut
}

// eligible reports whether a follower has applied at least the promoted
// base on every shard, making its positions a valid next cut.
func eligible(f *repl.Follower, base []uint64) bool {
	if base == nil {
		return true
	}
	applied := f.AppliedLSNs()
	if len(applied) != len(base) {
		return false
	}
	for sh, b := range base {
		if applied[sh] < b {
			return false
		}
	}
	return true
}

func anyEligible(fs []*repl.Follower, base []uint64) bool {
	for _, f := range fs {
		if eligible(f, base) {
			return true
		}
	}
	return false
}

// Cut returns the promotion cut that installed epoch on partition pi (per
// local shard), or nil when epoch is the partition's first. Chaos oracles
// use it to truncate the model at the survived-history boundary.
func (c *Cluster) Cut(pi int, epoch uint64) []uint64 {
	p := c.parts[pi]
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, promo := range p.promotions {
		if promo.epoch == epoch {
			return append([]uint64(nil), promo.cut...)
		}
	}
	return nil
}
