package kvs

// Certification of the transaction layer: API semantics, the 2PL
// atomicity guarantees under concurrency, crash atomicity of the v4
// witness protocol (torn multi-shard commits roll forward on reopen), and
// follower/failover inheritance of transactional writes through the
// replication stream.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/xrand"
)

// twoShardKeys returns two keys guaranteed to live on different shards.
func twoShardKeys(t *testing.T, s *Sharded) (a, b uint64) {
	t.Helper()
	a = 1
	for b = 2; b < 10_000; b++ {
		if s.ShardOf(b) != s.ShardOf(a) {
			return a, b
		}
	}
	t.Fatal("no cross-shard key pair found")
	return 0, 0
}

func TestTxnSemantics(t *testing.T) {
	s, err := NewSharded(8, mkBravo)
	if err != nil {
		t.Fatal(err)
	}
	a, b := twoShardKeys(t, s)

	if err := s.Txn(nil, func(*Tx) error { return nil }); !errors.Is(err, ErrTxnNoKeys) {
		t.Fatalf("empty key set: %v", err)
	}
	big := make([]uint64, MaxTxnKeys+1)
	for i := range big {
		big[i] = uint64(i)
	}
	if err := s.Txn(big, func(*Tx) error { return nil }); !errors.Is(err, ErrTxnTooManyKeys) {
		t.Fatalf("oversize key set: %v", err)
	}
	// Exactly MaxTxnKeys is fine, and duplicates collapse below the bound.
	if err := s.Txn(big[:MaxTxnKeys], func(*Tx) error { return nil }); err != nil {
		t.Fatalf("MaxTxnKeys keys: %v", err)
	}

	// Commit applies everything; the body sees its own staged writes,
	// including staged deletes.
	s.Put(a, []byte("old-a"))
	err = s.Txn([]uint64{a, b, a}, func(tx *Tx) error {
		if v, ok := tx.Get(a); !ok || string(v) != "old-a" {
			t.Fatalf("Tx.Get(a) = %q/%v before staging", v, ok)
		}
		tx.Put(a, []byte("new-a"))
		tx.Put(b, []byte("new-b"))
		tx.Delete(a)
		if _, ok := tx.Get(a); ok {
			t.Fatal("staged delete still visible to Tx.Get")
		}
		tx.Put(a, []byte("final-a")) // last staged op per key wins
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get(a); string(v) != "final-a" {
		t.Fatalf("a = %q after commit", v)
	}
	if v, _ := s.Get(b); string(v) != "new-b" {
		t.Fatalf("b = %q after commit", v)
	}

	// Abort leaves both shards untouched and surfaces the body's error.
	boom := errors.New("boom")
	if err := s.Txn([]uint64{a, b}, func(tx *Tx) error {
		tx.Put(a, []byte("aborted"))
		tx.Delete(b)
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("abort returned %v", err)
	}
	if v, _ := s.Get(a); string(v) != "final-a" {
		t.Fatalf("a = %q after abort", v)
	}
	if v, _ := s.Get(b); string(v) != "new-b" {
		t.Fatalf("b = %q after abort", v)
	}

	// A TTL staged born-expired commits invisible, like PutTTL.
	if err := s.Txn([]uint64{a}, func(tx *Tx) error {
		tx.PutTTL(a, []byte("gone"), -time.Second)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(a); ok {
		t.Fatal("born-expired transactional put is visible")
	}

	// Undeclared keys panic — the 2PL guarantee would silently rot.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("undeclared key did not panic")
			}
		}()
		_ = s.Txn([]uint64{a}, func(tx *Tx) error {
			tx.Put(b, []byte("x"))
			return nil
		})
	}()
	// The panic path released the locks: the shard is still writable.
	s.Put(a, []byte("alive"))
	if v, _ := s.Get(a); string(v) != "alive" {
		t.Fatal("engine wedged after in-body panic")
	}

	// Counters: commits/aborts count on every participant, keys on writers.
	total := s.Stats().Total()
	if total.TxnCommits == 0 || total.TxnAborts == 0 || total.TxnKeys == 0 {
		t.Fatalf("txn counters did not move: %+v", total)
	}
}

func TestCompareAndSwapAndUpdate(t *testing.T) {
	s, err := NewSharded(8, mkBravo)
	if err != nil {
		t.Fatal(err)
	}
	const k = 42
	// nil old = only-if-absent.
	if ok, err := s.CompareAndSwap(k, nil, []byte("v1")); err != nil || !ok {
		t.Fatalf("CAS absent: %v/%v", ok, err)
	}
	if ok, err := s.CompareAndSwap(k, nil, []byte("v2")); err != nil || ok {
		t.Fatalf("CAS absent on present key: %v/%v", ok, err)
	}
	if ok, err := s.CompareAndSwap(k, []byte("nope"), []byte("v2")); err != nil || ok {
		t.Fatalf("CAS mismatch: %v/%v", ok, err)
	}
	if ok, err := s.CompareAndSwap(k, []byte("v1"), []byte("v2")); err != nil || !ok {
		t.Fatalf("CAS match: %v/%v", ok, err)
	}
	// nil new = delete on match.
	if ok, err := s.CompareAndSwap(k, []byte("v2"), nil); err != nil || !ok {
		t.Fatalf("CAS delete: %v/%v", ok, err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("CAS delete left the key")
	}
	// Update observes and replaces atomically; declining the write is a
	// committed no-op.
	if err := s.Update(k, func(cur []byte, ok bool) ([]byte, bool) {
		if ok {
			t.Fatalf("Update saw %q on an absent key", cur)
		}
		return []byte("u1"), true
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(k, func(cur []byte, ok bool) ([]byte, bool) {
		if !ok || string(cur) != "u1" {
			t.Fatalf("Update saw %q/%v", cur, ok)
		}
		return nil, false
	}); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get(k); string(v) != "u1" {
		t.Fatalf("declined Update changed the value to %q", v)
	}
}

// TestTxnAtomicityStorm is the race certification: concurrent transfers
// between accounts spread across shards conserve the total balance, and
// concurrent CAS/Update contenders never lose an increment. Run under
// -race in CI.
func TestTxnAtomicityStorm(t *testing.T) {
	iters := 2000
	if testing.Short() {
		iters = 300
	}
	for _, durable := range []bool{false, true} {
		t.Run(map[bool]string{false: "volatile", true: "durable"}[durable], func(t *testing.T) {
			var s *Sharded
			var err error
			dir := t.TempDir()
			if durable {
				s = openTestKV(t, dir, 8, SyncNone)
			} else if s, err = NewSharded(8, mkBravo); err != nil {
				t.Fatal(err)
			}
			const accounts = 32
			const initial = uint64(1000)
			for k := uint64(0); k < accounts; k++ {
				s.Put(k, EncodeValue(initial))
			}
			balance := func(v []byte) uint64 { return binary.LittleEndian.Uint64(v) }

			var wg sync.WaitGroup
			const workers = 8
			var casWins atomic.Uint64
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := xrand.NewXorShift64(uint64(w)*0xDEADBEEF + 1)
					for i := 0; i < iters; i++ {
						switch rng.Intn(4) {
						case 0: // contended CAS increment on one hot key
							for {
								cur, _ := s.Get(0)
								next := EncodeValue(balance(cur) + 1)
								ok, err := s.CompareAndSwap(0, cur, next)
								if err != nil {
									t.Errorf("CAS: %v", err)
									return
								}
								if ok {
									casWins.Add(1)
									break
								}
							}
						case 1: // contended Update increment on another hot key
							if err := s.Update(1, func(cur []byte, ok bool) ([]byte, bool) {
								return EncodeValue(balance(cur) + 1), true
							}); err != nil {
								t.Errorf("Update: %v", err)
								return
							}
						default: // transfer between two random accounts
							a := 2 + rng.Next()%(accounts-2)
							b := 2 + rng.Next()%(accounts-2)
							if a == b {
								continue
							}
							amt := 1 + rng.Next()%10
							if err := s.Txn([]uint64{a, b}, func(tx *Tx) error {
								av, _ := tx.Get(a)
								bv, _ := tx.Get(b)
								if balance(av) < amt {
									return nil // committed read-only txn
								}
								tx.Put(a, EncodeValue(balance(av)-amt))
								tx.Put(b, EncodeValue(balance(bv)+amt))
								return nil
							}); err != nil {
								t.Errorf("Txn: %v", err)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()

			check := func(s *Sharded, label string) {
				t.Helper()
				sum := uint64(0)
				for k := uint64(2); k < accounts; k++ {
					v, ok := s.Get(k)
					if !ok {
						t.Fatalf("%s: account %d vanished", label, k)
					}
					sum += balance(v)
				}
				if want := initial * (accounts - 2); sum != want {
					t.Fatalf("%s: transfers did not conserve balance: %d, want %d", label, sum, want)
				}
				v0, _ := s.Get(0)
				if got := balance(v0); got != initial+casWins.Load() {
					t.Fatalf("%s: CAS counter %d, want %d wins over %d", label, got, casWins.Load(), initial)
				}
			}
			check(s, "live")
			if durable {
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				r := openTestKV(t, dir, 8, SyncNone)
				defer r.Close()
				check(r, "recovered")
			}
		})
	}
}

// lastFrameOffset walks a WAL file's frames and returns the byte offset
// where its final complete frame begins.
func lastFrameOffset(t *testing.T, path string) int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off, last := 0, -1
	for {
		_, n, status := splitFrame(data[off:])
		if status != frameOK {
			break
		}
		last = off
		off += n
	}
	if last < 0 {
		t.Fatalf("%s holds no complete frame", path)
	}
	return int64(last)
}

// TestTxnTornCommitRollForward mutilates a multi-shard commit the way a
// crash between participant appends would, and demands recovery restore
// atomicity from the surviving witness copy — in either direction, and
// stably across a second reopen.
func TestTxnTornCommitRollForward(t *testing.T) {
	for _, tearFirst := range []bool{false, true} {
		t.Run(fmt.Sprintf("tearFirst=%v", tearFirst), func(t *testing.T) {
			dir := t.TempDir()
			s := openTestKV(t, dir, 4, SyncNone)
			a, b := twoShardKeys(t, s)
			s.Put(a, []byte("a0"))
			s.Put(b, []byte("b0"))
			if err := s.Txn([]uint64{a, b}, func(tx *Tx) error {
				tx.Put(a, []byte("a1"))
				tx.Delete(b)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			lsnA, lsnB := s.ShardLSN(s.ShardOf(a)), s.ShardLSN(s.ShardOf(b))
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// Tear one participant's copy of the commit off its log.
			torn := s.ShardOf(b)
			if tearFirst {
				torn = s.ShardOf(a)
			}
			walPath := s.walPath(torn)
			if err := os.Truncate(walPath, lastFrameOffset(t, walPath)); err != nil {
				t.Fatal(err)
			}

			for round := 0; round < 2; round++ {
				r := openTestKV(t, dir, 4, SyncNone)
				if v, ok := r.Get(a); !ok || string(v) != "a1" {
					t.Fatalf("round %d: a = %q/%v, want a1 (roll-forward)", round, v, ok)
				}
				if _, ok := r.Get(b); ok {
					t.Fatalf("round %d: b survived its transactional delete", round)
				}
				// The repair continued each shard's LSN sequence.
				if got := r.ShardLSN(s.ShardOf(a)); got != lsnA {
					t.Fatalf("round %d: shard(a) LSN %d, want %d", round, got, lsnA)
				}
				if got := r.ShardLSN(s.ShardOf(b)); got != lsnB {
					t.Fatalf("round %d: shard(b) LSN %d, want %d", round, got, lsnB)
				}
				if err := r.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestTxnTornCommitBothLost is the other atomicity direction: when every
// participant's copy is torn away, the transaction disappears wholesale —
// no participant keeps half of it.
func TestTxnTornCommitBothLost(t *testing.T) {
	dir := t.TempDir()
	s := openTestKV(t, dir, 4, SyncNone)
	a, b := twoShardKeys(t, s)
	s.Put(a, []byte("a0"))
	s.Put(b, []byte("b0"))
	if err := s.Txn([]uint64{a, b}, func(tx *Tx) error {
		tx.Put(a, []byte("a1"))
		tx.Put(b, []byte("b1"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{a, b} {
		p := s.walPath(s.ShardOf(k))
		if err := os.Truncate(p, lastFrameOffset(t, p)); err != nil {
			t.Fatal(err)
		}
	}
	r := openTestKV(t, dir, 4, SyncNone)
	defer r.Close()
	if v, _ := r.Get(a); string(v) != "a0" {
		t.Fatalf("a = %q, want the pre-transaction value", v)
	}
	if v, _ := r.Get(b); string(v) != "b0" {
		t.Fatalf("b = %q, want the pre-transaction value", v)
	}
}

// drainRepl streams every shard of src into dst until caught up, returning
// each shard's last applied LSN.
func drainRepl(t *testing.T, src, dst *Sharded, curs []ReplCursor) []uint64 {
	t.Helper()
	lsns := make([]uint64, src.NumShards())
	for shard := 0; shard < src.NumShards(); shard++ {
		for {
			chunk, err := src.ReplRead(shard, &curs[shard], 0)
			if err != nil {
				t.Fatalf("ReplRead shard %d: %v", shard, err)
			}
			if len(chunk) == 0 {
				break
			}
			for len(chunk) > 0 {
				rec, n, err := DecodeReplFrame(chunk)
				if err != nil || n == 0 {
					t.Fatalf("DecodeReplFrame shard %d: n=%d err=%v", shard, n, err)
				}
				if err := dst.ApplyReplRecord(shard, rec); err != nil {
					t.Fatalf("ApplyReplRecord shard %d: %v", shard, err)
				}
				chunk = chunk[n:]
			}
		}
		lsns[shard] = curs[shard].Next - 1
	}
	return lsns
}

// TestTxnReplFollowerFailover certifies that transactional writes flow
// through replication and survive promotion: a follower tails a primary
// running transactions, the primary "fails", the follower is promoted into
// a fresh durable engine with the LSN fence, more transactions run against
// the promoted primary, and the final recovered state matches a sequential
// model that saw both phases.
func TestTxnReplFollowerFailover(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 120
	}
	const shards = 4
	primDir := t.TempDir()
	prim := openTestKV(t, primDir, shards, SyncNone)
	follower, err := NewSharded(shards, mkBravo)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[uint64][]byte{}
	rng := xrand.NewXorShift64(0xFA110)

	phase := func(s *Sharded) {
		for i := 0; i < iters; i++ {
			k := rng.Intn(128)
			switch rng.Intn(6) {
			case 0:
				s.Delete(k)
				delete(ref, k)
			case 1, 2: // multi-key transaction, often cross-shard
				k2 := rng.Intn(128)
				v1, v2 := EncodeValue(rng.Next()), EncodeValue(rng.Next())
				if err := s.Txn([]uint64{k, k2}, func(tx *Tx) error {
					tx.Put(k, v1)
					tx.Put(k2, v2)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				ref[k] = v1
				ref[k2] = v2
			case 3: // CAS guided by the model
				var old []byte
				if v, ok := ref[k]; ok {
					old = v
				}
				nv := EncodeValue(rng.Next())
				if ok, err := s.CompareAndSwap(k, old, nv); err != nil || !ok {
					t.Fatalf("CAS: %v/%v", ok, err)
				}
				ref[k] = nv
			default:
				v := EncodeValue(rng.Next())
				s.Put(k, v)
				ref[k] = v
			}
		}
	}

	phase(prim)
	curs := make([]ReplCursor, shards)
	lsns := drainRepl(t, prim, follower, curs)
	compareSnapshot(t, follower, ref, "follower after phase 1")

	// Primary fails; promote the follower: copy its state (values and
	// TTLs) into a fresh durable engine floored at the applied LSNs, the
	// fence failover promotion cuts.
	if err := prim.Close(); err != nil {
		t.Fatal(err)
	}
	promDir := t.TempDir()
	prom, err := NewSharded(shards, mkBravo, WithDurability(promDir, SyncNone), WithLSNBase(lsns))
	if err != nil {
		t.Fatal(err)
	}
	follower.RangeTTL(func(k uint64, v []byte, rem time.Duration) bool {
		if rem > 0 {
			prom.PutTTL(k, v, rem)
		} else {
			prom.Put(k, v)
		}
		return true
	})
	compareSnapshot(t, prom, ref, "promoted before phase 2")

	phase(prom)
	compareSnapshot(t, prom, ref, "promoted after phase 2")
	if err := prom.Close(); err != nil {
		t.Fatal(err)
	}
	r := openTestKV(t, promDir, shards, SyncNone)
	defer r.Close()
	compareSnapshot(t, r, ref, "promoted recovered")
}

// TestTxnWitnessRecordRoundTrip pins the v4 encoding: what beginTxn writes,
// walDecodePayload returns, byte-exact fields included.
func TestTxnWitnessRecordRoundTrip(t *testing.T) {
	w := &shardWAL{lsn: 9}
	parts := []walPart{{shard: 1, lsn: 10}, {shard: 5, lsn: 3}, {shard: 6, lsn: 77}}
	w.beginTxn(parts, 3)
	w.addPut(100, []byte("alpha"), 0)
	w.addDelete(200)
	w.addPut(300, []byte("beta"), 0)
	payload := w.buf[walHeaderSize:]
	rec, ok := walDecodePayload(payload)
	if !ok {
		t.Fatal("round trip rejected")
	}
	if rec.version != walVersionTxn || rec.lsn != 10 {
		t.Fatalf("decoded version %d lsn %d", rec.version, rec.lsn)
	}
	if len(rec.parts) != len(parts) {
		t.Fatalf("decoded %d participants", len(rec.parts))
	}
	for i, p := range parts {
		if rec.parts[i] != p {
			t.Fatalf("participant %d = %+v, want %+v", i, rec.parts[i], p)
		}
	}
	if len(rec.entries) != 3 || rec.entries[0].op != walOpPut ||
		!bytes.Equal(rec.entries[0].val, []byte("alpha")) ||
		rec.entries[1].op != walOpDelete || rec.entries[1].key != 200 {
		t.Fatalf("decoded entries %+v", rec.entries)
	}
	if rec.txnKey() != (walPart{shard: 1, lsn: 10}) {
		t.Fatalf("txnKey = %+v", rec.txnKey())
	}
	// Non-canonical participant lists must be rejected wholesale.
	for _, bad := range [][]walPart{
		{{shard: 1, lsn: 10}},                     // single participant
		{{shard: 5, lsn: 10}, {shard: 1, lsn: 3}}, // descending shards
		{{shard: 1, lsn: 10}, {shard: 1, lsn: 3}}, // duplicate shard
		{{shard: 1, lsn: 0}, {shard: 5, lsn: 3}},  // zero LSN
	} {
		w := &shardWAL{lsn: 9}
		w.beginTxn(bad, 0)
		if _, ok := walDecodePayload(w.buf[walHeaderSize:]); ok {
			t.Fatalf("non-canonical participant list %+v decoded", bad)
		}
	}
}
