package hash

import (
	"testing"
	"testing/quick"
)

func TestMix64KnownValues(t *testing.T) {
	// fmix64 fixed points and spot values.
	if got := Mix64(0); got != 0 {
		t.Errorf("Mix64(0) = %#x, want 0", got)
	}
	if Mix64(1) == 1 {
		t.Error("Mix64(1) should avalanche away from 1")
	}
	if Mix64(1) == Mix64(2) {
		t.Error("Mix64(1) == Mix64(2)")
	}
}

func TestMix64Bijective(t *testing.T) {
	// Each step of fmix64 is invertible, so distinct inputs must produce
	// distinct outputs. Sample heavily.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i * 0x9e3779b97f4a7c15)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision: Mix64 inputs %#x and %#x both map to %#x", prev, i, h)
		}
		seen[h] = i
	}
}

func TestMix32Bijective(t *testing.T) {
	seen := make(map[uint32]uint32, 1<<16)
	for i := uint32(0); i < 1<<16; i++ {
		h := Mix32(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision: Mix32 inputs %#x and %#x both map to %#x", prev, i, h)
		}
		seen[h] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Mix64(0x0123456789abcdef)
	for bit := 0; bit < 64; bit++ {
		d := base ^ Mix64(0x0123456789abcdef^(1<<bit))
		n := popcount(d)
		if n < 10 || n > 54 {
			t.Errorf("input bit %d flips only %d output bits", bit, n)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestIndexInBounds(t *testing.T) {
	f := func(lock uint64, self uint64) bool {
		i1 := Index(uintptr(lock), self, 4096)
		i2 := Index2(uintptr(lock), self, 4096)
		return i1 < 4096 && i2 < 4096
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexDeterministic(t *testing.T) {
	f := func(lock uint64, self uint64) bool {
		return Index(uintptr(lock), self, 4096) == Index(uintptr(lock), self, 4096)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexDispersal(t *testing.T) {
	// 64 threads on one lock must spread over the table: the paper's design
	// depends on "readers of the same lock tend to write to different
	// locations". With 64 IDs into 4096 slots, expect few collisions
	// (birthday bound: ~0.5 expected pairs).
	const threads = 64
	lock := uintptr(0xc000123440)
	seen := map[uint32]bool{}
	for i := 0; i < threads; i++ {
		seen[Index(lock, uint64(i), 4096)] = true
	}
	if len(seen) < threads-4 {
		t.Errorf("excessive collisions: %d distinct slots for %d threads", len(seen), threads)
	}
}

func TestIndexProbesIndependent(t *testing.T) {
	// The secondary probe must not shadow the primary.
	lock := uintptr(0xc000123440)
	same := 0
	for i := 0; i < 1024; i++ {
		if Index(lock, uint64(i), 4096) == Index2(lock, uint64(i), 4096) {
			same++
		}
	}
	if same > 8 {
		t.Errorf("probes coincide for %d/1024 identities", same)
	}
}
