package rwl

import (
	"fmt"
	"sort"
	"sync"
)

// Factory constructs a fresh lock instance.
type Factory func() RWLock

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register associates a lock constructor with a name. It panics on duplicate
// registration: lock names are part of the benchmark surface and collisions
// are programming errors.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("rwl: duplicate lock registration %q", name))
	}
	registry[name] = f
}

// New instantiates a registered lock by name.
func New(name string) (RWLock, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("rwl: unknown lock %q (known: %v)", name, Names())
	}
	return f(), nil
}

// Lookup returns the factory registered under name.
func Lookup(name string) (Factory, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// Names returns the sorted list of registered lock names.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
