package bench

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	_ "github.com/bravolock/bravo/internal/locks/all"
	"github.com/bravolock/bravo/internal/xrand"
)

// quick is a fast protocol for smoke tests.
var quick = Config{Interval: 30 * time.Millisecond, Runs: 1, Threads: []int{1, 2}}

func TestRunWorkersCountsAllWorkers(t *testing.T) {
	total := RunWorkers(4, 20*time.Millisecond, func(id int, stop *atomic.Bool) uint64 {
		var n uint64
		for !stop.Load() {
			n++
		}
		return n
	})
	if total == 0 {
		t.Fatal("no work recorded")
	}
}

func TestMedianOddRuns(t *testing.T) {
	cfg := Config{Runs: 3}
	i := 0
	vals := []float64{30, 10, 20}
	got := cfg.Median(func() float64 { v := vals[i]; i++; return v })
	if got != 20 {
		t.Fatalf("median = %v, want 20", got)
	}
}

func TestAlternatorRunsAllLocks(t *testing.T) {
	for _, lock := range []string{"ba", "bravo-ba", "pthread", "bravo-pthread"} {
		for _, threads := range []int{1, 3} {
			steps := Alternator(lock, threads, quick)
			if steps <= 0 {
				t.Errorf("%s/%d: no alternator steps", lock, threads)
			}
		}
	}
}

func TestTestRWLockRuns(t *testing.T) {
	for _, lock := range []string{"ba", "bravo-ba"} {
		if ops := TestRWLock(lock, 2, quick); ops <= 0 {
			t.Errorf("%s: no ops", lock)
		}
	}
}

func TestRWBenchRuns(t *testing.T) {
	for _, prob := range []float64{0.9, 0.01} {
		if ops := RWBench("bravo-ba", 3, prob, quick); ops <= 0 {
			t.Errorf("prob=%v: no ops", prob)
		}
	}
}

func TestInterferenceRatioSane(t *testing.T) {
	r := Interference(4, 4, quick)
	if r <= 0 || r > 3 {
		t.Fatalf("interference ratio %v not sane", r)
	}
}

func TestReadWhileWritingRuns(t *testing.T) {
	if ops := ReadWhileWriting("bravo-ba", 3, quick); ops <= 0 {
		t.Fatal("no reader ops")
	}
}

func TestHashTableBenchRuns(t *testing.T) {
	if ops := HashTableBench("bravo-ba", 3, quick); ops <= 0 {
		t.Fatal("no ops")
	}
}

func TestLocktortureBothKernels(t *testing.T) {
	for _, k := range []Kernel{Stock, Bravo} {
		res := Locktorture(k, 3, 1, 50*time.Microsecond, 10*time.Microsecond, quick)
		if res.Reads == 0 {
			t.Errorf("%s: no read acquisitions", k)
		}
		if res.Writes == 0 {
			t.Errorf("%s: no write acquisitions", k)
		}
	}
}

func TestLocktortureReadOnly(t *testing.T) {
	res := Locktorture(Bravo, 3, 0, 5*time.Microsecond, 0, quick)
	if res.Reads == 0 || res.Writes != 0 {
		t.Fatalf("unexpected counts: %+v", res)
	}
}

func TestWillItScaleAllTests(t *testing.T) {
	for _, test := range []string{"page_fault1", "page_fault2", "mmap1", "mmap2"} {
		for _, k := range []Kernel{Stock, Bravo} {
			v := WillItScale(k, test, 2, 16*4096, quick)
			if v <= 0 {
				t.Errorf("%s/%s: no throughput", k, test)
			}
		}
	}
}

func TestMetisAppsRun(t *testing.T) {
	wc := MetisWC(Bravo, 2, 5000)
	if wc <= 0 {
		t.Fatal("wc reported zero runtime")
	}
	wr := MetisWrmem(Stock, 2, 500)
	if wr <= 0 {
		t.Fatal("wrmem reported zero runtime")
	}
	if s := MetisSpeedup(100*time.Millisecond, 80*time.Millisecond); s != 0.2 {
		t.Fatalf("speedup = %v, want 0.2", s)
	}
	if MetisSpeedup(0, time.Second) != 0 {
		t.Fatal("degenerate speedup not guarded")
	}
}

func TestRevocationScanRatePositive(t *testing.T) {
	rate := RevocationScanRate(4096, 50)
	if rate <= 0 {
		t.Fatal("scan rate not measured")
	}
	// Sanity ceiling: a scan should stay well under 1µs per slot even on a
	// loaded host.
	if rate > 1000 {
		t.Fatalf("scan rate %vns/slot implausible", rate)
	}
}

func TestSweepLocksShape(t *testing.T) {
	s := SweepLocks([]string{"ba", "bravo-ba"}, Config{Threads: []int{1, 2}},
		func(lockName string, threads int) float64 { return float64(threads) })
	if len(s) != 2 || len(s["ba"]) != 2 || s["ba"][1].Value != 2 {
		t.Fatalf("sweep malformed: %+v", s)
	}
}

func TestWriteSeriesFormatting(t *testing.T) {
	var buf bytes.Buffer
	WriteSeries(&buf, "Figure X", "threads", "ops/sec", Series{
		"ba":       {{X: 1, Value: 10}, {X: 2, Value: 20}},
		"bravo-ba": {{X: 1, Value: 11}, {X: 2, Value: 22}},
	})
	out := buf.String()
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "bravo-ba") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "22.0") {
		t.Fatalf("missing data:\n%s", out)
	}
}

func TestWritePointsFormatting(t *testing.T) {
	var buf bytes.Buffer
	WritePoints(&buf, "Figure 1", "locks", "fraction", []Point{{X: 1, Value: 0.99}})
	if !strings.Contains(buf.String(), "0.9900") {
		t.Fatalf("missing data:\n%s", buf.String())
	}
}

func TestWorkAdvancesRNGDeterministically(t *testing.T) {
	a, b := xrand.NewXorShift64(5), xrand.NewXorShift64(5)
	Work(a, 100)
	for i := 0; i < 100; i++ {
		b.Next()
	}
	if a.Next() != b.Next() {
		t.Fatal("Work does not advance the RNG by exactly n steps")
	}
}
