package all

import (
	"testing"

	"github.com/bravolock/bravo/internal/lockcheck"
	"github.com/bravolock/bravo/internal/rwl"
)

// expected is the lineup the harness and docs promise.
var expected = []string{
	"ba", "pf-t", "pthread", "per-cpu", "cohort-rw", "mutex", "go-rw",
	"bravo-ba", "bravo-pf-t", "bravo-pthread", "bravo-mutex", "bravo-go",
	"bravo-ba-2d", "bravo-ba-private", "bravo-ba-probe2", "bravo-ba-revmu",
	"bravo-ba-random",
}

func TestRegistryLineup(t *testing.T) {
	names := map[string]bool{}
	for _, n := range rwl.Names() {
		names[n] = true
	}
	for _, want := range expected {
		if !names[want] {
			t.Errorf("lock %q not registered", want)
		}
	}
}

func TestEveryRegisteredLockSurvivesStorm(t *testing.T) {
	// Every configuration the benchmarks can select must uphold mutual
	// exclusion under a mixed storm — including the topology-sized locks
	// (Per-CPU sweeps 72 sub-locks per write on the X5-2 shape) and every
	// BRAVO variant.
	for _, name := range expected {
		name := name
		t.Run(name, func(t *testing.T) {
			f, ok := rwl.Lookup(name)
			if !ok {
				t.Fatalf("lookup %q failed", name)
			}
			iters := 400
			if name == "per-cpu" { // writer sweeps are expensive; keep it brisk
				iters = 100
			}
			lockcheck.Exclusion(t, func() rwl.RWLock { return f() }, 3, 2, iters)
		})
	}
}

func TestReadConcurrencyWhereGuaranteed(t *testing.T) {
	// All reader-writer locks must admit concurrent readers; the mutex
	// adapter (and BRAVO-mutex before bias engages) is the documented
	// exception.
	for _, name := range expected {
		if name == "mutex" || name == "bravo-mutex" {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			l, err := rwl.New(name)
			if err != nil {
				t.Fatal(err)
			}
			// Engage bias where applicable so fast-path readers coexist.
			tok := l.RLock()
			l.RUnlock(tok)
			lockcheck.ReadersConcurrent(t, l)
		})
	}
}

func TestWriterExclusionEverywhere(t *testing.T) {
	for _, name := range expected {
		name := name
		t.Run(name, func(t *testing.T) {
			l, err := rwl.New(name)
			if err != nil {
				t.Fatal(err)
			}
			lockcheck.WriterExcludesReaders(t, l)
		})
	}
}
