package bias

import (
	"sync/atomic"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/hash"
)

// DefaultInhibitN is the paper's N: revocation latency is multiplied by N
// and bias re-enabling is inhibited for that long, "bounding the worst-case
// expected slow-down from BRAVO for writers to 1/(N+1)" — about 10% for the
// paper's N = 9 (§3).
const DefaultInhibitN = 9

// Policy decides when a slow-path reader may (re-)enable reader bias.
// Implementations are per-lock and must be safe for concurrent use; note
// that ShouldEnable is only invoked by readers that hold read permission on
// the underlying lock, so it can never race with a revoking writer's
// RevocationDone (writers hold write permission during revocation).
type Policy interface {
	// ShouldEnable reports whether a slow-path reader that currently holds
	// read permission on the underlying lock should set RBias.
	ShouldEnable() bool
	// RevocationDone informs the policy that a revocation began at start and
	// completed at end (monotonic nanoseconds).
	RevocationDone(start, end int64)
}

// InhibitPolicy is the paper's production policy: after a revocation that
// took D nanoseconds, bias may not be re-enabled for N·D nanoseconds. This
// is the primum-non-nocere throttle: the worst case writer slow-down is
// bounded near 1/(N+1) regardless of workload.
type InhibitPolicy struct {
	// N is the slow-down guard multiplier (Listing 1's N; default 9).
	N int64
	// until is the earliest time bias may be re-enabled (InhibitUntil).
	until atomic.Int64
}

// NewInhibitPolicy returns the paper's policy with multiplier n
// (n <= 0 selects DefaultInhibitN).
func NewInhibitPolicy(n int64) *InhibitPolicy {
	if n <= 0 {
		n = DefaultInhibitN
	}
	return &InhibitPolicy{N: n}
}

// ShouldEnable implements Policy: Time() >= InhibitUntil.
func (p *InhibitPolicy) ShouldEnable() bool {
	return clock.Nanos() >= p.until.Load()
}

// RevocationDone implements Policy: InhibitUntil = now + (now-start)·N
// (Listing 1 line 49). The measured period conservatively includes the time
// spent waiting for fast readers to depart, not just the scan.
func (p *InhibitPolicy) RevocationDone(start, end int64) {
	p.until.Store(end + (end-start)*p.N)
}

// InhibitedUntil exposes the current deadline (diagnostics and tests).
func (p *InhibitPolicy) InhibitedUntil() int64 { return p.until.Load() }

// ForceInhibitUntil overwrites the deadline (tests simulate long or lapsed
// revocations without sleeping).
func (p *InhibitPolicy) ForceInhibitUntil(deadline int64) { p.until.Store(deadline) }

// BernoulliPolicy is the early-prototype policy (§3): enable bias on a
// Bernoulli trial with probability 1/P. It has no revocation feedback, so —
// as the paper warns — it admits pathological workloads where writers
// repeatedly pay revocation; it is retained for the policy ablation.
type BernoulliPolicy struct {
	// P is the inverse probability; the paper's prototype used 100.
	P uint64
}

// ShouldEnable implements Policy via a stateless pseudo-random trial.
func (p *BernoulliPolicy) ShouldEnable() bool {
	n := p.P
	if n == 0 {
		n = 100
	}
	return hash.Mix64(uint64(clock.Nanos()))%n == 0
}

// RevocationDone implements Policy; the Bernoulli policy ignores feedback.
func (p *BernoulliPolicy) RevocationDone(start, end int64) {}

// AlwaysPolicy re-enables bias at every opportunity — the aggressive
// endpoint of the policy ablation (the paper's thought experiment of
// re-enabling bias after every write).
type AlwaysPolicy struct{}

// ShouldEnable implements Policy.
func (AlwaysPolicy) ShouldEnable() bool { return true }

// RevocationDone implements Policy.
func (AlwaysPolicy) RevocationDone(start, end int64) {}

// NeverPolicy never enables bias, reducing BRAVO-A to A plus one branch —
// the null endpoint of the policy ablation (and the configuration used to
// validate the locktorture hypothesis in §6.1).
type NeverPolicy struct{}

// ShouldEnable implements Policy.
func (NeverPolicy) ShouldEnable() bool { return false }

// RevocationDone implements Policy.
func (NeverPolicy) RevocationDone(start, end int64) {}
