package bench

import (
	"strings"
	"testing"
	"time"

	_ "github.com/bravolock/bravo/internal/locks/all"
)

func TestReadLatencyCompareProducesSamples(t *testing.T) {
	cfg := Config{Interval: 20 * time.Millisecond, Runs: 1}
	r, err := ReadLatencyCompare("bravo-ba", 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.HandleOpsPerSec <= 0 || r.PlainOpsPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", r)
	}
	if r.HandleP50Ns <= 0 || r.PlainP50Ns <= 0 {
		t.Fatalf("no latency percentiles: %+v", r)
	}
	if r.HandleP50LEPlain != (r.HandleP50Ns <= r.PlainP50Ns) {
		t.Fatalf("comparison flag inconsistent: %+v", r)
	}
}

func TestReadLatencyCompareRejectsNonBravoLocks(t *testing.T) {
	cfg := Config{Interval: time.Millisecond, Runs: 1}
	if _, err := ReadLatencyCompare("ba", 1, cfg); err == nil {
		t.Fatal("plain substrate accepted by readlatency")
	}
}

func TestRunMetaStamped(t *testing.T) {
	m := NewRunMeta()
	if m.GOMAXPROCS < 1 || m.NumCPU < 1 {
		t.Fatalf("CPU shape missing: %+v", m)
	}
	if m.Commit == "" {
		t.Fatal("commit empty (want hash or \"unknown\")")
	}
	if !strings.Contains(m.GoVersion, "go") {
		t.Fatalf("go version missing: %+v", m)
	}
	if _, err := time.Parse(time.RFC3339, m.Timestamp); err != nil {
		t.Fatalf("timestamp not RFC3339: %v", err)
	}
}

func TestShardedKVReportCarriesMeta(t *testing.T) {
	rep := NewShardedKVReport(Config{Interval: time.Second, Runs: 1}, nil)
	if rep.Meta.Timestamp == "" || rep.Meta.Commit == "" {
		t.Fatalf("shardedkv report missing run metadata: %+v", rep.Meta)
	}
	lat := NewHandleLatencyReport(Config{Interval: time.Second, Runs: 1}, nil)
	if lat.Benchmark != "readlatency" || lat.Meta.Timestamp == "" {
		t.Fatalf("readlatency report missing run metadata: %+v", lat)
	}
}
