package wire

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/frame"
)

// splitOne unwraps one frame's payload, failing on anything but a clean
// single-frame buffer.
func splitOne(t *testing.T, f []byte) []byte {
	t.Helper()
	payload, n, status := frame.Split(f)
	if status != frame.OK || n != len(f) {
		t.Fatalf("frame.Split = status %v, consumed %d of %d", status, n, len(f))
	}
	return payload
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpGet, ID: 1, Key: 42},
		{Op: OpGet, ID: 2, Key: 42, MinLSN: 900},
		{Op: OpPut, ID: 3, Key: 7, Value: []byte("hello")},
		{Op: OpPut, ID: 4, Key: 7, Value: []byte{}, TTL: 5 * time.Second},
		{Op: OpPut, ID: 5, Key: 7, Value: []byte("queued"), Async: true},
		{Op: OpDelete, ID: 6, Key: 99},
		{Op: OpMGet, ID: 7, Keys: []uint64{1, 2, 3}},
		{Op: OpMGet, ID: 8, Keys: []uint64{}, MinLSN: 12},
		{Op: OpMPut, ID: 9, Keys: []uint64{10, 20}, Values: [][]byte{[]byte("a"), {}}},
		{Op: OpMPut, ID: 10, Keys: []uint64{}, Values: [][]byte{}, TTL: time.Minute},
		{Op: OpMDelete, ID: 11, Keys: []uint64{5}},
		{Op: OpFlush, ID: 12},
		{Op: OpStats, ID: 13},
	}
	for _, want := range cases {
		f := AppendRequest(nil, &want)
		got, ok := DecodeRequest(splitOne(t, f))
		if !ok {
			t.Fatalf("%v id=%d: decode failed", want.Op, want.ID)
		}
		// Canonicalize: empty and nil slices are the same on the wire.
		norm := func(r *Request) {
			if len(r.Value) == 0 {
				r.Value = nil
			}
			if len(r.Keys) == 0 {
				r.Keys = nil
			}
			if len(r.Values) == 0 {
				r.Values = nil
			}
			for i, v := range r.Values {
				if len(v) == 0 {
					r.Values[i] = nil
				}
			}
		}
		norm(&want)
		norm(&got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{Op: OpGet, ID: 1, Value: []byte("v")},
		{Op: OpGet, ID: 2, Status: StatusNotFound, Msg: "no such key"},
		{Op: OpPut, ID: 3, LSNs: []ShardLSN{{Shard: 2, LSN: 77}}},
		{Op: OpDelete, ID: 4},
		{Op: OpMGet, ID: 5, Values: [][]byte{[]byte("a"), nil, []byte("")}},
		{Op: OpMPut, ID: 6, Applied: 9, LSNs: []ShardLSN{{Shard: 0, LSN: 5}, {Shard: 3, LSN: 6}}},
		{Op: OpMDelete, ID: 7, Applied: 2},
		{Op: OpFlush, ID: 8, Applied: 100},
		{Op: OpStats, ID: 9, Stats: []byte(`{"shards":4}`)},
		{Op: OpPut, ID: 10, Status: StatusReadOnly, Msg: "follower is read-only"},
		{Op: OpMGet, ID: 11, Status: StatusConflict, Msg: "min_lsn not applied"},
	}
	for _, want := range cases {
		f := AppendResponse(nil, &want)
		got, ok := DecodeResponse(splitOne(t, f))
		if !ok {
			t.Fatalf("%v id=%d: decode failed", want.Op, want.ID)
		}
		norm := func(r *Response) {
			if len(r.Value) == 0 {
				r.Value = nil
			}
			if len(r.Stats) == 0 {
				r.Stats = nil
			}
			if len(r.Values) == 0 {
				r.Values = nil
			}
			for i, v := range r.Values {
				if v != nil && len(v) == 0 {
					r.Values[i] = []byte{}
				}
			}
		}
		norm(&want)
		norm(&got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
		}
	}
}

// TestMGetAbsentVsEmpty pins the wire distinction between a missing key
// (nil) and a present empty value — the same distinction the engine makes.
func TestMGetAbsentVsEmpty(t *testing.T) {
	f := AppendResponse(nil, &Response{Op: OpMGet, ID: 1, Values: [][]byte{nil, {}}})
	got, ok := DecodeResponse(splitOne(t, f))
	if !ok || len(got.Values) != 2 {
		t.Fatalf("decode: ok=%v values=%v", ok, got.Values)
	}
	if got.Values[0] != nil {
		t.Fatalf("absent entry decoded non-nil: %v", got.Values[0])
	}
	if got.Values[1] == nil || len(got.Values[1]) != 0 {
		t.Fatalf("empty entry decoded %v, want present-empty", got.Values[1])
	}
}

// TestDecodeRequestStrict rejects truncations, trailing garbage, version
// and op mismatches — every malformed shape must decode to (zero, false),
// never panic.
func TestDecodeRequestStrict(t *testing.T) {
	valid := splitOne(t, AppendRequest(nil, &Request{
		Op: OpMPut, ID: 5, TTL: time.Second, MinLSN: 9,
		Keys: []uint64{1, 2}, Values: [][]byte{[]byte("aa"), []byte("b")},
	}))
	if _, ok := DecodeRequest(valid); !ok {
		t.Fatal("control: valid payload rejected")
	}
	// Every truncation of a valid payload must be rejected.
	for cut := 0; cut < len(valid); cut++ {
		if _, ok := DecodeRequest(valid[:cut]); ok {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	// Trailing garbage.
	if _, ok := DecodeRequest(append(append([]byte(nil), valid...), 0)); ok {
		t.Fatal("trailing byte accepted")
	}
	// Wrong version.
	bad := append([]byte(nil), valid...)
	bad[0] = Version + 1
	if _, ok := DecodeRequest(bad); ok {
		t.Fatal("wrong version accepted")
	}
	// Unknown op.
	bad = append(bad[:0], valid...)
	bad[1] = 200
	if _, ok := DecodeRequest(bad); ok {
		t.Fatal("unknown op accepted")
	}
	// Adversarial MPUT count: huge count over a small payload must be
	// rejected before any allocation proportional to it.
	huge := splitOne(t, AppendRequest(nil, &Request{Op: OpMPut, Keys: []uint64{1}, Values: [][]byte{[]byte("x")}}))
	huge = append([]byte(nil), huge...)
	// count field sits right after the 11-byte head (no ttl/minLSN flags).
	huge[11] = 0xFF
	huge[12] = 0xFF
	huge[13] = 0xFF
	huge[14] = 0x7F
	if _, ok := DecodeRequest(huge); ok {
		t.Fatal("adversarial MPUT count accepted")
	}
}

func TestDecodeResponseStrict(t *testing.T) {
	valid := splitOne(t, AppendResponse(nil, &Response{
		Op: OpMGet, ID: 3, Values: [][]byte{[]byte("aa"), nil},
		LSNs: []ShardLSN{{Shard: 1, LSN: 2}},
	}))
	if _, ok := DecodeResponse(valid); !ok {
		t.Fatal("control: valid payload rejected")
	}
	for cut := 0; cut < len(valid); cut++ {
		if _, ok := DecodeResponse(valid[:cut]); ok {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if _, ok := DecodeResponse(append(append([]byte(nil), valid...), 0)); ok {
		t.Fatal("trailing byte accepted")
	}
}

func TestStatusError(t *testing.T) {
	okResp := Response{Op: OpGet, Status: StatusOK}
	if okResp.Err() != nil {
		t.Fatal("OK produced an error")
	}
	miss := Response{Op: OpGet, Status: StatusNotFound}
	if miss.Err() != nil {
		t.Fatal("NotFound is an outcome, not an error")
	}
	ro := Response{Op: OpPut, Status: StatusReadOnly, Msg: "follower"}
	err := ro.Err()
	se, ok := err.(*StatusError)
	if !ok || se.Status != StatusReadOnly {
		t.Fatalf("Err() = %v, want *StatusError{StatusReadOnly}", err)
	}
	if se.Error() != "wire: PUT: read-only: follower" {
		t.Fatalf("Error() = %q", se.Error())
	}
}

// TestStreamDecoder drives the decoder over frames delivered in
// adversarially small chunks and verifies the buffered-first contract.
func TestStreamDecoder(t *testing.T) {
	var stream []byte
	payloads := [][]byte{[]byte("one"), []byte(""), bytes.Repeat([]byte("z"), 100_000)}
	for _, p := range payloads {
		stream = AppendRequest(stream, &Request{Op: OpPut, Key: 1, Value: p})
	}
	// Feed one byte at a time.
	dec := NewStreamDecoder(&oneByteReader{data: stream}, 0)
	for i, want := range payloads {
		payload, err := dec.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		req, ok := DecodeRequest(payload)
		if !ok || !bytes.Equal(req.Value, want) {
			t.Fatalf("frame %d: ok=%v value len %d, want %d", i, ok, len(req.Value), len(want))
		}
	}
	if _, err := dec.Next(); err == nil {
		t.Fatal("stream end: expected error")
	}
}

// TestStreamDecoderBufferedFirst pins the drain contract: frames already
// buffered are yielded without touching the reader, even after it fails.
func TestStreamDecoderBufferedFirst(t *testing.T) {
	f := frame.Append(frame.Append(nil, []byte("a")), []byte("b"))
	dec := NewStreamDecoder(&readAllThenFail{data: f}, 0)
	for _, want := range []string{"a", "b"} {
		p, err := dec.Next()
		if err != nil || string(p) != want {
			t.Fatalf("Next = %q, %v; want %q", p, err, want)
		}
	}
	if _, err := dec.Next(); err == nil {
		t.Fatal("drained stream: expected the reader's error")
	}
}

func TestStreamDecoderCorrupt(t *testing.T) {
	f := frame.Append(nil, []byte("payload"))
	f[frame.HeaderSize]++ // CRC mismatch
	dec := NewStreamDecoder(bytes.NewReader(f), 0)
	if _, err := dec.Next(); err != ErrCorruptFrame {
		t.Fatalf("corrupt frame: %v, want ErrCorruptFrame", err)
	}
}

func TestStreamDecoderOverCap(t *testing.T) {
	f := frame.Append(nil, bytes.Repeat([]byte("x"), 4096))
	dec := NewStreamDecoder(bytes.NewReader(f), 1024)
	_, err := dec.Next()
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("cap")) {
		t.Fatalf("over-cap frame: %v, want wrapped ErrCorruptFrame", err)
	}
}

type oneByteReader struct {
	data []byte
	pos  int
}

func (r *oneByteReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, errEOF{}
	}
	p[0] = r.data[r.pos]
	r.pos++
	return 1, nil
}

type errEOF struct{}

func (errEOF) Error() string { return "EOF" }

// readAllThenFail yields the whole buffer in one Read, then errors.
type readAllThenFail struct {
	data []byte
	done bool
}

func (r *readAllThenFail) Read(p []byte) (int, error) {
	if r.done {
		return 0, errEOF{}
	}
	n := copy(p, r.data)
	if n < len(r.data) {
		r.data = r.data[n:]
		return n, nil
	}
	r.done = true
	return n, nil
}
