package bench

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/histogram"
)

// ReadLatency measures the distribution of read-acquisition latency for a
// lock under a periodic writer — the experiment behind the §7 claim that
// letting readers divert through the slow path during revocation "reduces
// variance for the latency of read operations". Compare bravo-ba against
// bravo-ba-revmu: the former's readers stall behind whole revocation scans,
// fattening the tail.
func ReadLatency(lockName string, readers int, writePeriod time.Duration, cfg Config) *histogram.Histogram {
	l := mustLock(lockName)
	out := &histogram.Histogram{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var stop atomic.Bool
	wg.Add(1)
	go func() { // periodic writer forces revocations
		defer wg.Done()
		for !stop.Load() {
			l.Lock()
			l.Unlock()
			time.Sleep(writePeriod)
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := &histogram.Histogram{}
			for !stop.Load() {
				start := clock.Nanos()
				tok := l.RLock()
				h.Record(clock.Nanos() - start)
				l.RUnlock(tok)
			}
			mu.Lock()
			out.Merge(h)
			mu.Unlock()
		}()
	}
	time.Sleep(cfg.Interval)
	stop.Store(true)
	wg.Wait()
	return out
}
