package kvserv

// Fuzzes the wire front-end with raw socket bytes: whatever a peer writes
// — valid pipelined bursts, malformed bodies in sound envelopes, corrupt
// frames, truncated streams — the server must never panic, must answer
// only with decodable response frames, and must always release the
// connection (answer-and-continue or close; never hang).

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/frame"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/wire"
)

// fuzzWireAddr lazily starts one shared wire server for the whole fuzz
// process; iterations dial it and the OS reclaims it at exit. Sharing is
// sound because every property checked is per-connection.
var fuzzWireAddr = sync.OnceValue(func() string {
	engine, err := kvs.NewSharded(8, func() rwl.RWLock { return core.New(new(stdrw.Lock)) })
	if err != nil {
		panic(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := New(engine, Config{ReapInterval: -1})
	go srv.ServeWire(l)
	return l.Addr().String()
})

func FuzzWireServer(f *testing.F) {
	// AppendRequest emits the complete frame, envelope included.
	frameReq := func(req *wire.Request) []byte {
		return wire.AppendRequest(nil, req)
	}
	f.Add(frameReq(&wire.Request{Op: wire.OpGet, ID: 1, Key: 42}))
	f.Add(frameReq(&wire.Request{Op: wire.OpPut, ID: 2, Key: 7, Value: []byte("v")}))
	f.Add(frameReq(&wire.Request{Op: wire.OpMPut, ID: 3, Keys: []uint64{1, 2}, Values: [][]byte{[]byte("a"), []byte("b")}}))
	f.Add(frameReq(&wire.Request{Op: wire.OpMGet, ID: 4, Keys: []uint64{1, 2, 3}}))
	f.Add(frameReq(&wire.Request{Op: wire.OpStats, ID: 5}))
	f.Add(frameReq(&wire.Request{Op: wire.OpFlush, ID: 6}))
	// Pipelined burst: several valid frames in one write.
	burst := append(frameReq(&wire.Request{Op: wire.OpPut, ID: 7, Key: 1, Value: []byte("x")}),
		frameReq(&wire.Request{Op: wire.OpGet, ID: 8, Key: 1})...)
	f.Add(burst)
	// Malformed body in a sound envelope: header parses, body does not.
	f.Add(frame.Append(nil, append([]byte{wire.Version, byte(wire.OpMPut), 0, 99, 0, 0, 0, 0, 0, 0, 0}, 0xFF, 0xFF, 0xFF)))
	// Corrupt envelope: flipped payload byte under the CRC.
	bad := frameReq(&wire.Request{Op: wire.OpGet, ID: 9, Key: 3})
	bad[len(bad)-1] ^= 0xFF
	f.Add(bad)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}) // insane declared length
	f.Add([]byte{})

	sentinel := frameReq(&wire.Request{Op: wire.OpGet, ID: ^uint64(0), Key: 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		nc, err := net.Dial("tcp", fuzzWireAddr())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		nc.SetDeadline(time.Now().Add(10 * time.Second))
		// The fuzz bytes, then a known-good request, then half-close: if the
		// garbage did not sever the framing, the sentinel must be answered;
		// either way the server must reach EOF and hand the stream back.
		if _, err := nc.Write(append(append([]byte(nil), data...), sentinel...)); err != nil {
			return // server already closed on leading garbage: a valid outcome
		}
		nc.(*net.TCPConn).CloseWrite()

		dec := wire.NewStreamDecoder(nc, wire.DefaultMaxFrame)
		for {
			payload, err := dec.Next()
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				t.Fatalf("response stream: %v", err) // corrupt server frames are bugs
			}
			if _, ok := wire.DecodeResponse(payload); !ok {
				t.Fatalf("server emitted undecodable response: %x", payload)
			}
		}
	})
}

// TestWireFuzzSeeds replays the interesting seed shapes as a plain test so
// ordinary `go test` runs exercise them even where the fuzz engine is not
// invoked (the corpus above only runs under the fuzz target).
func TestWireFuzzSeeds(t *testing.T) {
	addr, _, _ := startWireServer(t, nil, Config{ReapInterval: -1})
	valid := wire.AppendRequest(nil, &wire.Request{Op: wire.OpGet, ID: 1, Key: 42})
	malformed := frame.Append(nil, append([]byte{wire.Version, byte(wire.OpMPut), 0, 99, 0, 0, 0, 0, 0, 0, 0}, 0xFF, 0xFF, 0xFF))
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0xFF
	for _, tc := range [][]byte{valid, malformed, corrupt, {0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}, bytes.Repeat([]byte{0}, 64)} {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		nc.SetDeadline(time.Now().Add(5 * time.Second))
		nc.Write(tc)
		nc.(*net.TCPConn).CloseWrite()
		dec := wire.NewStreamDecoder(nc, wire.DefaultMaxFrame)
		for {
			payload, err := dec.Next()
			if err != nil {
				break
			}
			if _, ok := wire.DecodeResponse(payload); !ok {
				t.Fatalf("undecodable response to %x: %x", tc, payload)
			}
		}
		nc.Close()
	}
}
