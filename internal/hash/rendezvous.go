package hash

// Rendezvous (highest-random-weight) hashing: every (key, member) pair gets
// a pseudorandom score from the same Mix64 finalizer the lock table uses,
// and the key belongs to the member with the highest score. The properties
// the cluster router leans on all fall out of scoring pairs independently:
//
//   - total and deterministic: any key maps to exactly one live member, the
//     same one on every node that agrees on the member list;
//   - minimal disruption: adding or removing one member only moves the keys
//     whose top score involved that member — an expected 1/N of the keyspace
//     on join, and exactly the departed member's keys on leave. No other
//     key's argmax can change, because the surviving pair scores didn't.
//
// Members are identified by stable uint64 IDs, not list positions, so the
// mapping survives reordering and compaction of the membership slice.

// RendezvousScore returns the weight of (key, member). Exported so tests
// can pin the argmax semantics independently of RendezvousOwner.
func RendezvousScore(key, member uint64) uint64 {
	// Pre-mixing the member ID before folding in the key keeps small dense
	// IDs (0, 1, 2, ...) from producing correlated scores across members.
	return Mix64(key ^ Mix64(member))
}

// RendezvousOwner returns the index into members of the member owning key:
// the argmax of RendezvousScore over the list, ties broken toward the lower
// member ID so the winner is a function of the ID set alone. Returns -1 for
// an empty member list.
func RendezvousOwner(key uint64, members []uint64) int {
	best := -1
	var bestScore, bestID uint64
	for i, id := range members {
		s := RendezvousScore(key, id)
		if best < 0 || s > bestScore || (s == bestScore && id < bestID) {
			best, bestScore, bestID = i, s, id
		}
	}
	return best
}
