package kvs

// Snapshot checkpoints: a per-shard point-in-time copy written beside the
// log so the log can be truncated. A checkpoint of one shard is
//
//  1. copy the shard's maps and rotate its WAL, atomically with respect to
//     writers (under the WAL mutex; the copy itself runs under the shard's
//     ordinary BRAVO read lock, so concurrent readers are never blocked);
//  2. write the copy to shard-NNNN.snap.tmp, fsync, rename over
//     shard-NNNN.snap, fsync the directory — the snapshot becomes visible
//     atomically or not at all;
//  3. remove the rotated shard-NNNN.wal.old generation.
//
// Crash anywhere in that sequence recovers: the opener replays snapshot,
// then .wal.old if present, then .wal. The rotation point guarantees the
// new snapshot covers exactly the records in .wal.old, and replaying a
// record the snapshot already covers is idempotent — a key's final record
// in .wal.old is, by construction, the state the snapshot captured.
// TTL-expired residue is compacted away: entries past their deadline at
// checkpoint time are not written.
//
// Snapshot file format v2 (integers little-endian, fixed width):
//
//	file    := magic "BRVOSNP2" | u64 lsn | u64 count | count × entry | u32 crc32c
//	entry   := u8 hasTTL | u64 key | [i64 remainingNanos] | u32 vlen | vlen bytes
//
// The lsn field records the WAL LSN the snapshot covers: every record with
// a smaller-or-equal LSN is folded in, so recovery (and a replication
// follower resuming from snapshot + LSN) continues the sequence from it.
// Legacy "BRVOSNP1" files (no lsn field) still load, as LSN 0 — the
// upgrade path for pre-LSN directories. The trailing CRC covers everything
// between magic and itself. Snapshots are written via tmp+rename, so a
// torn snapshot is impossible in normal operation; a corrupt one fails
// recovery loudly instead of silently dropping keys.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/frame"
)

var (
	snapMagic   = []byte("BRVOSNP2")
	snapMagicV1 = []byte("BRVOSNP1")
)

// Checkpoint writes a snapshot of every shard and truncates its log.
// Concurrent writes to a shard stall while that shard's state is copied
// and its log rotated (the rotation is disk IO: fsync, rename, reopen);
// reads are never blocked, and the snapshot file itself is written with
// no lock held. It returns an error on volatile engines (WithDurability
// was not given).
func (s *Sharded) Checkpoint() error {
	if !s.durable {
		return errNotDurable
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	for i := range s.shards {
		if err := s.checkpointShard(i); err != nil {
			return fmt.Errorf("kvs: checkpoint shard %d: %w", i, err)
		}
	}
	return nil
}

// checkpointShard runs the three-step protocol above for one shard. The
// caller holds ckptMu, so generations cannot interleave.
func (s *Sharded) checkpointShard(i int) error {
	sh := &s.shards[i]
	w := sh.wal

	// Step 1: copy + rotate at one consistent point. The WAL mutex blocks
	// writers (they take it before the shard lock); the read lock makes the
	// copy safe against in-place value updates already in flight. The LSN
	// captured here is exact: no record can commit while mu is held, so the
	// copy is the state as of lsn and the snapshot covers precisely the
	// records the rotation moves aside.
	w.mu.Lock()
	lsn := w.lsn
	tok := sh.lock.RLock()
	data := make(map[uint64][]byte, len(sh.data))
	for k, v := range sh.data {
		data[k] = v.bytes()
	}
	var exp ttlMap
	if len(sh.exp) > 0 {
		exp = make(ttlMap, len(sh.exp))
		for k, d := range sh.exp {
			exp[k] = d
		}
	}
	sh.lock.RUnlock(tok)
	err := w.rotate(s.walPath(i), s.walOldPath(i))
	w.mu.Unlock()
	if err != nil {
		return err
	}

	// Step 2: publish the snapshot atomically.
	tmp := s.snapPath(i) + ".tmp"
	if err := writeSnapshotFile(tmp, data, exp, lsn); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.snapPath(i)); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}

	// Step 3: the snapshot now covers the old generation; drop it.
	if err := os.Remove(s.walOldPath(i)); err != nil && !os.IsNotExist(err) {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	sh.ops.checkpoints.Add(1)
	return nil
}

// writeSnapshotFile renders one shard's copied state and fsyncs it.
// Entries already past their TTL deadline are compacted away; deadlines
// are persisted as remaining nanoseconds, like WAL records. lsn is the WAL
// LSN the copy covers.
func writeSnapshotFile(path string, data map[uint64][]byte, exp ttlMap, lsn uint64) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	now := clock.Nanos()
	var buf []byte
	count := uint64(0)
	body := make([]byte, 0, 64)
	for k, v := range data {
		d, hasTTL := exp[k]
		if hasTTL && now >= d {
			continue // compaction: expired residue stays dead
		}
		if hasTTL {
			body = append(body, 1)
			body = binary.LittleEndian.AppendUint64(body, k)
			body = binary.LittleEndian.AppendUint64(body, uint64(d-now))
		} else {
			body = append(body, 0)
			body = binary.LittleEndian.AppendUint64(body, k)
		}
		body = binary.LittleEndian.AppendUint32(body, uint32(len(v)))
		body = append(body, v...)
		count++
	}
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	buf = binary.LittleEndian.AppendUint64(buf, count)
	buf = append(buf, body...)
	crc := frame.Checksum(buf[len(snapMagic):])
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadSnapshot parses a snapshot file's bytes into entries (put/putTTL
// only) plus the WAL LSN the snapshot covers (0 for legacy v1 files,
// which predate LSNs). Unlike WAL replay there is no torn-tail tolerance:
// snapshots are published atomically, so any damage is real corruption and
// errors out. It never panics on arbitrary bytes (FuzzSnapshotLoad).
func loadSnapshot(data []byte) ([]walEntry, uint64, error) {
	if len(data) < len(snapMagic)+8+4 {
		return nil, 0, errors.New("snapshot too short")
	}
	legacy := string(data[:len(snapMagicV1)]) == string(snapMagicV1)
	if !legacy && string(data[:len(snapMagic)]) != string(snapMagic) {
		return nil, 0, errors.New("bad snapshot magic")
	}
	crcOff := len(data) - 4
	want := binary.LittleEndian.Uint32(data[crcOff:])
	if frame.Checksum(data[len(snapMagic):crcOff]) != want {
		return nil, 0, errors.New("snapshot CRC mismatch")
	}
	var lsn uint64
	off := len(snapMagic)
	if !legacy {
		if crcOff-off < 8 {
			return nil, 0, errors.New("snapshot too short for lsn")
		}
		lsn = binary.LittleEndian.Uint64(data[off:])
		off += 8
	}
	if crcOff-off < 8 {
		return nil, 0, errors.New("snapshot too short for count")
	}
	count := binary.LittleEndian.Uint64(data[off:])
	body := data[off+8 : crcOff]
	// Every entry is at least 13 bytes; an insane count never preallocates.
	if count > uint64(len(body)/13) {
		return nil, 0, fmt.Errorf("snapshot claims %d entries in %d bytes", count, len(body))
	}
	entries := make([]walEntry, 0, count)
	off = 0
	for i := uint64(0); i < count; i++ {
		if len(body)-off < 13 {
			return nil, 0, errors.New("snapshot entry truncated")
		}
		hasTTL := body[off]
		if hasTTL > 1 {
			return nil, 0, fmt.Errorf("snapshot entry flag %d", hasTTL)
		}
		e := walEntry{op: walOpPut, key: binary.LittleEndian.Uint64(body[off+1:])}
		off += 9
		if hasTTL == 1 {
			if len(body)-off < 12 {
				return nil, 0, errors.New("snapshot TTL entry truncated")
			}
			e.op = walOpPutTTL
			e.rem = int64(binary.LittleEndian.Uint64(body[off:]))
			off += 8
		}
		vlen := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if vlen < 0 || vlen > len(body)-off {
			return nil, 0, errors.New("snapshot value truncated")
		}
		e.val = body[off : off+vlen]
		off += vlen
		entries = append(entries, e)
	}
	if off != len(body) {
		return nil, 0, errors.New("snapshot has trailing bytes")
	}
	return entries, lsn, nil
}

// syncDir fsyncs a directory so renames and removals inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
