package rwsem

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/bravolock/bravo/internal/rwl"
)

// TestAdapterUnderOptimisticWrapper certifies the stock-semaphore adapter as
// a fallback substrate for the optimistic read path: write sections through
// the wrapper are seq-bracketed, optimistic readers validate or discard, and
// the pessimistic fallback lands on the rwsem read side.
func TestAdapterUnderOptimisticWrapper(t *testing.T) {
	o := rwl.WrapOptimistic(NewAdapter(Config{}))
	if _, ok := o.(rwl.HandleRWLock); ok {
		t.Fatal("rwsem adapter is not handle-capable; the wrapper must not pretend otherwise")
	}
	var a, b atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				o.Lock()
				a.Store(a.Load() + 1)
				b.Store(b.Load() + 1)
				o.Unlock()
			}
		}()
	}
	var fellBack bool
	for i := 0; i < 3000; i++ {
		var x, y uint64
		validated := false
		for attempt := 0; attempt < 2 && !validated; attempt++ {
			s, ok := o.ReadAttempt()
			if !ok {
				continue
			}
			x, y = a.Load(), b.Load()
			validated = o.ReadValidate(s)
		}
		if !validated {
			tok := o.RLock()
			x, y = a.Load(), b.Load()
			o.RUnlock(tok)
			fellBack = true
		}
		if x != y {
			t.Fatalf("read %d observed torn pair (%d, %d)", i, x, y)
		}
	}
	close(stop)
	wg.Wait()
	_ = fellBack // fallback frequency is load-dependent; correctness is the assertion
}
