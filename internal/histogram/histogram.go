// Package histogram provides a fixed-footprint log-scale latency histogram
// for the harness's latency experiments — notably the §7 claim that the
// revocation-mutex variant "reduces variance for the latency of read
// operations", which needs tail percentiles rather than throughput.
package histogram

import (
	"fmt"
	"math/bits"
	"strings"
)

// buckets is the number of power-of-two latency classes; bucket i holds
// samples in [2^i, 2^(i+1)) nanoseconds (bucket 0 holds <2ns).
const buckets = 48

// Histogram is a log₂-bucketed nanosecond histogram. Not safe for
// concurrent use; each worker records into its own and merges at the end.
type Histogram struct {
	bucket [buckets]uint64
	count  uint64
	sum    int64
	max    int64
}

// Record adds one sample (nanoseconds).
func (h *Histogram) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= buckets {
		b = buckets - 1
	}
	h.bucket[b]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.bucket {
		h.bucket[i] += other.bucket[i]
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean in nanoseconds.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max }

// Percentile returns an upper bound (bucket boundary) for the p-th
// percentile, p in (0, 100].
func (h *Histogram) Percentile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(h.count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.bucket {
		seen += c
		if seen >= rank {
			if i == 0 {
				return 1
			}
			return int64(1) << uint(i) // upper bound of bucket i-1's range
		}
	}
	return h.max
}

// String renders count/mean/p50/p99/max on one line.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.0fns p50≤%dns p99≤%dns max=%dns",
		h.count, h.Mean(), h.Percentile(50), h.Percentile(99), h.max)
	return b.String()
}
