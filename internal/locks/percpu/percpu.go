// Package percpu implements the "Per-CPU" distributed reader-writer lock of
// the paper's evaluation (§5): "an array of BA locks, one for each CPU,
// where readers acquire read-permission on the sub-lock associated with
// their CPU, and writers acquire write-permission on all the sub-locks",
// inspired by the Linux kernel brlock construct [10].
//
// This is the large-footprint end of the reader-indicator design spectrum:
// on the paper's 72-CPU machine each instance is 9216 bytes. Readers scale
// perfectly; writers pay a full sweep of every sub-lock.
package percpu

import (
	"unsafe"

	"github.com/bravolock/bravo/internal/arch"
	"github.com/bravolock/bravo/internal/locks/pfq"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/self"
	"github.com/bravolock/bravo/internal/topo"
)

// sub is one per-CPU BA sub-lock, padded to a sector boundary so sub-locks
// never share a coherence unit.
type sub struct {
	l pfq.Lock
	_ [arch.SectorSize - unsafe.Sizeof(pfq.Lock{})%arch.SectorSize]byte
}

// Lock is a brlock-style per-CPU reader-writer lock.
type Lock struct {
	subs []sub
	top  topo.Topology
}

var _ rwl.RWLock = (*Lock)(nil)

// New returns a per-CPU lock sized for the given topology.
func New(t topo.Topology) *Lock {
	if !t.Valid() {
		t = topo.Host()
	}
	return &Lock{subs: make([]sub, t.NumCPUs()), top: t}
}

// Footprint returns the lock's size in bytes (one padded BA lock per CPU),
// mirroring the paper's footprint accounting.
func (l *Lock) Footprint() int {
	return len(l.subs) * int(unsafe.Sizeof(sub{}))
}

// RLock acquires read permission on the caller's sub-lock. The sub-lock
// index travels in the token so the release lands on the same sub-lock even
// if the goroutine migrates.
func (l *Lock) RLock() rwl.Token {
	cpu := l.top.CPUOf(self.ID())
	l.subs[cpu].l.RLock()
	return rwl.Token(cpu)
}

// RUnlock releases read permission on the sub-lock recorded in t.
func (l *Lock) RUnlock(t rwl.Token) {
	l.subs[t].l.RUnlock(0)
}

// Lock acquires write permission by sweeping every sub-lock in index order
// (a fixed order prevents writer-writer deadlock).
func (l *Lock) Lock() {
	for i := range l.subs {
		l.subs[i].l.Lock()
	}
}

// Unlock releases every sub-lock in reverse order.
func (l *Lock) Unlock() {
	for i := len(l.subs) - 1; i >= 0; i-- {
		l.subs[i].l.Unlock()
	}
}
