package repl

// Model-based replication certification: the follower must track the
// primary's visible state exactly, at every LSN, under randomized op
// schedules. A single-mutex reference map follows the schedule on the
// side; the test records the reference state at sampled LSNs, and the
// follower's OnApply hook — which runs synchronously in the puller, with
// the replica frozen at exactly that LSN — compares the replica against
// the reference state for that LSN. Quiescent full-state equality then
// closes each phase. This extends internal/kvs/model_test.go's
// engine-vs-reference machinery across the wire.

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/xrand"
)

// refStates records reference snapshots keyed by (shard, lsn), shared
// between the scheduling goroutine and the pullers' hooks.
type refStates struct {
	mu     sync.Mutex
	states map[int]map[uint64]map[uint64][]byte
	hits   int
}

func newRefStates() *refStates {
	return &refStates{states: map[int]map[uint64]map[uint64][]byte{}}
}

func (r *refStates) record(shard int, lsn uint64, state map[uint64][]byte) {
	cp := make(map[uint64][]byte, len(state))
	for k, v := range state {
		cp[k] = append([]byte(nil), v...)
	}
	r.mu.Lock()
	if r.states[shard] == nil {
		r.states[shard] = map[uint64]map[uint64][]byte{}
	}
	r.states[shard][lsn] = cp
	r.mu.Unlock()
}

// check compares a replica shard's visible state against the recorded
// reference for (shard, lsn), if one was sampled.
func (r *refStates) check(t *testing.T, f *Follower, shard int, lsn uint64) {
	r.mu.Lock()
	want, ok := r.states[shard][lsn]
	if ok {
		r.hits++
	}
	r.mu.Unlock()
	if !ok {
		return
	}
	got := f.Engine().SnapshotShard(shard)
	if len(got) != len(want) {
		t.Errorf("shard %d at LSN %d: replica has %d visible keys, model %d", shard, lsn, len(got), len(want))
		return
	}
	for k, wv := range want {
		if gv, ok := got[k]; !ok || !bytes.Equal(gv, wv) {
			t.Errorf("shard %d at LSN %d: key %d = %x (present %v), model %x", shard, lsn, k, gv, ok, wv)
		}
	}
}

func (r *refStates) checked() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits
}

// replModel drives one randomized schedule against a primary engine and a
// per-shard reference model. sample, when true, records the reference
// state of every touched shard after each op, keyed by that shard's LSN.
type replModel struct {
	e        *kvs.Sharded
	refs     []map[uint64][]byte
	states   *refStates
	rng      *xrand.XorShift64
	keyspace uint64
	pendKey  []uint64
	pendVal  [][]byte
}

func newReplModel(e *kvs.Sharded, states *refStates, seed, keyspace uint64) *replModel {
	m := &replModel{
		e: e, states: states, rng: xrand.NewXorShift64(seed), keyspace: keyspace,
		refs: make([]map[uint64][]byte, e.NumShards()),
	}
	// The model owns async application: apply only on Flush.
	e.SetAsyncBatch(1 << 30)
	for i := range m.refs {
		m.refs[i] = map[uint64][]byte{}
	}
	return m
}

func (m *replModel) ref(k uint64) map[uint64][]byte { return m.refs[m.e.ShardOf(k)] }

// step runs one random op, folding it into the reference and sampling
// touched shards' states at their new LSNs.
func (m *replModel) step(sample bool) {
	touched := map[int]bool{}
	k := m.rng.Next() % m.keyspace
	switch m.rng.Intn(16) {
	case 0, 1, 2, 3:
		v := kvs.EncodeValue(m.rng.Next())
		m.e.Put(k, v)
		m.ref(k)[k] = v
		touched[m.e.ShardOf(k)] = true
	case 4: // TTL far in the future: visible for the test's lifetime
		v := kvs.EncodeValue(m.rng.Next())
		m.e.PutTTL(k, v, time.Hour)
		m.ref(k)[k] = v
		touched[m.e.ShardOf(k)] = true
	case 5: // born expired: immediately invisible, on both sides of the wire
		m.e.PutTTL(k, kvs.EncodeValue(m.rng.Next()), -1)
		delete(m.ref(k), k)
		touched[m.e.ShardOf(k)] = true
	case 6, 7:
		m.e.Delete(k)
		delete(m.ref(k), k)
		touched[m.e.ShardOf(k)] = true
	case 8, 9: // MultiPut: one record per touched shard group
		n := 1 + int(m.rng.Intn(6))
		keys := make([]uint64, n)
		vals := make([][]byte, n)
		for i := range keys {
			keys[i] = m.rng.Next() % m.keyspace
			vals[i] = kvs.EncodeValue(m.rng.Next())
		}
		m.e.MultiPut(keys, vals)
		for i, bk := range keys {
			m.ref(bk)[bk] = vals[i]
			touched[m.e.ShardOf(bk)] = true
		}
	case 10: // MultiDelete
		n := 1 + int(m.rng.Intn(6))
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = m.rng.Next() % m.keyspace
		}
		m.e.MultiDelete(keys)
		for _, bk := range keys {
			delete(m.ref(bk), bk)
			touched[m.e.ShardOf(bk)] = true
		}
	case 11, 12: // async put: enqueued, replicated only when its batch lands
		v := kvs.EncodeValue(m.rng.Next())
		m.e.PutAsync(k, v)
		m.pendKey = append(m.pendKey, k)
		m.pendVal = append(m.pendVal, v)
	default: // flush: every queued write becomes one record per shard
		m.e.Flush()
		for i, pk := range m.pendKey {
			m.ref(pk)[pk] = m.pendVal[i]
			touched[m.e.ShardOf(pk)] = true
		}
		m.pendKey, m.pendVal = nil, nil
	}
	if sample {
		for sh := range touched {
			m.states.record(sh, m.e.ShardLSN(sh), m.refs[sh])
		}
	}
}

// finish flushes the async queue and returns the merged reference state.
func (m *replModel) finish() map[uint64][]byte {
	m.e.Flush()
	for i, pk := range m.pendKey {
		m.ref(pk)[pk] = m.pendVal[i]
	}
	m.pendKey, m.pendVal = nil, nil
	merged := map[uint64][]byte{}
	for _, ref := range m.refs {
		for k, v := range ref {
			merged[k] = v
		}
	}
	return merged
}

// requireOptimisticSweep re-reads the whole model through the caught-up
// follower's engine and demands both exact agreement and that every read
// was served by the zero-CAS optimistic path: the stream is idle, so the
// replica's seq counters cannot move, and a retry or fallback here means
// an ApplyReplRecord write section left a counter unbalanced.
func requireOptimisticSweep(t *testing.T, e *kvs.Sharded, want map[uint64][]byte, label string) {
	t.Helper()
	before := e.Stats().Total()
	for k, wv := range want {
		gv, ok := e.Get(k)
		if !ok || !bytes.Equal(gv, wv) {
			t.Fatalf("%s: optimistic Get(%d) = %x/%v, model %x", label, k, gv, ok, wv)
		}
	}
	after := e.Stats().Total()
	if got := after.SeqReads - before.SeqReads; got != uint64(len(want)) {
		t.Fatalf("%s: only %d of %d sweep reads were served optimistically", label, got, len(want))
	}
	if after.SeqFallbacks != before.SeqFallbacks {
		t.Fatalf("%s: quiescent sweep fell back %d times", label, after.SeqFallbacks-before.SeqFallbacks)
	}
}

func requireStateEquals(t *testing.T, got, want map[uint64][]byte, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: replica has %d visible keys, model %d", label, len(got), len(want))
	}
	for k, wv := range want {
		if gv, ok := got[k]; !ok || !bytes.Equal(gv, wv) {
			t.Fatalf("%s: key %d = %x (present %v), model %x", label, k, gv, ok, wv)
		}
	}
}

// TestModelReplicationEquivalence replays a randomized schedule, has a
// follower tail it, and asserts state equality at every sampled LSN (via
// the synchronous apply hook) and at quiescence; then keeps the schedule
// running live against the tailing follower and re-asserts at quiescence.
func TestModelReplicationEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		shards  int
		history int
		live    int
		seed    uint64
	}{
		{"1shard", 1, 400, 400, 0x5EED1},
		{"8shards", 8, 600, 600, 0x5EED8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			history, live := tc.history, tc.live
			if testing.Short() {
				history, live = history/4, live/4
			}
			engine, url, _ := startPrimary(t, t.TempDir(), tc.shards, mkBravo)
			states := newRefStates()
			model := newReplModel(engine, states, tc.seed, 256)

			// Phase 1: build history, sampling the reference at every
			// record's LSN, before any follower connects — so the replay
			// hits every sample deterministically.
			for i := 0; i < history; i++ {
				model.step(true)
			}
			merged := model.finish()

			oracle := newLSNOracle(t)
			var f *Follower
			f = openFollower(t, url, func(c *Config) {
				c.Paused = true // hooks reference f; start only once it exists
				c.OnApply = func(shard int, lsn uint64, snapshot bool) {
					oracle.hook(shard, lsn, snapshot)
					states.check(t, f, shard, lsn)
				}
			})
			f.Start()
			if err := f.WaitCaughtUp(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			requireStateEquals(t, f.Engine().Snapshot(), merged, "history quiescence")
			requireOptimisticSweep(t, f.Engine(), merged, "history sweep")
			if states.checked() == 0 {
				t.Fatal("no sampled LSN was ever checked")
			}

			// Phase 2: keep writing while the follower tails live; no
			// sampling (the hook may race the recorder), but quiescent
			// equality and the LSN oracle still hold.
			for i := 0; i < live; i++ {
				model.step(false)
			}
			merged = model.finish()
			if err := f.WaitCaughtUp(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			requireStateEquals(t, f.Engine().Snapshot(), merged, "live quiescence")
			requireOptimisticSweep(t, f.Engine(), merged, "live sweep")
		})
	}
}

// TestModelReplicationAcrossCheckpoint: a follower that bootstraps via a
// snapshot frame (the primary checkpointed its history away) must land on
// the sampled reference state at the snapshot's LSN, then follow the
// incremental stream to quiescent equality.
func TestModelReplicationAcrossCheckpoint(t *testing.T) {
	history, live := 500, 300
	if testing.Short() {
		history, live = 120, 80
	}
	engine, url, _ := startPrimary(t, t.TempDir(), 4, mkBravo)
	states := newRefStates()
	model := newReplModel(engine, states, 0xCAFE, 256)
	for i := 0; i < history; i++ {
		model.step(true)
	}
	model.finish()
	if err := engine.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Sample the post-checkpoint state at each shard's current LSN: that
	// is what each snapshot frame must reconstruct.
	for sh := 0; sh < engine.NumShards(); sh++ {
		states.record(sh, engine.ShardLSN(sh), model.refs[sh])
	}

	oracle := newLSNOracle(t)
	var f *Follower
	f = openFollower(t, url, func(c *Config) {
		c.Paused = true
		c.OnApply = func(shard int, lsn uint64, snapshot bool) {
			oracle.hook(shard, lsn, snapshot)
			if snapshot {
				states.check(t, f, shard, lsn)
			}
		}
	})
	f.Start()
	if err := f.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if oracle.snapshots() == 0 {
		t.Fatal("checkpointed history must force snapshot bootstraps")
	}
	for i := 0; i < live; i++ {
		model.step(false)
	}
	merged := model.finish()
	if err := f.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	requireStateEquals(t, f.Engine().Snapshot(), merged, "post-checkpoint quiescence")
	requireOptimisticSweep(t, f.Engine(), merged, "post-checkpoint sweep")
}
