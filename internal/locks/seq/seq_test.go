package seq

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestReadersSeeConsistentPairs(t *testing.T) {
	// The classic seqlock correctness property: writers keep two words in
	// lockstep; a validated read section must never observe them out of
	// sync.
	var l Lock
	var a, b atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			l.WriteLock()
			a.Store(i)
			b.Store(i)
			l.WriteUnlock()
		}
	}()
	for i := 0; i < 5000; i++ {
		var x, y uint64
		l.RunRead(func() {
			x = a.Load()
			y = b.Load()
		})
		if x != y {
			t.Fatalf("validated read observed torn pair (%d, %d)", x, y)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSequenceParity(t *testing.T) {
	var l Lock
	if s := l.ReadBegin(); s%2 != 0 {
		t.Fatalf("idle sequence %d is odd", s)
	}
	l.WriteLock()
	if l.cnt.seq.Load()%2 != 1 {
		t.Fatal("sequence even during write section")
	}
	l.WriteUnlock()
	if l.cnt.seq.Load()%2 != 0 {
		t.Fatal("sequence odd after write section")
	}
}

func TestCountTryBegin(t *testing.T) {
	var c Count
	s, ok := c.TryBegin()
	if !ok || s != 0 {
		t.Fatalf("quiescent TryBegin = (%d, %v), want (0, true)", s, ok)
	}
	c.WriteBegin()
	if _, ok := c.TryBegin(); ok {
		t.Fatal("TryBegin succeeded inside an open write section")
	}
	c.WriteEnd()
	s2, ok := c.TryBegin()
	if !ok || s2 != 2 {
		t.Fatalf("post-write TryBegin = (%d, %v), want (2, true)", s2, ok)
	}
	if !c.Retry(s) {
		t.Fatal("Retry(0) = false after a completed write section")
	}
	if c.Retry(s2) {
		t.Fatal("Retry invalidated a section with no intervening write")
	}
}

func TestCountBeginWaitsOutWriter(t *testing.T) {
	var c Count
	c.WriteBegin()
	done := make(chan uint64)
	go func() { done <- c.Begin() }()
	select {
	case s := <-done:
		t.Fatalf("Begin returned %d while a write section was open", s)
	case <-time.After(20 * time.Millisecond):
	}
	c.WriteEnd()
	if s := <-done; s%2 != 0 {
		t.Fatalf("Begin returned odd sequence %d", s)
	}
}

func TestReadRetryDetectsWriter(t *testing.T) {
	var l Lock
	s := l.ReadBegin()
	l.WriteLock()
	l.WriteUnlock()
	if !l.ReadRetry(s) {
		t.Fatal("read section overlapping a write was not invalidated")
	}
}

func TestWritersSerialize(t *testing.T) {
	var l Lock
	var counter int
	var wg sync.WaitGroup
	const workers, iters = 6, 1500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.WriteLock()
				counter++
				l.WriteUnlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d", counter, workers*iters)
	}
}
