// Package cohort implements the NUMA-aware Cohort reader-writer lock
// C-RW-WP of Calciu et al. [6] — "Cohort-RW" in the paper's evaluation —
// together with the C-TKT-TKT cohort mutex [20] that arbitrates its writers.
//
// Reader indicators are distributed one per NUMA node, each split into
// ingress and egress counters on separate sectors to reduce write sharing
// (§2). Writers acquire a cohort mutex (global ticket lock + per-node ticket
// locks with bounded local handoff) and then wait for every node's reader
// indicator to drain. The WP suffix is writer preference: readers stand back
// while writers are waiting or active, which batches writers together and —
// as the paper notes in its future-work discussion — pairs well with
// revocation-style designs.
//
// Footprint on the paper's 2-node machine: one 128-byte reader indicator per
// node plus the cohort mutex, ~896 bytes per instance.
package cohort

import (
	"sync/atomic"

	"github.com/bravolock/bravo/internal/arch"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/self"
	"github.com/bravolock/bravo/internal/spin"
	"github.com/bravolock/bravo/internal/topo"
)

// readerIndicator is one NUMA node's reader presence state. Ingress counts
// arrivals, egress counts departures; the indicator is empty when they are
// equal. The split halves write sharing between arriving and departing
// readers (§2: "individual counters can themselves be further split into
// constituent ingress and egress fields").
type readerIndicator struct {
	ingress atomic.Uint64
	_       arch.SectorPad
	egress  atomic.Uint64
	_       arch.SectorPad
}

func (ri *readerIndicator) arrive() { ri.ingress.Add(1) }
func (ri *readerIndicator) depart() { ri.egress.Add(1) }

// empty reports whether every arrival has been matched by a departure.
// The egress counter is read first: an active reader's arrival is always
// visible by the time its (not yet issued) departure could be.
func (ri *readerIndicator) empty() bool {
	e := ri.egress.Load()
	return ri.ingress.Load() == e
}

// RWLock is a C-RW-WP cohort reader-writer lock.
type RWLock struct {
	wmu      *Mutex
	wbarrier atomic.Int32 // writers waiting or active (the writer-preference gate)
	_        arch.SectorPad
	ri       []readerIndicator
	top      topo.Topology
}

var _ rwl.RWLock = (*RWLock)(nil)

// New returns a cohort reader-writer lock sized for the given topology.
func New(t topo.Topology) *RWLock {
	if !t.Valid() {
		t = topo.Host()
	}
	return &RWLock{
		wmu: NewMutex(t.Sockets),
		ri:  make([]readerIndicator, t.Sockets),
		top: t,
	}
}

func (l *RWLock) nodeOf() int {
	return l.top.SocketOf(l.top.CPUOf(self.ID()))
}

// RLock acquires read permission on the caller's node indicator. The node
// index travels in the token, exactly as the Cohort implementation passes
// "the reader's NUMA node ID from lock to corresponding unlock" (§3).
func (l *RWLock) RLock() rwl.Token {
	node := l.nodeOf()
	ri := &l.ri[node]
	var b spin.Backoff
	for {
		if l.wbarrier.Load() == 0 {
			ri.arrive()
			if l.wbarrier.Load() == 0 {
				return rwl.Token(node)
			}
			// A writer announced itself between the checks: stand back.
			ri.depart()
		}
		b.Once()
	}
}

// RUnlock releases read permission on the node recorded in t.
func (l *RWLock) RUnlock(t rwl.Token) {
	l.ri[t].depart()
}

// WriterPresent reports whether any writer is waiting or active.
// Diagnostic.
func (l *RWLock) WriterPresent() bool {
	return l.wbarrier.Load() > 0
}

// Lock acquires write permission: announce (raising the reader gate),
// win the writer cohort mutex, then drain every node's reader indicator.
func (l *RWLock) Lock() {
	node := l.nodeOf()
	l.wbarrier.Add(1)
	l.wmu.Lock(node)
	for i := range l.ri {
		ri := &l.ri[i]
		if !ri.empty() {
			var b spin.Backoff
			for !ri.empty() {
				b.Once()
			}
		}
	}
}

// Unlock releases write permission. The cohort mutex hands off locally when
// possible, keeping consecutive writers on one node.
func (l *RWLock) Unlock() {
	l.wmu.Unlock()
	l.wbarrier.Add(-1)
}
