package spin

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestUntilReturnsWhenConditionHolds(t *testing.T) {
	var flag atomic.Bool
	go func() {
		time.Sleep(10 * time.Millisecond)
		flag.Store(true)
	}()
	done := make(chan struct{})
	go func() {
		Until(flag.Load)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Until did not return after condition became true")
	}
}

func TestUntilImmediate(t *testing.T) {
	Until(func() bool { return true }) // must not block
}

func TestBackoffEscalates(t *testing.T) {
	// After enough iterations the backoff must sleep rather than burn CPU;
	// verify a long episode takes wall-clock time (i.e. naps happen).
	var b Backoff
	start := time.Now()
	for i := 0; i < yieldSpins+50; i++ {
		b.Once()
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("backoff never escalated to sleeping")
	}
}

func TestBackoffReset(t *testing.T) {
	var b Backoff
	for i := 0; i < yieldSpins+10; i++ {
		b.Once()
	}
	b.Reset()
	if b.i != 0 {
		t.Fatal("Reset did not rewind the progression")
	}
}

func TestManySpinnersMakeProgressOnOneP(t *testing.T) {
	// Liveness regression: spinners must not livelock the scheduler even
	// when they vastly outnumber Ps.
	var turn atomic.Int64
	const workers = 32
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(my int64) {
			Until(func() bool { return turn.Load() == my })
			turn.Add(1)
			done <- struct{}{}
		}(int64(w))
	}
	deadline := time.After(30 * time.Second)
	for i := 0; i < workers; i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatalf("only %d/%d spinners completed: livelock", i, workers)
		}
	}
}
