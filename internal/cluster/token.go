package cluster

import "fmt"

// ShardLSN is one global shard's commit position: the cluster's
// read-your-writes token, an (epoch, shard, lsn) triple. Shard is global —
// partition*ShardsPerPartition + the engine-local shard — so a token names
// both the partition that issued it and the WAL sequence it refers to.
// Epoch is the issuing primary's fencing epoch; a token survives a
// failover iff its LSN is inside the surviving-history prefix the
// promotion cut recorded.
type ShardLSN struct {
	Shard uint32
	LSN   uint64
	Epoch uint64
}

// TokenError is a read token the cluster cannot honor. Conflict
// distinguishes "the history this token names was lost or superseded"
// (HTTP 409, wire StatusConflict — the client should re-read and
// re-establish its session) from a malformed or impossible token (400).
type TokenError struct {
	Msg      string
	Conflict bool
}

func (e *TokenError) Error() string { return e.Msg }

// CheckToken adjudicates a read's (epoch, minLSN) token against every
// shard the keys touch — the cluster form of kvserv's checkMinLSN. For
// each touched (partition, shard):
//
//   - token epoch == partition epoch: the current primary issued it, so
//     its log must cover the LSN (it always does for genuine tokens; a
//     higher LSN means a client confused about whom it wrote to);
//   - token epoch < partition epoch: the token predates a failover. It
//     survived iff its LSN is ≤ the promotion cut of the first epoch bump
//     after it — the promoted history is a prefix of the old primary's, so
//     the cut is exactly the survived/lost boundary;
//   - token epoch > partition epoch: impossible here (a fenced partition
//     cannot have issued it); the token belongs to a different cluster.
//
// A nil return means the read may proceed.
func (c *Cluster) CheckToken(epoch, minLSN uint64, keys []uint64) *TokenError {
	if minLSN == 0 {
		return nil
	}
	if epoch == 0 {
		return &TokenError{Msg: "cluster read tokens carry an epoch: pass the epoch stamped on the write"}
	}
	for _, k := range keys {
		pi := c.router.Partition(k)
		p := c.parts[pi]
		p.mu.RLock()
		sh := p.member.engine.ShardOf(k)
		terr := p.checkTokenLocked(epoch, minLSN, sh)
		p.mu.RUnlock()
		if terr != nil {
			return terr
		}
	}
	return nil
}

// checkTokenLocked adjudicates one (epoch, lsn) token against one local
// shard of the partition; the caller holds p.mu (read side suffices — the
// fields only change under the write side, during failover).
func (p *partition) checkTokenLocked(epoch, lsn uint64, shard int) *TokenError {
	switch {
	case epoch == p.epoch:
		if have := p.member.engine.ShardLSN(shard); have < lsn {
			return &TokenError{
				Msg:      fmt.Sprintf("partition %d shard %d at LSN %d, token says %d: this primary never issued it", p.idx, shard, have, lsn),
				Conflict: true,
			}
		}
	case epoch < p.epoch:
		// The binding cut is the first promotion after the token's epoch:
		// later cuts can only extend the surviving prefix.
		for _, promo := range p.promotions {
			if promo.epoch > epoch {
				if lsn <= promo.cut[shard] {
					return nil
				}
				return &TokenError{
					Msg: fmt.Sprintf("partition %d shard %d: write at LSN %d (epoch %d) was lost in the failover to epoch %d (cut %d): re-read and retry",
						p.idx, shard, lsn, epoch, promo.epoch, promo.cut[shard]),
					Conflict: true,
				}
			}
		}
		// Promotions always cover every epoch bump, so this is unreachable;
		// fail closed if bookkeeping ever breaks.
		return &TokenError{
			Msg:      fmt.Sprintf("partition %d: no promotion record covers epoch %d", p.idx, epoch),
			Conflict: true,
		}
	default: // epoch > p.epoch
		return &TokenError{
			Msg: fmt.Sprintf("partition %d is at epoch %d, token says %d: token from a different cluster", p.idx, p.epoch, epoch),
		}
	}
	return nil
}
