package mcs

import (
	"runtime"
	"sync"
	"testing"
)

func TestMutualExclusion(t *testing.T) {
	var m Mutex
	var counter int
	var wg sync.WaitGroup
	const workers, iters = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d", counter, workers*iters)
	}
}

func TestTryLock(t *testing.T) {
	var m Mutex
	if !m.TryLock() {
		t.Fatal("TryLock failed on a free lock")
	}
	if m.TryLock() {
		t.Fatal("TryLock succeeded on a held lock")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock failed after unlock")
	}
	m.Unlock()
}

func TestHandoffUnderContention(t *testing.T) {
	// Exercise the queued-successor path explicitly: hold the lock while a
	// known contender queues, then verify the handoff admits it.
	var m Mutex
	m.Lock()
	got := make(chan struct{})
	go func() {
		m.Lock()
		close(got)
		m.Unlock()
	}()
	for !m.HasWaiters() {
		runtime.Gosched()
	}
	m.Unlock()
	<-got
}

func TestLockUnlockSequential(t *testing.T) {
	var m Mutex
	for i := 0; i < 1000; i++ {
		m.Lock()
		m.Unlock()
	}
	if m.HasWaiters() {
		t.Fatal("phantom waiters after sequential use")
	}
}
