// Package stdrw adapts sync.RWMutex to the rwl interface.
//
// Go's standard reader-writer lock is itself a centralized-indicator design
// (a readerCount word updated by every reader), so it is a natural BRAVO
// substrate: "BRAVO-Go" is the repository's ablation showing the
// transformation composing with a lock the paper never measured.
package stdrw

import (
	"sync"

	"github.com/bravolock/bravo/internal/rwl"
)

// Lock wraps sync.RWMutex. The zero value is unlocked.
type Lock struct {
	mu sync.RWMutex
}

var _ rwl.TryRWLock = (*Lock)(nil)

// RLock acquires read permission.
func (l *Lock) RLock() rwl.Token {
	l.mu.RLock()
	return 0
}

// RUnlock releases read permission.
func (l *Lock) RUnlock(rwl.Token) {
	l.mu.RUnlock()
}

// Lock acquires write permission.
func (l *Lock) Lock() { l.mu.Lock() }

// Unlock releases write permission.
func (l *Lock) Unlock() { l.mu.Unlock() }

// TryRLock attempts to acquire read permission without blocking.
func (l *Lock) TryRLock() (rwl.Token, bool) {
	return 0, l.mu.TryRLock()
}

// TryLock attempts to acquire write permission without blocking.
func (l *Lock) TryLock() bool { return l.mu.TryLock() }
