package arch

import (
	"testing"
	"unsafe"
)

func TestPadSizes(t *testing.T) {
	if unsafe.Sizeof(CacheLinePad{}) != CacheLineSize {
		t.Fatalf("CacheLinePad is %d bytes", unsafe.Sizeof(CacheLinePad{}))
	}
	if unsafe.Sizeof(SectorPad{}) != SectorSize {
		t.Fatalf("SectorPad is %d bytes", unsafe.Sizeof(SectorPad{}))
	}
	if SectorSize != 2*CacheLineSize {
		t.Fatal("a sector must be an adjacent-prefetch pair of lines (paper §5)")
	}
}
