package core

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/locks/mutexrw"
	"github.com/bravolock/bravo/internal/locks/pfq"
	"github.com/bravolock/bravo/internal/locks/pft"
	"github.com/bravolock/bravo/internal/locks/ptl"
	"github.com/bravolock/bravo/internal/rwl"
)

// newBiased returns a BRAVO-BA lock with bias pre-enabled (one slow read
// under AlwaysPolicy), its stats, and a private table to keep tests isolated.
func newBiased(t *testing.T, opts ...Option) (*Lock, *Stats) {
	t.Helper()
	st := &Stats{}
	opts = append([]Option{
		WithTable(NewTable(DefaultTableSize)),
		WithPolicy(AlwaysPolicy{}),
		WithStats(st),
	}, opts...)
	l := New(new(pfq.Lock), opts...)
	tok := l.RLock() // slow read enables bias
	l.RUnlock(tok)
	if !l.Biased() {
		t.Fatal("bias not enabled by slow read under AlwaysPolicy")
	}
	return l, st
}

func TestBiasInitiallyDisabled(t *testing.T) {
	st := &Stats{}
	l := New(new(pfq.Lock), WithTable(NewTable(64)), WithStats(st))
	if l.Biased() {
		t.Fatal("fresh lock is biased")
	}
	tok := l.RLock()
	l.RUnlock(tok)
	if st.SlowDisabled.Load() != 1 || st.FastRead.Load() != 0 {
		t.Fatalf("first read must take the slow path: %s", st.Snapshot())
	}
}

func TestFastPathAfterBias(t *testing.T) {
	l, st := newBiased(t)
	for i := 0; i < 100; i++ {
		tok := l.RLock()
		l.RUnlock(tok)
	}
	if st.FastRead.Load() != 100 {
		t.Fatalf("expected 100 fast reads, got %s", st.Snapshot())
	}
	if l.TableInUse().Occupancy() != 0 {
		t.Fatal("table not clean after fast reads")
	}
}

func TestFastReaderPublishesAndClears(t *testing.T) {
	l, _ := newBiased(t)
	tok := l.RLock()
	if l.TableInUse().Occupancy() != 1 {
		t.Fatal("fast reader not visible in the table")
	}
	l.RUnlock(tok)
	if l.TableInUse().Occupancy() != 0 {
		t.Fatal("slot not cleared at unlock")
	}
}

func TestWriterRevokesBias(t *testing.T) {
	l, st := newBiased(t)
	l.Lock()
	if l.Biased() {
		t.Fatal("bias survived a write acquisition")
	}
	l.Unlock()
	if st.WriteRevoke.Load() != 1 {
		t.Fatalf("expected one revocation, got %s", st.Snapshot())
	}
	// A second write must not revoke again.
	l.Lock()
	l.Unlock()
	if st.WriteRevoke.Load() != 1 || st.WriteNormal.Load() != 1 {
		t.Fatalf("second write should be normal: %s", st.Snapshot())
	}
}

func TestRevocationWaitsForFastReaders(t *testing.T) {
	l, st := newBiased(t)
	tok := l.RLock() // fast reader in CS
	if st.FastRead.Load() != 1 {
		t.Fatalf("setup: reader did not take the fast path: %s", st.Snapshot())
	}
	var wGot atomic.Bool
	go func() {
		l.Lock()
		wGot.Store(true)
		l.Unlock()
	}()
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		if wGot.Load() {
			t.Fatal("writer admitted while a fast-path reader was inside")
		}
		time.Sleep(time.Millisecond)
	}
	l.RUnlock(tok)
	waitTrue(t, wGot.Load, "writer not admitted after fast reader departed")
	if st.RevokeWaits.Load() != 1 {
		t.Fatalf("revocation should have awaited one reader: %s", st.Snapshot())
	}
}

// The deterministic publish/recheck race reproduction (the old
// TestRacedReaderFallsBack) now lives with the protocol in
// internal/bias (TestEngineRacedReaderFallsBack).

func TestCollisionFallsBack(t *testing.T) {
	// Force a true collision with a one-slot table shared by two locks.
	tab := NewTable(1)
	st1, st2 := &Stats{}, &Stats{}
	l1 := New(new(pfq.Lock), WithTable(tab), WithPolicy(AlwaysPolicy{}), WithStats(st1))
	l2 := New(new(pfq.Lock), WithTable(tab), WithPolicy(AlwaysPolicy{}), WithStats(st2))
	for _, l := range []*Lock{l1, l2} {
		tok := l.RLock()
		l.RUnlock(tok)
	}
	t1 := l1.RLock() // occupies the only slot
	if st1.FastRead.Load() != 1 {
		t.Fatalf("l1 read not fast: %s", st1.Snapshot())
	}
	t2 := l2.RLock() // must collide and divert
	if st2.SlowCollision.Load() != 1 {
		t.Fatalf("l2 collision not recorded: %s", st2.Snapshot())
	}
	l2.RUnlock(t2)
	l1.RUnlock(t1)
}

func TestSecondProbeRescuesCollision(t *testing.T) {
	// With a 2-slot table and double probing, a colliding reader lands in
	// the alternate slot instead of diverting.
	tab := NewTable(2)
	st := &Stats{}
	l := New(new(pfq.Lock), WithTable(tab), WithPolicy(AlwaysPolicy{}),
		WithStats(st), WithSecondProbe())
	tok := l.RLock()
	l.RUnlock(tok)
	// Find an identity whose two probes land in different slots, then
	// occupy its primary slot with a foreign lock.
	lockID := l.Engine().ID()
	id := uint64(0)
	for ; id < 1000; id++ {
		if tab.Index(lockID, id) != tab.Index2(lockID, id) {
			break
		}
	}
	idx := tab.Index(lockID, id)
	if _, ok := tab.TryPublishAt(idx, uintptr(0xF00D0)); !ok {
		t.Fatal("setup publish failed")
	}
	t2 := l.RLockWithID(id)
	if st.FastRead.Load() != 1 {
		t.Fatalf("second probe did not rescue the collision: %s", st.Snapshot())
	}
	l.RUnlock(t2)
	tab.Clear(idx)
}

func TestInhibitPreventsImmediateRebias(t *testing.T) {
	// After a revocation with a long measured duration, slow readers must
	// not re-enable bias until the inhibit window passes.
	st := &Stats{}
	pol := NewInhibitPolicy(9)
	l := New(new(pfq.Lock), WithTable(NewTable(64)), WithPolicy(pol), WithStats(st))
	tok := l.RLock()
	l.RUnlock(tok)
	if !l.Biased() {
		t.Fatal("bias not set on fresh inhibit policy")
	}
	// Make the revocation appear expensive by stretching the window
	// directly (equivalent to a long reader drain).
	l.Lock()
	l.Unlock()
	pol.ForceInhibitUntil(clock.Nanos() + int64(time.Hour))
	tok = l.RLock()
	l.RUnlock(tok)
	if l.Biased() {
		t.Fatal("bias re-enabled during the inhibit window")
	}
	// Once the window lapses, a slow reader re-enables bias.
	pol.ForceInhibitUntil(clock.Nanos() - 1)
	tok = l.RLock()
	l.RUnlock(tok)
	if !l.Biased() {
		t.Fatal("bias not re-enabled after the inhibit window")
	}
}

func TestUnbiasedLockBehavesLikeUnderlying(t *testing.T) {
	// With NeverPolicy, BRAVO-A must be a pass-through to A.
	st := &Stats{}
	l := New(new(pfq.Lock), WithTable(NewTable(64)), WithPolicy(NeverPolicy{}), WithStats(st))
	for i := 0; i < 50; i++ {
		tok := l.RLock()
		l.RUnlock(tok)
		l.Lock()
		l.Unlock()
	}
	if st.FastRead.Load() != 0 || st.WriteRevoke.Load() != 0 {
		t.Fatalf("NeverPolicy leaked bias: %s", st.Snapshot())
	}
	if st.SlowDisabled.Load() != 50 || st.WriteNormal.Load() != 50 {
		t.Fatalf("pass-through accounting wrong: %s", st.Snapshot())
	}
}

func TestTryRLockFastPath(t *testing.T) {
	l, st := newBiased(t)
	tok, ok := l.TryRLock()
	if !ok {
		t.Fatal("TryRLock failed on biased lock")
	}
	if st.FastRead.Load() != 1 {
		t.Fatalf("TryRLock did not use the fast path: %s", st.Snapshot())
	}
	l.RUnlock(tok)
}

func TestTryRLockSlowFallback(t *testing.T) {
	st := &Stats{}
	l := New(new(pfq.Lock), WithTable(NewTable(64)), WithPolicy(AlwaysPolicy{}), WithStats(st))
	tok, ok := l.TryRLock() // bias off → underlying try
	if !ok {
		t.Fatal("TryRLock failed on free lock")
	}
	if !l.Biased() {
		t.Fatal("successful underlying try-read should enable bias when the policy allows (§3)")
	}
	l.RUnlock(tok)
}

func TestTryLockRevokes(t *testing.T) {
	l, st := newBiased(t)
	if !l.TryLock() {
		t.Fatal("TryLock failed on free lock")
	}
	if l.Biased() {
		t.Fatal("TryLock did not revoke bias")
	}
	l.Unlock()
	if st.WriteRevoke.Load() != 1 {
		t.Fatalf("TryLock revocation not recorded: %s", st.Snapshot())
	}
}

func TestTryLockWaitsForFastReaders(t *testing.T) {
	l, _ := newBiased(t)
	tok := l.RLock()
	// The fast reader holds no underlying state, so the underlying TryLock
	// succeeds — but revocation must then wait. TryLock is therefore only
	// non-blocking with respect to the underlying lock; verify it still
	// completes once the reader leaves.
	done := make(chan bool)
	go func() {
		ok := l.TryLock()
		done <- ok
	}()
	select {
	case <-done:
		t.Fatal("TryLock returned while a fast reader was inside")
	case <-time.After(50 * time.Millisecond):
	}
	l.RUnlock(tok)
	if ok := <-done; !ok {
		t.Fatal("TryLock failed after reader departed")
	}
	l.Unlock()
}

func TestMutexUnderlyingNoTrySupport(t *testing.T) {
	// ptl implements TryRWLock; ensure the non-try substrate path degrades
	// gracefully (pfq has try; use a bare non-try wrapper).
	l := New(nonTry{inner: new(pfq.Lock)}, WithTable(NewTable(64)))
	if _, ok := l.TryRLock(); ok {
		t.Fatal("TryRLock succeeded without substrate support and without bias")
	}
	if l.TryLock() {
		t.Fatal("TryLock succeeded without substrate support")
	}
}

// nonTry hides the try methods of an underlying lock.
type nonTry struct{ inner rwl.RWLock }

func (n nonTry) RLock() rwl.Token    { return n.inner.RLock() }
func (n nonTry) RUnlock(t rwl.Token) { n.inner.RUnlock(t) }
func (n nonTry) Lock()               { n.inner.Lock() }
func (n nonTry) Unlock()             { n.inner.Unlock() }

func TestRevocationMutexAllowsReadersDuringScan(t *testing.T) {
	// Future-work variant (§7): with the revocation mutex, a reader arriving
	// during a (long) revocation scan is admitted via the slow path.
	st := &Stats{}
	l := New(new(pfq.Lock), WithTable(NewTable(64)), WithPolicy(AlwaysPolicy{}),
		WithStats(st), WithRevocationMutex())
	tok := l.RLock()
	l.RUnlock(tok)
	held := l.RLock() // fast reader pins the revocation scan
	var wGot atomic.Bool
	go func() {
		l.Lock()
		wGot.Store(true)
		l.Unlock()
	}()
	// While the writer is stuck in pre-revocation, a new reader must get in.
	var rGot atomic.Bool
	go func() {
		tok := l.RLock()
		rGot.Store(true)
		l.RUnlock(tok)
	}()
	waitTrue(t, rGot.Load, "reader blocked during revocation despite revocation mutex")
	if wGot.Load() {
		t.Fatal("writer admitted while fast reader inside")
	}
	l.RUnlock(held)
	waitTrue(t, wGot.Load, "writer not admitted after fast reader departed")
}

func TestBravoOverMutexGivesReadConcurrency(t *testing.T) {
	// BRAVO-mutex (§7): the fast path is the sole source of read-read
	// concurrency. Two fast readers must coexist.
	l := New(new(mutexrw.Lock), WithTable(NewTable(64)), WithPolicy(AlwaysPolicy{}))
	tok := l.RLock() // slow (exclusive) read, enables bias
	l.RUnlock(tok)
	t1 := l.RLock()
	done := make(chan rwl.Token)
	go func() { done <- l.RLock() }()
	select {
	case t2 := <-done:
		l.RUnlock(t2)
	case <-time.After(10 * time.Second):
		t.Fatal("BRAVO-mutex denied fast-path read-read concurrency")
	}
	l.RUnlock(t1)
}

func TestPreferenceTransparency(t *testing.T) {
	// §3: "if reader-writer lock algorithm A has certain preference
	// properties then BRAVO-A will exhibit the same properties". With bias
	// disabled (NeverPolicy) the wrapper must be admission-transparent.
	t.Run("phase-fair substrate", func(t *testing.T) {
		l := New(new(pft.Lock), WithTable(NewTable(64)), WithPolicy(NeverPolicy{}))
		checkWaitingWriterBlocks(t, l)
	})
	t.Run("reader-preference substrate", func(t *testing.T) {
		l := New(ptl.New(), WithTable(NewTable(64)), WithPolicy(NeverPolicy{}))
		checkReaderBargesPastWriter(t, l)
	})
}

func checkWaitingWriterBlocks(t *testing.T, l rwl.RWLock) {
	t.Helper()
	r1 := l.RLock()
	var wGot, r2Got atomic.Bool
	release := make(chan struct{})
	go func() {
		l.Lock()
		wGot.Store(true)
		<-release
		l.Unlock()
	}()
	wp := l.(interface{ WriterPresent() bool })
	waitTrue(t, wp.WriterPresent, "writer never announced")
	go func() {
		tok := l.RLock()
		r2Got.Store(true)
		l.RUnlock(tok)
	}()
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		if r2Got.Load() {
			t.Fatal("reader barged past waiting writer through BRAVO wrapper")
		}
		time.Sleep(time.Millisecond)
	}
	l.RUnlock(r1)
	waitTrue(t, wGot.Load, "writer starved")
	close(release)
	waitTrue(t, r2Got.Load, "blocked reader never admitted")
}

func checkReaderBargesPastWriter(t *testing.T, l rwl.RWLock) {
	t.Helper()
	r1 := l.RLock()
	var wGot, r2Got atomic.Bool
	release := make(chan struct{})
	go func() {
		l.Lock()
		wGot.Store(true)
		<-release
		l.Unlock()
	}()
	time.Sleep(20 * time.Millisecond) // let the writer queue up
	go func() {
		tok := l.RLock()
		r2Got.Store(true)
		l.RUnlock(tok)
	}()
	waitTrue(t, r2Got.Load, "reader-preference substrate blocked a reader behind a waiting writer")
	if wGot.Load() {
		t.Fatal("writer admitted while reader held")
	}
	l.RUnlock(r1)
	waitTrue(t, wGot.Load, "writer starved after readers drained")
	close(release)
}

func waitTrue(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatal(msg)
}

func TestStatsSnapshotArithmetic(t *testing.T) {
	st := &Stats{}
	st.FastRead.Store(90)
	st.SlowDisabled.Store(5)
	st.SlowCollision.Store(3)
	st.SlowRaced.Store(2)
	st.WriteNormal.Store(7)
	st.WriteRevoke.Store(3)
	snap := st.Snapshot()
	if snap.Reads() != 100 || snap.Writes() != 10 {
		t.Fatalf("reads=%d writes=%d", snap.Reads(), snap.Writes())
	}
	if f := snap.FastFraction(); f != 0.9 {
		t.Fatalf("fast fraction = %f, want 0.9", f)
	}
	if (Snapshot{}).FastFraction() != 0 {
		t.Fatal("empty snapshot fast fraction should be 0")
	}
	if snap.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestHoldingMultipleLocks(t *testing.T) {
	// §3: "BRAVO fully supports the case where a thread holds multiple
	// locks at the same time."
	tab := NewTable(DefaultTableSize)
	var locks []*Lock
	var toks []rwl.Token
	for i := 0; i < 8; i++ {
		l := New(new(pfq.Lock), WithTable(tab), WithPolicy(AlwaysPolicy{}))
		tok := l.RLock()
		l.RUnlock(tok)
		locks = append(locks, l)
	}
	for _, l := range locks {
		toks = append(toks, l.RLock())
	}
	// Hash collisions can push an unlucky lock to the slow path, so demand
	// near-full rather than exact fast-path residency.
	if occ := tab.Occupancy(); occ < 6 {
		t.Fatalf("8 held locks occupy only %d slots", occ)
	}
	for i, l := range locks {
		l.RUnlock(toks[i])
	}
	if tab.Occupancy() != 0 {
		t.Fatal("slots leaked")
	}
}
