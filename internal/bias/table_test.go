package bias

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewTableValidation(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 100, 4095} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTable(%d) did not panic", bad)
				}
			}()
			NewTable(bad)
		}()
	}
	if got := NewTable(8).Size(); got != 8 {
		t.Errorf("Size = %d, want 8", got)
	}
}

func TestNewTable2DValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 256}, {3, 256}, {4, 0}, {4, 100}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTable2D(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			NewTable2D(bad[0], bad[1])
		}()
	}
	tab := NewTable2D(4, 256)
	if !tab.Sectored() || tab.Size() != 1024 {
		t.Errorf("2D table misconfigured: sectored=%v size=%d", tab.Sectored(), tab.Size())
	}
}

func TestSharedTableGeometry(t *testing.T) {
	if SharedTable().Size() != DefaultTableSize {
		t.Fatalf("shared table has %d slots, want %d (paper §3)", SharedTable().Size(), DefaultTableSize)
	}
	if SharedTable().Sectored() {
		t.Fatal("shared table must use the flat Listing 1 layout")
	}
}

func TestPublishClearRoundTrip(t *testing.T) {
	tab := NewTable(64)
	id := uintptr(0xdeadbeef0)
	idx := tab.Index(id, 42)
	gen, ok := tab.TryPublishAt(idx, id)
	if !ok {
		t.Fatal("publish into empty slot failed")
	}
	if tab.Load(idx) != id {
		t.Fatal("slot does not hold the published identity")
	}
	if _, ok := tab.TryPublishAt(idx, 0xabc0); ok {
		t.Fatal("publish into occupied slot succeeded (collision must fail)")
	}
	tab.ClearOwned(idx, gen, id)
	if tab.Load(idx) != 0 {
		t.Fatal("slot not cleared by owned clear")
	}
	if _, ok := tab.TryPublishAt(idx, id); !ok {
		t.Fatal("republish after owned clear failed")
	}
	tab.Clear(idx)
	if tab.Load(idx) != 0 {
		t.Fatal("slot not cleared")
	}
	if tab.Occupancy() != 0 {
		t.Fatal("occupancy nonzero after clear")
	}
}

func TestIndexInBounds(t *testing.T) {
	tab1 := NewTable(4096)
	tab2 := NewTable2D(64, 256)
	f := func(lock uint64, self uint64) bool {
		a := tab1.Index(uintptr(lock), self)
		b := tab1.Index2(uintptr(lock), self)
		c := tab2.Index(uintptr(lock), self)
		d := tab2.Index2(uintptr(lock), self)
		return a < 4096 && b < 4096 && c < 64*256 && d < 64*256
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func Test2DColumnFixedPerLock(t *testing.T) {
	// BRAVO-2D's revocation scans one column, so every identity must map a
	// given lock to the same column regardless of the thread.
	tab := NewTable2D(16, 256)
	lock := uintptr(0xc000001230)
	col := tab.Index(lock, 0) % tab.rowLen
	f := func(self uint64) bool {
		return tab.Index(lock, self)%tab.rowLen == col &&
			tab.Index2(lock, self)%tab.rowLen == col
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func Test2DRowSelectedByThread(t *testing.T) {
	// Distinct thread identities should spread over rows.
	tab := NewTable2D(16, 256)
	lock := uintptr(0xc000001230)
	rows := map[uint32]bool{}
	for id := uint64(0); id < 64; id++ {
		rows[tab.Index(lock, id)/tab.rowLen] = true
	}
	if len(rows) < 8 {
		t.Errorf("64 identities hit only %d/16 rows", len(rows))
	}
}

func TestWaitEmptyScanCounts(t *testing.T) {
	tab := NewTable(256)
	scanned, conflicts := tab.WaitEmpty(uintptr(0x1230))
	if scanned != 256 || conflicts != 0 {
		t.Fatalf("1D empty scan: scanned=%d conflicts=%d, want 256, 0", scanned, conflicts)
	}
	tab2 := NewTable2D(8, 32)
	scanned, conflicts = tab2.WaitEmpty(uintptr(0x1230))
	if scanned != 8 || conflicts != 0 {
		t.Fatalf("2D empty scan: scanned=%d conflicts=%d, want 8 (one per row), 0", scanned, conflicts)
	}
}

func TestWaitEmptyAwaitsConflicts(t *testing.T) {
	tab := NewTable(64)
	id := uintptr(0x5550)
	idx := tab.Index(id, 7)
	if _, ok := tab.TryPublishAt(idx, id); !ok {
		t.Fatal("publish failed")
	}
	done := make(chan int)
	go func() {
		_, conflicts := tab.WaitEmpty(id)
		done <- conflicts
	}()
	// Give the scanner time to reach the occupied slot and block on it.
	time.Sleep(30 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("waitEmpty returned while a reader was published")
	default:
	}
	tab.Clear(idx)
	if conflicts := <-done; conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", conflicts)
	}
}

func TestWaitEmptyIgnoresOtherLocks(t *testing.T) {
	tab := NewTable(64)
	other := uintptr(0x7770)
	if _, ok := tab.TryPublishAt(3, other); !ok {
		t.Fatal("publish failed")
	}
	scanned, conflicts := tab.WaitEmpty(uintptr(0x5550))
	if scanned != 64 || conflicts != 0 {
		t.Fatalf("scan over foreign entries: scanned=%d conflicts=%d", scanned, conflicts)
	}
	tab.Clear(3)
}

func TestOccupancyCountsDistinctSlots(t *testing.T) {
	tab := NewTable(64)
	tab.TryPublishAt(1, 0x10)
	tab.TryPublishAt(5, 0x20)
	tab.TryPublishAt(9, 0x10) // same lock in two slots (two fast readers)
	if got := tab.Occupancy(); got != 3 {
		t.Fatalf("occupancy = %d, want 3", got)
	}
}
