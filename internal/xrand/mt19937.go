package xrand

// MT19937 is the 32-bit Mersenne Twister of Matsumoto and Nishimura, matching
// C++'s std::mt19937 (the generator RWBench steps inside its critical
// sections). Output is bit-exact with std::mt19937 for the same seed.
type MT19937 struct {
	state [mtN]uint32
	index int
}

const (
	mtN         = 624
	mtM         = 397
	mtMatrixA   = 0x9908b0df
	mtUpperMask = 0x80000000
	mtLowerMask = 0x7fffffff
)

// NewMT19937 returns a Mersenne Twister seeded with seed (the std::mt19937
// default seed is 5489).
func NewMT19937(seed uint32) *MT19937 {
	m := &MT19937{}
	m.Seed(seed)
	return m
}

// Seed initializes the state array exactly as std::mt19937 does.
func (m *MT19937) Seed(seed uint32) {
	m.state[0] = seed
	for i := 1; i < mtN; i++ {
		m.state[i] = 1812433253*(m.state[i-1]^(m.state[i-1]>>30)) + uint32(i)
	}
	m.index = mtN
}

// Next returns the next 32-bit output.
func (m *MT19937) Next() uint32 {
	if m.index >= mtN {
		m.generate()
	}
	y := m.state[m.index]
	m.index++
	y ^= y >> 11
	y ^= (y << 7) & 0x9d2c5680
	y ^= (y << 15) & 0xefc60000
	y ^= y >> 18
	return y
}

func (m *MT19937) generate() {
	for i := 0; i < mtN; i++ {
		y := (m.state[i] & mtUpperMask) | (m.state[(i+1)%mtN] & mtLowerMask)
		next := m.state[(i+mtM)%mtN] ^ (y >> 1)
		if y&1 != 0 {
			next ^= mtMatrixA
		}
		m.state[i] = next
	}
	m.index = 0
}

// Step advances the generator n times and returns the last value; this is
// the "execute 10 steps of a thread-local std::mt19937" critical-section
// work unit from RWBench.
func (m *MT19937) Step(n int) uint32 {
	var v uint32
	for i := 0; i < n; i++ {
		v = m.Next()
	}
	return v
}
