package kvs

import (
	"sync/atomic"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/locks/seq"
)

// DefaultSeqReadAttempts is how many optimistic (seqlock) read attempts the
// engine makes before falling back to the shard's read lock, when
// SetSeqReadAttempts has not overridden it. Small on purpose: one writer
// collision usually clears within an attempt or two, and a shard busy
// enough to keep invalidating readers is exactly the case the BRAVO
// pessimistic path exists for.
const DefaultSeqReadAttempts = 3

// seqStore is the keyed storage shared by a Sharded shard and a Memtable
// stripe: the authoritative cell map, the TTL deadlines, and the seq index
// that shadows the map for lock-free optimistic probes. All mutation goes
// through putLocked/removeLocked/replaceLocked under the owner's write
// lock, which keeps the three structures in lockstep — the bracketing
// invariant (DESIGN.md) is that every such mutation happens inside the
// wrapped lock's write section, so optimistic readers can never trust a
// torn view of any of them.
type seqStore struct {
	data map[uint64]*seqCell
	// exp tracks PutTTL deadlines (see ttlMap); authoritative for the
	// locked paths and Reap. Cells mirror the deadline atomically for the
	// optimistic path. Guarded by the owner's lock.
	exp ttlMap
	idx seqIndex
}

// putLocked applies one insert-or-update under the already-held write lock:
// the in-place value reuse shared by Put, MultiPut, the async queue's flush,
// replication apply, and recovery, plus TTL bookkeeping (deadline 0 = no
// TTL, clearing any previous one). fresh reports that a new cell was
// allocated (absent key, or a value that outgrew the cell) rather than
// updated in place.
func (st *seqStore) putLocked(key uint64, value []byte, deadline int64) (fresh bool) {
	if c, ok := st.data[key]; ok && c.fits(len(value)) {
		c.set(value, deadline)
	} else {
		c = newSeqCell(value, deadline)
		st.data[key] = c
		st.idx.put(st.data, key, c)
		fresh = true
	}
	st.exp.set(key, deadline)
	return fresh
}

// removeLocked unconditionally removes key from map, TTL table, and index,
// under the already-held write lock.
func (st *seqStore) removeLocked(key uint64) {
	delete(st.data, key)
	if len(st.exp) > 0 {
		delete(st.exp, key)
	}
	st.idx.del(key)
}

// deleteLocked removes key under the already-held write lock, reporting
// whether it was visibly present and whether it was a TTL-expired residue.
func (st *seqStore) deleteLocked(key uint64) (ok, expired bool) {
	if _, present := st.data[key]; !present {
		return false, false
	}
	expired = st.expiredLocked(key)
	st.removeLocked(key)
	return !expired, expired
}

// replaceLocked resets the store to empty (a replication snapshot install),
// under the already-held write lock.
func (st *seqStore) replaceLocked(capacity int) {
	st.data = make(map[uint64]*seqCell, capacity)
	st.exp = nil
	st.idx.reset()
}

// expiredLocked reports whether key carries a TTL whose deadline has passed
// (inclusive; see ttlMap.expired). Callers hold the owner's lock, read or
// write.
func (st *seqStore) expiredLocked(key uint64) bool {
	return st.exp.expired(key)
}

// seqReadHook, when set, runs between an optimistic read's copy and its
// validation — the window a concurrent writer tears. Tests install it to
// force deterministic collisions and to fuzz interleavings.
var seqReadHook atomic.Pointer[func(key uint64)]

// seqGetInto attempts up to attempts optimistic reads of key against cnt,
// the owner's write-section counter. On success (done=true) it returns the
// value appended to buf[:0], presence, and whether a present entry was
// TTL-expired (reported as a miss, like the locked path); retries counts
// the failed attempts before the success. done=false means every attempt
// collided and the caller must take the pessimistic path; the returned
// buffer then carries buf's storage back to the caller.
func (st *seqStore) seqGetInto(cnt *seq.Count, key uint64, buf []byte, attempts int) (out []byte, ok, expired bool, retries int, done bool) {
	for a := 0; a < attempts; a++ {
		s0, even := cnt.TryBegin()
		if !even {
			retries++
			continue
		}
		c := st.idx.lookup(key)
		out = buf[:0]
		var deadline int64
		if c != nil {
			out = c.appendTo(out)
			deadline = c.deadline.Load()
		}
		if h := seqReadHook.Load(); h != nil {
			(*h)(key)
		}
		if cnt.Retry(s0) {
			retries++
			continue
		}
		// Validated: the copy is exactly what some quiescent instant held.
		if c == nil {
			return buf[:0], false, false, retries, true
		}
		if deadline != 0 && clock.Nanos() >= deadline {
			return buf[:0], false, true, retries, true
		}
		return out, true, false, retries, true
	}
	return buf[:0], false, false, retries, false
}
