package rwsem

import (
	"github.com/bravolock/bravo/internal/bias"
)

// Bravo is the §4 integration of BRAVO with rwsem. It mirrors the kernel
// patch: the semaphore gains an RBias flag and an InhibitUntil timestamp;
// read acquisitions may divert to the shared visible readers table, with the
// slot determined by hashing the task's identity with the semaphore
// identity; releases clear that slot.
//
// The whole biasing protocol lives in the embedded bias.Engine — the same
// engine that powers the user-space wrapper (internal/core) — so the rwsem
// integration inherits the policy ablation, stats, second-probe, randomized
// and 2D-table variants instead of carrying a private rbias/inhibit copy.
//
// The paper's patch assumes the semaphore is released by the task that
// acquired it for read, and we keep that assumption: the task's reader
// handle records fast-path holds (and caches the slot between acquisitions,
// so a steady-state reader re-publishes without rehashing), resolving the
// rare hash-collision ambiguity that pure slot-content comparison would
// leave (two tasks whose (task, sem) pairs hash to the same slot).
type Bravo struct {
	inner *RWSem
	eng   bias.Engine
}

// NewBravo wraps a fresh rwsem with the BRAVO reader fast path. The visible
// readers table is shared process-wide (bias.SharedTable) unless overridden
// with SetTable.
func NewBravo(cfg Config) *Bravo {
	// The paper's kernel integration also fixes the owner-field writes
	// (§4); BRAVO-rwsem therefore defaults to the optimized owner protocol.
	cfg.StockOwnerWrites = false
	b := &Bravo{inner: New(cfg)}
	b.eng.Init()
	return b
}

// SetTable redirects fast-path publication — a private table, or a BRAVO-2D
// sectored one (testing and ablations). Configuration-time only.
func (b *Bravo) SetTable(t *bias.Table) { b.eng.SetTable(t) }

// SetInhibitN tunes the slow-down guard multiplier of the inhibit policy
// without replacing an installed policy. Configuration-time only.
func (b *Bravo) SetInhibitN(n int64) { b.eng.SetInhibitN(n) }

// SetPolicy installs a bias-enabling policy (the §3 ablation reaches the
// kernel analogue too). Configuration-time only.
func (b *Bravo) SetPolicy(p bias.Policy) { b.eng.SetPolicy(p) }

// SetStats attaches event counters, the lockstat analogue (§6).
// Configuration-time only.
func (b *Bravo) SetStats(s *bias.Stats) { b.eng.SetStats(s) }

// SetSecondProbe enables the secondary table probe (§7).
// Configuration-time only.
func (b *Bravo) SetSecondProbe() { b.eng.SetSecondProbe() }

// SetRandomizedIndex selects non-deterministic slot indices (§7).
// Configuration-time only.
func (b *Bravo) SetRandomizedIndex() { b.eng.SetRandomizedIndex() }

// Inner exposes the wrapped rwsem. Diagnostic.
func (b *Bravo) Inner() *RWSem { return b.inner }

// Engine exposes the embedded biasing engine. Diagnostic.
func (b *Bravo) Engine() *bias.Engine { return &b.eng }

// Biased reports whether reader bias is enabled. Diagnostic.
func (b *Bravo) Biased() bool { return b.eng.Enabled() }

// DownRead acquires read permission for t, preferring the table fast path
// through t's reader handle (cached slot, no rehash in steady state).
func (b *Bravo) DownRead(t *Task) {
	if _, ok := b.eng.TryFastH(&t.r); ok {
		return
	}
	b.inner.DownRead(t.ID)
	b.eng.SlowLockedH(&t.r)
	b.eng.MaybeEnable()
}

// TryDownRead attempts a non-blocking read acquisition: fast path first,
// then the underlying try-lock, which may set bias on success (§3).
func (b *Bravo) TryDownRead(t *Task) bool {
	if _, ok := b.eng.TryFastH(&t.r); ok {
		return true
	}
	if !b.inner.TryDownRead(t.ID) {
		return false
	}
	b.eng.SlowLockedH(&t.r)
	b.eng.MaybeEnable()
	return true
}

// UpRead releases read permission for t: fast-path acquisitions clear their
// recorded slot, slow-path acquisitions release the underlying semaphore.
// An unbalanced release detectable from the task's held-slot record panics.
func (b *Bravo) UpRead(t *Task) {
	if b.eng.ReleaseFast(&t.r) {
		return
	}
	b.eng.SlowUnlockedH(&t.r)
	b.inner.UpRead(t.ID)
}

// DownWrite acquires write permission, revoking reader bias if set.
func (b *Bravo) DownWrite(t *Task) {
	b.inner.DownWrite(t.ID)
	b.eng.RevokeIfEnabled()
}

// TryDownWrite attempts a non-blocking write acquisition; on success with
// bias set, revocation must still be performed (§3).
func (b *Bravo) TryDownWrite(t *Task) bool {
	if !b.inner.TryDownWrite(t.ID) {
		return false
	}
	b.eng.RevokeIfEnabled()
	return true
}

// UpWrite releases write permission.
func (b *Bravo) UpWrite(t *Task) {
	b.inner.UpWrite(t.ID)
}
