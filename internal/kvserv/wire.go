// The wire front-end: the same engine and serving semantics as the HTTP
// handlers, over internal/wire's pipelined binary protocol. The point is
// lock amortization end to end — a client batches N keys into one MPUT/
// MGET frame, the server decodes it straight into the engine's MultiPut/
// MultiGet, and the engine's shard-grouping pass makes the whole network
// batch cost one write-lock acquisition (one bias revocation, one WAL
// group commit) per shard it touches. HTTP answers one op per round trip
// and spends its time in text parsing and header allocation; the wire path
// spends its time in the engine.
//
// Each connection is served by one goroutine holding one pinned
// rwl.Reader, the same contract the HTTP front-end gets from HTTP/1.x
// sequential request serving: requests on a connection are processed in
// arrival order (pipelining overlaps network and processing, not engine
// calls on one connection), and every read costs one cached-slot CAS.
// Responses are batched: the server writes into a buffered writer and
// flushes only when the decoder has no complete request frame left — a
// pipelined burst of N requests is answered with one (or few) TCP writes.
package kvserv

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"

	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/wire"
)

// ErrServerClosed is ServeWire's return after Close, mirroring
// http.ErrServerClosed.
var ErrServerClosed = errors.New("kvserv: server closed")

// ServeWire accepts wire-protocol connections on l until Close. It may
// run alongside Serve (the HTTP front-end) on a different listener; both
// serve the same engine with the same semantics. Like Serve, it always
// returns a non-nil error; after Close that error is ErrServerClosed.
func (s *Server) ServeWire(l net.Listener) error {
	s.wireMu.Lock()
	select {
	case <-s.done:
		s.wireMu.Unlock()
		l.Close()
		return ErrServerClosed
	default:
	}
	s.wireLns[l] = true
	s.wireMu.Unlock()

	for {
		nc, err := l.Accept()
		if err != nil {
			select {
			case <-s.done:
				return ErrServerClosed
			default:
				return err
			}
		}
		s.wireMu.Lock()
		select {
		case <-s.done:
			s.wireMu.Unlock()
			nc.Close()
			return ErrServerClosed
		default:
		}
		s.wireConns[nc] = true
		s.wg.Add(1)
		s.wireMu.Unlock()
		go s.serveWireConn(nc)
	}
}

// serveWireConn runs one connection: decode request frames, serve each
// through the engine, batch responses until the request backlog drains.
// A protocol error (corrupt frame, undecodable header) closes the
// connection — frame boundaries are gone, nothing more can be answered.
func (s *Server) serveWireConn(nc net.Conn) {
	defer s.wg.Done()
	defer func() {
		nc.Close()
		s.wireMu.Lock()
		delete(s.wireConns, nc)
		s.wireMu.Unlock()
	}()

	// The connection's pinned reader handle: every GET/MGET on this
	// connection reads through it, one cached-slot CAS per acquisition.
	reader := rwl.NewReader()
	dec := wire.NewStreamDecoder(nc, wire.DefaultMaxFrame)
	bw := bufio.NewWriterSize(nc, 64<<10)
	scratch := newWireScratch(s.numWireShards())
	var out []byte // response encode scratch, reused across requests

	for {
		payload, err := dec.Next()
		if err != nil {
			// Cut stream: EOF, deadline (Close's drain), or corruption.
			// Whatever was answered is already flushed or about to be.
			bw.Flush()
			return
		}
		req, ok := wire.DecodeRequest(payload)
		var resp wire.Response
		if ok {
			resp = s.serveWireRequest(reader, &req, scratch)
		} else if op, id, headerOK := wireHeader(payload); headerOK {
			// The frame's envelope was sound and its header parsed — the
			// client can be told which request was malformed, and the
			// connection survives (frame boundaries are intact).
			resp = wire.Response{Op: op, ID: id, Status: wire.StatusBadRequest, Msg: "malformed request body"}
		} else {
			// Not even a header: answer nothing (no id to echo) and close.
			bw.Flush()
			return
		}
		out = wire.AppendResponse(out[:0], &resp)
		if _, err := bw.Write(out); err != nil {
			return
		}
		// Flush when no complete request frame is buffered: a pipelined
		// burst is answered in one write, a lone request immediately.
		if !dec.HasFrame() {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// wireHeader leniently parses just a request's version/op/id prefix so a
// malformed-body frame can still be answered by id.
func wireHeader(p []byte) (wire.Op, uint64, bool) {
	if len(p) < 11 || p[0] != wire.Version {
		return 0, 0, false
	}
	return wire.Op(p[1]), binary.LittleEndian.Uint64(p[3:]), true
}

// wireScratch is a connection's reusable serving memory. Responses alias
// it, which is safe because serveWireConn encodes each response into the
// output buffer before decoding the next request — the scratch is never
// live across two requests. It exists because the wire path's whole point
// is being cheaper than HTTP: without it every GET paid a value-copy
// allocation and every durable write a map plus slice for its commit LSNs.
type wireScratch struct {
	val  []byte          // GET value buffer, grown to the largest value served
	vals [][]byte        // MGET result slice (the values are fresh copies)
	lsns []wire.ShardLSN // commit-LSN stamp under construction
	seen []bool          // per-shard dedup for lsns, cleared after each use
	doc  []byte          // STATS JSON document buffer
}

func newWireScratch(numShards int) *wireScratch {
	return &wireScratch{seen: make([]bool, numShards)}
}

// numWireShards sizes a connection's scratch: the engine's shard count, or
// in cluster mode the global token namespace (partitions × shards).
func (s *Server) numWireShards() int {
	if s.clu != nil {
		return s.clu.NumPartitions() * s.clu.ShardsPerPartition()
	}
	return s.engine.NumShards()
}

// serveWireRequest serves one decoded request through the engine: the wire
// counterpart of the HTTP handler table, same statuses, same caps, same
// read-your-writes semantics. The response may alias sc; encode it before
// the next call.
func (s *Server) serveWireRequest(reader *rwl.Reader, req *wire.Request, sc *wireScratch) wire.Response {
	if s.clu != nil {
		return s.serveClusterWireRequest(reader, req, sc)
	}
	resp := wire.Response{Op: req.Op, ID: req.ID}
	switch req.Op {
	case wire.OpGet:
		if !s.wireMinLSN(&resp, req.MinLSN, req.Key) {
			return resp
		}
		v, ok := s.engine.GetIntoH(reader, req.Key, sc.val[:0])
		if !ok {
			resp.Status = wire.StatusNotFound
			return resp
		}
		sc.val = v
		resp.Value = v

	case wire.OpMGet:
		if !s.wireMinLSN(&resp, req.MinLSN, req.Keys...) {
			return resp
		}
		sc.vals = s.engine.MultiGetIntoH(reader, req.Keys, sc.vals)
		resp.Values = sc.vals

	case wire.OpPut:
		if !s.wireWritable(&resp) {
			return resp
		}
		if len(req.Value) > MaxValueBytes {
			resp.Status = wire.StatusTooLarge
			resp.Msg = fmt.Sprintf("value exceeds %d bytes", MaxValueBytes)
			return resp
		}
		if req.Async {
			if req.TTL > 0 {
				resp.Status = wire.StatusBadRequest
				resp.Msg = "ttl and async are exclusive: the queue applies without TTL"
				return resp
			}
			// PutAsync keeps the value past the call; the decode buffer is
			// the connection's, so detach.
			s.engine.PutAsync(req.Key, append([]byte(nil), req.Value...))
			return resp // no LSNs: the write has not applied yet
		}
		if req.TTL > 0 {
			s.engine.PutTTL(req.Key, req.Value, req.TTL)
		} else {
			s.engine.Put(req.Key, req.Value)
		}
		resp.LSNs = s.wireCommitLSNs(sc, req.Key)

	case wire.OpDelete:
		if !s.wireWritable(&resp) {
			return resp
		}
		ok := s.engine.Delete(req.Key)
		// Even a miss appended a record (the delete is logged regardless),
		// so the token is stamped on both outcomes.
		resp.LSNs = s.wireCommitLSNs(sc, req.Key)
		if !ok {
			resp.Status = wire.StatusNotFound
		}

	case wire.OpMPut:
		if !s.wireWritable(&resp) {
			return resp
		}
		for i, v := range req.Values {
			if len(v) > MaxValueBytes {
				resp.Status = wire.StatusTooLarge
				resp.Msg = fmt.Sprintf("entry %d: value exceeds %d bytes", i, MaxValueBytes)
				return resp
			}
		}
		if req.TTL > 0 {
			s.engine.MultiPutTTL(req.Keys, req.Values, req.TTL)
		} else {
			s.engine.MultiPut(req.Keys, req.Values)
		}
		resp.Applied = uint32(len(req.Keys))
		resp.LSNs = s.wireCommitLSNs(sc, req.Keys...)

	case wire.OpMDelete:
		if !s.wireWritable(&resp) {
			return resp
		}
		resp.Applied = uint32(s.engine.MultiDelete(req.Keys))
		resp.LSNs = s.wireCommitLSNs(sc, req.Keys...)

	case wire.OpCas:
		if !s.wireWritable(&resp) {
			return resp
		}
		if len(req.Old) > MaxValueBytes || len(req.New) > MaxValueBytes {
			resp.Status = wire.StatusTooLarge
			resp.Msg = fmt.Sprintf("value exceeds %d bytes", MaxValueBytes)
			return resp
		}
		swapped, err := s.engine.CompareAndSwap(req.Key, req.Old, req.New)
		if err != nil {
			resp.Status = wire.StatusBadRequest
			resp.Msg = err.Error()
			return resp
		}
		resp.Swapped = swapped
		resp.LSNs = s.wireCommitLSNs(sc, req.Key)

	case wire.OpTxn:
		if !s.wireWritable(&resp) {
			return resp
		}
		conds := make([]txnCond, len(req.Conds))
		for i, c := range req.Conds {
			if len(c.Value) > MaxValueBytes {
				resp.Status = wire.StatusTooLarge
				resp.Msg = fmt.Sprintf("condition %d: value exceeds %d bytes", i, MaxValueBytes)
				return resp
			}
			conds[i] = txnCond{Key: c.Key, Value: c.Value}
		}
		ops := make([]txnWireOp, len(req.TxnOps))
		for i, o := range req.TxnOps {
			if len(o.Value) > MaxValueBytes {
				resp.Status = wire.StatusTooLarge
				resp.Msg = fmt.Sprintf("op %d: value exceeds %d bytes", i, MaxValueBytes)
				return resp
			}
			ops[i] = txnWireOp{del: o.Del, key: o.Key, val: o.Value, ttl: o.TTL}
		}
		committed, mismatch, err := runConditionalTxn(s.engine, conds, ops)
		if err != nil {
			resp.Status = wire.StatusBadRequest
			resp.Msg = err.Error()
			return resp
		}
		resp.Committed = committed
		if !committed {
			resp.Mismatch = mismatch
			return resp
		}
		opKeys := make([]uint64, len(req.TxnOps))
		for i, o := range req.TxnOps {
			opKeys[i] = o.Key
		}
		resp.LSNs = s.wireCommitLSNs(sc, opKeys...)

	case wire.OpFlush:
		if !s.wireWritable(&resp) {
			return resp
		}
		resp.Applied = uint32(s.engine.Flush())

	case wire.OpStats:
		// Encode into the connection's document buffer: steady-state STATS
		// polling reuses one allocation instead of re-marshaling ~5KB per
		// request.
		buf := bytes.NewBuffer(sc.doc[:0])
		if err := json.NewEncoder(buf).Encode(s.buildStats()); err != nil {
			// Stats marshaling cannot fail on the types involved; surfacing
			// it beats hiding it.
			fmt.Fprintf(os.Stderr, "kvserv: stats marshal: %v\n", err)
			resp.Status = wire.StatusBadRequest
			resp.Msg = "stats marshal failed"
			return resp
		}
		sc.doc = buf.Bytes()
		// Trim the Encoder's trailing newline: STATS carries the document,
		// not a stream line.
		resp.Stats = sc.doc[:len(sc.doc)-1]

	default:
		resp.Status = wire.StatusUnsupported
		resp.Msg = "unknown op"
	}
	return resp
}

// wireWritable rejects writes on a follower, mirroring handleReadOnly.
func (s *Server) wireWritable(resp *wire.Response) bool {
	if s.follower == nil {
		return true
	}
	resp.Status = wire.StatusReadOnly
	resp.Msg = fmt.Sprintf("read-only follower: write to the primary at %s", s.follower.Primary())
	return false
}

// wireMinLSN enforces a read's MinLSN token, mirroring honorMinLSN.
func (s *Server) wireMinLSN(resp *wire.Response, lsn uint64, keys ...uint64) bool {
	merr := s.checkMinLSN(lsn, keys)
	if merr == nil {
		return true
	}
	if merr.Conflict {
		resp.Status = wire.StatusConflict
	} else {
		resp.Status = wire.StatusBadRequest
	}
	resp.Msg = merr.Msg
	return false
}

// wireCommitLSNs reads the commit LSN of every shard the write's keys
// touched — the binary X-Commit-Shard/X-Commit-Lsn. Read after the write
// applied, so each is at least the write's own record; volatile engines
// stamp nothing.
func (s *Server) wireCommitLSNs(sc *wireScratch, keys ...uint64) []wire.ShardLSN {
	if !s.engine.Durable() || len(keys) == 0 {
		return nil
	}
	lsns := sc.lsns[:0]
	for _, k := range keys {
		sh := uint32(s.engine.ShardOf(k))
		if sc.seen[sh] {
			continue
		}
		sc.seen[sh] = true
		lsns = append(lsns, wire.ShardLSN{Shard: sh, LSN: s.engine.ShardLSN(int(sh))})
	}
	// Reset the dedup marks by walking what was set, not the whole array.
	for _, l := range lsns {
		sc.seen[l.Shard] = false
	}
	sc.lsns = lsns
	return lsns
}
