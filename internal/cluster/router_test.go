package cluster

// Routing certification: the router is the cluster's correctness
// foundation — a key that routes to two different partitions is two
// divergent histories — so its properties are checked directly. Totality
// and determinism (every key maps to exactly one partition, the same one
// on every call and under membership reordering), the rendezvous rebalance
// bound (a join moves at most ~1/N of the keyspace, all of it to the
// joiner; a leave moves exactly the departed member's keys), and Split's
// exact partition of the index space.

import (
	"testing"

	"github.com/bravolock/bravo/internal/xrand"
)

func routerFor(t *testing.T, ids []uint64) *Router {
	t.Helper()
	r, err := NewRouter(ids)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRouterRejectsBadMembership(t *testing.T) {
	if _, err := NewRouter(nil); err == nil {
		t.Fatal("empty membership must be rejected")
	}
	if _, err := NewRouter([]uint64{3, 7, 3}); err == nil {
		t.Fatal("duplicate IDs must be rejected")
	}
}

// TestRouterTotalAndDeterministic: every key owns exactly one in-range
// partition, stable across calls, and ownership follows the ID — not the
// slice position — under membership permutations.
func TestRouterTotalAndDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		ids  []uint64
		perm []uint64
	}{
		{"single", []uint64{0}, []uint64{0}},
		{"pair", []uint64{0, 1}, []uint64{1, 0}},
		{"dense", []uint64{0, 1, 2, 3, 4}, []uint64{4, 2, 0, 3, 1}},
		{"sparse", []uint64{11, 1 << 40, 7, 0xDEAD}, []uint64{7, 0xDEAD, 11, 1 << 40}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := routerFor(t, tc.ids)
			p := routerFor(t, tc.perm)
			rng := xrand.NewXorShift64(0x0707)
			for i := 0; i < 4000; i++ {
				k := rng.Next()
				pi := r.Partition(k)
				if pi < 0 || pi >= len(tc.ids) {
					t.Fatalf("Partition(%d) = %d, out of range", k, pi)
				}
				if again := r.Partition(k); again != pi {
					t.Fatalf("Partition(%d) unstable: %d then %d", k, pi, again)
				}
				if got, want := tc.perm[p.Partition(k)], tc.ids[pi]; got != want {
					t.Fatalf("key %d owned by ID %d, but %d under permuted membership", k, want, got)
				}
			}
		})
	}
}

// TestRouterRebalanceBound: growing the membership from N to N+1 moves
// only keys that land on the joiner, and about 1/(N+1) of the keyspace;
// shrinking moves exactly the departed member's keys. This is the
// rendezvous minimal-disruption property a failover-heavy cluster leans
// on: membership churn never reshuffles keys between surviving members.
func TestRouterRebalanceBound(t *testing.T) {
	const keys = 20000
	for _, n := range []int{1, 2, 4, 8} {
		ids := make([]uint64, n+1)
		for i := range ids {
			ids[i] = uint64(i)
		}
		small := routerFor(t, ids[:n])
		big := routerFor(t, ids)
		rng := xrand.NewXorShift64(uint64(0xBA1A + n))
		moved := 0
		for i := 0; i < keys; i++ {
			k := rng.Next()
			before, after := small.Partition(k), big.Partition(k)
			if ids[before] == ids[after] {
				continue
			}
			moved++
			if ids[after] != uint64(n) {
				t.Fatalf("n=%d: key %d moved %d→%d, not to the joiner", n, k, ids[before], ids[after])
			}
		}
		// Expected moved fraction is 1/(n+1); allow generous sampling slack
		// but fail on anything structurally wrong (2× the expectation).
		if limit := 2 * keys / (n + 1); moved > limit {
			t.Fatalf("n=%d→%d: %d of %d keys moved, bound %d", n, n+1, moved, keys, limit)
		}
		if moved == 0 {
			t.Fatalf("n=%d→%d: no key moved to the joiner (dead member)", n, n+1)
		}
	}
}

func TestRouterSplitPartitionsIndexSpace(t *testing.T) {
	r := routerFor(t, []uint64{0, 1, 2})
	rng := xrand.NewXorShift64(0x5111)
	keys := make([]uint64, 257)
	for i := range keys {
		keys[i] = rng.Next()
	}
	groups := r.Split(keys)
	if len(groups) != 3 {
		t.Fatalf("Split returned %d groups, want 3", len(groups))
	}
	seen := make([]bool, len(keys))
	for p, group := range groups {
		for _, i := range group {
			if seen[i] {
				t.Fatalf("index %d appears in two groups", i)
			}
			seen[i] = true
			if r.Partition(keys[i]) != p {
				t.Fatalf("index %d grouped under %d, owned by %d", i, p, r.Partition(keys[i]))
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d missing from every group", i)
		}
	}
}

// FuzzClusterRoute drives the routing invariants over fuzzer-chosen keys
// and memberships: in-range and deterministic (totality), position-free
// under permutation, and minimally disruptive — removing a member the key
// does not own never changes the key's owner.
func FuzzClusterRoute(f *testing.F) {
	f.Add(uint64(42), uint8(3), uint64(0xF00D))
	f.Add(uint64(0), uint8(1), uint64(1))
	f.Add(^uint64(0), uint8(16), uint64(0xD1CEB))
	f.Fuzz(func(t *testing.T, key uint64, n uint8, seed uint64) {
		size := int(n%16) + 1
		rng := xrand.NewXorShift64(seed | 1)
		ids := make([]uint64, 0, size)
		used := map[uint64]bool{}
		for len(ids) < size {
			id := rng.Next()
			if !used[id] {
				used[id] = true
				ids = append(ids, id)
			}
		}
		r, err := NewRouter(ids)
		if err != nil {
			t.Fatal(err)
		}
		pi := r.Partition(key)
		if pi < 0 || pi >= size {
			t.Fatalf("Partition(%d) = %d with %d members", key, pi, size)
		}
		if again := r.Partition(key); again != pi {
			t.Fatalf("Partition(%d) unstable: %d then %d", key, pi, again)
		}
		owner := ids[pi]

		// Reverse the membership: same owning ID.
		rev := make([]uint64, size)
		for i, id := range ids {
			rev[size-1-i] = id
		}
		rr, err := NewRouter(rev)
		if err != nil {
			t.Fatal(err)
		}
		if got := rev[rr.Partition(key)]; got != owner {
			t.Fatalf("owner %d became %d under reversed membership", owner, got)
		}

		// Remove one non-owner: the key must not move.
		if size > 1 {
			victim := (pi + 1 + int(rng.Intn(uint64(size-1)))) % size
			if ids[victim] == owner {
				t.Fatalf("victim selection picked the owner")
			}
			left := make([]uint64, 0, size-1)
			for i, id := range ids {
				if i != victim {
					left = append(left, id)
				}
			}
			lr, err := NewRouter(left)
			if err != nil {
				t.Fatal(err)
			}
			if got := left[lr.Partition(key)]; got != owner {
				t.Fatalf("removing non-owner %d moved key %d: %d → %d", ids[victim], key, owner, got)
			}
		}
	})
}
