package kvs

import (
	"github.com/bravolock/bravo/internal/rwl"
)

// HashCache is the persistent-cache hash table of rocksdb's
// hash_table_bench (§5.6): "a central shared hash table ... protected by a
// reader-writer lock", stressed by one inserter thread, one eraser thread
// and T lookup threads.
type HashCache struct {
	lock rwl.RWLock
	data map[uint64]*CacheEntry
}

// CacheEntry is one cached block.
type CacheEntry struct {
	Key  uint64
	Data []byte
}

// NewHashCache returns an empty cache guarded by a lock from mkLock.
func NewHashCache(mkLock rwl.Factory) *HashCache {
	return &HashCache{lock: mkLock(), data: make(map[uint64]*CacheEntry)}
}

// Populate pre-fills the cache with n entries (the benchmark pre-populates
// before the measurement interval).
func (c *HashCache) Populate(n int, blockSize int) {
	c.lock.Lock()
	for i := 0; i < n; i++ {
		c.data[uint64(i)] = &CacheEntry{Key: uint64(i), Data: make([]byte, blockSize)}
	}
	c.lock.Unlock()
}

// Lookup reads an entry under the read lock.
func (c *HashCache) Lookup(key uint64) (*CacheEntry, bool) {
	tok := c.lock.RLock()
	e, ok := c.data[key]
	c.lock.RUnlock(tok)
	return e, ok
}

// Insert adds an entry under the write lock.
func (c *HashCache) Insert(e *CacheEntry) {
	c.lock.Lock()
	c.data[e.Key] = e
	c.lock.Unlock()
}

// Erase removes an entry under the write lock, reporting whether it existed.
func (c *HashCache) Erase(key uint64) bool {
	c.lock.Lock()
	_, ok := c.data[key]
	if ok {
		delete(c.data, key)
	}
	c.lock.Unlock()
	return ok
}

// Len returns the entry count under the read lock.
func (c *HashCache) Len() int {
	tok := c.lock.RLock()
	n := len(c.data)
	c.lock.RUnlock(tok)
	return n
}
