package kvs

import (
	"bytes"
	"testing"

	"github.com/bravolock/bravo/internal/rwl"
)

// fuzzReader is the pinned handle identity the fuzz driver's handle-path
// reads share; handle reuse (not churn) is the production pattern.
var fuzzReader = rwl.NewReader()

// FuzzSeqRead fuzzes the optimistic read path's one soundness claim: a read
// returns a value that was actually stored for that key at some quiescent
// instant inside the read's window — never a splice, never a resurrection.
//
// The schedule bytes drive a single-goroutine interpreter over a tiny key
// space: puts and deletes of fuzzer-chosen sizes, interleaved with reads
// whose copy→validate window is invaded deterministically through
// seqReadHook (the hook re-enters Put/Delete mid-read; the optimistic
// section holds no locks, so that is exactly a cross-goroutine writer,
// minus the nondeterminism). Because the driver knows every state the key
// passed through during the window, the check is exact linearizability for
// the read, not a statistical smell test: a hit must equal one of the
// window's present states, a miss requires one of them to be absent.
func FuzzSeqRead(f *testing.F) {
	// One seed per interesting shape: plain read, writer landing once
	// mid-read (retry then validate), writer landing every attempt
	// (fallback), delete mid-read, handle and MultiGet variants, size
	// churn that forces cell regrow, and an attempt-budget change.
	f.Add([]byte{0, 1, 8, 3, 1, 0})                                  // put then clean read
	f.Add([]byte{0, 1, 8, 3, 1, 1, 12})                              // writer fires once mid-read
	f.Add([]byte{0, 1, 8, 3, 1, 5, 20, 3, 1, 5, 9})                  // writer fires every attempt: fallback
	f.Add([]byte{0, 1, 8, 3, 1, 2})                                  // delete lands mid-read
	f.Add([]byte{0, 2, 30, 3, 2, 9, 3, 2, 17})                       // handle + MultiGet readers
	f.Add([]byte{0, 1, 60, 0, 1, 2, 3, 1, 1, 40, 0, 1, 63, 3, 1, 0}) // shrink/regrow churn
	f.Add([]byte{2, 3, 0, 1, 8, 3, 1, 5, 7, 1, 1, 3, 1, 2})          // attempts=4, storms, delete
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		s, err := NewSharded(2, mkStd)
		if err != nil {
			t.Fatal(err)
		}
		defer seqReadHook.Store((*func(uint64))(nil))
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		var ctr byte
		mkv := func() []byte {
			ctr++
			v := make([]byte, int(next())%64)
			for i := range v {
				v[i] = ctr ^ byte(i*31)
			}
			return v
		}
		cur := map[uint64][]byte{} // the model: key -> live value, absent = miss
		for pos < len(data) {
			op := next()
			key := uint64(next() % 4)
			switch op % 4 {
			case 0: // put
				v := mkv()
				s.Put(key, v)
				cur[key] = v
			case 1: // delete
				s.Delete(key)
				delete(cur, key)
			case 2: // retune the attempt budget mid-schedule
				s.SetSeqReadAttempts(int(key) + 1)
			case 3: // read, with a scheduled invader in the seqlock window
				mode := next()
				window := [][]byte{cur[key]} // states the key passes through; nil = absent
				every := mode&4 != 0         // invade every attempt (forces fallback) or just the first
				fired := false
				hook := func(k uint64) {
					if k != key || (fired && !every) {
						return
					}
					fired = true
					switch mode % 3 {
					case 1:
						v := mkv()
						s.Put(key, v)
						cur[key] = v
						window = append(window, v)
					case 2:
						s.Delete(key)
						delete(cur, key)
						window = append(window, nil)
					}
				}
				seqReadHook.Store(&hook)
				var v []byte
				var ok bool
				switch {
				case mode&8 != 0:
					vals := s.MultiGet([]uint64{key})
					v, ok = vals[0], vals[0] != nil
				case mode&16 != 0:
					v, ok = s.GetH(fuzzReader, key)
				default:
					v, ok = s.Get(key)
				}
				seqReadHook.Store(nil)
				if ok {
					legal := false
					for _, w := range window {
						if w != nil && bytes.Equal(w, v) {
							legal = true
							break
						}
					}
					if !legal {
						t.Fatalf("read of key %d returned %x, which was never a stored value during the read window %x", key, v, window)
					}
				} else {
					legal := false
					for _, w := range window {
						if w == nil {
							legal = true
							break
						}
					}
					if !legal {
						t.Fatalf("read of key %d missed, but the key was present through the whole window %x", key, window)
					}
				}
			}
		}
	})
}
