package ptl

import (
	"testing"

	"github.com/bravolock/bravo/internal/lockcheck"
	"github.com/bravolock/bravo/internal/rwl"
)

func mk() rwl.RWLock { return New() }

func TestExclusion(t *testing.T) {
	lockcheck.Exclusion(t, mk, 4, 2, 2000)
}

func TestExclusionWriteHeavy(t *testing.T) {
	lockcheck.Exclusion(t, mk, 2, 4, 1500)
}

func TestTryExclusion(t *testing.T) {
	lockcheck.TryExclusion(t, mk, 6, 1500)
}

func TestReadersConcurrent(t *testing.T) {
	lockcheck.ReadersConcurrent(t, mk())
}

func TestWriterExcludesReaders(t *testing.T) {
	lockcheck.WriterExcludesReaders(t, mk())
}

func TestStrongReaderPreference(t *testing.T) {
	// The paper (§5): "the default pthread read-write lock implementation
	// ... provides strong reader preference, and admits indefinite writer
	// starvation". New readers must be admitted past a waiting writer.
	lockcheck.WaitingWriterStarvedByReaders(t, mk())
}

func TestTryRLockDuringWrite(t *testing.T) {
	l := New()
	l.Lock()
	if _, ok := l.TryRLock(); ok {
		t.Fatal("TryRLock succeeded while writer held")
	}
	l.Unlock()
	tok, ok := l.TryRLock()
	if !ok {
		t.Fatal("TryRLock failed on free lock")
	}
	if l.TryLock() {
		t.Fatal("TryLock succeeded while reader held")
	}
	l.RUnlock(tok)
}

func TestWriterWakesAfterLastReader(t *testing.T) {
	l := New()
	t1 := l.RLock()
	t2 := l.RLock()
	got := make(chan struct{})
	go func() {
		l.Lock()
		close(got)
		l.Unlock()
	}()
	l.RUnlock(t1)
	select {
	case <-got:
		t.Fatal("writer admitted while one reader remained")
	default:
	}
	l.RUnlock(t2)
	lockcheck.Eventually(t, func() bool {
		select {
		case <-got:
			return true
		default:
			return false
		}
	}, "writer not admitted after last reader departed")
}
