package kvs

// Tests for the engine's replication surface: LSN stamping and recovery,
// the lockless log reader (including the reader-vs-appender torn-tail race
// the stream depends on), snapshot frames, and record application.

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/frame"
)

// decodeAll decodes every frame in chunk, failing the test on corruption
// or leftover bytes, and asserts LSNs continue from *next.
func decodeAll(t *testing.T, chunk []byte, next *uint64) []ReplRecord {
	t.Helper()
	var out []ReplRecord
	for len(chunk) > 0 {
		rec, n, err := DecodeReplFrame(chunk)
		if err != nil {
			t.Fatalf("DecodeReplFrame: %v", err)
		}
		if n == 0 {
			t.Fatalf("ReplRead returned a torn frame (%d bytes left)", len(chunk))
		}
		if rec.LSN != *next {
			t.Fatalf("frame LSN %d, want %d", rec.LSN, *next)
		}
		*next++
		out = append(out, rec)
		chunk = chunk[n:]
	}
	return out
}

// applyAll feeds records into a volatile follower engine.
func applyAll(t *testing.T, f *Sharded, shard int, recs []ReplRecord) {
	t.Helper()
	for _, rec := range recs {
		if err := f.ApplyReplRecord(shard, rec); err != nil {
			t.Fatalf("ApplyReplRecord: %v", err)
		}
	}
}

func TestReplReadShipsTheLogVerbatim(t *testing.T) {
	s := openTestKV(t, t.TempDir(), 1, SyncNone)
	defer s.Close()
	s.Put(1, []byte("one"))
	s.PutTTL(2, []byte("soon"), time.Hour)
	s.MultiPut([]uint64{3, 4}, [][]byte{[]byte("three"), []byte("four")})
	s.Delete(1)

	f, err := NewSharded(1, mkStd)
	if err != nil {
		t.Fatal(err)
	}
	var cur ReplCursor
	chunk, err := s.ReplRead(0, &cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	next := uint64(1)
	recs := decodeAll(t, chunk, &next)
	if len(recs) != 4 { // Put, PutTTL, MultiPut group, Delete
		t.Fatalf("shipped %d records, want 4", len(recs))
	}
	if got := s.ShardLSN(0); got != 4 {
		t.Fatalf("ShardLSN = %d, want 4", got)
	}
	applyAll(t, f, 0, recs)
	if !mapsEqualKV(f.Snapshot(), s.Snapshot()) {
		t.Fatalf("follower state %v != primary %v", f.Snapshot(), s.Snapshot())
	}
	// TTL shipped as remaining time: still visible on the follower.
	if _, ok := f.Get(2); !ok {
		t.Fatal("TTL key lost in transit")
	}
	// Caught up: empty chunk, nil error, cursor stays.
	chunk, err = s.ReplRead(0, &cur, 0)
	if err != nil || len(chunk) != 0 {
		t.Fatalf("caught-up ReplRead = %d bytes, %v", len(chunk), err)
	}
	// New writes appear on the next call, resuming from the cursor.
	s.Put(9, []byte("nine"))
	chunk, err = s.ReplRead(0, &cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if recs := decodeAll(t, chunk, &next); len(recs) != 1 {
		t.Fatalf("tail read shipped %d records, want 1", len(recs))
	}
}

func mapsEqualKV(a, b map[uint64][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !bytes.Equal(b[k], v) {
			return false
		}
	}
	return true
}

// TestReplSnapshotNeededAfterCheckpoint: once a checkpoint truncates the
// log, a cursor behind it must be told to resync, and the snapshot frame
// plus the remaining stream must reconstruct the exact primary state.
func TestReplSnapshotNeededAfterCheckpoint(t *testing.T) {
	s := openTestKV(t, t.TempDir(), 1, SyncNone)
	defer s.Close()
	for k := uint64(0); k < 32; k++ {
		s.Put(k, EncodeValue(k))
	}
	s.Delete(31)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var cur ReplCursor
	if _, err := s.ReplRead(0, &cur, 0); err != ErrReplSnapshotNeeded {
		t.Fatalf("ReplRead from 1 after checkpoint: %v, want ErrReplSnapshotNeeded", err)
	}
	snapFrame, lsn, err := s.ReplSnapshotFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 33 {
		t.Fatalf("snapshot frame at LSN %d, want 33", lsn)
	}
	rec, n, err := DecodeReplFrame(snapFrame)
	if err != nil || n != len(snapFrame) {
		t.Fatalf("snapshot frame decode: n=%d err=%v", n, err)
	}
	if !rec.Snapshot || rec.LSN != lsn {
		t.Fatalf("snapshot frame decoded as %+v", rec)
	}
	f, err := NewSharded(1, mkStd)
	if err != nil {
		t.Fatal(err)
	}
	applyAll(t, f, 0, []ReplRecord{rec})
	if !mapsEqualKV(f.Snapshot(), s.Snapshot()) {
		t.Fatal("snapshot frame did not reconstruct the primary state")
	}
	// Resume past the snapshot: only post-checkpoint records ship.
	s.Put(100, []byte("after"))
	cur = ReplCursor{Next: lsn + 1}
	chunk, err := s.ReplRead(0, &cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	next := lsn + 1
	recs := decodeAll(t, chunk, &next)
	if len(recs) != 1 {
		t.Fatalf("post-snapshot stream shipped %d records, want 1", len(recs))
	}
	applyAll(t, f, 0, recs)
	if !mapsEqualKV(f.Snapshot(), s.Snapshot()) {
		t.Fatal("resumed stream diverged")
	}
}

// TestReplLSNSurvivesRecoveryAndCheckpoint: the LSN sequence continues
// across close/reopen and across checkpoint rotation — the resume token
// never resets.
func TestReplLSNSurvivesRecoveryAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openTestKV(t, dir, 2, SyncNone)
	for k := uint64(0); k < 16; k++ {
		s.Put(k, EncodeValue(k))
	}
	lsns := s.ReplLSNs()
	var total uint64
	for _, l := range lsns {
		total += l
	}
	if total != 16 {
		t.Fatalf("LSNs %v sum to %d, want 16 (one per record)", lsns, total)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Put(100, []byte("post-ckpt"))
	after := s.ReplLSNs()
	s.Close()

	r := openTestKV(t, dir, 2, SyncNone)
	defer r.Close()
	got := r.ReplLSNs()
	for i := range got {
		if got[i] != after[i] {
			t.Fatalf("shard %d recovered LSN %d, want %d", i, got[i], after[i])
		}
	}
	// The sequence continues, never restarts.
	r.Put(100, []byte("again"))
	sh := r.ShardOf(100)
	if r.ShardLSN(sh) != after[sh]+1 {
		t.Fatalf("post-recovery LSN %d, want %d", r.ShardLSN(sh), after[sh]+1)
	}
}

// TestReplReaderAppenderRace pins the torn-tail posture: a replication
// reader racing the appender (and a checkpoint) must never report engine
// corruption, never record a WAL error, and must ship every record exactly
// once in LSN order. Run under -race in CI.
func TestReplReaderAppenderRace(t *testing.T) {
	const nPuts = 1500
	s := openTestKV(t, t.TempDir(), 1, SyncNone)
	defer s.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := uint64(0); k < nPuts; k++ {
			s.Put(k%64, EncodeValue(k))
			if k == nPuts/2 {
				if err := s.Checkpoint(); err != nil {
					t.Errorf("mid-stream checkpoint: %v", err)
				}
			}
		}
	}()

	var cur ReplCursor
	shipped := 0
	deadline := time.Now().Add(30 * time.Second)
	for shipped < nPuts && time.Now().Before(deadline) {
		chunk, err := s.ReplRead(0, &cur, 64<<10)
		if err == ErrReplSnapshotNeeded {
			// The mid-stream checkpoint lapped us; a real follower
			// resyncs. Here we only count records from the new position.
			_, lsn, serr := s.ReplSnapshotFrame(0)
			if serr != nil {
				t.Fatal(serr)
			}
			shipped = int(lsn)
			cur = ReplCursor{Next: lsn + 1}
			continue
		}
		if err != nil {
			t.Fatalf("ReplRead under write load: %v", err)
		}
		for len(chunk) > 0 {
			rec, n, derr := DecodeReplFrame(chunk)
			if derr != nil {
				t.Fatalf("reader saw corruption in a live log: %v", derr)
			}
			if n == 0 {
				t.Fatal("ReplRead returned a torn frame")
			}
			if rec.LSN != uint64(shipped)+1 {
				t.Fatalf("shipped LSN %d after %d records", rec.LSN, shipped)
			}
			shipped++
			chunk = chunk[n:]
		}
	}
	wg.Wait()
	if shipped != nPuts {
		t.Fatalf("shipped %d records, want %d", shipped, nPuts)
	}
	// The decisive posture check: racing a reader against the appender
	// must not have been booked as a WAL failure.
	if err := s.WALError(); err != nil {
		t.Fatalf("replication reads surfaced as WAL corruption: %v", err)
	}
	if s.Stats().Total().WALErrors != 0 {
		t.Fatal("replication reads bumped the WAL error counter")
	}
}

// TestReplLegacyV1LogUpgrades: a pre-LSN (v1) log replays with synthesized
// LSNs, new records continue the sequence in v2, and a replication cursor
// pointed into the v1 region is sent to a snapshot resync (v1 frames are
// not shippable — they carry no LSN).
func TestReplLegacyV1LogUpgrades(t *testing.T) {
	dir := t.TempDir()
	// MANIFEST for a 1-shard layout, then a hand-built v1 log.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"version":1,"shards":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	v1rec := func(key uint64, val string) []byte {
		p := []byte{walVersion1}
		p = binary.LittleEndian.AppendUint32(p, 1)
		p = append(p, walOpPut)
		p = binary.LittleEndian.AppendUint64(p, key)
		p = binary.LittleEndian.AppendUint32(p, uint32(len(val)))
		p = append(p, val...)
		rec := make([]byte, walHeaderSize, walHeaderSize+len(p))
		binary.LittleEndian.PutUint32(rec, uint32(len(p)))
		binary.LittleEndian.PutUint32(rec[4:], frame.Checksum(p))
		return append(rec, p...)
	}
	wal := append(v1rec(1, "one"), v1rec(2, "two")...)
	if err := os.WriteFile(filepath.Join(dir, "shard-0000.wal"), wal, 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTestKV(t, dir, 1, SyncNone)
	defer s.Close()
	for k, v := range map[uint64]string{1: "one", 2: "two"} {
		if got, ok := s.Get(k); !ok || string(got) != v {
			t.Fatalf("v1 record %d = %q, %v after upgrade", k, got, ok)
		}
	}
	if got := s.ShardLSN(0); got != 2 {
		t.Fatalf("synthesized LSN = %d, want 2", got)
	}
	s.Put(3, []byte("three")) // v2 record at LSN 3
	if got := s.ShardLSN(0); got != 3 {
		t.Fatalf("post-upgrade LSN = %d, want 3", got)
	}
	var cur ReplCursor
	if _, err := s.ReplRead(0, &cur, 0); err != ErrReplSnapshotNeeded {
		t.Fatalf("cursor into the v1 region: %v, want ErrReplSnapshotNeeded", err)
	}
	// From the first v2 record, the stream works.
	cur = ReplCursor{Next: 3}
	chunk, err := s.ReplRead(0, &cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	next := uint64(3)
	if recs := decodeAll(t, chunk, &next); len(recs) != 1 {
		t.Fatalf("v2 tail shipped %d records, want 1", len(recs))
	}
}

// TestReplLegacySnapshotLoads: a v1 (BRVOSNP1) snapshot file loads as LSN
// 0 and the directory keeps working.
func TestReplLegacySnapshotLoads(t *testing.T) {
	dir := t.TempDir()
	s := openTestKV(t, dir, 1, SyncNone)
	s.Put(1, []byte("keep"))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Rewrite the snapshot in the v1 layout (no lsn field).
	data, err := os.ReadFile(s.snapPath(0))
	if err != nil {
		t.Fatal(err)
	}
	entries, lsn, err := loadSnapshot(data)
	if err != nil || lsn != 1 || len(entries) != 1 {
		t.Fatalf("v2 snapshot: entries=%d lsn=%d err=%v", len(entries), lsn, err)
	}
	var v1 []byte
	v1 = append(v1, snapMagicV1...)
	body := data[len(snapMagic)+8 : len(data)-4] // count + entries
	v1 = append(v1, body...)
	v1 = binary.LittleEndian.AppendUint32(v1, frame.Checksum(v1[len(snapMagicV1):]))
	entries, lsn, err = loadSnapshot(v1)
	if err != nil || lsn != 0 || len(entries) != 1 {
		t.Fatalf("v1 snapshot: entries=%d lsn=%d err=%v", len(entries), lsn, err)
	}
	if err := os.WriteFile(s.snapPath(0), v1, 0o644); err != nil {
		t.Fatal(err)
	}
	r := openTestKV(t, dir, 1, SyncNone)
	defer r.Close()
	if v, ok := r.Get(1); !ok || string(v) != "keep" {
		t.Fatalf("v1 snapshot recovery: Get(1) = %q, %v", v, ok)
	}
}

func TestApplyReplRecordPostures(t *testing.T) {
	f, err := NewSharded(2, mkStd)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot records replace, not merge.
	f.Put(999, []byte("stale")) // key in shard f.ShardOf(999)
	sh := f.ShardOf(999)
	err = f.ApplyReplRecord(sh, ReplRecord{LSN: 5, Snapshot: true, Entries: []ReplEntry{
		{Op: ReplPut, Key: 999, Value: []byte("fresh")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Get(999); string(v) != "fresh" {
		t.Fatalf("snapshot apply left %q", v)
	}
	// An empty snapshot record wipes the shard.
	if err := f.ApplyReplRecord(sh, ReplRecord{LSN: 6, Snapshot: true}); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Get(999); ok {
		t.Fatal("empty snapshot record did not clear the shard")
	}
	// Unknown ops are rejected before anything applies.
	err = f.ApplyReplRecord(0, ReplRecord{Entries: []ReplEntry{{Op: 42, Key: 1}}})
	if err == nil {
		t.Fatal("unknown op accepted")
	}
	if err := f.ApplyReplRecord(7, ReplRecord{}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	// Durable engines refuse: their WAL is the log of record.
	d := openTestKV(t, t.TempDir(), 1, SyncNone)
	defer d.Close()
	if err := d.ApplyReplRecord(0, ReplRecord{}); err == nil {
		t.Fatal("durable engine accepted a replicated record")
	}
}

func TestReplVolatileEngineRefuses(t *testing.T) {
	s, err := NewSharded(1, mkStd)
	if err != nil {
		t.Fatal(err)
	}
	var cur ReplCursor
	if _, err := s.ReplRead(0, &cur, 0); err == nil {
		t.Fatal("ReplRead on a volatile engine succeeded")
	}
	if _, _, err := s.ReplSnapshotFrame(0); err == nil {
		t.Fatal("ReplSnapshotFrame on a volatile engine succeeded")
	}
	if s.ShardLSN(0) != 0 || s.ReplLSNs() != nil {
		t.Fatal("volatile engine claims LSNs")
	}
}
