package kvs

import (
	"math"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/clock"
)

func TestShardedPutTTLVisibleUntilDeadline(t *testing.T) {
	s, _ := NewSharded(4, mkStd)
	s.PutTTL(1, EncodeValue(1), time.Hour)
	if _, ok := s.Get(1); !ok {
		t.Fatal("Get missed a TTL key an hour before its deadline")
	}
	if got := s.Stats().Total().TTLKeys; got != 1 {
		t.Fatalf("TTLKeys = %d, want 1", got)
	}
}

// TestShardedTTLExpiryExactlyAtDeadline pins the boundary with an absolute
// deadline: a key whose deadline is the current instant (or earlier) is
// expired — expiry is inclusive, now >= deadline.
func TestShardedTTLExpiryExactlyAtDeadline(t *testing.T) {
	s, _ := NewSharded(4, mkStd)
	s.putDeadline(1, EncodeValue(1), clock.Nanos())
	if _, ok := s.Get(1); ok {
		t.Fatal("Get returned a key whose deadline was exactly now")
	}
	total := s.Stats().Total()
	if total.Expired == 0 {
		t.Fatalf("Expired = 0 after a lazy-expired read")
	}
	if total.GetHits != 0 {
		t.Fatalf("GetHits = %d for an expired read, want 0", total.GetHits)
	}
	// One nanosecond before any plausible "now": expired. Far future: visible.
	s.putDeadline(2, EncodeValue(2), 1)
	if _, ok := s.Get(2); ok {
		t.Fatal("Get returned a long-expired key")
	}
	s.putDeadline(3, EncodeValue(3), clock.Nanos()+int64(time.Hour))
	if _, ok := s.Get(3); !ok {
		t.Fatal("Get missed a key expiring an hour from now")
	}
}

func TestShardedPutTTLNonPositiveIsBornExpired(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	s.PutTTL(9, EncodeValue(9), 0)
	if _, ok := s.Get(9); ok {
		t.Fatal("PutTTL(0) stored a visible key")
	}
	s.PutTTL(10, EncodeValue(10), -time.Second)
	if _, ok := s.Get(10); ok {
		t.Fatal("PutTTL(-1s) stored a visible key")
	}
}

// TestShardedPutTTLOverflowSaturates pins the overflow clamp: a TTL whose
// absolute deadline would exceed int64 nanoseconds means "effectively
// never", not a wrapped negative deadline that kills the key at birth.
func TestShardedPutTTLOverflowSaturates(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	s.PutTTL(1, EncodeValue(1), time.Duration(math.MaxInt64))
	if _, ok := s.Get(1); !ok {
		t.Fatal("a maximum-duration TTL expired the key at birth")
	}
	if got := s.Reap(0); got != 0 {
		t.Fatalf("Reap removed %d keys under a maximum-duration TTL", got)
	}
}

func TestShardedPlainPutClearsTTL(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	s.putDeadline(1, EncodeValue(1), clock.Nanos()) // expired residue
	s.Put(1, EncodeValue(2))                        // plain overwrite: TTL gone
	v, ok := s.Get(1)
	if !ok {
		t.Fatal("Get missed a plain-Put key that once carried a TTL")
	}
	if d, _ := DecodeValue(v); d != 2 {
		t.Fatalf("Get = %d, want 2", d)
	}
	if got := s.Stats().Total().TTLKeys; got != 0 {
		t.Fatalf("TTLKeys = %d after plain overwrite, want 0", got)
	}
}

func TestShardedDeleteOfExpiredReportsAbsent(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	s.putDeadline(1, EncodeValue(1), clock.Nanos())
	if s.Delete(1) {
		t.Fatal("Delete of an expired key reported present")
	}
	// The residue is gone: a reap finds nothing.
	if got := s.Reap(0); got != 0 {
		t.Fatalf("Reap after expired Delete removed %d, want 0", got)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after expired Delete, want 0", s.Len())
	}
}

func TestShardedMultiOpsSkipExpired(t *testing.T) {
	s, _ := NewSharded(4, mkStd)
	s.putDeadline(1, EncodeValue(1), clock.Nanos())
	s.Put(2, EncodeValue(2))
	got := s.MultiGet([]uint64{1, 2})
	if got[0] != nil {
		t.Fatalf("MultiGet returned an expired key: %v", got[0])
	}
	if d, _ := DecodeValue(got[1]); d != 2 {
		t.Fatalf("MultiGet[1] = %v", got[1])
	}
	if removed := s.MultiDelete([]uint64{1, 2}); removed != 1 {
		t.Fatalf("MultiDelete counted %d visible removals, want 1", removed)
	}
}

func TestShardedRangeSnapshotSkipExpired(t *testing.T) {
	s, _ := NewSharded(4, mkStd)
	s.Put(1, EncodeValue(1))
	s.putDeadline(2, EncodeValue(2), clock.Nanos())
	s.PutTTL(3, EncodeValue(3), time.Hour)
	visited := map[uint64]bool{}
	s.Range(func(k uint64, v []byte) bool {
		visited[k] = true
		return true
	})
	if len(visited) != 2 || visited[2] {
		t.Fatalf("Range visited %v, want {1, 3}", visited)
	}
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot has %d keys, want 2", len(snap))
	}
	if _, leaked := snap[2]; leaked {
		t.Fatal("Snapshot contains an expired key")
	}
}

func TestShardedReap(t *testing.T) {
	s, _ := NewSharded(8, mkStd)
	const n = 200
	for k := uint64(0); k < n; k++ {
		s.putDeadline(k, EncodeValue(k), clock.Nanos()) // all expired
	}
	s.PutTTL(1000, EncodeValue(1000), time.Hour) // alive TTL key
	s.Put(2000, EncodeValue(2000))               // no TTL
	reaped := 0
	for i := 0; i < 100 && reaped < n; i++ {
		reaped += s.Reap(64) // incremental: small budget, repeated calls
	}
	if reaped != n {
		t.Fatalf("Reap removed %d keys in total, want %d", reaped, n)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after reap, want 2", s.Len())
	}
	if _, ok := s.Get(1000); !ok {
		t.Fatal("Reap removed an unexpired TTL key")
	}
	if _, ok := s.Get(2000); !ok {
		t.Fatal("Reap removed a TTL-free key")
	}
	total := s.Stats().Total()
	if total.Reaped != n {
		t.Fatalf("Reaped counter = %d, want %d", total.Reaped, n)
	}
	if total.TTLKeys != 1 {
		t.Fatalf("TTLKeys = %d after reap, want 1", total.TTLKeys)
	}
}

// TestShardedReapVsLazyReadNoDoubleAccounting drives readers over an
// expired key while Reap removes it: the lazy read observes a miss, the
// reap removes exactly one entry, and neither path corrupts the other (a
// read racing the reap must not resurrect or double-delete).
func TestShardedReapVsLazyReadNoDoubleAccounting(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	s.putDeadline(1, EncodeValue(1), clock.Nanos())
	if _, ok := s.Get(1); ok { // lazy read sees the expiry first
		t.Fatal("lazy read returned an expired key")
	}
	if got := s.Reap(0); got != 1 {
		t.Fatalf("Reap removed %d, want 1 (lazy read must not have deleted)", got)
	}
	if got := s.Reap(0); got != 0 {
		t.Fatalf("second Reap removed %d, want 0", got)
	}
	total := s.Stats().Total()
	if total.Reaped != 1 {
		t.Fatalf("Reaped = %d, want exactly 1", total.Reaped)
	}
}

func TestShardedMultiPutTTL(t *testing.T) {
	s, _ := NewSharded(4, mkStd)
	keys := []uint64{1, 2, 3}
	vals := [][]byte{EncodeValue(1), EncodeValue(2), EncodeValue(3)}
	s.MultiPutTTL(keys, vals, time.Hour)
	if got := s.Stats().Total().TTLKeys; got != 3 {
		t.Fatalf("TTLKeys = %d after MultiPutTTL, want 3", got)
	}
	for _, k := range keys {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("Get(%d) missed an hour-TTL key", k)
		}
	}
}

func TestMemtablePutTTL(t *testing.T) {
	m, _ := NewMemtable(1, mkStd)
	m.PutTTL(1, EncodeValue(1), time.Hour)
	if _, ok := m.Get(1); !ok {
		t.Fatal("Memtable.Get missed a TTL key an hour before its deadline")
	}
	m.PutTTL(2, EncodeValue(2), 0) // born expired (inclusive deadline)
	if _, ok := m.Get(2); ok {
		t.Fatal("Memtable.Get returned a born-expired key")
	}
	m.Put(2, EncodeValue(3)) // plain Put clears the TTL
	if v, ok := m.Get(2); !ok {
		t.Fatal("Memtable.Get missed a plain-Put key that once carried a TTL")
	} else if d, _ := DecodeValue(v); d != 3 {
		t.Fatalf("Memtable.Get = %d, want 3", d)
	}
}
