// Package topo describes machine topologies.
//
// Several of the paper's locks are topology-sized: the Per-CPU (brlock-style)
// lock holds one sub-lock per logical CPU, and the cohort lock holds one
// reader indicator and one mutex cohort per NUMA node. The paper's testbeds
// are an Oracle X5-2 (2 sockets × 18 cores × 2 threads = 72 CPUs, user-space
// experiments) and an X5-4 (4 × 18 × 2 = 144 CPUs, kernel experiments).
// BRAVO itself is deliberately topology-oblivious; only its competitors and
// the coherence simulator consume this package.
package topo

import "runtime"

// Topology is a symmetric sockets × cores × SMT machine shape.
type Topology struct {
	Sockets        int // NUMA nodes
	CoresPerSocket int
	ThreadsPerCore int
}

// Reference topologies.
var (
	// X52 is the user-space evaluation machine (paper §5).
	X52 = Topology{Sockets: 2, CoresPerSocket: 18, ThreadsPerCore: 2}
	// X54 is the kernel evaluation machine (paper §6).
	X54 = Topology{Sockets: 4, CoresPerSocket: 18, ThreadsPerCore: 2}
)

// Host returns a single-socket topology matching the current GOMAXPROCS,
// for native runs that should size per-CPU structures to the actual machine.
func Host() Topology {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return Topology{Sockets: 1, CoresPerSocket: n, ThreadsPerCore: 1}
}

// NumCPUs returns the number of logical CPUs.
func (t Topology) NumCPUs() int {
	return t.Sockets * t.CoresPerSocket * t.ThreadsPerCore
}

// NumCores returns the number of physical cores.
func (t Topology) NumCores() int {
	return t.Sockets * t.CoresPerSocket
}

// SocketOf returns the NUMA node of a logical CPU. CPUs are numbered the way
// Linux numbers them on these machines: socket-major, then core, then SMT
// sibling — CPU c lives on socket c / (CoresPerSocket·ThreadsPerCore).
func (t Topology) SocketOf(cpu int) int {
	return (cpu / (t.CoresPerSocket * t.ThreadsPerCore)) % t.Sockets
}

// CoreOf returns the global physical-core index of a logical CPU.
func (t Topology) CoreOf(cpu int) int {
	return (cpu / t.ThreadsPerCore) % t.NumCores()
}

// CPUOf maps an arbitrary identity (e.g. a goroutine ID) to a logical CPU.
func (t Topology) CPUOf(id uint64) int {
	return int(id % uint64(t.NumCPUs()))
}

// Valid reports whether all dimensions are positive.
func (t Topology) Valid() bool {
	return t.Sockets > 0 && t.CoresPerSocket > 0 && t.ThreadsPerCore > 0
}
