package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/histogram"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/xrand"
)

// The shardedkv workload drives the Sharded KV engine with a configurable
// read/write mix and shard count, reporting throughput, read-latency
// percentiles, and — for BRAVO-wrapped substrates — the fast-path hit rate.
// It opens the scenario axis (sharding × substrate × mix) the single-stripe
// rocksdb workloads cannot: there, every reader hammers one lock; here the
// question is how far striping plus reader bias carries a KV front-end.

// ShardedKVKeys is the workload's keyspace (the paper's readwhilewriting
// uses --num=10000; a power of two keeps the modulo free).
const ShardedKVKeys = 1 << 14

// ShardedKVDefaultValueSize is the default value payload. Values are
// copied in and out under the shard lock, so the size sets the critical
// section length — the axis that separates engines once lock-path costs
// are equal.
const ShardedKVDefaultValueSize = 1024

// latencySampleMask subsamples read-latency measurement to one in 32
// operations so the clock reads do not dominate short critical sections.
const latencySampleMask = 31

// ShardedKVResult is one data point of the shardedkv workload, shaped for
// machine consumption (BENCH_shardedkv.json).
type ShardedKVResult struct {
	// Engine is "sharded" or "memtable" (the single-lock baseline).
	Engine string `json:"engine"`
	Lock   string `json:"lock"`
	Shards int    `json:"shards"`
	// Threads is the number of worker goroutines (each mixes reads and
	// writes per WriteRatio).
	Threads    int     `json:"threads"`
	WriteRatio float64 `json:"write_ratio"`
	ValueSize  int     `json:"value_size"`
	// Ops is the median total operation count per measurement interval.
	Ops float64 `json:"ops"`
	// ThroughputOpsPerSec is Ops normalized by the interval.
	ThroughputOpsPerSec float64 `json:"throughput_ops_per_sec"`
	// ReadP50Nanos / ReadP99Nanos are read-acquisition-to-return latency
	// percentile upper bounds from the log2 histogram (last run).
	ReadP50Nanos int64 `json:"read_p50_ns"`
	ReadP99Nanos int64 `json:"read_p99_ns"`
	// FastReadFraction is NFast/NReads from core.Stats for BRAVO locks
	// (last run); -1 when the substrate exposes no BRAVO counters.
	FastReadFraction float64 `json:"fast_read_fraction"`
}

// ShardedKVReport is the top-level BENCH_shardedkv.json document.
type ShardedKVReport struct {
	Benchmark string `json:"benchmark"`
	// Meta attributes the run: commit, CPU shape, timestamp.
	Meta       RunMeta           `json:"meta"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	IntervalMS int64             `json:"interval_ms"`
	Runs       int               `json:"runs"`
	Keys       int               `json:"keys"`
	Results    []ShardedKVResult `json:"results"`
}

// WriteJSON renders the report as indented JSON.
func (r ShardedKVReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// NewShardedKVReport stamps the environment fields of a report.
func NewShardedKVReport(cfg Config, results []ShardedKVResult) ShardedKVReport {
	return ShardedKVReport{
		Benchmark:  "shardedkv",
		Meta:       NewRunMeta(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		IntervalMS: cfg.Interval.Milliseconds(),
		Runs:       cfg.Runs,
		Keys:       ShardedKVKeys,
		Results:    results,
	}
}

// shardedKVFactory resolves a lock lineup name to a per-shard factory. For
// plain "bravo-<substrate>" names it rebuilds the BRAVO wrapper around the
// registered substrate with stats attached, so the report can include the
// fast-path hit rate (stats stay nil — and the fraction -1 — for plain
// locks and for BRAVO ablation variants like bravo-ba-2d, which keep their
// registry construction).
func shardedKVFactory(lockName string) (mk rwl.Factory, stats *core.Stats, err error) {
	if under, ok := strings.CutPrefix(lockName, "bravo-"); ok {
		if under == "go" { // registry alias asymmetry: bravo-go wraps go-rw
			under = "go-rw"
		}
		if mkUnder, ok := rwl.Lookup(under); ok {
			st := &core.Stats{}
			return func() rwl.RWLock {
				return core.New(mkUnder(), core.WithStats(st))
			}, st, nil
		}
	}
	mk, ok := rwl.Lookup(lockName)
	if !ok {
		_, err := rwl.New(lockName) // produces the canonical unknown-name error
		return nil, nil, err
	}
	return mk, nil, nil
}

// kvEngine is the slice of the engines the workload drives. Reads go
// through GetInto with a reused per-worker buffer so the measured loop
// does not allocate.
type kvEngine interface {
	GetInto(key uint64, buf []byte) ([]byte, bool)
	Put(key uint64, value []byte)
}

// ShardedKV runs the sharded engine for one (lock, shards, threads, mix,
// value size) point. Shards must be a positive power of two.
func ShardedKV(lockName string, shards, threads int, writeRatio float64, valueSize int, cfg Config) (ShardedKVResult, error) {
	mk, stats, err := shardedKVFactory(lockName)
	if err != nil {
		return ShardedKVResult{}, err
	}
	res := ShardedKVResult{
		Engine: "sharded", Lock: lockName, Shards: shards,
		Threads: threads, WriteRatio: writeRatio, ValueSize: valueSize,
	}
	build := func() (kvEngine, error) { return kvs.NewSharded(shards, mk) }
	return runShardedKVPoint(res, build, stats, cfg)
}

// ShardedKVBaseline runs the same mix against the single-stripe Memtable —
// the pre-sharding engine — as the scaling baseline.
func ShardedKVBaseline(lockName string, threads int, writeRatio float64, valueSize int, cfg Config) (ShardedKVResult, error) {
	mk, stats, err := shardedKVFactory(lockName)
	if err != nil {
		return ShardedKVResult{}, err
	}
	res := ShardedKVResult{
		Engine: "memtable", Lock: lockName, Shards: 1,
		Threads: threads, WriteRatio: writeRatio, ValueSize: valueSize,
	}
	build := func() (kvEngine, error) { return kvs.NewMemtable(1, mk) }
	return runShardedKVPoint(res, build, stats, cfg)
}

// runShardedKVPoint executes cfg.Runs independent runs of the mixed
// workload against fresh engines, filling in the medians and the last run's
// latency histogram and stats snapshot.
func runShardedKVPoint(res ShardedKVResult, build func() (kvEngine, error), stats *core.Stats, cfg Config) (ShardedKVResult, error) {
	if res.WriteRatio < 0 || res.WriteRatio > 1 {
		return res, fmt.Errorf("bench: write ratio %v outside [0, 1]", res.WriteRatio)
	}
	writeThreshold := uint64(res.WriteRatio * (1 << 20))
	if res.ValueSize < 8 {
		res.ValueSize = 8 // room for the encoded counter
	}
	value := make([]byte, res.ValueSize)
	var lastHist *histogram.Histogram
	var lastSnap core.Snapshot
	var buildErr error
	res.Ops = cfg.Median(func() float64 {
		e, err := build()
		if err != nil {
			buildErr = err
			return 0
		}
		for k := uint64(0); k < ShardedKVKeys; k++ {
			copy(value, kvs.EncodeValue(k))
			e.Put(k, value)
		}
		var before core.Snapshot
		if stats != nil {
			before = stats.Snapshot() // exclude population and prior runs
		}
		hist := &histogram.Histogram{}
		var histMu sync.Mutex
		total := RunWorkers(res.Threads, cfg.Interval, func(id int, stop *atomic.Bool) uint64 {
			rng := xrand.NewXorShift64(uint64(id)*0x9e3779b97f4a7c15 + 1)
			local := &histogram.Histogram{}
			wval := make([]byte, res.ValueSize)    // reused write buffer
			rbuf := make([]byte, 0, res.ValueSize) // reused read buffer
			var ops uint64
			for !stop.Load() {
				k := rng.Intn(ShardedKVKeys)
				if rng.Next()&(1<<20-1) < writeThreshold {
					copy(wval, kvs.EncodeValue(rng.Next()))
					e.Put(k, wval)
				} else if ops&latencySampleMask == 0 {
					start := clock.Nanos()
					rbuf, _ = e.GetInto(k, rbuf)
					local.Record(clock.Nanos() - start)
				} else {
					rbuf, _ = e.GetInto(k, rbuf)
				}
				ops++
			}
			histMu.Lock()
			hist.Merge(local)
			histMu.Unlock()
			return ops
		})
		lastHist = hist
		if stats != nil {
			after := stats.Snapshot()
			lastSnap = core.Snapshot{
				FastRead:      after.FastRead - before.FastRead,
				SlowDisabled:  after.SlowDisabled - before.SlowDisabled,
				SlowCollision: after.SlowCollision - before.SlowCollision,
				SlowRaced:     after.SlowRaced - before.SlowRaced,
			}
		}
		return float64(total)
	})
	if buildErr != nil {
		return res, buildErr
	}
	res.ThroughputOpsPerSec = res.Ops / cfg.Interval.Seconds()
	if lastHist != nil && lastHist.Count() > 0 {
		res.ReadP50Nanos = lastHist.Percentile(50)
		res.ReadP99Nanos = lastHist.Percentile(99)
	}
	res.FastReadFraction = -1
	if stats != nil {
		res.FastReadFraction = lastSnap.FastFraction()
	}
	return res, nil
}

// ShardedKVSweep runs the full scenario grid: for each lock, the memtable
// baseline plus the sharded engine at each shard count, across the thread
// axis. Results arrive in deterministic order (lock, engine, shards,
// threads).
func ShardedKVSweep(locks []string, shardCounts, threads []int, writeRatio float64, valueSize int, cfg Config) ([]ShardedKVResult, error) {
	var out []ShardedKVResult
	for _, lock := range locks {
		for _, tc := range threads {
			r, err := ShardedKVBaseline(lock, tc, writeRatio, valueSize, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		for _, sc := range shardCounts {
			for _, tc := range threads {
				r, err := ShardedKV(lock, sc, tc, writeRatio, valueSize, cfg)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// WriteShardedKVTable renders sweep results as the aligned human-readable
// companion of the JSON report.
func WriteShardedKVTable(w io.Writer, results []ShardedKVResult) {
	const format = "%-10s %-14s %7s %8s %14s %10s %10s %8s\n"
	fmt.Fprintf(w, format, "engine", "lock", "shards", "threads", "ops/sec", "p50(ns)", "p99(ns)", "fast%")
	for _, r := range results {
		fast := "-"
		if r.FastReadFraction >= 0 {
			fast = fmt.Sprintf("%.1f", 100*r.FastReadFraction)
		}
		fmt.Fprintf(w, format, r.Engine, r.Lock,
			fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.0f", r.ThroughputOpsPerSec),
			fmt.Sprintf("%d", r.ReadP50Nanos), fmt.Sprintf("%d", r.ReadP99Nanos), fast)
	}
}
