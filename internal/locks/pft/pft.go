// Package pft implements the Brandenburg–Anderson Phase-Fair Ticket
// reader-writer lock (PF-T in [3], paper §2/§5).
//
// The reader indicator is "a central pair of counters, one incremented by
// arriving readers and the other incremented by departing readers"; the two
// low bits of the arrival counter encode writer presence (PRES) and the
// writer phase (PHID). Phase-fairness: readers that arrive while a writer is
// present are admitted as soon as exactly that writer departs, before any
// subsequent writer — so readers incur at most one writer's worth of delay
// and writers incur at most one reader phase.
//
// Waiting readers spin globally on the arrival counter (the paper contrasts
// this with PF-Q's local spinning). Footprint: four 32-bit words.
package pft

import (
	"sync/atomic"

	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/spin"
)

const (
	rinc  = 0x100 // reader increment: arrival counts live above the flag bits
	wbits = 0x3   // writer presence/phase mask
	pres  = 0x2   // writer present
	phid  = 0x1   // writer phase ID
)

// Lock is a PF-T phase-fair reader-writer lock. The zero value is unlocked.
//
// Counters wrap modulo 2^32; all comparisons are equality-based, so wrap is
// benign as long as fewer than 2^24 readers are simultaneously active.
type Lock struct {
	rin  atomic.Uint32 // reader arrivals ·256 | writer bits
	rout atomic.Uint32 // reader departures ·256
	win  atomic.Uint32 // writer tickets issued
	wout atomic.Uint32 // writer tickets served
}

var _ rwl.TryRWLock = (*Lock)(nil)

// RLock acquires read permission.
func (l *Lock) RLock() rwl.Token {
	// Reader increments never modify the writer bits, so the bits observed
	// in the post-add value are the bits that were current at arrival.
	w := l.rin.Add(rinc) & wbits
	if w != 0 {
		// A writer is present: wait for its phase to end. The next writer
		// (if any) flips PHID, so the bits are guaranteed to change when the
		// blocking writer departs and we never miss our admission window.
		var b spin.Backoff
		for l.rin.Load()&wbits == w {
			b.Once()
		}
	}
	return 0
}

// RUnlock releases read permission.
func (l *Lock) RUnlock(rwl.Token) {
	l.rout.Add(rinc)
}

// Lock acquires write permission.
func (l *Lock) Lock() {
	// Writer-writer ordering via tickets.
	t := l.win.Add(1) - 1
	if l.wout.Load() != t {
		var b spin.Backoff
		for l.wout.Load() != t {
			b.Once()
		}
	}
	l.lockPhase(t)
}

// lockPhase announces writer presence for ticket t and waits for all
// previously-arrived readers to depart.
func (l *Lock) lockPhase(t uint32) {
	w := pres | (t & phid)
	// Snapshot the arrival count at the instant the bits were set: readers
	// arriving later observe the bits and wait for this phase to end.
	arrivals := (l.rin.Add(w) - w) &^ wbits
	if l.rout.Load() != arrivals {
		var b spin.Backoff
		for l.rout.Load() != arrivals {
			b.Once()
		}
	}
}

// Unlock releases write permission.
func (l *Lock) Unlock() {
	// The low bits of rin contain exactly this writer's bits (readers only
	// add multiples of rinc, and writer presence is exclusive), so
	// subtracting them clears the bits without borrowing into the count.
	w := l.rin.Load() & wbits
	l.rin.Add(-w)
	l.wout.Add(1)
}

// WriterPresent reports whether a writer currently holds or is draining
// readers for the lock (the PRES bit is set). Diagnostic.
func (l *Lock) WriterPresent() bool {
	return l.rin.Load()&wbits != 0
}

// TryRLock attempts to acquire read permission. If a writer is present it
// fails immediately. In the rare race where a writer announces itself between
// the presence check and the arrival increment, the arrival cannot be
// retracted (the writer's phase accounting already includes it), so the
// caller waits out that one phase — bounded, by phase-fairness — and then
// reports failure.
func (l *Lock) TryRLock() (rwl.Token, bool) {
	if l.rin.Load()&wbits != 0 {
		return 0, false
	}
	w := l.rin.Add(rinc) & wbits
	if w == 0 {
		return 0, true
	}
	// Raced with a writer: we are a registered arrival and must depart only
	// once admitted, otherwise the writer's rout equality check could be
	// satisfied while an earlier reader is still inside its critical section.
	var b spin.Backoff
	for l.rin.Load()&wbits == w {
		b.Once()
	}
	l.rout.Add(rinc)
	return 0, false
}

// TryLock attempts to acquire write permission without waiting.
func (l *Lock) TryLock() bool {
	o := l.wout.Load()
	if l.win.Load() != o {
		return false
	}
	if !l.win.CompareAndSwap(o, o+1) {
		return false
	}
	w := pres | (o & phid)
	arrivals := (l.rin.Add(w) - w) &^ wbits
	if l.rout.Load() != arrivals {
		// Readers are active: back out and retire the ticket.
		l.rin.Add(-w)
		l.wout.Add(1)
		return false
	}
	return true
}
