package kvserv

// Allocation benchmarks for the hot serving paths, HTTP and wire. Run
// with -benchmem; the allocs/op column is the audit. The engine's value
// copy-out is inherent (data leaves the lock's critical section); the
// serving layer's own per-request allocations are the target.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/wire"
)

// discardResponseWriter is a ResponseWriter with no recorder overhead, so
// the benchmark measures the handler, not the test harness.
type discardResponseWriter struct {
	h http.Header
}

func (w *discardResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 4)
	}
	return w.h
}
func (w *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardResponseWriter) WriteHeader(int)             {}

func benchEngine(b testing.TB) *kvs.Sharded {
	b.Helper()
	engine, err := kvs.NewSharded(8, func() rwl.RWLock { return core.New(new(stdrw.Lock)) })
	if err != nil {
		b.Fatal(err)
	}
	value := make([]byte, 128)
	for k := uint64(0); k < 1024; k++ {
		engine.Put(k, value)
	}
	return engine
}

func BenchmarkHTTPGet(b *testing.B) {
	srv := New(benchEngine(b), Config{ReapInterval: -1})
	h := srv.Handler()
	req := httptest.NewRequest(http.MethodGet, "/kv/42", nil)
	w := &discardResponseWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(w.h)
		h.ServeHTTP(w, req)
	}
}

func BenchmarkHTTPMGet(b *testing.B) {
	srv := New(benchEngine(b), Config{ReapInterval: -1})
	h := srv.Handler()
	req := httptest.NewRequest(http.MethodGet, "/mget?keys=1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16", nil)
	w := &discardResponseWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(w.h)
		h.ServeHTTP(w, req)
	}
}

func BenchmarkHTTPStats(b *testing.B) {
	srv := New(benchEngine(b), Config{ReapInterval: -1})
	h := srv.Handler()
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	w := &discardResponseWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(w.h)
		h.ServeHTTP(w, req)
	}
}

func BenchmarkWireGet(b *testing.B) {
	srv := New(benchEngine(b), Config{ReapInterval: -1})
	reader := rwl.NewReader()
	scratch := newWireScratch(8)
	req := wire.Request{Op: wire.OpGet, ID: 1, Key: 42}
	var out []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := srv.serveWireRequest(reader, &req, scratch)
		out = wire.AppendResponse(out[:0], &resp)
	}
	_ = out
}

func BenchmarkWireMGet(b *testing.B) {
	srv := New(benchEngine(b), Config{ReapInterval: -1})
	reader := rwl.NewReader()
	scratch := newWireScratch(8)
	keys := make([]uint64, 16)
	for i := range keys {
		keys[i] = uint64(i)
	}
	req := wire.Request{Op: wire.OpMGet, ID: 1, Keys: keys}
	var out []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := srv.serveWireRequest(reader, &req, scratch)
		out = wire.AppendResponse(out[:0], &resp)
	}
	_ = out
}

func BenchmarkWireMPut(b *testing.B) {
	srv := New(benchEngine(b), Config{ReapInterval: -1})
	reader := rwl.NewReader()
	scratch := newWireScratch(8)
	keys := make([]uint64, 16)
	vals := make([][]byte, 16)
	value := make([]byte, 128)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = value
	}
	req := wire.Request{Op: wire.OpMPut, ID: 1, Keys: keys, Values: vals}
	var out []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := srv.serveWireRequest(reader, &req, scratch)
		out = wire.AppendResponse(out[:0], &resp)
	}
	_ = out
}

// BenchmarkWireStats exercises the wire STATS path (JSON document build).
func BenchmarkWireStats(b *testing.B) {
	srv := New(benchEngine(b), Config{ReapInterval: -1})
	reader := rwl.NewReader()
	scratch := newWireScratch(8)
	req := wire.Request{Op: wire.OpStats, ID: 1}
	var out []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := srv.serveWireRequest(reader, &req, scratch)
		out = wire.AppendResponse(out[:0], &resp)
	}
	_ = out
}

// TestDiscardResponseWriter keeps the benchmark fixture honest: handlers
// that write through it must behave as with a real recorder.
func TestDiscardResponseWriter(t *testing.T) {
	srv := New(benchEngine(t), Config{ReapInterval: -1})
	h := srv.Handler()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/kv/42", nil))
	if w.Code != http.StatusOK || w.Body.Len() != 128 {
		t.Fatalf("control GET = %d, %d bytes", w.Code, w.Body.Len())
	}
	fmt.Fprint(&discardResponseWriter{}, "") // interface satisfaction smoke
}
