package rwsem

import (
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/self"
)

// Adapter presents an RWSem through the rwl interface so the stock semaphore
// can be driven by the generic harness and wrapped by the generic BRAVO
// transformation.
type Adapter struct {
	S *RWSem
}

var _ rwl.TryRWLock = (*Adapter)(nil)

// NewAdapter returns an rwl-compatible view of a fresh rwsem.
func NewAdapter(cfg Config) *Adapter { return &Adapter{S: New(cfg)} }

// RLock acquires the semaphore in read mode.
func (a *Adapter) RLock() rwl.Token {
	a.S.DownRead(self.ID())
	return 0
}

// RUnlock releases a read acquisition.
func (a *Adapter) RUnlock(rwl.Token) { a.S.UpRead(self.ID()) }

// Lock acquires the semaphore in write mode.
func (a *Adapter) Lock() { a.S.DownWrite(self.ID()) }

// Unlock releases a write acquisition.
func (a *Adapter) Unlock() { a.S.UpWrite(self.ID()) }

// TryRLock attempts a non-blocking read acquisition.
func (a *Adapter) TryRLock() (rwl.Token, bool) {
	return 0, a.S.TryDownRead(self.ID())
}

// TryLock attempts a non-blocking write acquisition.
func (a *Adapter) TryLock() bool { return a.S.TryDownWrite(self.ID()) }

// WriterPresent reports whether a writer holds the semaphore. Diagnostic.
func (a *Adapter) WriterPresent() bool { return a.S.WriterPresent() }
