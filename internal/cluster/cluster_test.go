package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/kvs"
)

func testConfig(t *testing.T, partitions, followers int) Config {
	t.Helper()
	return Config{
		Partitions:    partitions,
		Shards:        4,
		Followers:     followers,
		Dir:           t.TempDir(),
		Policy:        kvs.SyncNone,
		RetryInterval: 5 * time.Millisecond,
	}
}

func openCluster(t *testing.T, partitions, followers int) *Cluster {
	t.Helper()
	c, err := Open(testConfig(t, partitions, followers))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClusterPutGetRoundTrip(t *testing.T) {
	c := openCluster(t, 3, 1)
	const n = 500
	for k := uint64(0); k < n; k++ {
		if _, err := c.Put(k, []byte(fmt.Sprintf("v%d", k)), 0); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	for k := uint64(0); k < n; k++ {
		v, ok := c.Get(nil, k, nil)
		if !ok || string(v) != fmt.Sprintf("v%d", k) {
			t.Fatalf("Get(%d) = %q, %v", k, v, ok)
		}
	}
	// The keyspace actually spread: every partition owns something.
	st := c.Stats()
	for _, ps := range st.Members {
		var total uint64
		for _, l := range ps.LSNs {
			total += l
		}
		if total == 0 {
			t.Fatalf("partition %d received no writes out of %d keys", ps.Partition, n)
		}
	}
}

func TestClusterMultiOpsFanOut(t *testing.T) {
	c := openCluster(t, 4, 1)
	const n = 200
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = uint64(i * 7)
		vals[i] = []byte(fmt.Sprintf("batch-%d", i))
	}
	lsns, err := c.MultiPut(keys, vals, 0)
	if err != nil {
		t.Fatalf("MultiPut: %v", err)
	}
	if len(lsns) == 0 {
		t.Fatal("MultiPut returned no tokens on a durable cluster")
	}
	seen := map[uint32]bool{}
	for _, tok := range lsns {
		if tok.Epoch != 1 {
			t.Fatalf("token epoch %d before any failover", tok.Epoch)
		}
		if seen[tok.Shard] {
			t.Fatalf("duplicate global shard %d in tokens", tok.Shard)
		}
		seen[tok.Shard] = true
		if _, _, ok := c.SplitGlobalShard(tok.Shard); !ok {
			t.Fatalf("token shard %d out of range", tok.Shard)
		}
	}
	got := c.MultiGet(nil, keys)
	for i, v := range got {
		if !bytes.Equal(v, vals[i]) {
			t.Fatalf("MultiGet[%d] = %q, want %q", i, v, vals[i])
		}
	}
	// Tokens admit the read (all current-epoch).
	for _, tok := range lsns {
		if terr := c.CheckToken(tok.Epoch, tok.LSN, keys); terr != nil {
			t.Fatalf("CheckToken: %v", terr)
		}
	}
	removed, dLsns, err := c.MultiDelete(keys[:50])
	if err != nil {
		t.Fatalf("MultiDelete: %v", err)
	}
	if removed != 50 {
		t.Fatalf("MultiDelete removed %d, want 50", removed)
	}
	if len(dLsns) == 0 {
		t.Fatal("MultiDelete returned no tokens")
	}
	for i := 0; i < 50; i++ {
		if _, ok := c.Get(nil, keys[i], nil); ok {
			t.Fatalf("key %d survived MultiDelete", keys[i])
		}
	}
}

func TestClusterFailoverPromotesAndFences(t *testing.T) {
	c := openCluster(t, 2, 2)
	const n = 300
	toks := make(map[uint64]ShardLSN, n)
	for k := uint64(0); k < n; k++ {
		tok, err := c.Put(k, []byte(fmt.Sprintf("v%d", k)), 0)
		if err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
		toks[k] = tok
	}
	if err := c.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatalf("WaitCaughtUp: %v", err)
	}

	old := c.Member(0)
	epoch, err := c.Failover(0)
	if err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if epoch != 2 || c.Epoch(0) != 2 {
		t.Fatalf("epoch after failover: returned %d, partition at %d", epoch, c.Epoch(0))
	}

	// The fenced corpse rejects everything, wherever the write enters.
	if _, _, err := old.Put(1, []byte("zombie"), 0); err != ErrFenced {
		t.Fatalf("corpse Put: %v, want ErrFenced", err)
	}
	if _, err := old.Flush(); err != ErrFenced {
		t.Fatalf("corpse Flush: %v, want ErrFenced", err)
	}

	// Caught-up failover loses nothing: every key reads back, every old
	// token is honored (it survived the cut).
	for k := uint64(0); k < n; k++ {
		v, ok := c.Get(nil, k, nil)
		if !ok || string(v) != fmt.Sprintf("v%d", k) {
			t.Fatalf("Get(%d) after failover = %q, %v", k, v, ok)
		}
		tok := toks[k]
		if terr := c.CheckToken(tok.Epoch, tok.LSN, []uint64{k}); terr != nil {
			t.Fatalf("old token for key %d rejected: %v", k, terr)
		}
	}

	// The promoted primary continues the LSN sequence and serves writes at
	// the new epoch.
	tok, err := c.Put(7, []byte("after"), 0)
	if err != nil {
		t.Fatalf("Put after failover: %v", err)
	}
	if c.Partition(7) == 0 && tok.Epoch != 2 {
		t.Fatalf("post-failover token epoch %d, want 2", tok.Epoch)
	}
}

func TestClusterLostTokenConflicts(t *testing.T) {
	c := openCluster(t, 1, 1)
	// Replicate one write, then pause the follower and write more: the
	// extra writes are acknowledged but never replicated, so the failover
	// cut loses them.
	tok0, err := c.Put(1, []byte("kept"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Followers(0)[0].Stop()
	var lost ShardLSN
	for i := 0; i < 10; i++ {
		// Same key: same shard, strictly increasing LSNs past the cut.
		if lost, err = c.Put(1, []byte("lost"), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Failover(0); err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if terr := c.CheckToken(tok0.Epoch, tok0.LSN, []uint64{1}); terr != nil {
		t.Fatalf("replicated token rejected: %v", terr)
	}
	terr := c.CheckToken(lost.Epoch, lost.LSN, []uint64{1})
	if terr == nil || !terr.Conflict {
		t.Fatalf("lost token: got %v, want conflict", terr)
	}
	// The value rolled back to the survived prefix.
	if v, ok := c.Get(nil, 1, nil); !ok || string(v) != "kept" {
		t.Fatalf("Get after lossy failover = %q, %v; want %q", v, ok, "kept")
	}
	// A token from a future epoch is impossible here: not a conflict, a
	// bad request.
	terr = c.CheckToken(99, 1, []uint64{1})
	if terr == nil || terr.Conflict {
		t.Fatalf("future-epoch token: got %v, want non-conflict error", terr)
	}
}

// TestClusterMaintenanceSurface covers the operational methods the
// failover tests don't route through: topology accessors, async writes
// with Flush, TTL reaping, checkpoints, single-key Delete, and data
// removal after close.
func TestClusterMaintenanceSurface(t *testing.T) {
	c := openCluster(t, 2, 1)
	if c.NumPartitions() != 2 || c.ShardsPerPartition() != 4 {
		t.Fatalf("topology = %d×%d, want 2×4", c.NumPartitions(), c.ShardsPerPartition())
	}
	if r := c.Router(); r.NumPartitions() != 2 || len(r.IDs()) != 2 {
		t.Fatalf("router reports %d partitions, %d ids", r.NumPartitions(), len(r.IDs()))
	}
	if c.Epoch(0) != 1 || c.Member(0).Epoch() != 1 {
		t.Fatalf("fresh cluster epochs = %d/%d, want 1/1", c.Epoch(0), c.Member(0).Epoch())
	}

	// Async writes route like sync ones and land on Flush.
	for k := uint64(0); k < 8; k++ {
		if err := c.PutAsync(k, []byte("queued")); err != nil {
			t.Fatalf("PutAsync(%d): %v", k, err)
		}
	}
	if n := c.Flush(); n != 8 {
		t.Fatalf("Flush applied %d, want 8", n)
	}
	if v, ok := c.Get(nil, 3, nil); !ok || string(v) != "queued" {
		t.Fatalf("async write invisible after Flush: %q, %v", v, ok)
	}

	// Expired TTL residue is reapable across every partition.
	for k := uint64(100); k < 120; k++ {
		if _, err := c.Put(k, []byte("brief"), time.Nanosecond); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(time.Millisecond)
	if reaped := c.Reap(1000); reaped != 20 {
		t.Fatalf("Reap removed %d, want 20", reaped)
	}

	if err := c.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	ok, tok, err := c.Delete(3)
	if err != nil || !ok || tok.LSN == 0 || tok.Epoch != 1 {
		t.Fatalf("Delete(3) = %v, %+v, %v", ok, tok, err)
	}
	if ok, _, err = c.Delete(3); err != nil || ok {
		t.Fatalf("second Delete(3) = %v, %v; want a miss", ok, err)
	}

	// A token error renders a usable message.
	if terr := c.CheckToken(99, 1, []uint64{1}); terr == nil || terr.Error() == "" {
		t.Fatalf("future-epoch CheckToken = %v, want a described error", terr)
	}
}

func TestClusterRemoveDataAfterClose(t *testing.T) {
	cfg := testConfig(t, 1, 1)
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(1, []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.RemoveData(); err != nil {
		t.Fatalf("RemoveData: %v", err)
	}
	if _, err := os.Stat(cfg.Dir); !os.IsNotExist(err) {
		t.Fatalf("data dir survived RemoveData: %v", err)
	}
}

func TestClusterTTLSurvivesFailover(t *testing.T) {
	c := openCluster(t, 1, 1)
	if _, err := c.Put(1, []byte("expiring"), time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(2, []byte("expired"), time.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Failover(0); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get(nil, 1, nil); !ok || string(v) != "expiring" {
		t.Fatalf("TTL key lost in failover: %q, %v", v, ok)
	}
	if _, ok := c.Get(nil, 2, nil); ok {
		t.Fatal("expired key resurrected by failover")
	}
}

// partitionKeys scans the keyspace for n keys owned by partition pi.
func partitionKeys(c *Cluster, pi, n int) []uint64 {
	keys := make([]uint64, 0, n)
	for k := uint64(0); len(keys) < n; k++ {
		if c.Partition(k) == pi {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestClusterCasAndTxn drives the transactional surface through the
// cluster: single-partition batches commit atomically with epoch-stamped
// tokens, cross-partition batches answer the typed rejection, and after a
// failover the fenced corpse refuses transactions while the promoted
// primary carries the committed state and serves new ones at the bumped
// epoch.
func TestClusterCasAndTxn(t *testing.T) {
	c := openCluster(t, 2, 1)

	// CAS through the router: install, stale attempt, delete-on-match.
	if swapped, tok, err := c.Cas(9, nil, []byte("v1")); err != nil || !swapped || tok.Epoch != 1 {
		t.Fatalf("Cas install = %v/%+v/%v", swapped, tok, err)
	}
	if swapped, _, err := c.Cas(9, []byte("stale"), []byte("v2")); err != nil || swapped {
		t.Fatalf("stale Cas = %v/%v, want false", swapped, err)
	}

	// A single-partition transaction commits atomically; its tokens carry
	// one triple per declared shard at the partition's epoch.
	keys := partitionKeys(c, 0, 3)
	lsns, err := c.Txn(keys, func(tx *kvs.Tx) error {
		for i, k := range keys {
			tx.Put(k, []byte{byte(i)})
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Txn: %v", err)
	}
	if len(lsns) == 0 {
		t.Fatal("committed Txn returned no tokens")
	}
	for _, l := range lsns {
		if l.Epoch != 1 {
			t.Fatalf("Txn token epoch = %d, want 1", l.Epoch)
		}
	}
	for i, k := range keys {
		if v, ok := c.Get(nil, k, nil); !ok || !bytes.Equal(v, []byte{byte(i)}) {
			t.Fatalf("Get(%d) after Txn = %q, %v", k, v, ok)
		}
	}

	// Keys spanning partitions are rejected with the typed error before
	// any lock is taken.
	cross := []uint64{partitionKeys(c, 0, 1)[0], partitionKeys(c, 1, 1)[0]}
	if _, err := c.Txn(cross, func(*kvs.Tx) error { return nil }); err == nil || !errors.Is(err, ErrCrossPartitionTxn) {
		t.Fatalf("cross-partition Txn: %v, want ErrCrossPartitionTxn", err)
	}

	// Failover: the corpse fences its transactional surface too, and the
	// promoted primary carries the committed batch.
	if err := c.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatalf("WaitCaughtUp: %v", err)
	}
	old := c.Member(0)
	if _, err := c.Failover(0); err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if _, err := old.Txn(keys[:1], func(*kvs.Tx) error { return nil }, nil); err != ErrFenced {
		t.Fatalf("corpse Txn: %v, want ErrFenced", err)
	}
	if _, _, _, err := old.Cas(keys[0], nil, []byte("x")); err != ErrFenced {
		t.Fatalf("corpse Cas: %v, want ErrFenced", err)
	}
	for i, k := range keys {
		if v, ok := c.Get(nil, k, nil); !ok || !bytes.Equal(v, []byte{byte(i)}) {
			t.Fatalf("Get(%d) after failover = %q, %v", k, v, ok)
		}
	}
	lsns, err = c.Txn(keys[:2], func(tx *kvs.Tx) error {
		tx.Put(keys[0], []byte("post"))
		tx.Delete(keys[1])
		return nil
	})
	if err != nil {
		t.Fatalf("Txn after failover: %v", err)
	}
	for _, l := range lsns {
		if l.Epoch != 2 {
			t.Fatalf("post-failover Txn token epoch = %d, want 2", l.Epoch)
		}
	}
	if v, ok := c.Get(nil, keys[0], nil); !ok || string(v) != "post" {
		t.Fatalf("Get after post-failover Txn = %q, %v", v, ok)
	}
	if _, ok := c.Get(nil, keys[1], nil); ok {
		t.Fatal("post-failover Txn delete did not apply")
	}
}
