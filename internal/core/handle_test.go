package core

import (
	"sync"
	"testing"

	"github.com/bravolock/bravo/internal/bias"
	"github.com/bravolock/bravo/internal/lockcheck"
	"github.com/bravolock/bravo/internal/locks/pfq"
	"github.com/bravolock/bravo/internal/rwl"
)

// --- Option-order regression (WithInhibitN must tune, never replace) ---

func TestWithInhibitNDoesNotReplacePolicy(t *testing.T) {
	// Regression: WithInhibitN after WithPolicy used to silently discard
	// the installed policy; the reverse order silently discarded N.
	l1 := New(new(pfq.Lock), WithPolicy(AlwaysPolicy{}), WithInhibitN(5))
	if _, ok := l1.Engine().PolicyInUse().(AlwaysPolicy); !ok {
		t.Fatalf("WithInhibitN replaced WithPolicy: %#v", l1.Engine().PolicyInUse())
	}
	l2 := New(new(pfq.Lock), WithInhibitN(5), WithPolicy(AlwaysPolicy{}))
	if _, ok := l2.Engine().PolicyInUse().(AlwaysPolicy); !ok {
		t.Fatalf("WithPolicy lost to earlier WithInhibitN: %#v", l2.Engine().PolicyInUse())
	}
	// With an inhibit policy in play, N lands on it regardless of order.
	l3 := New(new(pfq.Lock), WithPolicy(NewInhibitPolicy(0)), WithInhibitN(5))
	if p := l3.Engine().PolicyInUse().(*InhibitPolicy); p.N != 5 {
		t.Fatalf("policy-then-N: N = %d, want 5", p.N)
	}
	l4 := New(new(pfq.Lock), WithInhibitN(5), WithPolicy(NewInhibitPolicy(0)))
	if p := l4.Engine().PolicyInUse().(*InhibitPolicy); p.N != 5 {
		t.Fatalf("N-then-policy: N = %d, want 5", p.N)
	}
	// WithInhibitN alone still tunes the default policy.
	l5 := New(new(pfq.Lock), WithInhibitN(5))
	if p := l5.Engine().PolicyInUse().(*InhibitPolicy); p.N != 5 {
		t.Fatalf("N alone: N = %d, want 5", p.N)
	}
}

// --- Deterministic slot collisions (explicit IDs, same slot) ---

// collidingIDs returns two reader identities whose primary probes for l
// land in the same slot of tab. wantProbe2Free additionally demands the
// second identity's alternate probe be a different slot.
func collidingIDs(t *testing.T, tab *Table, l *Lock, wantProbe2Free bool) (uint64, uint64) {
	t.Helper()
	lockID := l.Engine().ID()
	id1 := uint64(1)
	home := tab.Index(lockID, id1)
	for c := uint64(2); c < 1<<20; c++ {
		if tab.Index(lockID, c) != home {
			continue
		}
		if wantProbe2Free && tab.Index2(lockID, c) == home {
			continue
		}
		return id1, c
	}
	t.Fatal("no colliding identity found")
	return 0, 0
}

func TestDeterministicCollisionDivertsToSlowPath(t *testing.T) {
	tab := NewTable(64)
	st := &Stats{}
	l := New(new(pfq.Lock), WithTable(tab), WithPolicy(AlwaysPolicy{}), WithStats(st))
	tok := l.RLock() // slow read enables bias
	l.RUnlock(tok)
	id1, id2 := collidingIDs(t, tab, l, false)
	t1 := l.RLockWithID(id1)
	if t1&fastBit == 0 {
		t.Fatal("first reader did not take the fast path")
	}
	t2 := l.RLockWithID(id2)
	if t2&fastBit != 0 {
		t.Fatal("colliding reader took the fast path")
	}
	if st.SlowCollision.Load() != 1 {
		t.Fatalf("collision not recorded: %s", st.Snapshot())
	}
	l.RUnlock(t2)
	l.RUnlock(t1)
	if tab.Occupancy() != 0 {
		t.Fatal("table dirty after collision round trip")
	}
}

func TestDeterministicCollisionRescuedBySecondProbe(t *testing.T) {
	tab := NewTable(64)
	st := &Stats{}
	l := New(new(pfq.Lock), WithTable(tab), WithPolicy(AlwaysPolicy{}),
		WithStats(st), WithSecondProbe())
	tok := l.RLock()
	l.RUnlock(tok)
	id1, id2 := collidingIDs(t, tab, l, true)
	t1 := l.RLockWithID(id1)
	if t1&fastBit == 0 {
		t.Fatal("first reader did not take the fast path")
	}
	t2 := l.RLockWithID(id2)
	if t2&fastBit == 0 {
		t.Fatalf("second probe did not rescue the collision: %s", st.Snapshot())
	}
	alt := tab.Index2(l.Engine().ID(), id2)
	if uint32(t2) != alt {
		t.Fatalf("rescued reader in slot %d, want alternate slot %d", uint32(t2), alt)
	}
	if st.FastRead.Load() != 2 {
		t.Fatalf("want both reads fast: %s", st.Snapshot())
	}
	l.RUnlock(t2)
	l.RUnlock(t1)
}

// --- Handle-accepting read paths ---

func TestHandleSteadyStateReusesCachedSlot(t *testing.T) {
	tab := NewTable(DefaultTableSize)
	st := &Stats{}
	l := New(new(pfq.Lock), WithTable(tab), WithPolicy(AlwaysPolicy{}), WithStats(st))
	h := rwl.NewReaderWithID(42)
	// First read is slow (bias off) and tracked on the handle.
	tok := l.RLockH(h)
	if tok&fastBit != 0 {
		t.Fatal("read fast before bias enabled")
	}
	l.RUnlockH(h, tok)
	home := tab.Index(l.Engine().ID(), 42)
	for i := 0; i < 100; i++ {
		tok := l.RLockH(h)
		if tok&fastBit == 0 {
			t.Fatalf("iteration %d: handle read not fast", i)
		}
		if uint32(tok) != home {
			t.Fatalf("iteration %d: slot %d, want cached home %d", i, uint32(tok), home)
		}
		l.RUnlockH(h, tok)
	}
	if st.FastRead.Load() != 100 {
		t.Fatalf("want 100 fast handle reads: %s", st.Snapshot())
	}
	if tab.Occupancy() != 0 {
		t.Fatal("table dirty after handle reads")
	}
}

func TestHandleCollisionMemoryRetriesAfterBiasFlip(t *testing.T) {
	tab := NewTable(64)
	st := &Stats{}
	l := New(new(pfq.Lock), WithTable(tab), WithPolicy(AlwaysPolicy{}), WithStats(st))
	tok := l.RLock()
	l.RUnlock(tok)
	h := rwl.NewReaderWithID(7)
	home := tab.Index(l.Engine().ID(), 7)
	if _, ok := tab.TryPublishAt(home, uintptr(0xF00D0)); !ok {
		t.Fatal("setup publish failed")
	}
	t1 := l.RLockH(h) // collides, diverts, remembers
	if t1&fastBit != 0 {
		t.Fatal("collided handle read was fast")
	}
	l.RUnlockH(h, t1)
	tab.Clear(home)
	t2 := l.RLockH(h) // same epoch: still diverted despite the free slot
	if t2&fastBit != 0 {
		t.Fatal("diverted handle retried before a bias flip")
	}
	l.RUnlockH(h, t2)
	// A write revokes; the next slow read re-enables bias (new epoch).
	l.Lock()
	l.Unlock()
	t3 := l.RLockH(h)
	if t3&fastBit != 0 { // this read is slow but re-enables bias
		t.Fatal("read fast while bias off")
	}
	l.RUnlockH(h, t3)
	t4 := l.RLockH(h)
	if t4&fastBit == 0 || uint32(t4) != home {
		t.Fatalf("handle did not reclaim home slot after flip: tok=%#x want slot %d", t4, home)
	}
	l.RUnlockH(h, t4)
	if st.SlowCollision.Load() != 2 {
		t.Fatalf("collision accounting: %s", st.Snapshot())
	}
}

func TestHandleAndAnonymousReadersCoexist(t *testing.T) {
	l := New(new(pfq.Lock), WithTable(NewTable(DefaultTableSize)), WithPolicy(AlwaysPolicy{}))
	tok := l.RLock()
	l.RUnlock(tok)
	h := rwl.NewReader()
	th := l.RLockH(h)
	ta := l.RLock()
	if th&fastBit == 0 || ta&fastBit == 0 {
		t.Fatal("mixed readers not both fast")
	}
	l.RUnlock(ta)
	l.RUnlockH(h, th)
	if l.TableInUse().Occupancy() != 0 {
		t.Fatal("table dirty")
	}
}

func TestHandleStorm(t *testing.T) {
	// Handles are per-goroutine; storm the handle paths against writers,
	// across table geometries and policies.
	variants := map[string]func() rwl.HandleRWLock{
		"aggressive": func() rwl.HandleRWLock {
			return New(new(pfq.Lock), WithTable(NewTable(64)), WithPolicy(AlwaysPolicy{}))
		},
		"tiny-table": func() rwl.HandleRWLock {
			return New(new(pfq.Lock), WithTable(NewTable(2)), WithPolicy(AlwaysPolicy{}))
		},
		"probe2": func() rwl.HandleRWLock {
			return New(new(pfq.Lock), WithTable(NewTable(4)), WithPolicy(AlwaysPolicy{}), WithSecondProbe())
		},
		"2d": func() rwl.HandleRWLock {
			return New(new(pfq.Lock), WithTable(NewTable2D(8, 32)), WithPolicy(AlwaysPolicy{}))
		},
		"randomized": func() rwl.HandleRWLock {
			return New(new(pfq.Lock), WithTable(NewTable(64)), WithPolicy(AlwaysPolicy{}), WithRandomizedIndex())
		},
		"default-policy": func() rwl.HandleRWLock {
			return New(new(pfq.Lock), WithTable(NewTable(64)))
		},
	}
	for name, mk := range variants {
		t.Run(name, func(t *testing.T) {
			lockcheck.HandleExclusion(t, mk, 4, 2, 1200)
		})
	}
}

func TestHandleMixedWithAnonymousStorm(t *testing.T) {
	// Handle readers, anonymous readers and writers share one lock.
	l := New(new(pfq.Lock), WithTable(NewTable(64)), WithPolicy(AlwaysPolicy{}))
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := rwl.NewReader()
			for i := 0; i < 1500; i++ {
				tok := l.RLockH(h)
				l.RUnlockH(h, tok)
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1500; i++ {
				tok := l.RLock()
				l.RUnlock(tok)
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				l.Lock()
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if l.TableInUse().Occupancy() != 0 {
		t.Fatal("table dirty after mixed storm")
	}
}

func TestUnbalancedRUnlockDetected(t *testing.T) {
	// The handle's held-slot record must catch double unlocks and
	// unlock-without-lock on both the biased and unbiased read paths.
	t.Run("biased", func(t *testing.T) {
		lockcheck.UnbalancedRUnlock(t, New(new(pfq.Lock),
			WithTable(NewTable(64)), WithPolicy(AlwaysPolicy{})))
	})
	t.Run("unbiased", func(t *testing.T) {
		lockcheck.UnbalancedRUnlock(t, New(new(pfq.Lock),
			WithTable(NewTable(64)), WithPolicy(NeverPolicy{})))
	})
}

func TestUnbalancedAnonymousRUnlockDetected(t *testing.T) {
	// The always-on table guard must catch fast-path misuse on the
	// anonymous token-passing paths too — no handle bookkeeping involved.
	t.Run("shared-table", func(t *testing.T) {
		tab := NewTable(64)
		lockcheck.UnbalancedAnonymousRUnlock(t, func() rwl.RWLock {
			return New(new(pfq.Lock), WithTable(tab), WithPolicy(AlwaysPolicy{}))
		})
	})
	t.Run("2d", func(t *testing.T) {
		tab := NewTable2D(8, 32)
		lockcheck.UnbalancedAnonymousRUnlock(t, func() rwl.RWLock {
			return New(new(pfq.Lock), WithTable(tab), WithPolicy(AlwaysPolicy{}))
		})
	})
}

func TestHandleWorksOn2DTable(t *testing.T) {
	l := New(new(pfq.Lock), WithTable(NewTable2D(8, 32)), WithPolicy(AlwaysPolicy{}))
	tok := l.RLock()
	l.RUnlock(tok)
	h := rwl.NewReader()
	for i := 0; i < 10; i++ {
		tok := l.RLockH(h)
		if tok&fastBit == 0 {
			t.Fatalf("iteration %d: 2D handle read not fast", i)
		}
		l.RUnlockH(h, tok)
	}
	l.Lock() // column-restricted revocation must find cached-slot readers
	l.Unlock()
}

var _ = bias.ReaderSlots // documents the shared capacity bound
