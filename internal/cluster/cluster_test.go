package cluster

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/kvs"
)

func testConfig(t *testing.T, partitions, followers int) Config {
	t.Helper()
	return Config{
		Partitions:    partitions,
		Shards:        4,
		Followers:     followers,
		Dir:           t.TempDir(),
		Policy:        kvs.SyncNone,
		RetryInterval: 5 * time.Millisecond,
	}
}

func openCluster(t *testing.T, partitions, followers int) *Cluster {
	t.Helper()
	c, err := Open(testConfig(t, partitions, followers))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClusterPutGetRoundTrip(t *testing.T) {
	c := openCluster(t, 3, 1)
	const n = 500
	for k := uint64(0); k < n; k++ {
		if _, err := c.Put(k, []byte(fmt.Sprintf("v%d", k)), 0); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	for k := uint64(0); k < n; k++ {
		v, ok := c.Get(nil, k, nil)
		if !ok || string(v) != fmt.Sprintf("v%d", k) {
			t.Fatalf("Get(%d) = %q, %v", k, v, ok)
		}
	}
	// The keyspace actually spread: every partition owns something.
	st := c.Stats()
	for _, ps := range st.Members {
		var total uint64
		for _, l := range ps.LSNs {
			total += l
		}
		if total == 0 {
			t.Fatalf("partition %d received no writes out of %d keys", ps.Partition, n)
		}
	}
}

func TestClusterMultiOpsFanOut(t *testing.T) {
	c := openCluster(t, 4, 1)
	const n = 200
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = uint64(i * 7)
		vals[i] = []byte(fmt.Sprintf("batch-%d", i))
	}
	lsns, err := c.MultiPut(keys, vals, 0)
	if err != nil {
		t.Fatalf("MultiPut: %v", err)
	}
	if len(lsns) == 0 {
		t.Fatal("MultiPut returned no tokens on a durable cluster")
	}
	seen := map[uint32]bool{}
	for _, tok := range lsns {
		if tok.Epoch != 1 {
			t.Fatalf("token epoch %d before any failover", tok.Epoch)
		}
		if seen[tok.Shard] {
			t.Fatalf("duplicate global shard %d in tokens", tok.Shard)
		}
		seen[tok.Shard] = true
		if _, _, ok := c.SplitGlobalShard(tok.Shard); !ok {
			t.Fatalf("token shard %d out of range", tok.Shard)
		}
	}
	got := c.MultiGet(nil, keys)
	for i, v := range got {
		if !bytes.Equal(v, vals[i]) {
			t.Fatalf("MultiGet[%d] = %q, want %q", i, v, vals[i])
		}
	}
	// Tokens admit the read (all current-epoch).
	for _, tok := range lsns {
		if terr := c.CheckToken(tok.Epoch, tok.LSN, keys); terr != nil {
			t.Fatalf("CheckToken: %v", terr)
		}
	}
	removed, dLsns, err := c.MultiDelete(keys[:50])
	if err != nil {
		t.Fatalf("MultiDelete: %v", err)
	}
	if removed != 50 {
		t.Fatalf("MultiDelete removed %d, want 50", removed)
	}
	if len(dLsns) == 0 {
		t.Fatal("MultiDelete returned no tokens")
	}
	for i := 0; i < 50; i++ {
		if _, ok := c.Get(nil, keys[i], nil); ok {
			t.Fatalf("key %d survived MultiDelete", keys[i])
		}
	}
}

func TestClusterFailoverPromotesAndFences(t *testing.T) {
	c := openCluster(t, 2, 2)
	const n = 300
	toks := make(map[uint64]ShardLSN, n)
	for k := uint64(0); k < n; k++ {
		tok, err := c.Put(k, []byte(fmt.Sprintf("v%d", k)), 0)
		if err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
		toks[k] = tok
	}
	if err := c.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatalf("WaitCaughtUp: %v", err)
	}

	old := c.Member(0)
	epoch, err := c.Failover(0)
	if err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if epoch != 2 || c.Epoch(0) != 2 {
		t.Fatalf("epoch after failover: returned %d, partition at %d", epoch, c.Epoch(0))
	}

	// The fenced corpse rejects everything, wherever the write enters.
	if _, _, err := old.Put(1, []byte("zombie"), 0); err != ErrFenced {
		t.Fatalf("corpse Put: %v, want ErrFenced", err)
	}
	if _, err := old.Flush(); err != ErrFenced {
		t.Fatalf("corpse Flush: %v, want ErrFenced", err)
	}

	// Caught-up failover loses nothing: every key reads back, every old
	// token is honored (it survived the cut).
	for k := uint64(0); k < n; k++ {
		v, ok := c.Get(nil, k, nil)
		if !ok || string(v) != fmt.Sprintf("v%d", k) {
			t.Fatalf("Get(%d) after failover = %q, %v", k, v, ok)
		}
		tok := toks[k]
		if terr := c.CheckToken(tok.Epoch, tok.LSN, []uint64{k}); terr != nil {
			t.Fatalf("old token for key %d rejected: %v", k, terr)
		}
	}

	// The promoted primary continues the LSN sequence and serves writes at
	// the new epoch.
	tok, err := c.Put(7, []byte("after"), 0)
	if err != nil {
		t.Fatalf("Put after failover: %v", err)
	}
	if c.Partition(7) == 0 && tok.Epoch != 2 {
		t.Fatalf("post-failover token epoch %d, want 2", tok.Epoch)
	}
}

func TestClusterLostTokenConflicts(t *testing.T) {
	c := openCluster(t, 1, 1)
	// Replicate one write, then pause the follower and write more: the
	// extra writes are acknowledged but never replicated, so the failover
	// cut loses them.
	tok0, err := c.Put(1, []byte("kept"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Followers(0)[0].Stop()
	var lost ShardLSN
	for i := 0; i < 10; i++ {
		// Same key: same shard, strictly increasing LSNs past the cut.
		if lost, err = c.Put(1, []byte("lost"), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Failover(0); err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if terr := c.CheckToken(tok0.Epoch, tok0.LSN, []uint64{1}); terr != nil {
		t.Fatalf("replicated token rejected: %v", terr)
	}
	terr := c.CheckToken(lost.Epoch, lost.LSN, []uint64{1})
	if terr == nil || !terr.Conflict {
		t.Fatalf("lost token: got %v, want conflict", terr)
	}
	// The value rolled back to the survived prefix.
	if v, ok := c.Get(nil, 1, nil); !ok || string(v) != "kept" {
		t.Fatalf("Get after lossy failover = %q, %v; want %q", v, ok, "kept")
	}
	// A token from a future epoch is impossible here: not a conflict, a
	// bad request.
	terr = c.CheckToken(99, 1, []uint64{1})
	if terr == nil || terr.Conflict {
		t.Fatalf("future-epoch token: got %v, want non-conflict error", terr)
	}
}

// TestClusterMaintenanceSurface covers the operational methods the
// failover tests don't route through: topology accessors, async writes
// with Flush, TTL reaping, checkpoints, single-key Delete, and data
// removal after close.
func TestClusterMaintenanceSurface(t *testing.T) {
	c := openCluster(t, 2, 1)
	if c.NumPartitions() != 2 || c.ShardsPerPartition() != 4 {
		t.Fatalf("topology = %d×%d, want 2×4", c.NumPartitions(), c.ShardsPerPartition())
	}
	if r := c.Router(); r.NumPartitions() != 2 || len(r.IDs()) != 2 {
		t.Fatalf("router reports %d partitions, %d ids", r.NumPartitions(), len(r.IDs()))
	}
	if c.Epoch(0) != 1 || c.Member(0).Epoch() != 1 {
		t.Fatalf("fresh cluster epochs = %d/%d, want 1/1", c.Epoch(0), c.Member(0).Epoch())
	}

	// Async writes route like sync ones and land on Flush.
	for k := uint64(0); k < 8; k++ {
		if err := c.PutAsync(k, []byte("queued")); err != nil {
			t.Fatalf("PutAsync(%d): %v", k, err)
		}
	}
	if n := c.Flush(); n != 8 {
		t.Fatalf("Flush applied %d, want 8", n)
	}
	if v, ok := c.Get(nil, 3, nil); !ok || string(v) != "queued" {
		t.Fatalf("async write invisible after Flush: %q, %v", v, ok)
	}

	// Expired TTL residue is reapable across every partition.
	for k := uint64(100); k < 120; k++ {
		if _, err := c.Put(k, []byte("brief"), time.Nanosecond); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(time.Millisecond)
	if reaped := c.Reap(1000); reaped != 20 {
		t.Fatalf("Reap removed %d, want 20", reaped)
	}

	if err := c.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	ok, tok, err := c.Delete(3)
	if err != nil || !ok || tok.LSN == 0 || tok.Epoch != 1 {
		t.Fatalf("Delete(3) = %v, %+v, %v", ok, tok, err)
	}
	if ok, _, err = c.Delete(3); err != nil || ok {
		t.Fatalf("second Delete(3) = %v, %v; want a miss", ok, err)
	}

	// A token error renders a usable message.
	if terr := c.CheckToken(99, 1, []uint64{1}); terr == nil || terr.Error() == "" {
		t.Fatalf("future-epoch CheckToken = %v, want a described error", terr)
	}
}

func TestClusterRemoveDataAfterClose(t *testing.T) {
	cfg := testConfig(t, 1, 1)
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(1, []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.RemoveData(); err != nil {
		t.Fatalf("RemoveData: %v", err)
	}
	if _, err := os.Stat(cfg.Dir); !os.IsNotExist(err) {
		t.Fatalf("data dir survived RemoveData: %v", err)
	}
}

func TestClusterTTLSurvivesFailover(t *testing.T) {
	c := openCluster(t, 1, 1)
	if _, err := c.Put(1, []byte("expiring"), time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(2, []byte("expired"), time.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Failover(0); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get(nil, 1, nil); !ok || string(v) != "expiring" {
		t.Fatalf("TTL key lost in failover: %q, %v", v, ok)
	}
	if _, ok := c.Get(nil, 2, nil); ok {
		t.Fatal("expired key resurrected by failover")
	}
}
