package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	_ "github.com/bravolock/bravo/internal/locks/all"
)

func tinyKVConfig() Config {
	return Config{Interval: 5 * time.Millisecond, Runs: 1, Threads: []int{2}}
}

func TestShardedKVPoint(t *testing.T) {
	cfg := tinyKVConfig()
	r, err := ShardedKV("bravo-ba", 4, 2, 0.05, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Engine != "sharded" || r.Shards != 4 || r.Threads != 2 {
		t.Fatalf("result metadata wrong: %+v", r)
	}
	if r.Ops <= 0 || r.ThroughputOpsPerSec <= 0 {
		t.Fatalf("no operations recorded: %+v", r)
	}
	if r.FastReadFraction < 0 || r.FastReadFraction > 1 {
		t.Fatalf("bravo lock should report a fast-read fraction in [0,1], got %v", r.FastReadFraction)
	}
	if r.ReadP99Nanos < r.ReadP50Nanos {
		t.Fatalf("p99 %d < p50 %d", r.ReadP99Nanos, r.ReadP50Nanos)
	}
}

func TestShardedKVPlainLockHasNoStats(t *testing.T) {
	r, err := ShardedKV("go-rw", 2, 2, 0, 64, tinyKVConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.FastReadFraction != -1 {
		t.Fatalf("plain lock reported fast fraction %v, want -1", r.FastReadFraction)
	}
}

func TestShardedKVBaseline(t *testing.T) {
	r, err := ShardedKVBaseline("go-rw", 2, 0.05, 64, tinyKVConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Engine != "memtable" || r.Shards != 1 {
		t.Fatalf("baseline metadata wrong: %+v", r)
	}
	if r.Ops <= 0 {
		t.Fatalf("baseline recorded no operations: %+v", r)
	}
}

func TestShardedKVUnknownLock(t *testing.T) {
	if _, err := ShardedKV("no-such-lock", 2, 2, 0, 64, tinyKVConfig()); err == nil {
		t.Fatal("unknown lock accepted")
	}
	if _, err := ShardedKV("bravo-no-such-lock", 2, 2, 0, 64, tinyKVConfig()); err == nil {
		t.Fatal("unknown bravo substrate accepted")
	}
}

func TestShardedKVSweepAndJSON(t *testing.T) {
	cfg := tinyKVConfig()
	results, err := ShardedKVSweep([]string{"bravo-ba"}, []int{1, 2}, cfg.Threads, 0.01, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 baseline + 2 shard counts, each × 1 thread count.
	if len(results) != 3 {
		t.Fatalf("sweep produced %d results, want 3", len(results))
	}
	if results[0].Engine != "memtable" || results[1].Shards != 1 || results[2].Shards != 2 {
		t.Fatalf("sweep order unexpected: %+v", results)
	}

	var buf bytes.Buffer
	rep := NewShardedKVReport(cfg, results)
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded ShardedKVReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if decoded.Benchmark != "shardedkv" || len(decoded.Results) != 3 {
		t.Fatalf("decoded report wrong: %+v", decoded)
	}

	var tab bytes.Buffer
	WriteShardedKVTable(&tab, results)
	if !strings.Contains(tab.String(), "memtable") || !strings.Contains(tab.String(), "bravo-ba") {
		t.Fatalf("table missing rows:\n%s", tab.String())
	}
}
