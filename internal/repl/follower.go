package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/rwl"
)

// DefaultRetryInterval paces reconnects after a stream drops.
const DefaultRetryInterval = 100 * time.Millisecond

// Config configures a Follower.
type Config struct {
	// Primary is the primary's base URL (e.g. "http://10.0.0.1:7070"): a
	// kvserv started with -data-dir, or anything serving a Primary's
	// endpoints.
	Primary string
	// MkLock builds the follower engine's per-shard locks; nil means
	// sync.RWMutex. A BRAVO factory gives the follower the same biased
	// read fast path the primary serves with.
	MkLock rwl.Factory
	// Client issues the status fetch and the streams; nil means a fresh
	// client with no timeout (streams are long-lived by design).
	Client *http.Client
	// RetryInterval paces reconnects; 0 means DefaultRetryInterval.
	RetryInterval time.Duration
	// OnApply, when set, is called synchronously by the shard's puller
	// after each record (or snapshot frame) is applied and its LSN
	// published — the hook the model-based and chaos tests observe exact
	// intermediate states through.
	OnApply func(shard int, lsn uint64, snapshot bool)
	// Paused makes Open return without starting the pullers; the caller
	// attaches what it needs to the Follower and calls Start.
	Paused bool
}

// ShardProgress is one shard's replication position on a follower.
type ShardProgress struct {
	AppliedLSN uint64 `json:"applied_lsn"`
	Records    uint64 `json:"records"`
	Snapshots  uint64 `json:"snapshots"`
}

// Stats is a point-in-time summary of a follower's replication progress.
type Stats struct {
	Primary    string          `json:"primary"`
	Reconnects uint64          `json:"reconnects"`
	Shards     []ShardProgress `json:"shards"`
}

// Follower tails a primary's per-shard WAL streams into a volatile engine
// and serves reads from it. Open starts the pullers; reads go straight to
// Engine (or through a kvserv follower server). The follower's position
// is AppliedLSN per shard; WaitMinLSN turns a primary commit LSN into a
// read-your-writes barrier.
type Follower struct {
	cfg     Config
	primary string
	client  *http.Client
	engine  *kvs.Sharded
	shards  int

	applied    []atomic.Uint64
	records    []atomic.Uint64
	snapshots  []atomic.Uint64
	reconnects atomic.Uint64

	// notify is closed and replaced on every applied-LSN advance; waiters
	// re-check and re-arm (WaitMinLSN).
	notifyMu sync.Mutex
	notify   chan struct{}

	runMu  sync.Mutex
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Open connects to the primary, sizes a volatile engine to its shard
// count, and starts one puller per shard. Each puller bootstraps through
// the stream itself: a fresh follower asks for LSN 1 and the primary
// decides between full history and a snapshot frame.
func Open(cfg Config) (*Follower, error) {
	f := &Follower{
		cfg:     cfg,
		primary: strings.TrimRight(cfg.Primary, "/"),
		client:  cfg.Client,
		notify:  make(chan struct{}),
	}
	if f.primary == "" {
		return nil, errors.New("repl: Config.Primary is required")
	}
	if f.client == nil {
		f.client = &http.Client{}
	}
	if f.cfg.RetryInterval <= 0 {
		f.cfg.RetryInterval = DefaultRetryInterval
	}
	mk := cfg.MkLock
	if mk == nil {
		mk = func() rwl.RWLock { return new(stdrw.Lock) }
	}
	st, err := f.PrimaryStatus()
	if err != nil {
		return nil, fmt.Errorf("repl: primary status: %w", err)
	}
	if !st.Durable {
		return nil, errors.New("repl: primary is volatile — it has no WAL to ship (start it with -data-dir)")
	}
	engine, err := kvs.NewSharded(st.Shards, mk)
	if err != nil {
		return nil, fmt.Errorf("repl: building follower engine: %w", err)
	}
	f.engine = engine
	f.shards = st.Shards
	f.applied = make([]atomic.Uint64, st.Shards)
	f.records = make([]atomic.Uint64, st.Shards)
	f.snapshots = make([]atomic.Uint64, st.Shards)
	if !cfg.Paused {
		f.Start()
	}
	return f, nil
}

// Engine returns the follower's read-only engine. Callers read from it
// (Get/GetH/MultiGet/Range/Stats); writing to it would diverge the replica
// and is the caller's bug.
func (f *Follower) Engine() *kvs.Sharded { return f.engine }

// Primary returns the primary's base URL.
func (f *Follower) Primary() string { return f.primary }

// NumShards returns the replicated shard count.
func (f *Follower) NumShards() int { return f.shards }

// AppliedLSN returns the LSN of the last record applied to shard i.
func (f *Follower) AppliedLSN(i int) uint64 { return f.applied[i].Load() }

// AppliedLSNs returns every shard's applied LSN.
func (f *Follower) AppliedLSNs() []uint64 {
	out := make([]uint64, f.shards)
	for i := range out {
		out[i] = f.applied[i].Load()
	}
	return out
}

// Stats summarizes the follower's progress.
func (f *Follower) Stats() Stats {
	st := Stats{Primary: f.primary, Reconnects: f.reconnects.Load(), Shards: make([]ShardProgress, f.shards)}
	for i := range st.Shards {
		st.Shards[i] = ShardProgress{
			AppliedLSN: f.applied[i].Load(),
			Records:    f.records[i].Load(),
			Snapshots:  f.snapshots[i].Load(),
		}
	}
	return st
}

// PrimaryStatus fetches the primary's /repl/status — the other half of a
// lag computation (primary LSN minus AppliedLSN, per shard).
func (f *Follower) PrimaryStatus() (Status, error) {
	var st Status
	resp, err := f.client.Get(f.primary + "/repl/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return st, fmt.Errorf("repl: status %s from %s/repl/status", resp.Status, f.primary)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, err
	}
	if st.Shards <= 0 {
		return st, fmt.Errorf("repl: primary reports %d shards", st.Shards)
	}
	return st, nil
}

// Start launches the pullers if they are not running. Open calls it; after
// a Stop, Start resumes each shard from its applied LSN (the state and
// position survive the pause — "resume", as opposed to a fresh Open's
// snapshot bootstrap).
func (f *Follower) Start() {
	f.runMu.Lock()
	defer f.runMu.Unlock()
	if f.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	for i := 0; i < f.shards; i++ {
		f.wg.Add(1)
		go f.run(ctx, i)
	}
}

// Stop halts the pullers, keeping the engine and the applied positions.
// Reads keep working against the frozen replica; Start resumes tailing.
func (f *Follower) Stop() {
	f.runMu.Lock()
	defer f.runMu.Unlock()
	if f.cancel == nil {
		return
	}
	f.cancel()
	f.cancel = nil
	f.wg.Wait()
}

// Close stops the pullers. The engine remains readable (a decommissioned
// replica is still a consistent, if stale, cache).
func (f *Follower) Close() error {
	f.Stop()
	return nil
}

// WaitMinLSN blocks until shard's applied LSN reaches lsn, or timeout
// elapses; it reports whether the barrier was met. This is the follower
// half of a read-your-writes token: the client carries the primary's
// commit LSN, the follower holds the read until it is covered.
func (f *Follower) WaitMinLSN(shard int, lsn uint64, timeout time.Duration) bool {
	if shard < 0 || shard >= f.shards {
		return false
	}
	deadline := time.Now().Add(timeout)
	for {
		if f.applied[shard].Load() >= lsn {
			return true
		}
		f.notifyMu.Lock()
		ch := f.notify
		f.notifyMu.Unlock()
		if f.applied[shard].Load() >= lsn {
			return true
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			return f.applied[shard].Load() >= lsn
		}
		t := time.NewTimer(wait)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			return f.applied[shard].Load() >= lsn
		}
	}
}

// WaitCaughtUp fetches the primary's current LSNs and blocks until every
// shard has applied at least that much (a quiescence barrier for tests and
// orchestration, not a guarantee the primary stopped writing).
func (f *Follower) WaitCaughtUp(timeout time.Duration) error {
	st, err := f.PrimaryStatus()
	if err != nil {
		return err
	}
	deadline := time.Now().Add(timeout)
	for i, want := range st.LSNs {
		if i >= f.shards {
			break
		}
		if !f.WaitMinLSN(i, want, time.Until(deadline)) {
			return fmt.Errorf("repl: shard %d stuck at LSN %d, primary at %d", i, f.applied[i].Load(), want)
		}
	}
	return nil
}

// run is one shard's puller: stream, apply, reconnect, forever.
func (f *Follower) run(ctx context.Context, shard int) {
	defer f.wg.Done()
	for ctx.Err() == nil {
		err := f.streamOnce(ctx, shard)
		if ctx.Err() != nil {
			return
		}
		_ = err // every exit from a live stream is a reconnect
		f.reconnects.Add(1)
		select {
		case <-ctx.Done():
			return
		case <-time.After(f.cfg.RetryInterval):
		}
	}
}

// streamOnce opens one stream from the shard's current position and
// applies it until it breaks. Any return is followed by a reconnect from
// applied+1, so the only invariant that matters here is exactly-once
// apply in LSN order — duplicates skipped, gaps refused.
func (f *Follower) streamOnce(ctx context.Context, shard int) error {
	from := f.applied[shard].Load() + 1
	url := fmt.Sprintf("%s/repl/stream?shard=%d&from=%d", f.primary, shard, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("repl: stream status %s", resp.Status)
	}
	buf := make([]byte, 0, 64<<10)
	tmp := make([]byte, 32<<10)
	for {
		// Apply every complete frame buffered so far.
		off := 0
		for {
			rec, n, derr := kvs.DecodeReplFrame(buf[off:])
			if derr != nil {
				return derr // corrupt frame: drop the stream, resync
			}
			if n == 0 {
				break
			}
			if aerr := f.apply(shard, rec); aerr != nil {
				return aerr
			}
			off += n
		}
		if off > 0 {
			buf = append(buf[:0], buf[off:]...)
		}
		n, rerr := resp.Body.Read(tmp)
		if n > 0 {
			buf = append(buf, tmp[:n]...)
		}
		if rerr != nil {
			if rerr == io.EOF {
				rerr = errors.New("repl: stream closed by primary")
			}
			return rerr
		}
	}
}

// apply applies one decoded record in-order: snapshot frames replace the
// shard at their LSN, incremental records must continue the sequence.
// Duplicates (the boundary record a reconnect replays) are skipped.
func (f *Follower) apply(shard int, rec kvs.ReplRecord) error {
	applied := f.applied[shard].Load()
	if !rec.Snapshot {
		if rec.LSN <= applied {
			return nil
		}
		if rec.LSN != applied+1 {
			return fmt.Errorf("repl: stream gap on shard %d: LSN %d after %d", shard, rec.LSN, applied)
		}
	}
	if err := f.engine.ApplyReplRecord(shard, rec); err != nil {
		return err
	}
	f.applied[shard].Store(rec.LSN)
	f.records[shard].Add(1)
	if rec.Snapshot {
		f.snapshots[shard].Add(1)
	}
	f.notifyMu.Lock()
	close(f.notify)
	f.notify = make(chan struct{})
	f.notifyMu.Unlock()
	if f.cfg.OnApply != nil {
		f.cfg.OnApply(shard, rec.LSN, rec.Snapshot)
	}
	return nil
}
