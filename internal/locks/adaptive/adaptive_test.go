package adaptive

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/bravolock/bravo/internal/bias"
	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/rwl"
)

func newAdaptive() *Lock {
	return New(core.New(new(stdrw.Lock), core.WithTable(core.NewTable(core.DefaultTableSize))))
}

// TestAdaptorWiredIntoEngine verifies the construction contract: the inner
// engine consults the adaptor, so bias cannot re-enable in fair or neutral
// mode.
func TestAdaptorWiredIntoEngine(t *testing.T) {
	l := newAdaptive()
	eng := l.Engine()
	if eng == nil || eng.AdaptorInUse() != l.Adaptor() {
		t.Fatal("adaptor not wired into the inner bias engine")
	}
	// Read in biased mode: bias enables.
	tok := l.RLock()
	l.RUnlock(tok)
	if !eng.Enabled() {
		t.Fatal("bias did not enable in biased mode")
	}
	// Demote; the next writer revokes, and reads no longer re-enable.
	l.Adaptor().ForceMode(bias.ModeNeutral)
	l.Lock()
	l.Unlock()
	if eng.Enabled() {
		t.Fatal("bias survived a writer after demotion")
	}
	tok = l.RLock()
	l.RUnlock(tok)
	if eng.Enabled() {
		t.Fatal("bias re-enabled in neutral mode")
	}
}

// TestMutualExclusionAcrossFlips is the core safety property: readers and
// writers stay mutually excluded while the mode is flipped underneath them,
// including readers that acquired on one mode and release on another.
func TestMutualExclusionAcrossFlips(t *testing.T) {
	l := newAdaptive()
	var readers, writers atomic.Int32
	var violations atomic.Int32
	var stop atomic.Bool

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := rwl.NewReader()
			for i := 0; i < 3000; i++ {
				switch {
				case (g+i)%5 == 0:
					l.Lock()
					if writers.Add(1) != 1 || readers.Load() != 0 {
						violations.Add(1)
					}
					writers.Add(-1)
					l.Unlock()
				case g%2 == 0:
					tok := l.RLockH(h)
					readers.Add(1)
					if writers.Load() != 0 {
						violations.Add(1)
					}
					readers.Add(-1)
					l.RUnlockH(h, tok)
				default:
					tok := l.RLock()
					readers.Add(1)
					if writers.Load() != 0 {
						violations.Add(1)
					}
					readers.Add(-1)
					l.RUnlock(tok)
				}
			}
		}(g)
	}
	modes := []bias.Mode{bias.ModeFair, bias.ModeNeutral, bias.ModeBiased}
	flipDone := make(chan struct{})
	go func() {
		defer close(flipDone)
		for i := 0; !stop.Load(); i++ {
			l.Adaptor().ForceMode(modes[i%len(modes)])
			runtime.Gosched()
		}
	}()
	wg.Wait()
	stop.Store(true)
	<-flipDone
	if n := violations.Load(); n != 0 {
		t.Fatalf("mutual exclusion violated %d times across mode flips", n)
	}
}

// TestTokenRouting verifies a read acquired in fair mode releases through
// the gate even if the mode flipped before the unlock.
func TestTokenRouting(t *testing.T) {
	l := newAdaptive()
	l.Adaptor().ForceMode(bias.ModeFair)
	tok := l.RLock()
	if tok&fairBit == 0 {
		t.Fatal("fair-mode read not tagged with the gate bit")
	}
	l.Adaptor().ForceMode(bias.ModeBiased)
	l.RUnlock(tok) // must release the gate, not the inner lock
	if l.fair.Queued() != 0 {
		t.Fatal("fair gate still held after cross-mode release")
	}
	// And the lock is fully usable afterwards.
	l.Lock()
	l.Unlock()
}

// TestTryPaths exercises TryRLock/TryLock in each mode.
func TestTryPaths(t *testing.T) {
	l := newAdaptive()
	for _, m := range []bias.Mode{bias.ModeBiased, bias.ModeNeutral, bias.ModeFair} {
		l.Adaptor().ForceMode(m)
		tok, ok := l.TryRLock()
		if !ok {
			t.Fatalf("mode %v: TryRLock failed on idle lock", m)
		}
		if !l.TryLock() {
			// A reader is holding it; a try-writer must fail.
		} else {
			t.Fatalf("mode %v: TryLock succeeded under a reader", m)
		}
		l.RUnlock(tok)
		if !l.TryLock() {
			t.Fatalf("mode %v: TryLock failed on idle lock", m)
		}
		if _, ok := l.TryRLock(); ok {
			t.Fatalf("mode %v: TryRLock succeeded under a writer", m)
		}
		l.Unlock()
	}
}

// TestWritersAlwaysTakeGate pins the invariant the exclusion proof rests
// on: a held write lock blocks fair-gate readers in every mode.
func TestWritersAlwaysTakeGate(t *testing.T) {
	l := newAdaptive()
	l.Lock()
	if _, ok := l.fair.TryRLock(); ok {
		t.Fatal("fair gate admitted a reader while a writer holds the lock")
	}
	l.Unlock()
}
