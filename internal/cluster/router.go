// Package cluster scales the engine's bet one level up. The paper's core
// move is letting reads fan out to cheap distributed structures while
// writes serialize through a narrow path; a single replicated primary (PR
// 5) applies that between machines but still funnels every write of the
// whole keyspace through one process. Here the keyspace is spread across N
// partitioned primaries by rendezvous hashing, each with its own follower
// set, and the narrow path a failure squeezes through is promotion: when a
// primary dies, the most-caught-up follower is promoted at an exact
// per-shard LSN cut, and a monotonically increasing fencing epoch —
// stamped into every read-your-writes token — guarantees a revived old
// primary can never commit again.
package cluster

import (
	"fmt"

	"github.com/bravolock/bravo/internal/hash"
)

// Router maps keys to partitions by rendezvous hashing over stable
// partition IDs. Routing is total and deterministic (every key maps to
// exactly one live partition, the same one wherever the ID set agrees) and
// minimally disruptive: changing the membership by one ID moves only the
// keys whose top rendezvous score involved it — an expected 1/N of the
// keyspace on join, exactly the departed ID's keys on leave.
type Router struct {
	ids []uint64
}

// NewRouter builds a router over the given partition IDs. IDs must be
// non-empty and unique; they are identity, not position, so the mapping
// survives reordering of the slice.
func NewRouter(ids []uint64) (*Router, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one partition")
	}
	seen := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate partition ID %d", id)
		}
		seen[id] = true
	}
	return &Router{ids: append([]uint64(nil), ids...)}, nil
}

// NumPartitions returns the member count.
func (r *Router) NumPartitions() int { return len(r.ids) }

// IDs returns a copy of the membership.
func (r *Router) IDs() []uint64 { return append([]uint64(nil), r.ids...) }

// Partition returns the index (into the ID slice) of the partition owning
// key.
func (r *Router) Partition(key uint64) int {
	return hash.RendezvousOwner(key, r.ids)
}

// Split groups positions of keys by owning partition: Split(keys)[p] lists
// the indices i with Partition(keys[i]) == p. The front-ends use it to fan
// a batch out onto each partition's shard-grouping pass with one engine
// call per partition.
func (r *Router) Split(keys []uint64) [][]int {
	groups := make([][]int, len(r.ids))
	for i, k := range keys {
		p := r.Partition(k)
		groups[p] = append(groups[p], i)
	}
	return groups
}
