package kvs

import (
	"testing"
)

func TestSeqIndexPutLookupDelete(t *testing.T) {
	var st seqStore
	st.data = make(map[uint64]*seqCell)
	if c := st.idx.lookup(7); c != nil {
		t.Fatal("lookup on empty index hit")
	}
	cells := map[uint64]*seqCell{}
	for k := uint64(0); k < 200; k++ {
		c := newSeqCell([]byte{byte(k)}, 0)
		st.data[k] = c
		st.idx.put(st.data, k, c)
		cells[k] = c
	}
	for k := uint64(0); k < 200; k++ {
		if got := st.idx.lookup(k); got != cells[k] {
			t.Fatalf("lookup(%d) = %p, want %p", k, got, cells[k])
		}
	}
	if got := st.idx.lookup(999); got != nil {
		t.Fatal("absent key hit")
	}
	// Delete half; survivors must stay reachable through the tombstones.
	for k := uint64(0); k < 200; k += 2 {
		delete(st.data, k)
		st.idx.del(k)
	}
	for k := uint64(0); k < 200; k++ {
		got := st.idx.lookup(k)
		if k%2 == 0 && got != nil {
			t.Fatalf("deleted key %d still resolves", k)
		}
		if k%2 == 1 && got != cells[k] {
			t.Fatalf("survivor %d lost after deletions", k)
		}
	}
}

func TestSeqIndexUpdateRepublishesCell(t *testing.T) {
	var st seqStore
	st.data = make(map[uint64]*seqCell)
	c1 := newSeqCell([]byte("one"), 0)
	st.data[5] = c1
	st.idx.put(st.data, 5, c1)
	c2 := newSeqCell([]byte("twotwotwo"), 0) // outgrows c1: replacement cell
	st.data[5] = c2
	st.idx.put(st.data, 5, c2)
	if got := st.idx.lookup(5); got != c2 {
		t.Fatal("index still resolves the outgrown cell")
	}
}

func TestSeqIndexTombstoneReuseAndRebuild(t *testing.T) {
	var st seqStore
	st.data = make(map[uint64]*seqCell)
	// Churn keys through insert/delete cycles well past the minimum table
	// size: tombstone accumulation must trigger rebuilds, not lookup decay.
	for round := 0; round < 50; round++ {
		for k := uint64(0); k < 40; k++ {
			c := newSeqCell([]byte{byte(round)}, 0)
			st.data[k] = c
			st.idx.put(st.data, k, c)
		}
		for k := uint64(0); k < 40; k++ {
			if got := st.idx.lookup(k); got == nil || got.bytes()[0] != byte(round) {
				t.Fatalf("round %d: key %d resolves wrong cell", round, k)
			}
		}
		for k := uint64(0); k < 40; k++ {
			delete(st.data, k)
			st.idx.del(k)
		}
	}
	for k := uint64(0); k < 40; k++ {
		if st.idx.lookup(k) != nil {
			t.Fatalf("key %d resolves after final deletion round", k)
		}
	}
	tab := st.idx.tab.Load()
	if tab == nil {
		t.Fatal("index never allocated a table")
	}
	if len(tab.slots) > 1024 {
		t.Fatalf("table grew to %d slots for a 40-key working set; tombstones leak", len(tab.slots))
	}
}

func TestSeqStoreResetDropsIndex(t *testing.T) {
	var st seqStore
	st.data = make(map[uint64]*seqCell)
	st.putLocked(1, []byte("a"), 0)
	st.replaceLocked(0)
	if st.idx.lookup(1) != nil {
		t.Fatal("index survived replaceLocked")
	}
	if len(st.data) != 0 {
		t.Fatal("map survived replaceLocked")
	}
	// The store must be fully usable after the reset.
	st.putLocked(2, []byte("b"), 0)
	if c := st.idx.lookup(2); c == nil || string(c.bytes()) != "b" {
		t.Fatal("post-reset insert not indexed")
	}
}
