package kvs

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// openTestKV opens a durable engine over dir with plain locks.
func openTestKV(t *testing.T, dir string, shards int, policy SyncPolicy) *Sharded {
	t.Helper()
	s, err := OpenSharded(dir, shards, mkStd, policy)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTestKV(t, dir, 4, SyncAlways)
	s.Put(1, []byte("one"))
	s.Put(2, []byte("two"))
	s.PutTTL(3, []byte("soon"), time.Hour)
	s.Put(4, []byte("gone"))
	s.Delete(4)
	s.MultiPut([]uint64{5, 6}, [][]byte{[]byte("five"), []byte("six")})
	s.MultiDelete([]uint64{6})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openTestKV(t, dir, 4, SyncAlways)
	defer r.Close()
	want := map[uint64]string{1: "one", 2: "two", 3: "soon", 5: "five"}
	snap := r.Snapshot()
	if len(snap) != len(want) {
		t.Fatalf("recovered %d keys %v, want %d", len(snap), snap, len(want))
	}
	for k, v := range want {
		got, ok := r.Get(k)
		if !ok || string(got) != v {
			t.Fatalf("recovered Get(%d) = %q, %v; want %q", k, got, ok, v)
		}
	}
	for _, k := range []uint64{4, 6} {
		if _, ok := r.Get(k); ok {
			t.Fatalf("deleted key %d survived recovery", k)
		}
	}
}

func TestDurableRecoveryWithoutClose(t *testing.T) {
	dir := t.TempDir()
	s := openTestKV(t, dir, 2, SyncNone)
	s.Put(10, []byte("a"))
	s.Put(11, []byte("b"))
	// No Close: the "crash". Records hit the file at write time, so they
	// must all be recoverable.
	r := openTestKV(t, dir, 2, SyncNone)
	defer r.Close()
	for k, v := range map[uint64]string{10: "a", 11: "b"} {
		if got, ok := r.Get(k); !ok || string(got) != v {
			t.Fatalf("Get(%d) = %q, %v after crash recovery", k, got, ok)
		}
	}
}

func TestDurableTTLSurvivesRestartAsRemaining(t *testing.T) {
	dir := t.TempDir()
	s := openTestKV(t, dir, 1, SyncAlways)
	s.PutTTL(1, []byte("live"), time.Hour)
	s.putDeadline(2, []byte("dead"), -1) // born expired
	s.Close()

	r := openTestKV(t, dir, 1, SyncAlways)
	defer r.Close()
	if _, ok := r.Get(1); !ok {
		t.Fatal("hour-long TTL expired across an instant restart")
	}
	if _, ok := r.Get(2); ok {
		t.Fatal("born-expired key became visible after recovery")
	}
	// The far-future saturation case: MaxInt64 deadline must not wrap.
	s2 := openTestKV(t, t.TempDir(), 1, SyncAlways)
	s2.putDeadline(3, []byte("forever"), math.MaxInt64)
	dir2 := s2.Dir()
	s2.Close()
	r2 := openTestKV(t, dir2, 1, SyncAlways)
	defer r2.Close()
	if _, ok := r2.Get(3); !ok {
		t.Fatal("saturated deadline expired across restart")
	}
}

func TestDurableAsyncFlushIsLogged(t *testing.T) {
	dir := t.TempDir()
	s := openTestKV(t, dir, 2, SyncNone)
	s.PutAsync(1, []byte("q1"))
	s.PutAsync(2, []byte("q2"))
	s.Flush()
	s.PutAsync(3, []byte("never-applied"))
	// Crash without Close: the queued-but-unapplied write was never logged.
	r := openTestKV(t, dir, 2, SyncNone)
	defer r.Close()
	for k, v := range map[uint64]string{1: "q1", 2: "q2"} {
		if got, ok := r.Get(k); !ok || string(got) != v {
			t.Fatalf("flushed async write %d = %q, %v after recovery", k, got, ok)
		}
	}
	if _, ok := r.Get(3); ok {
		t.Fatal("an async write that never applied was recovered")
	}
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openTestKV(t, dir, 2, SyncAlways)
	for k := uint64(0); k < 64; k++ {
		s.Put(k, EncodeValue(k))
	}
	s.Delete(7)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Logs are truncated: fresh records only after the checkpoint.
	for i := 0; i < s.NumShards(); i++ {
		st, err := os.Stat(s.walPath(i))
		if err != nil {
			t.Fatalf("wal %d: %v", i, err)
		}
		if st.Size() != 0 {
			t.Fatalf("wal %d is %d bytes after checkpoint, want 0", i, st.Size())
		}
		if _, err := os.Stat(s.walOldPath(i)); !os.IsNotExist(err) {
			t.Fatalf("wal.old %d survived the checkpoint", i)
		}
	}
	s.Put(100, []byte("tail"))
	total := s.Stats().Total()
	if total.Checkpoints != uint64(s.NumShards()) {
		t.Fatalf("Checkpoints = %d, want %d", total.Checkpoints, s.NumShards())
	}
	s.Close()

	r := openTestKV(t, dir, 2, SyncAlways)
	defer r.Close()
	if n := len(r.Snapshot()); n != 64 { // 64 puts - delete + tail
		t.Fatalf("recovered %d keys, want 64", n)
	}
	if _, ok := r.Get(7); ok {
		t.Fatal("checkpoint resurrected a deleted key")
	}
	if v, ok := r.Get(100); !ok || string(v) != "tail" {
		t.Fatal("post-checkpoint tail record lost")
	}
}

// TestCheckpointCompactsExpired: expired residue is dropped from the
// snapshot, so recovery starts clean.
func TestCheckpointCompactsExpired(t *testing.T) {
	dir := t.TempDir()
	s := openTestKV(t, dir, 1, SyncAlways)
	s.putDeadline(1, []byte("dead"), -1)
	s.Put(2, []byte("live"))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := openTestKV(t, dir, 1, SyncAlways)
	defer r.Close()
	if n := r.Len(); n != 1 {
		t.Fatalf("recovered %d resident keys, want 1 (expired residue compacted)", n)
	}
}

// TestRecoveryCrashWindows drives the opener through the on-disk states a
// crash can leave mid-checkpoint, by file surgery.
func TestRecoveryCrashWindows(t *testing.T) {
	// Window 1: crash after rotation, before the snapshot rename —
	// old snapshot + complete wal.old + fresh wal tail.
	t.Run("after-rotate", func(t *testing.T) {
		dir := t.TempDir()
		s := openTestKV(t, dir, 1, SyncAlways)
		s.Put(1, []byte("v1"))
		s.Checkpoint() // produces shard-0000.snap, empty wal
		s.Put(2, []byte("v2"))
		s.Close()
		// Simulate: wal → wal.old, empty wal, snapshot still the old one.
		if err := os.Rename(s.walPath(0), s.walOldPath(0)); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(s.walPath(0), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		r := openTestKV(t, dir, 1, SyncAlways)
		defer r.Close()
		for k, v := range map[uint64]string{1: "v1", 2: "v2"} {
			if got, ok := r.Get(k); !ok || string(got) != v {
				t.Fatalf("Get(%d) = %q, %v", k, got, ok)
			}
		}
		// Recovery re-ran the checkpoint: wal.old is gone again.
		if _, err := os.Stat(r.walOldPath(0)); !os.IsNotExist(err) {
			t.Fatal("recovery left wal.old behind")
		}
	})

	// Window 2: crash between snapshot rename and wal.old removal — the
	// new snapshot already covers wal.old, replay must be idempotent.
	t.Run("after-snap-rename", func(t *testing.T) {
		dir := t.TempDir()
		s := openTestKV(t, dir, 1, SyncAlways)
		s.Put(1, []byte("a"))
		s.Put(1, []byte("b")) // overwrite: final record must win twice
		s.Delete(9)
		s.Checkpoint()
		s.Close()
		// Reconstruct the covered generation: the checkpoint deleted
		// wal.old, so rebuild it as "records the snapshot covers" by
		// replaying the same ops into a scratch dir and stealing its wal.
		scratch := t.TempDir()
		s2 := openTestKV(t, scratch, 1, SyncAlways)
		s2.Put(1, []byte("a"))
		s2.Put(1, []byte("b"))
		s2.Delete(9)
		s2.Close()
		walOld, err := os.ReadFile(s2.walPath(0))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(s.walOldPath(0), walOld, 0o644); err != nil {
			t.Fatal(err)
		}
		r := openTestKV(t, dir, 1, SyncAlways)
		defer r.Close()
		if got, ok := r.Get(1); !ok || string(got) != "b" {
			t.Fatalf("Get(1) = %q, %v; want \"b\"", got, ok)
		}
		if n := len(r.Snapshot()); n != 1 {
			t.Fatalf("recovered %d keys, want 1", n)
		}
	})

	// Leftover .snap.tmp from an interrupted snapshot write is discarded.
	t.Run("snap-tmp-garbage", func(t *testing.T) {
		dir := t.TempDir()
		s := openTestKV(t, dir, 1, SyncAlways)
		s.Put(1, []byte("x"))
		s.Close()
		if err := os.WriteFile(s.snapPath(0)+".tmp", []byte("half a snapsho"), 0o644); err != nil {
			t.Fatal(err)
		}
		r := openTestKV(t, dir, 1, SyncAlways)
		defer r.Close()
		if _, ok := r.Get(1); !ok {
			t.Fatal("recovery failed under a leftover .snap.tmp")
		}
		if _, err := os.Stat(r.snapPath(0) + ".tmp"); !os.IsNotExist(err) {
			t.Fatal(".snap.tmp not cleaned up")
		}
	})
}

// TestRotateMergesExistingOldGeneration: when a checkpoint dies between
// its rotation and its snapshot publish, wal.old holds the only copy of
// that generation's records. A retried checkpoint's rotation must merge
// the current log into it — renaming over it would destroy acknowledged
// writes if the retry then crashes before publishing.
func TestRotateMergesExistingOldGeneration(t *testing.T) {
	dir := t.TempDir()
	s := openTestKV(t, dir, 1, SyncAlways)
	s.Put(1, []byte("first-generation"))
	w := s.shards[0].wal
	// A checkpoint's rotation, with the checkpoint then dying before its
	// snapshot publish: wal.old now holds record 1, covered by no snapshot.
	w.mu.Lock()
	err := w.rotate(s.walPath(0), s.walOldPath(0))
	w.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	s.Put(2, []byte("second-generation"))
	// The retry's rotation step: wal.old already exists and must absorb,
	// not lose, the current log.
	w.mu.Lock()
	err = w.rotate(s.walPath(0), s.walOldPath(0))
	w.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	s.Put(3, []byte("tail"))
	// Crash: no Close, and no snapshot was ever published.
	r := openTestKV(t, dir, 1, SyncAlways)
	defer r.Close()
	for k, v := range map[uint64]string{1: "first-generation", 2: "second-generation", 3: "tail"} {
		if got, ok := r.Get(k); !ok || string(got) != v {
			t.Fatalf("Get(%d) = %q, %v; want %q — a rotation clobbered the uncovered generation", k, got, ok, v)
		}
	}
	// Recovery collapsed the interrupted checkpoint: wal.old pruned.
	if _, err := os.Stat(r.walOldPath(0)); !os.IsNotExist(err) {
		t.Fatal("recovery left wal.old behind")
	}
}

func TestManifestPinsShardCount(t *testing.T) {
	dir := t.TempDir()
	s := openTestKV(t, dir, 4, SyncNone)
	s.Put(1, []byte("x"))
	s.Close()
	if _, err := OpenSharded(dir, 8, mkStd, SyncNone); err == nil {
		t.Fatal("reopening with a different shard count was accepted")
	} else if !strings.Contains(err.Error(), "4 shards") {
		t.Fatalf("mismatch error %q does not name the recorded count", err)
	}
	// Same count still opens.
	r := openTestKV(t, dir, 4, SyncNone)
	r.Close()
	// Shard files without a MANIFEST are refused, not guessed at.
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(dir, 4, mkStd, SyncNone); err == nil {
		t.Fatal("shard files without MANIFEST were accepted")
	}
}

func TestVolatileEngineRejectsDurableOps(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	if err := s.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a volatile engine succeeded")
	}
	if s.Durable() || s.Dir() != "" || s.WALError() != nil {
		t.Fatal("volatile engine claims durability state")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("volatile Close: %v", err)
	}
	total := s.Stats().Total()
	if total.WALRecords != 0 || total.WALBytes != 0 {
		t.Fatal("volatile engine counted WAL traffic")
	}
}

func TestCloseIsIdempotentAndLateWritesDegrade(t *testing.T) {
	dir := t.TempDir()
	s := openTestKV(t, dir, 1, SyncAlways)
	s.Put(1, []byte("x"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// A write after Close stays visible in memory but records a WAL error.
	s.Put(2, []byte("late"))
	if _, ok := s.Get(2); !ok {
		t.Fatal("late write lost from memory")
	}
	if err := s.WALError(); err == nil {
		t.Fatal("late write did not record a WAL error")
	}
	if s.Stats().Total().WALErrors == 0 {
		t.Fatal("WALErrors counter did not move")
	}
}

func TestSyncPolicyFlagRoundTrip(t *testing.T) {
	for _, p := range []SyncPolicy{SyncNone, SyncAlways} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseSyncPolicy("fsync-sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestDurableStatsCountGroupCommit: one MultiPut over one shard is one WAL
// record carrying the whole group — the amortization the design claims.
func TestDurableStatsCountGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s := openTestKV(t, dir, 1, SyncAlways)
	defer s.Close()
	keys := make([]uint64, 32)
	vals := make([][]byte, 32)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = EncodeValue(uint64(i))
	}
	s.MultiPut(keys, vals)
	total := s.Stats().Total()
	if total.WALRecords != 1 || total.WALKeys != 32 {
		t.Fatalf("WAL records/keys = %d/%d, want 1/32 (group commit)", total.WALRecords, total.WALKeys)
	}
	if total.WALSyncs != 1 {
		t.Fatalf("WALSyncs = %d, want 1 fsync for the whole batch", total.WALSyncs)
	}
	s.Put(99, []byte("single"))
	total = s.Stats().Total()
	if total.WALRecords != 2 || total.WALKeys != 33 {
		t.Fatalf("after single put: records/keys = %d/%d, want 2/33", total.WALRecords, total.WALKeys)
	}
}
