module github.com/bravolock/bravo

go 1.22
