package percpu

import (
	"testing"
	"unsafe"

	"github.com/bravolock/bravo/internal/arch"
	"github.com/bravolock/bravo/internal/lockcheck"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/topo"
)

var testTopo = topo.Topology{Sockets: 2, CoresPerSocket: 2, ThreadsPerCore: 2}

func mk() rwl.RWLock { return New(testTopo) }

func TestExclusion(t *testing.T) {
	lockcheck.Exclusion(t, mk, 4, 2, 1000)
}

func TestExclusionWriteHeavy(t *testing.T) {
	lockcheck.Exclusion(t, mk, 2, 3, 800)
}

func TestReadersConcurrent(t *testing.T) {
	lockcheck.ReadersConcurrent(t, mk())
}

func TestWriterExcludesReaders(t *testing.T) {
	lockcheck.WriterExcludesReaders(t, mk())
}

func TestTokenIdentifiesSubLock(t *testing.T) {
	l := New(testTopo)
	for i := 0; i < 100; i++ {
		tok := l.RLock()
		if int(tok) >= testTopo.NumCPUs() {
			t.Fatalf("token %d exceeds CPU count %d", tok, testTopo.NumCPUs())
		}
		l.RUnlock(tok)
	}
}

func TestFootprintScalesWithCPUs(t *testing.T) {
	// The paper: "Per-CPU consists of one instance of BA for each logical
	// CPU, yielding a lock size of 9216 bytes on our 72-way system" — i.e.
	// 128 bytes per CPU. Our sub-lock is padded to the sector size, so the
	// footprint must be NumCPUs × a sector multiple.
	l := New(topo.X52)
	per := l.Footprint() / topo.X52.NumCPUs()
	if per%arch.SectorSize != 0 {
		t.Errorf("per-CPU sub-lock footprint %d is not sector aligned", per)
	}
	if l.Footprint() < topo.X52.NumCPUs()*arch.SectorSize {
		t.Errorf("footprint %d smaller than one sector per CPU", l.Footprint())
	}
}

func TestSubLockPadding(t *testing.T) {
	if unsafe.Sizeof(sub{})%arch.SectorSize != 0 {
		t.Fatalf("sub-lock size %d not a sector multiple", unsafe.Sizeof(sub{}))
	}
}

func TestInvalidTopologyFallsBack(t *testing.T) {
	l := New(topo.Topology{})
	if len(l.subs) < 1 {
		t.Fatal("invalid topology produced zero sub-locks")
	}
	tok := l.RLock()
	l.RUnlock(tok)
}
