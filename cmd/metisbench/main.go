// Command metisbench regenerates the paper's Metis experiments (Tables 1–2,
// §6.3): the wc and wrmem MapReduce applications over an address space
// whose mmap_sem is the stock or BRAVO rwsem. The metric is wall-clock
// runtime, as in the paper's tables, with the speedup column
// (stock − BRAVO)/stock.
//
// Examples:
//
//	metisbench -app wc
//	metisbench -app wrmem -threads 1,2,4,8 -words 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/bravolock/bravo/internal/bench"
	"github.com/bravolock/bravo/internal/cliutil"
)

var (
	appFlag     = flag.String("app", "wc", "wc or wrmem")
	threadsFlag = flag.String("threads", "1,2,4,8,16,32,72,108,142", "worker counts (paper's Table 1–2 rows)")
	wordsFlag   = flag.Int("words", 200000, "wc corpus words / wrmem words per split")
	runsFlag    = flag.Int("runs", 3, "runs per point; median reported")
)

func main() {
	flag.Parse()
	threads, err := cliutil.ParseInts(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metisbench:", err)
		os.Exit(1)
	}
	run := func(k bench.Kernel, workers int) time.Duration {
		best := make([]time.Duration, 0, *runsFlag)
		for i := 0; i < *runsFlag; i++ {
			var d time.Duration
			switch *appFlag {
			case "wc":
				d = bench.MetisWC(k, workers, *wordsFlag)
			case "wrmem":
				d = bench.MetisWrmem(k, workers, *wordsFlag/10)
			default:
				fmt.Fprintf(os.Stderr, "metisbench: unknown app %q\n", *appFlag)
				os.Exit(1)
			}
			best = append(best, d)
		}
		// Median.
		for i := range best {
			for j := i + 1; j < len(best); j++ {
				if best[j] < best[i] {
					best[i], best[j] = best[j], best[i]
				}
			}
		}
		return best[len(best)/2]
	}
	fmt.Printf("# Table %s: Metis %s runtime (native)\n", map[string]string{"wc": "1", "wrmem": "2"}[*appFlag], *appFlag)
	fmt.Printf("%-10s %14s %14s %10s\n", "#threads", "stock", "BRAVO", "speedup")
	for _, tc := range threads {
		s := run(bench.Stock, tc)
		b := run(bench.Bravo, tc)
		fmt.Printf("%-10d %14v %14v %9.1f%%\n", tc, s.Round(time.Millisecond), b.Round(time.Millisecond),
			100*bench.MetisSpeedup(s, b))
	}
}
