package kvserv

// End-to-end coverage of the transaction surface: POST /cas and POST /txn
// over HTTP (single-engine and cluster mode, where cross-partition batches
// answer 400), the wire client's Cas/Txn calls, and the TTL validation
// sweep — zero, negative, and overflowed TTLs answer 400 on every write
// path that accepts one.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/wire"
)

func durableServer(t *testing.T) (string, *kvs.Sharded) {
	t.Helper()
	engine, err := kvs.OpenSharded(t.TempDir(), 8, func() rwl.RWLock { return core.New(new(stdrw.Lock)) }, kvs.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	return startServerWith(t, engine, Config{ReapInterval: -1}), engine
}

func postJSON(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return do(t, http.MethodPost, url, body)
}

func TestServerCasEndpoint(t *testing.T) {
	base, engine := durableServer(t)

	// Only-if-absent install (old null): swaps, and stamps commit headers.
	resp, body := postJSON(t, base+"/cas", casRequest{Key: 1, New: []byte("v1")})
	var cr casResponse
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &cr) != nil || !cr.Swapped {
		t.Fatalf("CAS install = %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Commit-Lsn") == "" {
		t.Fatal("CAS response missing commit headers on a durable engine")
	}

	// Stale expectation: 200 with swapped false, value untouched.
	resp, body = postJSON(t, base+"/cas", casRequest{Key: 1, Old: []byte("stale"), New: []byte("v2")})
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &cr) != nil || cr.Swapped {
		t.Fatalf("stale CAS = %d %s, want swapped=false", resp.StatusCode, body)
	}
	if v, _ := engine.Get(1); string(v) != "v1" {
		t.Fatalf("stale CAS mutated the value: %q", v)
	}

	// Matching swap, then delete-on-match (new null) empties the key.
	if _, body = postJSON(t, base+"/cas", casRequest{Key: 1, Old: []byte("v1"), New: []byte("v2")}); json.Unmarshal(body, &cr) != nil || !cr.Swapped {
		t.Fatalf("matching CAS: %s", body)
	}
	if _, body = postJSON(t, base+"/cas", casRequest{Key: 1, Old: []byte("v2")}); json.Unmarshal(body, &cr) != nil || !cr.Swapped {
		t.Fatalf("CAS delete-on-match: %s", body)
	}
	if _, ok := engine.Get(1); ok {
		t.Fatal("delete-on-match left the key resident")
	}

	// Malformed body answers 400.
	if resp, _ := do(t, http.MethodPost, base+"/cas", []byte("{")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed CAS body = %d, want 400", resp.StatusCode)
	}
}

func TestServerTxnEndpoint(t *testing.T) {
	base, engine := durableServer(t)
	engine.Put(10, []byte("a"))
	engine.Put(11, []byte("b"))

	// Commit: two conditions (one value match, one must-be-absent), three
	// ops including a repeated key — positional order, last wins.
	resp, body := postJSON(t, base+"/txn", txnRequest{
		If: []txnCond{{Key: 10, Value: []byte("a")}, {Key: 12}},
		Ops: []txnOp{
			{Op: "put", Key: 12, Value: []byte("first")},
			{Op: "delete", Key: 11},
			{Op: "put", Key: 12, Value: []byte("last")},
		},
	})
	var tr txnResponse
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &tr) != nil || !tr.Committed {
		t.Fatalf("txn commit = %d %s", resp.StatusCode, body)
	}
	if len(tr.LSNs) == 0 {
		t.Fatalf("committed txn on a durable engine carried no LSNs: %s", body)
	}
	if v, _ := engine.Get(12); string(v) != "last" {
		t.Fatalf("txn dup-key op order broken: %q", v)
	}
	if _, ok := engine.Get(11); ok {
		t.Fatal("txn delete op did not apply")
	}

	// Mismatch: all-or-nothing, the failing key reported, no LSNs.
	resp, body = postJSON(t, base+"/txn", txnRequest{
		If:  []txnCond{{Key: 10, Value: []byte("wrong")}},
		Ops: []txnOp{{Op: "put", Key: 13, Value: []byte("x")}},
	})
	tr = txnResponse{} // Unmarshal merges: clear the committed round's fields
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &tr) != nil || tr.Committed {
		t.Fatalf("txn mismatch = %d %s, want committed=false", resp.StatusCode, body)
	}
	if tr.Mismatch == nil || *tr.Mismatch != 10 || tr.LSNs != nil {
		t.Fatalf("mismatch report wrong: %s", body)
	}
	if _, ok := engine.Get(13); ok {
		t.Fatal("aborted txn leaked a write")
	}

	// TTL op expires for real.
	if _, body = postJSON(t, base+"/txn", txnRequest{
		Ops: []txnOp{{Op: "put", Key: 14, Value: []byte("brief"), TTL: "40ms"}},
	}); json.Unmarshal(body, &tr) != nil || !tr.Committed {
		t.Fatalf("ttl txn: %s", body)
	}
	if _, ok := engine.Get(14); !ok {
		t.Fatal("ttl key missing before deadline")
	}
	time.Sleep(80 * time.Millisecond)
	if _, ok := engine.Get(14); ok {
		t.Fatal("ttl key survived its deadline")
	}

	// Validation sweep: every malformed batch answers 400.
	for name, req := range map[string]txnRequest{
		"zero ttl":       {Ops: []txnOp{{Op: "put", Key: 1, TTL: "0s"}}},
		"negative ttl":   {Ops: []txnOp{{Op: "put", Key: 1, TTL: "-1s"}}},
		"delete + value": {Ops: []txnOp{{Op: "delete", Key: 1, Value: []byte("x")}}},
		"unknown op":     {Ops: []txnOp{{Op: "upsert", Key: 1}}},
		"no keys":        {},
	} {
		if resp, body := postJSON(t, base+"/txn", req); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s = %d %s, want 400", name, resp.StatusCode, body)
		}
	}
	over := txnRequest{}
	for k := uint64(0); k < kvs.MaxTxnKeys+1; k++ {
		over.Ops = append(over.Ops, txnOp{Op: "put", Key: k * 131, Value: []byte("x")})
	}
	if resp, body := postJSON(t, base+"/txn", over); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-budget txn = %d %s, want 400", resp.StatusCode, body)
	}
}

// TestServerTTLRejectsNonPositive pins satellite semantics on every HTTP
// TTL intake: zero, negative, and non-parsing TTLs are 400s, never silent
// no-TTL writes or born-expired keys.
func TestServerTTLRejectsNonPositive(t *testing.T) {
	base, engine := startServer(t, Config{ReapInterval: -1})
	for _, ttl := range []string{"0s", "-1s", "0", "-300ms", "99999999999999999999h"} {
		resp, body := do(t, http.MethodPut, base+fmt.Sprintf("/kv/1?ttl=%s", ttl), []byte("x"))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("PUT ttl=%s = %d %s, want 400", ttl, resp.StatusCode, body)
		}
		mput, _ := json.Marshal(mputRequest{Entries: []mputEntry{{Key: 2, Value: []byte("x")}}, TTL: ttl})
		if resp, body := do(t, http.MethodPost, base+"/mput", mput); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("MPUT ttl=%s = %d %s, want 400", ttl, resp.StatusCode, body)
		}
	}
	if engine.Len() != 0 {
		t.Fatalf("rejected TTL writes landed: Len = %d", engine.Len())
	}
}

func TestClusterCasTxnEndpoints(t *testing.T) {
	c, _, base := startClusterServer(t, 2, 0)

	// Install and swap through the cluster face; headers carry the triple.
	resp, body := postJSON(t, base+"/cas", casRequest{Key: 5, New: []byte("v1")})
	var ccr clusterCasResponse
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &ccr) != nil || !ccr.Swapped {
		t.Fatalf("cluster CAS = %d %s", resp.StatusCode, body)
	}
	commitHeaders(t, resp)

	// Keys from one partition commit; the batch's tokens are triples.
	var same []uint64
	for k := uint64(0); len(same) < 2; k++ {
		if c.Partition(k) == c.Partition(5) && k != 5 {
			same = append(same, k)
		}
	}
	resp, body = postJSON(t, base+"/txn", txnRequest{
		If: []txnCond{{Key: 5, Value: []byte("v1")}},
		Ops: []txnOp{
			{Op: "put", Key: same[0], Value: []byte("x")},
			{Op: "put", Key: same[1], Value: []byte("y")},
		},
	})
	var ctr clusterTxnResponse
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &ctr) != nil || !ctr.Committed {
		t.Fatalf("cluster txn = %d %s", resp.StatusCode, body)
	}
	if len(ctr.Commits) == 0 {
		t.Fatalf("cluster txn carried no commit triples: %s", body)
	}

	// A batch spanning partitions is rejected up front with 400.
	var other uint64
	for k := uint64(0); ; k++ {
		if c.Partition(k) != c.Partition(5) {
			other = k
			break
		}
	}
	resp, body = postJSON(t, base+"/txn", txnRequest{
		Ops: []txnOp{
			{Op: "put", Key: 5, Value: []byte("x")},
			{Op: "put", Key: other, Value: []byte("y")},
		},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cross-partition txn = %d %s, want 400", resp.StatusCode, body)
	}

	// Mismatch is still a 200-level outcome through the cluster.
	resp, body = postJSON(t, base+"/txn", txnRequest{
		If:  []txnCond{{Key: 5, Value: []byte("stale")}},
		Ops: []txnOp{{Op: "put", Key: 5, Value: []byte("z")}},
	})
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &ctr) != nil || ctr.Committed {
		t.Fatalf("cluster txn mismatch = %d %s", resp.StatusCode, body)
	}
	if ctr.Mismatch == nil || *ctr.Mismatch != 5 {
		t.Fatalf("cluster mismatch report wrong: %s", body)
	}
}

func TestWireCasTxn(t *testing.T) {
	addr, engine, _ := startWireServer(t, nil, Config{ReapInterval: -1})
	cl := wire.NewClient(addr, time.Second)
	defer cl.Close()

	swapped, _, err := cl.Cas(1, nil, []byte("v1"))
	if err != nil || !swapped {
		t.Fatalf("Cas install = %v/%v", swapped, err)
	}
	swapped, _, err = cl.Cas(1, []byte("stale"), []byte("v2"))
	if err != nil || swapped {
		t.Fatalf("stale Cas = %v/%v, want false", swapped, err)
	}

	committed, _, _, err := cl.Txn(
		[]wire.TxnCond{{Key: 1, Value: []byte("v1")}, {Key: 2}},
		[]wire.TxnOp{
			{Key: 2, Value: []byte("first")},
			{Key: 3, Del: true},
			{Key: 2, Value: []byte("last")},
		})
	if err != nil || !committed {
		t.Fatalf("Txn commit = %v/%v", committed, err)
	}
	if v, _ := engine.Get(2); string(v) != "last" {
		t.Fatalf("wire txn dup-key order broken: %q", v)
	}

	committed, mismatch, _, err := cl.Txn(
		[]wire.TxnCond{{Key: 1, Value: []byte("wrong")}},
		[]wire.TxnOp{{Key: 4, Value: []byte("x")}})
	if err != nil || committed || mismatch != 1 {
		t.Fatalf("Txn mismatch = %v/%d/%v, want false/1/nil", committed, mismatch, err)
	}
	if _, ok := engine.Get(4); ok {
		t.Fatal("aborted wire txn leaked a write")
	}

	// Over-budget batches surface as a StatusBadRequest error.
	var bigOps []wire.TxnOp
	for k := uint64(0); k < kvs.MaxTxnKeys+1; k++ {
		bigOps = append(bigOps, wire.TxnOp{Key: k * 131, Value: []byte("x")})
	}
	if _, _, _, err := cl.Txn(nil, bigOps); err == nil {
		t.Fatal("over-budget wire txn succeeded")
	}
}

func TestClusterWireCasTxn(t *testing.T) {
	c, srv, _ := startClusterServer(t, 2, 0)
	addr := addWireListener(t, srv)
	cl := wire.NewClient(addr, time.Second)
	defer cl.Close()

	swapped, lsns, err := cl.Cas(5, nil, []byte("v1"))
	if err != nil || !swapped {
		t.Fatalf("cluster wire Cas = %v/%v", swapped, err)
	}
	if len(lsns) != 1 || lsns[0].Epoch == 0 {
		t.Fatalf("cluster wire Cas token not an epoch triple: %+v", lsns)
	}

	var same uint64
	for k := uint64(0); ; k++ {
		if c.Partition(k) == c.Partition(5) && k != 5 {
			same = k
			break
		}
	}
	committed, _, lsns, err := cl.Txn(
		[]wire.TxnCond{{Key: 5, Value: []byte("v1")}},
		[]wire.TxnOp{{Key: same, Value: []byte("x")}})
	if err != nil || !committed {
		t.Fatalf("cluster wire Txn = %v/%v", committed, err)
	}
	if len(lsns) == 0 {
		t.Fatal("cluster wire Txn carried no tokens")
	}

	var other uint64
	for k := uint64(0); ; k++ {
		if c.Partition(k) != c.Partition(5) {
			other = k
			break
		}
	}
	if _, _, _, err := cl.Txn(nil, []wire.TxnOp{
		{Key: 5, Value: []byte("x")},
		{Key: other, Value: []byte("y")},
	}); err == nil {
		t.Fatal("cross-partition wire txn succeeded")
	}
}
