package cluster

import "github.com/bravolock/bravo/internal/kvs"

// FollowerPosition is one replica's applied prefix.
type FollowerPosition struct {
	AppliedLSNs []uint64 `json:"applied_lsns"`
}

// PartitionStatus is one partition's posture: who leads, at which epoch,
// how far its log and replicas have gotten.
type PartitionStatus struct {
	Partition int                `json:"partition"`
	Epoch     uint64             `json:"epoch"`
	Failovers int                `json:"failovers"`
	LSNs      []uint64           `json:"lsns"`
	Total     kvs.ShardStats     `json:"total"`
	Followers []FollowerPosition `json:"followers"`
}

// Status is the cluster's point-in-time topology and progress summary,
// served under "cluster" in /stats and wire STATS.
type Status struct {
	Partitions         int               `json:"partitions"`
	ShardsPerPartition int               `json:"shards_per_partition"`
	Members            []PartitionStatus `json:"members"`
}

// Stats summarizes every partition.
func (c *Cluster) Stats() Status {
	st := Status{
		Partitions:         c.cfg.Partitions,
		ShardsPerPartition: c.cfg.Shards,
		Members:            make([]PartitionStatus, len(c.parts)),
	}
	for i, p := range c.parts {
		p.mu.RLock()
		ps := PartitionStatus{
			Partition: i,
			Epoch:     p.epoch,
			Failovers: len(p.promotions),
			LSNs:      p.member.engine.ReplLSNs(),
			Total:     p.member.engine.Stats().Total(),
		}
		for _, f := range p.followers {
			ps.Followers = append(ps.Followers, FollowerPosition{AppliedLSNs: f.AppliedLSNs()})
		}
		p.mu.RUnlock()
		st.Members[i] = ps
	}
	return st
}
