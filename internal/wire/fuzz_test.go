package wire

// Native fuzz harness for the protocol decoders: whatever bytes a hostile
// or confused peer sends, DecodeRequest/DecodeResponse must reject cleanly
// — never panic, never over-read — and anything they do accept must
// re-encode to a stable canonical form. The stream decoder gets the same
// treatment over arbitrary byte streams.

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/bravolock/bravo/internal/frame"
)

// fuzzSeedRequests is a request per op with every optional field shape.
func fuzzSeedRequests() []Request {
	return []Request{
		{Op: OpGet, ID: 1, Key: 42},
		{Op: OpGet, ID: 2, Key: 42, MinLSN: 7},
		{Op: OpPut, ID: 3, Key: 9, Value: []byte("v")},
		{Op: OpPut, ID: 4, Key: 9, Value: []byte("v"), TTL: 1e9},
		{Op: OpPut, ID: 5, Key: 9, Value: []byte("v"), Async: true},
		{Op: OpDelete, ID: 6, Key: 1},
		{Op: OpMGet, ID: 7, Keys: []uint64{1, 2, 3}},
		{Op: OpMPut, ID: 8, Keys: []uint64{1, 2}, Values: [][]byte{{}, []byte("x")}},
		{Op: OpMDelete, ID: 9, Keys: []uint64{5}},
		{Op: OpFlush, ID: 10},
		{Op: OpStats, ID: 11},
		{Op: OpCas, ID: 12, Key: 3, Old: []byte("a"), New: []byte("b")},
		{Op: OpCas, ID: 13, Key: 3, New: []byte{}},
		{Op: OpCas, ID: 14, Key: 3, Old: []byte("a")},
		{Op: OpTxn, ID: 15,
			Conds:  []TxnCond{{Key: 1, Value: []byte("c")}, {Key: 2}},
			TxnOps: []TxnOp{{Key: 4, Value: []byte("v")}, {Key: 5, Del: true}, {Key: 6, Value: []byte{}, TTL: 1e9}}},
	}
}

// FuzzWireFrame throws arbitrary bytes at both payload decoders and, when
// one accepts, checks the canonical-form property: decode(encode(decode(p)))
// must reproduce encode(decode(p)) byte for byte. The strict decoders
// consume exactly what the encoders emit, so an accepted payload is its own
// canonical form.
func FuzzWireFrame(f *testing.F) {
	// The Append* encoders emit envelope+payload; the payload decoders see
	// only the body, so seeds are split before adding.
	body := func(enc []byte) []byte {
		payload, _, status := frame.Split(enc)
		if status != frame.OK {
			f.Fatalf("encoder emitted unsplittable frame: %x", enc)
		}
		return payload
	}
	for _, req := range fuzzSeedRequests() {
		f.Add(body(AppendRequest(nil, &req)))
	}
	for _, resp := range []Response{
		{Op: OpGet, ID: 1, Value: []byte("v")},
		{Op: OpGet, ID: 2, Status: StatusNotFound},
		{Op: OpMGet, ID: 3, Values: [][]byte{nil, {}, []byte("x")}},
		{Op: OpPut, ID: 4, LSNs: []ShardLSN{{Shard: 1, LSN: 9}}},
		{Op: OpMPut, ID: 5, Applied: 2, LSNs: []ShardLSN{{Shard: 0, LSN: 1}, {Shard: 3, LSN: 4}}},
		{Op: OpStats, ID: 6, Stats: []byte(`{"n":1}`)},
		{Op: OpPut, ID: 7, Status: StatusReadOnly, Msg: "follower"},
		{Op: OpCas, ID: 8, Swapped: true, LSNs: []ShardLSN{{Shard: 1, LSN: 2, Epoch: 3}}},
		{Op: OpTxn, ID: 9, Committed: true, LSNs: []ShardLSN{{Shard: 0, LSN: 4}}},
		{Op: OpTxn, ID: 10, Mismatch: 77},
	} {
		f.Add(body(AppendResponse(nil, &resp)))
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		splitBody := func(enc []byte) []byte {
			payload, _, status := frame.Split(enc)
			if status != frame.OK {
				t.Fatalf("encoder emitted unsplittable frame: %x", enc)
			}
			return payload
		}
		if req, ok := DecodeRequest(data); ok {
			enc := splitBody(AppendRequest(nil, &req))
			if !bytes.Equal(enc, data) {
				t.Fatalf("accepted request not canonical:\n in  %x\n out %x", data, enc)
			}
			req2, ok2 := DecodeRequest(enc)
			if !ok2 {
				t.Fatalf("re-encoded accepted request rejected: %x", enc)
			}
			if enc2 := splitBody(AppendRequest(nil, &req2)); !bytes.Equal(enc, enc2) {
				t.Fatalf("request canonical form unstable:\n %x\n %x", enc, enc2)
			}
		}
		if resp, ok := DecodeResponse(data); ok {
			enc := splitBody(AppendResponse(nil, &resp))
			if !bytes.Equal(enc, data) {
				t.Fatalf("accepted response not canonical:\n in  %x\n out %x", data, enc)
			}
			resp2, ok2 := DecodeResponse(enc)
			if !ok2 {
				t.Fatalf("re-encoded accepted response rejected: %x", enc)
			}
			if enc2 := splitBody(AppendResponse(nil, &resp2)); !bytes.Equal(enc, enc2) {
				t.Fatalf("response canonical form unstable:\n %x\n %x", enc, enc2)
			}
		}
	})
}

// FuzzWireStream feeds arbitrary byte streams to the frame-layer decoder:
// every frame it yields must carry a valid checksum-framed payload from the
// input, and rejection must be a clean error, never a panic or an
// over-read.
func FuzzWireStream(f *testing.F) {
	var stream []byte
	for _, req := range fuzzSeedRequests()[:3] {
		stream = AppendRequest(stream, &req) // already envelope+payload
	}
	f.Add(stream)
	f.Add(stream[:len(stream)-3]) // torn tail frame
	corrupt := append([]byte(nil), stream...)
	corrupt[9] ^= 0xFF // flip a payload byte under the first CRC
	f.Add(corrupt)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}) // insane declared length
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewStreamDecoder(bytes.NewReader(data), 1<<20)
		total := 0
		for {
			payload, err := dec.Next()
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrCorruptFrame) {
					return
				}
				t.Fatalf("unexpected error class: %v", err)
			}
			total += frame.HeaderSize + len(payload)
			if total > len(data) {
				t.Fatalf("decoder yielded %d framed bytes from %d input bytes", total, len(data))
			}
		}
	})
}
