// Package mcs implements the Mellor-Crummey–Scott queue mutex.
//
// MCS queues are the waiting substrate of the paper's "BA" lock (the
// Brandenburg–Anderson PF-Q phase-fair lock uses "an MCS-like central queue,
// with local spinning", §2). Each waiter spins on a flag in its own queue
// node, so handoff generates a single coherence transfer instead of a
// broadcast.
package mcs

import (
	"sync"
	"sync/atomic"

	"github.com/bravolock/bravo/internal/spin"
)

// node is an MCS queue element. Nodes are pooled; granted/next are reset
// before reuse.
type node struct {
	next    atomic.Pointer[node]
	granted atomic.Uint32
}

var nodePool = sync.Pool{New: func() any { return new(node) }}

// Mutex is an MCS queue lock. The zero value is unlocked.
type Mutex struct {
	tail  atomic.Pointer[node]
	owner *node // queue node of the current owner; guarded by the lock itself
}

// Lock acquires the mutex with local spinning.
func (m *Mutex) Lock() {
	n := nodePool.Get().(*node)
	n.next.Store(nil)
	n.granted.Store(0)
	if prev := m.tail.Swap(n); prev != nil {
		prev.next.Store(n)
		var b spin.Backoff
		for n.granted.Load() == 0 {
			b.Once()
		}
	}
	m.owner = n
}

// TryLock acquires the mutex only if the queue is empty.
func (m *Mutex) TryLock() bool {
	n := nodePool.Get().(*node)
	n.next.Store(nil)
	n.granted.Store(0)
	if m.tail.CompareAndSwap(nil, n) {
		m.owner = n
		return true
	}
	nodePool.Put(n)
	return false
}

// Unlock releases the mutex, granting it to the queued successor if any.
func (m *Mutex) Unlock() {
	n := m.owner
	m.owner = nil
	if n.next.Load() == nil {
		if m.tail.CompareAndSwap(n, nil) {
			nodePool.Put(n)
			return
		}
		// A successor is linking itself in; wait for the link.
		var b spin.Backoff
		for n.next.Load() == nil {
			b.Once()
		}
	}
	succ := n.next.Load()
	succ.granted.Store(1)
	nodePool.Put(n)
}

// HasWaiters reports whether some caller other than the owner is queued or
// arriving.
func (m *Mutex) HasWaiters() bool {
	t := m.tail.Load()
	return t != nil && t != m.owner
}
