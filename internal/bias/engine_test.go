package bias

import (
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/clock"
)

// newEngine returns an initialized engine on a private table with stats and
// the given policy.
func newEngine(pol Policy, opts ...func(*Engine)) (*Engine, *Stats) {
	e := &Engine{}
	st := &Stats{}
	e.SetTable(NewTable(DefaultTableSize))
	e.SetPolicy(pol)
	e.SetStats(st)
	for _, o := range opts {
		o(e)
	}
	e.Init()
	return e, st
}

func TestEngineInitDefaults(t *testing.T) {
	e := &Engine{}
	e.Init()
	if e.Table() != SharedTable() {
		t.Fatal("default table is not the shared table")
	}
	p, ok := e.PolicyInUse().(*InhibitPolicy)
	if !ok || p.N != DefaultInhibitN {
		t.Fatalf("default policy = %#v, want InhibitPolicy N=%d", e.PolicyInUse(), DefaultInhibitN)
	}
}

func TestEngineInhibitNAndPolicyComposeInAnyOrder(t *testing.T) {
	// SetInhibitN before SetPolicy: the multiplier lands on the policy.
	e1 := &Engine{}
	e1.SetInhibitN(3)
	e1.SetPolicy(NewInhibitPolicy(0))
	e1.Init()
	if p := e1.PolicyInUse().(*InhibitPolicy); p.N != 3 {
		t.Fatalf("SetInhibitN then SetPolicy: N = %d, want 3", p.N)
	}
	// SetPolicy before SetInhibitN: same outcome.
	e2 := &Engine{}
	e2.SetPolicy(NewInhibitPolicy(0))
	e2.SetInhibitN(3)
	e2.Init()
	if p := e2.PolicyInUse().(*InhibitPolicy); p.N != 3 {
		t.Fatalf("SetPolicy then SetInhibitN: N = %d, want 3", p.N)
	}
	// A non-inhibit policy is never replaced by SetInhibitN, in either order.
	e3 := &Engine{}
	e3.SetInhibitN(3)
	e3.SetPolicy(AlwaysPolicy{})
	e3.Init()
	if _, ok := e3.PolicyInUse().(AlwaysPolicy); !ok {
		t.Fatalf("SetInhibitN replaced an explicit policy: %#v", e3.PolicyInUse())
	}
	e4 := &Engine{}
	e4.SetPolicy(AlwaysPolicy{})
	e4.SetInhibitN(3)
	e4.Init()
	if _, ok := e4.PolicyInUse().(AlwaysPolicy); !ok {
		t.Fatalf("SetInhibitN after SetPolicy replaced it: %#v", e4.PolicyInUse())
	}
	// SetInhibitN alone tunes the default policy.
	e5 := &Engine{}
	e5.SetInhibitN(3)
	e5.Init()
	if p := e5.PolicyInUse().(*InhibitPolicy); p.N != 3 {
		t.Fatalf("SetInhibitN alone: default policy N = %d, want 3", p.N)
	}
}

// TestEngineAdaptiveSetterOrderConverges extends the "tunes, never replaces"
// ordering contract to SetAdaptive: every permutation of SetAdaptive,
// SetPolicy, and SetInhibitN must converge to the same configuration — the
// installed policy with the tuned multiplier, plus the attached adaptor —
// and to the same gating behavior.
func TestEngineAdaptiveSetterOrderConverges(t *testing.T) {
	build := func(order [3]int) (*Engine, *Adaptor) {
		e := &Engine{}
		ad := NewAdaptor(Thresholds{})
		pol := NewInhibitPolicy(0)
		for _, step := range order {
			switch step {
			case 0:
				e.SetAdaptive(ad)
			case 1:
				e.SetPolicy(pol)
			case 2:
				e.SetInhibitN(5)
			}
		}
		e.SetTable(NewTable(DefaultTableSize))
		e.Init()
		return e, ad
	}
	perms := [][3]int{
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	}
	for _, order := range perms {
		e, ad := build(order)
		if e.AdaptorInUse() != ad {
			t.Fatalf("order %v: adaptor not attached", order)
		}
		p, ok := e.PolicyInUse().(*InhibitPolicy)
		if !ok {
			t.Fatalf("order %v: SetAdaptive replaced the policy: %#v", order, e.PolicyInUse())
		}
		if p.N != 5 {
			t.Fatalf("order %v: inhibit N = %d, want 5 (tuned regardless of order)", order, p.N)
		}
		// Behavioral convergence: bias enables in biased mode and is gated
		// off in fair mode, in every permutation.
		e.MaybeEnable()
		if !e.Enabled() {
			t.Fatalf("order %v: bias did not enable in ModeBiased", order)
		}
		e.forceBias(false)
		ad.ForceMode(ModeFair)
		e.MaybeEnable()
		if e.Enabled() {
			t.Fatalf("order %v: bias enabled while adaptor is in ModeFair", order)
		}
		ad.ForceMode(ModeBiased)
		e.MaybeEnable()
		if !e.Enabled() {
			t.Fatalf("order %v: bias did not re-enable after promotion", order)
		}
	}
}

func TestEngineFastPathRoundTrip(t *testing.T) {
	e, st := newEngine(AlwaysPolicy{})
	if _, ok := e.TryFast(42); ok {
		t.Fatal("fast path succeeded with bias disabled")
	}
	if st.SlowDisabled.Load() != 1 {
		t.Fatalf("disabled read not counted: %s", st.Snapshot())
	}
	e.MaybeEnable()
	if !e.Enabled() {
		t.Fatal("MaybeEnable under AlwaysPolicy did not enable bias")
	}
	tok, ok := e.TryFast(42)
	if !ok {
		t.Fatal("fast path failed on biased engine")
	}
	if e.table.Load(tok.Index()) != e.ID() {
		t.Fatal("published identity is not the engine identity")
	}
	e.ClearFast(tok)
	if st.FastRead.Load() != 1 {
		t.Fatalf("fast read not counted: %s", st.Snapshot())
	}
}

func TestEngineRacedReaderFallsBack(t *testing.T) {
	// Reproduce the Listing 1 lines 18–21 race deterministically: a reader
	// that passed the initial RBias check begins its publication after a
	// writer cleared the flag; the recheck must push it down the slow path
	// and clear the slot.
	e, st := newEngine(AlwaysPolicy{})
	e.forceBias(false)
	idx, ok := e.TryPublish(1234)
	if ok {
		t.Fatal("TryPublish must recheck RBias (writer cleared it)")
	}
	if idx != 0 {
		t.Fatal("failed TryPublish returned a slot")
	}
	if e.table.Occupancy() != 0 {
		t.Fatal("raced reader left its slot occupied")
	}
	if st.SlowRaced.Load() != 1 {
		t.Fatalf("raced fallback not recorded: %s", st.Snapshot())
	}
}

func TestEngineEpochCountsEnablements(t *testing.T) {
	e, _ := newEngine(AlwaysPolicy{})
	if e.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", e.Epoch())
	}
	e.MaybeEnable()
	if e.Epoch() != 1 {
		t.Fatalf("epoch after enable = %d, want 1", e.Epoch())
	}
	e.MaybeEnable() // already enabled: no flip, no bump
	if e.Epoch() != 1 {
		t.Fatalf("epoch bumped without a flip: %d", e.Epoch())
	}
	e.Revoke()
	e.MaybeEnable()
	if e.Epoch() != 2 {
		t.Fatalf("epoch after revoke+enable = %d, want 2", e.Epoch())
	}
}

func TestEngineRevokeIfEnabled(t *testing.T) {
	e, st := newEngine(AlwaysPolicy{})
	if e.RevokeIfEnabled() {
		t.Fatal("revoked with bias off")
	}
	if st.WriteNormal.Load() != 1 {
		t.Fatalf("normal write not counted: %s", st.Snapshot())
	}
	e.MaybeEnable()
	if !e.RevokeIfEnabled() {
		t.Fatal("did not revoke with bias on")
	}
	if e.Enabled() {
		t.Fatal("bias survived revocation")
	}
	if st.WriteRevoke.Load() != 1 || st.RevokeScanned.Load() == 0 {
		t.Fatalf("revocation not recorded: %s", st.Snapshot())
	}
}

func TestEngineRevocationFeedsPolicy(t *testing.T) {
	pol := NewInhibitPolicy(1 << 40)
	e, _ := newEngine(pol)
	e.MaybeEnable()
	e.Revoke()
	if pol.InhibitedUntil() <= clock.Nanos()-int64(time.Second) {
		t.Fatal("revocation did not push the inhibit deadline")
	}
	e.MaybeEnable()
	if e.Enabled() {
		t.Fatal("bias re-enabled inside the inhibit window")
	}
}

func TestEngineSecondProbeRescuesCollision(t *testing.T) {
	tab := NewTable(2)
	e := &Engine{}
	st := &Stats{}
	e.SetTable(tab)
	e.SetPolicy(AlwaysPolicy{})
	e.SetStats(st)
	e.SetSecondProbe()
	e.Init()
	e.MaybeEnable()
	// Find an identity whose two probes land in different slots, then
	// occupy its primary slot with a foreign lock.
	id := uint64(0)
	for ; id < 1000; id++ {
		if tab.Index(e.ID(), id) != tab.Index2(e.ID(), id) {
			break
		}
	}
	idx := tab.Index(e.ID(), id)
	if _, ok := tab.TryPublishAt(idx, uintptr(0xF00D0)); !ok {
		t.Fatal("setup publish failed")
	}
	got, ok := e.TryPublish(id)
	if !ok || got.Index() != tab.Index2(e.ID(), id) {
		t.Fatalf("second probe did not rescue the collision: ok=%v idx=%d (%s)", ok, got.Index(), st.Snapshot())
	}
	e.ClearFast(got)
	tab.Clear(idx)
}

func TestEngineRandomizedIndexDisperses(t *testing.T) {
	e, _ := newEngine(AlwaysPolicy{}, func(e *Engine) { e.SetRandomizedIndex() })
	e.MaybeEnable()
	seen := map[uint32]bool{}
	for i := 0; i < 32; i++ {
		tok, ok := e.TryFast(7) // same identity every time
		if !ok {
			t.Fatal("randomized fast path failed on empty table")
		}
		seen[tok.Index()] = true
		e.ClearFast(tok)
	}
	if len(seen) < 2 {
		t.Fatal("randomized indices never varied for a fixed identity")
	}
}
