package rwsem

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/lockcheck"
	"github.com/bravolock/bravo/internal/rwl"
)

func mkStock() rwl.RWLock { return NewAdapter(DefaultConfig()) }

func mkNoSpin() rwl.RWLock {
	return NewAdapter(Config{SpinOnOwner: false, StockOwnerWrites: true})
}

func TestExclusion(t *testing.T) {
	lockcheck.Exclusion(t, mkStock, 4, 2, 1500)
}

func TestExclusionNoSpin(t *testing.T) {
	lockcheck.Exclusion(t, mkNoSpin, 4, 2, 1500)
}

func TestExclusionWriteHeavy(t *testing.T) {
	lockcheck.Exclusion(t, mkStock, 2, 4, 1000)
}

func TestTryExclusion(t *testing.T) {
	lockcheck.TryExclusion(t, mkStock, 6, 1000)
}

func TestReadersConcurrent(t *testing.T) {
	lockcheck.ReadersConcurrent(t, mkStock())
}

func TestWriterExcludesReaders(t *testing.T) {
	lockcheck.WriterExcludesReaders(t, mkStock())
}

func TestReaderCountTracksAcquisitions(t *testing.T) {
	s := New(DefaultConfig())
	s.DownRead(1)
	s.DownRead(2)
	if got := s.ActiveReaders(); got != 2 {
		t.Fatalf("ActiveReaders = %d, want 2", got)
	}
	s.UpRead(1)
	s.UpRead(2)
	if got := s.ActiveReaders(); got != 0 {
		t.Fatalf("ActiveReaders = %d, want 0", got)
	}
}

func TestWriterHandoffToQueuedWriter(t *testing.T) {
	s := New(Config{SpinOnOwner: false})
	s.DownWrite(1)
	var got atomic.Bool
	go func() {
		s.DownWrite(2)
		got.Store(true)
		s.UpWrite(2)
	}()
	lockcheck.Never(t, got.Load, 30*time.Millisecond, "second writer admitted concurrently")
	s.UpWrite(1)
	lockcheck.Eventually(t, got.Load, "queued writer never woken")
}

func TestReaderGroupWakeup(t *testing.T) {
	// Several readers blocked behind a writer must all be admitted together
	// when the writer departs (reader grouping in wakeLocked).
	s := New(Config{SpinOnOwner: false})
	s.DownWrite(1)
	const readers = 6
	var admitted atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(task uint64) {
			defer wg.Done()
			s.DownRead(task)
			admitted.Add(1)
			for admitted.Load() < readers {
				time.Sleep(time.Millisecond)
			}
			s.UpRead(task)
		}(uint64(10 + i))
	}
	// Let the readers reach the queue, then release the writer.
	time.Sleep(20 * time.Millisecond)
	s.UpWrite(1)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("only %d/%d blocked readers admitted simultaneously", admitted.Load(), readers)
	}
}

func TestQueuedWriterBlocksNewReaders(t *testing.T) {
	// hasWaiters diverts arriving readers to the queue, so a queued writer
	// is not starved by a reader stream (kernel-style fairness).
	s := New(Config{SpinOnOwner: false})
	s.DownRead(1)
	var wGot atomic.Bool
	go func() {
		s.DownWrite(2)
		wGot.Store(true)
		s.UpWrite(2)
	}()
	// Wait for the writer to queue.
	lockcheck.Eventually(t, func() bool {
		return s.count.Load()&hasWaiters != 0
	}, "writer never queued")
	var r2Got atomic.Bool
	go func() {
		s.DownRead(3)
		r2Got.Store(true)
		s.UpRead(3)
	}()
	lockcheck.Never(t, r2Got.Load, 30*time.Millisecond, "reader barged past queued writer")
	s.UpRead(1)
	lockcheck.Eventually(t, wGot.Load, "queued writer never admitted")
	lockcheck.Eventually(t, r2Got.Load, "queued reader never admitted")
}

func TestStockOwnerWrites(t *testing.T) {
	s := New(Config{StockOwnerWrites: true})
	s.DownRead(7)
	if !s.ReaderOwned() {
		t.Fatal("reader-owned bits not set")
	}
	if s.owner.Load()>>ownerShift != 7 {
		t.Fatal("stock mode must record the reader's task ID")
	}
	s.UpRead(7)
}

func TestOptimizedOwnerWrites(t *testing.T) {
	// §4: "a reader [sets] only the control bits in the owner field, and
	// only if those bits were not set before".
	s := New(Config{StockOwnerWrites: false})
	s.DownRead(7)
	if !s.ReaderOwned() {
		t.Fatal("reader-owned bits not set by first reader")
	}
	if s.owner.Load()>>ownerShift != 0 {
		t.Fatal("optimized mode must not record task IDs")
	}
	before := s.owner.Load()
	s.DownRead(8) // subsequent reader must not write
	if s.owner.Load() != before {
		t.Fatal("subsequent reader rewrote the owner field")
	}
	s.UpRead(7)
	s.UpRead(8)
	// After a writer, the first reader sets the bits again.
	s.DownWrite(9)
	if s.ReaderOwned() {
		t.Fatal("reader bits survived a writer")
	}
	s.UpWrite(9)
	s.DownRead(10)
	if !s.ReaderOwned() {
		t.Fatal("reader bits not restored after writer")
	}
	s.UpRead(10)
}

func TestTryDownWrite(t *testing.T) {
	s := New(DefaultConfig())
	if !s.TryDownWrite(1) {
		t.Fatal("TryDownWrite failed on free semaphore")
	}
	if s.TryDownWrite(2) {
		t.Fatal("TryDownWrite succeeded while write-locked")
	}
	if s.TryDownRead(3) {
		t.Fatal("TryDownRead succeeded while write-locked")
	}
	s.UpWrite(1)
	if !s.TryDownRead(3) {
		t.Fatal("TryDownRead failed on free semaphore")
	}
	if s.TryDownWrite(4) {
		t.Fatal("TryDownWrite succeeded while read-locked")
	}
	s.UpRead(3)
}
