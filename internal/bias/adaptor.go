package bias

import (
	"sync"
	"sync/atomic"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/locks/seq"
	"github.com/bravolock/bravo/internal/spin"
)

// Mode is a lock's bias posture, chosen per shard by an Adaptor.
type Mode uint32

const (
	// ModeBiased is the paper's reader-biased BRAVO: zero-CAS-adjacent read
	// fast path, writers pay revocation.
	ModeBiased Mode = iota
	// ModeNeutral keeps the substrate lock but holds bias off: readers take
	// the substrate read path, writers never revoke.
	ModeNeutral
	// ModeFair diverts readers to a FIFO fair gate (internal/locks/fairrw):
	// strict arrival order, no side can starve, no revocation.
	ModeFair
)

// String returns the mode name used in stats documents.
func (m Mode) String() string {
	switch m {
	case ModeBiased:
		return "biased"
	case ModeNeutral:
		return "neutral"
	case ModeFair:
		return "fair"
	}
	return "unknown"
}

// Thresholds parameterize the Adaptor's hysteresis band over the observed
// read fraction r = reads/(reads+writes) of one window. Entry bounds are
// deliberately separated from exit bounds so a shard whose mix sits between
// them keeps its current mode instead of ping-ponging.
type Thresholds struct {
	// BiasEnter: flip into ModeBiased when r >= BiasEnter (and revocation
	// overhead is not already excessive).
	BiasEnter float64
	// BiasExit: leave ModeBiased when r < BiasExit.
	BiasExit float64
	// FairEnter: flip into ModeFair when r <= FairEnter.
	FairEnter float64
	// FairExit: leave ModeFair when r > FairExit.
	FairExit float64
	// Window is the number of operations that closes one observation window.
	Window uint64
	// InhibitN generalizes the paper's inhibit multiplier N: a biased shard
	// whose revocation time exceeds 1/(N+1) of the window's wall time is
	// demoted even if its read fraction still clears BiasExit — the same
	// "bound the writer slow-down" budget, enforced by demotion instead of
	// enable-inhibition.
	InhibitN int64
}

// Default hysteresis band. The gap between each Enter and Exit bound is the
// no-flip dead zone.
const (
	DefaultBiasEnter = 0.90
	DefaultBiasExit  = 0.80
	DefaultFairEnter = 0.50
	DefaultFairExit  = 0.60
	DefaultWindow    = 4096
)

// DefaultThresholds returns the default hysteresis configuration.
func DefaultThresholds() Thresholds {
	return Thresholds{
		BiasEnter: DefaultBiasEnter,
		BiasExit:  DefaultBiasExit,
		FairEnter: DefaultFairEnter,
		FairExit:  DefaultFairExit,
		Window:    DefaultWindow,
		InhibitN:  DefaultInhibitN,
	}
}

// sanitize fills zero fields with defaults and restores the band ordering
// FairEnter <= FairExit <= BiasExit <= BiasEnter where violated.
func (t Thresholds) sanitize() Thresholds {
	d := DefaultThresholds()
	if t.Window == 0 {
		t.Window = d.Window
	}
	if t.InhibitN <= 0 {
		t.InhibitN = d.InhibitN
	}
	if t.BiasEnter <= 0 || t.BiasEnter > 1 {
		t.BiasEnter = d.BiasEnter
	}
	if t.BiasExit <= 0 {
		t.BiasExit = d.BiasExit
	}
	if t.BiasExit > t.BiasEnter {
		t.BiasExit = t.BiasEnter
	}
	if t.FairEnter <= 0 {
		t.FairEnter = d.FairEnter
	}
	if t.FairEnter >= t.BiasExit {
		t.FairEnter = t.BiasExit / 2
	}
	if t.FairExit <= 0 {
		t.FairExit = d.FairExit
	}
	if t.FairExit < t.FairEnter {
		t.FairExit = t.FairEnter
	}
	if t.FairExit > t.BiasExit {
		t.FairExit = t.BiasExit
	}
	return t
}

// AdaptorSnapshot is a coherent view of an Adaptor: the mode and the window
// counters it was derived from are read under one seq bracket, so a snapshot
// taken mid-flip can never pair a new mode with a stale window (or vice
// versa) — the same rule the KV engine applies to seqcell reads.
type AdaptorSnapshot struct {
	Mode     Mode
	Adaptive bool // false when SetEnabled(false) pinned the mode to biased
	Flips    uint64
	Windows  uint64 // observation windows closed so far
	// Deltas of the most recently closed window.
	WindowReads       uint64
	WindowWrites      uint64
	WindowRevocations uint64
	Revocations       uint64 // cumulative revocations observed
}

// Adaptor closes the bias feedback loop for one lock: the owner feeds it
// cumulative read/write counts it already maintains (Offer), the engine
// feeds it revocation costs (NoteRevocation), and the adaptor flips the
// lock's Mode among {biased, neutral, fair} at window boundaries using the
// Thresholds hysteresis band.
//
// Decisions happen only when a window closes and apply at most one flip, so
// a shard can never flip twice within one window — the anti-ping-pong
// invariant DESIGN.md records. The mode word itself is an atomic the lock's
// read path loads directly; Offer is designed to be called on a sampled
// cadence (the KV engine calls it every few hundred operations) and costs a
// failed TryLock or a counter compare when the window is still open.
//
// The zero value is not ready; use NewAdaptor.
type Adaptor struct {
	mode     atomic.Uint32
	disabled atomic.Uint32 // 1 = adaptivity off, mode pinned to biased
	flips    atomic.Uint64
	windows  atomic.Uint64

	// Last closed window's deltas, published under seqc with the mode.
	winReads   atomic.Uint64
	winWrites  atomic.Uint64
	winRevokes atomic.Uint64

	// Cumulative revocation feedback from the engine.
	revokes     atomic.Uint64
	revokeNanos atomic.Int64

	// seqc brackets every mode flip and window publication; Snapshot
	// validates against it.
	seqc seq.Count

	mu sync.Mutex // serializes window evaluation and configuration
	th Thresholds
	// Window baselines, owned by mu.
	lastReads   uint64
	lastWrites  uint64
	lastRevokes uint64
	lastRevNs   int64
	lastNanos   int64
}

// NewAdaptor returns an Adaptor starting in ModeBiased with th (zero fields
// take defaults).
func NewAdaptor(th Thresholds) *Adaptor {
	a := &Adaptor{th: th.sanitize()}
	a.lastNanos = clock.Nanos()
	return a
}

// Mode returns the current bias posture. Lock read paths load this once per
// acquisition; it is a plain atomic load of an almost-always-clean line.
func (a *Adaptor) Mode() Mode { return Mode(a.mode.Load()) }

// AllowBias reports whether the engine may (re-)enable reader bias — true
// only in ModeBiased. Engine.MaybeEnable consults it, so in neutral and
// fair modes bias stays off without any new revocation mechanism: the next
// writer after a demotion clears any residual bias once, and it never
// returns until the adaptor promotes again.
func (a *Adaptor) AllowBias() bool { return a.mode.Load() == uint32(ModeBiased) }

// Flips returns the number of mode changes so far.
func (a *Adaptor) Flips() uint64 { return a.flips.Load() }

// Adaptive reports whether adaptivity is enabled.
func (a *Adaptor) Adaptive() bool { return a.disabled.Load() == 0 }

// SetEnabled turns adaptivity on or off. Turning it off pins the mode back
// to ModeBiased (static BRAVO), counting the flip if one happens. Safe at
// runtime.
func (a *Adaptor) SetEnabled(on bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if on {
		a.disabled.Store(0)
		return
	}
	a.disabled.Store(1)
	a.flipLocked(ModeBiased)
}

// SetThresholds replaces the hysteresis configuration (zero fields take
// defaults, inverted bounds are repaired). Safe at runtime; takes effect at
// the next window close.
func (a *Adaptor) SetThresholds(th Thresholds) {
	a.mu.Lock()
	a.th = th.sanitize()
	a.mu.Unlock()
}

// ThresholdsInUse returns the active hysteresis configuration.
func (a *Adaptor) ThresholdsInUse() Thresholds {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.th
}

// NoteRevocation records one revocation and its duration. Called by the
// engine with write permission held.
func (a *Adaptor) NoteRevocation(nanos int64) {
	a.revokes.Add(1)
	if nanos > 0 {
		a.revokeNanos.Add(nanos)
	}
}

// Offer hands the adaptor the owner's current cumulative read and write
// counts. If the deltas since the last window close fill a window, the
// window is evaluated and the mode may flip (at most once). Contended or
// mid-window calls return immediately; callers should invoke it on a
// sampled cadence, not per operation.
func (a *Adaptor) Offer(reads, writes uint64) {
	if a.disabled.Load() != 0 {
		return
	}
	if !a.mu.TryLock() {
		return
	}
	a.offerLocked(reads, writes)
	a.mu.Unlock()
}

func (a *Adaptor) offerLocked(reads, writes uint64) {
	dr := reads - a.lastReads
	dw := writes - a.lastWrites
	if dr+dw < a.th.Window {
		return
	}
	now := clock.Nanos()
	elapsed := now - a.lastNanos
	revs := a.revokes.Load()
	revNs := a.revokeNanos.Load()
	drv := revs - a.lastRevokes
	drn := revNs - a.lastRevNs
	a.lastReads, a.lastWrites = reads, writes
	a.lastRevokes, a.lastRevNs = revs, revNs
	a.lastNanos = now

	r := float64(dr) / float64(dr+dw)
	// The generalized inhibit bound: revocation time above 1/(N+1) of the
	// window's wall time disqualifies (or demotes from) biased mode.
	// (Divide the elapsed side: the nanos delta could overflow a product.)
	overloaded := elapsed > 0 && drn > elapsed/(a.th.InhibitN+1)

	target := a.decide(Mode(a.mode.Load()), r, overloaded)

	// Publish the closed window and any flip under one seq bracket so
	// snapshots never pair a mode with counters from a different window.
	a.seqc.WriteBegin()
	a.windows.Add(1)
	a.winReads.Store(dr)
	a.winWrites.Store(dw)
	a.winRevokes.Store(drv)
	if target != Mode(a.mode.Load()) {
		a.mode.Store(uint32(target))
		a.flips.Add(1)
	}
	a.seqc.WriteEnd()
}

// decide applies the hysteresis band to one window's read fraction.
func (a *Adaptor) decide(cur Mode, r float64, overloaded bool) Mode {
	th := a.th
	switch cur {
	case ModeBiased:
		if r <= th.FairEnter {
			return ModeFair
		}
		if overloaded || r < th.BiasExit {
			return ModeNeutral
		}
	case ModeNeutral:
		if r >= th.BiasEnter && !overloaded {
			return ModeBiased
		}
		if r <= th.FairEnter {
			return ModeFair
		}
	case ModeFair:
		if r >= th.BiasEnter && !overloaded {
			return ModeBiased
		}
		if r > th.FairExit {
			return ModeNeutral
		}
	}
	return cur
}

// flipLocked performs a bracketed mode change; caller holds mu.
func (a *Adaptor) flipLocked(m Mode) {
	if Mode(a.mode.Load()) == m {
		return
	}
	a.seqc.WriteBegin()
	a.mode.Store(uint32(m))
	a.flips.Add(1)
	a.seqc.WriteEnd()
}

// ForceMode flips the mode directly, bypassing window evaluation. Used by
// the model-based equivalence tests to inject deterministic mid-schedule
// flips, and available as an administrative override.
func (a *Adaptor) ForceMode(m Mode) {
	if m > ModeFair {
		return
	}
	a.mu.Lock()
	a.flipLocked(m)
	a.mu.Unlock()
}

// Snapshot returns a coherent view: all fields are loaded inside one
// validated seq bracket, so a concurrent flip can never yield a
// mode/counter combination that never existed.
func (a *Adaptor) Snapshot() AdaptorSnapshot {
	var b spin.Backoff
	for {
		s, ok := a.seqc.TryBegin()
		if !ok {
			b.Once()
			continue
		}
		snap := AdaptorSnapshot{
			Mode:              Mode(a.mode.Load()),
			Adaptive:          a.disabled.Load() == 0,
			Flips:             a.flips.Load(),
			Windows:           a.windows.Load(),
			WindowReads:       a.winReads.Load(),
			WindowWrites:      a.winWrites.Load(),
			WindowRevocations: a.winRevokes.Load(),
			Revocations:       a.revokes.Load(),
		}
		if !a.seqc.Retry(s) {
			return snap
		}
		b.Once()
	}
}
