package cluster

// Kill-and-promote chaos certification. Each schedule runs one dedicated
// writer per partition (so every commit's (epoch, shard, lsn) attribution
// is exact — the token said so, and nothing else writes that partition)
// while the driver kills and promotes random partitions' primaries at
// random points in the traffic, gracefully (quiesced, caught up: the cut
// must equal the full history — zero loss) or abruptly (mid-traffic,
// possibly with a follower deliberately lagging: acknowledged writes past
// the cut are lost, and must be *exactly* the ones past the cut).
//
// Three oracles certify every schedule:
//
//   - the model oracle: a single-mutex journal of every acknowledged
//     write, truncated at each promotion cut, replayed per shard, must
//     equal the surviving cluster state key for key — no divergence;
//   - the epoch (fencing) oracle: a deposed primary's writes are all
//     rejected, its per-shard LSNs never advance again, and its WAL files
//     never grow another byte — a revived stale primary provably cannot
//     commit;
//   - the lost/dup/reorder oracle: per shard, the journal's (epoch, lsn)
//     sequence is gapless — consecutive within an epoch, and each
//     promoted epoch's first record lands at exactly cut+1 — so no
//     acknowledged record was dropped, doubled, or reordered by promotion.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/xrand"
)

// journalEntry is one acknowledged mutation: the token the cluster handed
// back, plus what it meant. val == nil records a delete.
type journalEntry struct {
	epoch uint64
	lsn   uint64
	shard int // partition-local
	key   uint64
	val   []byte
}

// partitionJournal is one partition's commit history, appended by that
// partition's single writer in commit order.
type partitionJournal struct {
	mu      sync.Mutex
	entries []journalEntry
}

func (j *partitionJournal) append(e journalEntry) {
	j.mu.Lock()
	j.entries = append(j.entries, e)
	j.mu.Unlock()
}

// chaosWriter drives random traffic at one partition, journaling every
// acknowledged write with its token.
type chaosWriter struct {
	t       *testing.T
	c       *Cluster
	pi      int
	keys    []uint64 // keys this partition owns
	rng     *xrand.XorShift64
	journal *partitionJournal
	shardOf func(uint64) int
}

func newChaosWriter(t *testing.T, c *Cluster, pi int, keyspace uint64, seed uint64) *chaosWriter {
	w := &chaosWriter{
		t: t, c: c, pi: pi,
		rng:     xrand.NewXorShift64(seed),
		journal: &partitionJournal{},
		shardOf: c.Member(pi).Engine().ShardOf, // pure in key and shard count
	}
	for k := uint64(0); k < keyspace; k++ {
		if c.Partition(k) == pi {
			w.keys = append(w.keys, k)
		}
	}
	if len(w.keys) == 0 {
		t.Fatalf("partition %d owns no keys in 0..%d", pi, keyspace)
	}
	return w
}

func (w *chaosWriter) key() uint64 { return w.keys[w.rng.Intn(uint64(len(w.keys)))] }

// step performs one random acknowledged op and journals it.
func (w *chaosWriter) step() {
	switch w.rng.Intn(10) {
	case 0, 1: // delete (logged even on a miss)
		k := w.key()
		_, tok, err := w.c.Delete(k)
		if err != nil {
			w.t.Errorf("partition %d: Delete(%d): %v", w.pi, k, err)
			return
		}
		w.journal.append(journalEntry{epoch: tok.Epoch, lsn: tok.LSN, shard: w.shardOf(k), key: k})
	case 2, 3: // MultiPut within the partition: one record per shard group
		n := 2 + int(w.rng.Intn(4))
		keys := make([]uint64, n)
		vals := make([][]byte, n)
		for i := range keys {
			keys[i] = w.key()
			vals[i] = kvs.EncodeValue(w.rng.Next())
		}
		toks, err := w.c.MultiPut(keys, vals, 0)
		if err != nil {
			w.t.Errorf("partition %d: MultiPut: %v", w.pi, err)
			return
		}
		byShard := map[int]ShardLSN{}
		for _, tok := range toks {
			_, sh, ok := w.c.SplitGlobalShard(tok.Shard)
			if !ok {
				w.t.Errorf("partition %d: token names global shard %d out of range", w.pi, tok.Shard)
				return
			}
			byShard[sh] = tok
		}
		// Later duplicates of a key within the batch win (engine batch
		// semantics: applied in order), so journal in order.
		for i, k := range keys {
			tok, ok := byShard[w.shardOf(k)]
			if !ok {
				w.t.Errorf("partition %d: batch touched shard %d but no token covers it", w.pi, w.shardOf(k))
				return
			}
			w.journal.append(journalEntry{epoch: tok.Epoch, lsn: tok.LSN, shard: w.shardOf(k), key: k, val: vals[i]})
		}
	default: // put
		k := w.key()
		v := kvs.EncodeValue(w.rng.Next())
		tok, err := w.c.Put(k, v, 0)
		if err != nil {
			w.t.Errorf("partition %d: Put(%d): %v", w.pi, k, err)
			return
		}
		w.journal.append(journalEntry{epoch: tok.Epoch, lsn: tok.LSN, shard: w.shardOf(k), key: k, val: v})
	}
}

// survived reports whether a journaled commit is part of the surviving
// history: bound by the first promotion cut after its epoch, exactly the
// rule CheckToken adjudicates client tokens with.
func survived(e journalEntry, cuts map[uint64][]uint64, finalEpoch uint64) bool {
	for epoch := e.epoch + 1; epoch <= finalEpoch; epoch++ {
		if cut, ok := cuts[epoch]; ok {
			return e.lsn <= cut[e.shard]
		}
	}
	return true
}

// replay folds a partition's journal — truncated at the promotion cuts —
// into per-shard reference maps: the model the promoted state must equal.
func replay(j *partitionJournal, shards int, cuts map[uint64][]uint64, finalEpoch uint64) ([]map[uint64][]byte, int) {
	refs := make([]map[uint64][]byte, shards)
	for i := range refs {
		refs[i] = map[uint64][]byte{}
	}
	lost := 0
	for _, e := range j.entries {
		if !survived(e, cuts, finalEpoch) {
			lost++
			continue
		}
		if e.val == nil {
			delete(refs[e.shard], e.key)
		} else {
			refs[e.shard][e.key] = e.val
		}
	}
	return refs, lost
}

// assertNoDivergence is the model oracle: the surviving engine state must
// equal the truncated journal replay, shard by shard, key by key.
func assertNoDivergence(t *testing.T, c *Cluster, pi int, refs []map[uint64][]byte, label string) {
	t.Helper()
	eng := c.Member(pi).Engine()
	for sh, want := range refs {
		got := eng.SnapshotShard(sh)
		if len(got) != len(want) {
			t.Errorf("%s: partition %d shard %d: engine has %d keys, model %d", label, pi, sh, len(got), len(want))
		}
		for k, wv := range want {
			if gv, ok := got[k]; !ok || !bytes.Equal(gv, wv) {
				t.Errorf("%s: partition %d shard %d key %d = %x (present %v), model %x", label, pi, sh, k, gv, ok, wv)
			}
		}
	}
}

// assertGaplessLSNs is the lost/dup/reorder oracle: all writes to a
// partition flow through its journal, so per shard the journal must hold
// every record exactly once, in order — consecutive LSNs within an epoch,
// with each promoted epoch opening at exactly its cut + 1.
func assertGaplessLSNs(t *testing.T, j *partitionJournal, pi, shards int, cuts map[uint64][]uint64) {
	t.Helper()
	type pos struct {
		epoch, lsn uint64
	}
	last := make([]pos, shards)
	for i := range last {
		last[i] = pos{epoch: 1}
	}
	for _, e := range j.entries {
		p := &last[e.shard]
		if e.epoch == p.epoch && e.lsn == p.lsn {
			continue // same record (another key of one batch group)
		}
		base := p.lsn
		if e.epoch != p.epoch {
			cut, ok := cuts[e.epoch]
			if !ok {
				t.Errorf("partition %d shard %d: journal entered epoch %d with no recorded promotion", pi, e.shard, e.epoch)
				return
			}
			if cut[e.shard] < p.lsn {
				// The cut dropped acknowledged records; the new epoch resumes
				// from the cut, not from our high-water mark.
				base = cut[e.shard]
			}
		}
		if e.lsn != base+1 {
			t.Errorf("partition %d shard %d: LSN %d follows %d in epoch %d (gap or reorder)", pi, e.shard, e.lsn, base, e.epoch)
			return
		}
		*p = pos{epoch: e.epoch, lsn: e.lsn}
	}
}

// corpseState freezes a deposed primary's observable commit surface.
type corpseState struct {
	corpse   *Member
	lsns     []uint64
	walBytes int64
}

func captureCorpse(t *testing.T, m *Member) corpseState {
	t.Helper()
	if !m.Fenced() {
		t.Errorf("partition %d epoch %d: deposed member is not fenced", m.partition, m.Epoch())
	}
	st := corpseState{corpse: m, walBytes: walSize(t, m.Dir())}
	for sh := 0; sh < m.Engine().NumShards(); sh++ {
		st.lsns = append(st.lsns, m.Engine().ShardLSN(sh))
	}
	return st
}

// hammer is the epoch oracle's active half: throw every mutation at the
// corpse and require each to bounce off the fence.
func (st corpseState) hammer(t *testing.T, rng *xrand.XorShift64) {
	t.Helper()
	m := st.corpse
	k := rng.Next() % 64
	if _, _, err := m.Put(k, []byte("stale"), 0); err != ErrFenced {
		t.Errorf("fenced Put: err = %v, want ErrFenced", err)
	}
	if err := m.PutAsync(k, []byte("stale")); err != ErrFenced {
		t.Errorf("fenced PutAsync: err = %v, want ErrFenced", err)
	}
	if _, _, _, err := m.Delete(k); err != ErrFenced {
		t.Errorf("fenced Delete: err = %v, want ErrFenced", err)
	}
	if _, err := m.MultiPut([]uint64{k, k + 1}, [][]byte{[]byte("a"), []byte("b")}, 0, nil); err != ErrFenced {
		t.Errorf("fenced MultiPut: err = %v, want ErrFenced", err)
	}
	if _, _, err := m.MultiDelete([]uint64{k}, nil); err != ErrFenced {
		t.Errorf("fenced MultiDelete: err = %v, want ErrFenced", err)
	}
	if _, err := m.Flush(); err != ErrFenced {
		t.Errorf("fenced Flush: err = %v, want ErrFenced", err)
	}
	if _, err := m.Reap(128); err != ErrFenced {
		t.Errorf("fenced Reap: err = %v, want ErrFenced", err)
	}
}

// check is the epoch oracle's passive half: after the hammering (and any
// amount of cluster traffic), the corpse's LSNs and WAL bytes are exactly
// where the fence left them.
func (st corpseState) check(t *testing.T) {
	t.Helper()
	m := st.corpse
	for sh, want := range st.lsns {
		if got := m.Engine().ShardLSN(sh); got != want {
			t.Errorf("partition %d epoch %d shard %d: corpse LSN advanced %d → %d", m.partition, m.Epoch(), sh, want, got)
		}
	}
	if got := walSize(t, m.Dir()); got != st.walBytes {
		t.Errorf("partition %d epoch %d: corpse WAL grew %d → %d bytes", m.partition, m.Epoch(), st.walBytes, got)
	}
}

// walSize sums the WAL bytes under a member directory — the durable
// evidence a fenced primary committed nothing.
func walSize(t *testing.T, dir string) int64 {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// mustFailover promotes, retrying while no follower has bootstrapped the
// promoted base yet (ErrNotReady — the primary is still alive and serving,
// so eligibility is a matter of milliseconds).
func mustFailover(t *testing.T, c *Cluster, pi int) uint64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		epoch, err := c.Failover(pi)
		if err == nil {
			return epoch
		}
		if !errors.Is(err, ErrNotReady) || time.Now().After(deadline) {
			t.Fatalf("Failover(%d): %v", pi, err)
		}
		time.Sleep(time.Millisecond)
	}
}

// chaosSchedule is one randomized kill-and-promote run; it returns how
// many acknowledged commits the schedule lost to abrupt cuts (for the
// aggregate loss/zero-loss accounting in the driver).
func chaosSchedule(t *testing.T, seed uint64) (lost, failovers int) {
	rng := xrand.NewXorShift64(seed)
	partitions := 2 + int(rng.Intn(2)) // 2 or 3
	c, err := Open(Config{
		Partitions:    partitions,
		Shards:        2,
		Followers:     2,
		Dir:           t.TempDir(),
		Policy:        kvs.SyncNone,
		RetryInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	writers := make([]*chaosWriter, partitions)
	for pi := range writers {
		writers[pi] = newChaosWriter(t, c, pi, 192, seed^uint64(pi)<<32^0xA11CE)
	}
	var corpses []corpseState

	rounds := 1 + int(rng.Intn(2))
	for round := 0; round < rounds; round++ {
		// A burst of quiet traffic, then a failover under live fire.
		for i := 0; i < 8+int(rng.Intn(24)); i++ {
			writers[rng.Intn(uint64(partitions))].step()
		}
		victim := int(rng.Intn(uint64(partitions)))
		graceful := rng.Intn(2) == 0
		if graceful {
			// Planned handoff: quiesce, catch the followers up, promote.
			if err := c.WaitCaughtUp(10 * time.Second); err != nil {
				t.Fatal(err)
			}
		} else if rng.Intn(2) == 0 {
			// Make the cut lossy on purpose: lag one follower, and keep
			// writing right up to (and across) the kill.
			c.Followers(victim)[int(rng.Intn(2))].Stop()
			for i := 0; i < 6; i++ {
				writers[victim].step()
			}
		}

		old := c.Member(victim)
		var wg sync.WaitGroup
		if !graceful {
			// Live fire: every partition keeps writing while the victim is
			// killed and promoted. Routed writes must never fail — they block
			// on the promotion and land in the new epoch.
			for pi := range writers {
				wg.Add(1)
				go func(w *chaosWriter) {
					defer wg.Done()
					for i := 0; i < 10; i++ {
						w.step()
					}
				}(writers[pi])
			}
		}
		mustFailover(t, c, victim)
		failovers++
		wg.Wait()

		// The deposed primary joins the corpse pool; hammer every corpse so
		// far and re-verify none of them ever moved.
		corpses = append(corpses, captureCorpse(t, old))
		for _, st := range corpses {
			st.hammer(t, rng)
			st.check(t)
		}
	}

	// Post-chaos traffic must route cleanly into the promoted epochs.
	for i := 0; i < 16; i++ {
		writers[rng.Intn(uint64(partitions))].step()
	}

	// Adjudicate every partition against the oracles.
	for pi, w := range writers {
		finalEpoch := c.Epoch(pi)
		cuts := map[uint64][]uint64{}
		for e := uint64(2); e <= finalEpoch; e++ {
			if cut := c.Cut(pi, e); cut != nil {
				cuts[e] = cut
			}
		}
		refs, nlost := replay(w.journal, c.ShardsPerPartition(), cuts, finalEpoch)
		lost += nlost
		assertNoDivergence(t, c, pi, refs, fmt.Sprintf("seed %#x", seed))
		assertGaplessLSNs(t, w.journal, pi, c.ShardsPerPartition(), cuts)

		// Token adjudication matches the survival rule: a sample of journal
		// entries presented back as read tokens must pass iff they survived.
		for i, e := range w.journal.entries {
			if i%7 != 0 {
				continue
			}
			terr := c.CheckToken(e.epoch, e.lsn, []uint64{e.key})
			if survived(e, cuts, finalEpoch) {
				if terr != nil {
					t.Errorf("seed %#x: surviving token (epoch %d, lsn %d) rejected: %v", seed, e.epoch, e.lsn, terr)
				}
			} else if terr == nil || !terr.Conflict {
				t.Errorf("seed %#x: lost token (epoch %d, lsn %d) not conflicted: %v", seed, e.epoch, e.lsn, terr)
			}
		}
	}
	// One last corpse sweep: all the traffic above moved nothing stale.
	for _, st := range corpses {
		st.check(t)
	}
	if t.Failed() {
		t.Fatalf("seed %#x: schedule diverged", seed)
	}
	return lost, failovers
}

// TestChaosKillAndPromote runs the randomized schedules — at least 100 in
// full mode, certifying zero divergence between the surviving cluster
// state and the cut-truncated model across every one of them.
func TestChaosKillAndPromote(t *testing.T) {
	schedules := 100
	if testing.Short() {
		schedules = 8
	}
	var totalLost, totalFailovers, lossy int
	for s := 0; s < schedules; s++ {
		seed := 0xC1A05<<32 | uint64(s)
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			lost, fo := chaosSchedule(t, seed)
			totalLost += lost
			totalFailovers += fo
			if lost > 0 {
				lossy++
			}
		})
	}
	t.Logf("%d schedules, %d failovers: %d schedules lost %d acknowledged commits to abrupt cuts (all adjudicated)",
		schedules, totalFailovers, lossy, totalLost)
	if totalFailovers < schedules {
		t.Fatalf("only %d failovers across %d schedules", totalFailovers, schedules)
	}
}

// TestChaosGracefulHandoffZeroLoss pins the planned-handoff guarantee the
// randomized suite only samples: quiesce, WaitCaughtUp, failover — the cut
// equals the full history and not one acknowledged commit is lost.
func TestChaosGracefulHandoffZeroLoss(t *testing.T) {
	rounds := 20
	if testing.Short() {
		rounds = 4
	}
	c, err := Open(Config{
		Partitions: 2, Shards: 2, Followers: 2,
		Dir: t.TempDir(), Policy: kvs.SyncNone, RetryInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	writers := []*chaosWriter{
		newChaosWriter(t, c, 0, 192, 0x60D1),
		newChaosWriter(t, c, 1, 192, 0x60D2),
	}
	rng := xrand.NewXorShift64(0x60D0)
	for round := 0; round < rounds; round++ {
		for i := 0; i < 12; i++ {
			writers[rng.Intn(2)].step()
		}
		victim := int(rng.Intn(2))
		if err := c.WaitCaughtUp(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Failover(victim); err != nil {
			t.Fatal(err)
		}
	}
	for pi, w := range writers {
		finalEpoch := c.Epoch(pi)
		cuts := map[uint64][]uint64{}
		for e := uint64(2); e <= finalEpoch; e++ {
			cuts[e] = c.Cut(pi, e)
		}
		refs, lost := replay(w.journal, c.ShardsPerPartition(), cuts, finalEpoch)
		if lost != 0 {
			t.Errorf("partition %d: graceful handoffs lost %d acknowledged commits", pi, lost)
		}
		assertNoDivergence(t, c, pi, refs, "graceful")
		assertGaplessLSNs(t, w.journal, pi, c.ShardsPerPartition(), cuts)
	}
}
