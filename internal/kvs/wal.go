package kvs

// The write-ahead log: each shard owns an append-only log file, and every
// mutating operation appends one CRC-framed record — containing the whole
// per-shard batch — before applying it to the in-memory map. Group commit
// is the point: the per-shard groups that MultiPut/MultiDelete already form
// (forEachShardGroup) and the batches the async queue already detaches
// become ONE log record and, under SyncAlways, ONE fsync, so the dominant
// slow-path cost is amortized across the batch exactly the way BRAVO
// amortizes bias revocation across the reads that follow it. A lone Put
// pays a full fsync; a 64-key batch pays 1/64th of one per key.
//
// Ordering: a shard's WAL mutex is held across append+fsync+apply, so the
// log's record order IS the apply order and replay reconstructs exactly the
// state the maps held. Readers never touch the WAL mutex — the BRAVO read
// fast path stays one CAS even while a batch is being synced.
//
// Record format (all integers little-endian, fixed width):
//
//	record  := u32 payloadLen | u32 crc32c(payload) | payload
//	payload := u8 version(=1) | u32 count | count × entry
//	entry   := u8 opPut    | u64 key | u32 vlen | vlen bytes
//	         | u8 opPutTTL | u64 key | i64 remainingNanos | u32 vlen | vlen bytes
//	         | u8 opDelete | u64 key
//
// TTL deadlines are persisted as *remaining* nanoseconds at append time,
// not absolute deadlines: the process clock (internal/clock) has a
// per-process epoch, so absolute values are meaningless across restarts.
// Replay re-anchors them at recovery time — a TTL clock effectively pauses
// while the store is down, and never fires early.
//
// Replay is prefix-consistent by construction: decoding stops at the first
// record whose header is short, whose length is insane, whose CRC
// mismatches, or whose payload is structurally malformed, and reports the
// byte offset of the last fully-valid record so the opener can truncate the
// torn tail before appending new records after it. A record is applied only
// after its payload decodes completely — a torn or corrupt tail can lose
// the suffix, never corrupt a key or value.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"github.com/bravolock/bravo/internal/clock"
)

// SyncPolicy selects when the WAL fsyncs.
type SyncPolicy int

const (
	// SyncNone never fsyncs: records are written to the file (and survive a
	// process crash) but an OS crash can lose the tail the kernel had not
	// flushed. The cheapest durable mode.
	SyncNone SyncPolicy = iota
	// SyncAlways fsyncs once per appended record — which, with group
	// commit, is once per shard batch, not once per key.
	SyncAlways
)

// String returns the flag spelling of p.
func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses a -sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "none":
		return SyncNone, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("kvs: sync policy %q (want none or always)", s)
}

const (
	walVersion    = 1
	walHeaderSize = 8 // u32 payload length + u32 CRC32-C
	// walMaxPayload bounds a record's declared payload length; anything
	// larger is treated as a torn/corrupt tail rather than allocated.
	walMaxPayload = 1 << 30

	walOpPut    = 1
	walOpPutTTL = 2
	walOpDelete = 3
)

// walCRC is the Castagnoli table (hardware-accelerated on amd64/arm64).
var walCRC = crc32.MakeTable(crc32.Castagnoli)

// errWALClosed reports an append attempted after Close.
var errWALClosed = errors.New("kvs: write-ahead log is closed")

// shardWAL is one shard's log. mu serializes append+fsync+apply (writers
// and checkpoints take it before the shard lock; readers never take it), so
// record order is apply order. It is nil on volatile engines — the lock and
// log* methods are nil-receiver no-ops so the write paths stay branchless
// apart from one nil check.
type shardWAL struct {
	mu     sync.Mutex
	f      *os.File
	policy SyncPolicy
	buf    []byte // record scratch, reused under mu
	// size is the file length up to the last fully-written record; a
	// partial write rolls back to it (see commit) so no record is ever
	// appended beyond torn bytes, where replay could not reach it.
	size   int64
	closed bool
	err    error // first write/sync error; the engine stays available in memory

	records atomic.Uint64
	keys    atomic.Uint64
	syncs   atomic.Uint64
	bytes   atomic.Uint64
	errs    atomic.Uint64
}

// lock acquires the WAL mutex; no-op without a WAL.
func (w *shardWAL) lock() {
	if w != nil {
		w.mu.Lock()
	}
}

// unlock releases the WAL mutex; no-op without a WAL.
func (w *shardWAL) unlock() {
	if w != nil {
		w.mu.Unlock()
	}
}

// begin starts a record of count entries in the scratch buffer. The caller
// holds mu and follows with addPut/addDelete calls, then commit.
func (w *shardWAL) begin(count int) {
	w.buf = w.buf[:0]
	w.buf = append(w.buf, make([]byte, walHeaderSize)...)
	w.buf = append(w.buf, walVersion)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(count))
}

// addPut appends one put entry. A zero deadline is a plain put; a non-zero
// one is encoded as remaining nanoseconds (see the package note).
func (w *shardWAL) addPut(key uint64, value []byte, deadline int64) {
	if deadline == 0 {
		w.buf = append(w.buf, walOpPut)
		w.buf = binary.LittleEndian.AppendUint64(w.buf, key)
	} else {
		w.buf = append(w.buf, walOpPutTTL)
		w.buf = binary.LittleEndian.AppendUint64(w.buf, key)
		w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(deadline-clock.Nanos()))
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(value)))
	w.buf = append(w.buf, value...)
}

// addDelete appends one delete entry.
func (w *shardWAL) addDelete(key uint64) {
	w.buf = append(w.buf, walOpDelete)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, key)
}

// commit frames the pending record (length + CRC over the payload), writes
// it, and fsyncs under SyncAlways. Write and sync failures are recorded
// (first error wins, WALError reports it) rather than propagated: the
// engine keeps serving from memory with durability degraded, the same
// availability-over-durability call redis makes on a failing AOF disk.
func (w *shardWAL) commit(count int) {
	if w.closed {
		w.setErr(errWALClosed)
		return
	}
	payload := w.buf[walHeaderSize:]
	binary.LittleEndian.PutUint32(w.buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.buf[4:], crc32.Checksum(payload, walCRC))
	n, err := w.f.Write(w.buf)
	w.bytes.Add(uint64(n))
	if err != nil {
		w.setErr(err)
		// Roll the file back to the last complete record: replay stops at
		// torn bytes, so anything appended beyond them would be durable in
		// name only. If even the rollback fails, stop appending for good.
		if terr := w.f.Truncate(w.size); terr != nil {
			w.closed = true
		}
		return
	}
	w.size += int64(n)
	w.records.Add(1)
	w.keys.Add(uint64(count))
	if w.policy == SyncAlways {
		if err := w.f.Sync(); err != nil {
			w.setErr(err)
			return
		}
		w.syncs.Add(1)
	}
}

// setErr records the first failure; the caller holds mu.
func (w *shardWAL) setErr(err error) {
	w.errs.Add(1)
	if w.err == nil {
		w.err = err
	}
}

// rotate makes the current log the "old" generation and starts a fresh
// one: sync, then rename cur → old and reopen cur empty. Called by
// checkpoints with mu held, so no append can interleave with the swap.
//
// If a previous checkpoint died between its rotation and its prune, old
// already exists and still holds records the published snapshot may not
// cover — renaming over it would destroy the only copy of acknowledged
// writes. In that case the current log is *appended* to old and truncated
// in place instead: replay order (snap, old, cur) stays correct, and a
// crash mid-merge only duplicates records that cur still holds, which
// replay applies idempotently in log order.
func (w *shardWAL) rotate(cur, old string) error {
	if w.closed {
		return errWALClosed
	}
	if err := w.f.Sync(); err != nil {
		w.setErr(err)
		return err
	}
	if _, err := os.Stat(old); err == nil {
		if err := appendFile(old, cur); err != nil {
			w.setErr(err)
			return err
		}
		if err := w.f.Truncate(0); err != nil {
			w.closed = true
			w.setErr(err)
			return err
		}
		w.size = 0
		return nil
	} else if !os.IsNotExist(err) {
		w.setErr(err)
		return err
	}
	if err := w.f.Close(); err != nil {
		w.setErr(err)
		return err
	}
	if err := os.Rename(cur, old); err != nil {
		// Try to keep the engine writable on the old file.
		if f, ferr := os.OpenFile(cur, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); ferr == nil {
			w.f = f
		} else {
			w.closed = true
		}
		w.setErr(err)
		return err
	}
	f, err := os.OpenFile(cur, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		w.closed = true
		w.setErr(err)
		return err
	}
	w.f = f
	w.size = 0
	return nil
}

// appendFile appends src's contents to dst and fsyncs dst.
func appendFile(dst, src string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(dst, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// walEntry is one decoded log (or snapshot) entry. val aliases the decode
// buffer; recovery copies it into the shard map via putLocked.
type walEntry struct {
	op  byte
	key uint64
	rem int64 // opPutTTL: remaining nanoseconds at append time
	val []byte
}

// walReplay decodes records from data, invoking apply once per fully-valid
// record, and returns the byte offset just past the last valid record.
// Decoding stops — without applying anything from the bad record — at the
// first short header, oversize length, CRC mismatch, or malformed payload:
// the torn-tail rule. It never panics, whatever the bytes (FuzzWALReplay).
func walReplay(data []byte, apply func([]walEntry)) (valid int) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) < walHeaderSize {
			return off
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		crc := binary.LittleEndian.Uint32(rest[4:])
		if plen > walMaxPayload || plen > len(rest)-walHeaderSize {
			return off
		}
		payload := rest[walHeaderSize : walHeaderSize+plen]
		if crc32.Checksum(payload, walCRC) != crc {
			return off
		}
		entries, ok := walDecodePayload(payload)
		if !ok {
			return off
		}
		apply(entries)
		off += walHeaderSize + plen
	}
}

// walDecodePayload parses one record payload into entries, strictly: every
// entry must parse and the payload must end exactly at the last one.
func walDecodePayload(p []byte) ([]walEntry, bool) {
	if len(p) < 5 || p[0] != walVersion {
		return nil, false
	}
	count := int(binary.LittleEndian.Uint32(p[1:]))
	// Each entry is at least 9 bytes; anything claiming more is malformed,
	// and the bound keeps the preallocation honest on adversarial input.
	if count < 0 || count > (len(p)-5)/9 {
		return nil, false
	}
	entries := make([]walEntry, 0, count)
	off := 5
	for i := 0; i < count; i++ {
		if len(p)-off < 9 {
			return nil, false
		}
		e := walEntry{op: p[off], key: binary.LittleEndian.Uint64(p[off+1:])}
		off += 9
		switch e.op {
		case walOpDelete:
		case walOpPut, walOpPutTTL:
			if e.op == walOpPutTTL {
				if len(p)-off < 8 {
					return nil, false
				}
				e.rem = int64(binary.LittleEndian.Uint64(p[off:]))
				off += 8
			}
			if len(p)-off < 4 {
				return nil, false
			}
			vlen := int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
			if vlen < 0 || vlen > len(p)-off {
				return nil, false
			}
			e.val = p[off : off+vlen]
			off += vlen
		default:
			return nil, false
		}
		entries = append(entries, e)
	}
	return entries, off == len(p)
}

// deadlineFromRemaining re-anchors a persisted remaining-nanoseconds value
// on the current process clock. Overflow saturates to "never" the way
// ttlDeadline does, and the result avoids 0, which putLocked reserves for
// "no TTL" — an entry that lands exactly on 0 is long expired anyway.
func deadlineFromRemaining(rem int64) int64 {
	now := clock.Nanos()
	d := now + rem
	if rem > 0 && d < now {
		return math.MaxInt64
	}
	if d == 0 {
		return -1
	}
	return d
}
