package core

import (
	"sync"
	"testing"

	"github.com/bravolock/bravo/internal/lockcheck"
	"github.com/bravolock/bravo/internal/locks/mutexrw"
	"github.com/bravolock/bravo/internal/locks/pfq"
	"github.com/bravolock/bravo/internal/locks/pft"
	"github.com/bravolock/bravo/internal/locks/ptl"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/rwl"
)

// Storms drive the full lockcheck battery through every BRAVO variant: the
// combination of fast-path readers, slow-path readers, revocation, and the
// underlying lock's own admission machinery is where the races live.

func stormVariants() map[string]func() rwl.RWLock {
	return map[string]func() rwl.RWLock{
		"bravo-ba": func() rwl.RWLock {
			return New(new(pfq.Lock), WithTable(NewTable(DefaultTableSize)))
		},
		"bravo-pf-t": func() rwl.RWLock {
			return New(new(pft.Lock), WithTable(NewTable(DefaultTableSize)))
		},
		"bravo-pthread": func() rwl.RWLock {
			return New(ptl.New(), WithTable(NewTable(DefaultTableSize)))
		},
		"bravo-go": func() rwl.RWLock {
			return New(new(stdrw.Lock), WithTable(NewTable(DefaultTableSize)))
		},
		"bravo-mutex": func() rwl.RWLock {
			return New(new(mutexrw.Lock), WithTable(NewTable(DefaultTableSize)))
		},
		"bravo-ba-aggressive": func() rwl.RWLock {
			// AlwaysPolicy maximizes bias flapping and revocation frequency.
			return New(new(pfq.Lock), WithTable(NewTable(DefaultTableSize)), WithPolicy(AlwaysPolicy{}))
		},
		"bravo-ba-tiny-table": func() rwl.RWLock {
			// A 2-slot table maximizes collisions and slow-path mixing.
			return New(new(pfq.Lock), WithTable(NewTable(2)), WithPolicy(AlwaysPolicy{}))
		},
		"bravo-ba-2d": func() rwl.RWLock {
			return New(new(pfq.Lock), WithTable(NewTable2D(8, 32)), WithPolicy(AlwaysPolicy{}))
		},
		"bravo-ba-probe2": func() rwl.RWLock {
			return New(new(pfq.Lock), WithTable(NewTable(4)), WithPolicy(AlwaysPolicy{}), WithSecondProbe())
		},
		"bravo-ba-random": func() rwl.RWLock {
			return New(new(pfq.Lock), WithTable(NewTable(64)), WithPolicy(AlwaysPolicy{}), WithRandomizedIndex())
		},
		"bravo-ba-revmu": func() rwl.RWLock {
			return New(new(pfq.Lock), WithTable(NewTable(64)), WithPolicy(AlwaysPolicy{}), WithRevocationMutex())
		},
		"bravo-ba-bernoulli": func() rwl.RWLock {
			return New(new(pfq.Lock), WithTable(NewTable(64)), WithPolicy(&BernoulliPolicy{P: 4}))
		},
	}
}

func TestStormExclusion(t *testing.T) {
	for name, mk := range stormVariants() {
		t.Run(name, func(t *testing.T) {
			lockcheck.Exclusion(t, mk, 4, 2, 1200)
		})
	}
}

func TestStormWriteHeavy(t *testing.T) {
	for name, mk := range stormVariants() {
		t.Run(name, func(t *testing.T) {
			lockcheck.Exclusion(t, mk, 2, 4, 800)
		})
	}
}

func TestStormTry(t *testing.T) {
	for name, mk := range stormVariants() {
		if name == "bravo-ba-revmu" {
			// TryLock under revMu composes fine but the storm's blocking
			// Lock path already covers it; keep runtime bounded.
			continue
		}
		t.Run(name, func(t *testing.T) {
			lockcheck.TryExclusion(t, mk, 6, 800)
		})
	}
}

func TestStormSharedTableManyLocks(t *testing.T) {
	// Multiple BRAVO locks sharing one table, stormed together: inter-lock
	// collisions must never compromise exclusion (the paper: "collisions
	// are benign, and impact performance but not correctness").
	tab := NewTable(8) // deliberately tiny: constant inter-lock collisions
	const nlocks = 4
	locks := make([]*Lock, nlocks)
	for i := range locks {
		locks[i] = New(new(pfq.Lock), WithTable(tab), WithPolicy(AlwaysPolicy{}))
	}
	states := make([]struct {
		mu      sync.Mutex
		readers int
		writers int
	}, nlocks)
	var wg sync.WaitGroup
	fail := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := (seed + i) % nlocks
				l := locks[k]
				if (seed+i)%7 == 0 {
					l.Lock()
					states[k].mu.Lock()
					if states[k].readers != 0 || states[k].writers != 0 {
						select {
						case fail <- "writer overlap":
						default:
						}
					}
					states[k].writers++
					states[k].mu.Unlock()
					states[k].mu.Lock()
					states[k].writers--
					states[k].mu.Unlock()
					l.Unlock()
				} else {
					tok := l.RLock()
					states[k].mu.Lock()
					if states[k].writers != 0 {
						select {
						case fail <- "reader/writer overlap":
						default:
						}
					}
					states[k].readers++
					states[k].mu.Unlock()
					states[k].mu.Lock()
					states[k].readers--
					states[k].mu.Unlock()
					l.RUnlock(tok)
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if tab.Occupancy() != 0 {
		t.Fatal("table left dirty after storm")
	}
}
