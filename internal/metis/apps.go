package metis

import (
	"bytes"

	"github.com/bravolock/bravo/internal/rwsem"
	"github.com/bravolock/bravo/internal/vm"
	"github.com/bravolock/bravo/internal/xrand"
)

// dictionary is the word pool for synthetic corpora; Metis's wr* apps fill
// memory with "random 'words'" the same way.
var dictionary = []string{
	"lock", "reader", "writer", "bias", "table", "slot", "cache", "line",
	"phase", "fair", "queue", "ticket", "cohort", "numa", "socket", "core",
	"fence", "atomic", "revoke", "inhibit", "scan", "fast", "slow", "path",
	"page", "fault", "mmap", "semaphore", "kernel", "thread", "stripe",
	"publish", "collide", "hash", "index", "probe", "spin", "park", "wake",
}

// GenerateCorpus produces n pseudo-random space-separated words,
// deterministic in seed.
func GenerateCorpus(n int, seed uint64) []byte {
	rng := xrand.NewXorShift64(seed)
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		if i > 0 {
			buf.WriteByte(' ')
		}
		buf.WriteString(dictionary[rng.Intn(uint64(len(dictionary)))])
	}
	return buf.Bytes()
}

// SplitCorpus cuts a corpus into roughly equal word-aligned splits.
func SplitCorpus(corpus []byte, splits int) [][]byte {
	if splits < 1 {
		splits = 1
	}
	var out [][]byte
	step := len(corpus) / splits
	if step == 0 {
		return [][]byte{corpus}
	}
	start := 0
	for start < len(corpus) {
		end := start + step
		if end >= len(corpus) {
			end = len(corpus)
		} else {
			for end < len(corpus) && corpus[end] != ' ' {
				end++
			}
		}
		out = append(out, corpus[start:end])
		start = end + 1
	}
	return out
}

// mapWords tokenizes a split and emits (word, 1) per occurrence.
func mapWords(split []byte, alloc *Allocator, emit func([]byte, uint64)) {
	start := -1
	for i := 0; i <= len(split); i++ {
		if i < len(split) && split[i] != ' ' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			emit(split[start:i], 1)
			start = -1
		}
	}
}

// sumValues is the word-count reducer.
func sumValues(_ string, values []uint64) uint64 {
	var s uint64
	for _, v := range values {
		s += v
	}
	return s
}

// WC runs the Metis wc (word count) application: count word occurrences in
// the given corpus with the given parallelism, contending on as's mmap_sem.
func WC(as *vm.AddressSpace, corpus []byte, workers int) *Result {
	job := &Job{
		Workers: workers,
		Map:     mapWords,
		Reduce:  sumValues,
		AS:      as,
	}
	return job.Run(SplitCorpus(corpus, workers*4))
}

// Wrmem runs the Metis wrmem application: each worker allocates a large
// buffer, fills it with random words (faulting in every page), and the
// words are fed into an inverted-index (word-count) reduction. wordsPerSplit
// controls the per-split buffer volume.
func Wrmem(as *vm.AddressSpace, workers, splits, wordsPerSplit int) *Result {
	job := &Job{
		Workers: workers,
		Map: func(split []byte, alloc *Allocator, emit func([]byte, uint64)) {
			// The split carries only a seed; the worker generates and
			// stores the words through the instrumented allocator, exactly
			// as wrmem "allocates a large chunk of memory and fills it with
			// random words".
			seed := uint64(split[0])<<8 | uint64(split[1])
			rng := xrand.NewXorShift64(seed + 1)
			for i := 0; i < wordsPerSplit; i++ {
				w := dictionary[rng.Intn(uint64(len(dictionary)))]
				stored := alloc.Copy([]byte(w))
				emit(stored, 1)
			}
		},
		Reduce: sumValues,
		AS:     as,
	}
	seeds := make([][]byte, splits)
	for i := range seeds {
		seeds[i] = []byte{byte(i >> 8), byte(i)}
	}
	return job.Run(seeds)
}

// NewStockAS builds an address space over the stock rwsem; NewBravoAS over
// the BRAVO rwsem. These are the two "kernels" of Tables 1–2.
func NewStockAS() *vm.AddressSpace {
	return vm.NewAddressSpace(vm.StockSem{S: rwsem.New(rwsem.DefaultConfig())})
}

// NewBravoAS builds an address space whose mmap_sem is BRAVO-augmented.
func NewBravoAS() *vm.AddressSpace {
	return vm.NewAddressSpace(vm.BravoSem{S: rwsem.NewBravo(rwsem.DefaultConfig())})
}
