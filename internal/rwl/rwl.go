// Package rwl defines the reader-writer lock interfaces shared by every lock
// in this repository, and a constructor registry that lets benchmarks select
// lock implementations by name (playing the role of the paper's LD_PRELOAD
// interposition, §5).
//
// # Token-passing reads
//
// The paper notes (§3) that "the slot value must be passed from the read lock
// operator to the corresponding unlock", and that the Cohort lock passes the
// reader's NUMA node the same way. We make that explicit: RLock returns a
// Token that the caller hands back to RUnlock. Substrate locks use the low 32
// bits of the token (BRAVO reserves the upper bits to distinguish fast-path
// acquisitions), and locks with no per-acquisition state return Token(0).
package rwl

// Token carries per-acquisition reader state from RLock to RUnlock.
//
// Encoding convention: substrate locks (BA, PF-T, Per-CPU, Cohort, pthread,
// rwsem) confine themselves to the low 32 bits; the BRAVO wrapper stores its
// fast-path slot index in the low 32 bits plus the slot's publication
// generation above it (the always-on unbalanced-unlock guard, see
// bias.SlotToken), tagged with bit 63. Composite locks may claim bit 62 as
// their own discriminator (the adaptive fair gate does).
type Token uint64

// RWLock is the common reader-writer lock interface.
//
// The admission policy (reader preference, writer preference, phase-fair,
// neutral) is a property of the implementation; BRAVO is transparent with
// respect to it (§3).
type RWLock interface {
	// RLock acquires read (shared) permission and returns the token that
	// must be passed to RUnlock.
	RLock() Token
	// RUnlock releases read permission acquired by the RLock call that
	// returned t.
	RUnlock(t Token)
	// Lock acquires write (exclusive) permission.
	Lock()
	// Unlock releases write permission.
	Unlock()
}

// TryRWLock is implemented by locks that support non-blocking acquisition
// attempts (§3 discusses BRAVO's try-lock treatment).
type TryRWLock interface {
	RWLock
	// TryRLock attempts to acquire read permission without blocking.
	TryRLock() (Token, bool)
	// TryLock attempts to acquire write permission without blocking.
	TryLock() bool
}
