// Package all registers every lock in the repository with the rwl registry,
// playing the role of the paper's LD_PRELOAD interposition library (§5):
// importing it lets harness code instantiate any lock — plain or
// BRAVO-wrapped — by name, without compile-time knowledge of the
// implementation.
//
// Registered names mirror the paper's figure legends:
//
//	ba, pf-t, pthread, per-cpu, cohort-rw, mutex, go-rw, fair,
//	bravo-ba, bravo-pf-t, bravo-pthread, bravo-mutex, bravo-go,
//	bravo-ba-2d, bravo-ba-private, bravo-ba-probe2, bravo-ba-revmu,
//	bravo-ba-random, adaptive-go, adaptive-ba
package all

import (
	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/locks/adaptive"
	"github.com/bravolock/bravo/internal/locks/cohort"
	"github.com/bravolock/bravo/internal/locks/fairrw"
	"github.com/bravolock/bravo/internal/locks/mutexrw"
	"github.com/bravolock/bravo/internal/locks/percpu"
	"github.com/bravolock/bravo/internal/locks/pfq"
	"github.com/bravolock/bravo/internal/locks/pft"
	"github.com/bravolock/bravo/internal/locks/ptl"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/topo"
)

// Topo is the topology used to size topology-dependent locks (Per-CPU,
// Cohort-RW). It defaults to the paper's user-space machine so footprints
// and writer sweep costs match the paper; override before instantiating
// locks if the host shape is preferred.
var Topo = topo.X52

func init() {
	// Underlying (plain) locks.
	rwl.Register("ba", func() rwl.RWLock { return new(pfq.Lock) })
	rwl.Register("pf-t", func() rwl.RWLock { return new(pft.Lock) })
	rwl.Register("pthread", func() rwl.RWLock { return ptl.New() })
	rwl.Register("per-cpu", func() rwl.RWLock { return percpu.New(Topo) })
	rwl.Register("cohort-rw", func() rwl.RWLock { return cohort.New(Topo) })
	rwl.Register("mutex", func() rwl.RWLock { return new(mutexrw.Lock) })
	rwl.Register("go-rw", func() rwl.RWLock { return new(stdrw.Lock) })
	rwl.Register("fair", func() rwl.RWLock { return new(fairrw.Lock) })

	// BRAVO-transformed locks (paper's BRAVO-A naming).
	rwl.Register("bravo-ba", func() rwl.RWLock { return core.New(new(pfq.Lock)) })
	rwl.Register("bravo-pf-t", func() rwl.RWLock { return core.New(new(pft.Lock)) })
	rwl.Register("bravo-pthread", func() rwl.RWLock { return core.New(ptl.New()) })
	rwl.Register("bravo-mutex", func() rwl.RWLock { return core.New(new(mutexrw.Lock)) })
	rwl.Register("bravo-go", func() rwl.RWLock { return core.New(new(stdrw.Lock)) })

	// BRAVO variants used by ablations and by Figure 1's idealized
	// per-lock-table form ("BRAVO-BA-Prime").
	rwl.Register("bravo-ba-2d", func() rwl.RWLock {
		rows := Topo.NumCPUs()
		// Round rows up to a power of two for the sectored geometry.
		p := 1
		for p < rows {
			p <<= 1
		}
		return core.New(new(pfq.Lock), core.WithTable(core.NewTable2D(p, core.DefaultRowLen)))
	})
	rwl.Register("bravo-ba-private", func() rwl.RWLock {
		return core.New(new(pfq.Lock), core.WithTable(core.NewTable(core.DefaultTableSize)))
	})
	rwl.Register("bravo-ba-probe2", func() rwl.RWLock {
		return core.New(new(pfq.Lock), core.WithSecondProbe())
	})
	rwl.Register("bravo-ba-revmu", func() rwl.RWLock {
		return core.New(new(pfq.Lock), core.WithRevocationMutex())
	})
	rwl.Register("bravo-ba-random", func() rwl.RWLock {
		return core.New(new(pfq.Lock), core.WithRandomizedIndex())
	})

	// Adaptive composites: a per-lock bias.Adaptor flips the lock among
	// biased BRAVO, neutral, and the fair gate from the observed workload
	// (the owner feeds the adaptor; see internal/locks/adaptive).
	rwl.Register("adaptive-go", func() rwl.RWLock {
		return adaptive.New(core.New(new(stdrw.Lock)))
	})
	rwl.Register("adaptive-ba", func() rwl.RWLock {
		return adaptive.New(core.New(new(pfq.Lock)))
	})
}
