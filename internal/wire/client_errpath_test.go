package wire

// Error-path coverage for the pipelined client: a server dying mid-window
// must fail exactly the unanswered tail, every Pending must drain (never
// hang) on a broken connection, a failed Conn must refuse new work with
// its terminal error, and the pool must drop dead connections on Release.

import (
	"errors"
	"net"
	"testing"
	"time"
)

// partialServer reads exactly total requests off nc, answers the first
// answer of them (echo-style PUT responses), then closes the connection —
// a server crashing mid-pipeline with a window still in flight.
func partialServer(t *testing.T, nc net.Conn, total, answer int) {
	t.Helper()
	dec := NewStreamDecoder(nc, 0)
	var out []byte
	answered := 0
	for i := 0; i < total; i++ {
		payload, err := dec.Next()
		if err != nil {
			t.Errorf("partialServer: decode request %d: %v", i, err)
			nc.Close()
			return
		}
		req, ok := DecodeRequest(payload)
		if !ok {
			t.Errorf("partialServer: undecodable request %d", i)
			nc.Close()
			return
		}
		if answered >= answer {
			continue // read it, never answer it
		}
		answered++
		resp := Response{Op: req.Op, ID: req.ID, LSNs: []ShardLSN{{Shard: uint32(req.Key % 4), LSN: req.Key}}}
		out = AppendResponse(out[:0], &resp)
		if _, err := nc.Write(out); err != nil {
			t.Errorf("partialServer: write response %d: %v", i, err)
			nc.Close()
			return
		}
	}
	nc.Close()
}

// TestConnServerCloseMidPipeline: the server answers the head of the
// window and dies. The answered Pendings resolve normally; every
// unanswered one fails with ErrConnClosed instead of hanging.
func TestConnServerCloseMidPipeline(t *testing.T) {
	const depth, answered = 16, 5
	cNC, sNC := net.Pipe()
	go partialServer(t, sNC, depth, answered)
	c := NewConn(cNC)
	defer c.Close()

	pendings := make([]*Pending, depth)
	for i := range pendings {
		p, err := c.Start(&Request{Op: OpPut, Key: uint64(i)})
		if err != nil {
			t.Fatalf("Start %d: %v", i, err)
		}
		pendings[i] = p
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for i, p := range pendings[:answered] {
		resp, err := p.Wait()
		if err != nil {
			t.Fatalf("Wait %d (answered half): %v", i, err)
		}
		if len(resp.LSNs) != 1 || resp.LSNs[0].LSN != uint64(i) {
			t.Fatalf("Wait %d: response carried LSNs %v", i, resp.LSNs)
		}
	}
	for i, p := range pendings[answered:] {
		if _, err := p.Wait(); !errors.Is(err, ErrConnClosed) {
			t.Fatalf("Wait %d (orphaned half): err = %v, want ErrConnClosed", answered+i, err)
		}
	}
	if c.Err() == nil {
		t.Fatal("Err() = nil after server close, want terminal error")
	}
}

// TestConnPendingDrainOnBrokenConn: the server vanishes without answering
// anything. Draining every Pending — including from a separate goroutine
// already blocked in Wait — returns promptly with ErrConnClosed, and a
// second Wait on the same handle repeats the error rather than hanging.
func TestConnPendingDrainOnBrokenConn(t *testing.T) {
	cNC, sNC := net.Pipe()
	c := NewConn(cNC)
	defer c.Close()

	// One waiter parked before the break.
	early, err := c.Start(&Request{Op: OpGet, Key: 1})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	parked := make(chan error, 1)
	go func() {
		_, err := early.Wait()
		parked <- err
	}()

	var rest []*Pending
	for i := 0; i < 8; i++ {
		p, err := c.Start(&Request{Op: OpGet, Key: uint64(i)})
		if err != nil {
			t.Fatalf("Start %d: %v", i, err)
		}
		rest = append(rest, p)
	}
	sNC.Close() // the break: nothing was ever answered

	select {
	case err := <-parked:
		if !errors.Is(err, ErrConnClosed) {
			t.Fatalf("parked Wait: err = %v, want ErrConnClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked Wait hung after the connection broke")
	}
	for i, p := range rest {
		if _, err := p.Wait(); !errors.Is(err, ErrConnClosed) {
			t.Fatalf("drain Wait %d: err = %v, want ErrConnClosed", i, err)
		}
	}
	// Wait is sticky: asking the same handle again repeats the error.
	if _, err := rest[0].Wait(); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("repeated Wait: err = %v, want ErrConnClosed", err)
	}
}

// TestConnFailedConnRefusesNewWork: once the terminal error is set, Start,
// Flush, and Do all report it immediately instead of queueing doomed work.
func TestConnFailedConnRefusesNewWork(t *testing.T) {
	cNC, sNC := net.Pipe()
	c := NewConn(cNC)
	defer c.Close()
	sNC.Close()

	// The read loop notices the break asynchronously; Err flips non-nil.
	deadline := time.Now().Add(5 * time.Second)
	for c.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("Err() stayed nil after peer close")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Start(&Request{Op: OpGet, Key: 1}); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("Start on failed conn: err = %v, want ErrConnClosed", err)
	}
	if _, err := c.Do(&Request{Op: OpGet, Key: 1}); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("Do on failed conn: err = %v, want ErrConnClosed", err)
	}
}

// TestClientPoolDropsFailedConn: Release of a dead connection must not
// poison the pool — the next Acquire yields a healthy connection.
func TestClientPoolDropsFailedConn(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			nc, err := l.Accept()
			if err != nil {
				return
			}
			go echoServer(t, nc)
		}
	}()

	cl := NewClient(l.Addr().String(), time.Second)
	defer cl.Close()

	conn, err := cl.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Do(&Request{Op: OpGet, Key: 1}); err != nil {
		t.Fatalf("Do on fresh conn: %v", err)
	}
	conn.Close() // the connection dies in the caller's hands...
	cl.Release(conn)

	conn2, err := cl.Acquire() // ...and the pool must not hand it back
	if err != nil {
		t.Fatal(err)
	}
	if conn2 == conn {
		t.Fatal("Acquire returned the failed connection")
	}
	if _, err := conn2.Do(&Request{Op: OpGet, Key: 2}); err != nil {
		t.Fatalf("Do on re-dialed conn: %v", err)
	}
	cl.Release(conn2)

	// The pool's convenience surface rides the same drop-and-redial path.
	if _, _, err := cl.Get(1, 0); err != nil {
		t.Fatalf("pooled Get after drop: %v", err)
	}
}

// TestClientReleaseFlushesBufferedRequests: a holder that Starts a request
// and Releases the connection without Flushing has handed the pool a conn
// with bytes still in the write buffer. Release must flush them — else the
// request never reaches the server and the Pending's Wait hangs forever.
func TestClientReleaseFlushesBufferedRequests(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			nc, err := l.Accept()
			if err != nil {
				return
			}
			go echoServer(t, nc)
		}
	}()

	cl := NewClient(l.Addr().String(), time.Second)
	defer cl.Close()
	conn, err := cl.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	p, err := conn.Start(&Request{Op: OpGet, Key: 5})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	cl.Release(conn) // no explicit Flush: Release owes the waiter one

	done := make(chan error, 1)
	go func() {
		resp, err := p.Wait()
		if err == nil && string(resp.Value) != "value" {
			err = errors.New("wrong value")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait after Release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung: Release did not flush the buffered request")
	}
}

// TestClientReleaseBrokenConnFailsWaiters: Release of a connection whose
// peer is gone (the buffered request can never be delivered) must fail the
// connection and close it, so every outstanding Wait returns ErrConnClosed
// immediately instead of hanging on a request that was never sent.
func TestClientReleaseBrokenConnFailsWaiters(t *testing.T) {
	cNC, sNC := net.Pipe()
	c := NewConn(cNC)
	p, err := c.Start(&Request{Op: OpGet, Key: 7}) // parked in the write buffer
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	sNC.Close() // the peer dies before anything was flushed

	cl := NewClient("127.0.0.1:0", time.Second)
	defer cl.Close()
	cl.Release(c) // flush fails -> conn fails -> Release closes it

	done := make(chan error, 1)
	go func() {
		_, err := p.Wait()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrConnClosed) {
			t.Fatalf("Wait after broken Release: err = %v, want ErrConnClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung on a connection Release should have closed")
	}
	if c.Err() == nil {
		t.Fatal("Err() = nil after Release of a broken connection")
	}
}
