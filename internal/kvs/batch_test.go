package kvs

import (
	"fmt"
	"testing"

	"github.com/bravolock/bravo/internal/xrand"
)

func TestShardedMultiPut(t *testing.T) {
	s, _ := NewSharded(4, mkStd)
	keys := []uint64{1, 2, 3, 1000, 2000}
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		vals[i] = EncodeValue(k * 7)
	}
	s.MultiPut(keys, vals)
	for _, k := range keys {
		v, ok := s.Get(k)
		if !ok {
			t.Fatalf("Get(%d) missing after MultiPut", k)
		}
		if d, _ := DecodeValue(v); d != k*7 {
			t.Fatalf("Get(%d) = %d, want %d", k, d, k*7)
		}
	}
	total := s.Stats().Total()
	if total.Puts != uint64(len(keys)) {
		t.Fatalf("Puts = %d, want %d", total.Puts, len(keys))
	}
	if total.WriteBatchKeys != uint64(len(keys)) {
		t.Fatalf("WriteBatchKeys = %d, want %d", total.WriteBatchKeys, len(keys))
	}
	if total.WriteBatches == 0 || total.WriteBatches > uint64(s.NumShards()) {
		t.Fatalf("WriteBatches = %d, want 1..%d", total.WriteBatches, s.NumShards())
	}
	// The batch must touch strictly fewer lock acquisitions than keys once
	// keys share shards.
	many := make([]uint64, 64)
	manyVals := make([][]byte, 64)
	for i := range many {
		many[i] = uint64(i)
		manyVals[i] = EncodeValue(uint64(i))
	}
	before := s.Stats().Total().WriteBatches
	s.MultiPut(many, manyVals)
	groups := s.Stats().Total().WriteBatches - before
	if groups > uint64(s.NumShards()) {
		t.Fatalf("64-key MultiPut used %d write batches on %d shards", groups, s.NumShards())
	}
}

func TestShardedMultiPutDuplicateKeysLaterWins(t *testing.T) {
	s, _ := NewSharded(8, mkStd)
	s.MultiPut([]uint64{5, 5, 5}, [][]byte{EncodeValue(1), EncodeValue(2), EncodeValue(3)})
	v, ok := s.Get(5)
	if !ok {
		t.Fatal("Get(5) missing")
	}
	if d, _ := DecodeValue(v); d != 3 {
		t.Fatalf("duplicate-key MultiPut kept %d, want the last write 3", d)
	}
}

func TestShardedMultiPutLengthMismatchPanics(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	defer func() {
		if recover() == nil {
			t.Fatal("MultiPut with mismatched slice lengths did not panic")
		}
	}()
	s.MultiPut([]uint64{1, 2}, [][]byte{EncodeValue(1)})
}

func TestShardedMultiDelete(t *testing.T) {
	s, _ := NewSharded(4, mkStd)
	for k := uint64(0); k < 50; k++ {
		s.Put(k, EncodeValue(k))
	}
	// 10 present, one absent, one duplicate (second delete of 0 is a miss).
	keys := []uint64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 999, 0}
	if got := s.MultiDelete(keys); got != 10 {
		t.Fatalf("MultiDelete removed %d, want 10", got)
	}
	for k := uint64(0); k < 10; k++ {
		if _, ok := s.Get(k); ok {
			t.Fatalf("Get(%d) found a MultiDeleted key", k)
		}
	}
	if s.Len() != 40 {
		t.Fatalf("Len = %d, want 40", s.Len())
	}
	total := s.Stats().Total()
	if total.Deletes != uint64(len(keys)) || total.DeleteHits != 10 {
		t.Fatalf("Deletes = %d hits = %d, want %d/10", total.Deletes, total.DeleteHits, len(keys))
	}
	if got := s.MultiDelete(nil); got != 0 {
		t.Fatalf("MultiDelete(nil) = %d", got)
	}
}

func TestShardedMultiPutMultiGetRoundTrip(t *testing.T) {
	s, _ := NewSharded(8, mkBravo)
	const n = 300
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = uint64(i * 13)
		vals[i] = EncodeValue(uint64(i))
	}
	s.MultiPut(keys, vals)
	got := s.MultiGet(keys)
	for i := range keys {
		d, ok := DecodeValue(got[i])
		if !ok || d != uint64(i) {
			t.Fatalf("MultiGet[%d] = %v after MultiPut", i, got[i])
		}
	}
}

func BenchmarkShardedPutSingleVsBatched(b *testing.B) {
	const batch = 64
	for _, mode := range []string{"single", "batched"} {
		b.Run(mode, func(b *testing.B) {
			s, _ := NewSharded(8, mkBravo)
			keys := make([]uint64, batch)
			vals := make([][]byte, batch)
			for i := range keys {
				vals[i] = EncodeValue(uint64(i))
			}
			rng := xrand.NewXorShift64(1)
			b.ResetTimer()
			for n := 0; n < b.N; n += batch {
				for i := range keys {
					keys[i] = rng.Next() & 1023
				}
				if mode == "single" {
					for i := range keys {
						s.Put(keys[i], vals[i])
					}
				} else {
					s.MultiPut(keys, vals)
				}
			}
		})
	}
}

func ExampleSharded_MultiPut() {
	s, _ := NewSharded(4, mkStd)
	s.MultiPut([]uint64{1, 2}, [][]byte{[]byte("a"), []byte("b")})
	for _, v := range s.MultiGet([]uint64{1, 2, 3}) {
		fmt.Printf("%q ", v)
	}
	// Output: "a" "b" ""
}

// TestShardedBatchDuplicateKeysPositionalOrder is the adversarial pin on
// the positional last-write-wins rule: duplicates placed non-adjacently and
// interleaved with keys from other shards, where an unstable
// group-by-shard pass could reorder equal keys — and the rule must survive
// WAL replay, since the log records the batch in apply order.
func TestShardedBatchDuplicateKeysPositionalOrder(t *testing.T) {
	dir := t.TempDir()
	s := openTestKV(t, dir, 4, SyncAlways)
	// Key 7 appears at positions 0, 2, 4 and key 1 at positions 1, 5;
	// keys 2 and 3 land between them on other shards.
	keys := []uint64{7, 1, 7, 2, 7, 1, 3}
	vals := [][]byte{
		EncodeValue(100), EncodeValue(200), EncodeValue(101), EncodeValue(300),
		EncodeValue(102), EncodeValue(201), EncodeValue(400),
	}
	s.MultiPut(keys, vals)
	check := func(label string, e *Sharded, want map[uint64]uint64) {
		t.Helper()
		for k, w := range want {
			v, ok := e.Get(k)
			if !ok {
				t.Fatalf("%s: Get(%d) missing", label, k)
			}
			if d, _ := DecodeValue(v); d != w {
				t.Fatalf("%s: Get(%d) = %d, want the last positional write %d", label, k, d, w)
			}
		}
	}
	check("live", s, map[uint64]uint64{7: 102, 1: 201, 2: 300, 3: 400})

	// MultiDelete with a repeated key scores one hit: the first positional
	// occurrence removes it, the rest are misses, never a double count.
	if got := s.MultiDelete([]uint64{2, 2, 2}); got != 1 {
		t.Fatalf("MultiDelete dup key removed %d, want 1", got)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r := openTestKV(t, dir, 4, SyncAlways)
	defer r.Close()
	check("replayed", r, map[uint64]uint64{7: 102, 1: 201, 3: 400})
	if _, ok := r.Get(2); ok {
		t.Fatal("replayed: Get(2) found a MultiDeleted key")
	}
}
