// Package adaptive composes the two ends of the bias spectrum into one
// lock that a bias.Adaptor flips at runtime: a BRAVO-transformed lock
// (reader-biased, writers pay revocation) and a FIFO fair gate
// (internal/locks/fairrw — no revocation, no starvation). The adaptor's
// Mode selects the reader path per acquisition:
//
//	biased / neutral:  readers go through the inner lock (BRAVO fast path
//	                   when bias is on; plain substrate reads when the
//	                   adaptor holds bias off in neutral mode)
//	fair:              readers go through the fair gate in arrival order
//
// Writers ALWAYS acquire the fair gate and then the inner lock. That makes
// mutual exclusion independent of the racy mode load: every reader holds
// one of the two locks a writer must hold, so a reader that observed a
// stale mode is still excluded. The fair gate is uncontended in read-biased
// phases (two uncontended atomics per write — noise next to the revocation
// the writer is already paying), and in fair mode it provides the FIFO
// ordering. Lock ordering is fixed (gate, then inner) and readers take only
// one lock, so no cycle exists.
//
// The mode word also gates bias at the engine level (bias.Engine
// consults Adaptor.AllowBias in MaybeEnable), so after a demotion the next
// writer revokes bias once and it stays off until the adaptor promotes the
// shard again.
package adaptive

import (
	"github.com/bravolock/bravo/internal/bias"
	"github.com/bravolock/bravo/internal/locks/fairrw"
	"github.com/bravolock/bravo/internal/rwl"
)

// fairBit tags tokens of reads admitted through the fair gate. The inner
// BRAVO wrapper uses bit 63 and substrates the low 32 bits (see rwl), so
// bit 62 is free.
const fairBit rwl.Token = 1 << 62

// Lock is an adaptively biased reader-writer lock. It must not be copied
// after first use.
type Lock struct {
	ad     *bias.Adaptor
	fair   fairrw.Lock
	under  rwl.RWLock
	hunder rwl.HandleRWLock // non-nil when under supports handle reads
}

var (
	_ rwl.RWLock       = (*Lock)(nil)
	_ rwl.TryRWLock    = (*Lock)(nil)
	_ rwl.HandleRWLock = (*Lock)(nil)
)

// New wraps under — typically a *core.Lock — with a fair gate and a fresh
// adaptor using default thresholds.
func New(under rwl.RWLock) *Lock {
	return NewWithThresholds(under, bias.DefaultThresholds())
}

// NewWithThresholds is New with an explicit hysteresis configuration.
// Configuration-time only: the inner lock's bias engine is pointed at the
// adaptor here, which must happen before the lock is shared.
func NewWithThresholds(under rwl.RWLock, th bias.Thresholds) *Lock {
	l := &Lock{ad: bias.NewAdaptor(th), under: under}
	l.hunder, _ = under.(rwl.HandleRWLock)
	if e, ok := under.(interface{ Engine() *bias.Engine }); ok {
		e.Engine().SetAdaptive(l.ad)
	}
	return l
}

// Adaptor returns the mode adaptor. Owners feed it their read/write counts
// (Adaptor.Offer) to drive the feedback loop; the KV engine detects this
// method structurally to wire per-shard adaptivity.
func (l *Lock) Adaptor() *bias.Adaptor { return l.ad }

// Under returns the inner lock.
func (l *Lock) Under() rwl.RWLock { return l.under }

// InnerHandle exposes the inner lock's handle read path (nil when the inner
// lock is not handle-capable) so a caller that already consults the adaptor
// can route non-fair reads straight to the inner lock, skipping this
// composite's dispatch. The shortcut is sound because writers always hold
// both the gate and the inner lock: a reader holding only the inner lock is
// excluded regardless of what the mode word said when it decided to bypass.
// Pair with FairBit — tokens carrying that bit came through the fair gate
// and must be released through this composite, not the inner lock.
func (l *Lock) InnerHandle() rwl.HandleRWLock { return l.hunder }

// FairBit returns the token bit that tags fair-gate read acquisitions; see
// InnerHandle.
func (l *Lock) FairBit() rwl.Token { return fairBit }

// Engine returns the inner lock's bias engine, or nil when the inner lock
// has none.
func (l *Lock) Engine() *bias.Engine {
	if e, ok := l.under.(interface{ Engine() *bias.Engine }); ok {
		return e.Engine()
	}
	return nil
}

// RLock acquires read permission on the path the current mode selects.
func (l *Lock) RLock() rwl.Token {
	if l.ad.Mode() == bias.ModeFair {
		return fairBit | l.fair.RLock()
	}
	return l.under.RLock()
}

// RUnlock releases read permission on the path recorded in the token.
func (l *Lock) RUnlock(t rwl.Token) {
	if t&fairBit != 0 {
		l.fair.RUnlock(t &^ fairBit)
		return
	}
	l.under.RUnlock(t)
}

// RLockH is the handle read path. In fair mode the gate admits the reader
// anonymously (the handle's slot cache is BRAVO state and stays untouched);
// otherwise the inner lock's handle path runs, preserving the one-CAS
// steady state.
func (l *Lock) RLockH(h *rwl.Reader) rwl.Token {
	if l.ad.Mode() == bias.ModeFair {
		return fairBit | l.fair.RLock()
	}
	if l.hunder != nil {
		return l.hunder.RLockH(h)
	}
	return l.under.RLock()
}

// RUnlockH releases a read acquisition made with RLockH.
func (l *Lock) RUnlockH(h *rwl.Reader, t rwl.Token) {
	if t&fairBit != 0 {
		l.fair.RUnlock(t &^ fairBit)
		return
	}
	if l.hunder != nil {
		l.hunder.RUnlockH(h, t)
		return
	}
	l.under.RUnlock(t)
}

// Lock acquires write permission: the fair gate first, then the inner lock.
// Both are held for the duration, which is what makes reader exclusion
// mode-independent.
func (l *Lock) Lock() {
	l.fair.Lock()
	l.under.Lock()
}

// Unlock releases write permission in reverse order.
func (l *Lock) Unlock() {
	l.under.Unlock()
	l.fair.Unlock()
}

// TryRLock attempts a non-blocking read acquisition on the mode's path.
func (l *Lock) TryRLock() (rwl.Token, bool) {
	if l.ad.Mode() == bias.ModeFair {
		t, ok := l.fair.TryRLock()
		if !ok {
			return 0, false
		}
		return fairBit | t, true
	}
	tu, ok := l.under.(rwl.TryRWLock)
	if !ok {
		return 0, false
	}
	return tu.TryRLock()
}

// TryLock attempts a non-blocking write acquisition of both locks.
func (l *Lock) TryLock() bool {
	tu, ok := l.under.(rwl.TryRWLock)
	if !ok {
		return false
	}
	if !l.fair.TryLock() {
		return false
	}
	if !tu.TryLock() {
		l.fair.Unlock()
		return false
	}
	return true
}
