package kvs

import (
	"sync"
	"testing"

	"github.com/bravolock/bravo/internal/bias"
	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/locks/pfq"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/rwl"
)

// newBravoSharded returns a sharded engine whose shards are BRAVO locks on
// a private table with aggressive biasing and shared stats.
func newBravoSharded(t *testing.T, shards int) (*Sharded, *bias.Stats, *bias.Table) {
	t.Helper()
	tab := bias.NewTable(bias.DefaultTableSize)
	st := &bias.Stats{}
	s, err := NewSharded(shards, func() rwl.RWLock {
		return core.New(new(pfq.Lock), core.WithTable(tab),
			core.WithPolicy(bias.AlwaysPolicy{}), core.WithStats(st))
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, st, tab
}

func TestShardedHandleReadsRoundTrip(t *testing.T) {
	s, st, tab := newBravoSharded(t, 8)
	// This test measures the BRAVO handle fast path itself, so reads must
	// actually reach the lock — disable the optimistic seqlock path that
	// would otherwise serve them without any acquisition at all.
	s.SetSeqReadAttempts(0)
	if !s.HandleCapable() {
		t.Fatal("BRAVO shards not handle-capable")
	}
	for k := uint64(0); k < 512; k++ {
		s.Put(k, []byte{byte(k)})
	}
	h := rwl.NewReader()
	// Warm: first touch of each shard goes slow and enables bias.
	for k := uint64(0); k < 512; k++ {
		if v, ok := s.GetH(h, k); !ok || len(v) != 1 || v[0] != byte(k) {
			t.Fatalf("GetH(%d) = %v, %v", k, v, ok)
		}
	}
	before := st.Snapshot()
	buf := make([]byte, 0, 8)
	for k := uint64(0); k < 512; k++ {
		var ok bool
		buf, ok = s.GetIntoH(h, k, buf)
		if !ok || buf[0] != byte(k) {
			t.Fatalf("GetIntoH(%d) = %v, %v", k, buf, ok)
		}
	}
	after := st.Snapshot()
	if fast := after.FastRead - before.FastRead; fast < 500 {
		t.Fatalf("handle reads mostly slow: %d/512 fast (%s)", fast, after)
	}
	if tab.Occupancy() != 0 {
		t.Fatal("table dirty after balanced handle reads")
	}
}

func TestShardedMultiGetHSpansShards(t *testing.T) {
	s, _, tab := newBravoSharded(t, 8)
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i)
		s.Put(uint64(i), []byte{byte(i)})
	}
	h := rwl.NewReader()
	s.MultiGetH(h, keys) // warm every shard
	vals := s.MultiGetH(h, append(keys, 1<<40))
	for i := range keys {
		if vals[i] == nil || vals[i][0] != byte(i) {
			t.Fatalf("MultiGetH[%d] = %v", i, vals[i])
		}
	}
	if vals[len(keys)] != nil {
		t.Fatal("absent key yielded a value")
	}
	if tab.Occupancy() != 0 {
		t.Fatal("table dirty after MultiGetH")
	}
}

func TestShardedHandleFallsBackWithoutSupport(t *testing.T) {
	// Shards on plain sync.RWMutex adapters: handle reads must degrade to
	// the anonymous path, not fail.
	s, err := NewSharded(4, func() rwl.RWLock { return new(stdrw.Lock) })
	if err != nil {
		t.Fatal(err)
	}
	if s.HandleCapable() {
		t.Fatal("stdrw shards claim handle support")
	}
	s.Put(1, []byte("x"))
	h := rwl.NewReader()
	if v, ok := s.GetH(h, 1); !ok || string(v) != "x" {
		t.Fatalf("GetH fallback = %q, %v", v, ok)
	}
	if vals := s.MultiGetH(h, []uint64{1}); vals[0] == nil {
		t.Fatal("MultiGetH fallback failed")
	}
}

func TestShardedHandleConcurrentMixedUse(t *testing.T) {
	s, _, tab := newBravoSharded(t, 4)
	for k := uint64(0); k < 128; k++ {
		s.Put(k, []byte{0})
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := rwl.NewReader()
			buf := make([]byte, 0, 8)
			for i := uint64(0); i < 3000; i++ {
				k := (seed*i + i) % 128
				switch {
				case i%64 == 0:
					s.Put(k, []byte{byte(i)})
				case i%2 == 0:
					buf, _ = s.GetIntoH(h, k, buf)
				default:
					s.Get(k) // anonymous readers interleave with handles
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if tab.Occupancy() != 0 {
		t.Fatal("table dirty after mixed storm")
	}
}
