// Package kvs provides the repository's key-value engines: the substrates
// of the paper's rocksdb experiments — a memtable with striped GetLock
// reader-writer locks and in-place updates (the readwhilewriting benchmark
// of §5.5) and a single-lock hash table cache (the persistent-cache
// hash_table_bench of §5.6) — plus Sharded, the scale-out engine that
// stripes the keyspace across per-shard locks (see sharded.go).
//
// The paper ran rocksdb with --inplace_update_support=1 and
// --inplace_update_num_locks=1: readers of ::Get take GetLock for read on
// every lookup, and with one stripe every thread hammers the same
// reader-writer lock — precisely the centralized-reader-indicator bottleneck
// BRAVO removes. Both structures are parameterized by the lock constructor,
// which is how the benchmarks interpose different locks, LD_PRELOAD-style.
package kvs

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/bravolock/bravo/internal/hash"
	"github.com/bravolock/bravo/internal/locks/seq"
	"github.com/bravolock/bravo/internal/rwl"
)

// Memtable is a rocksdb-style in-memory table with in-place value updates
// guarded by striped reader-writer locks.
//
// Like the Sharded engine, every stripe's write section is bracketed by a
// sequence counter, so the table supports the optimistic zero-CAS read
// path — but here it is opt-in (SetSeqReadAttempts, default 0): the
// Memtable is the paper-figure substrate, and its benchmarks compare lock
// implementations, which requires reads to actually take the lock.
type Memtable struct {
	stripes []stripe
	mask    uint64
	// seqAttempts is the optimistic read attempt budget per Get; 0 (the
	// default) disables the optimistic path and keeps reads on the lock.
	seqAttempts atomic.Int32
}

type stripe struct {
	lock rwl.RWLock
	seqc *seq.Count
	// seqStore is the stripe's keyed storage (cell map + TTL deadlines +
	// seq index); Memtable expiry is lazy-only (no reaper): expired
	// entries stay resident but invisible until overwritten.
	seqStore
}

// NewMemtable returns a memtable with the given number of GetLock stripes
// (a power of two; the paper's configuration uses 1).
func NewMemtable(stripes int, mkLock rwl.Factory) (*Memtable, error) {
	if stripes <= 0 || stripes&(stripes-1) != 0 {
		return nil, fmt.Errorf("kvs: stripe count %d is not a positive power of two", stripes)
	}
	m := &Memtable{stripes: make([]stripe, stripes), mask: uint64(stripes - 1)}
	for i := range m.stripes {
		wrapped := rwl.WrapOptimistic(mkLock())
		m.stripes[i].lock = wrapped
		m.stripes[i].seqc = wrapped.Seq()
		m.stripes[i].data = make(map[uint64]*seqCell)
	}
	return m, nil
}

// SetSeqReadAttempts sets the optimistic read attempt budget per Get
// (n <= 0 disables the optimistic path — the default, preserving the
// lock-comparison character of the paper-figure benchmarks).
func (m *Memtable) SetSeqReadAttempts(n int) {
	if n < 0 {
		n = 0
	}
	m.seqAttempts.Store(int32(n))
}

func (m *Memtable) stripeOf(key uint64) *stripe {
	return &m.stripes[hash.Mix64(key)&m.mask]
}

// Get returns the value stored under key, taking the stripe's GetLock for
// read (the rocksdb ::Get path the paper instruments). The value is copied
// out while the lock is held — as rocksdb's MemTable::Get copies into the
// caller's string — since in-place Put mutates the stored buffer.
func (m *Memtable) Get(key uint64) ([]byte, bool) {
	return m.GetInto(key, nil)
}

// GetInto is Get with caller-managed memory: the value is appended to
// buf[:0] and the filled slice returned (buf[:0] itself on a miss), so a
// reused buffer makes reads allocation-free.
func (m *Memtable) GetInto(key uint64, buf []byte) ([]byte, bool) {
	s := m.stripeOf(key)
	if att := int(m.seqAttempts.Load()); att > 0 {
		if out, ok, _, _, done := s.seqGetInto(s.seqc, key, buf, att); done {
			return out, ok
		}
	}
	tok := s.lock.RLock()
	v, ok := s.data[key]
	if ok && s.exp.expired(key) {
		ok = false // lazy expiry, inclusive at the deadline
	}
	out := buf[:0]
	if ok {
		out = v.appendTo(out)
	}
	s.lock.RUnlock(tok)
	return out, ok
}

// Put performs an in-place update (or insert) of key, taking the stripe's
// GetLock for write. A plain Put clears any TTL a previous PutTTL attached.
func (m *Memtable) Put(key uint64, value []byte) {
	m.put(key, value, 0)
}

// PutTTL is Put with a time-to-live: the key expires — becomes invisible
// to Get — once ttl elapses, inclusively at the deadline. Memtable expiry
// is lazy-only; the sharded engine adds incremental reaping (Sharded.Reap).
func (m *Memtable) PutTTL(key uint64, value []byte, ttl time.Duration) {
	m.put(key, value, ttlDeadline(ttl))
}

func (m *Memtable) put(key uint64, value []byte, deadline int64) {
	s := m.stripeOf(key)
	s.lock.Lock()
	// In-place update semantics: putLocked reuses the existing cell when
	// the value fits, as rocksdb's inplace_update_support does (at the
	// cell's word granularity).
	s.putLocked(key, value, deadline)
	s.lock.Unlock()
}

// Len returns the total number of keys, taking every stripe lock for read.
func (m *Memtable) Len() int {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		tok := s.lock.RLock()
		n += len(s.data)
		s.lock.RUnlock(tok)
	}
	return n
}

// EncodeValue builds the fixed-format value used by the benchmarks: an
// 8-byte counter the writer bumps in place.
func EncodeValue(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// DecodeValue parses a benchmark value.
func DecodeValue(b []byte) (uint64, bool) {
	if len(b) != 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b), true
}
