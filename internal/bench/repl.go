package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/kvserv"
	"github.com/bravolock/bravo/internal/repl"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/xrand"
)

// The repl workload measures what the replication layer is for: follower
// read throughput scaling with follower count while a writer streams
// batches into the primary, and the price in replication lag. The full
// pipeline runs — a durable primary behind a real kvserv TCP socket, its
// LSN-stamped WAL streamed per shard over HTTP, followers applying into
// in-memory replicas — with readers hitting the follower engines through
// pinned handles, the way a follower kvserv serves them. Lag is sampled
// in-process (primary applied LSN minus follower applied LSN, in
// records), so the sampler never perturbs the wire.

// ReplWorkloadKeys is the workload's keyspace.
const ReplWorkloadKeys = 1 << 14

// ReplDefaultReaders is the per-follower reader goroutine count.
const ReplDefaultReaders = 4

// ReplDefaultWriteRate is the writer's paced load in keys/sec. The write
// load is an input here, not a race: an unpaced writer on a small host
// starves the very streams whose lag is being measured, reporting only
// "saturation lags saturation". 0 disables pacing (full-speed writer).
const ReplDefaultWriteRate = 16384

// ReplResult is one (lock, shards, followers) measurement.
type ReplResult struct {
	Lock      string `json:"lock"`
	Shards    int    `json:"shards"`
	Followers int    `json:"followers"`
	// ReadersPerFollower readers stream GetH against each follower while
	// one writer streams MultiPut batches of BatchSize into the primary,
	// paced at WriteRate keys/sec (0: unpaced).
	ReadersPerFollower int `json:"readers_per_follower"`
	BatchSize          int `json:"batch_size"`
	ValueSize          int `json:"value_size"`
	WriteRate          int `json:"write_rate"`

	// WriteKeysPerSec is the primary's write throughput during the
	// measurement (median over runs).
	WriteKeysPerSec float64 `json:"write_keys_per_sec"`
	// ReadsPerSec is the aggregate follower read throughput (median over
	// runs); ReadsPerSecPerFollower divides by the fleet size — flat means
	// linear read scaling.
	ReadsPerSec            float64 `json:"reads_per_sec"`
	ReadsPerSecPerFollower float64 `json:"reads_per_sec_per_follower"`

	// Lag metrics from the last run, sampled during the write storm:
	// records behind the primary, summed over shards and averaged over the
	// fleet. ConvergeMS is how long after the writer stopped the whole
	// fleet took to drain to the primary's final LSNs.
	MeanLagRecords float64 `json:"mean_lag_records"`
	MaxLagRecords  uint64  `json:"max_lag_records"`
	ConvergeMS     float64 `json:"converge_ms"`

	// Stream shape, summed over the fleet, last run: records applied,
	// snapshot-frame resyncs (0 once bootstrapped unless the stream fell
	// behind a checkpoint), reconnects.
	RecordsApplied uint64 `json:"records_applied"`
	SnapshotFrames uint64 `json:"snapshot_frames"`
	Reconnects     uint64 `json:"reconnects"`
}

// ReplReport is the top-level BENCH_repl.json document.
type ReplReport struct {
	Benchmark  string       `json:"benchmark"`
	Meta       RunMeta      `json:"meta"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	IntervalMS int64        `json:"interval_ms"`
	Runs       int          `json:"runs"`
	Keys       int          `json:"keys"`
	Batch      int          `json:"batch"`
	Results    []ReplResult `json:"results"`
}

// WriteJSON renders the report as indented JSON.
func (r ReplReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// NewReplReport stamps the environment fields of a report.
func NewReplReport(cfg Config, batch int, results []ReplResult) ReplReport {
	return ReplReport{
		Benchmark:  "repl",
		Meta:       NewRunMeta(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		IntervalMS: cfg.Interval.Milliseconds(),
		Runs:       cfg.Runs,
		Keys:       ReplWorkloadKeys,
		Batch:      batch,
		Results:    results,
	}
}

// ReplPoint measures one (lock, shards, followers) point: cfg.Runs fresh
// primary+fleet deployments, median throughputs, last run's lag shape.
func ReplPoint(lockName string, shards, followers, readers, batch, valueSize, writeRate int, cfg Config) (ReplResult, error) {
	if followers < 1 {
		return ReplResult{}, fmt.Errorf("bench: repl followers %d (want >= 1)", followers)
	}
	if readers < 1 {
		readers = ReplDefaultReaders
	}
	if batch < 2 {
		return ReplResult{}, fmt.Errorf("bench: repl batch %d (want >= 2)", batch)
	}
	mk, _, err := shardedKVFactory(lockName)
	if err != nil {
		return ReplResult{}, err
	}
	res := ReplResult{
		Lock: lockName, Shards: shards, Followers: followers,
		ReadersPerFollower: readers, BatchSize: batch, ValueSize: valueSize,
		WriteRate: writeRate,
	}
	if res.ValueSize < 8 {
		res.ValueSize = 8
	}
	var buildErr error
	var lastWrite, lastRead float64
	runOnce := func() {
		w, r, err := replRun(mk, &res, cfg.Interval)
		if err != nil {
			buildErr = err
			return
		}
		lastWrite, lastRead = w, r
	}
	writes := make([]float64, 0, cfg.Runs)
	reads := make([]float64, 0, cfg.Runs)
	runs := cfg.Runs
	if runs < 1 {
		runs = 1
	}
	for i := 0; i < runs; i++ {
		runOnce()
		if buildErr != nil {
			return res, buildErr
		}
		writes = append(writes, lastWrite)
		reads = append(reads, lastRead)
	}
	res.WriteKeysPerSec = median(writes) / cfg.Interval.Seconds()
	res.ReadsPerSec = median(reads) / cfg.Interval.Seconds()
	res.ReadsPerSecPerFollower = res.ReadsPerSec / float64(followers)
	return res, nil
}

// median of a small slice (destructive order not preserved).
func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	cp := append([]float64(nil), vals...)
	for i := 1; i < len(cp); i++ { // insertion sort: n <= runs
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// replRun deploys one primary + fleet, runs the measurement interval, and
// returns (keys written, follower reads) raw counts, filling res's lag
// and stream-shape fields.
func replRun(mk rwl.Factory, res *ReplResult, interval time.Duration) (wrote, read float64, err error) {
	dir, err := os.MkdirTemp("", "bravo-replbench-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	engine, err := kvs.OpenSharded(dir, res.Shards, mk, kvs.SyncNone)
	if err != nil {
		return 0, 0, err
	}
	defer engine.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	srv := kvserv.New(engine, kvserv.Config{ReapInterval: -1})
	serveDone := make(chan struct{})
	go func() { srv.Serve(l); close(serveDone) }()
	defer func() { srv.Close(); <-serveDone }()

	// Prefill so readers hit resident keys, then checkpoint so followers
	// bootstrap the way a production fleet would: snapshot + tail.
	prefill := xrand.NewXorShift64(0x5EEDBEEF)
	val := make([]byte, res.ValueSize)
	keys := make([]uint64, res.BatchSize)
	vals := make([][]byte, res.BatchSize)
	for i := range vals {
		vals[i] = val
	}
	for n := 0; n < ReplWorkloadKeys; n += res.BatchSize {
		for i := range keys {
			keys[i] = prefill.Next() % ReplWorkloadKeys
		}
		engine.MultiPut(keys, vals)
	}
	if err := engine.Checkpoint(); err != nil {
		return 0, 0, err
	}

	fleet := make([]*repl.Follower, res.Followers)
	primaryURL := "http://" + l.Addr().String()
	for i := range fleet {
		f, err := repl.Open(repl.Config{Primary: primaryURL, MkLock: mk, RetryInterval: 10 * time.Millisecond})
		if err != nil {
			return 0, 0, err
		}
		defer f.Close()
		if err := f.WaitCaughtUp(30 * time.Second); err != nil {
			return 0, 0, err
		}
		fleet[i] = f
	}

	// The storm: one writer streaming batches into the primary, readers
	// hammering every follower, a lag sampler on the side.
	var stop atomic.Bool
	var wroteKeys, readOps atomic.Uint64
	var wg sync.WaitGroup
	var pause time.Duration
	if res.WriteRate > 0 {
		pause = time.Duration(float64(res.BatchSize) / float64(res.WriteRate) * float64(time.Second))
	}
	wg.Add(1)
	go func() { // writer, paced to WriteRate keys/sec
		defer wg.Done()
		rng := xrand.NewXorShift64(0xA11CE)
		wkeys := make([]uint64, res.BatchSize)
		for !stop.Load() {
			for i := range wkeys {
				wkeys[i] = rng.Next() % ReplWorkloadKeys
			}
			engine.MultiPut(wkeys, vals)
			wroteKeys.Add(uint64(res.BatchSize))
			if pause > 0 {
				time.Sleep(pause)
			}
		}
	}()
	for fi, f := range fleet {
		for r := 0; r < res.ReadersPerFollower; r++ {
			wg.Add(1)
			go func(seed uint64, e *kvs.Sharded) {
				defer wg.Done()
				h := rwl.NewReader()
				rng := xrand.NewXorShift64(seed)
				buf := make([]byte, 0, res.ValueSize)
				n := uint64(0)
				for !stop.Load() {
					buf, _ = e.GetIntoH(h, rng.Next()%ReplWorkloadKeys, buf)
					n++
					if n&1023 == 0 {
						// The biased read path never blocks; on hosts with
						// fewer cores than goroutines an explicit yield
						// keeps the pullers (whose lag we are measuring)
						// from starving behind the spin.
						runtime.Gosched()
					}
				}
				readOps.Add(n)
			}(uint64(fi*64+r+1), f.Engine())
		}
	}
	// Lag sampler: fleet-averaged records-behind, sampled in-process.
	var lagSum float64
	var lagSamples int
	var lagMax uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for !stop.Load() {
			<-tick.C
			var fleetLag uint64
			for _, f := range fleet {
				var lag uint64
				for s := 0; s < res.Shards; s++ {
					p := engine.ShardLSN(s)
					if a := f.AppliedLSN(s); p > a {
						lag += p - a
					}
				}
				fleetLag += lag
				if lag > lagMax {
					lagMax = lag
				}
			}
			lagSum += float64(fleetLag) / float64(len(fleet))
			lagSamples++
		}
	}()
	time.Sleep(interval)
	stop.Store(true)
	wg.Wait()

	// Convergence: how long the fleet takes to drain once writes stop.
	t0 := time.Now()
	deadline := t0.Add(60 * time.Second)
	for _, f := range fleet {
		for s := 0; s < res.Shards; s++ {
			want := engine.ShardLSN(s)
			for f.AppliedLSN(s) < want {
				if time.Now().After(deadline) {
					return 0, 0, fmt.Errorf("bench: follower stuck at LSN %d on shard %d, primary at %d", f.AppliedLSN(s), s, want)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	}
	res.ConvergeMS = float64(time.Since(t0).Microseconds()) / 1000
	if lagSamples > 0 {
		res.MeanLagRecords = lagSum / float64(lagSamples)
	}
	res.MaxLagRecords = lagMax
	res.RecordsApplied, res.SnapshotFrames, res.Reconnects = 0, 0, 0
	for _, f := range fleet {
		st := f.Stats()
		res.Reconnects += st.Reconnects
		for _, sp := range st.Shards {
			res.RecordsApplied += sp.Records
			res.SnapshotFrames += sp.Snapshots
		}
	}
	// Cheap divergence tripwire: a converged follower must hold exactly
	// the primary's visible key count.
	want := engine.Len()
	for i, f := range fleet {
		if got := f.Engine().Len(); got != want {
			return 0, 0, fmt.Errorf("bench: follower %d converged to %d keys, primary has %d", i, got, want)
		}
	}
	return float64(wroteKeys.Load()), float64(readOps.Load()), nil
}

// ReplSweep measures the follower axis for every lock × shards point.
func ReplSweep(locks []string, shardCounts, followerCounts []int, readers, batch, valueSize, writeRate int, cfg Config) ([]ReplResult, error) {
	var results []ReplResult
	for _, lock := range locks {
		for _, sc := range shardCounts {
			for _, fc := range followerCounts {
				r, err := ReplPoint(lock, sc, fc, readers, batch, valueSize, writeRate, cfg)
				if err != nil {
					return nil, err
				}
				results = append(results, r)
			}
		}
	}
	return results, nil
}

// WriteReplTable renders the measurements as the aligned human-readable
// companion of the JSON report.
func WriteReplTable(w io.Writer, results []ReplResult) {
	const format = "%-10s %7s %10s %8s %12s %12s %14s %9s %9s %9s %6s %7s\n"
	fmt.Fprintf(w, format, "lock", "shards", "followers", "readers",
		"wkeys/sec", "reads/sec", "reads/s/foll", "meanlag", "maxlag", "conv(ms)", "snaps", "reconn")
	for _, r := range results {
		fmt.Fprintf(w, format, r.Lock,
			fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%d", r.Followers), fmt.Sprintf("%d", r.ReadersPerFollower),
			fmt.Sprintf("%.0f", r.WriteKeysPerSec),
			fmt.Sprintf("%.0f", r.ReadsPerSec),
			fmt.Sprintf("%.0f", r.ReadsPerSecPerFollower),
			fmt.Sprintf("%.1f", r.MeanLagRecords),
			fmt.Sprintf("%d", r.MaxLagRecords),
			fmt.Sprintf("%.1f", r.ConvergeMS),
			fmt.Sprintf("%d", r.SnapshotFrames),
			fmt.Sprintf("%d", r.Reconnects))
	}
}
