package stdrw

import (
	"testing"

	"github.com/bravolock/bravo/internal/lockcheck"
	"github.com/bravolock/bravo/internal/rwl"
)

func mk() rwl.RWLock { return new(Lock) }

func TestExclusion(t *testing.T) {
	lockcheck.Exclusion(t, mk, 4, 2, 2000)
}

func TestTryExclusion(t *testing.T) {
	lockcheck.TryExclusion(t, mk, 6, 1500)
}

func TestReadersConcurrent(t *testing.T) {
	lockcheck.ReadersConcurrent(t, mk())
}

func TestWriterExcludesReaders(t *testing.T) {
	lockcheck.WriterExcludesReaders(t, mk())
}
