// Command locktorture regenerates the paper's kernel torture experiments
// (Figures 7–8, §6.1): readers and writers repeatedly acquiring an rwsem
// and holding it for fixed critical sections.
//
// Modes:
//
//	-mode native   drive the real rwsem / BRAVO-rwsem implementations; the
//	               paper's 50ms/10ms critical sections are scaled down by
//	               default (flags restore them)
//	-mode sim      the coherence-cost simulator on the X5-4 topology
//
// Examples:
//
//	locktorture -writers 1                       # Figure 7
//	locktorture -writers 0                       # Figure 8a
//	locktorture -writers 0 -readcs 5us           # Figure 8b
//	locktorture -mode native -readcs 500us -writecs 100us -interval 3s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/bravolock/bravo/internal/bench"
	"github.com/bravolock/bravo/internal/cliutil"
	"github.com/bravolock/bravo/internal/sim"
)

var (
	modeFlag     = flag.String("mode", "sim", "native or sim")
	writersFlag  = flag.Int("writers", 1, "number of writer threads (paper: 1 for Fig 7, 0 for Fig 8)")
	readCSFlag   = flag.Duration("readcs", 50*time.Millisecond, "reader critical section (paper: 50ms; Fig 8b: 5us)")
	writeCSFlag  = flag.Duration("writecs", 10*time.Millisecond, "writer critical section (paper: 10ms)")
	intervalFlag = flag.Duration("interval", time.Second, "native measurement interval (paper: 30s)")
	threadsFlag  = flag.String("threads", "1,2,4,8,16,32,72,108,142", "reader thread counts")
)

func main() {
	flag.Parse()
	threads, err := cliutil.ParseInts(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locktorture:", err)
		os.Exit(1)
	}
	if *modeFlag == "sim" {
		runSim(threads)
		return
	}
	cfg := bench.Config{Interval: *intervalFlag, Runs: 1, Threads: threads}
	fmt.Printf("# locktorture (native): writers=%d readcs=%v writecs=%v interval=%v\n",
		*writersFlag, *readCSFlag, *writeCSFlag, *intervalFlag)
	fmt.Printf("%-10s %14s %14s %14s %14s\n", "readers", "stock-reads", "bravo-reads", "stock-writes", "bravo-writes")
	for _, tc := range threads {
		s := bench.Locktorture(bench.Stock, tc, *writersFlag, *readCSFlag, *writeCSFlag, cfg)
		b := bench.Locktorture(bench.Bravo, tc, *writersFlag, *readCSFlag, *writeCSFlag, cfg)
		fmt.Printf("%-10d %14d %14d %14d %14d\n", tc, s.Reads, b.Reads, s.Writes, b.Writes)
	}
}

func runSim(threads []int) {
	if *writersFlag > 0 {
		reads, writes := sim.Figure7Locktorture(threads)
		writeKernelSeries("Figure 7a: locktorture reader ops, 1 writer (sim, X5-4, 30s)", threads, reads)
		writeKernelSeries("Figure 7b: locktorture writer ops, 1 writer (sim, X5-4, 30s)", threads, writes)
		return
	}
	s := sim.Figure8Locktorture(threads, float64(readCSFlag.Nanoseconds()))
	title := fmt.Sprintf("Figure 8: locktorture reads, 0 writers, %v CS (sim, X5-4, 30s)", *readCSFlag)
	writeKernelSeries(title, threads, s)
}

func writeKernelSeries(title string, threads []int, s sim.Series) {
	fmt.Printf("# %s\n", title)
	fmt.Printf("%-10s %16s %16s\n", "threads", "stock", "BRAVO")
	for i, tc := range threads {
		fmt.Printf("%-10d %16.0f %16.0f\n", tc, s["stock"][i].Value, s["BRAVO"][i].Value)
	}
	fmt.Println()
}
