package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/histogram"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/kvserv"
	"github.com/bravolock/bravo/internal/wire"
	"github.com/bravolock/bravo/internal/xrand"
)

// The wire workload benchmarks the serving stack's two front-ends against
// each other over real TCP: the pipelined binary protocol (internal/wire)
// versus HTTP/1.1, same engine, same batch sizes, same connection counts.
// Every client request is a batch of WireBatch keys (MPUT or MGET), so
// both protocols enjoy the engine's shard-group lock amortization; the
// comparison isolates the transport — text parsing, JSON+base64 codec, and
// one-request-per-round-trip on the HTTP side, against binary frames and
// request pipelining on the wire side. The headline column is the
// wire/HTTP throughput ratio per (connections, depth) point; the
// acceptance bar is >= 2x on batched ops at 256 connections.

// WireKeys is the workload's keyspace.
const WireKeys = 1 << 14

// WireDefaultBatch is the keys per request batch — the kvserv workload's
// MultiPut group size, carried across the socket.
const WireDefaultBatch = 64

// WireDefaultValueSize keeps the payload small enough that codec and lock
// traffic dominate, the axes this comparison isolates.
const WireDefaultValueSize = 128

// WireDefaultConns and WireDefaultDepths are the sweep grid: connection
// counts spanning idle-pool to fd-pressure, pipeline depths from
// request-response (1, HTTP-equivalent) to deep pipelining.
var (
	WireDefaultConns  = []int{64, 256, 1024, 4096}
	WireDefaultDepths = []int{1, 8, 32}
)

// WireResult is one (proto, op, conns, depth) measurement.
type WireResult struct {
	// Proto is "wire" (binary, pipelined) or "http" (HTTP/1.1, depth
	// pinned to 1 — the protocol serializes a connection's requests).
	Proto string `json:"proto"`
	// Op is "mput" or "mget": batched writes or batched reads.
	Op    string `json:"op"`
	Conns int    `json:"conns"`
	Depth int    `json:"depth"`
	Batch int    `json:"batch"`
	// KeysPerSec is the median (over runs) rate of keys carried by
	// completed requests; RequestsPerSec is the same in requests.
	KeysPerSec     float64 `json:"keys_per_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	// P50/P99 are per-request completion latency (issue to response, so a
	// pipelined request's number includes queueing behind its window).
	P50Nanos int64 `json:"p50_ns"`
	P99Nanos int64 `json:"p99_ns"`
}

// WireComparison pairs the wire and HTTP measurements of one (op, conns)
// point at each wire depth: the transport payoff.
type WireComparison struct {
	Op    string `json:"op"`
	Conns int    `json:"conns"`
	Depth int    `json:"depth"`
	// HTTPKeysPerSec is the depth-1 HTTP baseline; WireKeysPerSec the
	// binary protocol at Depth; WireOverHTTP their ratio.
	HTTPKeysPerSec float64 `json:"http_keys_per_sec"`
	WireKeysPerSec float64 `json:"wire_keys_per_sec"`
	WireOverHTTP   float64 `json:"wire_over_http"`
}

// WireReport is the top-level BENCH_wire.json document.
type WireReport struct {
	Benchmark  string           `json:"benchmark"`
	Meta       RunMeta          `json:"meta"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	IntervalMS int64            `json:"interval_ms"`
	Runs       int              `json:"runs"`
	Lock       string           `json:"lock"`
	Shards     int              `json:"shards"`
	Keys       int              `json:"keys"`
	Batch      int              `json:"batch"`
	ValueSize  int              `json:"value_size"`
	Results    []WireResult     `json:"results"`
	Comparison []WireComparison `json:"comparisons"`
}

// WriteJSON renders the report as indented JSON.
func (r WireReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// NewWireReport stamps the environment fields of a report.
func NewWireReport(cfg Config, lock string, shards, batch, valueSize int, results []WireResult, comps []WireComparison) WireReport {
	return WireReport{
		Benchmark:  "wire",
		Meta:       NewRunMeta(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		IntervalMS: cfg.Interval.Milliseconds(),
		Runs:       cfg.Runs,
		Lock:       lock,
		Shards:     shards,
		Keys:       WireKeys,
		Batch:      batch,
		ValueSize:  valueSize,
		Results:    results,
		Comparison: comps,
	}
}

// wireBenchServer is one measurement run's server: a fresh engine behind
// both front-ends on loopback TCP.
type wireBenchServer struct {
	srv      *kvserv.Server
	engine   *kvs.Sharded
	httpAddr string
	wireAddr string
	done     chan struct{}
}

func startWireBenchServer(lockName string, shards, valueSize int) (*wireBenchServer, error) {
	mk, _, err := shardedKVFactory(lockName)
	if err != nil {
		return nil, err
	}
	engine, err := kvs.NewSharded(shards, mk)
	if err != nil {
		return nil, err
	}
	// Prefill so MGETs hit resident keys and MPUTs overwrite in place.
	value := make([]byte, valueSize)
	for k := uint64(0); k < WireKeys; k++ {
		copy(value, kvs.EncodeValue(k))
		engine.Put(k, value)
	}
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		hl.Close()
		return nil, err
	}
	srv := kvserv.New(engine, kvserv.Config{ReapInterval: -1})
	s := &wireBenchServer{
		srv: srv, engine: engine,
		httpAddr: hl.Addr().String(),
		wireAddr: wl.Addr().String(),
		done:     make(chan struct{}, 2),
	}
	go func() { srv.Serve(hl); s.done <- struct{}{} }()
	go func() { srv.ServeWire(wl); s.done <- struct{}{} }()
	return s, nil
}

func (s *wireBenchServer) Close() {
	s.srv.Close()
	<-s.done
	<-s.done
}

// WirePoint measures one (proto, op, conns, depth) point: cfg.Runs runs
// against fresh servers, median keys/sec, last run's latency histogram.
func WirePoint(lockName string, shards, conns, depth, batch, valueSize int, proto, op string, cfg Config) (WireResult, error) {
	if proto != "wire" && proto != "http" {
		return WireResult{}, fmt.Errorf("bench: wire proto %q (want wire or http)", proto)
	}
	if op != "mput" && op != "mget" {
		return WireResult{}, fmt.Errorf("bench: wire op %q (want mput or mget)", op)
	}
	if proto == "http" {
		depth = 1 // HTTP/1.1 serializes a connection's requests
	}
	if depth < 1 || batch < 1 {
		return WireResult{}, fmt.Errorf("bench: wire depth %d / batch %d (want >= 1)", depth, batch)
	}
	res := WireResult{Proto: proto, Op: op, Conns: conns, Depth: depth, Batch: batch}
	var lastHist *histogram.Histogram
	var lastReqs uint64
	var runErr error
	keys := cfg.Median(func() float64 {
		srv, err := startWireBenchServer(lockName, shards, valueSize)
		if err != nil {
			runErr = err
			return 0
		}
		defer srv.Close()
		hist := &histogram.Histogram{}
		var histMu sync.Mutex
		var reqs atomic.Uint64
		total := RunWorkers(conns, cfg.Interval, func(id int, stop *atomic.Bool) uint64 {
			rng := xrand.NewXorShift64(uint64(id)*0x9e3779b97f4a7c15 + 1)
			local := &histogram.Histogram{}
			var n, r uint64
			if proto == "wire" {
				n, r = wireWorker(srv.wireAddr, op, depth, batch, valueSize, rng, local, stop)
			} else {
				n, r = httpWorker(srv.httpAddr, op, batch, valueSize, rng, local, stop)
			}
			histMu.Lock()
			hist.Merge(local)
			histMu.Unlock()
			reqs.Add(r)
			return n
		})
		lastHist = hist
		lastReqs = reqs.Load()
		return float64(total)
	})
	if runErr != nil {
		return res, runErr
	}
	res.KeysPerSec = keys / cfg.Interval.Seconds()
	res.RequestsPerSec = float64(lastReqs) / cfg.Interval.Seconds()
	if lastHist != nil && lastHist.Count() > 0 {
		res.P50Nanos = lastHist.Percentile(50)
		res.P99Nanos = lastHist.Percentile(99)
	}
	return res, nil
}

// wireWorker drives one binary connection with a sliding window of depth
// pipelined batch requests until stop. Returns (keys completed, requests
// completed).
func wireWorker(addr, op string, depth, batch, valueSize int, rng *xrand.XorShift64, hist *histogram.Histogram, stop *atomic.Bool) (uint64, uint64) {
	conn, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		return 0, 0
	}
	defer conn.Close()
	value := make([]byte, valueSize)
	copy(value, kvs.EncodeValue(rng.Next()))
	var b wire.Batch
	for i := 0; i < batch; i++ {
		b.Add(0, value)
	}
	var req *wire.Request
	if op == "mput" {
		req = b.MPutRequest(0)
	} else {
		req = b.MGetRequest(0)
	}
	type inflight struct {
		p     *wire.Pending
		start int64
	}
	window := make([]inflight, 0, depth)
	var keys, reqs uint64
	for !stop.Load() {
		for len(window) < depth {
			for i := range req.Keys {
				req.Keys[i] = rng.Intn(WireKeys)
			}
			p, err := conn.Start(req)
			if err != nil {
				return keys, reqs
			}
			window = append(window, inflight{p: p, start: clock.Nanos()})
		}
		if err := conn.Flush(); err != nil {
			return keys, reqs
		}
		head := window[0]
		copy(window, window[1:])
		window = window[:len(window)-1]
		if _, err := head.p.Wait(); err != nil {
			return keys, reqs
		}
		hist.Record(clock.Nanos() - head.start)
		keys += uint64(batch)
		reqs++
	}
	// Drain the window so the connection closes with nothing in flight.
	conn.Flush()
	for _, f := range window {
		if _, err := f.p.Wait(); err != nil {
			break
		}
		keys += uint64(batch)
		reqs++
	}
	return keys, reqs
}

// httpWorker drives one HTTP/1.1 connection with sequential batch
// requests (POST /mput or GET /mget) until stop.
func httpWorker(addr, op string, batch, valueSize int, rng *xrand.XorShift64, hist *histogram.Histogram, stop *atomic.Bool) (uint64, uint64) {
	// One transport per worker pinned to one connection: the HTTP analogue
	// of the wire worker's single pipelined conn.
	tr := &http.Transport{
		MaxIdleConns:        1,
		MaxIdleConnsPerHost: 1,
		MaxConnsPerHost:     1,
	}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr, Timeout: 10 * time.Second}

	value := make([]byte, valueSize)
	copy(value, kvs.EncodeValue(rng.Next()))
	type entry struct {
		Key   uint64 `json:"key"`
		Value []byte `json:"value"`
	}
	type mputBody struct {
		Entries []entry `json:"entries"`
	}
	body := mputBody{Entries: make([]entry, batch)}
	for i := range body.Entries {
		body.Entries[i].Value = value
	}
	var buf bytes.Buffer
	var urlBuf bytes.Buffer
	var keys, reqs uint64
	for !stop.Load() {
		start := clock.Nanos()
		var resp *http.Response
		var err error
		if op == "mput" {
			for i := range body.Entries {
				body.Entries[i].Key = rng.Intn(WireKeys)
			}
			buf.Reset()
			if err := json.NewEncoder(&buf).Encode(&body); err != nil {
				return keys, reqs
			}
			resp, err = client.Post("http://"+addr+"/mput", "application/json", bytes.NewReader(buf.Bytes()))
		} else {
			urlBuf.Reset()
			urlBuf.WriteString("http://")
			urlBuf.WriteString(addr)
			urlBuf.WriteString("/mget?keys=")
			for i := 0; i < batch; i++ {
				if i > 0 {
					urlBuf.WriteByte(',')
				}
				urlBuf.WriteString(strconv.FormatUint(rng.Intn(WireKeys), 10))
			}
			resp, err = client.Get(urlBuf.String())
		}
		if err != nil {
			return keys, reqs
		}
		// Decode what a real client would: the MGET body is the values
		// (base64 inside JSON — part of HTTP's cost, as binary decode is
		// part of the wire client's); write responses are a small ack.
		if op == "mget" {
			var got struct {
				Values [][]byte `json:"values"`
			}
			err = json.NewDecoder(resp.Body).Decode(&got)
		} else {
			_, err = io.Copy(io.Discard, resp.Body)
		}
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			return keys, reqs
		}
		hist.Record(clock.Nanos() - start)
		keys += uint64(batch)
		reqs++
	}
	return keys, reqs
}

// WireSweep measures the grid: for each op and connection count, the HTTP
// baseline then the wire protocol at every depth, paired into comparisons.
func WireSweep(lockName string, shards int, connCounts, depths []int, batch, valueSize int, cfg Config) ([]WireResult, []WireComparison, error) {
	var results []WireResult
	var comps []WireComparison
	for _, op := range []string{"mput", "mget"} {
		for _, conns := range connCounts {
			httpRes, err := WirePoint(lockName, shards, conns, 1, batch, valueSize, "http", op, cfg)
			if err != nil {
				return nil, nil, err
			}
			results = append(results, httpRes)
			for _, depth := range depths {
				wireRes, err := WirePoint(lockName, shards, conns, depth, batch, valueSize, "wire", op, cfg)
				if err != nil {
					return nil, nil, err
				}
				results = append(results, wireRes)
				comp := WireComparison{
					Op: op, Conns: conns, Depth: depth,
					HTTPKeysPerSec: httpRes.KeysPerSec,
					WireKeysPerSec: wireRes.KeysPerSec,
				}
				if httpRes.KeysPerSec > 0 {
					comp.WireOverHTTP = wireRes.KeysPerSec / httpRes.KeysPerSec
				}
				comps = append(comps, comp)
			}
		}
	}
	return results, comps, nil
}

// WriteWireTable renders the per-point measurements as the aligned
// human-readable companion of the JSON report.
func WriteWireTable(w io.Writer, results []WireResult) {
	const format = "%-6s %-6s %7s %7s %7s %14s %12s %10s %10s\n"
	fmt.Fprintf(w, format, "proto", "op", "conns", "depth", "batch", "keys/sec", "reqs/sec", "p50(ns)", "p99(ns)")
	for _, r := range results {
		fmt.Fprintf(w, format, r.Proto, r.Op,
			fmt.Sprintf("%d", r.Conns), fmt.Sprintf("%d", r.Depth), fmt.Sprintf("%d", r.Batch),
			fmt.Sprintf("%.0f", r.KeysPerSec), fmt.Sprintf("%.0f", r.RequestsPerSec),
			fmt.Sprintf("%d", r.P50Nanos), fmt.Sprintf("%d", r.P99Nanos))
	}
}

// WriteWireComparisons renders the wire-vs-HTTP pairing: the transport
// payoff per (op, conns, depth) point.
func WriteWireComparisons(w io.Writer, comps []WireComparison) {
	const format = "%-6s %7s %7s %16s %16s %9s\n"
	fmt.Fprintf(w, format, "op", "conns", "depth", "http(keys/s)", "wire(keys/s)", "ratio")
	for _, c := range comps {
		fmt.Fprintf(w, format, c.Op,
			fmt.Sprintf("%d", c.Conns), fmt.Sprintf("%d", c.Depth),
			fmt.Sprintf("%.0f", c.HTTPKeysPerSec), fmt.Sprintf("%.0f", c.WireKeysPerSec),
			fmt.Sprintf("%.2fx", c.WireOverHTTP))
	}
}
