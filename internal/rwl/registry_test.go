package rwl

import (
	"strings"
	"testing"
)

type fakeLock struct{}

func (fakeLock) RLock() Token  { return 0 }
func (fakeLock) RUnlock(Token) {}
func (fakeLock) Lock()         {}
func (fakeLock) Unlock()       {}

func TestRegisterAndNew(t *testing.T) {
	Register("test-fake", func() RWLock { return fakeLock{} })
	l, err := New("test-fake")
	if err != nil {
		t.Fatal(err)
	}
	tok := l.RLock()
	l.RUnlock(tok)
}

func TestNewUnknown(t *testing.T) {
	_, err := New("no-such-lock")
	if err == nil {
		t.Fatal("unknown lock accepted")
	}
	if !strings.Contains(err.Error(), "no-such-lock") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	Register("test-dup", func() RWLock { return fakeLock{} })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("test-dup", func() RWLock { return fakeLock{} })
}

func TestLookupAndNames(t *testing.T) {
	Register("test-lookup", func() RWLock { return fakeLock{} })
	if _, ok := Lookup("test-lookup"); !ok {
		t.Fatal("Lookup missed a registered lock")
	}
	if _, ok := Lookup("absent"); ok {
		t.Fatal("Lookup invented a lock")
	}
	names := Names()
	found := false
	for _, n := range names {
		if n == "test-lookup" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v missing test-lookup", names)
	}
	// Names must be sorted.
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("Names() not sorted at %d: %v", i, names)
		}
	}
}
