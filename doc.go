// Package bravo implements BRAVO — Biased Locking for Reader-Writer Locks
// (Dice & Kogan, USENIX ATC 2019) — as a composable Go library, together
// with the reader-writer locks the paper evaluates it against.
//
// BRAVO is a transformation, not a lock: New wraps any existing
// reader-writer lock A and yields BRAVO-A, a lock with the same admission
// policy and write-side behaviour but scalable concurrent reading. Readers
// publish themselves with a single CAS into a process-wide visible readers
// table instead of updating A's central reader indicator; writers pass
// through A and, when reader bias is set, revoke it by scanning the table.
// A built-in policy bounds the worst-case writer slow-down to about
// 1/(N+1) (N = 9 by default), the paper's primum-non-nocere guarantee.
//
// # Quick start
//
//	l := bravo.New(bravo.NewBA())     // BRAVO over a Brandenburg-Anderson lock
//	tok := l.RLock()                  // fast path: one CAS, no shared counter
//	defer l.RUnlock(tok)              // the token carries the table slot
//
// Writers use Lock/Unlock as usual. The token-passing read API mirrors the
// paper's observation that "the slot value must be passed from the read
// lock operator to the corresponding unlock".
//
// Hot read paths can pin a per-goroutine Reader handle (NewReader) and use
// RLockH/RUnlockH: the identity is derived once and the table slot cached
// per lock, so the steady-state read is one CAS with no hashing, and
// unbalanced unlocks are detected from the handle's held-slot record.
//
// Beyond the lock itself, NewShardedKV builds a sharded key-value engine
// whose per-shard locks come from any of the substrates above — the
// read-mostly serving workload the paper's rocksdb experiments point at,
// with BRAVO's one-CAS read path per shard (and handle-threaded
// GetH/GetIntoH/MultiGetH: one identity per request, not per shard). The
// engine's write side batches: MultiPut/MultiDelete apply each shard's
// group under one write-lock acquisition, PutAsync/Flush coalesce writers
// through per-shard queues, and PutTTL/Reap give keys lazy-then-reaped
// expiry. cmd/kvserv serves the engine over HTTP with one pinned Reader
// per connection.
//
// OpenShardedKV makes the engine durable: a per-shard write-ahead log with
// group commit (each of the batches above is one CRC-framed record and,
// under SyncAlways, one fsync — the same amortize-the-slow-path move
// BRAVO makes for bias revocation), Checkpoint snapshots with log
// truncation, and crash recovery that replays snapshot + log tail,
// dropping a torn final record. See DESIGN.md's "Durability" section.
//
// OpenFollowerKV scales the reads out of the process entirely: every WAL
// record carries a per-shard LSN, a durable primary streams the log over
// HTTP, and followers replay it into in-memory replicas — read traffic
// fans out to follower fleets while writes serialize through the primary,
// with commit LSNs as read-your-writes tokens. See DESIGN.md's
// "Replication" section and README's failure matrix.
//
// The Example functions in example_test.go are runnable documentation for
// each of these surfaces: ExampleNew (the transformation), ExampleNewReader
// (handles), ExampleNewShardedKV, ExampleShardedKV_MultiPut,
// ExampleShardedKV_PutTTL, ExampleShardedKV_PutAsync, ExampleOpenShardedKV
// (durability), and ExampleOpenFollowerKV (replication); go test runs them
// all.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// reproduction of the paper's figures and tables, and the examples/
// directory for runnable programs.
package bravo
