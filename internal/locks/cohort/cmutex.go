package cohort

import (
	"github.com/bravolock/bravo/internal/arch"
	"github.com/bravolock/bravo/internal/locks/ticket"
)

// maxHandoffs bounds consecutive local handoffs of the global lock within
// one cohort, preserving long-term fairness across nodes (the cohort-locking
// paper [20] uses a bound of this magnitude).
const maxHandoffs = 64

// cnode is one node's arm of the cohort mutex.
type cnode struct {
	local ticket.Mutex
	// ownGlobal marks that this cohort holds the global lock; it is read and
	// written only while holding the local ticket lock.
	ownGlobal bool
	// handoffs counts consecutive local passes; guarded by the local lock.
	handoffs int
	_        arch.SectorPad
}

// Mutex is a C-TKT-TKT cohort mutual-exclusion lock: a global ticket lock
// whose ownership is handed off preferentially to waiters on the same NUMA
// node, bounded by maxHandoffs.
type Mutex struct {
	global ticket.Mutex
	_      arch.SectorPad
	nodes  []cnode
	// owner is the node that currently holds the mutex; written under the
	// mutex itself, read by Unlock.
	owner int
}

// NewMutex returns a cohort mutex spanning the given number of nodes.
func NewMutex(nodes int) *Mutex {
	if nodes < 1 {
		nodes = 1
	}
	return &Mutex{nodes: make([]cnode, nodes)}
}

// Lock acquires the mutex on behalf of a caller running on node.
func (m *Mutex) Lock(node int) {
	c := &m.nodes[node]
	c.local.Lock()
	if !c.ownGlobal {
		m.global.Lock()
		c.ownGlobal = true
	}
	m.owner = node
}

// Unlock releases the mutex, handing the global lock to a same-node waiter
// when one exists and the handoff budget allows.
func (m *Mutex) Unlock() {
	c := &m.nodes[m.owner]
	if c.local.HasWaiters() && c.handoffs < maxHandoffs {
		c.handoffs++
		// Keep the global lock owned by this cohort; the local successor
		// observes ownGlobal and skips the global acquisition.
		c.local.Unlock()
		return
	}
	c.handoffs = 0
	c.ownGlobal = false
	m.global.Unlock()
	c.local.Unlock()
}
