package bench

import (
	"testing"
	"time"
)

func TestReadLatencyRecordsSamples(t *testing.T) {
	h := ReadLatency("bravo-ba", 2, 500*time.Microsecond,
		Config{Interval: 40 * time.Millisecond})
	if h.Count() == 0 {
		t.Fatal("no latency samples recorded")
	}
	if h.Percentile(99) < h.Percentile(50) {
		t.Fatal("percentiles inverted")
	}
}

func TestReadLatencyRevMuVariantRuns(t *testing.T) {
	// The §7 revocation-mutex variant must measure cleanly; the claim that
	// it trims the read-latency tail is asserted qualitatively by the
	// BenchmarkLatencyTail harness (a tail comparison on one CPU is too
	// noisy for a hard test assertion).
	h := ReadLatency("bravo-ba-revmu", 2, 500*time.Microsecond,
		Config{Interval: 40 * time.Millisecond})
	if h.Count() == 0 {
		t.Fatal("no latency samples recorded")
	}
}
