package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	_ "github.com/bravolock/bravo/internal/locks/all"
	"github.com/bravolock/bravo/internal/xrand"
)

// The sweep is exercised at smoke scale: structure, per-row meta, phase
// boundaries, and report plumbing. Performance claims live in the
// checked-in BENCH_adaptive.json and the CI smoke, not here.
func TestAdaptiveSweepStructure(t *testing.T) {
	cfg := Config{Interval: 30 * time.Millisecond, Runs: 1}
	results, compare, acc, err := AdaptiveSweep(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(AdaptiveWorkloads) * len(AdaptiveSettings); len(results) != want {
		t.Fatalf("sweep produced %d rows, want %d", len(results), want)
	}
	if len(compare) != len(AdaptiveWorkloads) {
		t.Fatalf("sweep produced %d comparisons, want %d", len(compare), len(AdaptiveWorkloads))
	}
	for _, r := range results {
		if r.Ops <= 0 || r.ThroughputOpsPerSec <= 0 {
			t.Fatalf("row %s/%s recorded no operations", r.Workload, r.Setting)
		}
		// Satellite: every row carries its own meta stamp.
		if r.Meta.Timestamp == "" || r.Meta.GoVersion == "" {
			t.Fatalf("row %s/%s missing per-row meta: %+v", r.Workload, r.Setting, r.Meta)
		}
		switch r.Setting {
		case "adaptive":
			if r.FinalModes == nil {
				t.Fatalf("adaptive row %s has no final mode census", r.Workload)
			}
			n := 0
			for _, c := range r.FinalModes {
				n += c
			}
			if n != AdaptiveShards {
				t.Fatalf("adaptive row %s mode census covers %d shards, want %d",
					r.Workload, n, AdaptiveShards)
			}
		default:
			if r.FinalModes != nil || r.BiasFlips != 0 {
				t.Fatalf("static row %s/%s carries adaptation counters", r.Workload, r.Setting)
			}
		}
		if r.Workload == "phaseshift" {
			if r.Phases != phaseShiftPhases {
				t.Fatalf("phaseshift row reports %d phases", r.Phases)
			}
			if len(r.PhaseBoundaries) == 0 {
				t.Fatal("phaseshift row recorded no phase boundaries")
			}
			for _, b := range r.PhaseBoundaries {
				if _, err := time.Parse(time.RFC3339Nano, b); err != nil {
					t.Fatalf("phase boundary %q: %v", b, err)
				}
			}
			// The boundaries belong to the same clock as the row's own
			// meta stamp: none may precede the row start.
			rowStart, err := time.Parse(time.RFC3339, r.Meta.Timestamp)
			if err != nil {
				t.Fatal(err)
			}
			first, _ := time.Parse(time.RFC3339Nano, r.PhaseBoundaries[0])
			if first.Before(rowStart.Add(-time.Second)) {
				t.Fatalf("phase boundary %v predates row start %v", first, rowStart)
			}
		} else if len(r.PhaseBoundaries) != 0 {
			t.Fatalf("steady row %s/%s has phase boundaries", r.Workload, r.Setting)
		}
	}

	rep := NewAdaptiveReport(cfg, results, compare, acc)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded AdaptiveReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if decoded.Benchmark != "adaptive" || len(decoded.Results) != len(results) {
		t.Fatalf("decoded report wrong: benchmark %q, %d rows", decoded.Benchmark, len(decoded.Results))
	}
	// The acceptance fields CI greps for must serialize under these names.
	for _, field := range []string{
		`"phaseshift_adaptive_ge_best_static"`,
		`"readonly_adaptive_within_5pct_of_biased"`,
		`"adaptive_ge_best_static"`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(field)) {
			t.Fatalf("report JSON lacks %s:\n%s", field, buf.String())
		}
	}

	var tab bytes.Buffer
	WriteAdaptiveTable(&tab, results, compare)
	for _, want := range []string{"adaptive", "static-biased", "static-fair", "phaseshift", "ge-best"} {
		if !strings.Contains(tab.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, tab.String())
		}
	}
}

// The zipf sampler must actually skew: the top handful of ranks should
// absorb a majority of draws at theta 1.5.
func TestAdaptiveZipfSkew(t *testing.T) {
	zipfSetup()
	rng := xrand.NewXorShift64(7)
	top8 := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if zipfKey(rng) < 8 {
			top8++
		}
	}
	if top8 < draws/2 {
		t.Fatalf("top-8 ranks got %d/%d draws; zipf skew too weak", top8, draws)
	}
}
