package kvs

import (
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/bravolock/bravo/internal/arch"
	"github.com/bravolock/bravo/internal/hash"
	"github.com/bravolock/bravo/internal/rwl"
)

// Sharded is a sharded key-value engine: the keyspace is striped across a
// power-of-two number of shards, each an independent hash map guarded by its
// own reader-writer lock from a caller-supplied factory. It is the
// scale-out form of the single-stripe Memtable/HashCache substrates: with a
// BRAVO-wrapped lock per shard the read path is one CAS into the shared
// visible-readers table regardless of shard count, while writers only
// exclude readers of their own shard.
//
// Read paths accept an optional rwl.Reader handle (GetH, GetIntoH,
// MultiGetH): a request pins one identity on its handle and carries it
// across every shard it touches, so each shard lock's steady-state fast
// path is a cached-slot CAS — no per-shard, per-acquisition identity
// derivation or hashing. Handles are single-goroutine; give each worker or
// request its own.
//
// Like Memtable.Get, Sharded.Get and MultiGet copy values out under the
// shard's read lock, so returned values stay valid after the lock is
// released even while writers update buffers in place.
type Sharded struct {
	shards []kvShard
	mask   uint64
}

// kvShard is one stripe: a lock, its map, and its operation counters.
// Shards are sector-padded so one shard's lock and counter traffic does not
// false-share with its neighbours.
type kvShard struct {
	lock rwl.RWLock
	// hlock is lock's handle-accepting view, nil when the lock does not
	// implement rwl.HandleRWLock. Resolved once at construction so the read
	// hot paths pay a nil check, not a type assertion, per acquisition.
	hlock rwl.HandleRWLock
	data  map[uint64][]byte
	ops   shardOps
	_     arch.SectorPad
}

// rlock acquires the shard's read lock, through the handle when both the
// caller supplied one and the lock supports it.
func (sh *kvShard) rlock(h *rwl.Reader) rwl.Token {
	if h != nil && sh.hlock != nil {
		return sh.hlock.RLockH(h)
	}
	return sh.lock.RLock()
}

// runlock releases a read acquisition made by rlock with the same handle.
func (sh *kvShard) runlock(h *rwl.Reader, tok rwl.Token) {
	if h != nil && sh.hlock != nil {
		sh.hlock.RUnlockH(h, tok)
		return
	}
	sh.lock.RUnlock(tok)
}

// shardOps counts operations against one shard. Counters are atomics and
// are bumped outside the shard lock (after release on the read paths), so
// they are eventually consistent with the data, never exact even under all
// locks; the hot paths pay one atomic add each by counting the rare
// outcome — misses and fresh inserts — and deriving hits and in-place
// updates in Stats.
type shardOps struct {
	gets      atomic.Uint64
	getMisses atomic.Uint64
	puts      atomic.Uint64
	putsFresh atomic.Uint64
	deletes   atomic.Uint64
	delMisses atomic.Uint64
	batches   atomic.Uint64
	batchKeys atomic.Uint64
	snapshots atomic.Uint64
}

// ShardStats is a point-in-time summary of one shard (or, via Total, of the
// whole engine).
type ShardStats struct {
	Keys            int    `json:"keys"`
	Gets            uint64 `json:"gets"`
	GetHits         uint64 `json:"get_hits"`
	Puts            uint64 `json:"puts"`
	PutsInPlace     uint64 `json:"puts_in_place"`
	Deletes         uint64 `json:"deletes"`
	DeleteHits      uint64 `json:"delete_hits"`
	MultiGetBatches uint64 `json:"multi_get_batches"`
	MultiGetKeys    uint64 `json:"multi_get_keys"`
	Snapshots       uint64 `json:"snapshots"`
}

// add folds o into s.
func (s *ShardStats) add(o ShardStats) {
	s.Keys += o.Keys
	s.Gets += o.Gets
	s.GetHits += o.GetHits
	s.Puts += o.Puts
	s.PutsInPlace += o.PutsInPlace
	s.Deletes += o.Deletes
	s.DeleteHits += o.DeleteHits
	s.MultiGetBatches += o.MultiGetBatches
	s.MultiGetKeys += o.MultiGetKeys
	s.Snapshots += o.Snapshots
}

// ShardedStats aggregates the per-shard summaries of a Sharded engine.
type ShardedStats struct {
	Shards []ShardStats `json:"shards"`
}

// Total folds every shard's summary into one.
func (st ShardedStats) Total() ShardStats {
	var t ShardStats
	for _, s := range st.Shards {
		t.add(s)
	}
	return t
}

// NewSharded returns an engine with the given number of shards (a positive
// power of two), each guarded by a fresh lock from mkLock.
func NewSharded(shards int, mkLock rwl.Factory) (*Sharded, error) {
	if shards <= 0 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("kvs: shard count %d is not a positive power of two", shards)
	}
	s := &Sharded{shards: make([]kvShard, shards), mask: uint64(shards - 1)}
	for i := range s.shards {
		s.shards[i].lock = mkLock()
		s.shards[i].hlock, _ = s.shards[i].lock.(rwl.HandleRWLock)
		s.shards[i].data = make(map[uint64][]byte)
	}
	return s, nil
}

// HandleCapable reports whether the shard locks accept reader handles.
func (s *Sharded) HandleCapable() bool { return s.shards[0].hlock != nil }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardOf returns the index of the shard responsible for key.
func (s *Sharded) ShardOf(key uint64) int {
	return int(hash.Mix64(key) & s.mask)
}

func (s *Sharded) shardOf(key uint64) *kvShard {
	return &s.shards[hash.Mix64(key)&s.mask]
}

// Get returns a copy of the value stored under key.
func (s *Sharded) Get(key uint64) ([]byte, bool) {
	return s.getInto(nil, key, nil)
}

// GetH is Get through a reader handle: the request's identity is pinned on
// the handle, so the shard lock's fast path is a cached-slot CAS with no
// per-shard identity derivation or hashing.
func (s *Sharded) GetH(h *rwl.Reader, key uint64) ([]byte, bool) {
	return s.getInto(h, key, nil)
}

// GetInto is Get with caller-managed memory: the value is appended to
// buf[:0] (growing it only when too small) and the filled slice returned.
// On a miss the returned slice is buf[:0], so a worker that reuses its
// buffer across calls — hits and misses alike — reads without allocating.
func (s *Sharded) GetInto(key uint64, buf []byte) ([]byte, bool) {
	return s.getInto(nil, key, buf)
}

// GetIntoH is GetInto through a reader handle.
func (s *Sharded) GetIntoH(h *rwl.Reader, key uint64, buf []byte) ([]byte, bool) {
	return s.getInto(h, key, buf)
}

func (s *Sharded) getInto(h *rwl.Reader, key uint64, buf []byte) ([]byte, bool) {
	sh := s.shardOf(key)
	tok := sh.rlock(h)
	v, ok := sh.data[key]
	out := buf[:0]
	if ok {
		out = append(out, v...)
	}
	sh.runlock(h, tok)
	sh.ops.gets.Add(1)
	if !ok {
		sh.ops.getMisses.Add(1)
	}
	return out, ok
}

// Put stores a copy of value under key, reusing the existing buffer in
// place when it fits (Memtable's rocksdb-style in-place update).
func (s *Sharded) Put(key uint64, value []byte) {
	sh := s.shardOf(key)
	sh.lock.Lock()
	sh.ops.puts.Add(1) // total before rare: see the Stats load-order note
	if old, ok := sh.data[key]; ok && cap(old) >= len(value) {
		old = old[:len(value)]
		copy(old, value)
		sh.data[key] = old
	} else {
		buf := make([]byte, len(value))
		copy(buf, value)
		sh.data[key] = buf
		sh.ops.putsFresh.Add(1)
	}
	sh.lock.Unlock()
}

// Delete removes key, reporting whether it was present.
func (s *Sharded) Delete(key uint64) bool {
	sh := s.shardOf(key)
	sh.lock.Lock()
	sh.ops.deletes.Add(1) // total before rare: see the Stats load-order note
	_, ok := sh.data[key]
	if ok {
		delete(sh.data, key)
	} else {
		sh.ops.delMisses.Add(1)
	}
	sh.lock.Unlock()
	return ok
}

// MultiGet performs a batched lookup: keys are grouped by shard and each
// shard's read lock is taken once per batch, not once per key. The result
// is parallel to keys; absent keys yield nil entries.
func (s *Sharded) MultiGet(keys []uint64) [][]byte {
	return s.multiGet(nil, keys)
}

// MultiGetH is MultiGet through a reader handle: one pinned identity covers
// every shard the batch touches, rather than a fresh derivation per shard
// lock acquisition.
func (s *Sharded) MultiGetH(h *rwl.Reader, keys []uint64) [][]byte {
	return s.multiGet(h, keys)
}

func (s *Sharded) multiGet(h *rwl.Reader, keys []uint64) [][]byte {
	out := make([][]byte, len(keys))
	if len(keys) == 0 {
		return out
	}
	// Sort (shard, position) pairs and walk the runs, so per-batch cost
	// scales with the batch, not with the shard count.
	pairs := make([]shardPos, len(keys))
	for i, k := range keys {
		pairs[i] = shardPos{shard: s.ShardOf(k), pos: i}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].shard < pairs[b].shard })
	for lo := 0; lo < len(pairs); {
		hi := lo + 1
		for hi < len(pairs) && pairs[hi].shard == pairs[lo].shard {
			hi++
		}
		sh := &s.shards[pairs[lo].shard]
		tok := sh.rlock(h)
		for _, p := range pairs[lo:hi] {
			if v, ok := sh.data[keys[p.pos]]; ok {
				// Non-nil even for empty values: nil means absent here.
				out[p.pos] = append(make([]byte, 0, len(v)), v...)
			}
		}
		sh.runlock(h, tok)
		sh.ops.batches.Add(1)
		sh.ops.batchKeys.Add(uint64(hi - lo))
		lo = hi
	}
	return out
}

// shardPos pairs a shard index with a position in a MultiGet batch.
type shardPos struct{ shard, pos int }

// Len returns the total number of keys, visiting each shard under its read
// lock.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		tok := sh.lock.RLock()
		n += len(sh.data)
		sh.lock.RUnlock(tok)
	}
	return n
}

// Range calls fn for every key/value pair. Each shard is visited atomically
// under its read lock; the engine-wide view is the concatenation of
// per-shard snapshots, not a global snapshot. The value slice passed to fn
// is the live buffer and must not be retained or mutated after fn returns.
// Iteration stops early when fn returns false.
func (s *Sharded) Range(fn func(key uint64, value []byte) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		tok := sh.lock.RLock()
		for k, v := range sh.data {
			if !fn(k, v) {
				sh.lock.RUnlock(tok)
				return
			}
		}
		sh.lock.RUnlock(tok)
	}
}

// SnapshotShard returns an atomic deep copy of one shard's contents.
func (s *Sharded) SnapshotShard(i int) map[uint64][]byte {
	sh := &s.shards[i]
	tok := sh.lock.RLock()
	out := make(map[uint64][]byte, len(sh.data))
	for k, v := range sh.data {
		out[k] = append([]byte(nil), v...)
	}
	sh.lock.RUnlock(tok)
	sh.ops.snapshots.Add(1)
	return out
}

// Snapshot returns a deep copy of the whole engine, shard by shard. Each
// shard is copied atomically; the union is only per-shard consistent.
func (s *Sharded) Snapshot() map[uint64][]byte {
	out := make(map[uint64][]byte, s.Len())
	for i := range s.shards {
		for k, v := range s.SnapshotShard(i) {
			out[k] = v
		}
	}
	return out
}

// Stats returns the per-shard operation counters and key counts.
func (s *Sharded) Stats() ShardedStats {
	st := ShardedStats{Shards: make([]ShardStats, len(s.shards))}
	for i := range s.shards {
		sh := &s.shards[i]
		tok := sh.lock.RLock()
		keys := len(sh.data)
		sh.lock.RUnlock(tok)
		// Load each rare counter before its total: every op bumps the
		// total first (Get/Put/Delete), so rare <= total holds at every
		// instant, and loading rare first keeps the derived hit counts
		// from underflowing when snapshotting under load.
		getMisses := sh.ops.getMisses.Load()
		gets := sh.ops.gets.Load()
		putsFresh := sh.ops.putsFresh.Load()
		puts := sh.ops.puts.Load()
		delMisses := sh.ops.delMisses.Load()
		deletes := sh.ops.deletes.Load()
		st.Shards[i] = ShardStats{
			Keys:            keys,
			Gets:            gets,
			GetHits:         gets - getMisses,
			Puts:            puts,
			PutsInPlace:     puts - putsFresh,
			Deletes:         deletes,
			DeleteHits:      deletes - delMisses,
			MultiGetBatches: sh.ops.batches.Load(),
			MultiGetKeys:    sh.ops.batchKeys.Load(),
			Snapshots:       sh.ops.snapshots.Load(),
		}
	}
	return st
}
