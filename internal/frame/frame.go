// Package frame is the repository's one frame codec: a length-prefixed,
// CRC-framed byte envelope shared by the write-ahead log (internal/kvs),
// the replication stream (internal/repl), and the binary wire protocol
// (internal/wire). One codec, three transports — the WAL record on disk,
// the record on the replication wire, and a request on the client wire are
// all the same envelope, so the torn-tail and corruption semantics proven
// by the WAL's torture and fuzz suites hold everywhere bytes travel.
//
// Layout (integers little-endian, fixed width):
//
//	frame := u32 payloadLen | u32 crc32c(payload) | payload
//
// Split is the single arbiter of what a byte prefix is: a complete valid
// frame (OK), a prefix more bytes could complete (Incomplete), or bytes no
// suffix can ever repair (Corrupt — insane declared length, or a CRC
// mismatch over a fully-present payload). Consumers differ only in what
// they do with the verdict: log replay treats Incomplete and Corrupt both
// as the torn-tail stop, stream consumers reconnect only on Corrupt, and
// the wire server answers Corrupt by closing the connection.
package frame

import (
	"encoding/binary"
	"hash/crc32"
)

const (
	// HeaderSize is the fixed envelope prefix: payload length + CRC32-C.
	HeaderSize = 8
	// MaxPayload bounds a frame's declared payload length; anything larger
	// is Corrupt rather than allocated. (Transports are expected to impose
	// their own, tighter admission caps on top.)
	MaxPayload = 1 << 30
)

// Status classifies the head of a byte stream.
type Status int

const (
	// OK: a complete frame whose CRC matches.
	OK Status = iota
	// Incomplete: the data ends inside the header or payload; more bytes
	// may yet complete the frame.
	Incomplete
	// Corrupt: no suffix can turn this prefix into a valid frame.
	Corrupt
)

// crcTable is the Castagnoli table (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32-C a frame carrying payload must declare.
func Checksum(payload []byte) uint32 {
	return crc32.Checksum(payload, crcTable)
}

// Split examines the frame at the head of data: on OK, payload is the
// frame body (aliasing data) and n the framed length consumed. Incomplete
// means more bytes may complete the prefix — a torn tail on disk, or a
// stream mid-chunk. Corrupt means no suffix can: the declared length is
// insane, or the CRC fails over the fully-present payload.
func Split(data []byte) (payload []byte, n int, status Status) {
	if len(data) < HeaderSize {
		return nil, 0, Incomplete
	}
	plen := int(binary.LittleEndian.Uint32(data))
	crc := binary.LittleEndian.Uint32(data[4:])
	if plen < 0 || plen > MaxPayload {
		return nil, 0, Corrupt
	}
	if plen > len(data)-HeaderSize {
		return nil, 0, Incomplete
	}
	payload = data[HeaderSize : HeaderSize+plen]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, 0, Corrupt
	}
	return payload, HeaderSize + plen, OK
}

// Append frames payload onto dst and returns the extended slice: the
// convenience form for callers that have the payload ready.
func Append(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, Checksum(payload))
	return append(dst, payload...)
}

// Seal patches the header of a frame built in place: buf must be
// HeaderSize reserved bytes followed by the payload (the zero-copy form —
// the WAL and the wire encoder build the payload directly after a reserved
// header, then seal once, instead of building the payload and copying it
// through Append).
func Seal(buf []byte) {
	payload := buf[HeaderSize:]
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], Checksum(payload))
}

// PeekLen inspects only the length header: it reports the total framed
// length (header included) the head of data declares, or 0 when fewer than
// HeaderSize bytes are present. It validates nothing — callers use it to
// bound buffering (admission caps) before the payload has arrived, and to
// walk already-validated chunks cheaply.
func PeekLen(data []byte) int {
	if len(data) < HeaderSize {
		return 0
	}
	return HeaderSize + int(binary.LittleEndian.Uint32(data))
}
