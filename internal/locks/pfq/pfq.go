// Package pfq implements the Brandenburg–Anderson Phase-Fair Queue-based
// reader-writer lock — PF-Q in [3], called "BA" throughout the BRAVO paper.
//
// Like PF-T, active readers are tallied on a central pair of counters whose
// low bits carry writer presence (PRES) and phase identity (PHID). Unlike
// PF-T, waiting is queue-based with local spinning: writers queue on an
// MCS-style list, and readers that arrive while a writer is present enqueue
// on a reader list and spin on a flag in their own node. The departing
// writer detaches the reader list and releases every node, admitting the
// entire blocked reader phase at once.
//
// Phase-fairness: reader phases and writer phases alternate under
// contention, so a reader waits for at most one writer and a writer waits
// for at most one reader phase.
//
// Footprint (paper §5): two 32-bit counter fields plus a handful of pointer
// words — compact, with the centralized reader indicator that makes this
// lock the natural BRAVO substrate.
package pfq

import (
	"sync"
	"sync/atomic"

	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/spin"
)

const (
	rinc  = 0x100 // reader increment (arrival count lives above the flag bits)
	wbits = 0x3   // writer presence/phase mask
	pres  = 0x2   // writer present
	phid  = 0x1   // writer phase ID
)

// rnode is a waiting reader's queue element. A reader publishes its node
// with a CAS on rtail and then spins only on its own released flag.
type rnode struct {
	next     *rnode // immutable after publication
	released atomic.Uint32
}

// wnode is an MCS writer queue element.
type wnode struct {
	next    atomic.Pointer[wnode]
	granted atomic.Uint32
}

var wnodePool = sync.Pool{New: func() any { return new(wnode) }}

// Lock is a PF-Q ("BA") phase-fair reader-writer lock. The zero value is
// unlocked.
type Lock struct {
	rin   atomic.Uint32         // reader arrivals ·256 | writer bits
	rout  atomic.Uint32         // reader departures ·256
	rtail atomic.Pointer[rnode] // waiting readers (LIFO list, drained per phase)
	wtail atomic.Pointer[wnode] // MCS writer queue tail
	whead *wnode                // owner's queue node; guarded by write ownership
	phase uint32                // writer phase ticket; guarded by write ownership
}

var _ rwl.TryRWLock = (*Lock)(nil)

// RLock acquires read permission. Readers that must wait spin locally on
// their own queue node.
func (l *Lock) RLock() rwl.Token {
	w := l.rin.Add(rinc) & wbits
	if w == 0 {
		return 0
	}
	l.rwait()
	return 0
}

// rwait blocks the calling reader until the current writer phase ends.
func (l *Lock) rwait() {
	n := &rnode{}
	for {
		old := l.rtail.Load()
		n.next = old
		if l.rtail.CompareAndSwap(old, n) {
			break
		}
	}
	// Recheck after publication. If a writer is still present, its unlock
	// (which clears the bits *before* detaching the queue) is in our future,
	// so a detach-and-release of our node is guaranteed. If no writer is
	// present we may have enqueued after the final detach: admit ourselves.
	if l.rin.Load()&wbits == 0 {
		// Best-effort removal to keep the stale list short.
		l.rtail.CompareAndSwap(n, n.next)
		return
	}
	var b spin.Backoff
	for n.released.Load() == 0 {
		b.Once()
	}
}

// RUnlock releases read permission.
func (l *Lock) RUnlock(rwl.Token) {
	l.rout.Add(rinc)
}

// Lock acquires write permission via the MCS queue.
func (l *Lock) Lock() {
	n := wnodePool.Get().(*wnode)
	n.next.Store(nil)
	n.granted.Store(0)
	if prev := l.wtail.Swap(n); prev != nil {
		prev.next.Store(n)
		var b spin.Backoff
		for n.granted.Load() == 0 {
			b.Once()
		}
	}
	l.whead = n
	l.beginPhase()
}

// beginPhase announces writer presence and waits for in-flight readers.
// Caller must hold write ownership (be the queue head).
func (l *Lock) beginPhase() {
	t := l.phase
	l.phase = t + 1
	w := pres | (t & phid)
	arrivals := (l.rin.Add(w) - w) &^ wbits
	if l.rout.Load() != arrivals {
		var b spin.Backoff
		for l.rout.Load() != arrivals {
			b.Once()
		}
	}
}

// Unlock releases write permission: it ends the reader-exclusion phase,
// admits the blocked reader phase, and passes write ownership to the queued
// successor if any.
func (l *Lock) Unlock() {
	l.endPhase()
	n := l.whead
	l.whead = nil
	if n.next.Load() == nil {
		if l.wtail.CompareAndSwap(n, nil) {
			wnodePool.Put(n)
			return
		}
		var b spin.Backoff
		for n.next.Load() == nil {
			b.Once()
		}
	}
	n.next.Load().granted.Store(1)
	wnodePool.Put(n)
}

// endPhase clears the writer bits and releases every queued reader.
func (l *Lock) endPhase() {
	w := l.rin.Load() & wbits
	l.rin.Add(-w)
	// Detach strictly after clearing the bits: readers that observe the bits
	// set after enqueueing are guaranteed a future detach (see rwait).
	for r := l.rtail.Swap(nil); r != nil; r = r.next {
		r.released.Store(1)
	}
}

// WriterPresent reports whether a writer currently holds or is draining
// readers for the lock (the PRES bit is set). Diagnostic.
func (l *Lock) WriterPresent() bool {
	return l.rin.Load()&wbits != 0
}

// TryRLock attempts to acquire read permission; see pft.TryRLock for the
// bounded-wait treatment of the announcement race.
func (l *Lock) TryRLock() (rwl.Token, bool) {
	if l.rin.Load()&wbits != 0 {
		return 0, false
	}
	w := l.rin.Add(rinc) & wbits
	if w == 0 {
		return 0, true
	}
	// Raced with a writer announcement: our arrival is registered and must
	// be matched by a departure only after this phase ends. The wait is
	// bounded by one writer phase; this is the rare path, so spin globally.
	var b spin.Backoff
	for l.rin.Load()&wbits == w {
		b.Once()
	}
	l.rout.Add(rinc)
	return 0, false
}

// TryLock attempts to acquire write permission without joining the queue.
func (l *Lock) TryLock() bool {
	n := wnodePool.Get().(*wnode)
	n.next.Store(nil)
	n.granted.Store(0)
	if !l.wtail.CompareAndSwap(nil, n) {
		wnodePool.Put(n)
		return false
	}
	l.whead = n
	t := l.phase
	l.phase = t + 1
	w := pres | (t & phid)
	arrivals := (l.rin.Add(w) - w) &^ wbits
	if l.rout.Load() == arrivals {
		return true
	}
	// Readers are active: retract the announcement and hand off exactly as
	// a full unlock would (readers may have enqueued in the window).
	l.Unlock()
	return false
}
