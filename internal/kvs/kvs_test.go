package kvs

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/locks/pfq"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/xrand"
)

func baFactory() rwl.RWLock { return new(pfq.Lock) }

func bravoFactory() rwl.RWLock {
	return core.New(new(pfq.Lock), core.WithTable(core.NewTable(core.DefaultTableSize)))
}

func TestMemtableValidation(t *testing.T) {
	if _, err := NewMemtable(0, baFactory); err == nil {
		t.Fatal("zero stripes accepted")
	}
	if _, err := NewMemtable(3, baFactory); err == nil {
		t.Fatal("non-power-of-two stripes accepted")
	}
}

func TestMemtableBasicOps(t *testing.T) {
	for _, mk := range []rwl.Factory{baFactory, bravoFactory} {
		m, err := NewMemtable(1, mk)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := m.Get(1); ok {
			t.Fatal("phantom key")
		}
		m.Put(1, EncodeValue(42))
		v, ok := m.Get(1)
		if !ok {
			t.Fatal("key lost")
		}
		if d, _ := DecodeValue(v); d != 42 {
			t.Fatalf("value = %d, want 42", d)
		}
		// In-place update must not change length accounting.
		m.Put(1, EncodeValue(43))
		if m.Len() != 1 {
			t.Fatalf("Len = %d, want 1", m.Len())
		}
		v, _ = m.Get(1)
		if d, _ := DecodeValue(v); d != 43 {
			t.Fatalf("in-place update lost: %d", d)
		}
	}
}

func TestDecodeValueRejectsBadLength(t *testing.T) {
	if _, ok := DecodeValue([]byte{1, 2, 3}); ok {
		t.Fatal("short value decoded")
	}
}

func TestMemtableReadWhileWriting(t *testing.T) {
	// A miniature of the paper's readwhilewriting run: one in-place writer,
	// several readers; readers must always observe a complete 8-byte value.
	m, _ := NewMemtable(1, bravoFactory)
	const keys = 64
	for k := uint64(0); k < keys; k++ {
		m.Put(k, EncodeValue(0))
	}
	stop := make(chan struct{})
	var torn atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.NewXorShift64(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, ok := m.Get(rng.Intn(keys))
				if !ok {
					torn.Add(1)
					return
				}
				if _, ok := DecodeValue(v); !ok {
					torn.Add(1)
					return
				}
			}
		}(uint64(r + 1))
	}
	writer := xrand.NewXorShift64(99)
	for i := 0; i < 20000; i++ {
		m.Put(writer.Intn(keys), EncodeValue(uint64(i)))
	}
	close(stop)
	wg.Wait()
	if torn.Load() != 0 {
		t.Fatal("readers observed missing or torn values")
	}
	if m.Len() != keys {
		t.Fatalf("Len = %d, want %d", m.Len(), keys)
	}
}

func TestMemtableStriping(t *testing.T) {
	m, _ := NewMemtable(8, baFactory)
	for k := uint64(0); k < 1000; k++ {
		m.Put(k, EncodeValue(k))
	}
	if m.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", m.Len())
	}
	for k := uint64(0); k < 1000; k++ {
		v, ok := m.Get(k)
		if !ok {
			t.Fatalf("key %d lost", k)
		}
		if d, _ := DecodeValue(v); d != k {
			t.Fatalf("key %d holds %d", k, d)
		}
	}
}

func TestHashCacheBasicOps(t *testing.T) {
	for _, mk := range []rwl.Factory{baFactory, bravoFactory} {
		c := NewHashCache(mk)
		c.Populate(100, 32)
		if c.Len() != 100 {
			t.Fatalf("Len = %d, want 100", c.Len())
		}
		e, ok := c.Lookup(50)
		if !ok || e.Key != 50 || len(e.Data) != 32 {
			t.Fatalf("lookup(50) = %v, %v", e, ok)
		}
		if !c.Erase(50) {
			t.Fatal("erase of present key failed")
		}
		if c.Erase(50) {
			t.Fatal("erase of absent key succeeded")
		}
		if _, ok := c.Lookup(50); ok {
			t.Fatal("erased key still present")
		}
		c.Insert(&CacheEntry{Key: 1000})
		if _, ok := c.Lookup(1000); !ok {
			t.Fatal("inserted key absent")
		}
	}
}

func TestHashCacheConcurrentMix(t *testing.T) {
	// The hash_table_bench shape: one inserter, one eraser, several readers.
	c := NewHashCache(bravoFactory)
	c.Populate(256, 16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rng := xrand.NewXorShift64(7)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				c.Insert(&CacheEntry{Key: rng.Intn(1024), Data: nil})
			}
		}
	}()
	go func() {
		defer wg.Done()
		rng := xrand.NewXorShift64(8)
		for {
			select {
			case <-stop:
				return
			default:
				c.Erase(rng.Intn(1024))
			}
		}
	}()
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed uint64) {
			defer readers.Done()
			rng := xrand.NewXorShift64(seed)
			for i := 0; i < 5000; i++ {
				c.Lookup(rng.Intn(1024))
			}
		}(uint64(100 + r))
	}
	// Readers decide the duration; then stop the mutator threads.
	readers.Wait()
	close(stop)
	wg.Wait()
}
