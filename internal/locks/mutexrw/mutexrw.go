// Package mutexrw presents a plain mutex as a degenerate reader-writer lock
// in which read acquisitions are exclusive.
//
// This exists for the paper's future-work variant (§7): "implement BRAVO on
// top of an underlying mutex instead of a reader-writer lock. Slow-path
// readers must acquire the mutex, and the sole source of read-read
// concurrency is via the fast path." Note the caveat the paper raises:
// BRAVO-mutex is not maximally admissive — a reader forced through the slow
// path denies read-read parallelism — so it trades strict admission
// guarantees for an even smaller footprint.
package mutexrw

import (
	"sync"

	"github.com/bravolock/bravo/internal/rwl"
)

// Lock adapts sync.Mutex to the rwl interface; readers exclude each other.
// The zero value is unlocked.
type Lock struct {
	mu sync.Mutex
}

var _ rwl.TryRWLock = (*Lock)(nil)

// RLock acquires the mutex (readers are exclusive on the slow path).
func (l *Lock) RLock() rwl.Token {
	l.mu.Lock()
	return 0
}

// RUnlock releases the mutex.
func (l *Lock) RUnlock(rwl.Token) { l.mu.Unlock() }

// Lock acquires the mutex.
func (l *Lock) Lock() { l.mu.Lock() }

// Unlock releases the mutex.
func (l *Lock) Unlock() { l.mu.Unlock() }

// TryRLock attempts to acquire the mutex without blocking.
func (l *Lock) TryRLock() (rwl.Token, bool) { return 0, l.mu.TryLock() }

// TryLock attempts to acquire the mutex without blocking.
func (l *Lock) TryLock() bool { return l.mu.TryLock() }
