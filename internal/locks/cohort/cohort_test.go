package cohort

import (
	"sync"
	"testing"

	"github.com/bravolock/bravo/internal/lockcheck"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/topo"
)

var testTopo = topo.Topology{Sockets: 2, CoresPerSocket: 2, ThreadsPerCore: 2}

func mk() rwl.RWLock { return New(testTopo) }

func TestExclusion(t *testing.T) {
	lockcheck.Exclusion(t, mk, 4, 2, 1500)
}

func TestExclusionWriteHeavy(t *testing.T) {
	lockcheck.Exclusion(t, mk, 2, 4, 1000)
}

func TestReadersConcurrent(t *testing.T) {
	lockcheck.ReadersConcurrent(t, mk())
}

func TestWriterExcludesReaders(t *testing.T) {
	lockcheck.WriterExcludesReaders(t, mk())
}

func TestWriterPreference(t *testing.T) {
	// C-RW-WP: readers stand back while a writer is waiting.
	lockcheck.WaitingWriterBlocksReaders(t, mk())
}

func TestTokenIsNode(t *testing.T) {
	l := New(testTopo)
	tok := l.RLock()
	if int(tok) >= testTopo.Sockets {
		t.Fatalf("token %d is not a valid node", tok)
	}
	l.RUnlock(tok)
}

func TestReaderIndicatorEmptiness(t *testing.T) {
	var ri readerIndicator
	if !ri.empty() {
		t.Fatal("fresh indicator not empty")
	}
	ri.arrive()
	if ri.empty() {
		t.Fatal("indicator empty with an active reader")
	}
	ri.depart()
	if !ri.empty() {
		t.Fatal("indicator not empty after departure")
	}
}

func TestCohortMutexExclusion(t *testing.T) {
	m := NewMutex(2)
	var counter int
	var wg sync.WaitGroup
	const workers, iters = 6, 1500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock(node)
				counter++
				m.Unlock()
			}
		}(w % 2)
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d", counter, workers*iters)
	}
}

func TestCohortMutexCrossNodeProgress(t *testing.T) {
	// Handoff bounding: node 0 hammering the lock must not starve node 1.
	m := NewMutex(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Lock(0)
				m.Unlock()
			}
		}
	}()
	for i := 0; i < 50; i++ {
		m.Lock(1)
		m.Unlock()
	}
	close(stop)
	wg.Wait()
}
