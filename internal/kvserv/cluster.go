// The cluster front-end: the same endpoints as a single-primary server,
// fronting internal/cluster's hash-routed partitioned primaries. Routing
// is invisible to clients except in the tokens — a write's
// read-your-writes token is an (epoch, shard, lsn) triple (shard is
// cluster-global), returned as X-Commit-Epoch alongside the existing
// headers, and a read presents it back as ?min_lsn=&epoch=. A token from
// before a failover is adjudicated against the promotion cut: honored if
// the write survived into the promoted history, 409 if it was lost.
// Writes racing a failover answer 503 (retry; the partition is promoting).
package kvserv

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/bravolock/bravo/internal/cluster"
	"github.com/bravolock/bravo/internal/kvs"
)

// registerClusterRoutes is Handler's cluster-mode route table.
func (s *Server) registerClusterRoutes(mux *http.ServeMux) {
	mux.HandleFunc("GET /kv/{key}", s.handleClusterGet)
	mux.HandleFunc("PUT /kv/{key}", s.handleClusterPut)
	mux.HandleFunc("DELETE /kv/{key}", s.handleClusterDelete)
	mux.HandleFunc("GET /mget", s.handleClusterMGet)
	mux.HandleFunc("POST /mput", s.handleClusterMPut)
	mux.HandleFunc("POST /cas", s.handleClusterCas)
	mux.HandleFunc("POST /txn", s.handleClusterTxn)
	mux.HandleFunc("POST /flush", s.handleClusterFlush)
	mux.HandleFunc("POST /checkpoint", s.handleClusterCheckpoint)
	mux.HandleFunc("POST /failover/{partition}", s.handleClusterFailover)
	mux.HandleFunc("GET /stats", s.handleStats)
}

// clusterUnavailable maps a write error (a fenced member racing failover)
// to 503: the partition is promoting, retry shortly.
func clusterUnavailable(w http.ResponseWriter, err error) {
	code := http.StatusServiceUnavailable
	if !errors.Is(err, cluster.ErrFenced) {
		code = http.StatusInternalServerError
	}
	http.Error(w, err.Error(), code)
}

// honorClusterToken enforces a read's (?min_lsn=, ?epoch=) token, the
// cluster face of honorMinLSN. Reports whether the read may proceed.
func (s *Server) honorClusterToken(w http.ResponseWriter, r *http.Request, keys ...uint64) bool {
	if !strings.Contains(r.URL.RawQuery, "min_lsn") {
		return true
	}
	q := r.URL.Query()
	raw := q.Get("min_lsn")
	if raw == "" {
		return true
	}
	lsn, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad min_lsn %q: want a decimal LSN", raw), http.StatusBadRequest)
		return false
	}
	var epoch uint64
	if rawE := q.Get("epoch"); rawE != "" {
		if epoch, err = strconv.ParseUint(rawE, 10, 64); err != nil {
			http.Error(w, fmt.Sprintf("bad epoch %q: want a decimal epoch", rawE), http.StatusBadRequest)
			return false
		}
	}
	if terr := s.clu.CheckToken(epoch, lsn, keys); terr != nil {
		code := http.StatusBadRequest
		if terr.Conflict {
			code = http.StatusConflict
		}
		http.Error(w, terr.Msg, code)
		return false
	}
	return true
}

// writeClusterCommitHeaders stamps a write response with its token triple.
func writeClusterCommitHeaders(w http.ResponseWriter, tok cluster.ShardLSN) {
	h := w.Header()
	h.Set("X-Commit-Shard", strconv.FormatUint(uint64(tok.Shard), 10))
	h.Set("X-Commit-Lsn", strconv.FormatUint(tok.LSN, 10))
	h.Set("X-Commit-Epoch", strconv.FormatUint(tok.Epoch, 10))
}

func (s *Server) handleClusterGet(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !s.honorClusterToken(w, r, key) {
		return
	}
	bp := getBufPool.Get().(*[]byte)
	v, ok := s.clu.Get(connReader(r), key, (*bp)[:0])
	*bp = v[:0]
	if !ok {
		getBufPool.Put(bp)
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(v)
	getBufPool.Put(bp)
}

func (s *Server) handleClusterPut(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, ok := readPutBody(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	if av := q.Get("async"); av != "" {
		async, err := strconv.ParseBool(av)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad async %q: want a boolean", av), http.StatusBadRequest)
			return
		}
		if async {
			if q.Get("ttl") != "" {
				http.Error(w, "ttl and async are exclusive: the queue applies without TTL", http.StatusBadRequest)
				return
			}
			if err := s.clu.PutAsync(key, body); err != nil {
				clusterUnavailable(w, err)
				return
			}
			w.WriteHeader(http.StatusAccepted)
			return
		}
	}
	var ttl time.Duration
	if ttlStr := q.Get("ttl"); ttlStr != "" {
		if ttl, err = parseTTL(ttlStr); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	tok, err := s.clu.Put(key, body, ttl)
	if err != nil {
		clusterUnavailable(w, err)
		return
	}
	writeClusterCommitHeaders(w, tok)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleClusterDelete(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ok, tok, err := s.clu.Delete(key)
	if err != nil {
		clusterUnavailable(w, err)
		return
	}
	writeClusterCommitHeaders(w, tok)
	if !ok {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleClusterMGet(w http.ResponseWriter, r *http.Request) {
	keys, ok := parseMGetKeys(w, r)
	if !ok {
		return
	}
	if !s.honorClusterToken(w, r, keys...) {
		return
	}
	writeJSON(w, mgetResponse{Values: s.clu.MultiGet(connReader(r), keys)})
}

// clusterCommit is one token triple in /mput's cluster response.
type clusterCommit struct {
	Shard uint32 `json:"shard"`
	LSN   uint64 `json:"lsn"`
	Epoch uint64 `json:"epoch"`
}

// clusterMPutResponse is /mput's cluster reply: the applied count plus the
// token triple of every global shard the batch touched.
type clusterMPutResponse struct {
	Applied int             `json:"applied"`
	Commits []clusterCommit `json:"commits"`
}

func (s *Server) handleClusterMPut(w http.ResponseWriter, r *http.Request) {
	keys, vals, ttl, ok := readMPutBody(w, r)
	if !ok {
		return
	}
	lsns, err := s.clu.MultiPut(keys, vals, ttl)
	if err != nil {
		clusterUnavailable(w, err)
		return
	}
	resp := clusterMPutResponse{Applied: len(keys), Commits: make([]clusterCommit, len(lsns))}
	for i, t := range lsns {
		resp.Commits[i] = clusterCommit{Shard: t.Shard, LSN: t.LSN, Epoch: t.Epoch}
	}
	writeJSON(w, resp)
}

// clusterCasResponse is /cas's cluster reply: the decision plus the token
// triple.
type clusterCasResponse struct {
	Swapped bool `json:"swapped"`
}

func (s *Server) handleClusterCas(w http.ResponseWriter, r *http.Request) {
	var req casRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxMPutBodyBytes)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Old) > MaxValueBytes || len(req.New) > MaxValueBytes {
		http.Error(w, fmt.Sprintf("value exceeds %d bytes", MaxValueBytes), http.StatusRequestEntityTooLarge)
		return
	}
	swapped, tok, err := s.clu.Cas(req.Key, req.Old, req.New)
	if err != nil {
		clusterUnavailable(w, err)
		return
	}
	writeClusterCommitHeaders(w, tok)
	writeJSON(w, clusterCasResponse{Swapped: swapped})
}

// clusterTxnResponse is /txn's cluster reply: the commit decision and, on
// commit, the token triple of every declared shard.
type clusterTxnResponse struct {
	Committed bool            `json:"committed"`
	Mismatch  *uint64         `json:"mismatch,omitempty"`
	Commits   []clusterCommit `json:"commits,omitempty"`
}

// handleClusterTxn routes a conditional atomic batch to the partition
// owning its keys. Cross-partition batches answer 400 with the typed
// rejection: transactions are single-partition by design.
func (s *Server) handleClusterTxn(w http.ResponseWriter, r *http.Request) {
	req, ops, ok := readTxnBody(w, r)
	if !ok {
		return
	}
	ct := &condTxn{conds: req.If, ops: ops}
	lsns, err := s.clu.Txn(ct.keys(), ct.body)
	if err != nil {
		if errors.Is(err, cluster.ErrCrossPartitionTxn) ||
			errors.Is(err, kvs.ErrTxnNoKeys) || errors.Is(err, kvs.ErrTxnTooManyKeys) {
			http.Error(w, fmt.Sprintf("txn: %v", err), http.StatusBadRequest)
			return
		}
		clusterUnavailable(w, err)
		return
	}
	resp := clusterTxnResponse{Committed: ct.committed}
	if !ct.committed {
		resp.Mismatch = &ct.mismatch
	} else {
		resp.Commits = make([]clusterCommit, len(lsns))
		for i, t := range lsns {
			resp.Commits[i] = clusterCommit{Shard: t.Shard, LSN: t.LSN, Epoch: t.Epoch}
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleClusterFlush(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]int{"flushed": s.clu.Flush()})
}

func (s *Server) handleClusterCheckpoint(w http.ResponseWriter, r *http.Request) {
	if err := s.clu.Checkpoint(); err != nil {
		http.Error(w, fmt.Sprintf("checkpoint: %v", err), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]int{"checkpointed": s.clu.NumPartitions() * s.clu.ShardsPerPartition()})
}

// handleClusterFailover promotes the named partition's most-caught-up
// follower: the operator's kill switch and the e2e chaos suite's lever.
func (s *Server) handleClusterFailover(w http.ResponseWriter, r *http.Request) {
	pi, err := strconv.Atoi(r.PathValue("partition"))
	if err != nil || pi < 0 || pi >= s.clu.NumPartitions() {
		http.Error(w, fmt.Sprintf("bad partition %q: want 0..%d", r.PathValue("partition"), s.clu.NumPartitions()-1), http.StatusBadRequest)
		return
	}
	epoch, err := s.clu.Failover(pi)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, cluster.ErrNotReady) {
			code = http.StatusServiceUnavailable // retry once a follower bootstraps
		}
		http.Error(w, fmt.Sprintf("failover: %v", err), code)
		return
	}
	writeJSON(w, map[string]uint64{"partition": uint64(pi), "epoch": epoch})
}
