package fairrw

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMutualExclusion hammers the lock with mixed readers and writers and
// checks the invariant directly: writers are alone, readers never overlap a
// writer.
func TestMutualExclusion(t *testing.T) {
	var l Lock
	var readers, writers atomic.Int32
	var violations atomic.Int32
	const goroutines = 8
	const iters = 2000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if (g+i)%4 == 0 {
					l.Lock()
					if writers.Add(1) != 1 || readers.Load() != 0 {
						violations.Add(1)
					}
					writers.Add(-1)
					l.Unlock()
				} else {
					tok := l.RLock()
					readers.Add(1)
					if writers.Load() != 0 {
						violations.Add(1)
					}
					readers.Add(-1)
					l.RUnlock(tok)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("mutual exclusion violated %d times", n)
	}
}

// TestWriterExcludesWriter checks plain writer-writer exclusion over a
// shared counter.
func TestWriterExcludesWriter(t *testing.T) {
	var l Lock
	var counter int
	const goroutines = 4
	const iters = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

// TestFIFOOrder verifies ticket-order admission: a writer queued behind a
// held read lock blocks a reader that arrives after the writer, so the
// late reader cannot overtake (the reader-preference starvation the paper
// attributes to centralized rwlocks cannot happen here).
func TestFIFOOrder(t *testing.T) {
	var l Lock
	tok := l.RLock() // ticket 0, held

	if l.TryLock() {
		t.Fatal("TryLock succeeded while a read lock is held")
	}

	writerIn := make(chan struct{})
	go func() {
		l.Lock() // ticket 1, waits for ticket 0 to depart
		close(writerIn)
		l.Unlock()
	}()

	// Wait until the writer has taken its ticket, then check that a new
	// reader cannot jump the queue.
	for l.Queued() < 2 {
		runtime.Gosched()
	}
	if _, ok := l.TryRLock(); ok {
		t.Fatal("TryRLock overtook a queued writer")
	}

	l.RUnlock(tok)
	<-writerIn
	if _, ok := l.TryRLock(); !ok {
		t.Fatal("TryRLock failed on an idle lock")
	}
}

// TestReadersShare verifies that readers adjacent in ticket order hold the
// lock concurrently.
func TestReadersShare(t *testing.T) {
	var l Lock
	t1 := l.RLock()
	t2, ok := l.TryRLock()
	if !ok {
		t.Fatal("second reader blocked by first")
	}
	l.RUnlock(t1)
	l.RUnlock(t2)
}

// TestTryPaths exercises the non-blocking acquisitions against a held
// writer and an idle lock.
func TestTryPaths(t *testing.T) {
	var l Lock
	if !l.TryLock() {
		t.Fatal("TryLock failed on idle lock")
	}
	if _, ok := l.TryRLock(); ok {
		t.Fatal("TryRLock succeeded under a writer")
	}
	if l.TryLock() {
		t.Fatal("TryLock succeeded under a writer")
	}
	l.Unlock()
	if _, ok := l.TryRLock(); !ok {
		t.Fatal("TryRLock failed after writer departed")
	}
	l.RUnlock(0)
	if l.Queued() != 0 {
		t.Fatalf("Queued = %d after full drain, want 0", l.Queued())
	}
}

// TestWraparound pushes the tickets across the uint32 boundary; equality
// comparisons must keep admitting correctly.
func TestWraparound(t *testing.T) {
	var l Lock
	start := ^uint32(0) - 3
	l.next.Store(start)
	l.read.Store(start)
	l.write.Store(start)
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			l.Lock()
			l.Unlock()
		} else {
			tok := l.RLock()
			l.RUnlock(tok)
		}
	}
	if l.Queued() != 0 {
		t.Fatalf("Queued = %d after wraparound drain", l.Queued())
	}
}
