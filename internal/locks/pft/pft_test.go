package pft

import (
	"testing"

	"github.com/bravolock/bravo/internal/lockcheck"
	"github.com/bravolock/bravo/internal/rwl"
)

func mk() rwl.RWLock { return new(Lock) }

func TestExclusion(t *testing.T) {
	lockcheck.Exclusion(t, mk, 4, 2, 2000)
}

func TestExclusionWriteHeavy(t *testing.T) {
	lockcheck.Exclusion(t, mk, 2, 4, 1500)
}

func TestTryExclusion(t *testing.T) {
	lockcheck.TryExclusion(t, mk, 6, 1500)
}

func TestReadersConcurrent(t *testing.T) {
	lockcheck.ReadersConcurrent(t, mk())
}

func TestWriterExcludesReaders(t *testing.T) {
	lockcheck.WriterExcludesReaders(t, mk())
}

func TestPhaseFairness(t *testing.T) {
	// Phase-fair admission: a reader arriving while a writer waits must not
	// barge past that writer.
	lockcheck.WaitingWriterBlocksReaders(t, mk())
}

func TestWriterPresentDiagnostic(t *testing.T) {
	l := new(Lock)
	if l.WriterPresent() {
		t.Fatal("fresh lock reports writer present")
	}
	l.Lock()
	if !l.WriterPresent() {
		t.Fatal("held write lock not reported")
	}
	l.Unlock()
	if l.WriterPresent() {
		t.Fatal("released lock still reports writer present")
	}
}

func TestTryRLockWhileWriterHeld(t *testing.T) {
	l := new(Lock)
	l.Lock()
	if _, ok := l.TryRLock(); ok {
		t.Fatal("TryRLock succeeded while writer held")
	}
	l.Unlock()
	tok, ok := l.TryRLock()
	if !ok {
		t.Fatal("TryRLock failed on free lock")
	}
	l.RUnlock(tok)
}

func TestTryLockWhileReaderHeld(t *testing.T) {
	l := new(Lock)
	tok := l.RLock()
	if l.TryLock() {
		t.Fatal("TryLock succeeded while reader held")
	}
	l.RUnlock(tok)
	if !l.TryLock() {
		t.Fatal("TryLock failed on free lock")
	}
	l.Unlock()
}

func TestCounterWrapTolerance(t *testing.T) {
	// Equality-based waits must survive counter wrap: pre-age the counters
	// close to wrap and storm the lock.
	l := new(Lock)
	l.rin.Store(0xFFFFFE00) // high arrival count, clear flag bits
	l.rout.Store(0xFFFFFE00)
	l.win.Store(0xFFFFFFF0)
	l.wout.Store(0xFFFFFFF0)
	lockcheckStorm(t, l)
}

func lockcheckStorm(t *testing.T, l *Lock) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 500; i++ {
			l.Lock()
			l.Unlock()
		}
		close(done)
	}()
	for i := 0; i < 500; i++ {
		tok := l.RLock()
		l.RUnlock(tok)
	}
	<-done
}
