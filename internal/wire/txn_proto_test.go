package wire

// Wire coverage for the transaction opcodes: CAS and TXN round-trips
// (including the presence-tagged distinction between an absent value and
// a present empty one) and decoder strictness over the new layouts —
// non-canonical presence bytes, non-positive TTLs, unknown op kinds, and
// adversarial counts must all be rejected without panicking.

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"time"
)

func TestCasTxnRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpCas, ID: 1, Key: 7, Old: []byte("a"), New: []byte("b")},
		{Op: OpCas, ID: 2, Key: 7, New: []byte("b")},             // only-if-absent
		{Op: OpCas, ID: 3, Key: 7, Old: []byte("a")},             // delete-on-match
		{Op: OpCas, ID: 4, Key: 7, Old: []byte{}, New: []byte{}}, // empty, not absent
		{Op: OpTxn, ID: 5,
			Conds:  []TxnCond{{Key: 1, Value: []byte("x")}, {Key: 2}},
			TxnOps: []TxnOp{{Key: 3, Value: []byte("v")}, {Key: 4, Del: true}, {Key: 5, Value: []byte("w"), TTL: time.Minute}}},
		{Op: OpTxn, ID: 6, TxnOps: []TxnOp{{Key: 1, Value: []byte{}}}},
	}
	for _, want := range cases {
		f := AppendRequest(nil, &want)
		got, ok := DecodeRequest(splitOne(t, f))
		if !ok {
			t.Fatalf("%v id=%d: decode failed", want.Op, want.ID)
		}
		norm := func(r *Request) {
			if len(r.Conds) == 0 {
				r.Conds = nil
			}
			if len(r.TxnOps) == 0 {
				r.TxnOps = nil
			}
		}
		norm(&want)
		norm(&got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
		}
	}

	// nil and []byte{} are different values on the wire, in both directions.
	fAbsent := AppendRequest(nil, &Request{Op: OpCas, Key: 1})
	fEmpty := AppendRequest(nil, &Request{Op: OpCas, Key: 1, Old: []byte{}, New: []byte{}})
	if bytes.Equal(fAbsent, fEmpty) {
		t.Fatal("absent and empty optional values share an encoding")
	}
	gotA, _ := DecodeRequest(splitOne(t, fAbsent))
	gotE, _ := DecodeRequest(splitOne(t, fEmpty))
	if gotA.Old != nil || gotA.New != nil {
		t.Fatalf("absent decoded non-nil: %+v", gotA)
	}
	if gotE.Old == nil || gotE.New == nil {
		t.Fatalf("empty decoded nil: %+v", gotE)
	}
}

func TestCasTxnResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{Op: OpCas, ID: 1, Swapped: true, LSNs: []ShardLSN{{Shard: 2, LSN: 9}}},
		{Op: OpCas, ID: 2},
		{Op: OpCas, ID: 3, Swapped: true, LSNs: []ShardLSN{{Shard: 2, LSN: 9, Epoch: 4}}},
		{Op: OpTxn, ID: 4, Committed: true, LSNs: []ShardLSN{{Shard: 0, LSN: 5}, {Shard: 3, LSN: 6}}},
		{Op: OpTxn, ID: 5, Mismatch: 42},
		{Op: OpTxn, ID: 6, Status: StatusBadRequest, Msg: "txn: too many keys"},
	}
	for _, want := range cases {
		f := AppendResponse(nil, &want)
		got, ok := DecodeResponse(splitOne(t, f))
		if !ok {
			t.Fatalf("%v id=%d: decode failed", want.Op, want.ID)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
		}
	}
}

// TestCasTxnDecodeStrict mutates valid CAS/TXN payloads field by field:
// the decoder must reject every non-canonical byte without panicking.
func TestCasTxnDecodeStrict(t *testing.T) {
	// Request header is 11 bytes with no flags; the CAS body is key(8) then
	// the two presence-tagged values, so Old's presence byte sits at 19.
	cas := splitOne(t, AppendRequest(nil, &Request{Op: OpCas, Key: 1, Old: []byte("x"), New: []byte("y")}))
	if _, ok := DecodeRequest(cas); !ok {
		t.Fatal("control: valid CAS rejected")
	}
	for cut := 0; cut < len(cas); cut++ {
		if _, ok := DecodeRequest(cas[:cut]); ok {
			t.Fatalf("CAS truncation to %d bytes accepted", cut)
		}
	}
	if _, ok := DecodeRequest(append(append([]byte(nil), cas...), 0)); ok {
		t.Fatal("CAS trailing byte accepted")
	}
	bad := append([]byte(nil), cas...)
	bad[19] = 2 // presence byte must be 0 or 1
	if _, ok := DecodeRequest(bad); ok {
		t.Fatal("CAS presence byte 2 accepted")
	}

	// TXN body: ncond(4) at 11, then nops(4), then per-op kind(1)+key(8).
	txn := splitOne(t, AppendRequest(nil, &Request{Op: OpTxn,
		Conds:  []TxnCond{{Key: 1, Value: []byte("c")}},
		TxnOps: []TxnOp{{Key: 2, Value: []byte("v"), TTL: time.Second}}}))
	if _, ok := DecodeRequest(txn); !ok {
		t.Fatal("control: valid TXN rejected")
	}
	for cut := 0; cut < len(txn); cut++ {
		if _, ok := DecodeRequest(txn[:cut]); ok {
			t.Fatalf("TXN truncation to %d bytes accepted", cut)
		}
	}
	condEnd := 11 + 4 + 8 + 1 + 4 + 1 // ncond + key + presence + vlen + "c"
	kindOff := condEnd + 4            // past nops
	ttlOff := kindOff + 9             // past kind + key
	if txn[kindOff] != txnOpPutTTL {
		t.Fatalf("layout drifted: byte %d = %d, want the putttl kind", kindOff, txn[kindOff])
	}
	mut := func(f func(p []byte)) []byte {
		p := append([]byte(nil), txn...)
		f(p)
		return p
	}
	if _, ok := DecodeRequest(mut(func(p []byte) { p[kindOff] = 0 })); ok {
		t.Fatal("TXN op kind 0 accepted")
	}
	if _, ok := DecodeRequest(mut(func(p []byte) { p[kindOff] = 4 })); ok {
		t.Fatal("TXN unknown op kind accepted")
	}
	if _, ok := DecodeRequest(mut(func(p []byte) {
		binary.LittleEndian.PutUint64(p[ttlOff:], 0)
	})); ok {
		t.Fatal("TXN zero TTL accepted")
	}
	if _, ok := DecodeRequest(mut(func(p []byte) {
		binary.LittleEndian.PutUint64(p[ttlOff:], 1<<63) // int64-negative
	})); ok {
		t.Fatal("TXN overflowed-negative TTL accepted")
	}
	// Adversarial counts over a short payload: rejected before allocation.
	if _, ok := DecodeRequest(mut(func(p []byte) {
		binary.LittleEndian.PutUint32(p[11:], 0x7FFFFFFF)
	})); ok {
		t.Fatal("TXN adversarial cond count accepted")
	}
	if _, ok := DecodeRequest(mut(func(p []byte) {
		binary.LittleEndian.PutUint32(p[condEnd:], 0x7FFFFFFF)
	})); ok {
		t.Fatal("TXN adversarial op count accepted")
	}

	// Responses: the decision byte must be 0 or 1 too. Header is 12 bytes.
	casResp := splitOne(t, AppendResponse(nil, &Response{Op: OpCas, Swapped: true}))
	badR := append([]byte(nil), casResp...)
	badR[12] = 2
	if _, ok := DecodeResponse(badR); ok {
		t.Fatal("CAS response decision byte 2 accepted")
	}
	txnResp := splitOne(t, AppendResponse(nil, &Response{Op: OpTxn, Mismatch: 9}))
	if _, ok := DecodeResponse(txnResp); !ok {
		t.Fatal("control: valid TXN response rejected")
	}
	for cut := 0; cut < len(txnResp); cut++ {
		if _, ok := DecodeResponse(txnResp[:cut]); ok {
			t.Fatalf("TXN response truncation to %d bytes accepted", cut)
		}
	}
	badR = append(badR[:0], txnResp...)
	badR[12] = 3
	if _, ok := DecodeResponse(badR); ok {
		t.Fatal("TXN response decision byte 3 accepted")
	}
}
