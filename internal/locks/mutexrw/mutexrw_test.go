package mutexrw

import (
	"testing"

	"github.com/bravolock/bravo/internal/lockcheck"
	"github.com/bravolock/bravo/internal/rwl"
)

func mk() rwl.RWLock { return new(Lock) }

func TestExclusion(t *testing.T) {
	lockcheck.Exclusion(t, mk, 4, 2, 2000)
}

func TestTryExclusion(t *testing.T) {
	lockcheck.TryExclusion(t, mk, 6, 1500)
}

func TestWriterExcludesReaders(t *testing.T) {
	lockcheck.WriterExcludesReaders(t, mk())
}

func TestReadersExcludeEachOther(t *testing.T) {
	// The degenerate adapter denies read-read concurrency on the slow path
	// (the paper's caveat for BRAVO-mutex, §7).
	l := new(Lock)
	tok := l.RLock()
	if _, ok := l.TryRLock(); ok {
		t.Fatal("second reader admitted by mutex adapter")
	}
	l.RUnlock(tok)
}
