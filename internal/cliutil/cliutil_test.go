package cliutil

import (
	"reflect"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := ParseInts("1, 2,5,10")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 5, 10}) {
		t.Fatalf("got %v", got)
	}
}

func TestParseIntsErrors(t *testing.T) {
	for _, bad := range []string{"", "  ", "1,x", "1,,2"} {
		if _, err := ParseInts(bad); err == nil {
			t.Errorf("ParseInts(%q) accepted", bad)
		}
	}
}

func TestParseNames(t *testing.T) {
	got := ParseNames(" ba, bravo-ba ,,per-cpu ")
	want := []string{"ba", "bravo-ba", "per-cpu"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if ParseNames("") != nil {
		t.Fatal("empty input should yield nil")
	}
}
