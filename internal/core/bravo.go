package core

import (
	"sync"
	"unsafe"

	"sync/atomic"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/self"
	"github.com/bravolock/bravo/internal/xrand"
)

// fastBit tags tokens of fast-path read acquisitions; the slot index lives
// in the low bits. Substrate locks confine their tokens to the low 32 bits
// (see rwl), so the encodings cannot collide.
const fastBit rwl.Token = 1 << 63

// Lock is a BRAVO-transformed reader-writer lock: BRAVO-A where A is the
// underlying lock supplied to New. Per Listing 1, it extends A with an RBias
// flag and (inside the default policy) an InhibitUntil timestamp. Reads have
// dual paths: a fast path that publishes the reader in the visible readers
// table without touching A, and the traditional slow path through A. Writers
// always pass through A, revoking reader bias when it is set.
//
// BRAVO is transparent to A's admission policy: if A is reader-preference,
// writer-preference, phase-fair or neutral, BRAVO-A is too.
type Lock struct {
	rbias atomic.Uint32
	under rwl.RWLock
	table *Table
	// policy arbitrates bias (re-)enabling; the default is the paper's
	// InhibitPolicy with N = 9.
	policy Policy
	stats  *Stats
	// revMu, when non-nil, is the future-work variant (§7) that lets
	// arriving readers divert through the slow path while a writer is mid
	// revocation: writers serialize on revMu and revoke *before* acquiring
	// the underlying write lock.
	revMu *sync.Mutex
	// probe2 enables the secondary-hash fast-path probe (§7).
	probe2 bool
	// randomized selects non-deterministic slot indices (§7: "using time or
	// random numbers to form indices").
	randomized bool
}

var (
	_ rwl.RWLock    = (*Lock)(nil)
	_ rwl.TryRWLock = (*Lock)(nil)
)

// Option configures a Lock.
type Option func(*Lock)

// WithTable directs the lock at a specific visible readers table — e.g. a
// private per-lock table (the idealized interference-immune variant of
// Figure 1) or a BRAVO-2D sectored table.
func WithTable(t *Table) Option { return func(l *Lock) { l.table = t } }

// WithPolicy installs a bias-enabling policy.
func WithPolicy(p Policy) Option { return func(l *Lock) { l.policy = p } }

// WithStats attaches an event counter set. Counting adds shared-memory
// traffic; leave nil for performance runs.
func WithStats(s *Stats) Option { return func(l *Lock) { l.stats = s } }

// WithInhibitN sets the paper's N multiplier on the default policy
// (worst-case writer slow-down ≈ 1/(N+1)).
func WithInhibitN(n int64) Option {
	return func(l *Lock) { l.policy = NewInhibitPolicy(n) }
}

// WithSecondProbe enables a secondary table probe before a colliding reader
// falls back to the slow path.
func WithSecondProbe() Option { return func(l *Lock) { l.probe2 = true } }

// WithRandomizedIndex selects random rather than deterministic slot indices.
func WithRandomizedIndex() Option { return func(l *Lock) { l.randomized = true } }

// WithRevocationMutex adds the per-lock writer mutex that allows readers to
// make progress (via the slow path) while a writer performs revocation,
// reducing read-latency variance (§7).
func WithRevocationMutex() Option {
	return func(l *Lock) { l.revMu = new(sync.Mutex) }
}

// New wraps an existing reader-writer lock with the BRAVO transformation.
func New(under rwl.RWLock, opts ...Option) *Lock {
	l := &Lock{under: under, table: shared}
	for _, o := range opts {
		o(l)
	}
	if l.policy == nil {
		l.policy = NewInhibitPolicy(DefaultInhibitN)
	}
	return l
}

// Underlying returns the wrapped lock.
func (l *Lock) Underlying() rwl.RWLock { return l.under }

// TableInUse returns the visible readers table this lock publishes into.
func (l *Lock) TableInUse() *Table { return l.table }

// Biased reports whether reader bias is currently enabled.
func (l *Lock) Biased() bool { return l.rbias.Load() == 1 }

// WriterPresent reports whether the underlying lock exposes a visible
// writer. Diagnostic; present only when the substrate provides it.
func (l *Lock) WriterPresent() bool {
	if wp, ok := l.under.(interface{ WriterPresent() bool }); ok {
		return wp.WriterPresent()
	}
	return false
}

// id returns the lock identity installed in table slots.
func (l *Lock) id() uintptr { return uintptr(unsafe.Pointer(l)) }

// RLock acquires read permission (Listing 1, Reader). The returned token
// must be passed to RUnlock.
func (l *Lock) RLock() rwl.Token {
	return l.RLockWithID(self.ID())
}

// RLockWithID is RLock with an explicit thread identity, for callers that
// pin identities (benchmark workers, pooled executors).
func (l *Lock) RLockWithID(selfID uint64) rwl.Token {
	if l.rbias.Load() == 1 {
		if t, ok := l.fastTry(selfID); ok {
			return t
		}
	} else if l.stats != nil {
		l.stats.SlowDisabled.Add(1)
	}
	// Slow path: acquire read permission on the underlying lock.
	ut := l.under.RLock()
	// Safety: bias may only be set while holding read permission on the
	// underlying lock, which excludes writers (Listing 1 lines 25–26).
	if l.rbias.Load() == 0 && l.policy.ShouldEnable() {
		l.rbias.Store(1)
	}
	return ut
}

// fastTry attempts the constant-time fast-path prefix (Listing 1 lines
// 11–23). On success the returned token carries the slot index.
func (l *Lock) fastTry(selfID uint64) (rwl.Token, bool) {
	id := l.id()
	if l.randomized {
		selfID = xrand.NewSplitMix64(uint64(clock.Nanos()) ^ selfID).Next()
	}
	idx := l.table.index(id, selfID)
	if l.table.tryPublish(idx, id) {
		// Store-load fence required on TSO — subsumed by the CAS, and in Go
		// by the sequentially consistent atomics.
		if l.rbias.Load() == 1 { // recheck
			if l.stats != nil {
				l.stats.FastRead.Add(1)
			}
			return fastBit | rwl.Token(idx), true
		}
		// Raced: a writer revoked bias after our publication; undo.
		l.table.Clear(idx)
		if l.stats != nil {
			l.stats.SlowRaced.Add(1)
		}
		return 0, false
	}
	if l.probe2 {
		idx = l.table.index2(id, selfID)
		if l.table.tryPublish(idx, id) {
			if l.rbias.Load() == 1 {
				if l.stats != nil {
					l.stats.FastRead.Add(1)
				}
				return fastBit | rwl.Token(idx), true
			}
			l.table.Clear(idx)
			if l.stats != nil {
				l.stats.SlowRaced.Add(1)
			}
			return 0, false
		}
	}
	if l.stats != nil {
		l.stats.SlowCollision.Add(1)
	}
	return 0, false
}

// RUnlock releases read permission acquired by the RLock call that returned
// t: fast-path readers clear their slot, slow-path readers release the
// underlying lock (Listing 1 lines 29–33).
func (l *Lock) RUnlock(t rwl.Token) {
	if t&fastBit != 0 {
		l.table.Clear(uint32(t))
		return
	}
	l.under.RUnlock(t)
}

// Lock acquires write permission (Listing 1, Writer): pass through the
// underlying lock, then revoke reader bias if it is set.
func (l *Lock) Lock() {
	if l.revMu != nil {
		// Future-work variant: resolve write-write conflicts first and
		// revoke before taking the underlying lock, so arriving readers can
		// still enter via the slow path during the revocation scan.
		l.revMu.Lock()
		if l.rbias.Load() == 1 {
			l.revoke()
		}
	}
	l.under.Lock()
	if l.rbias.Load() == 1 {
		// In the default mode this is the Listing 1 revocation; in revMu
		// mode it catches the rare slow reader that re-enabled bias between
		// our pre-revocation and the write acquisition.
		l.revoke()
	} else if l.stats != nil {
		l.stats.WriteNormal.Add(1)
	}
}

// revoke disables reader bias and waits for all fast-path readers of this
// lock to depart (Listing 1 lines 38–49).
func (l *Lock) revoke() {
	l.rbias.Store(0)
	// Store-load fence required on TSO — Go atomics are seq-cst.
	start := clock.Nanos()
	scanned, conflicts := l.table.WaitEmpty(l.id())
	now := clock.Nanos()
	// Primum non-nocere: limit and bound the slow-down arising from
	// revocation overheads.
	l.policy.RevocationDone(start, now)
	if l.stats != nil {
		l.stats.WriteRevoke.Add(1)
		l.stats.RevokeNanos.Add(now - start)
		l.stats.RevokeScanned.Add(uint64(scanned))
		l.stats.RevokeWaits.Add(uint64(conflicts))
	}
}

// Unlock releases write permission.
func (l *Lock) Unlock() {
	l.under.Unlock()
	if l.revMu != nil {
		l.revMu.Unlock()
	}
}

// TryRLock attempts the fast path and then, if the underlying lock supports
// try-acquisition, the slow path (§3's try-lock treatment). On underlying
// success the policy may enable bias, as the paper permits.
func (l *Lock) TryRLock() (rwl.Token, bool) {
	if l.rbias.Load() == 1 {
		if t, ok := l.fastTry(self.ID()); ok {
			return t, true
		}
	}
	tu, ok := l.underTry()
	if !ok {
		return 0, false
	}
	if l.rbias.Load() == 0 && l.policy.ShouldEnable() {
		l.rbias.Store(1)
	}
	return tu, true
}

func (l *Lock) underTry() (rwl.Token, bool) {
	t, ok := l.under.(rwl.TryRWLock)
	if !ok {
		return 0, false
	}
	return t.TryRLock()
}

// TryLock attempts to acquire write permission. If the underlying try-lock
// succeeds and bias is set, revocation is performed exactly as in Lock.
func (l *Lock) TryLock() bool {
	if l.revMu != nil && !l.revMu.TryLock() {
		return false
	}
	t, ok := l.under.(rwl.TryRWLock)
	if !ok || !t.TryLock() {
		if l.revMu != nil {
			l.revMu.Unlock()
		}
		return false
	}
	if l.rbias.Load() == 1 {
		l.revoke()
	} else if l.stats != nil {
		l.stats.WriteNormal.Add(1)
	}
	return true
}
