package kvs

// Native fuzz harnesses for the durability decoders: whatever bytes a
// damaged disk hands them, they must reject cleanly — never panic, never
// allocate absurdly, never apply half a record. CI runs the seed corpus on
// every test run and a short -fuzz exploration per target.

import (
	"bytes"
	"encoding/binary"
	"os"
	"testing"

	"github.com/bravolock/bravo/internal/frame"
)

// buildRecord frames a payload the way commit does, so seeds include
// structurally-valid records.
func buildRecord(payload []byte) []byte {
	rec := make([]byte, walHeaderSize, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], frame.Checksum(payload))
	return append(rec, payload...)
}

// validPayload encodes a three-entry batch via the real writer path.
func validPayload() []byte {
	w := &shardWAL{}
	w.begin(3)
	w.addPut(7, []byte("value"), 0)
	w.addPut(8, []byte("ttl"), 12345)
	w.addDelete(9)
	payload := append([]byte(nil), w.buf[walHeaderSize:]...)
	return payload
}

// legacyPayload encodes a v1 (pre-LSN) record payload by hand: the decoder
// must still accept the old layout.
func legacyPayload() []byte {
	p := []byte{walVersion1}
	p = binary.LittleEndian.AppendUint32(p, 1)
	p = append(p, walOpPut)
	p = binary.LittleEndian.AppendUint64(p, 42)
	p = binary.LittleEndian.AppendUint32(p, 2)
	return append(p, 'v', '1')
}

func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(buildRecord(validPayload()))
	f.Add(buildRecord(validPayload())[:5])                                  // torn header
	f.Add(append(buildRecord(validPayload()), 0xFF))                        // trailing garbage
	f.Add(buildRecord(append([]byte{walVersion}, make([]byte, 12)...)))     // empty batch at LSN 0
	f.Add(buildRecord([]byte{walVersion1, 1, 0, 0, 0}))                     // truncated legacy batch
	f.Add(buildRecord(legacyPayload()))                                     // valid legacy record
	f.Add(buildRecord(append([]byte{99}, make([]byte, 12)...)))             // unknown version
	f.Add(buildRecord(append([]byte{walVersionSnap}, make([]byte, 12)...))) // snapshot record: wire-only
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})                       // insane length
	f.Add(bytes.Repeat([]byte{0}, 64))                                      // zero-length records... of garbage CRC
	f.Fuzz(func(t *testing.T, data []byte) {
		applied := 0
		valid, last := walReplay(data, 0, func(lsn uint64, entries []walEntry) {
			for _, e := range entries {
				// Decoded entries must be internally sane: ops in range,
				// values inside the input buffer.
				switch e.op {
				case walOpPut, walOpPutTTL, walOpDelete:
				default:
					t.Fatalf("decoder surfaced op %d", e.op)
				}
				if len(e.val) > len(data) {
					t.Fatalf("value of %d bytes from %d input bytes", len(e.val), len(data))
				}
			}
			applied++
		})
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid offset %d outside [0, %d]", valid, len(data))
		}
		// Replay must be deterministic and idempotent on the valid prefix.
		applied2 := 0
		valid2, last2 := walReplay(data[:valid], 0, func(uint64, []walEntry) { applied2++ })
		if valid2 != valid || applied2 != applied || last2 != last {
			t.Fatalf("replay of the valid prefix gave offset %d records %d lsn %d, want %d/%d/%d",
				valid2, applied2, last2, valid, applied, last)
		}
	})
}

func FuzzSnapshotLoad(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("BRVOSNP1"))
	// A real snapshot file, via the real writer.
	dir := f.TempDir()
	s, err := OpenSharded(dir, 1, mkStd, SyncNone)
	if err != nil {
		f.Fatal(err)
	}
	s.Put(1, []byte("one"))
	s.PutTTL(2, []byte("two"), 1<<40)
	if err := s.Checkpoint(); err != nil {
		f.Fatal(err)
	}
	snap, err := os.ReadFile(s.snapPath(0))
	if err != nil {
		f.Fatal(err)
	}
	s.Close()
	f.Add(snap)
	f.Add(snap[:len(snap)-2]) // torn trailer
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, _, err := loadSnapshot(data)
		if err != nil {
			return
		}
		for _, e := range entries {
			if e.op != walOpPut && e.op != walOpPutTTL {
				t.Fatalf("snapshot surfaced op %d", e.op)
			}
			if len(e.val) > len(data) {
				t.Fatalf("value of %d bytes from %d input bytes", len(e.val), len(data))
			}
		}
	})
}
