package pfq

import (
	"sync"
	"testing"

	"github.com/bravolock/bravo/internal/lockcheck"
	"github.com/bravolock/bravo/internal/rwl"
)

func mk() rwl.RWLock { return new(Lock) }

func TestExclusion(t *testing.T) {
	lockcheck.Exclusion(t, mk, 4, 2, 2000)
}

func TestExclusionWriteHeavy(t *testing.T) {
	lockcheck.Exclusion(t, mk, 2, 4, 1500)
}

func TestExclusionManyReaders(t *testing.T) {
	lockcheck.Exclusion(t, mk, 12, 1, 1000)
}

func TestTryExclusion(t *testing.T) {
	lockcheck.TryExclusion(t, mk, 6, 1500)
}

func TestReadersConcurrent(t *testing.T) {
	lockcheck.ReadersConcurrent(t, mk())
}

func TestWriterExcludesReaders(t *testing.T) {
	lockcheck.WriterExcludesReaders(t, mk())
}

func TestPhaseFairness(t *testing.T) {
	lockcheck.WaitingWriterBlocksReaders(t, mk())
}

func TestWriterPresentDiagnostic(t *testing.T) {
	l := new(Lock)
	l.Lock()
	if !l.WriterPresent() {
		t.Fatal("held write lock not reported")
	}
	l.Unlock()
	if l.WriterPresent() {
		t.Fatal("released lock still reports writer present")
	}
}

func TestBlockedReadersReleasedAsAPhase(t *testing.T) {
	// Several readers blocked behind one writer must all be admitted when
	// that writer departs (the detach-and-release path).
	l := new(Lock)
	r0 := l.RLock()
	wIn := make(chan struct{})
	wOut := make(chan struct{})
	go func() {
		l.Lock()
		close(wIn)
		<-wOut
		l.Unlock()
	}()
	lockcheck.Eventually(t, l.WriterPresent, "writer never announced")
	const blocked = 8
	var wg sync.WaitGroup
	admitted := make(chan int, blocked)
	for i := 0; i < blocked; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tok := l.RLock()
			admitted <- i
			l.RUnlock(tok)
		}(i)
	}
	l.RUnlock(r0)
	<-wIn
	close(wOut)
	wg.Wait()
	if len(admitted) != blocked {
		t.Fatalf("only %d/%d blocked readers admitted", len(admitted), blocked)
	}
}

func TestWriteHandoffChain(t *testing.T) {
	// Writers queued behind each other must all complete (MCS handoff).
	l := new(Lock)
	var wg sync.WaitGroup
	const writers = 10
	counter := 0
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != writers*300 {
		t.Fatalf("counter = %d, want %d", counter, writers*300)
	}
}

func TestTryLockContention(t *testing.T) {
	l := new(Lock)
	tok := l.RLock()
	if l.TryLock() {
		t.Fatal("TryLock succeeded while reader active")
	}
	l.RUnlock(tok)
	if !l.TryLock() {
		t.Fatal("TryLock failed on free lock")
	}
	// A second TryLock must fail while held.
	if l.TryLock() {
		t.Fatal("TryLock succeeded while writer held")
	}
	l.Unlock()
	// And the lock must be fully functional afterwards.
	tok = l.RLock()
	l.RUnlock(tok)
}
