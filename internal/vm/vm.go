// Package vm simulates the slice of the Linux memory-management subsystem
// that the paper's kernel experiments stress: a per-process address space
// whose virtual memory areas (VMAs) are protected by mmap_sem — "an instance
// of rwsem that protects the access to VMA" (§6.2).
//
// Page faults acquire mmap_sem for read, look up the faulting VMA, and
// install a PTE; mmap and munmap acquire mmap_sem for write and edit the VMA
// set [8, 11]. This reproduces exactly the lock-acquisition pattern of the
// will-it-scale page_fault and mmap microbenchmarks and of Metis: read-heavy
// under faults, write-heavy under mapping churn. No real memory is mapped —
// the "page tables" are bookkeeping arrays — but every operation takes the
// same lock in the same mode for the same span of work as its kernel
// counterpart.
package vm

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/bravolock/bravo/internal/rwsem"
)

// PageSize is the simulated page size (4KiB, matching the kernel).
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Errors returned by address-space operations.
var (
	ErrBadAddress = errors.New("vm: address not mapped")
	ErrBadLength  = errors.New("vm: length must be a positive multiple of the page size")
	ErrOverlap    = errors.New("vm: mapping overlaps an existing VMA")
)

// MMapSem is the semaphore guarding an address space. Both the stock rwsem
// and the BRAVO-augmented rwsem satisfy it via the adapters below, which is
// how the benchmarks switch between the "stock" and "BRAVO" kernels.
type MMapSem interface {
	DownRead(t *rwsem.Task)
	UpRead(t *rwsem.Task)
	DownWrite(t *rwsem.Task)
	UpWrite(t *rwsem.Task)
}

// StockSem adapts the plain rwsem to MMapSem.
type StockSem struct{ S *rwsem.RWSem }

// DownRead acquires mmap_sem for read.
func (s StockSem) DownRead(t *rwsem.Task) { s.S.DownRead(t.ID) }

// UpRead releases a read acquisition.
func (s StockSem) UpRead(t *rwsem.Task) { s.S.UpRead(t.ID) }

// DownWrite acquires mmap_sem for write.
func (s StockSem) DownWrite(t *rwsem.Task) { s.S.DownWrite(t.ID) }

// UpWrite releases a write acquisition.
func (s StockSem) UpWrite(t *rwsem.Task) { s.S.UpWrite(t.ID) }

// BravoSem adapts the BRAVO-augmented rwsem to MMapSem.
type BravoSem struct{ S *rwsem.Bravo }

// DownRead acquires mmap_sem for read (fast path eligible).
func (s BravoSem) DownRead(t *rwsem.Task) { s.S.DownRead(t) }

// UpRead releases a read acquisition.
func (s BravoSem) UpRead(t *rwsem.Task) { s.S.UpRead(t) }

// DownWrite acquires mmap_sem for write (revoking bias if set).
func (s BravoSem) DownWrite(t *rwsem.Task) { s.S.DownWrite(t) }

// UpWrite releases a write acquisition.
func (s BravoSem) UpWrite(t *rwsem.Task) { s.S.UpWrite(t) }

// VMA is one virtual memory area: [Start, End), page-aligned, with a flat
// "page table" of present bits.
type VMA struct {
	Start, End uint64
	// Shared marks a file-backed shared mapping; faults additionally bump
	// the backing object's reference word (extra write sharing, as in
	// will-it-scale's page_fault2 flavour).
	Shared bool
	pages  []atomic.Uint32
	// backing is the shared-file reference word for Shared mappings.
	backing *atomic.Uint64
}

// Pages returns the number of pages spanned by the VMA.
func (v *VMA) Pages() int { return int((v.End - v.Start) >> PageShift) }

// Populated counts present pages.
func (v *VMA) Populated() int {
	n := 0
	for i := range v.pages {
		if v.pages[i].Load() != 0 {
			n++
		}
	}
	return n
}

// AddressSpace models a process's mm_struct.
type AddressSpace struct {
	sem MMapSem
	// vmas is sorted by Start; guarded by sem.
	vmas []*VMA
	// brk is the bump pointer for fresh mappings; guarded by sem.
	brk uint64
	// sharedFile is the backing object for Shared mappings.
	sharedFile atomic.Uint64

	// Counters (lockstat-flavoured, cheap atomics).
	faults      atomic.Uint64
	mmaps       atomic.Uint64
	munmaps     atomic.Uint64
	faultErrors atomic.Uint64
}

// NewAddressSpace returns an empty address space guarded by sem.
func NewAddressSpace(sem MMapSem) *AddressSpace {
	return &AddressSpace{sem: sem, brk: 1 << 20}
}

// Stats reports operation counts: faults, mmaps, munmaps.
func (as *AddressSpace) Stats() (faults, mmaps, munmaps uint64) {
	return as.faults.Load(), as.mmaps.Load(), as.munmaps.Load()
}

// Mmap creates a length-byte mapping on behalf of t and returns its base
// address. Takes mmap_sem for write.
func (as *AddressSpace) Mmap(t *rwsem.Task, length uint64, shared bool) (uint64, error) {
	if length == 0 || length%PageSize != 0 {
		return 0, ErrBadLength
	}
	as.sem.DownWrite(t)
	addr := as.brk
	as.brk += length + PageSize // guard page between mappings
	v := &VMA{
		Start:  addr,
		End:    addr + length,
		Shared: shared,
		pages:  make([]atomic.Uint32, length>>PageShift),
	}
	if shared {
		v.backing = &as.sharedFile
	}
	// Insert keeping the slice sorted; the bump allocator appends, but
	// re-use after munmap keeps generality.
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].Start >= v.Start })
	as.vmas = append(as.vmas, nil)
	copy(as.vmas[i+1:], as.vmas[i:])
	as.vmas[i] = v
	as.sem.UpWrite(t)
	as.mmaps.Add(1)
	return addr, nil
}

// Munmap removes the mapping based at addr. Takes mmap_sem for write.
func (as *AddressSpace) Munmap(t *rwsem.Task, addr uint64) error {
	as.sem.DownWrite(t)
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].Start >= addr })
	if i == len(as.vmas) || as.vmas[i].Start != addr {
		as.sem.UpWrite(t)
		return fmt.Errorf("munmap %#x: %w", addr, ErrBadAddress)
	}
	as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
	as.sem.UpWrite(t)
	as.munmaps.Add(1)
	return nil
}

// PageFault handles a write fault at addr: it takes mmap_sem for read, walks
// the VMA set, and installs the PTE. Returns whether the fault populated a
// fresh page.
func (as *AddressSpace) PageFault(t *rwsem.Task, addr uint64) (bool, error) {
	as.sem.DownRead(t)
	v := as.findLocked(addr)
	if v == nil {
		as.sem.UpRead(t)
		as.faultErrors.Add(1)
		return false, fmt.Errorf("fault %#x: %w", addr, ErrBadAddress)
	}
	idx := (addr - v.Start) >> PageShift
	fresh := v.pages[idx].CompareAndSwap(0, 1)
	if fresh && v.Shared {
		v.backing.Add(1)
	}
	as.sem.UpRead(t)
	as.faults.Add(1)
	return fresh, nil
}

// Touch writes one word into every page of [addr, addr+length), faulting
// each page exactly as will-it-scale's page_fault workload does.
func (as *AddressSpace) Touch(t *rwsem.Task, addr, length uint64) error {
	for off := uint64(0); off < length; off += PageSize {
		if _, err := as.PageFault(t, addr+off); err != nil {
			return err
		}
	}
	return nil
}

// findLocked locates the VMA containing addr; caller holds mmap_sem.
func (as *AddressSpace) findLocked(addr uint64) *VMA {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > addr })
	if i == len(as.vmas) || as.vmas[i].Start > addr {
		return nil
	}
	return as.vmas[i]
}

// Find returns the VMA containing addr, taking mmap_sem for read.
func (as *AddressSpace) Find(t *rwsem.Task, addr uint64) *VMA {
	as.sem.DownRead(t)
	v := as.findLocked(addr)
	as.sem.UpRead(t)
	return v
}

// VMACount returns the number of live mappings, taking mmap_sem for read.
func (as *AddressSpace) VMACount(t *rwsem.Task) int {
	as.sem.DownRead(t)
	n := len(as.vmas)
	as.sem.UpRead(t)
	return n
}
