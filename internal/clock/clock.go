// Package clock provides a cheap monotonic nanosecond clock.
//
// BRAVO's InhibitUntil policy (paper §3) needs a "high-resolution low-latency
// means of reading the system clock" whose concurrent readers do not
// interfere with each other. The paper uses RDTSCP or the
// clock_gettime(CLOCK_MONOTONIC) vDSO fast path; the Go equivalent is the
// monotonic component of time.Time, read here as nanoseconds since an
// arbitrary process epoch.
package clock

import "time"

var epoch = time.Now()

// Nanos returns monotonic nanoseconds since an arbitrary (per-process) epoch.
// The value is strictly non-decreasing and safe for concurrent use.
func Nanos() int64 {
	return int64(time.Since(epoch))
}
