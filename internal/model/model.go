// Package model implements the analytical models the paper uses to reason
// about BRAVO's visible readers table:
//
//   - the balls-into-bins collision model of the inter-lock interference
//     analysis ("Collision rate per access is Balls / (2*Bins). The number
//     of locks is NOT relevant to the collision rate.");
//   - the birthday-paradox collision probability ("the odds of collision
//     are equivalent to those given by the 'Birthday Paradox'");
//   - the ski-rental-flavoured cost model for bias setting ("improvement =
//     BenefitFromFastReaders − RevocationCost") and the primum-non-nocere
//     writer slow-down bound 1/(N+1).
package model

import (
	"math"

	"github.com/bravolock/bravo/internal/xrand"
)

// CollisionRatePerAccess is the paper's lockstep balls-into-bins estimate of
// the probability that a fast-path publication collides with a concurrently
// occupied slot: balls/(2·bins), where balls is the number of concurrently
// publishing threads. It is independent of the number of distinct locks.
func CollisionRatePerAccess(threads, bins int) float64 {
	if bins <= 0 {
		return 1
	}
	return float64(threads) / float64(2*bins)
}

// BirthdayCollisionProbability returns the probability that at least two of
// n uniformly hashed occupants share a slot among bins slots — the paper's
// birthday-paradox framing of fast-reader collisions.
func BirthdayCollisionProbability(n, bins int) float64 {
	if n > bins {
		return 1
	}
	p := 1.0
	for i := 0; i < n; i++ {
		p *= float64(bins-i) / float64(bins)
	}
	return 1 - p
}

// ExpectedOccupancy returns the expected number of distinct slots occupied
// when balls occupants hash uniformly into bins slots:
// bins·(1 − (1 − 1/bins)^balls).
func ExpectedOccupancy(balls, bins int) float64 {
	if bins <= 0 {
		return 0
	}
	return float64(bins) * (1 - math.Pow(1-1/float64(bins), float64(balls)))
}

// SimulateCollisionRate performs the paper's lockstep thought experiment:
// each of threads threads repeatedly picks a random lock from a pool of
// nlocks and throws a ball into one of bins slots (the hash of its identity
// and the lock). It returns the measured fraction of throws that land on a
// slot already occupied in the same round. Per the paper's claim, the result
// depends on threads and bins but not nlocks; tests verify exactly that.
func SimulateCollisionRate(threads, nlocks, bins, rounds int, seed uint64) float64 {
	rng := xrand.NewXorShift64(seed)
	occupied := make([]int, bins)
	epoch := 0
	collisions, throws := 0, 0
	for r := 0; r < rounds; r++ {
		epoch++
		for t := 0; t < threads; t++ {
			lock := rng.Intn(uint64(nlocks))
			// The hash of (thread, lock) is modeled as uniform, per the
			// paper's equidistribution assumption.
			slot := int(xrand.NewSplitMix64(uint64(t)<<32^lock^rng.Next()).Next() % uint64(bins))
			throws++
			if occupied[slot] == epoch {
				collisions++
			} else {
				occupied[slot] = epoch
			}
		}
	}
	return float64(collisions) / float64(throws)
}

// WriterSlowdownBound is the primum-non-nocere guarantee: with inhibit
// multiplier N, at most one revocation of duration D occurs per (N+1)·D of
// writer wall time, bounding the worst-case writer slow-down to 1/(N+1).
func WriterSlowdownBound(n int64) float64 {
	return 1 / float64(n+1)
}

// CostModel captures the paper's simplified bias cost model. All durations
// are in nanoseconds.
type CostModel struct {
	// FastReadSaving is the per-read saving when a reader uses the fast
	// path instead of updating the central reader indicator.
	FastReadSaving float64
	// RevocationCost is the expected cost of one revocation (scan + wait).
	RevocationCost float64
}

// Improvement evaluates "improvement = BenefitFromFastReaders −
// RevocationCost" for an episode with the given number of fast reads
// between consecutive write-after-read transitions.
func (m CostModel) Improvement(fastReads float64) float64 {
	return m.FastReadSaving*fastReads - m.RevocationCost
}

// BreakEvenReads returns the number of fast reads per revocation above
// which enabling bias pays off — the ski-rental threshold.
func (m CostModel) BreakEvenReads() float64 {
	if m.FastReadSaving <= 0 {
		return math.Inf(1)
	}
	return m.RevocationCost / m.FastReadSaving
}

// RevocationScanNanos estimates the revocation scan cost for a table of the
// given size at the given per-slot scan rate (the paper measures ≈1.1ns per
// element with hardware prefetching).
func RevocationScanNanos(tableSize int, nsPerSlot float64) float64 {
	return float64(tableSize) * nsPerSlot
}
