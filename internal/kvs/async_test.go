package kvs

import (
	"sync"
	"testing"

	"github.com/bravolock/bravo/internal/xrand"
)

func TestPutAsyncInvisibleUntilFlush(t *testing.T) {
	s, _ := NewSharded(4, mkStd)
	s.PutAsync(1, EncodeValue(1))
	if _, ok := s.Get(1); ok {
		t.Fatal("queued async write visible before flush")
	}
	if got := s.Flush(); got != 1 {
		t.Fatalf("Flush applied %d writes, want 1", got)
	}
	v, ok := s.Get(1)
	if !ok {
		t.Fatal("Get missed an async write after Flush")
	}
	if d, _ := DecodeValue(v); d != 1 {
		t.Fatalf("Get = %d, want 1", d)
	}
	if got := s.Flush(); got != 0 {
		t.Fatalf("second Flush applied %d writes, want 0", got)
	}
	total := s.Stats().Total()
	if total.AsyncPuts != 1 || total.Puts != 1 {
		t.Fatalf("AsyncPuts = %d Puts = %d, want 1/1", total.AsyncPuts, total.Puts)
	}
}

func TestPutAsyncThresholdAutoFlush(t *testing.T) {
	s, _ := NewSharded(1, mkStd) // one shard: a deterministic queue
	s.SetAsyncBatch(4)
	for k := uint64(0); k < 3; k++ {
		s.PutAsync(k, EncodeValue(k))
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d below the threshold, want 0", s.Len())
	}
	s.PutAsync(3, EncodeValue(3)) // fourth write fills the batch
	if s.Len() != 4 {
		t.Fatalf("Len = %d after the threshold write, want 4", s.Len())
	}
	total := s.Stats().Total()
	if total.WriteBatches != 1 || total.WriteBatchKeys != 4 {
		t.Fatalf("WriteBatches = %d keys = %d, want 1/4", total.WriteBatches, total.WriteBatchKeys)
	}
}

func TestPutAsyncOrderPreserved(t *testing.T) {
	s, _ := NewSharded(1, mkStd)
	// Same key queued twice in one batch: the later write must win.
	s.PutAsync(7, EncodeValue(1))
	s.PutAsync(7, EncodeValue(2))
	s.Flush()
	v, _ := s.Get(7)
	if d, _ := DecodeValue(v); d != 2 {
		t.Fatalf("flushed value = %d, want the later write 2", d)
	}
	// Across batches: a drain between the two writes must not let the
	// first batch overwrite the second.
	s.SetAsyncBatch(1) // every PutAsync drains inline
	s.PutAsync(8, EncodeValue(10))
	s.PutAsync(8, EncodeValue(20))
	s.Flush()
	v, _ = s.Get(8)
	if d, _ := DecodeValue(v); d != 20 {
		t.Fatalf("cross-batch value = %d, want 20", d)
	}
}

func TestPutAsyncCopiesValueAtEnqueue(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	buf := EncodeValue(1)
	s.PutAsync(1, buf)
	copy(buf, EncodeValue(99)) // caller reuses its buffer before the flush
	s.Flush()
	v, _ := s.Get(1)
	if d, _ := DecodeValue(v); d != 1 {
		t.Fatalf("flushed value = %d, want the enqueue-time copy 1", d)
	}
}

// TestPutAsyncConcurrent storms the queue from many writers with readers
// and flushes racing; under -race this certifies the queue's locking.
func TestPutAsyncConcurrent(t *testing.T) {
	s, _ := NewSharded(4, mkBravo)
	s.SetAsyncBatch(8)
	const keys = 128
	iters := 2000
	if testing.Short() {
		iters = 200
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.NewXorShift64(seed)
			for i := 0; i < iters; i++ {
				k := rng.Intn(keys)
				switch rng.Intn(8) {
				case 0:
					s.Flush()
				case 1, 2:
					s.Get(k)
				default:
					s.PutAsync(k, EncodeValue(rng.Next()))
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	s.Flush()
	total := s.Stats().Total()
	if total.Puts != total.AsyncPuts {
		t.Fatalf("applied %d of %d queued writes", total.Puts, total.AsyncPuts)
	}
	if s.Len() > keys {
		t.Fatalf("Len = %d, exceeds keyspace %d", s.Len(), keys)
	}
}
