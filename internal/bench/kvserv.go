package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/histogram"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/xrand"
)

// The kvserv workload is the loadgen for the serving pipeline behind
// cmd/kvserv: dedicated reader goroutines stream GETs through pinned
// reader handles (one identity per worker, as the server pins one per
// connection) while dedicated writer goroutines stream writes — applied
// either one Put per key ("single") or coalesced through MultiPut
// ("batched", the server's MPUT path). The comparison isolates write
// combining: per key, batched writes amortize the shard write-lock
// acquisition — and, on BRAVO substrates, the bias revocation — across the
// group, and must not pay for it with a slower read fast path. It drives
// the engine in-process through the same calls the HTTP handlers make, so
// the numbers measure the pipeline rather than socket parsing; the socket
// itself is certified by internal/kvserv's end-to-end test.

// KVServKeys is the workload's keyspace.
const KVServKeys = 1 << 14

// KVServDefaultValueSize keeps values small enough that the write cost is
// dominated by lock traffic, the axis the batched-vs-single comparison
// isolates (the shardedkv workload owns the value-size axis).
const KVServDefaultValueSize = 128

// KVServDefaultBatch is the writers' MultiPut group size in batched mode.
const KVServDefaultBatch = 64

// KVServResult is one (lock, shards, threads, mode) measurement.
type KVServResult struct {
	Lock   string `json:"lock"`
	Shards int    `json:"shards"`
	// Threads is the requested total goroutine count, split into Readers +
	// Writers (threads 1 still gets one of each).
	Threads int `json:"threads"`
	Readers int `json:"readers"`
	Writers int `json:"writers"`
	// Mode is "single" (one Put per key) or "batched" (MultiPut groups of
	// BatchSize); BatchSize is 1 in single mode.
	Mode      string `json:"mode"`
	BatchSize int    `json:"batch_size"`
	ValueSize int    `json:"value_size"`
	// WriteKeysPerSec is the median (over runs) rate of keys applied by
	// writers; the batched/single ratio of this column is the write
	// combining payoff. ReadOpsPerSec and the percentiles describe the
	// concurrent read side (last run; latency subsampled 1/32).
	WriteKeysPerSec float64 `json:"write_keys_per_sec"`
	ReadOpsPerSec   float64 `json:"read_ops_per_sec"`
	ReadP50Nanos    int64   `json:"read_p50_ns"`
	ReadP99Nanos    int64   `json:"read_p99_ns"`
	// FastReadFraction is NFast/NReads from core.Stats for bravo-* locks
	// (last run); -1 when the substrate exposes no BRAVO counters.
	FastReadFraction float64 `json:"fast_read_fraction"`
}

// KVServComparison pairs the two modes of one (lock, shards, threads)
// point: the write-combining speedup and the read-fast-path cost of it.
type KVServComparison struct {
	Lock                   string  `json:"lock"`
	Shards                 int     `json:"shards"`
	Threads                int     `json:"threads"`
	SingleWriteKeysPerSec  float64 `json:"single_write_keys_per_sec"`
	BatchedWriteKeysPerSec float64 `json:"batched_write_keys_per_sec"`
	// BatchedOverSingle is the write-throughput ratio; the serving
	// pipeline's acceptance bar is >= 2 at 8+ goroutines.
	BatchedOverSingle float64 `json:"batched_over_single"`
	// FastReadGap is |batched - single| fast-read fraction (absolute, in
	// fraction points; -1 when the lock exposes no counters), and
	// FastGapWithin5Pct is the <= 0.05 acceptance check: batching writes
	// must not cost the read side its fast path.
	FastReadGap       float64 `json:"fast_read_gap"`
	FastGapWithin5Pct bool    `json:"fast_gap_within_5pct"`
}

// KVServReport is the top-level BENCH_kvserv.json document.
type KVServReport struct {
	Benchmark   string             `json:"benchmark"`
	Meta        RunMeta            `json:"meta"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	IntervalMS  int64              `json:"interval_ms"`
	Runs        int                `json:"runs"`
	Keys        int                `json:"keys"`
	Results     []KVServResult     `json:"results"`
	Comparisons []KVServComparison `json:"comparisons"`
}

// WriteJSON renders the report as indented JSON.
func (r KVServReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// NewKVServReport stamps the environment fields of a report.
func NewKVServReport(cfg Config, results []KVServResult, comps []KVServComparison) KVServReport {
	return KVServReport{
		Benchmark:   "kvserv",
		Meta:        NewRunMeta(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		IntervalMS:  cfg.Interval.Milliseconds(),
		Runs:        cfg.Runs,
		Keys:        KVServKeys,
		Results:     results,
		Comparisons: comps,
	}
}

// splitRoles divides a requested goroutine count into readers and writers.
// Writers get half (write combining is a write-side claim and needs write
// contention to measure), readers the rest; both roles always get at least
// one goroutine so every point has a read fast path and a write stream.
func splitRoles(threads int) (readers, writers int) {
	writers = threads / 2
	if writers < 1 {
		writers = 1
	}
	readers = threads - writers
	if readers < 1 {
		readers = 1
	}
	return readers, writers
}

// KVServPoint measures one (lock, shards, threads, mode) point: cfg.Runs
// independent runs against fresh engines, median write throughput, last
// run's read histogram and fast-path snapshot.
func KVServPoint(lockName string, shards, threads, batch, valueSize int, mode string, cfg Config) (KVServResult, error) {
	if mode != "single" && mode != "batched" {
		return KVServResult{}, fmt.Errorf("bench: kvserv mode %q (want single or batched)", mode)
	}
	if batch < 2 {
		return KVServResult{}, fmt.Errorf("bench: kvserv batch %d (want >= 2)", batch)
	}
	mk, stats, err := shardedKVFactory(lockName)
	if err != nil {
		return KVServResult{}, err
	}
	readers, writers := splitRoles(threads)
	res := KVServResult{
		Lock: lockName, Shards: shards, Threads: threads,
		Readers: readers, Writers: writers,
		Mode: mode, BatchSize: batch, ValueSize: valueSize,
	}
	if mode == "single" {
		res.BatchSize = 1
	}
	if res.ValueSize < 8 {
		res.ValueSize = 8 // room for the encoded counter
	}
	var lastHist *histogram.Histogram
	var lastSnap core.Snapshot
	var lastReads uint64
	var buildErr error
	res.WriteKeysPerSec = cfg.Median(func() float64 {
		e, err := kvs.NewSharded(shards, mk)
		if err != nil {
			buildErr = err
			return 0
		}
		value := make([]byte, res.ValueSize)
		for k := uint64(0); k < KVServKeys; k++ {
			copy(value, kvs.EncodeValue(k))
			e.Put(k, value)
		}
		var before core.Snapshot
		if stats != nil {
			before = stats.Snapshot() // exclude population and prior runs
		}
		hist := &histogram.Histogram{}
		var histMu sync.Mutex
		var reads, writes atomic.Uint64
		RunWorkers(readers+writers, cfg.Interval, func(id int, stop *atomic.Bool) uint64 {
			rng := xrand.NewXorShift64(uint64(id)*0x9e3779b97f4a7c15 + 1)
			if id < writers {
				writes.Add(kvservWriter(e, mode == "batched", batch, res.ValueSize, rng, stop))
				return 0
			}
			local := &histogram.Histogram{}
			n := kvservReader(e, res.ValueSize, rng, local, stop)
			histMu.Lock()
			hist.Merge(local)
			histMu.Unlock()
			reads.Add(n)
			return 0
		})
		lastHist = hist
		lastReads = reads.Load()
		if stats != nil {
			after := stats.Snapshot()
			lastSnap = core.Snapshot{
				FastRead:      after.FastRead - before.FastRead,
				SlowDisabled:  after.SlowDisabled - before.SlowDisabled,
				SlowCollision: after.SlowCollision - before.SlowCollision,
				SlowRaced:     after.SlowRaced - before.SlowRaced,
				SlowHandle:    after.SlowHandle - before.SlowHandle,
			}
		}
		return float64(writes.Load())
	})
	if buildErr != nil {
		return res, buildErr
	}
	res.WriteKeysPerSec /= cfg.Interval.Seconds()
	res.ReadOpsPerSec = float64(lastReads) / cfg.Interval.Seconds()
	if lastHist != nil && lastHist.Count() > 0 {
		res.ReadP50Nanos = lastHist.Percentile(50)
		res.ReadP99Nanos = lastHist.Percentile(99)
	}
	res.FastReadFraction = -1
	if stats != nil {
		res.FastReadFraction = lastSnap.FastFraction()
	}
	return res, nil
}

// kvservWriter streams writes until stop: one Put per key in single mode,
// MultiPut groups of batch keys in batched mode (the MPUT pipeline).
// Returns keys applied.
func kvservWriter(e *kvs.Sharded, batched bool, batch, valueSize int, rng *xrand.XorShift64, stop *atomic.Bool) uint64 {
	wval := make([]byte, valueSize)
	var keys []uint64
	var vals [][]byte
	if batched {
		keys = make([]uint64, batch)
		vals = make([][]byte, batch)
		for i := range vals {
			// Values alias one buffer: the engine copies under the shard
			// lock, and the comparison holds the payload constant per key.
			vals[i] = wval
		}
	}
	var applied uint64
	for !stop.Load() {
		copy(wval, kvs.EncodeValue(rng.Next()))
		if !batched {
			e.Put(rng.Intn(KVServKeys), wval)
			applied++
			continue
		}
		for i := range keys {
			keys[i] = rng.Intn(KVServKeys)
		}
		e.MultiPut(keys, vals)
		applied += uint64(batch)
	}
	return applied
}

// kvservReader streams GETs through a pinned reader handle until stop,
// sampling latency 1/32 (as the shardedkv workload does), and returns ops.
func kvservReader(e *kvs.Sharded, valueSize int, rng *xrand.XorShift64, local *histogram.Histogram, stop *atomic.Bool) uint64 {
	h := rwl.NewReader()
	rbuf := make([]byte, 0, valueSize)
	var ops uint64
	for !stop.Load() {
		k := rng.Intn(KVServKeys)
		if ops&latencySampleMask == 0 {
			start := clock.Nanos()
			rbuf, _ = e.GetIntoH(h, k, rbuf)
			local.Record(clock.Nanos() - start)
		} else {
			rbuf, _ = e.GetIntoH(h, k, rbuf)
		}
		ops++
	}
	return ops
}

// KVServSweep measures both modes across the lock × shards × threads grid
// and pairs them into comparisons. Results arrive in deterministic order
// (lock, shards, threads, then single before batched).
func KVServSweep(locks []string, shardCounts, threads []int, batch, valueSize int, cfg Config) ([]KVServResult, []KVServComparison, error) {
	var results []KVServResult
	var comps []KVServComparison
	for _, lock := range locks {
		for _, sc := range shardCounts {
			for _, tc := range threads {
				single, err := KVServPoint(lock, sc, tc, batch, valueSize, "single", cfg)
				if err != nil {
					return nil, nil, err
				}
				batchedRes, err := KVServPoint(lock, sc, tc, batch, valueSize, "batched", cfg)
				if err != nil {
					return nil, nil, err
				}
				results = append(results, single, batchedRes)
				comps = append(comps, compareKVServ(single, batchedRes))
			}
		}
	}
	return results, comps, nil
}

// compareKVServ folds one point's two modes into a comparison row.
func compareKVServ(single, batched KVServResult) KVServComparison {
	c := KVServComparison{
		Lock: single.Lock, Shards: single.Shards, Threads: single.Threads,
		SingleWriteKeysPerSec:  single.WriteKeysPerSec,
		BatchedWriteKeysPerSec: batched.WriteKeysPerSec,
		FastReadGap:            -1,
	}
	if single.WriteKeysPerSec > 0 {
		c.BatchedOverSingle = batched.WriteKeysPerSec / single.WriteKeysPerSec
	}
	if single.FastReadFraction >= 0 && batched.FastReadFraction >= 0 {
		gap := batched.FastReadFraction - single.FastReadFraction
		if gap < 0 {
			gap = -gap
		}
		c.FastReadGap = gap
		c.FastGapWithin5Pct = gap <= 0.05
	}
	return c
}

// WriteKVServTable renders the per-mode measurements as the aligned
// human-readable companion of the JSON report.
func WriteKVServTable(w io.Writer, results []KVServResult) {
	const format = "%-10s %7s %8s %8s %-8s %14s %14s %10s %8s\n"
	fmt.Fprintf(w, format, "lock", "shards", "threads", "r/w", "mode", "wkeys/sec", "reads/sec", "p99(ns)", "fast%")
	for _, r := range results {
		fast := "-"
		if r.FastReadFraction >= 0 {
			fast = fmt.Sprintf("%.1f", 100*r.FastReadFraction)
		}
		fmt.Fprintf(w, format, r.Lock,
			fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%d/%d", r.Readers, r.Writers), r.Mode,
			fmt.Sprintf("%.0f", r.WriteKeysPerSec), fmt.Sprintf("%.0f", r.ReadOpsPerSec),
			fmt.Sprintf("%d", r.ReadP99Nanos), fast)
	}
}

// WriteKVServComparisons renders the batched-vs-single pairing.
func WriteKVServComparisons(w io.Writer, comps []KVServComparison) {
	const format = "%-10s %7s %8s %16s %16s %9s %9s\n"
	fmt.Fprintf(w, format, "lock", "shards", "threads", "single(wk/s)", "batched(wk/s)", "ratio", "fast-gap")
	for _, c := range comps {
		gap := "-"
		if c.FastReadGap >= 0 {
			gap = fmt.Sprintf("%.3f", c.FastReadGap)
		}
		fmt.Fprintf(w, format, c.Lock,
			fmt.Sprintf("%d", c.Shards), fmt.Sprintf("%d", c.Threads),
			fmt.Sprintf("%.0f", c.SingleWriteKeysPerSec), fmt.Sprintf("%.0f", c.BatchedWriteKeysPerSec),
			fmt.Sprintf("%.2fx", c.BatchedOverSingle), gap)
	}
}
