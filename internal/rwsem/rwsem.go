// Package rwsem implements an analogue of the Linux kernel's read-write
// semaphore (rwsem), the lock the paper integrates BRAVO with in §4, plus
// that BRAVO integration.
//
// "On a high level, rwsem consists of a counter and a waiting queue
// protected by a spin-lock. The counter keeps track of the number of active
// readers, as well as encodes the presence of a writer." We reproduce that
// state machine: a fast path of one atomic on the shared counter, a
// spinlock-protected FIFO wait queue, writer optimistic spinning on the
// owner field (the spin-on-owner optimization [32]), and the owner-field
// write-by-readers behaviour whose contention §4 describes — including the
// paper's fix (readers set the reader-owned bits only when not already set).
package rwsem

import (
	"sync/atomic"

	"github.com/bravolock/bravo/internal/spin"
)

// count encoding: readers are counted in multiples of readerBias; the low
// bits carry writer presence and queue state.
const (
	writerLocked = 1 << 0
	hasWaiters   = 1 << 1
	readerShift  = 8
	readerBias   = 1 << readerShift
)

// owner-field encoding: the owning task's ID shifted left, with flag bits.
// Readers store only the readerOwned control bits (plus, in stock mode,
// their task ID — the debugging write §4 calls out as pure contention).
const (
	ownerReader = 1 << 0
	ownerShift  = 1
)

// spinOnOwnerBudget bounds writer/reader optimistic spinning; the kernel
// checks owner->on_cpu, which we approximate with a bounded polite spin.
const spinOnOwnerBudget = 64

// Config selects rwsem behaviour variants.
type Config struct {
	// SpinOnOwner enables optimistic spinning before blocking (the kernel
	// default).
	SpinOnOwner bool
	// StockOwnerWrites makes every reader write its task ID into the owner
	// field, as stock rwsem does "for debugging purposes only" (§4). With
	// it false, readers apply the paper's optimization: only the first
	// reader after a writer sets the reader-owned bits.
	StockOwnerWrites bool
}

// DefaultConfig matches the stock kernel: spinning on, stock owner writes.
func DefaultConfig() Config {
	return Config{SpinOnOwner: true, StockOwnerWrites: true}
}

// waiter is one parked task.
type waiter struct {
	next   *waiter
	wake   chan struct{}
	writer bool
}

// RWSem is a kernel-style read-write semaphore.
type RWSem struct {
	count atomic.Int64
	owner atomic.Uint64
	cfg   Config

	waitLock spinLock
	// FIFO wait queue; guarded by waitLock.
	head, tail *waiter
}

// New returns an rwsem with the given behaviour configuration.
func New(cfg Config) *RWSem {
	return &RWSem{cfg: cfg}
}

// DownRead acquires the semaphore in read (shared) mode on behalf of task.
func (s *RWSem) DownRead(task uint64) {
	c := s.count.Add(readerBias)
	if c&(writerLocked|hasWaiters) == 0 {
		s.setReaderOwner(task)
		return
	}
	s.downReadSlow(task)
}

// TryDownRead attempts a non-blocking read acquisition.
func (s *RWSem) TryDownRead(task uint64) bool {
	for {
		c := s.count.Load()
		if c&(writerLocked|hasWaiters) != 0 {
			return false
		}
		if s.count.CompareAndSwap(c, c+readerBias) {
			s.setReaderOwner(task)
			return true
		}
	}
}

func (s *RWSem) downReadSlow(task uint64) {
	// Optimistic phase: if the writer departs promptly (spin-on-owner), we
	// keep our already-registered bias and avoid the queue.
	if s.cfg.SpinOnOwner {
		var b spin.Backoff
		for i := 0; i < spinOnOwnerBudget; i++ {
			c := s.count.Load()
			if c&(writerLocked|hasWaiters) == 0 {
				s.setReaderOwner(task)
				return
			}
			if c&writerLocked != 0 && s.owner.Load()&ownerReader != 0 {
				// Owned by readers — a writer bit with reader owner means
				// transition churn; stop spinning.
				break
			}
			b.Once()
		}
	}
	s.waitLock.lock()
	c := s.count.Load()
	if c&writerLocked == 0 && s.head == nil {
		// The writer left and nobody queued: our bias stands.
		s.waitLock.unlock()
		s.setReaderOwner(task)
		return
	}
	// Retract the optimistic bias and park.
	w := &waiter{wake: make(chan struct{}, 1)}
	s.enqueueLocked(w)
	c = s.count.Add(-readerBias)
	if c>>readerShift == 0 && c&writerLocked == 0 {
		// Our phantom bias may have suppressed a wakeup; re-drive it.
		s.wakeLocked()
	}
	s.waitLock.unlock()
	<-w.wake
	s.setReaderOwner(task)
}

// UpRead releases a read acquisition.
func (s *RWSem) UpRead(task uint64) {
	c := s.count.Add(-readerBias)
	if c&hasWaiters != 0 && c>>readerShift == 0 && c&writerLocked == 0 {
		s.waitLock.lock()
		s.wakeLocked()
		s.waitLock.unlock()
	}
}

// DownWrite acquires the semaphore in write (exclusive) mode.
func (s *RWSem) DownWrite(task uint64) {
	if s.count.CompareAndSwap(0, writerLocked) {
		s.owner.Store(task << ownerShift)
		return
	}
	s.downWriteSlow(task)
}

// TryDownWrite attempts a non-blocking write acquisition.
func (s *RWSem) TryDownWrite(task uint64) bool {
	if s.count.CompareAndSwap(0, writerLocked) {
		s.owner.Store(task << ownerShift)
		return true
	}
	return false
}

func (s *RWSem) downWriteSlow(task uint64) {
	if s.cfg.SpinOnOwner {
		var b spin.Backoff
		for i := 0; i < spinOnOwnerBudget; i++ {
			if s.count.CompareAndSwap(0, writerLocked) {
				s.owner.Store(task << ownerShift)
				return
			}
			b.Once()
		}
	}
	w := &waiter{wake: make(chan struct{}, 1), writer: true}
	s.waitLock.lock()
	// Last-chance acquisition under the wait lock.
	if s.count.CompareAndSwap(0, writerLocked) {
		s.waitLock.unlock()
		s.owner.Store(task << ownerShift)
		return
	}
	s.enqueueLocked(w)
	s.waitLock.unlock()
	<-w.wake
	// The waker transferred writerLocked to us (lock handoff).
	s.owner.Store(task << ownerShift)
}

// UpWrite releases a write acquisition.
func (s *RWSem) UpWrite(task uint64) {
	s.owner.Store(0)
	c := s.count.Add(-writerLocked)
	if c&hasWaiters != 0 && c>>readerShift == 0 {
		s.waitLock.lock()
		s.wakeLocked()
		s.waitLock.unlock()
	}
}

// enqueueLocked appends w and maintains the hasWaiters bit. Caller holds
// waitLock.
func (s *RWSem) enqueueLocked(w *waiter) {
	if s.tail == nil {
		s.head, s.tail = w, w
		for {
			c := s.count.Load()
			if s.count.CompareAndSwap(c, c|hasWaiters) {
				break
			}
		}
		return
	}
	s.tail.next = w
	s.tail = w
}

// dequeueLocked removes the queue head and clears hasWaiters when the queue
// drains. Caller holds waitLock.
func (s *RWSem) dequeueLocked() *waiter {
	w := s.head
	s.head = w.next
	w.next = nil
	if s.head == nil {
		s.tail = nil
		for {
			c := s.count.Load()
			if s.count.CompareAndSwap(c, c&^hasWaiters) {
				break
			}
		}
	}
	return w
}

// wakeLocked grants the semaphore to the queue front: a single writer (by
// handing off the writerLocked bit) or the maximal front group of readers
// (by granting one readerBias each). Caller holds waitLock.
func (s *RWSem) wakeLocked() {
	front := s.head
	if front == nil {
		return
	}
	if front.writer {
		for {
			c := s.count.Load()
			if c>>readerShift != 0 || c&writerLocked != 0 {
				return // still held; the releaser will re-drive the wakeup
			}
			if s.count.CompareAndSwap(c, c|writerLocked) {
				break
			}
		}
		w := s.dequeueLocked()
		w.wake <- struct{}{}
		return
	}
	// Reader grouping: admit every reader at the front of the queue.
	for s.head != nil && !s.head.writer {
		for {
			c := s.count.Load()
			if c&writerLocked != 0 {
				return // a writer slipped in; readers stay parked
			}
			if s.count.CompareAndSwap(c, c+readerBias) {
				break
			}
		}
		w := s.dequeueLocked()
		w.wake <- struct{}{}
	}
}

// setReaderOwner records reader ownership in the owner field. In stock mode
// every reader stores its task ID with the reader bit — the §4 contention.
// In optimized mode a reader writes only when the reader bit is not already
// set, so "all subsequent readers would read, but not update the owner
// field, until it is updated again by a writer".
func (s *RWSem) setReaderOwner(task uint64) {
	if s.cfg.StockOwnerWrites {
		s.owner.Store(task<<ownerShift | ownerReader)
		return
	}
	if s.owner.Load()&ownerReader == 0 {
		s.owner.Store(ownerReader)
	}
}

// ReaderOwned reports whether the owner field carries the reader-owned bits.
func (s *RWSem) ReaderOwned() bool { return s.owner.Load()&ownerReader != 0 }

// WriterPresent reports whether a writer holds the semaphore. Diagnostic.
func (s *RWSem) WriterPresent() bool { return s.count.Load()&writerLocked != 0 }

// ActiveReaders returns the current reader count. Diagnostic.
func (s *RWSem) ActiveReaders() int64 { return s.count.Load() >> readerShift }

// spinLock is a minimal test-and-test-and-set spinlock guarding the wait
// queue (the kernel's wait_lock).
type spinLock struct {
	v atomic.Uint32
}

func (l *spinLock) lock() {
	if l.v.CompareAndSwap(0, 1) {
		return
	}
	var b spin.Backoff
	for {
		if l.v.Load() == 0 && l.v.CompareAndSwap(0, 1) {
			return
		}
		b.Once()
	}
}

func (l *spinLock) unlock() {
	l.v.Store(0)
}
