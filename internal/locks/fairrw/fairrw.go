// Package fairrw implements a ticket-style fair reader-writer lock after
// Popov & Mazonka, "Faster Fair Solution for the Reader-Writer Problem"
// (arXiv:1309.4507). One shared ticket sequence admits readers and writers
// in strict FIFO arrival order, so neither side can starve the other:
// a writer waits for exactly the readers ahead of it, and a reader waits
// for exactly the writers ahead of it. Adjacent readers in the ticket
// order still run concurrently.
//
// The algorithm keeps three monotonic counters:
//
//	next  — the ticket dispenser (one ticket per acquisition, either kind)
//	read  — read admission: the lowest ticket not yet admitted as a reader
//	write — departures: the lowest ticket not yet fully departed
//
// A reader with ticket t enters when read == t and immediately opens the
// door for ticket t+1 (read = t+1), so a run of readers admits itself in
// a pipelined chain; it departs with write++. A writer with ticket t
// enters when write == t — i.e. every earlier ticket has departed — and
// on exit admits ticket t+1 on both counters. All comparisons are
// equality on uint32, so counter wraparound is benign (same convention as
// the other ticket locks in this repository).
//
// This is the "fair" end of the bias spectrum: no revocation, no visible
// readers table, no reader preference — a write-heavy shard demoted to
// this substrate pays one cache-line handoff per acquisition instead of
// revocation storms. See internal/locks/adaptive for the composite that
// flips between this lock and BRAVO.
package fairrw

import (
	"sync/atomic"

	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/spin"
)

// Lock is a FIFO-fair reader-writer lock. The zero value is unlocked.
type Lock struct {
	next  atomic.Uint32 // ticket dispenser
	read  atomic.Uint32 // read admission (lowest ticket not yet reader-admitted)
	write atomic.Uint32 // departures (lowest ticket not yet departed)
}

var _ rwl.TryRWLock = (*Lock)(nil)

// RLock acquires read permission in ticket order.
func (l *Lock) RLock() rwl.Token {
	t := l.next.Add(1) - 1
	var b spin.Backoff
	for l.read.Load() != t {
		b.Once()
	}
	// Only the owner of ticket t can observe read == t, so this store never
	// races with another mutation of read: it hands admission to ticket t+1.
	l.read.Store(t + 1)
	return 0
}

// RUnlock releases read permission.
func (l *Lock) RUnlock(rwl.Token) {
	l.write.Add(1)
}

// Lock acquires write permission in ticket order.
func (l *Lock) Lock() {
	t := l.next.Add(1) - 1
	var b spin.Backoff
	for l.write.Load() != t {
		b.Once()
	}
	// write == t means every earlier ticket has departed; read also equals t
	// (no later ticket can have been reader-admitted past an unentered t),
	// so the writer holds the lock exclusively. Neither counter moves while
	// it is held: admission of ticket t+1 requires the stores below.
}

// Unlock releases write permission and admits the next ticket.
func (l *Lock) Unlock() {
	t := l.write.Load() // == this writer's ticket; stable while held
	// Admit ticket t+1 as a reader before recording our own departure: a
	// successor writer (ticket t+1) enters via write, and only after it has
	// entered could further tickets mutate read — ordering the stores this
	// way keeps read from ever moving backwards.
	l.read.Store(t + 1)
	l.write.Add(1)
}

// TryRLock attempts to acquire read permission without waiting. It succeeds
// only when the caller would be admitted immediately, i.e. no writer is held
// or queued ahead.
func (l *Lock) TryRLock() (rwl.Token, bool) {
	t := l.next.Load()
	if l.read.Load() != t {
		return 0, false
	}
	if !l.next.CompareAndSwap(t, t+1) {
		return 0, false
	}
	// read can only have advanced to t by the owner of ticket t-1, and can
	// not pass t until ticket t (ours) advances it: entry is immediate.
	l.read.Store(t + 1)
	return 0, true
}

// TryLock attempts to acquire write permission without waiting. It succeeds
// only when the lock is completely idle (every prior ticket departed).
func (l *Lock) TryLock() bool {
	t := l.next.Load()
	if l.write.Load() != t {
		return false
	}
	return l.next.CompareAndSwap(t, t+1)
}

// Queued reports how many tickets are issued but not yet departed — held
// plus waiting acquisitions of either kind. Diagnostic only; racy by nature.
func (l *Lock) Queued() uint32 {
	return l.next.Load() - l.write.Load()
}
