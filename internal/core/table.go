// Package core implements the BRAVO transformation (paper §3, Listing 1):
// a wrapper that augments any existing reader-writer lock with a biased
// reader fast path backed by a shared visible readers table.
//
// Readers make their presence known to writers by hashing their thread's
// identity with the lock address, forming an index into the visible readers
// table, and installing the lock address into that element with a CAS. All
// locks and threads in an address space can share one table; readers of the
// same lock tend to write to different locations in it, which is what
// removes the reader-indicator coherence hot spot of compact locks.
//
// The protocol itself — the RBias word, the publish/recheck/undo fast path,
// the revocation scan, the inhibit policies, the stats, and the slot-caching
// reader handles — lives in internal/bias and is shared with the rwsem
// integration (internal/rwsem); this package contributes the generic
// wrap-any-rwl-lock shape and re-exports the bias vocabulary for its users.
package core

import (
	"github.com/bravolock/bravo/internal/bias"
)

// DefaultTableSize is the paper's table size: "In all our experiments we
// sized the table at 4096 entries" (§3). With 8-byte slots the footprint is
// 32KB, shared by every lock and thread in the address space.
const DefaultTableSize = bias.DefaultTableSize

// DefaultRowLen is the BRAVO-2D sector length (§7).
const DefaultRowLen = bias.DefaultRowLen

// Table is a visible readers table (see bias.Table).
type Table = bias.Table

// SharedTable returns the process-wide visible readers table that locks use
// unless configured otherwise.
func SharedTable() *Table { return bias.SharedTable() }

// NewTable returns a flat (1D) visible readers table with size slots.
// size must be a positive power of two.
func NewTable(size int) *Table { return bias.NewTable(size) }

// NewTable2D returns a BRAVO-2D sectored table with rows rows of rowLen
// slots each (§7).
func NewTable2D(rows, rowLen int) *Table { return bias.NewTable2D(rows, rowLen) }
