// The wire front-end's cluster branch: the same ops as the single-engine
// path, routed through internal/cluster. Tokens widen to triples — a
// write's LSN list carries (global shard, lsn, epoch), a read presents
// MinLSN+Epoch back — and a write racing a failover answers
// StatusUnavailable (retry; the partition is promoting), the binary twin
// of the HTTP front-end's 503.
package kvserv

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"github.com/bravolock/bravo/internal/cluster"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/wire"
)

// serveClusterWireRequest serves one decoded request through the cluster:
// serveWireRequest's routing twin, same statuses and caps plus the
// epoch-aware token semantics. The response may alias sc; encode it before
// the next call.
func (s *Server) serveClusterWireRequest(reader *rwl.Reader, req *wire.Request, sc *wireScratch) wire.Response {
	resp := wire.Response{Op: req.Op, ID: req.ID}
	switch req.Op {
	case wire.OpGet:
		if !s.wireClusterToken(&resp, req, req.Key) {
			return resp
		}
		v, ok := s.clu.Get(reader, req.Key, sc.val[:0])
		if !ok {
			resp.Status = wire.StatusNotFound
			return resp
		}
		sc.val = v
		resp.Value = v

	case wire.OpMGet:
		if !s.wireClusterToken(&resp, req, req.Keys...) {
			return resp
		}
		resp.Values = s.clu.MultiGet(reader, req.Keys)

	case wire.OpPut:
		if len(req.Value) > MaxValueBytes {
			resp.Status = wire.StatusTooLarge
			resp.Msg = fmt.Sprintf("value exceeds %d bytes", MaxValueBytes)
			return resp
		}
		if req.Async {
			if req.TTL > 0 {
				resp.Status = wire.StatusBadRequest
				resp.Msg = "ttl and async are exclusive: the queue applies without TTL"
				return resp
			}
			// PutAsync keeps the value past the call; the decode buffer is
			// the connection's, so detach.
			if err := s.clu.PutAsync(req.Key, append([]byte(nil), req.Value...)); err != nil {
				wireClusterFailure(&resp, err)
			}
			return resp // no LSNs: the write has not applied yet
		}
		tok, err := s.clu.Put(req.Key, req.Value, req.TTL)
		if err != nil {
			wireClusterFailure(&resp, err)
			return resp
		}
		resp.LSNs = stampClusterToken(sc, tok)

	case wire.OpDelete:
		ok, tok, err := s.clu.Delete(req.Key)
		if err != nil {
			wireClusterFailure(&resp, err)
			return resp
		}
		resp.LSNs = stampClusterToken(sc, tok)
		if !ok {
			resp.Status = wire.StatusNotFound
		}

	case wire.OpMPut:
		for i, v := range req.Values {
			if len(v) > MaxValueBytes {
				resp.Status = wire.StatusTooLarge
				resp.Msg = fmt.Sprintf("entry %d: value exceeds %d bytes", i, MaxValueBytes)
				return resp
			}
		}
		toks, err := s.clu.MultiPut(req.Keys, req.Values, req.TTL)
		if err != nil {
			// Partial tokens are dropped with the error status: the client
			// retries the whole batch (idempotent puts) like HTTP's 503.
			wireClusterFailure(&resp, err)
			return resp
		}
		resp.Applied = uint32(len(req.Keys))
		resp.LSNs = stampClusterTokens(sc, toks)

	case wire.OpMDelete:
		removed, toks, err := s.clu.MultiDelete(req.Keys)
		if err != nil {
			wireClusterFailure(&resp, err)
			return resp
		}
		resp.Applied = uint32(removed)
		resp.LSNs = stampClusterTokens(sc, toks)

	case wire.OpCas:
		if len(req.Old) > MaxValueBytes || len(req.New) > MaxValueBytes {
			resp.Status = wire.StatusTooLarge
			resp.Msg = fmt.Sprintf("value exceeds %d bytes", MaxValueBytes)
			return resp
		}
		swapped, tok, err := s.clu.Cas(req.Key, req.Old, req.New)
		if err != nil {
			wireClusterFailure(&resp, err)
			return resp
		}
		resp.Swapped = swapped
		resp.LSNs = stampClusterToken(sc, tok)

	case wire.OpTxn:
		ct := &condTxn{
			conds: make([]txnCond, len(req.Conds)),
			ops:   make([]txnWireOp, len(req.TxnOps)),
		}
		for i, c := range req.Conds {
			if len(c.Value) > MaxValueBytes {
				resp.Status = wire.StatusTooLarge
				resp.Msg = fmt.Sprintf("cond %d: value exceeds %d bytes", i, MaxValueBytes)
				return resp
			}
			ct.conds[i] = txnCond{Key: c.Key, Value: c.Value}
		}
		for i, o := range req.TxnOps {
			if len(o.Value) > MaxValueBytes {
				resp.Status = wire.StatusTooLarge
				resp.Msg = fmt.Sprintf("op %d: value exceeds %d bytes", i, MaxValueBytes)
				return resp
			}
			ct.ops[i] = txnWireOp{del: o.Del, key: o.Key, val: o.Value, ttl: o.TTL}
		}
		// Cross-partition rejections ride wireClusterFailure's non-fenced
		// branch: StatusBadRequest, the binary twin of HTTP's 400.
		lsns, err := s.clu.Txn(ct.keys(), ct.body)
		if err != nil {
			wireClusterFailure(&resp, err)
			return resp
		}
		resp.Committed = ct.committed
		if !ct.committed {
			resp.Mismatch = ct.mismatch
		} else {
			resp.LSNs = stampClusterTokens(sc, lsns)
		}

	case wire.OpFlush:
		resp.Applied = uint32(s.clu.Flush())

	case wire.OpStats:
		buf := bytes.NewBuffer(sc.doc[:0])
		if err := json.NewEncoder(buf).Encode(s.buildStats()); err != nil {
			fmt.Fprintf(os.Stderr, "kvserv: stats marshal: %v\n", err)
			resp.Status = wire.StatusBadRequest
			resp.Msg = "stats marshal failed"
			return resp
		}
		sc.doc = buf.Bytes()
		resp.Stats = sc.doc[:len(sc.doc)-1]

	default:
		resp.Status = wire.StatusUnsupported
		resp.Msg = "unknown op"
	}
	return resp
}

// wireClusterFailure maps a cluster write error onto the wire: a fenced
// member racing failover answers StatusUnavailable (retry shortly).
func wireClusterFailure(resp *wire.Response, err error) {
	if errors.Is(err, cluster.ErrFenced) {
		resp.Status = wire.StatusUnavailable
	} else {
		resp.Status = wire.StatusBadRequest
	}
	resp.Msg = err.Error()
}

// wireClusterToken enforces a read's (MinLSN, Epoch) token through the
// cluster's epoch adjudication, mirroring honorClusterToken.
func (s *Server) wireClusterToken(resp *wire.Response, req *wire.Request, keys ...uint64) bool {
	terr := s.clu.CheckToken(req.Epoch, req.MinLSN, keys)
	if terr == nil {
		return true
	}
	if terr.Conflict {
		resp.Status = wire.StatusConflict
	} else {
		resp.Status = wire.StatusBadRequest
	}
	resp.Msg = terr.Msg
	return false
}

// stampClusterToken stamps one commit triple into the scratch LSN list.
func stampClusterToken(sc *wireScratch, tok cluster.ShardLSN) []wire.ShardLSN {
	sc.lsns = append(sc.lsns[:0], wire.ShardLSN{Shard: tok.Shard, LSN: tok.LSN, Epoch: tok.Epoch})
	return sc.lsns
}

// stampClusterTokens widens a batch's cluster tokens into the scratch list.
func stampClusterTokens(sc *wireScratch, toks []cluster.ShardLSN) []wire.ShardLSN {
	lsns := sc.lsns[:0]
	for _, t := range toks {
		lsns = append(lsns, wire.ShardLSN{Shard: t.Shard, LSN: t.LSN, Epoch: t.Epoch})
	}
	sc.lsns = lsns
	return lsns
}
