package kvserv

// End-to-end certification of the cluster front-ends: the same HTTP and
// wire surface as a single primary, backed by hash-routed partitioned
// primaries. Tokens widen to (epoch, shard, lsn) triples and survive a
// failover; POST /failover promotes over HTTP; a fenced primary answers
// 503 / StatusUnavailable on both faces.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/cluster"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/wire"
)

// startClusterServer boots a cluster-mode server (kvserv.NewClusterServer
// over cluster.Open) on a real TCP socket, mirroring cmd/kvserv -cluster.
func startClusterServer(t *testing.T, partitions, followers int) (*cluster.Cluster, *Server, string) {
	t.Helper()
	c, err := cluster.Open(cluster.Config{
		Partitions:    partitions,
		Shards:        4,
		Followers:     followers,
		Dir:           t.TempDir(),
		Policy:        kvs.SyncNone,
		RetryInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.Close()
		t.Fatal(err)
	}
	srv := NewClusterServer(c, Config{ReapInterval: -1})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != http.ErrServerClosed {
			t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
		}
		c.Close()
	})
	return c, srv, "http://" + l.Addr().String()
}

// commitHeaders pulls a cluster write's token triple off the response.
func commitHeaders(t *testing.T, resp *http.Response) (shard, lsn, epoch uint64) {
	t.Helper()
	for _, h := range []struct {
		name string
		dst  *uint64
	}{
		{"X-Commit-Shard", &shard}, {"X-Commit-Lsn", &lsn}, {"X-Commit-Epoch", &epoch},
	} {
		v := resp.Header.Get(h.name)
		if v == "" {
			t.Fatalf("write response missing %s", h.name)
		}
		if _, err := fmt.Sscan(v, h.dst); err != nil {
			t.Fatalf("bad %s %q: %v", h.name, v, err)
		}
	}
	return
}

func TestClusterHTTPEndToEnd(t *testing.T) {
	c, _, base := startClusterServer(t, 3, 1)

	// Writes spread across partitions; every token carries epoch 1.
	const n = 60
	tokens := map[uint64][2]uint64{} // key → (lsn, epoch)
	for k := uint64(0); k < n; k++ {
		resp, _ := do(t, http.MethodPut, fmt.Sprintf("%s/kv/%d", base, k), []byte(fmt.Sprintf("v%d", k)))
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("PUT %d: status %d", k, resp.StatusCode)
		}
		_, lsn, epoch := commitHeaders(t, resp)
		if epoch != 1 || lsn == 0 {
			t.Fatalf("PUT %d: token (lsn %d, epoch %d), want epoch 1 and nonzero lsn", k, lsn, epoch)
		}
		tokens[k] = [2]uint64{lsn, epoch}
	}

	// Token-gated read-your-writes on each key.
	for k := uint64(0); k < n; k++ {
		tok := tokens[k]
		resp, body := do(t, http.MethodGet, fmt.Sprintf("%s/kv/%d?min_lsn=%d&epoch=%d", base, k, tok[0], tok[1]), nil)
		if resp.StatusCode != http.StatusOK || string(body) != fmt.Sprintf("v%d", k) {
			t.Fatalf("GET %d: status %d body %q", k, resp.StatusCode, body)
		}
	}

	// MGET fans out across partitions.
	resp, body := do(t, http.MethodGet, base+"/mget?keys=0,1,2,3,4,5,6,7", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("MGET: status %d", resp.StatusCode)
	}
	var mg mgetResponse
	if err := json.Unmarshal(body, &mg); err != nil {
		t.Fatal(err)
	}
	if len(mg.Values) != 8 || string(mg.Values[3]) != "v3" {
		t.Fatalf("MGET values = %q", mg.Values)
	}

	// MPUT returns the token triple of every global shard touched.
	var sb strings.Builder
	sb.WriteString(`{"entries":[`)
	for i := 0; i < 10; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"key":%d,"value":"YmF0Y2g="}`, 100+i)
	}
	sb.WriteString(`]}`)
	resp, body = do(t, http.MethodPost, base+"/mput", []byte(sb.String()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("MPUT: status %d body %s", resp.StatusCode, body)
	}
	var mp struct {
		Applied int `json:"applied"`
		Commits []struct {
			Shard uint32 `json:"shard"`
			LSN   uint64 `json:"lsn"`
			Epoch uint64 `json:"epoch"`
		} `json:"commits"`
	}
	if err := json.Unmarshal(body, &mp); err != nil {
		t.Fatal(err)
	}
	if mp.Applied != 10 || len(mp.Commits) == 0 {
		t.Fatalf("MPUT applied %d, %d commits", mp.Applied, len(mp.Commits))
	}
	for _, cm := range mp.Commits {
		if cm.Epoch != 1 {
			t.Fatalf("MPUT commit epoch %d, want 1", cm.Epoch)
		}
	}

	// DELETE answers the token triple too; a second delete is a miss.
	resp, _ = do(t, http.MethodDelete, base+"/kv/100", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	if _, lsn, epoch := commitHeaders(t, resp); epoch != 1 || lsn == 0 {
		t.Fatalf("DELETE token (lsn %d, epoch %d)", lsn, epoch)
	}
	resp, _ = do(t, http.MethodDelete, base+"/kv/100", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE: status %d, want 404", resp.StatusCode)
	}

	// TTL and async writes route through the cluster like plain ones.
	resp, _ = do(t, http.MethodPut, base+"/kv/200?ttl=1h", []byte("expiring"))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("TTL PUT: status %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodPut, base+"/kv/201?async=1", []byte("queued"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async PUT: status %d, want 202", resp.StatusCode)
	}
	resp, body = do(t, http.MethodPost, base+"/flush", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: status %d", resp.StatusCode)
	}
	var fl map[string]int
	if err := json.Unmarshal(body, &fl); err != nil || fl["flushed"] < 1 {
		t.Fatalf("flush body %s (err %v), want flushed >= 1", body, err)
	}
	resp, body = do(t, http.MethodGet, base+"/kv/201", nil)
	if resp.StatusCode != http.StatusOK || string(body) != "queued" {
		t.Fatalf("GET after flush: status %d body %q", resp.StatusCode, body)
	}
	resp, _ = do(t, http.MethodPost, base+"/checkpoint", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d", resp.StatusCode)
	}

	// Malformed write options are refused before touching the engine.
	for _, bad := range []string{
		"/kv/1?async=maybe", "/kv/1?ttl=forever", "/kv/1?async=1&ttl=1s",
	} {
		resp, _ = do(t, http.MethodPut, base+bad, []byte("x"))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("PUT %s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	// So are malformed tokens.
	for _, bad := range []string{
		"/kv/1?min_lsn=abc", "/kv/1?min_lsn=1&epoch=xyz",
	} {
		resp, _ = do(t, http.MethodGet, base+bad, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// Stats exposes the per-partition topology.
	resp, body = do(t, http.MethodGet, base+"/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	var st struct {
		NumShards int `json:"num_shards"`
		Cluster   *struct {
			Partitions int `json:"partitions"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil || st.Cluster.Partitions != 3 {
		t.Fatalf("stats cluster section = %+v", st.Cluster)
	}

	// Graceful failover over HTTP: partition 1 bumps to epoch 2; epoch-1
	// tokens stay honored (zero-loss cut) and the keyspace is intact.
	if err := c.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	resp, body = do(t, http.MethodPost, base+"/failover/1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover: status %d body %s", resp.StatusCode, body)
	}
	var fo map[string]uint64
	if err := json.Unmarshal(body, &fo); err != nil {
		t.Fatal(err)
	}
	if fo["epoch"] != 2 {
		t.Fatalf("failover epoch = %d, want 2", fo["epoch"])
	}
	for k := uint64(0); k < n; k++ {
		tok := tokens[k]
		resp, body := do(t, http.MethodGet, fmt.Sprintf("%s/kv/%d?min_lsn=%d&epoch=%d", base, k, tok[0], tok[1]), nil)
		if resp.StatusCode != http.StatusOK || string(body) != fmt.Sprintf("v%d", k) {
			t.Fatalf("post-failover GET %d: status %d body %q", k, resp.StatusCode, body)
		}
	}

	// A token claiming a future epoch is malformed, not a conflict.
	resp, _ = do(t, http.MethodGet, base+"/kv/1?min_lsn=1&epoch=99", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("future-epoch token: status %d, want 400", resp.StatusCode)
	}
	// Bad partition numbers are rejected.
	resp, _ = do(t, http.MethodPost, base+"/failover/9", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("failover/9: status %d, want 400", resp.StatusCode)
	}

	// Fence a live primary out from under the router (a deposed primary
	// that hasn't been swapped yet): routed writes answer 503, retryable.
	pi := c.Partition(0)
	c.Member(pi).Fence()
	resp, _ = do(t, http.MethodPut, base+"/kv/0", []byte("stale"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fenced PUT: status %d, want 503", resp.StatusCode)
	}
}

func TestClusterWireEndToEnd(t *testing.T) {
	c, srv, _ := startClusterServer(t, 3, 1)
	wc := wire.NewClient(addWireListener(t, srv), time.Second)
	defer wc.Close()

	// Single put: one (global shard, lsn, epoch) triple.
	lsns, err := wc.Put(42, []byte("hello"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 1 || lsns[0].LSN == 0 || lsns[0].Epoch != 1 {
		t.Fatalf("cluster wire PUT tokens = %v, want one epoch-1 triple", lsns)
	}
	tok := lsns[0]
	v, ok, err := wc.GetWithToken(42, tok.LSN, tok.Epoch)
	if err != nil || !ok || string(v) != "hello" {
		t.Fatalf("GetWithToken = %q, %v, %v", v, ok, err)
	}

	// Batch ops fan out per partition; the epoch list survives the wire.
	keys := make([]uint64, 24)
	vals := make([][]byte, 24)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = []byte(fmt.Sprintf("b%d", i))
	}
	toks, err := wc.MPut(keys, vals, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) == 0 {
		t.Fatal("cluster wire MPUT returned no tokens")
	}
	minLSN := toks[0].LSN
	for _, l := range toks {
		if l.Epoch != 1 {
			t.Fatalf("MPUT token epoch = %d, want 1", l.Epoch)
		}
		if l.LSN < minLSN {
			minLSN = l.LSN
		}
	}
	got, err := wc.MGetWithToken(keys, minLSN, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if string(got[i]) != string(vals[i]) {
			t.Fatalf("MGET[%d] = %q, want %q", i, got[i], vals[i])
		}
	}

	// Delete answers a token triple; a second delete is a clean miss.
	toksD, ok2, err := wc.Delete(5)
	if err != nil || !ok2 || len(toksD) != 1 || toksD[0].Epoch != 1 {
		t.Fatalf("Delete(5) = %v, %v, %v", toksD, ok2, err)
	}
	if _, ok2, err = wc.Delete(5); err != nil || ok2 {
		t.Fatalf("second Delete(5) = %v, %v; want a miss", ok2, err)
	}
	removed, _, err := wc.MDelete(keys[10:14])
	if err != nil || removed != 4 {
		t.Fatalf("MDelete = %d, %v; want 4 removed", removed, err)
	}

	// Async put has no token until Flush applies it.
	lsnsA, err := wc.Put(80, []byte("queued"), 0, true)
	if err != nil || len(lsnsA) != 0 {
		t.Fatalf("async Put = %v, %v; want no tokens yet", lsnsA, err)
	}
	applied, err := wc.Flush()
	if err != nil || applied < 1 {
		t.Fatalf("Flush = %d, %v", applied, err)
	}
	if v, ok, err := wc.Get(80, 0); err != nil || !ok || string(v) != "queued" {
		t.Fatalf("Get after flush = %q, %v, %v", v, ok, err)
	}
	// ttl and async stay exclusive through the cluster branch too.
	if _, err := wc.Put(81, []byte("x"), time.Hour, true); err == nil {
		t.Fatal("async+ttl Put accepted")
	} else if se, okErr := err.(*wire.StatusError); !okErr || se.Status != wire.StatusBadRequest {
		t.Fatalf("async+ttl Put error = %v, want StatusBadRequest", err)
	}
	// A future-epoch token is malformed on the wire as well.
	if _, _, err := wc.GetWithToken(42, 1, 99); err == nil {
		t.Fatal("future-epoch token accepted")
	} else if se, okErr := err.(*wire.StatusError); !okErr || se.Status != wire.StatusBadRequest {
		t.Fatalf("future-epoch token error = %v, want StatusBadRequest", err)
	}

	// Stats over the wire carries the cluster document.
	doc, err := wc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(doc), `"cluster"`) {
		t.Fatalf("wire stats missing cluster section: %s", doc)
	}

	// Failover: new writes carry epoch 2; the epoch-1 token is still
	// honored after a graceful cut.
	if err := c.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	pi := c.Partition(42)
	if _, err := c.Failover(pi); err != nil {
		t.Fatal(err)
	}
	lsns2, err := wc.Put(42, []byte("hello2"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(lsns2) != 1 || lsns2[0].Epoch != 2 {
		t.Fatalf("post-failover PUT tokens = %v, want epoch 2", lsns2)
	}
	v, ok, err = wc.GetWithToken(42, tok.LSN, tok.Epoch)
	if err != nil || !ok || string(v) != "hello2" {
		t.Fatalf("stale-epoch GetWithToken = %q, %v, %v", v, ok, err)
	}

	// A fenced primary still in the routing table: StatusUnavailable.
	c.Member(pi).Fence()
	if _, err := wc.Put(42, []byte("stale"), 0, false); err == nil {
		t.Fatal("fenced wire PUT succeeded")
	} else if se, okErr := err.(*wire.StatusError); !okErr || se.Status != wire.StatusUnavailable {
		t.Fatalf("fenced wire PUT error = %v, want StatusUnavailable", err)
	}
}
