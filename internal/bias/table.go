// Package bias implements the reusable BRAVO biasing protocol (paper §3,
// Listing 1): the RBias word, the visible readers table with its
// publish/recheck/undo fast path and revocation scan, the bias-enabling
// policies with their inhibit arbitration, the optional event counters, and
// the per-goroutine reader handles that cache table slots.
//
// The package is the single home of the protocol. Lock implementations —
// the user-space wrapper (internal/core) and the kernel rwsem analogue
// (internal/rwsem) — embed an Engine and keep only their substrate-specific
// acquisition order around it; neither carries a private copy of the
// rbias/inhibit/revocation logic.
package bias

import (
	"fmt"
	"sync/atomic"

	"github.com/bravolock/bravo/internal/hash"
	"github.com/bravolock/bravo/internal/spin"
)

// DefaultTableSize is the paper's table size: "In all our experiments we
// sized the table at 4096 entries" (§3). With 8-byte slots the footprint is
// 32KB, shared by every lock and thread in the address space.
const DefaultTableSize = 4096

// DefaultRowLen is the BRAVO-2D sector length: the paper's preferred
// embodiment partitions the table into contiguous rows of 256 slots aligned
// on cache-sector boundaries (§7).
const DefaultRowLen = 256

// Table is a visible readers table. Each slot is either zero or the
// identity of a reader-held BRAVO lock. Slots are deliberately unpadded
// 8-byte words, as in the paper: near-collision false sharing is part of
// the design's cost model, and the 2D layout exists to mitigate it.
//
// Slot values are lock identities (addresses) used only for equality
// comparison, never dereferenced, so a Table never keeps a lock alive nor
// touches freed memory: a slot holds a lock's identity only while a reader
// is inside that lock's critical section, which implies the lock is live.
type Table struct {
	slots []atomic.Uintptr
	// gens counts, per slot, the number of times the slot has been emptied.
	// A publication captures the current count; the owned clear verifies it
	// and bumps it. Because every id→0 transition bumps the count, a token
	// from an earlier publication can never pass the check again — a double
	// RUnlock panics deterministically even if another reader of the same
	// lock has since republished in the slot (the ABA case a bare slot
	// compare cannot see). See ClearOwned.
	gens []atomic.Uint32
	mask uint32
	// rows/rowLen describe the 2D sectored geometry; rows == 0 means the
	// flat 1D layout of Listing 1.
	rows   uint32
	rowLen uint32
}

// shared is the process-wide default table (Listing 1's VisibleReaders).
var shared = NewTable(DefaultTableSize)

// SharedTable returns the process-wide visible readers table that locks use
// unless configured otherwise.
func SharedTable() *Table { return shared }

// NewTable returns a flat (1D) visible readers table with size slots.
// size must be a positive power of two.
func NewTable(size int) *Table {
	if size <= 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("bias: table size %d is not a positive power of two", size))
	}
	return &Table{
		slots: make([]atomic.Uintptr, size),
		gens:  make([]atomic.Uint32, size),
		mask:  uint32(size - 1),
	}
}

// NewTable2D returns a BRAVO-2D sectored table with rows rows of rowLen
// slots each. Readers select a row by CPU identity and a column by lock
// hash; revocation scans a single column. Both dimensions must be positive
// powers of two.
func NewTable2D(rows, rowLen int) *Table {
	if rows <= 0 || rows&(rows-1) != 0 || rowLen <= 0 || rowLen&(rowLen-1) != 0 {
		panic(fmt.Sprintf("bias: 2D table geometry %dx%d is not power-of-two", rows, rowLen))
	}
	return &Table{
		slots:  make([]atomic.Uintptr, rows*rowLen),
		gens:   make([]atomic.Uint32, rows*rowLen),
		mask:   uint32(rows*rowLen - 1),
		rows:   uint32(rows),
		rowLen: uint32(rowLen),
	}
}

// Size returns the number of slots.
func (t *Table) Size() int { return len(t.slots) }

// Sectored reports whether the table uses the BRAVO-2D layout.
func (t *Table) Sectored() bool { return t.rows != 0 }

// Index maps (lock identity, reader identity) to a slot index — the
// Hash(L, Self) of Listing 1 line 13.
func (t *Table) Index(lockID uintptr, selfID uint64) uint32 {
	if t.rows != 0 {
		// BRAVO-2D: the caller's CPU picks the row, the lock picks the
		// column (§7: "use the caller's CPUID to identify a sector, and
		// then a hash function on the lock address to identify a slot
		// within that sector").
		row := uint32(hash.Mix64(selfID)) & (t.rows - 1)
		col := t.column(lockID)
		return row*t.rowLen + col
	}
	return hash.Index(lockID, selfID, uint32(len(t.slots)))
}

// Index2 is the secondary probe (double-probing fast-path extension).
func (t *Table) Index2(lockID uintptr, selfID uint64) uint32 {
	if t.rows != 0 {
		// Within 2D mode, re-probe a different row of the same column so
		// that column-restricted revocation still finds the entry.
		row := uint32(hash.Mix64(selfID^0x9e3779b97f4a7c15)) & (t.rows - 1)
		return row*t.rowLen + t.column(lockID)
	}
	return hash.Index2(lockID, selfID, uint32(len(t.slots)))
}

// column returns the 2D column assigned to a lock.
func (t *Table) column(lockID uintptr) uint32 {
	return hash.Mix32(uint32(uint64(lockID)>>4)) & (t.rowLen - 1)
}

// TryPublishAt attempts to install id into slot idx, returning the slot's
// current generation and whether publication succeeded. The CAS is the fast
// path's single atomic (Listing 1 line 14) — and, with a slot index cached
// on a reader handle, the entire steady-state fast-path cost; the
// generation load that follows it is an uncontended read of the same cache
// line. The generation must travel with the acquisition and be handed to
// ClearOwned at unlock.
//
// Ordering: the generation is read after the CAS. Generations change only
// on id→0 slot transitions (ClearOwned/Clear bump before emptying), so no
// bump can land between a winning CAS and the load — a successful publisher
// always captures the generation its eventual clear will verify.
func (t *Table) TryPublishAt(idx uint32, id uintptr) (gen uint32, ok bool) {
	if !t.slots[idx].CompareAndSwap(0, id) {
		return 0, false
	}
	return t.gens[idx].Load(), true
}

// TryPublish hashes (id, self) into a slot and attempts to install id,
// returning the chosen index, the captured generation, and whether
// publication succeeded.
func (t *Table) TryPublish(id uintptr, self uint64) (idx, gen uint32, ok bool) {
	idx = t.Index(id, self)
	gen, ok = t.TryPublishAt(idx, id)
	return idx, gen, ok
}

// ClearOwned empties slot idx on behalf of the reader that published id
// there and captured gen — the always-on unbalanced-unlock guard (Shahare &
// Chabbi's owner check, applied to BRAVO's slot-passing unlock). It panics
// when the release is not the one matching the publication:
//
//   - slot no longer holds id: double unlock (a prior release already
//     emptied it), unlock without lock, or an unlock aimed at the wrong
//     lock's acquisition;
//   - generation moved on: the slot holds id again, but from a *newer*
//     publication — a stale token's second unlock. The holder's own first
//     ClearOwned bumped the generation, so the second attempt can never
//     match, no matter what published in between.
//
// The bump is ordered before the store that empties the slot, so any
// publisher whose CAS wins afterwards observes the bumped generation
// (seq-cst atomics): a fresh token never inherits a stale generation, and
// the guard has no false positives — only the true owner, exactly once,
// passes both checks.
func (t *Table) ClearOwned(idx, gen uint32, id uintptr) {
	if t.slots[idx].Load() != id {
		panic("bias: unbalanced fast-path RUnlock (double unlock, unlock without lock, or wrong lock)")
	}
	if t.gens[idx].Load()&genMask != gen&genMask {
		panic("bias: unbalanced fast-path RUnlock (stale read token)")
	}
	t.gens[idx].Add(1)
	t.slots[idx].Store(0)
}

// Clear empties slot idx unconditionally (Listing 1 line 31, without the
// ownership check). Test and diagnostic hook; production unlock paths go
// through ClearOwned. It preserves the generation invariant — every id→0
// transition bumps — so tokens spanning a forced clear are correctly
// detected as stale.
func (t *Table) Clear(idx uint32) {
	t.gens[idx].Add(1)
	t.slots[idx].Store(0)
}

// Load returns the current occupant of slot idx (testing/diagnostics).
func (t *Table) Load(idx uint32) uintptr {
	return t.slots[idx].Load()
}

// WaitEmpty performs the revocation scan: it visits every slot that could
// hold id (all slots in 1D mode, one column in 2D mode) and waits for any
// matching slot to drain (Listing 1 lines 42–44). It returns the number of
// slots scanned and the number of conflicting fast-path readers awaited.
func (t *Table) WaitEmpty(id uintptr) (scanned, conflicts int) {
	if t.rows != 0 {
		col := t.column(id)
		for row := uint32(0); row < t.rows; row++ {
			idx := row*t.rowLen + col
			scanned++
			if t.slots[idx].Load() == id {
				conflicts++
				var b spin.Backoff
				for t.slots[idx].Load() == id {
					b.Once()
				}
			}
		}
		return scanned, conflicts
	}
	for i := range t.slots {
		scanned++
		if t.slots[i].Load() == id {
			conflicts++
			var b spin.Backoff
			for t.slots[i].Load() == id {
				b.Once()
			}
		}
	}
	return scanned, conflicts
}

// Occupancy returns the number of non-empty slots; used to validate the
// balls-into-bins occupancy model.
func (t *Table) Occupancy() int {
	n := 0
	for i := range t.slots {
		if t.slots[i].Load() != 0 {
			n++
		}
	}
	return n
}
