package kvs

// Tests for per-shard adaptive biasing: the feedback loop from the shard op
// counters through bias.Adaptor into the lock mode, the ShardStats
// bias_mode/bias_flips surface, and the coherence of those stats under
// concurrent flips.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/bravolock/bravo/internal/bias"
	"github.com/bravolock/bravo/internal/xrand"
)

// smallWindow makes the feedback loop observable in a fast test: windows
// close every 512 ops instead of 4096.
func smallWindow() bias.Thresholds {
	th := bias.DefaultThresholds()
	th.Window = 512
	return th
}

func TestShardedAdaptiveCapability(t *testing.T) {
	plain, err := NewSharded(4, mkBravo)
	if err != nil {
		t.Fatal(err)
	}
	if plain.AdaptiveCapable() {
		t.Fatal("plain BRAVO engine claims adaptive capability")
	}
	// Setters are safe no-ops, and stats omit the bias fields.
	plain.SetAdaptive(true)
	plain.SetAdaptiveThresholds(smallWindow())
	plain.Put(1, EncodeValue(1))
	if st := plain.Stats().Shards[0]; st.BiasMode != "" || st.BiasFlips != 0 {
		t.Fatalf("non-adaptive stats carry bias fields: %q/%d", st.BiasMode, st.BiasFlips)
	}

	ad, err := NewSharded(4, mkAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	if !ad.AdaptiveCapable() {
		t.Fatal("adaptive engine does not report adaptive capability")
	}
	for i := 0; i < ad.NumShards(); i++ {
		if ad.ShardAdaptor(i) == nil {
			t.Fatalf("shard %d has no adaptor", i)
		}
	}
	if st := ad.Stats().Shards[0]; st.BiasMode != "biased" {
		t.Fatalf("initial bias_mode = %q, want biased", st.BiasMode)
	}
}

// TestShardedAdaptiveAutoFlips drives the closed loop end to end: a
// write-heavy phase must demote shards off biased mode purely from the op
// counters, and a read-heavy phase must promote them back.
func TestShardedAdaptiveAutoFlips(t *testing.T) {
	s, err := NewSharded(4, mkAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	s.SetAdaptiveThresholds(smallWindow())
	// Reads must reach the shard counters either way; seq reads do (the
	// counters tick outside the lock), so leave the default read path on.
	const keys = 256
	for k := uint64(0); k < keys; k++ {
		s.Put(k, EncodeValue(k))
	}

	// Write-heavy storm: every shard's windows are write-dominated.
	rng := xrand.NewXorShift64(1)
	for i := 0; i < 20000; i++ {
		s.Put(rng.Intn(keys), EncodeValue(rng.Next()))
	}
	for i := 0; i < s.NumShards(); i++ {
		if m := s.ShardAdaptor(i).Mode(); m != bias.ModeFair {
			t.Fatalf("shard %d after write storm: mode = %v, want fair", i, m)
		}
	}
	st := s.Stats().Total()
	if st.BiasMode != "fair" || st.BiasFlips == 0 {
		t.Fatalf("stats after write storm: mode %q flips %d", st.BiasMode, st.BiasFlips)
	}

	// Read-heavy phase: shards promote back to biased.
	for i := 0; i < 20000; i++ {
		s.Get(rng.Intn(keys))
	}
	for i := 0; i < s.NumShards(); i++ {
		if m := s.ShardAdaptor(i).Mode(); m != bias.ModeBiased {
			t.Fatalf("shard %d after read phase: mode = %v, want biased", i, m)
		}
	}

	// SetAdaptive(false) pins every shard to biased and freezes the loop.
	s.SetAdaptive(false)
	for i := 0; i < 20000; i++ {
		s.Put(rng.Intn(keys), EncodeValue(rng.Next()))
	}
	for i := 0; i < s.NumShards(); i++ {
		if m := s.ShardAdaptor(i).Mode(); m != bias.ModeBiased {
			t.Fatalf("shard %d flipped to %v while adaptivity is off", i, m)
		}
	}
}

// TestShardedPerShardDivergence is the case a global policy cannot express:
// reads everywhere, writes concentrated on one shard — that shard demotes
// while the others stay biased, and Total reports "mixed".
func TestShardedPerShardDivergence(t *testing.T) {
	s, err := NewSharded(4, mkAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	s.SetAdaptiveThresholds(smallWindow())
	// Find keys per shard.
	perShard := make([][]uint64, s.NumShards())
	for k := uint64(0); len(perShard[0]) < 64 || len(perShard[1]) < 64 ||
		len(perShard[2]) < 64 || len(perShard[3]) < 64; k++ {
		sh := s.ShardOf(k)
		if len(perShard[sh]) < 64 {
			perShard[sh] = append(perShard[sh], k)
		}
	}
	rng := xrand.NewXorShift64(2)
	for i := 0; i < 40000; i++ {
		sh := int(rng.Intn(4))
		ks := perShard[sh]
		k := ks[rng.Intn(uint64(len(ks)))]
		if sh == 0 {
			s.Put(k, EncodeValue(rng.Next())) // hot write shard
		} else {
			s.Get(k)
		}
	}
	if m := s.ShardAdaptor(0).Mode(); m != bias.ModeFair {
		t.Fatalf("hot write shard: mode = %v, want fair", m)
	}
	for i := 1; i < 4; i++ {
		if m := s.ShardAdaptor(i).Mode(); m != bias.ModeBiased {
			t.Fatalf("read shard %d demoted to %v", i, m)
		}
	}
	if st := s.Stats().Total(); st.BiasMode != "mixed" {
		t.Fatalf("total bias_mode = %q, want mixed", st.BiasMode)
	}
}

// TestShardedStatsCoherentUnderFlips hammers Stats() while a flipper forces
// modes and writers/readers run: every reported mode must be a real mode
// name, and per-shard flip counts must be monotonic across snapshots (a
// torn mode/flips pairing could violate monotonicity by pairing an old
// flips value with a new row).
func TestShardedStatsCoherentUnderFlips(t *testing.T) {
	s, err := NewSharded(4, mkAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{"biased": true, "neutral": true, "fair": true}
	var stop atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // flipper
		defer wg.Done()
		modes := [...]bias.Mode{bias.ModeFair, bias.ModeNeutral, bias.ModeBiased}
		for i := 0; !stop.Load(); i++ {
			s.ShardAdaptor(i % 4).ForceMode(modes[i%len(modes)])
			runtime.Gosched()
		}
	}()
	wg.Add(1)
	go func() { // traffic: seq readers and writers crossing flips
		defer wg.Done()
		rng := xrand.NewXorShift64(3)
		for i := 0; !stop.Load(); i++ {
			k := rng.Intn(512)
			if i%4 == 0 {
				s.Put(k, EncodeValue(rng.Next()))
			} else {
				s.Get(k)
			}
		}
	}()

	last := make([]uint64, 4)
	for snap := 0; snap < 2000; snap++ {
		st := s.Stats()
		for i, row := range st.Shards {
			if !valid[row.BiasMode] {
				t.Fatalf("snapshot %d shard %d: impossible bias_mode %q", snap, i, row.BiasMode)
			}
			if row.BiasFlips < last[i] {
				t.Fatalf("snapshot %d shard %d: flips went backwards %d -> %d",
					snap, i, last[i], row.BiasFlips)
			}
			last[i] = row.BiasFlips
		}
	}
	stop.Store(true)
	wg.Wait()
}
