package bias

import (
	"testing"
)

// biasedEngine returns an engine with bias enabled on a private table.
func biasedEngine(t *testing.T, opts ...func(*Engine)) (*Engine, *Stats) {
	t.Helper()
	e, st := newEngine(AlwaysPolicy{}, opts...)
	e.MaybeEnable()
	if !e.Enabled() {
		t.Fatal("setup: bias not enabled")
	}
	return e, st
}

func TestReaderSteadyStateUsesCachedSlot(t *testing.T) {
	e, st := biasedEngine(t)
	r := NewReaderWithID(77)
	home := e.table.Index(e.ID(), 77)
	for i := 0; i < 100; i++ {
		idx, ok := e.TryFastH(r)
		if !ok {
			t.Fatalf("iteration %d: fast path failed", i)
		}
		if idx.Index() != home {
			t.Fatalf("iteration %d: slot %d, want cached home %d", i, idx.Index(), home)
		}
		e.ReleaseFastAt(r, idx)
	}
	if st.FastRead.Load() != 100 {
		t.Fatalf("want 100 fast reads: %s", st.Snapshot())
	}
	if slot, diverted, ok := r.CachedSlot(e); !ok || diverted || slot != home {
		t.Fatalf("cache entry wrong: slot=%d diverted=%v ok=%v", slot, diverted, ok)
	}
	if e.table.Occupancy() != 0 {
		t.Fatal("table dirty after balanced handle reads")
	}
}

func TestReaderCollisionMemorySkipsDoomedCAS(t *testing.T) {
	e, st := biasedEngine(t)
	r := NewReaderWithID(77)
	home := e.table.Index(e.ID(), 77)
	// A foreign occupant camps on the home slot.
	if _, ok := e.table.TryPublishAt(home, uintptr(0xF00D0)); !ok {
		t.Fatal("setup publish failed")
	}
	if _, ok := e.TryFastH(r); ok {
		t.Fatal("fast path succeeded on an occupied slot")
	}
	if st.SlowCollision.Load() != 1 {
		t.Fatalf("collision not counted: %s", st.Snapshot())
	}
	if _, diverted, ok := r.CachedSlot(e); !ok || !diverted {
		t.Fatal("collision not remembered on the handle")
	}
	// Same epoch: the handle must not retry (still one collision counted
	// per attempt, but the table word is never CASed — verified by the
	// divert flag staying set even after the occupant leaves).
	e.table.Clear(home)
	if _, ok := e.TryFastH(r); ok {
		t.Fatal("diverted reader retried home slot without a bias flip")
	}
	if st.SlowCollision.Load() != 2 {
		t.Fatalf("remembered collision not counted: %s", st.Snapshot())
	}
	// Bias flips (revoke, then a slow reader re-enables): the reader
	// retries its home slot and recovers the fast path.
	e.Revoke()
	e.MaybeEnable()
	idx, ok := e.TryFastH(r)
	if !ok || idx.Index() != home {
		t.Fatalf("reader did not reclaim home slot after bias flip: ok=%v idx=%d", ok, idx.Index())
	}
	e.ReleaseFastAt(r, idx)
}

func TestReaderSecondProbeCachesAlternate(t *testing.T) {
	e, st := biasedEngine(t, func(e *Engine) { e.SetSecondProbe() })
	// Choose an identity whose probes differ.
	id := uint64(0)
	for ; id < 1000; id++ {
		if e.table.Index(e.ID(), id) != e.table.Index2(e.ID(), id) {
			break
		}
	}
	r := NewReaderWithID(id)
	home := e.table.Index(e.ID(), id)
	alt := e.table.Index2(e.ID(), id)
	if _, ok := e.table.TryPublishAt(home, uintptr(0xF00D0)); !ok {
		t.Fatal("setup publish failed")
	}
	idx, ok := e.TryFastH(r)
	if !ok || idx.Index() != alt {
		t.Fatalf("second probe did not rescue: ok=%v idx=%d want %d (%s)", ok, idx.Index(), alt, st.Snapshot())
	}
	e.ReleaseFastAt(r, idx)
	// The alternate is now the cached slot: with the home still occupied,
	// the steady state hits it directly.
	idx, ok = e.TryFastH(r)
	if !ok || idx.Index() != alt {
		t.Fatalf("alternate slot not cached: ok=%v idx=%d want %d", ok, idx.Index(), alt)
	}
	e.ReleaseFastAt(r, idx)
	e.table.Clear(home)
}

func TestReaderReclaimsHomeWhenCachedAlternateCollides(t *testing.T) {
	// Regression: after a second-probe rescue the handle caches the
	// alternate slot; if that later collides while the home slot is free,
	// the handle must fall back to the home probe rather than diverting
	// (the anonymous path would succeed there).
	e, _ := biasedEngine(t, func(e *Engine) { e.SetSecondProbe() })
	id := uint64(0)
	for ; id < 1000; id++ {
		if e.table.Index(e.ID(), id) != e.table.Index2(e.ID(), id) {
			break
		}
	}
	r := NewReaderWithID(id)
	home := e.table.Index(e.ID(), id)
	alt := e.table.Index2(e.ID(), id)
	if _, ok := e.table.TryPublishAt(home, uintptr(0xF00D0)); !ok {
		t.Fatal("setup publish failed")
	}
	idx, ok := e.TryFastH(r) // rescued at the alternate; alt becomes cached
	if !ok || idx.Index() != alt {
		t.Fatalf("setup rescue failed: ok=%v idx=%d", ok, idx.Index())
	}
	e.ReleaseFastAt(r, idx)
	e.table.Clear(home)
	if _, ok := e.table.TryPublishAt(alt, uintptr(0xBEEF0)); !ok {
		t.Fatal("setup alt publish failed")
	}
	idx, ok = e.TryFastH(r)
	if !ok || idx.Index() != home {
		t.Fatalf("handle did not reclaim free home slot: ok=%v idx=%d want %d", ok, idx.Index(), home)
	}
	e.ReleaseFastAt(r, idx)
	e.table.Clear(alt)
}

func TestReaderReentrantReadDiverts(t *testing.T) {
	e, st := biasedEngine(t)
	r := NewReaderWithID(9)
	idx, ok := e.TryFastH(r)
	if !ok {
		t.Fatal("first acquisition not fast")
	}
	if _, ok := e.TryFastH(r); ok {
		t.Fatal("reentrant acquisition took the fast path (ambiguous bookkeeping)")
	}
	if st.SlowHandle.Load() != 1 {
		t.Fatalf("reentrant diversion not counted: %s", st.Snapshot())
	}
	e.ReleaseFastAt(r, idx)
}

func TestReaderHeldOverflowDiverts(t *testing.T) {
	tab := NewTable(DefaultTableSize)
	r := NewReader()
	engines := make([]*Engine, ReaderSlots+2)
	for i := range engines {
		e := &Engine{}
		e.SetTable(tab)
		e.SetPolicy(AlwaysPolicy{})
		e.Init()
		e.MaybeEnable()
		engines[i] = e
	}
	for _, e := range engines {
		e.TryFastH(r)
	}
	if r.Held() != ReaderSlots {
		t.Fatalf("held = %d, want %d", r.Held(), ReaderSlots)
	}
	for _, e := range engines {
		e.ReleaseFast(r)
	}
	if r.Held() != 0 || tab.Occupancy() != 0 {
		t.Fatalf("release pairing broken: held=%d occupancy=%d", r.Held(), tab.Occupancy())
	}
}

func TestReaderEvictionPrefersUnpinned(t *testing.T) {
	tab := NewTable(DefaultTableSize)
	r := NewReader()
	mk := func() *Engine {
		e := &Engine{}
		e.SetTable(tab)
		e.SetPolicy(AlwaysPolicy{})
		e.Init()
		e.MaybeEnable()
		return e
	}
	// Hold one engine fast, then roll many others through the cache.
	held := mk()
	heldIdx, ok := held.TryFastH(r)
	if !ok {
		t.Fatal("setup hold failed")
	}
	for i := 0; i < 4*ReaderSlots; i++ {
		e := mk()
		idx, ok := e.TryFastH(r)
		if !ok {
			t.Fatalf("churn engine %d diverted", i)
		}
		e.ReleaseFastAt(r, idx)
	}
	// The pinned entry must have survived every eviction.
	if slot, _, ok := r.CachedSlot(held); !ok || slot != heldIdx.Index() {
		t.Fatal("eviction displaced a held entry")
	}
	held.ReleaseFastAt(r, heldIdx)
}

func TestReaderUnbalancedFastReleasePanics(t *testing.T) {
	e, _ := biasedEngine(t)
	r := NewReaderWithID(5)
	idx, ok := e.TryFastH(r)
	if !ok {
		t.Fatal("setup acquisition failed")
	}
	e.ReleaseFastAt(r, idx)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double fast release did not panic")
			}
		}()
		e.ReleaseFastAt(r, idx)
	}()
	// Release without any acquisition on a fresh handle.
	fresh := NewReaderWithID(6)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("release-without-acquire did not panic")
			}
		}()
		e.ReleaseFastAt(fresh, 0)
	}()
}

func TestReaderSlowHoldAccounting(t *testing.T) {
	e, _ := newEngine(NeverPolicy{}) // all reads slow
	r := NewReaderWithID(5)
	e.SlowLockedH(r)
	e.SlowLockedH(r)
	e.SlowUnlockedH(r)
	e.SlowUnlockedH(r)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unbalanced slow release did not panic")
			}
		}()
		e.SlowUnlockedH(r)
	}()
}

func TestReaderUntrackedSlowHoldsNeverFalsePanic(t *testing.T) {
	// Pin the whole cache with fast holds, then take slow acquisitions that
	// cannot be tracked; their releases must drain silently.
	tab := NewTable(DefaultTableSize)
	r := NewReader()
	mk := func() *Engine {
		e := &Engine{}
		e.SetTable(tab)
		e.SetPolicy(AlwaysPolicy{})
		e.Init()
		e.MaybeEnable()
		return e
	}
	pinned := make([]*Engine, ReaderSlots)
	for i := range pinned {
		pinned[i] = mk()
		if _, ok := pinned[i].TryFastH(r); !ok {
			t.Fatalf("pin %d failed", i)
		}
	}
	extra := mk()
	extra.SlowLockedH(r) // untrackable: every entry pinned
	extra.SlowUnlockedH(r)
	for _, e := range pinned {
		e.ReleaseFast(r)
	}
}

func TestReaderRandomizedEngineStillTracksHolds(t *testing.T) {
	e, _ := biasedEngine(t, func(e *Engine) { e.SetRandomizedIndex() })
	r := NewReaderWithID(3)
	idx, ok := e.TryFastH(r)
	if !ok {
		t.Fatal("randomized handle read diverted on an empty table")
	}
	if r.Held() != 1 {
		t.Fatal("randomized hold not recorded")
	}
	e.ReleaseFastAt(r, idx)
	if r.Held() != 0 || e.table.Occupancy() != 0 {
		t.Fatal("randomized release broken")
	}
}
