// Package repl replicates the durable sharded KV engine: a primary streams
// its per-shard, LSN-stamped write-ahead log over HTTP to read-only
// followers, which apply it through the engine's ordinary write path into
// volatile replicas serving the same BRAVO-biased read fast paths.
//
// This is the macro version of BRAVO's bet. BRAVO scales reads by letting
// them publish into cheap distributed slots while writers pay a bounded
// revocation tax; a replicated deployment scales reads by fanning them out
// to follower processes while every write serializes through the primary's
// narrow WAL. The stream rides the log the durability layer already
// writes: frames on the wire are the WAL's CRC-framed records, verbatim,
// so the replication encoder/decoder IS the recovery encoder/decoder.
//
// Protocol (per shard; shards replicate independently):
//
//	GET /repl/stream?shard=S&from=L   chunked octet stream of records with
//	                                  LSN >= L, then live tailing. If L was
//	                                  checkpointed out of the log the
//	                                  primary interposes one snapshot frame
//	                                  (full shard state at its LSN) and
//	                                  continues past it.
//	GET /repl/status                  JSON Status: shard count, per-shard
//	                                  applied LSNs, durability posture.
//
// A follower's position is one number per shard: the LSN of the last
// record it applied. Resume is "from = applied+1"; the primary decides
// whether that is a tail read or a snapshot resync. Records apply in LSN
// order, exactly once — the follower skips duplicates (a reconnect replays
// the boundary record) and treats any forward gap as a protocol error that
// forces a reconnect, which self-heals through the snapshot path.
package repl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/bravolock/bravo/internal/kvs"
)

// DefaultPoll is how often a caught-up stream checks the log for new
// records. A caught-up poll is one generation load plus an empty file
// read, so the interval can be tight; it bounds the idle component of
// replication lag.
const DefaultPoll = 2 * time.Millisecond

// DefaultChunk bounds the framed bytes per stream write.
const DefaultChunk = 256 << 10

// Status is /repl/status: the primary's replication posture. Followers
// fetch it at Open to size their engine and at runtime to compute lag.
type Status struct {
	Shards     int    `json:"shards"`
	Durable    bool   `json:"durable"`
	SyncPolicy string `json:"sync_policy,omitempty"`
	// LSNs is the applied LSN per shard: what a follower at the same
	// numbers has fully caught up to.
	LSNs []uint64 `json:"lsns"`
	// Stream-side counters, aggregated over all streams ever served.
	ActiveStreams    int64  `json:"active_streams"`
	RecordsShipped   uint64 `json:"records_shipped"`
	SnapshotsShipped uint64 `json:"snapshots_shipped"`
	BytesShipped     uint64 `json:"bytes_shipped"`
}

// Primary serves one durable engine's replication endpoints.
type Primary struct {
	engine *kvs.Sharded
	poll   time.Duration
	chunk  int

	active    atomic.Int64
	records   atomic.Uint64
	snapshots atomic.Uint64
	bytes     atomic.Uint64
}

// NewPrimary returns the replication server side for engine. The engine
// should be durable (LSNs come from its WAL); a volatile engine's streams
// answer 409 so a misconfigured follower fails loudly, not silently empty.
func NewPrimary(engine *kvs.Sharded) *Primary {
	return &Primary{engine: engine, poll: DefaultPoll, chunk: DefaultChunk}
}

// SetPoll overrides the caught-up poll interval (d <= 0 restores the
// default); benchmarks and tests tighten it.
func (p *Primary) SetPoll(d time.Duration) {
	if d <= 0 {
		d = DefaultPoll
	}
	p.poll = d
}

// Register mounts the replication endpoints on mux.
func (p *Primary) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /repl/stream", p.handleStream)
	mux.HandleFunc("GET /repl/status", p.handleStatus)
}

// Status summarizes the primary's replication posture.
func (p *Primary) Status() Status {
	st := Status{
		Shards:           p.engine.NumShards(),
		Durable:          p.engine.Durable(),
		LSNs:             p.engine.ReplLSNs(),
		ActiveStreams:    p.active.Load(),
		RecordsShipped:   p.records.Load(),
		SnapshotsShipped: p.snapshots.Load(),
		BytesShipped:     p.bytes.Load(),
	}
	if st.Durable {
		st.SyncPolicy = p.engine.SyncPolicy().String()
	}
	if st.LSNs == nil {
		st.LSNs = make([]uint64, st.Shards)
	}
	return st
}

func (p *Primary) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(p.Status())
}

// handleStream serves one shard's record stream: catch-up (snapshot frame
// if the resume LSN is gone), then live tail until the client goes away.
func (p *Primary) handleStream(w http.ResponseWriter, r *http.Request) {
	if !p.engine.Durable() {
		http.Error(w, "engine is volatile: replication needs a durable primary (-data-dir)", http.StatusConflict)
		return
	}
	shard, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil || shard < 0 || shard >= p.engine.NumShards() {
		http.Error(w, fmt.Sprintf("bad shard %q: want 0..%d", r.URL.Query().Get("shard"), p.engine.NumShards()-1), http.StatusBadRequest)
		return
	}
	from := uint64(1)
	if fs := r.URL.Query().Get("from"); fs != "" {
		if from, err = strconv.ParseUint(fs, 10, 64); err != nil || from == 0 {
			http.Error(w, fmt.Sprintf("bad from %q: want a positive LSN", fs), http.StatusBadRequest)
			return
		}
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Repl-Shards", strconv.Itoa(p.engine.NumShards()))

	p.active.Add(1)
	defer p.active.Add(-1)
	ctx := r.Context()
	cur := kvs.ReplCursor{Next: from}
	for {
		frames, err := p.engine.ReplRead(shard, &cur, p.chunk)
		if err == kvs.ErrReplSnapshotNeeded {
			frame, lsn, serr := p.engine.ReplSnapshotFrame(shard)
			if serr != nil {
				// Headers may be out already; closing the stream is the
				// only honest signal left.
				return
			}
			if _, werr := w.Write(frame); werr != nil {
				return
			}
			p.snapshots.Add(1)
			p.bytes.Add(uint64(len(frame)))
			cur = kvs.ReplCursor{Next: lsn + 1}
			if flusher != nil {
				flusher.Flush()
			}
			continue
		}
		if err != nil {
			return
		}
		if len(frames) > 0 {
			if _, werr := w.Write(frames); werr != nil {
				return
			}
			p.bytes.Add(uint64(len(frames)))
			p.records.Add(uint64(kvs.CountReplFrames(frames)))
			if flusher != nil {
				flusher.Flush()
			}
			continue
		}
		// Caught up: wait a poll beat for new records, or for the client
		// to go away.
		select {
		case <-ctx.Done():
			return
		case <-time.After(p.poll):
		}
	}
}
