package core

import (
	"sync"

	"github.com/bravolock/bravo/internal/bias"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/self"
)

// fastBit tags tokens of fast-path read acquisitions; the slot index lives
// in the low 32 bits and the slot generation — the always-on
// unbalanced-unlock guard — in the bits above it (see bias.SlotToken).
// Substrate locks confine their tokens to the low 32 bits (see rwl), so the
// encodings cannot collide.
const fastBit rwl.Token = 1 << 63

// Lock is a BRAVO-transformed reader-writer lock: BRAVO-A where A is the
// underlying lock supplied to New. Per Listing 1, it extends A with an RBias
// flag and (inside the default policy) an InhibitUntil timestamp — both of
// which, together with the table fast path and the revocation scan, live in
// the embedded bias.Engine shared with the rwsem integration. Reads have
// dual paths: a fast path that publishes the reader in the visible readers
// table without touching A, and the traditional slow path through A. Writers
// always pass through A, revoking reader bias when it is set.
//
// Read paths come in two flavors: the anonymous RLock/RUnlock pair, which
// derives the caller's identity and hashes per acquisition, and the
// handle-accepting RLockH/RUnlockH pair, whose steady state is one CAS at
// the handle's cached slot with no hashing at all (paper §5.2: BRAVO's wins
// come from readers re-hitting the same slot).
//
// BRAVO is transparent to A's admission policy: if A is reader-preference,
// writer-preference, phase-fair or neutral, BRAVO-A is too.
type Lock struct {
	// eng is the biasing protocol: rbias word, policy arbitration, table
	// publish/recheck/undo, revocation scan, stats. Its address is the lock
	// identity published in table slots, so a Lock must not be copied.
	eng   bias.Engine
	under rwl.RWLock
	// revMu, when non-nil, is the future-work variant (§7) that lets
	// arriving readers divert through the slow path while a writer is mid
	// revocation: writers serialize on revMu and revoke *before* acquiring
	// the underlying write lock.
	revMu *sync.Mutex
}

var (
	_ rwl.RWLock       = (*Lock)(nil)
	_ rwl.TryRWLock    = (*Lock)(nil)
	_ rwl.HandleRWLock = (*Lock)(nil)
)

// Option configures a Lock.
type Option func(*Lock)

// WithTable directs the lock at a specific visible readers table — e.g. a
// private per-lock table (the idealized interference-immune variant of
// Figure 1) or a BRAVO-2D sectored table.
func WithTable(t *Table) Option { return func(l *Lock) { l.eng.SetTable(t) } }

// WithPolicy installs a bias-enabling policy. It composes with WithInhibitN
// in either order: the multiplier tunes the policy when it accepts one and
// never replaces it.
func WithPolicy(p Policy) Option { return func(l *Lock) { l.eng.SetPolicy(p) } }

// WithStats attaches an event counter set. Counting adds shared-memory
// traffic; leave nil for performance runs.
func WithStats(s *Stats) Option { return func(l *Lock) { l.eng.SetStats(s) } }

// WithInhibitN sets the paper's N multiplier (worst-case writer slow-down
// ≈ 1/(N+1)). It tunes the default InhibitPolicy — or one installed with
// WithPolicy, before or after — rather than replacing it, so option order
// does not matter.
func WithInhibitN(n int64) Option {
	return func(l *Lock) { l.eng.SetInhibitN(n) }
}

// WithSecondProbe enables a secondary table probe before a colliding reader
// falls back to the slow path.
func WithSecondProbe() Option { return func(l *Lock) { l.eng.SetSecondProbe() } }

// WithRandomizedIndex selects random rather than deterministic slot indices.
func WithRandomizedIndex() Option { return func(l *Lock) { l.eng.SetRandomizedIndex() } }

// WithRevocationMutex adds the per-lock writer mutex that allows readers to
// make progress (via the slow path) while a writer performs revocation,
// reducing read-latency variance (§7).
func WithRevocationMutex() Option {
	return func(l *Lock) { l.revMu = new(sync.Mutex) }
}

// New wraps an existing reader-writer lock with the BRAVO transformation.
func New(under rwl.RWLock, opts ...Option) *Lock {
	l := &Lock{under: under}
	for _, o := range opts {
		o(l)
	}
	l.eng.Init()
	return l
}

// Underlying returns the wrapped lock.
func (l *Lock) Underlying() rwl.RWLock { return l.under }

// TableInUse returns the visible readers table this lock publishes into.
func (l *Lock) TableInUse() *Table { return l.eng.Table() }

// Engine exposes the embedded biasing engine (diagnostics and tests).
func (l *Lock) Engine() *bias.Engine { return &l.eng }

// Biased reports whether reader bias is currently enabled.
func (l *Lock) Biased() bool { return l.eng.Enabled() }

// WriterPresent reports whether the underlying lock exposes a visible
// writer. Diagnostic; present only when the substrate provides it.
func (l *Lock) WriterPresent() bool {
	if wp, ok := l.under.(interface{ WriterPresent() bool }); ok {
		return wp.WriterPresent()
	}
	return false
}

// RLock acquires read permission (Listing 1, Reader). The returned token
// must be passed to RUnlock.
func (l *Lock) RLock() rwl.Token {
	return l.RLockWithID(self.ID())
}

// RLockWithID is RLock with an explicit thread identity, for callers that
// pin identities (benchmark workers, pooled executors).
func (l *Lock) RLockWithID(selfID uint64) rwl.Token {
	if tok, ok := l.eng.TryFast(selfID); ok {
		return fastBit | rwl.Token(tok)
	}
	// Slow path: acquire read permission on the underlying lock.
	ut := l.under.RLock()
	// Safety: bias may only be set while holding read permission on the
	// underlying lock, which excludes writers (Listing 1 lines 25–26).
	l.eng.MaybeEnable()
	return ut
}

// RUnlock releases read permission acquired by the RLock call that returned
// t: fast-path readers clear their slot, slow-path readers release the
// underlying lock (Listing 1 lines 29–33). The fast-path clear verifies the
// token's slot generation — a double RUnlock, an unlock without a lock, or
// a token handed to the wrong lock panics deterministically, in production
// builds and not just under lockcheck harnesses.
func (l *Lock) RUnlock(t rwl.Token) {
	if t&fastBit != 0 {
		l.eng.ClearFast(bias.SlotToken(t &^ fastBit))
		return
	}
	l.under.RUnlock(t)
}

// RLockH is RLock through a reader handle: the identity was pinned when the
// handle was created, and the steady state publishes into the handle's
// cached slot — one CAS, no hashing. The returned token must be passed to
// RUnlockH with the same handle.
func (l *Lock) RLockH(h *rwl.Reader) rwl.Token {
	if tok, ok := l.eng.TryFastH(h); ok {
		return fastBit | rwl.Token(tok)
	}
	ut := l.under.RLock()
	l.eng.SlowLockedH(h)
	l.eng.MaybeEnable()
	return ut
}

// RUnlockH releases a read acquisition made with RLockH. The handle's
// held-slot record is checked first, so an unbalanced release (double
// unlock, unlock without lock) panics before touching lock state.
func (l *Lock) RUnlockH(h *rwl.Reader, t rwl.Token) {
	if t&fastBit != 0 {
		l.eng.ReleaseFastAt(h, bias.SlotToken(t&^fastBit))
		return
	}
	l.eng.SlowUnlockedH(h)
	l.under.RUnlock(t)
}

// Lock acquires write permission (Listing 1, Writer): pass through the
// underlying lock, then revoke reader bias if it is set.
func (l *Lock) Lock() {
	if l.revMu != nil {
		// Future-work variant: resolve write-write conflicts first and
		// revoke before taking the underlying lock, so arriving readers can
		// still enter via the slow path during the revocation scan.
		l.revMu.Lock()
		if l.eng.Enabled() {
			l.eng.Revoke()
		}
	}
	l.under.Lock()
	// In the default mode this is the Listing 1 revocation; in revMu mode
	// it catches the rare slow reader that re-enabled bias between our
	// pre-revocation and the write acquisition.
	l.eng.RevokeIfEnabled()
}

// Unlock releases write permission.
func (l *Lock) Unlock() {
	l.under.Unlock()
	if l.revMu != nil {
		l.revMu.Unlock()
	}
}

// TryRLock attempts the fast path and then, if the underlying lock supports
// try-acquisition, the slow path (§3's try-lock treatment). On underlying
// success the policy may enable bias, as the paper permits.
func (l *Lock) TryRLock() (rwl.Token, bool) {
	if l.eng.Enabled() {
		if tok, ok := l.eng.TryPublish(self.ID()); ok {
			return fastBit | rwl.Token(tok), true
		}
	}
	tu, ok := l.underTry()
	if !ok {
		return 0, false
	}
	l.eng.MaybeEnable()
	return tu, true
}

func (l *Lock) underTry() (rwl.Token, bool) {
	t, ok := l.under.(rwl.TryRWLock)
	if !ok {
		return 0, false
	}
	return t.TryRLock()
}

// TryLock attempts to acquire write permission. If the underlying try-lock
// succeeds and bias is set, revocation is performed exactly as in Lock.
func (l *Lock) TryLock() bool {
	if l.revMu != nil && !l.revMu.TryLock() {
		return false
	}
	t, ok := l.under.(rwl.TryRWLock)
	if !ok || !t.TryLock() {
		if l.revMu != nil {
			l.revMu.Unlock()
		}
		return false
	}
	l.eng.RevokeIfEnabled()
	return true
}
