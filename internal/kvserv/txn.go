package kvserv

// HTTP faces of the engine's transaction primitives. Txn(keys, fn) is a
// callback API, which does not cross a network, so the serving layer
// exposes the remotable form: POST /cas is single-key compare-and-swap,
// and POST /txn is a conditional atomic batch — a set of preconditions on
// current values plus a list of writes, applied all-or-nothing under the
// engine's two-phase locking while every condition holds. Both stamp
// commit-LSN tokens on durable engines, like every other write.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/bravolock/bravo/internal/kvs"
)

// casRequest is /cas's body. Old null means "only if absent"; New null
// means "delete on match". A base64 "" is the empty value, distinct from
// null.
type casRequest struct {
	Key uint64 `json:"key"`
	Old []byte `json:"old"`
	New []byte `json:"new"`
}

// casResponse reports whether the swap applied. A false answer is a
// successful request (HTTP 200): the precondition did not hold.
type casResponse struct {
	Swapped bool `json:"swapped"`
}

func (s *Server) handleCas(w http.ResponseWriter, r *http.Request) {
	var req casRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxMPutBodyBytes)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Old) > MaxValueBytes || len(req.New) > MaxValueBytes {
		http.Error(w, fmt.Sprintf("value exceeds %d bytes", MaxValueBytes), http.StatusRequestEntityTooLarge)
		return
	}
	swapped, err := s.engine.CompareAndSwap(req.Key, req.Old, req.New)
	if err != nil {
		http.Error(w, fmt.Sprintf("cas: %v", err), http.StatusInternalServerError)
		return
	}
	s.writeCommitHeaders(w, req.Key)
	writeJSON(w, casResponse{Swapped: swapped})
}

// txnRequest is /txn's body: a conditional atomic batch. Every condition
// must hold (null value = key must be absent) for the ops to apply; the
// condition keys and op keys together form the transaction's declared key
// set, bounded by the engine's MaxTxnKeys. Ops apply in positional order,
// so a repeated key's last op wins — the same rule as /mput.
type txnRequest struct {
	If  []txnCond `json:"if,omitempty"`
	Ops []txnOp   `json:"ops"`
}

type txnCond struct {
	Key   uint64 `json:"key"`
	Value []byte `json:"value"`
}

type txnOp struct {
	Op    string `json:"op"` // "put" or "delete"
	Key   uint64 `json:"key"`
	Value []byte `json:"value,omitempty"`
	TTL   string `json:"ttl,omitempty"`
}

// txnResponse reports the commit decision. Committed false carries the
// first condition key that failed; true carries the per-shard commit LSNs
// on durable engines — the batch's read-your-writes tokens.
type txnResponse struct {
	Committed bool              `json:"committed"`
	Mismatch  *uint64           `json:"mismatch,omitempty"`
	LSNs      map[string]uint64 `json:"lsns,omitempty"`
}

// txnWireOp is the decoded, transport-independent form of one txn write.
type txnWireOp struct {
	del bool
	key uint64
	val []byte
	ttl time.Duration // 0 = no expiry
}

// condTxn is one conditional batch's execution state: the declared key
// set is the union of condition and op keys, and body is the transaction
// body that checks the conditions and stages the ops. The same plan runs
// against a plain engine (runConditionalTxn) or a cluster partition's
// fenced Txn method.
type condTxn struct {
	conds []txnCond
	ops   []txnWireOp

	committed bool
	mismatch  uint64
}

func (ct *condTxn) keys() []uint64 {
	keys := make([]uint64, 0, len(ct.conds)+len(ct.ops))
	for _, c := range ct.conds {
		keys = append(keys, c.Key)
	}
	for _, o := range ct.ops {
		keys = append(keys, o.key)
	}
	return keys
}

func (ct *condTxn) body(tx *kvs.Tx) error {
	ct.committed = true
	for _, c := range ct.conds {
		cur, ok := tx.Get(c.Key)
		match := ok && c.Value != nil && bytes.Equal(cur, c.Value)
		if c.Value == nil {
			match = !ok
		}
		if !match {
			ct.committed, ct.mismatch = false, c.Key
			return nil // read-only commit: no writes staged
		}
	}
	for _, o := range ct.ops {
		switch {
		case o.del:
			tx.Delete(o.key)
		case o.ttl > 0:
			tx.PutTTL(o.key, o.val, o.ttl)
		default:
			tx.Put(o.key, o.val)
		}
	}
	return nil
}

// runConditionalTxn executes a conditional batch against e atomically:
// one engine transaction over the union of condition and op keys, the
// conditions checked and the ops staged inside the locked body. Returns
// whether it committed and, when it did not, the first failing condition's
// key. Engine validation errors (no keys, too many keys) pass through.
func runConditionalTxn(e *kvs.Sharded, conds []txnCond, ops []txnWireOp) (committed bool, mismatch uint64, err error) {
	ct := &condTxn{conds: conds, ops: ops}
	if err := e.Txn(ct.keys(), ct.body); err != nil {
		return false, 0, err
	}
	return ct.committed, ct.mismatch, nil
}

// readTxnBody decodes and validates /txn's JSON body, answering the error
// response itself.
func readTxnBody(w http.ResponseWriter, r *http.Request) (req txnRequest, ops []txnWireOp, ok bool) {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxMPutBodyBytes)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("body: %v", err), http.StatusBadRequest)
		return req, nil, false
	}
	ops = make([]txnWireOp, len(req.Ops))
	for i, o := range req.Ops {
		if len(o.Value) > MaxValueBytes {
			http.Error(w, fmt.Sprintf("op %d: value exceeds %d bytes", i, MaxValueBytes), http.StatusRequestEntityTooLarge)
			return req, nil, false
		}
		switch o.Op {
		case "put":
			ops[i] = txnWireOp{key: o.Key, val: o.Value}
			if o.TTL != "" {
				ttl, err := parseTTL(o.TTL)
				if err != nil {
					http.Error(w, fmt.Sprintf("op %d: %v", i, err), http.StatusBadRequest)
					return req, nil, false
				}
				ops[i].ttl = ttl
			}
		case "delete":
			if o.Value != nil || o.TTL != "" {
				http.Error(w, fmt.Sprintf("op %d: delete takes no value or ttl", i), http.StatusBadRequest)
				return req, nil, false
			}
			ops[i] = txnWireOp{del: true, key: o.Key}
		default:
			http.Error(w, fmt.Sprintf("op %d: unknown op %q (want put or delete)", i, o.Op), http.StatusBadRequest)
			return req, nil, false
		}
	}
	return req, ops, true
}

func (s *Server) handleTxn(w http.ResponseWriter, r *http.Request) {
	req, ops, ok := readTxnBody(w, r)
	if !ok {
		return
	}
	committed, mismatch, err := runConditionalTxn(s.engine, req.If, ops)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, kvs.ErrTxnNoKeys) || errors.Is(err, kvs.ErrTxnTooManyKeys) {
			code = http.StatusBadRequest
		}
		http.Error(w, fmt.Sprintf("txn: %v", err), code)
		return
	}
	resp := txnResponse{Committed: committed}
	if !committed {
		resp.Mismatch = &mismatch
	} else if s.engine.Durable() {
		resp.LSNs = map[string]uint64{}
		for _, o := range req.Ops {
			sh := s.engine.ShardOf(o.Key)
			shs := strconv.Itoa(sh)
			if _, done := resp.LSNs[shs]; !done {
				resp.LSNs[shs] = s.engine.ShardLSN(sh)
			}
		}
	}
	writeJSON(w, resp)
}
