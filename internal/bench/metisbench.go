package bench

import (
	"time"

	"github.com/bravolock/bravo/internal/metis"
	"github.com/bravolock/bravo/internal/vm"
)

// MetisWC runs the Table 1 application (wc) once with the given kernel and
// parallelism and returns its runtime, the paper's Table 1 metric.
func MetisWC(k Kernel, workers, corpusWords int) time.Duration {
	as := newMetisAS(k)
	corpus := metis.GenerateCorpus(corpusWords, 1)
	start := time.Now()
	metis.WC(as, corpus, workers)
	return time.Since(start)
}

// MetisWrmem runs the Table 2 application (wrmem) once and returns its
// runtime.
func MetisWrmem(k Kernel, workers, wordsPerSplit int) time.Duration {
	as := newMetisAS(k)
	start := time.Now()
	metis.Wrmem(as, workers, workers*4, wordsPerSplit)
	return time.Since(start)
}

func newMetisAS(k Kernel) *vm.AddressSpace {
	return vm.NewAddressSpace(newMMapSem(k))
}

// MetisSpeedup formats the paper's speedup column: (stock−bravo)/stock.
func MetisSpeedup(stock, bravo time.Duration) float64 {
	if stock <= 0 {
		return 0
	}
	return float64(stock-bravo) / float64(stock)
}
