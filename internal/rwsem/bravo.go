package rwsem

import (
	"sync/atomic"
	"unsafe"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/core"
)

// Bravo is the §4 integration of BRAVO with rwsem. It mirrors the kernel
// patch: the semaphore gains an RBias flag and an InhibitUntil timestamp;
// read acquisitions may divert to the shared visible readers table, with the
// slot determined "by hashing the task struct pointer (current) with the
// address of the semaphore"; releases clear that slot.
//
// The paper's patch assumes the semaphore is released by the task that
// acquired it for read, and we keep that assumption: the per-task held-slot
// record (Task.held) plays the role of the kernel's per-task bookkeeping,
// resolving the rare hash-collision ambiguity that pure slot-content
// comparison would leave (two tasks whose (task, sem) pairs hash to the same
// slot).
type Bravo struct {
	inner *RWSem
	rbias atomic.Uint32
	// inhibitUntil is the earliest re-bias time; N is the paper's multiplier.
	inhibitUntil atomic.Int64
	n            int64
	table        *core.Table
}

// NewBravo wraps a fresh rwsem with the BRAVO reader fast path. The visible
// readers table is shared process-wide (core.SharedTable) unless overridden
// with SetTable.
func NewBravo(cfg Config) *Bravo {
	// The paper's kernel integration also fixes the owner-field writes
	// (§4); BRAVO-rwsem therefore defaults to the optimized owner protocol.
	cfg.StockOwnerWrites = false
	return &Bravo{
		inner: New(cfg),
		n:     core.DefaultInhibitN,
		table: core.SharedTable(),
	}
}

// SetTable redirects fast-path publication (testing and ablations).
func (b *Bravo) SetTable(t *core.Table) { b.table = t }

// SetInhibitN overrides the slow-down guard multiplier.
func (b *Bravo) SetInhibitN(n int64) {
	if n > 0 {
		b.n = n
	}
}

// Inner exposes the wrapped rwsem. Diagnostic.
func (b *Bravo) Inner() *RWSem { return b.inner }

// Biased reports whether reader bias is enabled. Diagnostic.
func (b *Bravo) Biased() bool { return b.rbias.Load() == 1 }

func (b *Bravo) id() uintptr { return uintptr(unsafe.Pointer(b)) }

// DownRead acquires read permission for t, preferring the table fast path.
func (b *Bravo) DownRead(t *Task) {
	if b.rbias.Load() == 1 && t.canRecord() {
		idx, ok := b.table.TryPublish(b.id(), t.ID)
		if ok {
			if b.rbias.Load() == 1 { // recheck
				t.recordFast(b, idx)
				return
			}
			b.table.Clear(idx)
		}
	}
	b.inner.DownRead(t.ID)
	if b.rbias.Load() == 0 && clock.Nanos() >= b.inhibitUntil.Load() {
		b.rbias.Store(1)
	}
}

// TryDownRead attempts a non-blocking read acquisition: fast path first,
// then the underlying try-lock, which may set bias on success (§3).
func (b *Bravo) TryDownRead(t *Task) bool {
	if b.rbias.Load() == 1 && t.canRecord() {
		idx, ok := b.table.TryPublish(b.id(), t.ID)
		if ok {
			if b.rbias.Load() == 1 {
				t.recordFast(b, idx)
				return true
			}
			b.table.Clear(idx)
		}
	}
	if !b.inner.TryDownRead(t.ID) {
		return false
	}
	if b.rbias.Load() == 0 && clock.Nanos() >= b.inhibitUntil.Load() {
		b.rbias.Store(1)
	}
	return true
}

// UpRead releases read permission for t: fast-path acquisitions clear their
// recorded slot, slow-path acquisitions release the underlying semaphore.
func (b *Bravo) UpRead(t *Task) {
	if idx, ok := t.takeFast(b); ok {
		b.table.Clear(idx)
		return
	}
	b.inner.UpRead(t.ID)
}

// DownWrite acquires write permission, revoking reader bias if set.
func (b *Bravo) DownWrite(t *Task) {
	b.inner.DownWrite(t.ID)
	if b.rbias.Load() == 1 {
		b.revoke()
	}
}

// TryDownWrite attempts a non-blocking write acquisition; on success with
// bias set, revocation must still be performed (§3).
func (b *Bravo) TryDownWrite(t *Task) bool {
	if !b.inner.TryDownWrite(t.ID) {
		return false
	}
	if b.rbias.Load() == 1 {
		b.revoke()
	}
	return true
}

// UpWrite releases write permission.
func (b *Bravo) UpWrite(t *Task) {
	b.inner.UpWrite(t.ID)
}

func (b *Bravo) revoke() {
	b.rbias.Store(0)
	start := clock.Nanos()
	b.table.WaitEmpty(b.id())
	now := clock.Nanos()
	b.inhibitUntil.Store(now + (now-start)*b.n)
}
