// Command willitscale regenerates the paper's will-it-scale experiments
// (Figure 9, §6.2): page_fault1/2 and mmap1/2 over an address space whose
// mmap_sem is either the stock rwsem or the BRAVO-augmented rwsem.
//
// Examples:
//
//	willitscale -test page_fault1                # Figure 9a, simulated X5-4
//	willitscale -test mmap1 -mode native
//	willitscale -test page_fault2 -mode native -chunk 4194304
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/bravolock/bravo/internal/bench"
	"github.com/bravolock/bravo/internal/cliutil"
	"github.com/bravolock/bravo/internal/sim"
)

var (
	modeFlag     = flag.String("mode", "sim", "native or sim")
	testFlag     = flag.String("test", "page_fault1", "page_fault1, page_fault2, mmap1 or mmap2")
	threadsFlag  = flag.String("threads", "1,2,4,8,16,32,72,108,142", "thread counts")
	chunkFlag    = flag.Uint64("chunk", 128<<20, "native mapping size in bytes (paper: 128MB)")
	intervalFlag = flag.Duration("interval", 500*time.Millisecond, "native measurement interval")
	runsFlag     = flag.Int("runs", 3, "native runs per point (median)")
)

func main() {
	flag.Parse()
	threads, err := cliutil.ParseInts(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "willitscale:", err)
		os.Exit(1)
	}
	switch *testFlag {
	case "page_fault1", "page_fault2", "mmap1", "mmap2":
	default:
		fmt.Fprintf(os.Stderr, "willitscale: unknown test %q\n", *testFlag)
		os.Exit(1)
	}
	if *modeFlag == "sim" {
		s := sim.Figure9WillItScale(threads, *testFlag)
		fmt.Printf("# Figure 9: will-it-scale %s_threads (sim, X5-4)\n", *testFlag)
		fmt.Printf("%-10s %16s %16s\n", "threads", "stock", "BRAVO")
		for i, tc := range threads {
			fmt.Printf("%-10d %16.0f %16.0f\n", tc, s["stock"][i].Value, s["BRAVO"][i].Value)
		}
		return
	}
	cfg := bench.Config{Interval: *intervalFlag, Runs: *runsFlag, Threads: threads}
	fmt.Printf("# Figure 9: will-it-scale %s_threads (native, chunk=%d)\n", *testFlag, *chunkFlag)
	fmt.Printf("%-10s %16s %16s\n", "threads", "stock", "BRAVO")
	for _, tc := range threads {
		s := bench.WillItScale(bench.Stock, *testFlag, tc, *chunkFlag, cfg)
		b := bench.WillItScale(bench.Bravo, *testFlag, tc, *chunkFlag, cfg)
		fmt.Printf("%-10d %16.0f %16.0f\n", tc, s, b)
	}
}
