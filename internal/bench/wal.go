package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"

	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/xrand"
)

// The wal workload measures what durability costs and what group commit
// buys back: writer goroutines stream MultiPut batches (the serving
// pipeline's write path) against three engines over the same lock and
// shard count — volatile (no WAL), durable with OS-buffered logging
// (sync none), and durable with one fsync per group-commit batch (sync
// always). Because the per-shard batch is one WAL record, the fsync cost
// is amortized across the group exactly the way BRAVO amortizes bias
// revocation across the reads that follow it; the report records the
// achieved group size (WAL keys per record) so the amortization factor is
// visible next to the throughput it buys.

// WALWorkloadKeys is the workload's keyspace.
const WALWorkloadKeys = 1 << 14

// WALDefaultBatch is the writers' MultiPut group size.
const WALDefaultBatch = 64

// WALResult is one (lock, shards, threads, mode) measurement.
type WALResult struct {
	Lock    string `json:"lock"`
	Shards  int    `json:"shards"`
	Threads int    `json:"threads"`
	// Mode is "volatile", "wal-nosync" (durable, OS-buffered), or
	// "wal-fsync" (durable, one fsync per group-commit batch).
	Mode      string `json:"mode"`
	BatchSize int    `json:"batch_size"`
	ValueSize int    `json:"value_size"`
	// WriteKeysPerSec is the median (over runs) rate of keys applied.
	WriteKeysPerSec float64 `json:"write_keys_per_sec"`
	// Group-commit shape, from the last run's engine stats (zero in
	// volatile mode): GroupKeysPerRecord = WALKeys/WALRecords is the
	// achieved amortization factor, and SyncsPerKey = WALSyncs/WALKeys is
	// what each key paid in fsyncs (1/group under wal-fsync, 0 otherwise).
	WALRecords         uint64  `json:"wal_records"`
	WALKeys            uint64  `json:"wal_keys"`
	WALSyncs           uint64  `json:"wal_syncs"`
	WALBytes           uint64  `json:"wal_bytes"`
	GroupKeysPerRecord float64 `json:"group_keys_per_record"`
	SyncsPerKey        float64 `json:"syncs_per_key"`
}

// WALComparison lines up the three modes of one (lock, shards, threads)
// point: the price of durability at each sync level, as a fraction of
// volatile write throughput.
type WALComparison struct {
	Lock    string `json:"lock"`
	Shards  int    `json:"shards"`
	Threads int    `json:"threads"`

	VolatileKeysPerSec float64 `json:"volatile_keys_per_sec"`
	NoSyncKeysPerSec   float64 `json:"nosync_keys_per_sec"`
	FsyncKeysPerSec    float64 `json:"fsync_keys_per_sec"`
	// NoSyncOverVolatile and FsyncOverVolatile are throughput ratios
	// (durable/volatile, higher is better, 1.0 = free durability).
	NoSyncOverVolatile float64 `json:"nosync_over_volatile"`
	FsyncOverVolatile  float64 `json:"fsync_over_volatile"`
	// GroupKeysPerRecord is the fsync mode's achieved group-commit batch
	// size — the amortization denominator.
	GroupKeysPerRecord float64 `json:"group_keys_per_record"`
}

// WALReport is the top-level BENCH_wal.json document.
type WALReport struct {
	Benchmark   string          `json:"benchmark"`
	Meta        RunMeta         `json:"meta"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	IntervalMS  int64           `json:"interval_ms"`
	Runs        int             `json:"runs"`
	Keys        int             `json:"keys"`
	Batch       int             `json:"batch"`
	Results     []WALResult     `json:"results"`
	Comparisons []WALComparison `json:"comparisons"`
}

// WriteJSON renders the report as indented JSON.
func (r WALReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// NewWALReport stamps the environment fields of a report.
func NewWALReport(cfg Config, batch int, results []WALResult, comps []WALComparison) WALReport {
	return WALReport{
		Benchmark:   "wal",
		Meta:        NewRunMeta(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		IntervalMS:  cfg.Interval.Milliseconds(),
		Runs:        cfg.Runs,
		Keys:        WALWorkloadKeys,
		Batch:       batch,
		Results:     results,
		Comparisons: comps,
	}
}

// walModes enumerates the workload's engine configurations.
var walModes = []struct {
	name    string
	durable bool
	policy  kvs.SyncPolicy
}{
	{"volatile", false, kvs.SyncNone},
	{"wal-nosync", true, kvs.SyncNone},
	{"wal-fsync", true, kvs.SyncAlways},
}

// WALPoint measures one (lock, shards, threads, mode) point: cfg.Runs
// fresh engines (durable ones in throwaway directories), median write
// throughput, last run's WAL counters.
func WALPoint(lockName string, shards, threads, batch, valueSize int, mode string, cfg Config) (WALResult, error) {
	var durable bool
	var policy kvs.SyncPolicy
	found := false
	for _, m := range walModes {
		if m.name == mode {
			durable, policy, found = m.durable, m.policy, true
		}
	}
	if !found {
		return WALResult{}, fmt.Errorf("bench: wal mode %q (want volatile, wal-nosync, or wal-fsync)", mode)
	}
	if batch < 2 {
		return WALResult{}, fmt.Errorf("bench: wal batch %d (want >= 2)", batch)
	}
	mk, _, err := shardedKVFactory(lockName)
	if err != nil {
		return WALResult{}, err
	}
	res := WALResult{
		Lock: lockName, Shards: shards, Threads: threads,
		Mode: mode, BatchSize: batch, ValueSize: valueSize,
	}
	if res.ValueSize < 8 {
		res.ValueSize = 8 // room for the encoded counter
	}
	var lastStats kvs.ShardStats
	var buildErr error
	res.WriteKeysPerSec = cfg.Median(func() float64 {
		var e *kvs.Sharded
		var err error
		if durable {
			dir, derr := os.MkdirTemp("", "bravo-walbench-*")
			if derr != nil {
				buildErr = derr
				return 0
			}
			defer os.RemoveAll(dir)
			e, err = kvs.OpenSharded(dir, shards, mk, policy)
		} else {
			e, err = kvs.NewSharded(shards, mk)
		}
		if err != nil {
			buildErr = err
			return 0
		}
		defer e.Close()
		applied := RunWorkers(threads, cfg.Interval, func(id int, stop *atomic.Bool) uint64 {
			return walWriter(e, batch, res.ValueSize, xrand.NewXorShift64(uint64(id)*0x9E3779B97F4A7C15+1), stop)
		})
		st := e.Stats().Total()
		if walErr := e.WALError(); walErr != nil && buildErr == nil {
			buildErr = walErr
		}
		lastStats = st
		return float64(applied)
	})
	if buildErr != nil {
		return res, buildErr
	}
	res.WriteKeysPerSec /= cfg.Interval.Seconds()
	res.WALRecords = lastStats.WALRecords
	res.WALKeys = lastStats.WALKeys
	res.WALSyncs = lastStats.WALSyncs
	res.WALBytes = lastStats.WALBytes
	if lastStats.WALRecords > 0 {
		res.GroupKeysPerRecord = float64(lastStats.WALKeys) / float64(lastStats.WALRecords)
	}
	if lastStats.WALKeys > 0 {
		res.SyncsPerKey = float64(lastStats.WALSyncs) / float64(lastStats.WALKeys)
	}
	return res, nil
}

// walWriter streams MultiPut batches until stop, returning keys applied —
// the kvserv workload's batched writer, pointed at the durability axis.
func walWriter(e *kvs.Sharded, batch, valueSize int, rng *xrand.XorShift64, stop *atomic.Bool) uint64 {
	wval := make([]byte, valueSize)
	keys := make([]uint64, batch)
	vals := make([][]byte, batch)
	for i := range vals {
		vals[i] = wval // the engine copies under the shard lock
	}
	var applied uint64
	for !stop.Load() {
		copy(wval, kvs.EncodeValue(rng.Next()))
		for i := range keys {
			keys[i] = rng.Intn(WALWorkloadKeys)
		}
		e.MultiPut(keys, vals)
		applied += uint64(batch)
	}
	return applied
}

// WALSweep measures every mode across the lock × shards × threads grid and
// folds each point's modes into a comparison. Deterministic order: lock,
// shards, threads, then volatile → wal-nosync → wal-fsync.
func WALSweep(locks []string, shardCounts, threads []int, batch, valueSize int, cfg Config) ([]WALResult, []WALComparison, error) {
	var results []WALResult
	var comps []WALComparison
	for _, lock := range locks {
		for _, sc := range shardCounts {
			for _, tc := range threads {
				byMode := map[string]WALResult{}
				for _, m := range walModes {
					r, err := WALPoint(lock, sc, tc, batch, valueSize, m.name, cfg)
					if err != nil {
						return nil, nil, err
					}
					results = append(results, r)
					byMode[m.name] = r
				}
				comps = append(comps, compareWAL(byMode))
			}
		}
	}
	return results, comps, nil
}

// compareWAL folds one point's three modes into a comparison row.
func compareWAL(byMode map[string]WALResult) WALComparison {
	vol, nos, fs := byMode["volatile"], byMode["wal-nosync"], byMode["wal-fsync"]
	c := WALComparison{
		Lock: vol.Lock, Shards: vol.Shards, Threads: vol.Threads,
		VolatileKeysPerSec: vol.WriteKeysPerSec,
		NoSyncKeysPerSec:   nos.WriteKeysPerSec,
		FsyncKeysPerSec:    fs.WriteKeysPerSec,
		GroupKeysPerRecord: fs.GroupKeysPerRecord,
	}
	if vol.WriteKeysPerSec > 0 {
		c.NoSyncOverVolatile = nos.WriteKeysPerSec / vol.WriteKeysPerSec
		c.FsyncOverVolatile = fs.WriteKeysPerSec / vol.WriteKeysPerSec
	}
	return c
}

// WriteWALTable renders the per-mode measurements as the aligned
// human-readable companion of the JSON report.
func WriteWALTable(w io.Writer, results []WALResult) {
	const format = "%-10s %7s %8s %-10s %14s %10s %10s %10s\n"
	fmt.Fprintf(w, format, "lock", "shards", "threads", "mode", "wkeys/sec", "records", "keys/rec", "syncs/key")
	for _, r := range results {
		keysPerRec, syncsPerKey := "-", "-"
		if r.WALRecords > 0 {
			keysPerRec = fmt.Sprintf("%.1f", r.GroupKeysPerRecord)
			syncsPerKey = fmt.Sprintf("%.4f", r.SyncsPerKey)
		}
		fmt.Fprintf(w, format, r.Lock,
			fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%d", r.Threads), r.Mode,
			fmt.Sprintf("%.0f", r.WriteKeysPerSec),
			fmt.Sprintf("%d", r.WALRecords), keysPerRec, syncsPerKey)
	}
}

// WriteWALComparisons renders the durable-vs-volatile pairing.
func WriteWALComparisons(w io.Writer, comps []WALComparison) {
	const format = "%-10s %7s %8s %15s %15s %15s %9s %9s %9s\n"
	fmt.Fprintf(w, format, "lock", "shards", "threads",
		"volatile(wk/s)", "nosync(wk/s)", "fsync(wk/s)", "nosync/v", "fsync/v", "keys/rec")
	for _, c := range comps {
		fmt.Fprintf(w, format, c.Lock,
			fmt.Sprintf("%d", c.Shards), fmt.Sprintf("%d", c.Threads),
			fmt.Sprintf("%.0f", c.VolatileKeysPerSec),
			fmt.Sprintf("%.0f", c.NoSyncKeysPerSec),
			fmt.Sprintf("%.0f", c.FsyncKeysPerSec),
			fmt.Sprintf("%.2fx", c.NoSyncOverVolatile),
			fmt.Sprintf("%.2fx", c.FsyncOverVolatile),
			fmt.Sprintf("%.1f", c.GroupKeysPerRecord))
	}
}
