package bias

import (
	"fmt"
	"sync/atomic"
)

// Stats counts BRAVO path events, following the breakdown the paper's
// methodology notes call for: fast reads, slow reads split by cause
// (bias disabled / table collision / recheck race / handle untrackable),
// writes split into those that revoked bias and those that did not, and
// revocation cost.
//
// Stats collection is optional; the counters are shared atomics and add
// measurable coherence traffic, exactly like the kernel's lockstat (§6: "we
// kept it disabled during performance measurements as it adds a probing
// effect").
type Stats struct {
	FastRead      atomic.Uint64 // fast-path read acquisitions
	SlowDisabled  atomic.Uint64 // slow reads: RBias was clear
	SlowCollision atomic.Uint64 // slow reads: table slot occupied (true or remembered collision)
	SlowRaced     atomic.Uint64 // slow reads: RBias cleared between publish and recheck
	SlowHandle    atomic.Uint64 // slow reads: reader handle could not track another fast hold
	WriteNormal   atomic.Uint64 // writes with no revocation
	WriteRevoke   atomic.Uint64 // writes that performed revocation
	RevokeNanos   atomic.Int64  // total nanoseconds spent in revocation (scan + wait)
	RevokeScanned atomic.Uint64 // total slots examined by revocation scans
	RevokeWaits   atomic.Uint64 // conflicting fast readers awaited during revocations
}

// Snapshot is an immutable copy of Stats.
type Snapshot struct {
	FastRead      uint64
	SlowDisabled  uint64
	SlowCollision uint64
	SlowRaced     uint64
	SlowHandle    uint64
	WriteNormal   uint64
	WriteRevoke   uint64
	RevokeNanos   int64
	RevokeScanned uint64
	RevokeWaits   uint64
}

// Snapshot returns a point-in-time copy of the counters.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		FastRead:      s.FastRead.Load(),
		SlowDisabled:  s.SlowDisabled.Load(),
		SlowCollision: s.SlowCollision.Load(),
		SlowRaced:     s.SlowRaced.Load(),
		SlowHandle:    s.SlowHandle.Load(),
		WriteNormal:   s.WriteNormal.Load(),
		WriteRevoke:   s.WriteRevoke.Load(),
		RevokeNanos:   s.RevokeNanos.Load(),
		RevokeScanned: s.RevokeScanned.Load(),
		RevokeWaits:   s.RevokeWaits.Load(),
	}
}

// Reads returns the total number of read acquisitions.
func (s Snapshot) Reads() uint64 {
	return s.FastRead + s.SlowDisabled + s.SlowCollision + s.SlowRaced + s.SlowHandle
}

// Writes returns the total number of write acquisitions.
func (s Snapshot) Writes() uint64 { return s.WriteNormal + s.WriteRevoke }

// FastFraction returns NFast/(NFast+NSlow), the fast-read fraction the
// paper's reporting notes request.
func (s Snapshot) FastFraction() float64 {
	r := s.Reads()
	if r == 0 {
		return 0
	}
	return float64(s.FastRead) / float64(r)
}

// String renders the snapshot in a compact single-line form.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"reads=%d (fast=%d disabled=%d collision=%d raced=%d handle=%d, fast%%=%.1f) writes=%d (revoke=%d) revoke=%dns scanned=%d waits=%d",
		s.Reads(), s.FastRead, s.SlowDisabled, s.SlowCollision, s.SlowRaced, s.SlowHandle,
		100*s.FastFraction(), s.Writes(), s.WriteRevoke,
		s.RevokeNanos, s.RevokeScanned, s.RevokeWaits)
}
