package bench

import (
	"fmt"
	"sync/atomic"

	"github.com/bravolock/bravo/internal/arch"
	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/locks/pfq"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/spin"
	"github.com/bravolock/bravo/internal/xrand"
)

// DefaultUserLocks is the lock lineup of the paper's user-space figures.
var DefaultUserLocks = []string{
	"ba", "bravo-ba", "pthread", "bravo-pthread", "per-cpu", "cohort-rw",
}

// mustLock instantiates a registered lock or panics (harness wiring error).
func mustLock(name string) rwl.RWLock {
	l, err := rwl.New(name)
	if err != nil {
		panic(err)
	}
	return l
}

// Alternator runs the §5.2 alternator for one lock: threads in a logical
// ring, notification by store, one read acquire/release per step, no
// concurrency among readers. Returns total steps completed.
func Alternator(lockName string, threads int, cfg Config) float64 {
	return cfg.Median(func() float64 {
		l := mustLock(lockName)
		// Padded per-thread mailboxes: turn[i] is bumped by i's left sibling.
		type mailbox struct {
			turn atomic.Uint64
			_    arch.SectorPad
		}
		boxes := make([]mailbox, threads)
		boxes[0].turn.Store(1) // kick the ring: thread 0 holds the baton
		var stopped atomic.Bool
		total := RunWorkers(threads, cfg.Interval, func(id int, stop *atomic.Bool) uint64 {
			var steps uint64
			var b spin.Backoff
			want := uint64(1)
			for !stop.Load() {
				// Wait for our notification.
				for boxes[id].turn.Load() < want {
					if stop.Load() || stopped.Load() {
						return steps
					}
					b.Once()
				}
				b.Reset()
				want++
				tok := l.RLock()
				l.RUnlock(tok)
				boxes[(id+1)%threads].turn.Add(1)
				steps++
			}
			stopped.Store(true)
			return steps
		})
		return float64(total)
	})
}

// TestRWLock runs the §5.3 test_rwlock workload: one fixed-role writer
// (10-unit CS, 1000-unit NCS) plus T fixed-role readers (10-unit CS).
// Returns aggregate iterations completed.
func TestRWLock(lockName string, readers int, cfg Config) float64 {
	return cfg.Median(func() float64 {
		l := mustLock(lockName)
		total := RunWorkers(readers+1, cfg.Interval, func(id int, stop *atomic.Bool) uint64 {
			rng := xrand.NewXorShift64(uint64(id) + 7)
			var ops uint64
			writer := id == readers
			for !stop.Load() {
				if writer {
					l.Lock()
					Work(rng, 10)
					l.Unlock()
					Work(rng, 1000)
				} else {
					tok := l.RLock()
					Work(rng, 10)
					l.RUnlock(tok)
				}
				ops++
			}
			return ops
		})
		return float64(total)
	})
}

// RWBench runs the §5.4 RWBench workload: each thread writes with
// probability writeProb (the paper sweeps 9/10 … 1/10000), critical
// sections are 10 steps of a per-thread mt19937, non-critical sections are
// uniform in [0, 200) steps. Returns aggregate top-level loops completed.
func RWBench(lockName string, threads int, writeProb float64, cfg Config) float64 {
	threshold := uint64(writeProb * 1e6)
	return cfg.Median(func() float64 {
		l := mustLock(lockName)
		total := RunWorkers(threads, cfg.Interval, func(id int, stop *atomic.Bool) uint64 {
			rng := xrand.NewXorShift64(uint64(id)*2654435761 + 1)
			mt := xrand.NewMT19937(uint32(id) + 5489)
			var ops uint64
			for !stop.Load() {
				if rng.Next()%1e6 < threshold {
					l.Lock()
					mt.Step(10)
					l.Unlock()
				} else {
					tok := l.RLock()
					mt.Step(10)
					l.RUnlock(tok)
				}
				Work(rng, int(rng.Intn(200)))
				ops++
			}
			return ops
		})
		return float64(total)
	})
}

// Interference runs the §5.1 sensitivity experiment natively for one pool
// size: 64 threads picking read locks from a pool of nlocks BRAVO-BA locks,
// 20-step critical sections, 100-step non-critical sections. It returns
// shared-table throughput divided by private-table throughput.
func Interference(nlocks, threads int, cfg Config) float64 {
	run := func(private bool) float64 {
		return cfg.Median(func() float64 {
			shared := core.NewTable(core.DefaultTableSize)
			locks := make([]*core.Lock, nlocks)
			for i := range locks {
				tab := shared
				if private {
					tab = core.NewTable(core.DefaultTableSize)
				}
				locks[i] = core.New(new(pfq.Lock), core.WithTable(tab))
			}
			total := RunWorkers(threads, cfg.Interval, func(id int, stop *atomic.Bool) uint64 {
				rng := xrand.NewXorShift64(uint64(id) + 31)
				var ops uint64
				for !stop.Load() {
					l := locks[rng.Intn(uint64(nlocks))]
					tok := l.RLock()
					Work(rng, 20)
					l.RUnlock(tok)
					Work(rng, 100)
					ops++
				}
				return ops
			})
			return float64(total)
		})
	}
	return run(false) / run(true)
}

// SweepLocks evaluates fn for each lock and thread count, assembling the
// figure's Series.
func SweepLocks(locks []string, cfg Config, fn func(lockName string, threads int) float64) Series {
	out := Series{}
	for _, name := range locks {
		pts := make([]Point, 0, len(cfg.Threads))
		for _, tc := range cfg.Threads {
			pts = append(pts, Point{X: tc, Value: fn(name, tc)})
		}
		out[name] = pts
	}
	return out
}

// RevocationScanRate measures the writer's table scan in ns/slot (the paper
// reports ≈1.1ns/element on its testbed).
func RevocationScanRate(tableSize, iterations int) float64 {
	tab := core.NewTable(tableSize)
	st := &core.Stats{}
	l := core.New(new(pfq.Lock), core.WithTable(tab), core.WithPolicy(core.AlwaysPolicy{}), core.WithStats(st))
	for i := 0; i < iterations; i++ {
		tok := l.RLock() // slow read re-enables bias each round
		l.RUnlock(tok)
		l.Lock() // revokes: full scan
		l.Unlock()
	}
	snap := st.Snapshot()
	if snap.RevokeScanned == 0 {
		return 0
	}
	return float64(snap.RevokeNanos) / float64(snap.RevokeScanned)
}

// SizeReport returns the paper's §5 footprint table for this
// implementation's locks.
func SizeReport() string {
	return fmt.Sprintf(
		"lock sizes (bytes): ba≈%d pf-t≈%d bravo adds RBias+policy fields; "+
			"per-cpu=%d cohort≈%d shared-table=%d",
		64, 16, 72*arch.SectorSize, 7*arch.SectorSize, core.DefaultTableSize*8)
}
