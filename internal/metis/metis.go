// Package metis is a miniature of the Metis MapReduce library [33] used by
// the paper to stress mmap_sem in the kernel (§6.3, Tables 1–2).
//
// Metis's significance for BRAVO is not the MapReduce logic but its memory
// behaviour: map workers allocate aggressively, and each freshly-touched
// page takes mmap_sem for read (a page fault) while each buffer-pool growth
// takes it for write (an mmap) — "a relatively intense access to VMA
// through the mix of page-fault and mmap operations". Our workers therefore
// route every intermediate allocation through an Allocator backed by
// internal/vm: the data lives in ordinary Go memory, but each allocation
// performs the same simulated mmap_sem acquisitions its Metis counterpart
// would. All workers share one AddressSpace, as threads of one process do.
package metis

import (
	"sort"
	"sync"

	"github.com/bravolock/bravo/internal/rwsem"
	"github.com/bravolock/bravo/internal/vm"
)

// chunkSize is the allocator's growth quantum (one simulated mmap each).
const chunkSize = 1 << 20

// Allocator is a per-worker bump allocator whose backing "memory" is
// simulated by vm: growing takes mmap_sem for write, and the first touch of
// every page takes it for read.
type Allocator struct {
	as   *vm.AddressSpace
	task *rwsem.Task

	chunk   []byte // real storage for the current chunk
	base    uint64 // simulated base address of the current chunk
	off     uint64
	faulted uint64 // high-water mark of faulted pages within the chunk
}

// NewAllocator returns an allocator for one worker (task) over the shared
// address space.
func NewAllocator(as *vm.AddressSpace, task *rwsem.Task) *Allocator {
	return &Allocator{as: as, task: task}
}

// Alloc returns an n-byte buffer, simulating the mm traffic of the
// allocation: chunk growth mmaps, first touches fault.
func (a *Allocator) Alloc(n int) []byte {
	if n > chunkSize {
		n = chunkSize
	}
	if a.chunk == nil || a.off+uint64(n) > uint64(len(a.chunk)) {
		a.grow()
	}
	buf := a.chunk[a.off : a.off+uint64(n) : a.off+uint64(n)]
	a.off += uint64(n)
	// Fault in every page newly spanned by the bump pointer.
	for a.faulted*vm.PageSize < a.off {
		if _, err := a.as.PageFault(a.task, a.base+a.faulted*vm.PageSize); err != nil {
			// The address space is private to the job; a fault error means
			// the harness tore it down — treat as fatal programming error.
			panic(err)
		}
		a.faulted++
	}
	return buf
}

func (a *Allocator) grow() {
	base, err := a.as.Mmap(a.task, chunkSize, false)
	if err != nil {
		panic(err)
	}
	a.base = base
	a.chunk = make([]byte, chunkSize)
	a.off = 0
	a.faulted = 0
}

// Copy clones b into allocator-backed storage.
func (a *Allocator) Copy(b []byte) []byte {
	buf := a.Alloc(len(b))
	copy(buf, b)
	return buf
}

// KV is one emitted key/value pair.
type KV struct {
	Key   string
	Value uint64
}

// MapFunc consumes one input split and emits key/value pairs. The alloc
// argument provides worker-local, mm-instrumented storage.
type MapFunc func(split []byte, alloc *Allocator, emit func(key []byte, value uint64))

// ReduceFunc folds the values of one key.
type ReduceFunc func(key string, values []uint64) uint64

// Job is a Metis-style MapReduce job.
type Job struct {
	Workers int
	Map     MapFunc
	Reduce  ReduceFunc
	// AS is the shared simulated address space whose mmap_sem the job
	// contends on.
	AS *vm.AddressSpace
}

// Result is the reduced output, sorted by key.
type Result struct {
	Keys   []string
	Values map[string]uint64
}

// Run executes the job over the input splits.
func (j *Job) Run(splits [][]byte) *Result {
	workers := j.Workers
	if workers < 1 {
		workers = 1
	}
	// Map phase: workers pull splits and build local aggregates, allocating
	// intermediate storage through the simulated mm.
	work := make(chan []byte, len(splits))
	for _, s := range splits {
		work <- s
	}
	close(work)
	locals := make([]map[string][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			task := rwsem.NewTask()
			alloc := NewAllocator(j.AS, task)
			local := make(map[string][]uint64)
			emit := func(key []byte, value uint64) {
				k := string(alloc.Copy(key)) // intermediate copy through the mm
				local[k] = append(local[k], value)
			}
			for split := range work {
				j.Map(split, alloc, emit)
			}
			locals[w] = local
		}(w)
	}
	wg.Wait()

	// Reduce phase: partition the key space across workers and fold.
	partitions := make([]map[string]uint64, workers)
	for p := range partitions {
		partitions[p] = make(map[string]uint64)
	}
	var rg sync.WaitGroup
	for p := 0; p < workers; p++ {
		rg.Add(1)
		go func(p int) {
			defer rg.Done()
			merged := make(map[string][]uint64)
			for _, local := range locals {
				for k, vs := range local {
					if int(fnv(k))%workers != p {
						continue
					}
					merged[k] = append(merged[k], vs...)
				}
			}
			for k, vs := range merged {
				partitions[p][k] = j.Reduce(k, vs)
			}
		}(p)
	}
	rg.Wait()

	res := &Result{Values: make(map[string]uint64)}
	for _, part := range partitions {
		for k, v := range part {
			res.Values[k] = v
			res.Keys = append(res.Keys, k)
		}
	}
	sort.Strings(res.Keys)
	return res
}

// fnv is a small string hash for reduce partitioning.
func fnv(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}
