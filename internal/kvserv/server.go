// Package kvserv is the HTTP front-end over the sharded KV engine: the
// serving layer that turns the repository's lock work into a system that
// answers traffic. Every read a connection performs goes through one pinned
// rwl.Reader handle attached to that connection, so a client's steady-state
// read path — socket to shard map — costs one cached-slot CAS on the shard
// lock, with no per-request identity derivation or hashing.
//
// Endpoints (keys are decimal uint64, values are raw bytes; batched bodies
// are JSON with values base64-encoded, encoding/json's []byte convention):
//
//	GET    /kv/{key}            value bytes, 404 on miss or TTL expiry
//	PUT    /kv/{key}[?ttl=1s]   store body; ttl attaches an expiry;
//	       [?async=1]           async enqueues on the shard write queue
//	DELETE /kv/{key}            204 when removed, 404 when absent
//	GET    /mget?keys=1,2,3     {"values": [b64|null, ...]} parallel to keys
//	POST   /mput                {"entries":[{"key":1,"value":b64},...],
//	                             "ttl":"1s"?} applied as one MultiPut
//	POST   /flush               apply queued async writes: {"flushed":n}
//	POST   /checkpoint          durable engines: snapshot every shard and
//	                            truncate its WAL; 409 on volatile engines
//	GET    /stats               engine ShardedStats + totals + durability
//
// The per-connection handle relies on HTTP/1.x serving a connection's
// requests sequentially; the server does not enable h2, where concurrent
// streams would share the connection's handle.
package kvserv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/rwl"
)

// MaxValueBytes caps a single PUT body (and each MPUT value): the engine
// copies values under shard locks, so unbounded bodies would turn one
// request into a stop-the-world for its shard.
const MaxValueBytes = 1 << 20

// MaxMPutBodyBytes caps the whole /mput JSON body — the aggregate batch
// ceiling, on top of the per-entry MaxValueBytes check (base64 plus JSON
// framing inflate values by ~4/3, so this admits batches of several
// maximum-size entries or thousands of small ones). Oversize batches get
// 413; split them.
const MaxMPutBodyBytes = 16 << 20

// DefaultReapInterval and DefaultReapBudget pace the background TTL reaper:
// an incremental sweep every interval, examining at most budget tracked
// entries per tick under the ordinary shard write locks.
const (
	DefaultReapInterval = 100 * time.Millisecond
	DefaultReapBudget   = kvs.DefaultReapBudget
)

// Config tunes a Server.
type Config struct {
	// ReapInterval paces the background TTL reaper; 0 means
	// DefaultReapInterval, negative disables background reaping (TTL
	// expiry stays lazy on reads).
	ReapInterval time.Duration
	// ReapBudget bounds entries examined per reap tick; 0 means
	// DefaultReapBudget.
	ReapBudget int
}

// Server serves a kvs.Sharded engine over HTTP.
type Server struct {
	engine *kvs.Sharded
	cfg    Config
	http   *http.Server
	done   chan struct{}
	wg     sync.WaitGroup

	closeOnce sync.Once
}

// New returns a server over engine. Serve starts it; Close stops it.
func New(engine *kvs.Sharded, cfg Config) *Server {
	if cfg.ReapInterval == 0 {
		cfg.ReapInterval = DefaultReapInterval
	}
	if cfg.ReapBudget <= 0 {
		cfg.ReapBudget = DefaultReapBudget
	}
	s := &Server{engine: engine, cfg: cfg, done: make(chan struct{})}
	s.http = &http.Server{
		Handler: s.Handler(),
		// Slow-client bounds: a connection that trickles header bytes or
		// sits idle is reclaimed, rather than pinning a goroutine (and its
		// reader handle) forever.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		// One pinned reader handle per connection: HTTP/1.x serves a
		// connection's requests sequentially on one goroutine, so the
		// handle's single-goroutine contract holds.
		ConnContext: func(ctx context.Context, _ net.Conn) context.Context {
			return context.WithValue(ctx, readerKey{}, rwl.NewReader())
		},
	}
	return s
}

// readerKey carries the per-connection reader handle in the request context.
type readerKey struct{}

// connReader returns the request's connection-pinned reader handle, nil
// when the request did not come through Serve's ConnContext (e.g. direct
// Handler tests); the engine's read paths degrade gracefully on nil.
func connReader(r *http.Request) *rwl.Reader {
	h, _ := r.Context().Value(readerKey{}).(*rwl.Reader)
	return h
}

// Handler returns the route table. It is usable standalone (httptest), but
// only connections served via Serve get per-connection reader handles.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /kv/{key}", s.handleGet)
	mux.HandleFunc("PUT /kv/{key}", s.handlePut)
	mux.HandleFunc("DELETE /kv/{key}", s.handleDelete)
	mux.HandleFunc("GET /mget", s.handleMGet)
	mux.HandleFunc("POST /mput", s.handleMPut)
	mux.HandleFunc("POST /flush", s.handleFlush)
	mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// Serve accepts connections on l until Close. It also runs the background
// TTL reaper (unless disabled) so expired keys are removed incrementally
// while the server is up. Like http.Server.Serve, it always returns a
// non-nil error; after Close that error is http.ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	if s.cfg.ReapInterval > 0 {
		s.wg.Add(1)
		go s.reapLoop()
	}
	return s.http.Serve(l)
}

// Close immediately closes the listener and active connections, stops the
// reaper, and flushes the engine's queued async writes so nothing accepted
// with a 202 is left invisible (or, on durable engines, unlogged). It does
// not Close the engine itself — the caller owns that lifecycle (see
// cmd/kvserv's shutdown path).
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		err = s.http.Close()
		s.wg.Wait()
		s.engine.Flush()
	})
	return err
}

// reapLoop is the incremental background TTL reaper: one bounded Reap per
// tick, under the engine's ordinary shard write locks.
func (s *Server) reapLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.engine.Reap(s.cfg.ReapBudget)
		}
	}
}

func parseKey(r *http.Request) (uint64, error) {
	k, err := strconv.ParseUint(r.PathValue("key"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad key %q: want decimal uint64", r.PathValue("key"))
	}
	return k, nil
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	v, ok := s.engine.GetH(connReader(r), key)
	if !ok {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(v)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxValueBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", MaxValueBytes), http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, fmt.Sprintf("body: %v", err), http.StatusBadRequest)
		}
		return
	}
	q := r.URL.Query()
	if av := q.Get("async"); av != "" {
		async, err := strconv.ParseBool(av)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad async %q: want a boolean", av), http.StatusBadRequest)
			return
		}
		if async {
			if q.Get("ttl") != "" {
				http.Error(w, "ttl and async are exclusive: the queue applies without TTL", http.StatusBadRequest)
				return
			}
			s.engine.PutAsync(key, body)
			w.WriteHeader(http.StatusAccepted)
			return
		}
	}
	if ttlStr := q.Get("ttl"); ttlStr != "" {
		ttl, err := time.ParseDuration(ttlStr)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad ttl %q: %v", ttlStr, err), http.StatusBadRequest)
			return
		}
		s.engine.PutTTL(key, body, ttl)
	} else {
		s.engine.Put(key, body)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !s.engine.Delete(key) {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// mgetResponse answers /mget: values is parallel to the requested keys,
// null marking absent (or expired) keys; []byte values render as base64.
type mgetResponse struct {
	Values [][]byte `json:"values"`
}

func (s *Server) handleMGet(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("keys")
	if raw == "" {
		http.Error(w, "missing keys=1,2,3", http.StatusBadRequest)
		return
	}
	parts := strings.Split(raw, ",")
	keys := make([]uint64, len(parts))
	for i, p := range parts {
		k, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad key %q: want decimal uint64", p), http.StatusBadRequest)
			return
		}
		keys[i] = k
	}
	writeJSON(w, mgetResponse{Values: s.engine.MultiGetH(connReader(r), keys)})
}

// mputRequest is /mput's body: a batch applied as one MultiPut (each
// shard's group under a single write-lock acquisition), optionally with
// one TTL covering the batch.
type mputRequest struct {
	Entries []mputEntry `json:"entries"`
	TTL     string      `json:"ttl,omitempty"`
}

type mputEntry struct {
	Key   uint64 `json:"key"`
	Value []byte `json:"value"`
}

func (s *Server) handleMPut(w http.ResponseWriter, r *http.Request) {
	var req mputRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxMPutBodyBytes))
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("batch body exceeds %d bytes: split the batch", MaxMPutBodyBytes), http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, fmt.Sprintf("body: %v", err), http.StatusBadRequest)
		}
		return
	}
	var ttl time.Duration
	if req.TTL != "" {
		var err error
		if ttl, err = time.ParseDuration(req.TTL); err != nil {
			http.Error(w, fmt.Sprintf("bad ttl %q: %v", req.TTL, err), http.StatusBadRequest)
			return
		}
	}
	keys := make([]uint64, len(req.Entries))
	vals := make([][]byte, len(req.Entries))
	for i, e := range req.Entries {
		if len(e.Value) > MaxValueBytes {
			http.Error(w, fmt.Sprintf("entry %d: value exceeds %d bytes", i, MaxValueBytes), http.StatusRequestEntityTooLarge)
			return
		}
		keys[i] = e.Key
		vals[i] = e.Value
	}
	if req.TTL != "" {
		s.engine.MultiPutTTL(keys, vals, ttl)
	} else {
		s.engine.MultiPut(keys, vals)
	}
	writeJSON(w, map[string]int{"applied": len(keys)})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]int{"flushed": s.engine.Flush()})
}

// handleCheckpoint snapshots every shard and truncates its log. Volatile
// engines answer 409 (the operator asked for durability the server was not
// started with); real checkpoint IO failures are the one honest 500 here.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.engine.Durable() {
		http.Error(w, "engine is volatile: start kvserv with -data-dir", http.StatusConflict)
		return
	}
	if err := s.engine.Checkpoint(); err != nil {
		http.Error(w, fmt.Sprintf("checkpoint: %v", err), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]int{"checkpointed": s.engine.NumShards()})
}

// statsResponse is /stats: the engine's per-shard counters plus the fold
// and the durability posture. WALError carries the first WAL failure so a
// monitor can tell "serving but no longer durable" from healthy.
type statsResponse struct {
	NumShards     int              `json:"num_shards"`
	HandleCapable bool             `json:"handle_capable"`
	Durable       bool             `json:"durable"`
	SyncPolicy    string           `json:"sync_policy,omitempty"`
	WALError      string           `json:"wal_error,omitempty"`
	Total         kvs.ShardStats   `json:"total"`
	Shards        []kvs.ShardStats `json:"shards"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.engine.Stats()
	resp := statsResponse{
		NumShards:     s.engine.NumShards(),
		HandleCapable: s.engine.HandleCapable(),
		Durable:       s.engine.Durable(),
		Total:         st.Total(),
		Shards:        st.Shards,
	}
	if resp.Durable {
		resp.SyncPolicy = s.engine.SyncPolicy().String()
		if err := s.engine.WALError(); err != nil {
			resp.WALError = err.Error()
		}
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// Encode errors here mean the client went away mid-response; the status
	// header is already out, so there is nothing useful left to report.
	_ = json.NewEncoder(w).Encode(v)
}
