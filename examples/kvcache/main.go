// kvcache: a read-mostly in-memory KV cache — the workload class BRAVO
// targets (§1: databases, file systems, key-value stores), run on the
// repo's sharded engine. Sweeps the shard count for a plain BA substrate
// and its BRAVO form under identical load and prints throughput plus the
// BRAVO path statistics, showing the three scaling levers compose:
// striping spreads writers, reader bias removes the per-shard reader
// bottleneck, and write combining (the writer refreshes the cache in
// MultiPut batches, one lock acquisition — one revocation — per shard
// group) keeps the writer from constantly tearing the bias down. Readers
// pin handles, as kvserv pins one per connection.
//
//	go run ./examples/kvcache
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	bravo "github.com/bravolock/bravo"
)

const (
	keys     = 4096
	readers  = 4
	interval = 200 * time.Millisecond
)

func newKV(shards int, mk func() bravo.RWLock) *bravo.ShardedKV {
	kv, err := bravo.NewShardedKV(shards, mk)
	if err != nil {
		panic(err)
	}
	for k := uint64(0); k < keys; k++ {
		kv.Put(k, []byte{byte(k), byte(k >> 8)})
	}
	return kv
}

// drive runs 1 sparse batching writer + handle-pinned readers for the
// interval; returns reader ops.
func drive(kv *bravo.ShardedKV, d time.Duration) uint64 {
	var stop atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // sparse writer: a 16-key combined refresh per ~1.6ms
		defer wg.Done()
		const batch = 16
		bkeys := make([]uint64, batch)
		bvals := make([][]byte, batch)
		for i := uint64(0); !stop.Load(); i += batch {
			for j := range bkeys {
				bkeys[j] = (i + uint64(j)) % keys
				bvals[j] = []byte{byte(i + uint64(j))}
			}
			kv.MultiPut(bkeys, bvals) // one acquisition per shard group
			time.Sleep(batch * 100 * time.Microsecond)
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := bravo.NewReader() // one pinned identity per worker
			var n uint64
			k := seed
			buf := make([]byte, 0, 8)
			for !stop.Load() {
				k = k*2654435761 + 1
				buf, _ = kv.GetIntoH(h, k%keys, buf)
				n++
			}
			ops.Add(n)
		}(uint64(r) + 1)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return ops.Load()
}

func main() {
	fmt.Printf("sharded KV cache, %d keys, %d readers + 1 sparse writer, %v per point:\n\n",
		keys, readers, interval)
	fmt.Printf("%8s %14s %14s %8s %8s\n", "shards", "BA reads", "BRAVO-BA", "ratio", "fast%")
	for _, shards := range []int{1, 4, 16} {
		ba := drive(newKV(shards, bravo.NewBA), interval)

		stats := &bravo.Stats{}
		kv := newKV(shards, func() bravo.RWLock {
			return bravo.New(bravo.NewBA(), bravo.WithStats(stats))
		})
		bb := drive(kv, interval)
		snap := stats.Snapshot()

		fmt.Printf("%8d %14d %14d %7.2fx %7.1f%%\n",
			shards, ba, bb, float64(bb)/float64(ba), 100*snap.FastFraction())
		total := kv.Stats().Total()
		fmt.Printf("%8s   gets=%d hits=%d puts=%d in-place=%d\n",
			"", total.Gets, total.GetHits, total.Puts, total.PutsInPlace)
	}
	fmt.Println()
	fmt.Println("All BRAVO shard locks share one 32KB visible-readers table, so the")
	fmt.Println("read fast path stays one CAS no matter how many shards exist. On a")
	fmt.Println("many-core NUMA machine the gaps widen with reader count; see")
	fmt.Println("`bravobench -workload shardedkv` for the full scenario grid.")
}
