// Command kvserv serves the sharded BRAVO-backed KV engine over HTTP: the
// repository's traffic-facing front-end. Each connection gets one pinned
// reader handle, so a client's steady-state GET is a cached-slot CAS on the
// shard lock — socket to lock word with no per-request hashing.
//
//	kvserv -addr :7070 -shards 16 -lock bravo-go
//
// Endpoints: GET/PUT/DELETE /kv/{key} (PUT takes ?ttl=1s or ?async=1),
// GET /mget?keys=1,2,3, POST /mput, POST /flush, GET /stats. See
// internal/kvserv and README's "Serving traffic" section.
//
// The lock lineup is the benchmark registry's (-lock accepts any name from
// the README menu: go-rw, mutex, bravo-go, bravo-ba, ...), so the serving
// stack can be A/B'd across substrates exactly like the benchmarks.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/kvserv"
	_ "github.com/bravolock/bravo/internal/locks/all"
	"github.com/bravolock/bravo/internal/rwl"
)

var (
	addrFlag       = flag.String("addr", ":7070", "listen address")
	shardsFlag     = flag.Int("shards", 16, "shard count (positive power of two)")
	lockFlag       = flag.String("lock", "bravo-go", "per-shard lock (registry name)")
	reapFlag       = flag.Duration("reap", kvserv.DefaultReapInterval, "TTL reap interval (<0 disables background reaping)")
	reapBudgetFlag = flag.Int("reapbudget", kvserv.DefaultReapBudget, "TTL entries examined per reap tick")
	asyncFlag      = flag.Int("asyncbatch", kvs.DefaultAsyncBatch, "per-shard async write queue coalescing threshold")
)

func main() {
	flag.Parse()
	mk, ok := rwl.Lookup(*lockFlag)
	if !ok {
		_, err := rwl.New(*lockFlag) // canonical unknown-name error with the menu
		fatal(err)
	}
	engine, err := kvs.NewSharded(*shardsFlag, mk)
	if err != nil {
		fatal(err)
	}
	engine.SetAsyncBatch(*asyncFlag)
	l, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		fatal(err)
	}
	srv := kvserv.New(engine, kvserv.Config{
		ReapInterval: *reapFlag,
		ReapBudget:   *reapBudgetFlag,
	})
	handles := "anonymous reads (substrate has no handle path)"
	if engine.HandleCapable() {
		handles = "one pinned reader handle per connection"
	}
	fmt.Printf("kvserv: serving on %s — %d×%s shards, %s, reap %v\n",
		l.Addr(), *shardsFlag, *lockFlag, handles, *reapFlag)
	fatal(srv.Serve(l))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kvserv:", err)
	os.Exit(1)
}
