package repl

// FuzzReplStream feeds arbitrary bytes through the follower's stream
// path — the same DecodeReplFrame loop and apply logic streamOnce runs —
// into a real engine. Whatever the wire carries (truncated frames, bit
// flips, bogus LSNs, hostile lengths), the follower must never panic and
// never corrupt the applied store: only CRC-valid frames whose LSNs
// continue the sequence (or snapshot frames) may change state, and the
// applied LSN must track exactly the records that applied.

import (
	"sync/atomic"
	"testing"

	"github.com/bravolock/bravo/internal/kvs"
)

// newFuzzFollower builds a follower shell around a 1-shard volatile
// engine, bypassing Open (there is no primary; the fuzzer is the wire).
func newFuzzFollower(t testing.TB) *Follower {
	engine, err := kvs.NewSharded(1, mkStd)
	if err != nil {
		t.Fatal(err)
	}
	return &Follower{
		engine:    engine,
		shards:    1,
		applied:   make([]atomic.Uint64, 1),
		records:   make([]atomic.Uint64, 1),
		snapshots: make([]atomic.Uint64, 1),
		notify:    make(chan struct{}),
	}
}

// captureStream renders a real primary's stream bytes for seeds: a
// snapshot frame followed by incremental records.
func captureStream(f *testing.F) []byte {
	dir := f.TempDir()
	engine, err := kvs.OpenSharded(dir, 1, mkStd, kvs.SyncNone)
	if err != nil {
		f.Fatal(err)
	}
	defer engine.Close()
	engine.Put(1, []byte("one"))
	engine.MultiPut([]uint64{2, 3}, [][]byte{[]byte("two"), []byte("three")})
	engine.PutTTL(4, []byte("soon"), 1<<40)
	engine.Delete(2)
	frame, lsn, err := engine.ReplSnapshotFrame(0)
	if err != nil {
		f.Fatal(err)
	}
	_ = lsn
	var cur kvs.ReplCursor
	tail, err := engine.ReplRead(0, &cur, 1<<30)
	if err != nil {
		f.Fatal(err)
	}
	return append(frame, tail...)
}

func FuzzReplStream(f *testing.F) {
	stream := captureStream(f)
	f.Add(stream)
	f.Add(stream[:len(stream)/2]) // truncated mid-frame
	f.Add(stream[3:])             // misaligned start
	for _, i := range []int{1, 9, 13, len(stream) - 2} {
		mut := append([]byte(nil), stream...)
		mut[i] ^= 0x40 // bit flips in header, version, LSN, tail
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}) // insane length

	f.Fuzz(func(t *testing.T, data []byte) {
		fl := newFuzzFollower(t)
		// The puller's loop, verbatim in shape: decode complete frames,
		// apply in order, stop at corruption (a real follower reconnects).
		buf := data
		applies := 0
		for {
			rec, n, err := kvs.DecodeReplFrame(buf)
			if err != nil || n == 0 {
				break // corrupt → reconnect; incomplete → wait for bytes
			}
			before := fl.applied[0].Load()
			if aerr := fl.apply(0, rec); aerr != nil {
				break // stream gap: reconnect
			}
			after := fl.applied[0].Load()
			// The applied LSN only ever moves to the record's LSN, and
			// only snapshots may jump it.
			if after != before {
				if after != rec.LSN {
					t.Fatalf("applied LSN %d after a record at %d", after, rec.LSN)
				}
				if !rec.Snapshot && after != before+1 {
					t.Fatalf("incremental record jumped applied %d → %d", before, after)
				}
			}
			applies++
			buf = buf[n:]
		}
		// The store must remain coherent, whatever was fed: every read
		// path works, and state only exists if something actually applied.
		eng := fl.engine
		if n := eng.Len(); n > 0 && applies == 0 {
			t.Fatalf("engine holds %d keys but nothing applied", n)
		}
		eng.Range(func(_ uint64, v []byte) bool { return len(v) >= 0 })
		_ = eng.Snapshot()
		if _, _, err := kvs.DecodeReplFrame(buf); err != nil && err != kvs.ErrReplCorruptFrame {
			t.Fatalf("decoder surfaced unexpected error %v", err)
		}
	})
}
