// kvcache: a read-mostly in-memory cache — the workload class BRAVO targets
// (§1: databases, file systems, key-value stores). Compares a compact BA
// lock against its BRAVO form under identical load and prints the
// throughput ratio and path statistics.
//
//	go run ./examples/kvcache
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	bravo "github.com/bravolock/bravo"
)

// cache is a tiny versioned KV store behind an interchangeable lock.
type cache struct {
	lock bravo.RWLock
	data map[uint64]uint64
}

func newCache(l bravo.RWLock) *cache {
	c := &cache{lock: l, data: make(map[uint64]uint64)}
	for k := uint64(0); k < 4096; k++ {
		c.data[k] = k
	}
	return c
}

func (c *cache) get(k uint64) (uint64, bool) {
	tok := c.lock.RLock()
	v, ok := c.data[k]
	c.lock.RUnlock(tok)
	return v, ok
}

func (c *cache) put(k, v uint64) {
	c.lock.Lock()
	c.data[k] = v
	c.lock.Unlock()
}

// drive runs 1 writer + readers for the interval; returns reader ops.
func drive(c *cache, readers int, d time.Duration) uint64 {
	var stop atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // sparse writer: ~1 write per 100µs
		defer wg.Done()
		for i := uint64(0); !stop.Load(); i++ {
			c.put(i%4096, i)
			time.Sleep(100 * time.Microsecond)
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			var n uint64
			k := seed
			for !stop.Load() {
				k = k*2654435761 + 1
				c.get(k % 4096)
				n++
			}
			ops.Add(n)
		}(uint64(r) + 1)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return ops.Load()
}

func main() {
	const readers = 4
	const interval = 300 * time.Millisecond

	ba := drive(newCache(bravo.NewBA()), readers, interval)

	stats := &bravo.Stats{}
	bb := drive(newCache(bravo.New(bravo.NewBA(), bravo.WithStats(stats))), readers, interval)

	fmt.Printf("read-mostly cache, %d readers + 1 sparse writer, %v:\n", readers, interval)
	fmt.Printf("  BA:        %10d reads\n", ba)
	fmt.Printf("  BRAVO-BA:  %10d reads (%.2fx)\n", bb, float64(bb)/float64(ba))
	snap := stats.Snapshot()
	fmt.Printf("  fast-path fraction: %.1f%% (writes: %d, revocations: %d)\n",
		100*snap.FastFraction(), snap.Writes(), snap.WriteRevoke)
	fmt.Println()
	fmt.Println("On a many-core NUMA machine the gap widens with reader count;")
	fmt.Println("see `bravobench -fig 3` for the simulated X5-2 curves.")
}
