package sim

import (
	"testing"

	"github.com/bravolock/bravo/internal/topo"
)

func TestMachineLocalVsRemoteCosts(t *testing.T) {
	m := NewMachine(topo.X52, DefaultCosts())
	ln := m.NewLine()
	// Cold RMW pays a memory fetch.
	end := m.RMW(0, ln, 0)
	if end != m.Cost.MemoryNs {
		t.Fatalf("cold RMW cost %v, want %v", end, m.Cost.MemoryNs)
	}
	// Repeat by the same CPU is local.
	end2 := m.RMW(0, ln, end)
	if end2-end != m.Cost.LocalNs {
		t.Fatalf("local RMW cost %v, want %v", end2-end, m.Cost.LocalNs)
	}
	// Same-socket stealer pays intra-socket.
	end3 := m.RMW(1, ln, end2)
	if end3-end2 != m.Cost.IntraSocketNs {
		t.Fatalf("intra-socket RMW cost %v, want %v", end3-end2, m.Cost.IntraSocketNs)
	}
	// Cross-socket stealer pays inter-socket (CPU 40 is on socket 1).
	end4 := m.RMW(40, ln, end3)
	if end4-end3 != m.Cost.InterSocketNs {
		t.Fatalf("inter-socket RMW cost %v, want %v", end4-end3, m.Cost.InterSocketNs)
	}
}

func TestHotLineSerializes(t *testing.T) {
	// Two concurrent remote RMWs at the same instant must queue: the second
	// completes one transfer after the first.
	m := NewMachine(topo.X52, DefaultCosts())
	ln := m.NewLine()
	m.RMW(0, ln, 0)
	a := m.RMW(1, ln, 200)
	b := m.RMW(2, ln, 200)
	if b <= a {
		t.Fatalf("concurrent RMWs did not serialize: %v then %v", a, b)
	}
}

func TestSharedLoadsAreCheapAndConcurrent(t *testing.T) {
	m := NewMachine(topo.X52, DefaultCosts())
	ln := m.NewLine()
	m.Store(0, ln, 0)
	first := m.Load(5, ln, 1000) - 1000 // fetch
	again := m.Load(5, ln, 2000) - 2000 // cached
	if again >= first {
		t.Fatalf("repeat load (%v) not cheaper than first (%v)", again, first)
	}
	if again != m.Cost.SharedLoadNs {
		t.Fatalf("cached load cost %v, want %v", again, m.Cost.SharedLoadNs)
	}
	// A store invalidates sharers: the next load fetches again.
	m.Store(1, ln, 3000)
	refetch := m.Load(5, ln, 4000) - 4000
	if refetch == m.Cost.SharedLoadNs {
		t.Fatal("load after invalidation was served from a stale copy")
	}
}

func TestCentralLockExclusionInVirtualTime(t *testing.T) {
	m := NewMachine(topo.X52, DefaultCosts())
	l := NewCentral(m)
	th := &Thread{ID: 0, CPU: 0}
	rStart := l.AcquireRead(th, 0, 100)
	l.ReleaseRead(th, rStart+100)
	wStart := l.AcquireWrite(th, 10, 50) // arrived during the read CS
	if wStart < rStart+100 {
		t.Fatalf("writer admitted at %v during read CS ending %v", wStart, rStart+100)
	}
	l.ReleaseWrite(th, wStart+50)
	r2 := l.AcquireRead(th, wStart+1, 10)
	if r2 < wStart+50 {
		t.Fatalf("reader admitted at %v during write CS ending %v", r2, wStart+50)
	}
}

func TestBravoFastPathIsLocalAfterBias(t *testing.T) {
	m := NewMachine(topo.X52, DefaultCosts())
	b := NewBravo(m, NewCentral(m), NewTable(m, 4096))
	th := &Thread{ID: 3, CPU: 3}
	// First read: slow, enables bias.
	t0 := b.AcquireRead(th, 0, 0)
	t0 = b.ReleaseRead(th, t0)
	if !b.rbias {
		t.Fatal("bias not enabled")
	}
	// Warm the slot line (first fast read pays the cold fetch), then
	// steady-state fast reads must be an order of magnitude cheaper than a
	// contended central RMW.
	t0 = b.AcquireRead(th, t0, 0)
	t0 = b.ReleaseRead(th, t0)
	start := t0
	end := b.AcquireRead(th, start, 0)
	end = b.ReleaseRead(th, end)
	cost := end - start
	if cost > 4*m.Cost.LocalNs+2*m.Cost.SharedLoadNs {
		t.Fatalf("steady-state fast read costs %vns", cost)
	}
}

func TestBravoRevocationBlocksWriterUntilFastReaderLeaves(t *testing.T) {
	m := NewMachine(topo.X52, DefaultCosts())
	b := NewBravo(m, NewCentral(m), NewTable(m, 4096))
	r := &Thread{ID: 1, CPU: 1}
	w := &Thread{ID: 2, CPU: 40}
	t0 := b.AcquireRead(r, 0, 0) // slow; enables bias
	t0 = b.ReleaseRead(r, t0)
	rs := b.AcquireRead(r, t0, 5000) // fast, 5µs CS
	// Writer arriving mid-CS must wait for the fast reader.
	ws := b.AcquireWrite(w, rs+1, 100)
	if ws < rs+5000 {
		t.Fatalf("writer admitted at %v during fast read ending %v", ws, rs+5000)
	}
	b.ReleaseRead(r, rs+5000)
	if b.rbias {
		t.Fatal("bias survived revocation")
	}
	if b.inhibitUntil <= ws {
		t.Fatal("inhibit window not set by revocation")
	}
}

func TestFigure8ShapeStockSaturatesBravoScales(t *testing.T) {
	// The §6.1 modified locktorture (5µs CS, 0 writers): stock rwsem stops
	// scaling once the counter saturates; BRAVO scales across all counts.
	s := Figure8Locktorture([]int{1, 16, 72}, 5000)
	stock, bravo := s["stock"], s["BRAVO"]
	if bravo[2].Value < bravo[1].Value*2 {
		t.Fatalf("BRAVO did not keep scaling: %v", bravo)
	}
	if stock[2].Value > stock[1].Value*2 {
		t.Fatalf("stock kept scaling past saturation: %v", stock)
	}
	if bravo[2].Value < stock[2].Value*2 {
		t.Fatalf("BRAVO (%v) should clearly beat stock (%v) at 72 threads",
			bravo[2].Value, stock[2].Value)
	}
}

func TestFigure8LongCSBothScale(t *testing.T) {
	// With 50ms critical sections, contention is masked and the kernels tie
	// (§6.1: "both versions increase the number of reads linearly").
	s := Figure8Locktorture([]int{1, 16, 72}, 50e6)
	stock, bravo := s["stock"], s["BRAVO"]
	for i := range stock {
		ratio := bravo[i].Value / stock[i].Value
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("kernels diverge at %d threads: stock=%v bravo=%v",
				stock[i].Threads, stock[i].Value, bravo[i].Value)
		}
	}
	if stock[2].Value < stock[1].Value*3 {
		t.Fatalf("stock should scale with long CS: %v", stock)
	}
}

func TestFigure2ShapeBravoBeatsBA(t *testing.T) {
	s := Figure2Alternator([]int{1, 2, 10, 50})
	ba, bravo := s["BA"], s["BRAVO-BA"]
	// At 10+ threads BRAVO-BA must outperform BA by a wide margin (§5.2).
	for i := 2; i < len(ba); i++ {
		if bravo[i].Value < ba[i].Value*1.5 {
			t.Fatalf("at %d threads BRAVO-BA=%v vs BA=%v: no wide margin",
				ba[i].Threads, bravo[i].Value, ba[i].Value)
		}
	}
	// All locks drop sharply from 1 to 2 threads (coherent notification).
	if s["BA"][1].Value >= s["BA"][0].Value {
		t.Fatal("no 1→2 thread notification penalty")
	}
}

func TestFigure3ShapeReadDominatedOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: 50-thread simulated figure (seconds of sim time)")
	}
	// test_rwlock is extremely read-dominated: Per-CPU best, BRAVO-BA ≫ BA
	// at high thread counts (§5.3).
	s := Figure3TestRWLock([]int{1, 10, 50})
	at := func(name string, i int) float64 { return s[name][i].Value }
	if at("BRAVO-BA", 2) < 2*at("BA", 2) {
		t.Fatalf("BRAVO-BA (%v) should significantly outperform BA (%v) at 50 threads",
			at("BRAVO-BA", 2), at("BA", 2))
	}
	if at("Per-CPU", 2) < at("BA", 2) {
		t.Fatal("Per-CPU should beat BA on a read-dominated workload")
	}
}

func TestFigure4ShapeWriteHeavyParity(t *testing.T) {
	// At 90% writes BRAVO must track its underlying lock (no harm), and
	// Per-CPU must fare poorly (writers sweep the array) (§5.4).
	s := Figure4RWBench([]int{10, 50}, 0.9)
	for i := range s["BA"] {
		ba, bravo := s["BA"][i].Value, s["BRAVO-BA"][i].Value
		if bravo < ba*0.85 {
			t.Fatalf("BRAVO-BA harmed a write-heavy workload: %v vs %v", bravo, ba)
		}
	}
	if s["Per-CPU"][1].Value > s["BA"][1].Value {
		t.Fatal("Per-CPU should not win a write-heavy workload")
	}
}

func TestFigure4ShapeReadHeavyWin(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: 50-thread simulated figure (seconds of sim time)")
	}
	// At 0.01% writes BRAVO-BA approaches Per-CPU and beats BA (§5.4f).
	s := Figure4RWBench([]int{20, 50}, 0.0001)
	i := 1
	if s["BRAVO-BA"][i].Value < 2*s["BA"][i].Value {
		t.Fatalf("BRAVO-BA (%v) should beat BA (%v) at 50 threads, 0.01%% writes",
			s["BRAVO-BA"][i].Value, s["BA"][i].Value)
	}
}

func TestFigure1InterferenceBounded(t *testing.T) {
	// §5.1: the worst-case penalty from sharing one table across a pool of
	// locks "is always under 6%" on the paper's hardware. Our first-order
	// cost model overstates near-collision false sharing (it has no memory
	// level parallelism), so we assert the qualitative property — the
	// penalty is bounded and modest — with a wider band.
	if testing.Short() {
		// Every pool point simulates 64 threads across a full horizon twice
		// (shared vs private tables) — seconds apiece, with no cheap
		// reduced form. Regular mode runs the full band.
		t.Skip("short mode: 64-thread interference simulation (seconds per pool size)")
	}
	pts := Figure1Interference([]int{1, 8, 64, 512})
	for _, p := range pts {
		if p.Value < 0.72 || p.Value > 1.15 {
			t.Fatalf("interference ratio at %d locks = %v, want bounded near 1", p.Threads, p.Value)
		}
	}
	// With a single lock there is no inter-lock interference at all.
	if pts[0].Value < 0.95 {
		t.Fatalf("single-lock ratio = %v, want ≈1", pts[0].Value)
	}
}

func TestDeterminism(t *testing.T) {
	a := Figure4RWBench([]int{10}, 0.01)
	b := Figure4RWBench([]int{10}, 0.01)
	for name := range a {
		if a[name][0].Value != b[name][0].Value {
			t.Fatalf("simulation not deterministic for %s", name)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	// §6.2: page_fault scales better under BRAVO at high thread counts;
	// mmap shows "no significant difference".
	pf := Figure9WillItScale([]int{1, 16, 72}, "page_fault1")
	if pf["BRAVO"][2].Value < pf["stock"][2].Value*1.2 {
		t.Fatalf("BRAVO (%v) should beat stock (%v) on page_fault at 72 threads",
			pf["BRAVO"][2].Value, pf["stock"][2].Value)
	}
	mm := Figure9WillItScale([]int{1, 16}, "mmap1")
	for i := range mm["stock"] {
		ratio := mm["BRAVO"][i].Value / mm["stock"][i].Value
		if ratio < 0.8 || ratio > 1.25 {
			t.Fatalf("mmap1 kernels diverge at %d threads: %v", mm["stock"][i].Threads, ratio)
		}
	}
}

func TestFigure7WritesDropUnderBravo(t *testing.T) {
	// §6.1: "the stock version has a better [write] result" because BRAVO
	// writers pay revocation against 50ms readers.
	reads, writes := Figure7Locktorture([]int{8})
	if writes["BRAVO"][0].Value > writes["stock"][0].Value {
		t.Fatalf("BRAVO writes (%v) should not exceed stock (%v)",
			writes["BRAVO"][0].Value, writes["stock"][0].Value)
	}
	if reads["BRAVO"][0].Value < reads["stock"][0].Value*0.8 {
		t.Fatalf("BRAVO reads (%v) fell far below stock (%v)",
			reads["BRAVO"][0].Value, reads["stock"][0].Value)
	}
}
