// Package hash provides the avalanching integer mix functions used to map a
// (lock address, thread identity) pair to a visible-readers-table index.
//
// The paper's hash "is based on the Mix32 operator found in [43]" — Steele,
// Lea and Flood, "Fast Splittable Pseudorandom Number Generators" (OOPSLA
// 2014). We provide both the 32-bit and 64-bit finalizers from that lineage
// (the 64-bit one is MurmurHash3's fmix64, used by SplitMix64).
package hash

// Mix64 is the 64-bit avalanching finalizer (fmix64 / SplitMix64 family).
// It is a bijection on uint64 with full avalanche: every input bit affects
// every output bit with probability ~1/2.
func Mix64(z uint64) uint64 {
	z ^= z >> 33
	z *= 0xff51afd7ed558ccd
	z ^= z >> 33
	z *= 0xc4ceb9fe1a85ec53
	z ^= z >> 33
	return z
}

// Mix32 is the 32-bit avalanching finalizer (fmix32, the Mix32 operator of
// Steele et al. [43]). It is a bijection on uint32.
func Mix32(z uint32) uint32 {
	z ^= z >> 16
	z *= 0x85ebca6b
	z ^= z >> 13
	z *= 0xc2b2ae35
	z ^= z >> 16
	return z
}

// Index hashes a lock address and a thread identity into [0, size).
// size must be a power of two.
func Index(lock uintptr, self uint64, size uint32) uint32 {
	h := Mix64(uint64(lock) ^ Mix64(self))
	return uint32(h) & (size - 1)
}

// Index2 is the secondary probe used by the double-probe fast-path extension
// (paper §7 future work). It is independent of Index: the two probes of a
// given (lock, self) pair collide only by chance.
func Index2(lock uintptr, self uint64, size uint32) uint32 {
	h := Mix64(uint64(lock)*0x9e3779b97f4a7c15 + Mix64(self^0xa5a5a5a5a5a5a5a5))
	return uint32(h>>32) & (size - 1)
}
