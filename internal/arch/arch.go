// Package arch captures the machine geometry constants used throughout the
// lock implementations.
//
// The paper's system under test is an Intel Xeon with 64-byte coherence
// units and an adjacent-line prefetcher, so locks are padded to 128-byte
// "sectors" to avoid false sharing (paper §5). We keep the same geometry:
// it costs little on other machines and keeps footprint numbers comparable
// with the paper's Table of lock sizes.
package arch

const (
	// CacheLineSize is the unit of coherence.
	CacheLineSize = 64

	// SectorSize is the alignment quantum used to avoid false sharing.
	// Intel's adjacent cache line prefetcher pulls lines in pairs, so
	// independently-written fields are kept 128 bytes apart.
	SectorSize = 128
)

// CacheLinePad occupies one cache line. Embed between fields that are
// written by different threads.
type CacheLinePad struct{ _ [CacheLineSize]byte }

// SectorPad occupies one sector (two cache lines on Intel).
type SectorPad struct{ _ [SectorSize]byte }
