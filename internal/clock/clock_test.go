package clock

import (
	"testing"
	"time"
)

func TestMonotonic(t *testing.T) {
	prev := Nanos()
	for i := 0; i < 10000; i++ {
		now := Nanos()
		if now < prev {
			t.Fatalf("clock went backwards: %d < %d", now, prev)
		}
		prev = now
	}
}

func TestAdvances(t *testing.T) {
	a := Nanos()
	time.Sleep(5 * time.Millisecond)
	b := Nanos()
	if b-a < int64(time.Millisecond) {
		t.Fatalf("clock advanced only %dns across a 5ms sleep", b-a)
	}
}
