// Package xrand provides the pseudo-random number generators the paper's
// benchmarks rely on:
//
//   - XorShift64: the thread-local Marsaglia xorshift generator [34] that the
//     early BRAVO prototype used for its Bernoulli bias trials, and that
//     benchmark threads use for cheap per-thread randomness.
//   - SplitMix64: seeding and stateless mixing (Steele et al. [43]).
//   - MT19937: Mersenne Twister; RWBench's critical sections execute "10
//     steps of a thread-local C++ std::mt19937" (paper §5.4), so we reproduce
//     that generator exactly.
//
// None of these are safe for concurrent use; every benchmark thread owns its
// own instance, exactly as in the paper.
package xrand

// XorShift64 is Marsaglia's 64-bit xorshift generator.
type XorShift64 struct {
	s uint64
}

// NewXorShift64 returns a generator seeded from seed; a zero seed is
// remapped (xorshift has an all-zero fixed point).
func NewXorShift64(seed uint64) *XorShift64 {
	x := &XorShift64{}
	x.Seed(seed)
	return x
}

// Seed resets the generator state.
func (x *XorShift64) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	x.s = seed
}

// Next returns the next value in the sequence (triplet 13/7/17).
func (x *XorShift64) Next() uint64 {
	s := x.s
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	x.s = s
	return s
}

// Bernoulli reports true with probability 1/n (n > 0). This is the "low-cost
// Bernoulli trial with probability P = 1/100" used by BRAVO's prototype
// bias-setting policy.
func (x *XorShift64) Bernoulli(n uint64) bool {
	return x.Next()%n == 0
}

// Intn returns a value uniformly distributed in [0, n).
func (x *XorShift64) Intn(n uint64) uint64 {
	return x.Next() % n
}

// SplitMix64 is the SplitMix64 generator, used for seeding the others.
type SplitMix64 struct {
	s uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{s: seed} }

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.s += 0x9e3779b97f4a7c15
	z := s.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
