package bias

import (
	"sync"
	"sync/atomic"
	"testing"
)

// feed closes exactly one window with the given read/write deltas by
// advancing the cumulative totals the adaptor has already seen.
type feeder struct {
	a      *Adaptor
	reads  uint64
	writes uint64
}

func (f *feeder) window(dr, dw uint64) {
	f.reads += dr
	f.writes += dw
	f.a.Offer(f.reads, f.writes)
}

func TestAdaptorHysteresisFlips(t *testing.T) {
	a := NewAdaptor(Thresholds{})
	w := a.ThresholdsInUse().Window
	f := &feeder{a: a}

	if a.Mode() != ModeBiased {
		t.Fatalf("initial mode = %v, want biased", a.Mode())
	}
	// Pure-write window: biased → fair.
	f.window(0, w)
	if a.Mode() != ModeFair {
		t.Fatalf("after write-heavy window: mode = %v, want fair", a.Mode())
	}
	// Mid-band window (r ≈ 0.85, between FairExit and BiasEnter): fair →
	// neutral, one step only.
	f.window(w-w*15/100, w*15/100)
	if a.Mode() != ModeNeutral {
		t.Fatalf("after mid-band window: mode = %v, want neutral", a.Mode())
	}
	// Same mix again: the dead zone holds the mode (no ping-pong).
	f.window(w-w*15/100, w*15/100)
	if a.Mode() != ModeNeutral {
		t.Fatalf("dead-zone window flipped the mode to %v", a.Mode())
	}
	// Read-dominated window: neutral → biased.
	f.window(w, 0)
	if a.Mode() != ModeBiased {
		t.Fatalf("after read-heavy window: mode = %v, want biased", a.Mode())
	}
	if got := a.Flips(); got != 3 {
		t.Fatalf("flips = %d, want 3", got)
	}
}

func TestAdaptorOneFlipPerWindow(t *testing.T) {
	a := NewAdaptor(Thresholds{})
	w := a.ThresholdsInUse().Window
	f := &feeder{a: a}

	// Below-window deltas never evaluate.
	f.window(w/4, 0)
	f.window(w/4, 0)
	if got := a.Snapshot().Windows; got != 0 {
		t.Fatalf("windows closed below the op threshold: %d", got)
	}
	// One Offer carrying many windows' worth of writes still closes exactly
	// one window and applies at most one flip: biased lands on fair, not on
	// some double-stepped state, and the flip counter moves by one.
	f.window(0, 10*w)
	snap := a.Snapshot()
	if snap.Windows != 1 || snap.Flips != 1 || snap.Mode != ModeFair {
		t.Fatalf("bulk window: windows=%d flips=%d mode=%v, want 1/1/fair",
			snap.Windows, snap.Flips, snap.Mode)
	}
}

func TestAdaptorRevocationOverloadDemotes(t *testing.T) {
	a := NewAdaptor(Thresholds{})
	w := a.ThresholdsInUse().Window
	f := &feeder{a: a}

	// A read fraction above BiasEnter would normally keep biased mode, but
	// revocation time far beyond the window's wall time trips the
	// generalized inhibit bound and demotes to neutral.
	a.NoteRevocation(int64(1) << 60)
	f.window(w, w/100)
	if a.Mode() != ModeNeutral {
		t.Fatalf("overloaded window: mode = %v, want neutral", a.Mode())
	}
	// And it blocks re-promotion while the overload persists.
	a.NoteRevocation(int64(1) << 60)
	f.window(w, 0)
	if a.Mode() != ModeNeutral {
		t.Fatalf("re-promoted while revocation-overloaded: mode = %v", a.Mode())
	}
	// With the overload gone, a read-heavy window promotes again.
	f.window(w, 0)
	if a.Mode() != ModeBiased {
		t.Fatalf("calm window: mode = %v, want biased", a.Mode())
	}
}

func TestAdaptorSetEnabled(t *testing.T) {
	a := NewAdaptor(Thresholds{})
	w := a.ThresholdsInUse().Window
	f := &feeder{a: a}

	f.window(0, w)
	if a.Mode() != ModeFair {
		t.Fatalf("setup: mode = %v, want fair", a.Mode())
	}
	a.SetEnabled(false)
	if a.Mode() != ModeBiased || a.Adaptive() {
		t.Fatalf("disable: mode = %v adaptive = %v, want biased/false", a.Mode(), a.Adaptive())
	}
	// Offers are ignored while disabled.
	f.window(0, w)
	if a.Mode() != ModeBiased {
		t.Fatalf("offer flipped a disabled adaptor to %v", a.Mode())
	}
	a.SetEnabled(true)
	f.window(0, w)
	if a.Mode() != ModeFair {
		t.Fatalf("re-enable: mode = %v, want fair", a.Mode())
	}
}

func TestAdaptorThresholdsSanitize(t *testing.T) {
	got := Thresholds{}.sanitize()
	if got != DefaultThresholds() {
		t.Fatalf("zero thresholds = %+v, want defaults", got)
	}
	// Inverted bands are repaired into a consistent ordering.
	bad := Thresholds{BiasEnter: 0.7, BiasExit: 0.9, FairEnter: 0.95, FairExit: 0.1}.sanitize()
	if !(bad.FairEnter <= bad.FairExit && bad.FairExit <= bad.BiasExit && bad.BiasExit <= bad.BiasEnter) {
		t.Fatalf("sanitize left an inconsistent band: %+v", bad)
	}
}

// TestAdaptorSnapshotCoherentUnderFlips is the satellite-2 storm: one
// goroutine closes windows that strictly alternate pure-read and pure-write
// (so the mode provably flips every window and always matches its window's
// dominant side), while snapshotters hammer Snapshot. Any torn snapshot —
// a new mode paired with the previous window's counters, or a flip count
// from a different bracket than the window count — violates one of the
// checked equalities.
func TestAdaptorSnapshotCoherentUnderFlips(t *testing.T) {
	a := NewAdaptor(Thresholds{})
	w := a.ThresholdsInUse().Window
	const windows = 4000

	var stop atomic.Bool
	var torn atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s := a.Snapshot()
				if s.Windows == 0 {
					continue
				}
				// Window k is pure-write for odd k, pure-read for even k,
				// so the mode after window k is fair iff k is odd — and
				// every window flips, so flips must equal windows.
				if s.Flips != s.Windows {
					torn.Add(1)
					continue
				}
				wantFair := s.Windows%2 == 1
				if wantFair != (s.Mode == ModeFair) ||
					wantFair != (s.WindowWrites > s.WindowReads) {
					torn.Add(1)
				}
			}
		}()
	}

	f := &feeder{a: a}
	for k := 1; k <= windows; k++ {
		if k%2 == 1 {
			f.window(0, w)
		} else {
			f.window(w, 0)
		}
	}
	stop.Store(true)
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d torn snapshots observed a mode/counter pairing that never existed", n)
	}
}
