package kvs

import (
	"bytes"
	"testing"
)

func TestSeqCellRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 63, 64, 100} {
		v := make([]byte, n)
		for i := range v {
			v[i] = byte(i*7 + 3)
		}
		c := newSeqCell(v, 0)
		if got := c.bytes(); !bytes.Equal(got, v) {
			t.Fatalf("len %d: round trip = %x, want %x", n, got, v)
		}
		if got := c.bytes(); got == nil {
			t.Fatalf("len %d: bytes() returned nil; nil is the absence marker", n)
		}
		if !c.fits(n) {
			t.Fatalf("len %d: cell does not fit its own value", n)
		}
	}
}

func TestSeqCellInPlaceShrinkAndRegrow(t *testing.T) {
	c := newSeqCell([]byte("eightby!"), 0) // 8 bytes, one word
	if !c.fits(2) || c.fits(9) {
		t.Fatalf("fits(2)=%v fits(9)=%v, want true/false", c.fits(2), c.fits(9))
	}
	c.set([]byte("xy"), 0)
	if got := c.bytes(); string(got) != "xy" {
		t.Fatalf("after shrink = %q", got)
	}
	c.set([]byte("abcdefgh"), 42)
	if got := c.bytes(); string(got) != "abcdefgh" {
		t.Fatalf("after regrow = %q", got)
	}
	if d := c.deadline.Load(); d != 42 {
		t.Fatalf("deadline = %d, want 42", d)
	}
}

func TestSeqCellTornLengthClamps(t *testing.T) {
	// A torn length must misreport the payload, never send the copy out of
	// bounds: the clamp is the memory-safety half of the seqlock contract
	// (the seq validation is the correctness half).
	c := newSeqCell([]byte{1, 2, 3}, 0)
	c.vlen.Store(1 << 40) // simulate a torn/insane visible length
	if got := c.length(); got != len(c.words)*8 {
		t.Fatalf("clamped length = %d, want %d", got, len(c.words)*8)
	}
	if got := c.appendTo(nil); len(got) != len(c.words)*8 {
		t.Fatalf("torn appendTo returned %d bytes, want the clamp %d", len(got), len(c.words)*8)
	}
	c.vlen.Store(-5)
	if got := c.appendTo(nil); len(got) != len(c.words)*8 {
		t.Fatalf("negative-length appendTo returned %d bytes", len(got))
	}
}
