// Package spin implements polite busy-waiting.
//
// The paper's locks busy-wait on cache-local state; on a real multiprocessor
// a PAUSE instruction suffices. Goroutines are multiplexed onto Ps, so an
// uncooperative spin loop can livelock the scheduler whenever spinners
// outnumber Ps (always true at GOMAXPROCS=1). Every wait loop in this
// repository therefore spins actively for a short burst, then yields with
// runtime.Gosched, and finally sleeps in escalating micro-naps — the
// spin-then-park shape the paper mentions for revoking writers.
package spin

import (
	"runtime"
	"time"
)

// Tunables. activeSpins is deliberately small: with few Ps the active phase
// is nearly useless, and with many Ps the yield phase is still cheap.
const (
	activeSpins = 32  // iterations of pure busy work before yielding
	yieldSpins  = 256 // Gosched calls before starting to sleep
	maxNapNanos = 64 * 1000
)

var singleP = runtime.GOMAXPROCS(0) == 1

// Backoff tracks the progression of one waiting episode. The zero value is
// ready to use; a Backoff must not be shared between goroutines.
type Backoff struct {
	i int
}

// Reset restarts the backoff progression (call after the awaited condition
// was observed and waiting begins anew).
func (b *Backoff) Reset() { b.i = 0 }

// Once performs one unit of polite waiting and escalates the backoff state.
func (b *Backoff) Once() {
	b.i++
	switch {
	case b.i <= activeSpins && !singleP:
		doNotOptimize()
	case b.i <= yieldSpins:
		runtime.Gosched()
	default:
		nap := time.Duration((b.i - yieldSpins) * 1000)
		if nap > maxNapNanos {
			nap = maxNapNanos
		}
		time.Sleep(nap)
	}
}

// Until spins politely until cond reports true.
func Until(cond func() bool) {
	var b Backoff
	for !cond() {
		b.Once()
	}
}

// sink defeats dead-code elimination of the active spin phase.
var sink uint64

func doNotOptimize() {
	// A handful of arithmetic ops approximates a PAUSE-class delay without
	// touching shared state.
	x := sink
	for i := 0; i < 8; i++ {
		x = x*2654435761 + 1
	}
	sink = x
}
