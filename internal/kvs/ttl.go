package kvs

import (
	"math"
	"time"

	"github.com/bravolock/bravo/internal/clock"
)

// ttlMap tracks TTL deadlines for an engine stripe or shard: key →
// absolute clock.Nanos deadline, holding only keys written with a TTL so
// TTL-free workloads pay one len check per read. Both Memtable stripes and
// Sharded shards embed one, guarded by their lock; the inclusive-deadline
// rule and the zero-value-means-no-TTL convention live here, in one place.
type ttlMap map[uint64]int64

// expired reports whether m tracks key with a deadline that has passed.
// Expiry is inclusive: a key is expired the exact nanosecond its deadline
// arrives (now >= deadline). The clock is only consulted when m tracks at
// least one key.
func (m ttlMap) expired(key uint64) bool {
	if len(m) == 0 {
		return false
	}
	d, ok := m[key]
	return ok && clock.Nanos() >= d
}

// set records deadline for key (allocating the map on first use), or
// clears any tracked deadline when deadline is 0 — the sentinel for "no
// TTL". The caller holds the owning stripe/shard write lock.
func (m *ttlMap) set(key uint64, deadline int64) {
	if deadline != 0 {
		if *m == nil {
			*m = make(ttlMap)
		}
		(*m)[key] = deadline
	} else if len(*m) > 0 {
		delete(*m, key)
	}
}

// ttlDeadline converts a relative TTL into an absolute clock.Nanos
// deadline. Non-positive TTLs yield an already-passed deadline, so the key
// is born expired; a positive TTL whose deadline would overflow int64
// (~292 years of nanoseconds) saturates to MaxInt64 — effectively never —
// rather than wrapping negative and silently expiring the key at birth.
// The zero deadline is reserved for "no TTL".
func ttlDeadline(ttl time.Duration) int64 {
	now := clock.Nanos()
	d := now + ttl.Nanoseconds()
	if ttl > 0 && d < now {
		return math.MaxInt64
	}
	return d
}
