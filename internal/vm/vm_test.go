package vm

import (
	"sync"
	"testing"

	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/rwsem"
)

func newStockAS() *AddressSpace {
	return NewAddressSpace(StockSem{S: rwsem.New(rwsem.DefaultConfig())})
}

func newBravoAS() *AddressSpace {
	b := rwsem.NewBravo(rwsem.DefaultConfig())
	b.SetTable(core.NewTable(core.DefaultTableSize))
	return NewAddressSpace(BravoSem{S: b})
}

func TestMmapTouchMunmap(t *testing.T) {
	for _, mk := range []func() *AddressSpace{newStockAS, newBravoAS} {
		as := mk()
		task := rwsem.NewTask()
		const length = 64 * PageSize
		addr, err := as.Mmap(task, length, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := as.Touch(task, addr, length); err != nil {
			t.Fatal(err)
		}
		v := as.Find(task, addr)
		if v == nil || v.Populated() != 64 {
			t.Fatalf("expected 64 populated pages, got %v", v)
		}
		if err := as.Munmap(task, addr); err != nil {
			t.Fatal(err)
		}
		if as.VMACount(task) != 0 {
			t.Fatal("VMA leaked after munmap")
		}
		faults, mmaps, munmaps := as.Stats()
		if faults != 64 || mmaps != 1 || munmaps != 1 {
			t.Fatalf("stats = %d/%d/%d, want 64/1/1", faults, mmaps, munmaps)
		}
	}
}

func TestMmapValidation(t *testing.T) {
	as := newStockAS()
	task := rwsem.NewTask()
	if _, err := as.Mmap(task, 0, false); err == nil {
		t.Fatal("zero-length mmap accepted")
	}
	if _, err := as.Mmap(task, PageSize+1, false); err == nil {
		t.Fatal("unaligned mmap accepted")
	}
}

func TestFaultOutsideMapping(t *testing.T) {
	as := newStockAS()
	task := rwsem.NewTask()
	if _, err := as.PageFault(task, 0xdead000); err == nil {
		t.Fatal("fault on unmapped address succeeded")
	}
}

func TestMunmapUnknownAddress(t *testing.T) {
	as := newStockAS()
	task := rwsem.NewTask()
	if err := as.Munmap(task, 0x1000); err == nil {
		t.Fatal("munmap of unknown address succeeded")
	}
}

func TestRepeatFaultIsNotFresh(t *testing.T) {
	as := newStockAS()
	task := rwsem.NewTask()
	addr, _ := as.Mmap(task, PageSize, false)
	fresh, err := as.PageFault(task, addr)
	if err != nil || !fresh {
		t.Fatalf("first fault: fresh=%v err=%v", fresh, err)
	}
	fresh, err = as.PageFault(task, addr)
	if err != nil || fresh {
		t.Fatalf("second fault: fresh=%v err=%v", fresh, err)
	}
}

func TestSharedMappingBumpsBacking(t *testing.T) {
	as := newStockAS()
	task := rwsem.NewTask()
	addr, _ := as.Mmap(task, 4*PageSize, true)
	if err := as.Touch(task, addr, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if got := as.sharedFile.Load(); got != 4 {
		t.Fatalf("backing refs = %d, want 4", got)
	}
}

func TestVMAOrderingManyMappings(t *testing.T) {
	as := newStockAS()
	task := rwsem.NewTask()
	addrs := make([]uint64, 32)
	for i := range addrs {
		a, err := as.Mmap(task, PageSize*uint64(i+1), false)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
	}
	// Every mapping must be findable at base, middle and end-1.
	for i, a := range addrs {
		length := PageSize * uint64(i+1)
		for _, off := range []uint64{0, length / 2, length - 1} {
			if v := as.Find(task, a+off); v == nil || v.Start != a {
				t.Fatalf("lookup failed for mapping %d at offset %d", i, off)
			}
		}
	}
	// Guard gaps must not resolve.
	if v := as.Find(task, addrs[0]+PageSize); v != nil {
		t.Fatal("guard page resolved to a VMA")
	}
}

func TestConcurrentFaultsAndMmaps(t *testing.T) {
	// The will-it-scale access pattern in miniature: faulting threads
	// against mapping churn, on both kernels.
	for _, mk := range []func() *AddressSpace{newStockAS, newBravoAS} {
		as := mk()
		setup := rwsem.NewTask()
		const length = 16 * PageSize
		base, err := as.Mmap(setup, length, false)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				task := rwsem.NewTask()
				for i := 0; i < 300; i++ {
					off := uint64(i%16) << PageShift
					if _, err := as.PageFault(task, base+off); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				task := rwsem.NewTask()
				for i := 0; i < 100; i++ {
					a, err := as.Mmap(task, PageSize, false)
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := as.PageFault(task, a); err != nil {
						t.Error(err)
						return
					}
					if err := as.Munmap(task, a); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

func TestConcurrentFreshFaultCountsExact(t *testing.T) {
	// Racing faults on the same pages must populate each page exactly once.
	as := newStockAS()
	setup := rwsem.NewTask()
	const pages = 64
	base, _ := as.Mmap(setup, pages*PageSize, false)
	var wg sync.WaitGroup
	freshCounts := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			task := rwsem.NewTask()
			for p := 0; p < pages; p++ {
				fresh, err := as.PageFault(task, base+uint64(p)<<PageShift)
				if err != nil {
					t.Error(err)
					return
				}
				if fresh {
					freshCounts[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range freshCounts {
		total += c
	}
	if total != pages {
		t.Fatalf("pages populated %d times, want exactly %d", total, pages)
	}
}
