package rwsem

import (
	"github.com/bravolock/bravo/internal/self"
)

// maxHeld bounds the number of BRAVO-rwsem read acquisitions a task can hold
// simultaneously on the fast path. Kernel tasks rarely hold more than one or
// two rwsems in read mode (mmap_sem dominates); excess acquisitions simply
// divert to the slow path.
const maxHeld = 8

// Task models the kernel's `current` task struct as far as rwsem is
// concerned: a stable identity (the task-struct pointer the paper hashes)
// plus the per-task record of fast-path read acquisitions. The record
// preserves the paper's same-task release assumption (§4) and resolves the
// hash-collision ambiguity a bare recomputed-slot check would have — the
// same role the POSIX per-thread held-lock lists play in §3.
//
// A Task is confined to one goroutine; its methods are not safe for
// concurrent use.
type Task struct {
	// ID is the task identity hashed with the semaphore address to choose a
	// visible-readers-table slot.
	ID uint64
	// held records outstanding fast-path read acquisitions.
	held [maxHeld]heldSlot
	n    int
}

type heldSlot struct {
	sem *Bravo
	idx uint32
}

// NewTask returns a task with a fresh stable identity.
func NewTask() *Task {
	return &Task{ID: self.NextExplicitID()}
}

// recordFast notes that this task holds sem via table slot idx. If the
// record is full the caller must not use the fast path; see DownRead.
func (t *Task) recordFast(sem *Bravo, idx uint32) {
	t.held[t.n] = heldSlot{sem: sem, idx: idx}
	t.n++
}

// canRecord reports whether another fast acquisition can be tracked.
func (t *Task) canRecord() bool { return t.n < maxHeld }

// takeFast removes and returns the slot index recorded for sem, if any.
func (t *Task) takeFast(sem *Bravo) (uint32, bool) {
	for i := t.n - 1; i >= 0; i-- {
		if t.held[i].sem == sem {
			idx := t.held[i].idx
			t.n--
			t.held[i] = t.held[t.n]
			t.held[t.n] = heldSlot{}
			return idx, true
		}
	}
	return 0, false
}

// Holds reports how many fast-path read acquisitions are outstanding.
func (t *Task) Holds() int { return t.n }
