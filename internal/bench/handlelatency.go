package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/histogram"
	"github.com/bravolock/bravo/internal/rwl"
)

// The readlatency workload compares steady-state read-acquisition latency
// through a reader handle (RLockH: cached-slot CAS, no identity derivation,
// no hashing) against the anonymous path (RLock: self.ID() + Hash(L, Self)
// per acquisition) on the same BRAVO lock. It is the experiment behind the
// reader-handle layer: if the handle does not at least match the anonymous
// fast path at p50, the slot cache is not carrying its weight.

// HandleLatencyResult is one (lock, goroutines) comparison point.
type HandleLatencyResult struct {
	Lock       string `json:"lock"`
	Goroutines int    `json:"goroutines"`
	// Handle* are the RLockH measurements, Plain* the RLock ones. The
	// percentile values are log2-histogram upper bounds in nanoseconds.
	HandleP50Ns      int64   `json:"handle_p50_ns"`
	HandleP99Ns      int64   `json:"handle_p99_ns"`
	PlainP50Ns       int64   `json:"plain_p50_ns"`
	PlainP99Ns       int64   `json:"plain_p99_ns"`
	HandleOpsPerSec  float64 `json:"handle_ops_per_sec"`
	PlainOpsPerSec   float64 `json:"plain_ops_per_sec"`
	HandleMeanNs     float64 `json:"handle_mean_ns"`
	PlainMeanNs      float64 `json:"plain_mean_ns"`
	HandleP50LEPlain bool    `json:"handle_p50_le_plain"`
}

// HandleLatencyReport is the top-level BENCH_readlatency.json document.
type HandleLatencyReport struct {
	Benchmark  string                `json:"benchmark"`
	Meta       RunMeta               `json:"meta"`
	IntervalMS int64                 `json:"interval_ms"`
	Runs       int                   `json:"runs"`
	Results    []HandleLatencyResult `json:"results"`
}

// WriteJSON renders the report as indented JSON.
func (r HandleLatencyReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// NewHandleLatencyReport stamps the environment fields of a report.
func NewHandleLatencyReport(cfg Config, results []HandleLatencyResult) HandleLatencyReport {
	return HandleLatencyReport{
		Benchmark:  "readlatency",
		Meta:       NewRunMeta(),
		IntervalMS: cfg.Interval.Milliseconds(),
		Runs:       cfg.Runs,
		Results:    results,
	}
}

// handleLatencyLock builds a fresh BRAVO lock for lockName ("bravo-" +
// substrate) on a private table, so comparison points do not interfere
// through the shared table.
func handleLatencyLock(lockName string) (rwl.HandleRWLock, error) {
	under, ok := strings.CutPrefix(lockName, "bravo-")
	if !ok {
		return nil, fmt.Errorf("bench: readlatency needs a bravo- lock, got %q", lockName)
	}
	if under == "go" { // registry alias asymmetry: bravo-go wraps go-rw
		under = "go-rw"
	}
	mkUnder, ok := rwl.Lookup(under)
	if !ok {
		return nil, fmt.Errorf("bench: unknown substrate %q (known: %v)", under, rwl.Names())
	}
	return core.New(mkUnder(), core.WithTable(core.NewTable(core.DefaultTableSize))), nil
}

// ReadLatencyCompare measures one (lock, goroutines) point: cfg.Runs
// interleaved pairs of plain-then-handle intervals on fresh locks, with
// per-run histograms merged.
func ReadLatencyCompare(lockName string, goroutines int, cfg Config) (HandleLatencyResult, error) {
	res := HandleLatencyResult{Lock: lockName, Goroutines: goroutines}
	handleHist, plainHist := &histogram.Histogram{}, &histogram.Histogram{}
	var handleOps, plainOps uint64
	for run := 0; run < cfg.Runs; run++ {
		// Interleave the modes so scheduling and frequency drift spread
		// evenly across both.
		l, err := handleLatencyLock(lockName)
		if err != nil {
			return res, err
		}
		plainOps += readLatencyRun(l, goroutines, cfg, plainHist, false)
		if l, err = handleLatencyLock(lockName); err != nil {
			return res, err
		}
		handleOps += readLatencyRun(l, goroutines, cfg, handleHist, true)
	}
	seconds := cfg.Interval.Seconds() * float64(cfg.Runs)
	res.HandleOpsPerSec = float64(handleOps) / seconds
	res.PlainOpsPerSec = float64(plainOps) / seconds
	res.HandleP50Ns = handleHist.Percentile(50)
	res.HandleP99Ns = handleHist.Percentile(99)
	res.PlainP50Ns = plainHist.Percentile(50)
	res.PlainP99Ns = plainHist.Percentile(99)
	res.HandleMeanNs = handleHist.Mean()
	res.PlainMeanNs = plainHist.Mean()
	res.HandleP50LEPlain = res.HandleP50Ns <= res.PlainP50Ns
	return res, nil
}

// readLatencyRun drives goroutines read-only workers for one interval,
// recording per-acquisition latency into hist, and returns total ops.
func readLatencyRun(l rwl.HandleRWLock, goroutines int, cfg Config, hist *histogram.Histogram, useHandle bool) uint64 {
	var mu sync.Mutex
	return RunWorkers(goroutines, cfg.Interval, func(id int, stop *atomic.Bool) uint64 {
		local := &histogram.Histogram{}
		var h *rwl.Reader
		if useHandle {
			h = rwl.NewReader()
		}
		// Warm-up: enable bias (first slow read) and settle the slot (or,
		// for the anonymous path, the identity) before measuring.
		for i := 0; i < 1000; i++ {
			if useHandle {
				tok := l.RLockH(h)
				l.RUnlockH(h, tok)
			} else {
				tok := l.RLock()
				l.RUnlock(tok)
			}
		}
		var ops uint64
		for !stop.Load() {
			if useHandle {
				start := clock.Nanos()
				tok := l.RLockH(h)
				local.Record(clock.Nanos() - start)
				l.RUnlockH(h, tok)
			} else {
				start := clock.Nanos()
				tok := l.RLock()
				local.Record(clock.Nanos() - start)
				l.RUnlock(tok)
			}
			ops++
		}
		mu.Lock()
		hist.Merge(local)
		mu.Unlock()
		return ops
	})
}

// ReadLatencySweep runs the full lock × goroutines grid.
func ReadLatencySweep(locks []string, goroutines []int, cfg Config) ([]HandleLatencyResult, error) {
	var out []HandleLatencyResult
	for _, lock := range locks {
		for _, g := range goroutines {
			r, err := ReadLatencyCompare(lock, g, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// WriteHandleLatencyTable renders sweep results as the human-readable
// companion of the JSON report.
func WriteHandleLatencyTable(w io.Writer, results []HandleLatencyResult) {
	const format = "%-14s %6s %14s %14s %12s %12s %8s\n"
	fmt.Fprintf(w, format, "lock", "gors", "handle-p50(ns)", "plain-p50(ns)", "handle-p99", "plain-p99", "h<=p@50")
	for _, r := range results {
		fmt.Fprintf(w, format, r.Lock,
			fmt.Sprintf("%d", r.Goroutines),
			fmt.Sprintf("%d", r.HandleP50Ns), fmt.Sprintf("%d", r.PlainP50Ns),
			fmt.Sprintf("%d", r.HandleP99Ns), fmt.Sprintf("%d", r.PlainP99Ns),
			fmt.Sprintf("%v", r.HandleP50LEPlain))
	}
}
