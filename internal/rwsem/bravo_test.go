package rwsem

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/lockcheck"
)

func newBravoPrivate() *Bravo {
	b := NewBravo(DefaultConfig())
	b.SetTable(core.NewTable(core.DefaultTableSize))
	return b
}

func TestBravoFastPathRoundTrip(t *testing.T) {
	b := newBravoPrivate()
	task := NewTask()
	// First read is slow and enables bias.
	b.DownRead(task)
	if task.Holds() != 0 {
		t.Fatal("slow read recorded as fast")
	}
	b.UpRead(task)
	if !b.Biased() {
		t.Fatal("bias not enabled after slow read")
	}
	// Second read takes the fast path.
	b.DownRead(task)
	if task.Holds() != 1 {
		t.Fatal("fast read not recorded on the task")
	}
	b.UpRead(task)
	if task.Holds() != 0 {
		t.Fatal("fast record not consumed at release")
	}
}

func TestBravoWriterRevokes(t *testing.T) {
	b := newBravoPrivate()
	task := NewTask()
	b.DownRead(task)
	b.UpRead(task)
	w := NewTask()
	b.DownWrite(w)
	if b.Biased() {
		t.Fatal("bias survived DownWrite")
	}
	b.UpWrite(w)
}

func TestBravoRevocationWaitsForFastReader(t *testing.T) {
	b := newBravoPrivate()
	r := NewTask()
	b.DownRead(r)
	b.UpRead(r)
	b.DownRead(r) // fast read, still held
	var wGot atomic.Bool
	go func() {
		w := NewTask()
		b.DownWrite(w)
		wGot.Store(true)
		b.UpWrite(w)
	}()
	lockcheck.Never(t, wGot.Load, 50*time.Millisecond, "writer admitted during fast read")
	b.UpRead(r)
	lockcheck.Eventually(t, wGot.Load, "writer never admitted")
}

func TestBravoSameTaskMultipleSems(t *testing.T) {
	// One task holding several BRAVO semaphores at once (§3: supported).
	tab := core.NewTable(core.DefaultTableSize)
	task := NewTask()
	sems := make([]*Bravo, 4)
	for i := range sems {
		sems[i] = NewBravo(DefaultConfig())
		sems[i].SetTable(tab)
		sems[i].DownRead(task)
		sems[i].UpRead(task)
	}
	for _, s := range sems {
		s.DownRead(task)
	}
	if task.Holds() == 0 {
		t.Fatal("no fast acquisitions recorded")
	}
	for _, s := range sems {
		s.UpRead(task)
	}
	if task.Holds() != 0 {
		t.Fatal("held records leaked")
	}
	if tab.Occupancy() != 0 {
		t.Fatal("table left dirty")
	}
}

func TestBravoHeldOverflowDivertsToSlowPath(t *testing.T) {
	tab := core.NewTable(core.DefaultTableSize)
	task := NewTask()
	sems := make([]*Bravo, maxHeld+2)
	for i := range sems {
		sems[i] = NewBravo(DefaultConfig())
		sems[i].SetTable(tab)
		sems[i].DownRead(task)
		sems[i].UpRead(task)
	}
	for _, s := range sems {
		s.DownRead(task)
	}
	if task.Holds() != maxHeld {
		t.Fatalf("held records = %d, want %d", task.Holds(), maxHeld)
	}
	// The overflowed acquisitions went slow; all releases must still pair.
	for _, s := range sems {
		s.UpRead(task)
	}
	if task.Holds() != 0 || tab.Occupancy() != 0 {
		t.Fatal("release pairing broken under overflow")
	}
}

func TestBravoTryOps(t *testing.T) {
	b := newBravoPrivate()
	task := NewTask()
	if !b.TryDownRead(task) {
		t.Fatal("TryDownRead failed on free semaphore")
	}
	if !b.Biased() {
		t.Fatal("successful try-read should enable bias (§3)")
	}
	b.UpRead(task)
	w := NewTask()
	if !b.TryDownWrite(w) {
		t.Fatal("TryDownWrite failed on free semaphore")
	}
	if b.Biased() {
		t.Fatal("TryDownWrite did not revoke")
	}
	if b.TryDownRead(task) {
		t.Fatal("TryDownRead succeeded under writer")
	}
	b.UpWrite(w)
}

func TestBravoStorm(t *testing.T) {
	b := newBravoPrivate()
	var state atomic.Int64
	var violations atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task := NewTask()
			for i := 0; i < 1200; i++ {
				b.DownRead(task)
				if state.Add(256)&0xff != 0 {
					violations.Add(1)
				}
				state.Add(-256)
				b.UpRead(task)
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task := NewTask()
			for i := 0; i < 600; i++ {
				b.DownWrite(task)
				if state.Add(1) != 1 {
					violations.Add(1)
				}
				state.Add(-1)
				b.UpWrite(task)
			}
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("exclusion violated %d times", v)
	}
}

func TestBravoInhibitAfterRevocation(t *testing.T) {
	b := newBravoPrivate()
	b.SetInhibitN(1 << 40) // effectively infinite inhibit
	task := NewTask()
	b.DownRead(task)
	b.UpRead(task)
	w := NewTask()
	b.DownWrite(w) // revokes; pushes inhibitUntil far out
	b.UpWrite(w)
	b.DownRead(task)
	b.UpRead(task)
	if b.Biased() {
		t.Fatal("bias re-enabled inside the inhibit window")
	}
}
