// Package seq implements a sequence lock (seqlock [9, 23, 29]), the
// optimistic-invisible-reader design the paper surveys as related work (§2).
//
// Readers write nothing — they validate a sequence number before and after
// the critical section and retry on interference — so they generate zero
// coherence traffic on synchronization state. The price is that readers can
// observe inconsistent intermediate state mid-section and must be written to
// tolerate it; the read section here is therefore expressed as a retryable
// function. This is the zero-coherence endpoint against which BRAVO's
// pessimistic fast path can be compared in the ablation benches.
package seq

import (
	"sync"
	"sync/atomic"

	"github.com/bravolock/bravo/internal/spin"
)

// Lock is a sequence lock. The zero value is unlocked.
type Lock struct {
	seq atomic.Uint64 // odd while a writer is inside
	mu  sync.Mutex    // serializes writers
}

// WriteLock begins a write section, making the sequence odd.
func (l *Lock) WriteLock() {
	l.mu.Lock()
	l.seq.Add(1)
}

// WriteUnlock ends a write section, making the sequence even.
func (l *Lock) WriteUnlock() {
	l.seq.Add(1)
	l.mu.Unlock()
}

// ReadBegin waits for any in-progress write to finish and returns the
// sequence to validate against.
func (l *Lock) ReadBegin() uint64 {
	var b spin.Backoff
	for {
		s := l.seq.Load()
		if s&1 == 0 {
			return s
		}
		b.Once()
	}
}

// ReadRetry reports whether a read section that started at sequence s
// overlapped a write and must be retried.
func (l *Lock) ReadRetry(s uint64) bool {
	return l.seq.Load() != s
}

// RunRead executes f as an optimistic read section, retrying until it runs
// without writer interference. f may observe torn state while executing and
// must be side-effect free until its final successful run's return.
func (l *Lock) RunRead(f func()) {
	for {
		s := l.ReadBegin()
		f()
		if !l.ReadRetry(s) {
			return
		}
	}
}
