package kvs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/locks/adaptive"
	"github.com/bravolock/bravo/internal/locks/pfq"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/xrand"
)

func mkStd() rwl.RWLock   { return new(stdrw.Lock) }
func mkBravo() rwl.RWLock { return core.New(new(pfq.Lock)) }
func mkAdaptive() rwl.RWLock {
	return adaptive.New(core.New(new(pfq.Lock)))
}

func TestNewShardedValidatesShardCount(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6, 12} {
		if _, err := NewSharded(n, mkStd); err == nil {
			t.Errorf("NewSharded(%d) accepted a non-power-of-two shard count", n)
		}
	}
	for _, n := range []int{1, 2, 4, 64} {
		s, err := NewSharded(n, mkStd)
		if err != nil {
			t.Fatalf("NewSharded(%d): %v", n, err)
		}
		if s.NumShards() != n {
			t.Fatalf("NumShards = %d, want %d", s.NumShards(), n)
		}
	}
}

func TestShardedCRUD(t *testing.T) {
	s, err := NewSharded(8, mkStd)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for k := uint64(0); k < n; k++ {
		s.Put(k, EncodeValue(k*3))
	}
	if got := s.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for k := uint64(0); k < n; k++ {
		v, ok := s.Get(k)
		if !ok {
			t.Fatalf("Get(%d) missing", k)
		}
		if d, _ := DecodeValue(v); d != k*3 {
			t.Fatalf("Get(%d) = %d, want %d", k, d, k*3)
		}
	}
	if _, ok := s.Get(n + 1); ok {
		t.Fatal("Get of absent key reported ok")
	}
	if !s.Delete(7) {
		t.Fatal("Delete(7) reported absent")
	}
	if s.Delete(7) {
		t.Fatal("second Delete(7) reported present")
	}
	if _, ok := s.Get(7); ok {
		t.Fatal("Get(7) found a deleted key")
	}
	if got := s.Len(); got != n-1 {
		t.Fatalf("Len after delete = %d, want %d", got, n-1)
	}
}

func TestShardedGetReturnsCopy(t *testing.T) {
	s, _ := NewSharded(1, mkStd)
	s.Put(1, []byte{1, 2, 3})
	v, _ := s.Get(1)
	v[0] = 99
	w, _ := s.Get(1)
	if w[0] != 1 {
		t.Fatal("Get returned an aliased buffer: caller mutation leaked into the store")
	}
}

func TestShardedGetInto(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	s.Put(1, []byte{1, 2, 3})
	buf := make([]byte, 0, 16)
	got, ok := s.GetInto(1, buf)
	if !ok || len(got) != 3 || got[0] != 1 {
		t.Fatalf("GetInto = %v, %v", got, ok)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("GetInto did not reuse the caller's buffer")
	}
	got2, ok := s.GetInto(99, got)
	if ok || len(got2) != 0 {
		t.Fatalf("GetInto(miss) = %v, %v", got2, ok)
	}
	if cap(got2) != cap(buf) {
		t.Fatal("GetInto(miss) dropped the caller's buffer capacity")
	}
}

func TestShardedPutInPlace(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	s.Put(5, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	s.Put(5, []byte{9, 9})
	v, ok := s.Get(5)
	if !ok || len(v) != 2 || v[0] != 9 || v[1] != 9 {
		t.Fatalf("in-place update yielded %v, want [9 9]", v)
	}
	total := s.Stats().Total()
	if total.PutsInPlace != 1 {
		t.Fatalf("PutsInPlace = %d, want 1", total.PutsInPlace)
	}
}

func TestShardedMultiGet(t *testing.T) {
	s, _ := NewSharded(4, mkStd)
	for k := uint64(0); k < 100; k++ {
		s.Put(k, EncodeValue(k))
	}
	keys := []uint64{3, 200, 41, 77, 3, 999}
	vals := s.MultiGet(keys)
	if len(vals) != len(keys) {
		t.Fatalf("MultiGet returned %d values for %d keys", len(vals), len(keys))
	}
	for i, k := range keys {
		if k < 100 {
			d, ok := DecodeValue(vals[i])
			if !ok || d != k {
				t.Fatalf("MultiGet[%d] (key %d) = %v", i, k, vals[i])
			}
		} else if vals[i] != nil {
			t.Fatalf("MultiGet[%d] (absent key %d) = %v, want nil", i, k, vals[i])
		}
	}
	if got := s.MultiGet(nil); len(got) != 0 {
		t.Fatalf("MultiGet(nil) = %v", got)
	}
	total := s.Stats().Total()
	if total.MultiGetKeys != uint64(len(keys)) {
		t.Fatalf("MultiGetKeys = %d, want %d", total.MultiGetKeys, len(keys))
	}
	if total.MultiGetBatches == 0 || total.MultiGetBatches > uint64(s.NumShards()) {
		t.Fatalf("MultiGetBatches = %d, want 1..%d", total.MultiGetBatches, s.NumShards())
	}
	// A present key with an empty value must be distinguishable from an
	// absent key: hits are non-nil.
	s.Put(555, nil)
	if got := s.MultiGet([]uint64{555}); got[0] == nil || len(got[0]) != 0 {
		t.Fatalf("MultiGet(empty-value hit) = %v, want non-nil empty", got[0])
	}
}

func TestShardedSnapshotAndRange(t *testing.T) {
	s, _ := NewSharded(4, mkStd)
	want := map[uint64]uint64{}
	for k := uint64(0); k < 64; k++ {
		s.Put(k, EncodeValue(k+1))
		want[k] = k + 1
	}
	snap := s.Snapshot()
	if len(snap) != len(want) {
		t.Fatalf("Snapshot has %d keys, want %d", len(snap), len(want))
	}
	for k, wv := range want {
		if d, _ := DecodeValue(snap[k]); d != wv {
			t.Fatalf("Snapshot[%d] = %d, want %d", k, d, wv)
		}
	}
	seen := map[uint64]bool{}
	s.Range(func(k uint64, v []byte) bool {
		seen[k] = true
		return true
	})
	if len(seen) != len(want) {
		t.Fatalf("Range visited %d keys, want %d", len(seen), len(want))
	}
	// Early termination.
	visits := 0
	s.Range(func(k uint64, v []byte) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Fatalf("Range visited %d keys after early stop, want 5", visits)
	}
	// Per-shard snapshots cover the keyspace exactly once.
	n := 0
	for i := 0; i < s.NumShards(); i++ {
		n += len(s.SnapshotShard(i))
	}
	if n != len(want) {
		t.Fatalf("per-shard snapshots total %d keys, want %d", n, len(want))
	}
}

func TestShardedStatsCounts(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	s.Put(1, EncodeValue(1))
	s.Put(2, EncodeValue(2))
	s.Get(1)
	s.Get(42) // miss
	s.Delete(2)
	s.Delete(2) // miss
	total := s.Stats().Total()
	if total.Gets != 2 || total.GetHits != 1 {
		t.Fatalf("gets=%d hits=%d, want 2/1", total.Gets, total.GetHits)
	}
	if total.Puts != 2 {
		t.Fatalf("puts=%d, want 2", total.Puts)
	}
	if total.Deletes != 2 || total.DeleteHits != 1 {
		t.Fatalf("deletes=%d hits=%d, want 2/1", total.Deletes, total.DeleteHits)
	}
	if total.Keys != 1 {
		t.Fatalf("keys=%d, want 1", total.Keys)
	}
}

// TestShardedConcurrent storms the engine with mixed readers and writers
// under both a plain and a BRAVO-wrapped lock; run with -race this is the
// engine's data-race certification.
func TestShardedConcurrent(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   rwl.Factory
	}{
		{"go-rw", mkStd},
		{"bravo-ba", mkBravo},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSharded(8, tc.mk)
			if err != nil {
				t.Fatal(err)
			}
			const keys = 512
			for k := uint64(0); k < keys; k++ {
				s.Put(k, EncodeValue(k))
			}
			var wg sync.WaitGroup
			iters := 3000
			if testing.Short() {
				iters = 300
			}
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := xrand.NewXorShift64(seed)
					batch := make([]uint64, 8)
					bvals := make([][]byte, 8)
					for i := 0; i < iters; i++ {
						k := rng.Intn(keys)
						switch rng.Intn(16) {
						case 0:
							s.Put(k, EncodeValue(rng.Next()))
						case 1:
							s.Delete(k)
						case 2:
							for j := range batch {
								batch[j] = rng.Intn(keys)
							}
							s.MultiGet(batch)
						case 3:
							s.SnapshotShard(int(rng.Intn(uint64(s.NumShards()))))
						case 4:
							for j := range batch {
								batch[j] = rng.Intn(keys)
								bvals[j] = EncodeValue(rng.Next())
							}
							s.MultiPut(batch, bvals)
						case 5:
							for j := range batch {
								batch[j] = rng.Intn(keys)
							}
							s.MultiDelete(batch)
						case 6:
							s.PutTTL(k, EncodeValue(rng.Next()), time.Duration(rng.Intn(2000))*time.Microsecond)
						case 7:
							s.Reap(32)
						case 8:
							s.PutAsync(k, EncodeValue(rng.Next()))
						case 9:
							s.Flush()
						case 10:
							s.Range(func(_ uint64, v []byte) bool {
								if len(v) != 8 {
									t.Errorf("Range visited a %d-byte value", len(v))
								}
								return true
							})
						case 11:
							s.Snapshot()
						default:
							if v, ok := s.Get(k); ok && len(v) != 8 {
								t.Errorf("Get(%d) returned %d bytes", k, len(v))
							}
						}
					}
				}(uint64(w + 1))
			}
			wg.Wait()
			s.Flush()
			if s.Len() > keys {
				t.Fatalf("Len = %d, exceeds keyspace %d", s.Len(), keys)
			}
		})
	}
}

// TestShardedKeyDistribution checks the mix function spreads a dense
// keyspace across shards instead of clustering.
func TestShardedKeyDistribution(t *testing.T) {
	s, _ := NewSharded(8, mkStd)
	const n = 8000
	for k := uint64(0); k < n; k++ {
		s.Put(k, nil)
	}
	for i, sh := range s.Stats().Shards {
		if sh.Keys < n/16 || sh.Keys > n/4 {
			t.Errorf("shard %d holds %d of %d keys: poor distribution", i, sh.Keys, n)
		}
	}
}

func BenchmarkShardedGet(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, _ := NewSharded(shards, mkBravo)
			for k := uint64(0); k < 1024; k++ {
				s.Put(k, EncodeValue(k))
			}
			b.RunParallel(func(pb *testing.PB) {
				rng := xrand.NewXorShift64(99)
				for pb.Next() {
					s.Get(rng.Intn(1024))
				}
			})
		})
	}
}
