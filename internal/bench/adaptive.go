package bench

// The adaptive workload family pits the self-tuning adaptive lock against
// its two static endpoints — always-biased BRAVO and the always-fair ticket
// gate — on the mixes where a single static choice must lose somewhere:
//
//	readonly   uniform reads, no writes: biased BRAVO's home turf. The
//	           adaptive lock must track it (the acceptance bar is within
//	           5% — its only read-path cost is one mode branch).
//	zipf       uniform reads plus zipf-skewed writes: write volume piles
//	           onto the few shards owning the hot keys, so per-shard mixes
//	           diverge — hot shards demote while cold shards stay biased,
//	           the case no engine-global policy can express.
//	writeheavy a write-dominated uniform mix: fair territory; adaptive
//	           shards demote off the biased fast path and stop paying
//	           revocation sweeps.
//	phaseshift the tentpole: the mix alternates between read-only and
//	           write-heavy phases inside one measurement interval. A
//	           static lock is wrong for half the run; the adaptive lock
//	           flips per phase and must meet or beat the better static.
//
// Each result row carries its own RunMeta (stamped when the row starts) so
// the phaseshift rows can pair their phase-boundary timestamps with a
// same-clock row start; a process-wide stamp could be minutes stale by the
// time the last row runs.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bravolock/bravo/internal/bias"
	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/histogram"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/xrand"
)

// AdaptiveKeys is the workload keyspace (shared with shardedkv).
const AdaptiveKeys = ShardedKVKeys

// AdaptiveShards is the engine width: enough shards that zipf-skewed writes
// leave some shards effectively read-only.
const AdaptiveShards = 8

// adaptiveValueSize sizes the payload copy inside each critical section.
// 256 bytes keeps the lock path the dominant per-op cost (the settings
// still separate by 1.3–1.8× on write mixes) while representing a realistic
// small record rather than a degenerate empty one.
const adaptiveValueSize = 256

// adaptiveZipfTheta is the write-skew exponent. 1.5 concentrates roughly
// three quarters of write volume on the top eight keys, i.e. on at most
// eight of the shards — usually fewer.
const adaptiveZipfTheta = 1.5

// AdaptiveSettings are the three lock configurations every workload runs
// under, in report order. Each maps to a registry lineup over the same
// inner substrate (sync.RWMutex) so the deltas are pure policy:
// adaptive-go flips modes, bravo-go is the static biased endpoint, fair is
// the static FIFO endpoint.
var AdaptiveSettings = []struct {
	Setting string
	Lock    string
}{
	{"adaptive", "adaptive-go"},
	{"static-biased", "bravo-go"},
	{"static-fair", "fair"},
}

// AdaptiveWorkloads are the mix rows, in report order.
var AdaptiveWorkloads = []string{"readonly", "zipf", "writeheavy", "phaseshift"}

// adaptiveSmokeTolerance is the slack applied to the boolean acceptance
// fields (not to the raw ratios, which are always reported exactly): a
// ratio r counts as "≥" when r ≥ tolerance. CI smoke runs on shared,
// 1-CPU runners with sub-second intervals where scheduling noise alone
// swings throughput several percent; the checked-in BENCH_adaptive.json is
// produced with full intervals and must show the raw ratios genuinely
// ≥ 1.0 (see EXPERIMENTS.md).
const adaptiveSmokeTolerance = 0.90

// phaseShiftPhases is the number of alternating phases per measurement
// interval (even: starts read-only, ends write-heavy).
const phaseShiftPhases = 6

// writeRatioScale converts a write ratio to the integer threshold compared
// against 20 random bits per operation.
const writeRatioScale = 1 << 20

// AdaptiveResult is one (workload, setting) row of BENCH_adaptive.json.
type AdaptiveResult struct {
	Workload string `json:"workload"`
	// Setting names the lock policy; Lock is the registry lineup behind it.
	Setting string `json:"setting"`
	Lock    string `json:"lock"`
	Threads int    `json:"threads"`
	// WriteRatio is the steady mix, or the write-phase ratio for phaseshift.
	WriteRatio float64 `json:"write_ratio"`
	// Meta is stamped when this row starts (not once per process): the
	// phaseshift boundary timestamps below share its clock.
	Meta RunMeta `json:"meta"`
	// Ops is the median total operation count per measurement interval;
	// RunOps lists every run's count in execution order (run r of every
	// setting executes before run r+1 of any, so same-index entries across
	// a workload's rows are back-to-back in time — the comparisons are
	// computed per-index for that reason).
	Ops                 float64   `json:"ops"`
	RunOps              []float64 `json:"run_ops"`
	ThroughputOpsPerSec float64   `json:"throughput_ops_per_sec"`
	ReadP50Nanos        int64     `json:"read_p50_ns"`
	ReadP99Nanos        int64     `json:"read_p99_ns"`
	// BiasFlips and FinalModes (mode name → shard count, last run) show
	// what the adaptive setting actually did; absent for static settings.
	BiasFlips  uint64         `json:"bias_flips,omitempty"`
	FinalModes map[string]int `json:"final_modes,omitempty"`
	// Phases and PhaseBoundaries (RFC3339Nano, last run) are set on
	// phaseshift rows only.
	Phases          int      `json:"phases,omitempty"`
	PhaseBoundaries []string `json:"phase_boundaries,omitempty"`
}

// AdaptiveComparison reduces one workload's three rows to the ratios the
// acceptance bars are stated in. Each ratio is the median over rounds of
// the per-round ratio (round r ran the two settings back-to-back), not the
// ratio of medians: host-level slowdowns that span seconds hit both
// settings of a round alike and cancel, where a ratio of medians would
// charge them to whichever setting's median run was unlucky. The booleans
// apply adaptiveSmokeTolerance; the ratios do not.
type AdaptiveComparison struct {
	Workload                 string  `json:"workload"`
	AdaptiveOverStaticBiased float64 `json:"adaptive_over_static_biased"`
	AdaptiveOverStaticFair   float64 `json:"adaptive_over_static_fair"`
	AdaptiveGeBestStatic     bool    `json:"adaptive_ge_best_static"`
}

// AdaptiveAcceptance is the report's machine-checkable verdict (CI greps
// these fields by name).
type AdaptiveAcceptance struct {
	// PhaseShiftAdaptiveGeBestStatic: on the phase-shifting mix the
	// adaptive lock meets or beats the better static endpoint.
	PhaseShiftAdaptiveGeBestStatic bool `json:"phaseshift_adaptive_ge_best_static"`
	// ReadonlyAdaptiveWithin5Pct: on pure reads the adaptive lock stays
	// within 5% of static-biased (the mode branch is its only read cost).
	ReadonlyAdaptiveWithin5Pct bool `json:"readonly_adaptive_within_5pct_of_biased"`
}

// AdaptiveReport is the top-level BENCH_adaptive.json document.
type AdaptiveReport struct {
	Benchmark  string               `json:"benchmark"`
	Meta       RunMeta              `json:"meta"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	IntervalMS int64                `json:"interval_ms"`
	Runs       int                  `json:"runs"`
	Keys       int                  `json:"keys"`
	Shards     int                  `json:"shards"`
	Results    []AdaptiveResult     `json:"results"`
	Compare    []AdaptiveComparison `json:"comparisons"`
	Acceptance AdaptiveAcceptance   `json:"acceptance"`
}

// WriteJSON renders the report as indented JSON.
func (r AdaptiveReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// zipfCDF is the cumulative rank distribution for write-key sampling,
// built once per process.
var (
	zipfOnce sync.Once
	zipfCDF  []float64
)

func zipfSetup() {
	zipfOnce.Do(func() {
		zipfCDF = make([]float64, AdaptiveKeys)
		sum := 0.0
		for k := 0; k < AdaptiveKeys; k++ {
			sum += 1.0 / math.Pow(float64(k+1), adaptiveZipfTheta)
			zipfCDF[k] = sum
		}
		for k := range zipfCDF {
			zipfCDF[k] /= sum
		}
	})
}

// zipfKey draws a key with zipf-distributed rank. Rank r maps to key r
// directly: the engine's shard mix function scatters adjacent keys across
// shards, so the hot ranks land on a small, arbitrary set of shards —
// exactly the divergence the workload wants.
func zipfKey(rng *xrand.XorShift64) uint64 {
	u := float64(rng.Next()>>11) / (1 << 53)
	return uint64(sort.SearchFloat64s(zipfCDF, u))
}

// adaptiveMix describes how one workload drives the engine.
type adaptiveMix struct {
	// steadyRatio is the write fraction — for phaseshift, the write
	// phases' fraction (read phases run at zero).
	steadyRatio float64
	phases      int
	zipfWrites  bool
}

func adaptiveMixFor(workload string) (adaptiveMix, error) {
	switch workload {
	case "readonly":
		return adaptiveMix{}, nil
	case "zipf":
		zipfSetup()
		return adaptiveMix{steadyRatio: 0.2, zipfWrites: true}, nil
	case "writeheavy":
		return adaptiveMix{steadyRatio: 0.7}, nil
	case "phaseshift":
		return adaptiveMix{steadyRatio: 0.7, phases: phaseShiftPhases}, nil
	}
	return adaptiveMix{}, fmt.Errorf("bench: unknown adaptive workload %q", workload)
}

// adaptiveRunOut is one measurement interval's raw output.
type adaptiveRunOut struct {
	ops        float64
	hist       *histogram.Histogram
	stats      kvs.ShardedStats
	flipsBase  uint64
	adaptive   bool
	boundaries []string
}

// adaptiveRunOnce builds a fresh engine and drives one measurement
// interval of the mix against it.
func adaptiveRunOnce(mix adaptiveMix, mk rwl.Factory, threads int, cfg Config) (adaptiveRunOut, error) {
	var out adaptiveRunOut
	e, err := kvs.NewSharded(AdaptiveShards, mk)
	if err != nil {
		return out, err
	}
	// Optimistic seq reads bypass the shard lock entirely and would mask
	// every difference the workload exists to measure.
	e.SetSeqReadAttempts(0)
	value := make([]byte, adaptiveValueSize)
	for k := uint64(0); k < AdaptiveKeys; k++ {
		copy(value, kvs.EncodeValue(k))
		e.Put(k, value)
	}
	out.adaptive = e.AdaptiveCapable()
	// Population is setup, not workload: its 16K puts read as a write
	// storm and demote shards, and they leave a partially filled
	// write-heavy window behind. Drain that window with reads, then
	// settle every shard back to the biased start the static-biased
	// setting also begins from, and baseline the flip counter so the
	// row reports measurement-time flips only.
	if out.adaptive {
		warm := xrand.NewXorShift64(0xADA9)
		rbuf := make([]byte, 0, adaptiveValueSize)
		for i := 0; i < 2*AdaptiveShards*4096; i++ {
			rbuf, _ = e.GetInto(warm.Intn(AdaptiveKeys), rbuf)
		}
		for i := 0; i < e.NumShards(); i++ {
			e.ShardAdaptor(i).ForceMode(bias.ModeBiased)
		}
		out.flipsBase = e.Stats().Total().BiasFlips
	}

	// The write-ratio threshold is shared and atomic so the phaseshift
	// pacer can flip it mid-interval; steady workloads load the same
	// atomic (one uncontended load per op, identical across settings).
	var threshold atomic.Uint64
	if mix.phases == 0 {
		threshold.Store(uint64(mix.steadyRatio * writeRatioScale))
	}
	var pacerStop chan struct{}
	var pacerDone sync.WaitGroup
	if mix.phases > 0 {
		phaseLen := cfg.Interval / time.Duration(mix.phases)
		pacerStop = make(chan struct{})
		pacerDone.Add(1)
		go func() {
			defer pacerDone.Done()
			write := false
			t := time.NewTicker(phaseLen)
			defer t.Stop()
			for {
				select {
				case <-pacerStop:
					return
				case <-t.C:
					write = !write
					next := uint64(0)
					if write {
						next = uint64(mix.steadyRatio * writeRatioScale)
					}
					threshold.Store(next)
					out.boundaries = append(out.boundaries,
						time.Now().UTC().Format(time.RFC3339Nano))
				}
			}
		}()
	}

	hist := &histogram.Histogram{}
	var histMu sync.Mutex
	total := RunWorkers(threads, cfg.Interval, func(id int, stop *atomic.Bool) uint64 {
		rng := xrand.NewXorShift64(uint64(id)*0x9e3779b97f4a7c15 + 1)
		local := &histogram.Histogram{}
		wval := make([]byte, adaptiveValueSize)
		rbuf := make([]byte, 0, adaptiveValueSize)
		var ops uint64
		for !stop.Load() {
			if rng.Next()&(writeRatioScale-1) < threshold.Load() {
				k := rng.Intn(AdaptiveKeys)
				if mix.zipfWrites {
					k = zipfKey(rng)
				}
				copy(wval, kvs.EncodeValue(rng.Next()))
				e.Put(k, wval)
			} else {
				k := rng.Intn(AdaptiveKeys)
				if ops&latencySampleMask == 0 {
					start := clock.Nanos()
					rbuf, _ = e.GetInto(k, rbuf)
					local.Record(clock.Nanos() - start)
				} else {
					rbuf, _ = e.GetInto(k, rbuf)
				}
			}
			ops++
		}
		histMu.Lock()
		hist.Merge(local)
		histMu.Unlock()
		return ops
	})
	if pacerStop != nil {
		close(pacerStop)
		pacerDone.Wait()
	}
	out.ops = float64(total)
	out.hist = hist
	out.stats = e.Stats()
	return out, nil
}

// adaptiveWorkloadRows produces one workload's three setting rows. The
// settings' runs are interleaved round-robin — run r of every setting
// executes before run r+1 of any — so slow host-level drift (scheduler
// mood, thermal state) lands on all three settings alike instead of
// biasing whichever setting happened to run last. Each row's median is
// taken across its own runs; histograms and adaptation counters come from
// the last run.
func adaptiveWorkloadRows(workload string, threads int, cfg Config) ([]AdaptiveResult, error) {
	mix, err := adaptiveMixFor(workload)
	if err != nil {
		return nil, err
	}
	runs := cfg.Runs
	if runs < 1 {
		runs = 1
	}
	n := len(AdaptiveSettings)
	rows := make([]AdaptiveResult, n)
	mks := make([]rwl.Factory, n)
	samples := make([][]float64, n)
	lasts := make([]adaptiveRunOut, n)
	for si, s := range AdaptiveSettings {
		mk, ok := rwl.Lookup(s.Lock)
		if !ok {
			_, err := rwl.New(s.Lock)
			return nil, err
		}
		mks[si] = mk
		rows[si] = AdaptiveResult{
			Workload: workload, Setting: s.Setting, Lock: s.Lock,
			Threads: threads, WriteRatio: mix.steadyRatio, Phases: mix.phases,
		}
	}
	for r := 0; r < runs; r++ {
		for si := range AdaptiveSettings {
			if r == 0 {
				rows[si].Meta = NewRunMeta()
			}
			out, err := adaptiveRunOnce(mix, mks[si], threads, cfg)
			if err != nil {
				return nil, err
			}
			samples[si] = append(samples[si], out.ops)
			lasts[si] = out
		}
	}
	for si := range rows {
		rows[si].RunOps = append([]float64(nil), samples[si]...)
		sort.Float64s(samples[si])
		rows[si].Ops = samples[si][len(samples[si])/2]
		rows[si].ThroughputOpsPerSec = rows[si].Ops / cfg.Interval.Seconds()
		last := lasts[si]
		if last.hist != nil && last.hist.Count() > 0 {
			rows[si].ReadP50Nanos = last.hist.Percentile(50)
			rows[si].ReadP99Nanos = last.hist.Percentile(99)
		}
		rows[si].PhaseBoundaries = last.boundaries
		if last.adaptive {
			rows[si].BiasFlips = last.stats.Total().BiasFlips - last.flipsBase
			rows[si].FinalModes = map[string]int{}
			for _, sh := range last.stats.Shards {
				rows[si].FinalModes[sh.BiasMode]++
			}
		}
	}
	return rows, nil
}

// medianRatio reduces two aligned per-round sample vectors to the median
// of their pointwise ratios.
func medianRatio(num, den []float64) float64 {
	n := len(num)
	if len(den) < n {
		n = len(den)
	}
	var ratios []float64
	for i := 0; i < n; i++ {
		if den[i] > 0 {
			ratios = append(ratios, num[i]/den[i])
		}
	}
	if len(ratios) == 0 {
		return 0
	}
	sort.Float64s(ratios)
	return ratios[len(ratios)/2]
}

// AdaptiveSweep runs every workload under every setting and reduces the
// rows to per-workload comparisons plus the acceptance verdict.
func AdaptiveSweep(threads int, cfg Config) ([]AdaptiveResult, []AdaptiveComparison, AdaptiveAcceptance, error) {
	var results []AdaptiveResult
	byKey := map[string]AdaptiveResult{}
	for _, wl := range AdaptiveWorkloads {
		rows, err := adaptiveWorkloadRows(wl, threads, cfg)
		if err != nil {
			return nil, nil, AdaptiveAcceptance{}, err
		}
		for _, r := range rows {
			results = append(results, r)
			byKey[wl+"/"+r.Setting] = r
		}
	}
	var compare []AdaptiveComparison
	for _, wl := range AdaptiveWorkloads {
		ad := byKey[wl+"/adaptive"].RunOps
		sb := byKey[wl+"/static-biased"].RunOps
		sf := byKey[wl+"/static-fair"].RunOps
		c := AdaptiveComparison{
			Workload:                 wl,
			AdaptiveOverStaticBiased: medianRatio(ad, sb),
			AdaptiveOverStaticFair:   medianRatio(ad, sf),
		}
		worse := c.AdaptiveOverStaticBiased
		if c.AdaptiveOverStaticFair < worse {
			worse = c.AdaptiveOverStaticFair
		}
		c.AdaptiveGeBestStatic = worse >= adaptiveSmokeTolerance
		compare = append(compare, c)
	}
	var acc AdaptiveAcceptance
	for _, c := range compare {
		switch c.Workload {
		case "phaseshift":
			acc.PhaseShiftAdaptiveGeBestStatic = c.AdaptiveGeBestStatic
		case "readonly":
			acc.ReadonlyAdaptiveWithin5Pct = c.AdaptiveOverStaticBiased >= 0.95
		}
	}
	return results, compare, acc, nil
}

// NewAdaptiveReport assembles the BENCH_adaptive.json document.
func NewAdaptiveReport(cfg Config, results []AdaptiveResult, compare []AdaptiveComparison, acc AdaptiveAcceptance) AdaptiveReport {
	return AdaptiveReport{
		Benchmark:  "adaptive",
		Meta:       NewRunMeta(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		IntervalMS: cfg.Interval.Milliseconds(),
		Runs:       cfg.Runs,
		Keys:       AdaptiveKeys,
		Shards:     AdaptiveShards,
		Results:    results,
		Compare:    compare,
		Acceptance: acc,
	}
}

// WriteAdaptiveTable renders the rows and comparisons as the human-readable
// companion of the JSON report.
func WriteAdaptiveTable(w io.Writer, results []AdaptiveResult, compare []AdaptiveComparison) {
	const format = "%-11s %-14s %8s %14s %10s %10s %7s %-24s\n"
	fmt.Fprintf(w, format, "workload", "setting", "threads", "ops/sec", "p50(ns)", "p99(ns)", "flips", "final modes")
	for _, r := range results {
		flips, modes := "-", "-"
		if r.FinalModes != nil {
			flips = fmt.Sprintf("%d", r.BiasFlips)
			keys := make([]string, 0, len(r.FinalModes))
			for m := range r.FinalModes {
				keys = append(keys, m)
			}
			sort.Strings(keys)
			modes = ""
			for _, m := range keys {
				if modes != "" {
					modes += " "
				}
				modes += fmt.Sprintf("%s:%d", m, r.FinalModes[m])
			}
		}
		fmt.Fprintf(w, format, r.Workload, r.Setting,
			fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.0f", r.ThroughputOpsPerSec),
			fmt.Sprintf("%d", r.ReadP50Nanos), fmt.Sprintf("%d", r.ReadP99Nanos),
			flips, modes)
	}
	fmt.Fprintf(w, "\n%-11s %22s %20s %14s\n", "workload", "adaptive/static-biased", "adaptive/static-fair", "ge-best")
	for _, c := range compare {
		fmt.Fprintf(w, "%-11s %22s %20s %14v\n", c.Workload,
			fmt.Sprintf("%.3f", c.AdaptiveOverStaticBiased),
			fmt.Sprintf("%.3f", c.AdaptiveOverStaticFair),
			c.AdaptiveGeBestStatic)
	}
}
