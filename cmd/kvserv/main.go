// Command kvserv serves the sharded BRAVO-backed KV engine over HTTP: the
// repository's traffic-facing front-end. Each connection gets one pinned
// reader handle, so a client's steady-state GET is a cached-slot CAS on the
// shard lock — socket to lock word with no per-request hashing.
//
//	kvserv -addr :7070 -shards 16 -lock bravo-go
//	kvserv -addr :7070 -data-dir /var/lib/kvserv -sync always
//	kvserv -addr :7071 -follow http://primary:7070
//
// With -data-dir the engine is durable: every write is logged to a
// per-shard write-ahead log before it is applied (batches are one record
// and, under -sync always, one fsync — group commit), POST /checkpoint
// snapshots the shards and truncates the logs, and restarting against the
// same directory recovers snapshot + log tail. On SIGINT/SIGTERM the
// server shuts down gracefully: stop accepting, flush queued async writes,
// sync and close the logs.
//
// A durable kvserv is automatically a replication primary: it serves
// GET /repl/stream (the per-shard LSN-stamped WAL, live) and /repl/status,
// and stamps writes with X-Commit-Lsn read-your-writes tokens. With
// -follow the process is instead a read-only follower: it tails the named
// primary's streams into an in-memory replica (sized to the primary's
// shard count; -shards and -data-dir are refused) and serves GET /kv/*,
// /mget, /stats — honoring ?min_lsn= tokens by waiting or 409ing — while
// writes answer 403.
//
// With -wire-addr the process also listens on the pipelined binary wire
// protocol (internal/wire): length-prefixed CRC-framed requests with
// request-id pipelining, multi-op batches that cost one lock acquisition
// per shard they touch, and binary min_lsn/commit-LSN read-your-writes
// tokens. HTTP stays up as the compatibility front-end; both serve the
// same engine (a follower serves the wire read-only too).
//
//	kvserv -addr :7070 -wire-addr :7071 -data-dir /var/lib/kvserv
//
// With -cluster N the process runs as a hash-routed cluster of N
// partitioned primaries (internal/cluster), each with -cluster-followers
// live replicas as its failover pool. The keyspace splits by rendezvous
// hashing, MGET/MPUT fan out per partition, write tokens widen to
// (epoch, shard, lsn) triples (X-Commit-Epoch joins the headers), and
// POST /failover/{partition} promotes the most-caught-up follower behind
// an LSN-fenced epoch bump. -data-dir is required (primaries are durable)
// and -follow is refused.
//
//	kvserv -addr :7070 -cluster 4 -cluster-followers 2 -data-dir /var/lib/kvserv
//
// Endpoints: GET/PUT/DELETE /kv/{key} (PUT takes ?ttl=1s or ?async=1),
// GET /mget?keys=1,2,3, POST /mput, POST /flush, POST /checkpoint,
// GET /stats, GET /repl/stream, GET /repl/status, and in cluster mode
// POST /failover/{partition}. See internal/kvserv, internal/repl,
// internal/cluster, and README's "Serving traffic", "Persistence",
// "Replication", and "Cluster" sections.
//
// The lock lineup is the benchmark registry's (-lock accepts any name from
// the README menu: go-rw, mutex, bravo-go, bravo-ba, ...), so the serving
// stack can be A/B'd across substrates exactly like the benchmarks.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"github.com/bravolock/bravo/internal/cluster"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/kvserv"
	_ "github.com/bravolock/bravo/internal/locks/all"
	"github.com/bravolock/bravo/internal/repl"
	"github.com/bravolock/bravo/internal/rwl"
)

var (
	addrFlag     = flag.String("addr", ":7070", "HTTP listen address")
	wireAddrFlag = flag.String("wire-addr", "", "binary wire-protocol listen address (empty: HTTP only)")

	shardsFlag     = flag.Int("shards", 16, "shard count (positive power of two)")
	lockFlag       = flag.String("lock", "bravo-go", "per-shard lock (registry name)")
	reapFlag       = flag.Duration("reap", kvserv.DefaultReapInterval, "TTL reap interval (<0 disables background reaping)")
	reapBudgetFlag = flag.Int("reapbudget", kvserv.DefaultReapBudget, "TTL entries examined per reap tick")
	asyncFlag      = flag.Int("asyncbatch", kvs.DefaultAsyncBatch, "per-shard async write queue coalescing threshold")
	dataDirFlag    = flag.String("data-dir", "", "durable data directory (empty: volatile, lost on exit)")
	syncFlag       = flag.String("sync", "always", "WAL sync policy with -data-dir: always (fsync per batch) or none")
	followFlag     = flag.String("follow", "", "primary base URL: run as a read-only replication follower")

	clusterFlag          = flag.Int("cluster", 0, "partition count: run as a hash-routed cluster of N primaries (requires -data-dir)")
	clusterFollowersFlag = flag.Int("cluster-followers", 1, "replicas per partition with -cluster: the failover pool")
)

func main() {
	flag.Parse()
	mk, ok := rwl.Lookup(*lockFlag)
	if !ok {
		_, err := rwl.New(*lockFlag) // canonical unknown-name error with the menu
		fatal(err)
	}
	if *followFlag != "" {
		if *clusterFlag > 0 {
			fatal(fmt.Errorf("-follow and -cluster are exclusive: a cluster runs its own follower pools"))
		}
		runFollower(mk)
		return
	}
	if *clusterFlag > 0 {
		runCluster(mk)
		return
	}
	opts := []kvs.Option{}
	durability := "volatile (no -data-dir: state dies with the process)"
	if *dataDirFlag != "" {
		policy, err := kvs.ParseSyncPolicy(*syncFlag)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, kvs.WithDurability(*dataDirFlag, policy))
		durability = fmt.Sprintf("durable in %s (sync %s)", *dataDirFlag, policy)
	}
	engine, err := kvs.NewSharded(*shardsFlag, mk, opts...)
	if err != nil {
		fatal(err)
	}
	engine.SetAsyncBatch(*asyncFlag)
	l, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		fatal(err)
	}
	srv := kvserv.New(engine, kvserv.Config{
		ReapInterval: *reapFlag,
		ReapBudget:   *reapBudgetFlag,
	})
	handles := "anonymous reads (substrate has no handle path)"
	if engine.HandleCapable() {
		handles = "one pinned reader handle per connection"
	}
	fmt.Printf("kvserv: serving on %s — %d×%s shards, %s, reap %v, %s\n",
		l.Addr(), *shardsFlag, *lockFlag, handles, *reapFlag, durability)
	startWire(srv)

	// Graceful shutdown: stop accepting, flush the async queues, then sync
	// and close the WAL so a restart recovers everything acknowledged.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	select {
	case sig := <-sigc:
		fmt.Printf("kvserv: %v — shutting down\n", sig)
		srv.Close()
		<-done
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			engine.Close()
			fatal(err)
		}
	}
	if err := engine.Close(); err != nil {
		fatal(err)
	}
}

// runCluster is the -cluster mode: open N hash-routed partitioned
// primaries under -data-dir, each with its follower pool, and serve the
// whole keyspace through the cluster front-end.
func runCluster(mk rwl.Factory) {
	if *dataDirFlag == "" {
		fatal(fmt.Errorf("-cluster requires -data-dir: partition primaries are durable (failover needs their WALs)"))
	}
	policy, err := kvs.ParseSyncPolicy(*syncFlag)
	if err != nil {
		fatal(err)
	}
	c, err := cluster.Open(cluster.Config{
		Partitions: *clusterFlag,
		Shards:     *shardsFlag,
		Followers:  *clusterFollowersFlag,
		Dir:        *dataDirFlag,
		Policy:     policy,
		MkLock:     mk,
	})
	if err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		c.Close()
		fatal(err)
	}
	srv := kvserv.NewClusterServer(c, kvserv.Config{
		ReapInterval: *reapFlag,
		ReapBudget:   *reapBudgetFlag,
	})
	fmt.Printf("kvserv: cluster of %d primaries on %s — %d×%s shards each, %d followers each, durable in %s (sync %s), reap %v\n",
		*clusterFlag, l.Addr(), *shardsFlag, *lockFlag, *clusterFollowersFlag, *dataDirFlag, policy, *reapFlag)
	startWire(srv)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	select {
	case sig := <-sigc:
		fmt.Printf("kvserv: %v — shutting down\n", sig)
		srv.Close()
		<-done
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			c.Close()
			fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		fatal(err)
	}
}

// runFollower is the -follow mode: tail the primary's WAL streams into an
// in-memory replica and serve it read-only.
func runFollower(mk rwl.Factory) {
	if *dataDirFlag != "" {
		fatal(fmt.Errorf("-follow and -data-dir are exclusive: a follower's log of record is its primary's WAL"))
	}
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == "shards" {
			fatal(fmt.Errorf("-follow and -shards are exclusive: the replica is sized to the primary's shard count"))
		}
	})
	f, err := repl.Open(repl.Config{Primary: *followFlag, MkLock: mk})
	if err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		fatal(err)
	}
	srv := kvserv.NewFollower(f, kvserv.Config{
		ReapInterval: *reapFlag,
		ReapBudget:   *reapBudgetFlag,
	})
	fmt.Printf("kvserv: read-only follower of %s on %s — %d×%s shards, reap %v\n",
		f.Primary(), l.Addr(), f.NumShards(), *lockFlag, *reapFlag)
	startWire(srv)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	select {
	case sig := <-sigc:
		fmt.Printf("kvserv: %v — shutting down\n", sig)
		srv.Close()
		<-done
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			f.Close()
			fatal(err)
		}
	}
	f.Close()
}

// startWire mounts the binary wire front-end on -wire-addr (a no-op when
// the flag is empty). It serves the same engine — and, in follower mode,
// the same read-only posture — as the HTTP listener; srv.Close stops it.
func startWire(srv *kvserv.Server) {
	if *wireAddrFlag == "" {
		return
	}
	wl, err := net.Listen("tcp", *wireAddrFlag)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("kvserv: wire protocol on %s\n", wl.Addr())
	go func() {
		if err := srv.ServeWire(wl); err != nil && err != kvserv.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "kvserv: wire:", err)
		}
	}()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kvserv:", err)
	os.Exit(1)
}
