package bench

import (
	"sync/atomic"
	"time"

	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/rwsem"
	"github.com/bravolock/bravo/internal/vm"
	"github.com/bravolock/bravo/internal/xrand"
)

// Kernel selects the §6 semaphore flavour: "stock" or "bravo".
type Kernel string

// Kernel flavours.
const (
	Stock Kernel = "stock"
	Bravo Kernel = "bravo"
)

// newMMapSem builds the selected semaphore behind the vm.MMapSem interface.
// Each call uses a private visible readers table so concurrent benchmark
// runs do not interfere.
func newMMapSem(k Kernel) vm.MMapSem {
	if k == Bravo {
		b := rwsem.NewBravo(rwsem.DefaultConfig())
		b.SetTable(core.NewTable(core.DefaultTableSize))
		return vm.BravoSem{S: b}
	}
	return vm.StockSem{S: rwsem.New(rwsem.DefaultConfig())}
}

// LocktortureResult carries the two curves of Figures 7–8.
type LocktortureResult struct {
	Reads  uint64
	Writes uint64
}

// Locktorture runs the §6.1 torture workload natively: readers hold the
// rwsem in read mode for readCS, writers for writeCS, all back-to-back for
// the interval. The paper's 50ms/10ms sections are scaled by the caller.
func Locktorture(k Kernel, readers, writers int, readCS, writeCS time.Duration, cfg Config) LocktortureResult {
	var sem vm.MMapSem = newMMapSem(k)
	var readOps, writeOps atomic.Uint64
	RunWorkers(readers+writers, cfg.Interval, func(id int, stop *atomic.Bool) uint64 {
		task := rwsem.NewTask()
		rng := xrand.NewXorShift64(uint64(id) + 13)
		if id >= readers { // writer
			for !stop.Load() {
				sem.DownWrite(task)
				spinFor(writeCS, rng)
				sem.UpWrite(task)
				writeOps.Add(1)
			}
			return 0
		}
		for !stop.Load() {
			sem.DownRead(task)
			spinFor(readCS, rng)
			sem.UpRead(task)
			readOps.Add(1)
		}
		return 0
	})
	return LocktortureResult{Reads: readOps.Load(), Writes: writeOps.Load()}
}

// spinFor burns CPU for roughly d (critical sections in locktorture hold
// the lock actively).
func spinFor(d time.Duration, rng *xrand.XorShift64) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		Work(rng, 32)
	}
}

// WillItScale runs the §6.2 microbenchmarks natively over the simulated mm.
// test is one of page_fault1, page_fault2, mmap1, mmap2; all threads share
// one address space (the _threads variants). Returns iterations per second:
// page faults for the fault flavours, map+unmap pairs for the mmap ones.
//
// chunk is the mapping size; the paper's 128MB (32768 pages) is the
// default in the cmd wrapper, scaled down for quick runs.
func WillItScale(k Kernel, test string, threads int, chunk uint64, cfg Config) float64 {
	return cfg.Median(func() float64 {
		as := vm.NewAddressSpace(newMMapSem(k))
		total := RunWorkers(threads, cfg.Interval, func(id int, stop *atomic.Bool) uint64 {
			task := rwsem.NewTask()
			var ops uint64
			for !stop.Load() {
				addr, err := as.Mmap(task, chunk, test == "page_fault2")
				if err != nil {
					panic(err)
				}
				switch test {
				case "page_fault1", "page_fault2":
					for off := uint64(0); off < chunk && !stop.Load(); off += vm.PageSize {
						if _, err := as.PageFault(task, addr+off); err != nil {
							panic(err)
						}
						ops++
					}
				case "mmap2":
					if _, err := as.PageFault(task, addr); err != nil {
						panic(err)
					}
					ops++
				default: // mmap1
					ops++
				}
				if err := as.Munmap(task, addr); err != nil {
					panic(err)
				}
			}
			return ops
		})
		return float64(total) / cfg.Interval.Seconds()
	})
}
