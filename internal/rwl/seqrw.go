package rwl

import (
	"github.com/bravolock/bravo/internal/locks/seq"
)

// SeqRWLock is an RWLock whose write sections are bracketed by a sequence
// counter, so readers can attempt optimistic (zero shared-memory-write)
// sections and validate them instead of acquiring the read lock. The
// pessimistic RLock/RUnlock path remains available as the fallback when
// validation keeps failing.
type SeqRWLock interface {
	RWLock
	// ReadAttempt samples the sequence for an optimistic read section.
	// ok is false when a writer is inside; the caller should retry or
	// fall back to RLock rather than spin.
	ReadAttempt() (s uint64, ok bool)
	// ReadValidate reports whether an optimistic section begun at s
	// completed without writer overlap. A false result means any data
	// read during the section may be torn and must be discarded.
	ReadValidate(s uint64) bool
	// Seq exposes the underlying counter for callers that want to avoid
	// interface dispatch on the hot path.
	Seq() *seq.Count
}

// Optimistic wraps an RWLock so that every write section is bracketed by a
// seq.Count: Lock makes the sequence odd after acquiring the underlying
// write lock, Unlock makes it even before releasing. Because the underlying
// lock already serializes writers, the counter needs no serialization of its
// own, and the bracketing is structural — any mutation that goes through
// Lock/Unlock is automatically versioned, which is the invariant the KV
// engine's torn-read test artillery exists to defend.
//
// Read acquisitions pass through untouched, so the wrapped lock keeps the
// substrate's admission policy and BRAVO's fast-path behavior.
type Optimistic struct {
	cnt   seq.Count
	under RWLock
}

var _ SeqRWLock = (*Optimistic)(nil)

// WrapOptimistic wraps l with a write-section sequence counter. When l also
// supports handle reads (HandleRWLock), the returned lock does too, so
// wrapping never narrows the read API: the result is an *OptimisticH in
// that case and an *Optimistic otherwise.
func WrapOptimistic(l RWLock) SeqRWLock {
	if h, ok := l.(HandleRWLock); ok {
		return &OptimisticH{Optimistic{under: l}, h}
	}
	return &Optimistic{under: l}
}

// RLock acquires read permission on the underlying lock.
func (o *Optimistic) RLock() Token { return o.under.RLock() }

// RUnlock releases a read acquisition on the underlying lock.
func (o *Optimistic) RUnlock(t Token) { o.under.RUnlock(t) }

// Lock acquires write permission and opens the write section (sequence odd).
func (o *Optimistic) Lock() {
	o.under.Lock()
	o.cnt.WriteBegin()
}

// Unlock closes the write section (sequence even) and releases write
// permission.
func (o *Optimistic) Unlock() {
	o.cnt.WriteEnd()
	o.under.Unlock()
}

// ReadAttempt samples the sequence for an optimistic read section.
func (o *Optimistic) ReadAttempt() (uint64, bool) { return o.cnt.TryBegin() }

// ReadValidate reports whether an optimistic section begun at s saw no
// writer.
func (o *Optimistic) ReadValidate(s uint64) bool { return !o.cnt.Retry(s) }

// Seq returns the write-section counter.
func (o *Optimistic) Seq() *seq.Count { return &o.cnt }

// Under returns the wrapped lock. Diagnostic — tests use it to drive the
// substrate directly (e.g. to prove an unbracketed mutation is caught).
func (o *Optimistic) Under() RWLock { return o.under }

// OptimisticH is Optimistic over a handle-capable lock; it forwards the
// handle read path so wrapped BRAVO locks keep their one-CAS reader
// fast path for the pessimistic fallback.
type OptimisticH struct {
	Optimistic
	hunder HandleRWLock
}

var _ HandleRWLock = (*OptimisticH)(nil)
var _ SeqRWLock = (*OptimisticH)(nil)

// RLockH acquires read permission for the handle's pinned identity.
func (o *OptimisticH) RLockH(h *Reader) Token { return o.hunder.RLockH(h) }

// RUnlockH releases a read acquisition made by RLockH.
func (o *OptimisticH) RUnlockH(h *Reader, t Token) { o.hunder.RUnlockH(h, t) }
