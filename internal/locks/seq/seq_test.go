package seq

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestReadersSeeConsistentPairs(t *testing.T) {
	// The classic seqlock correctness property: writers keep two words in
	// lockstep; a validated read section must never observe them out of
	// sync.
	var l Lock
	var a, b atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			l.WriteLock()
			a.Store(i)
			b.Store(i)
			l.WriteUnlock()
		}
	}()
	for i := 0; i < 5000; i++ {
		var x, y uint64
		l.RunRead(func() {
			x = a.Load()
			y = b.Load()
		})
		if x != y {
			t.Fatalf("validated read observed torn pair (%d, %d)", x, y)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSequenceParity(t *testing.T) {
	var l Lock
	if s := l.ReadBegin(); s%2 != 0 {
		t.Fatalf("idle sequence %d is odd", s)
	}
	l.WriteLock()
	if l.seq.Load()%2 != 1 {
		t.Fatal("sequence even during write section")
	}
	l.WriteUnlock()
	if l.seq.Load()%2 != 0 {
		t.Fatal("sequence odd after write section")
	}
}

func TestReadRetryDetectsWriter(t *testing.T) {
	var l Lock
	s := l.ReadBegin()
	l.WriteLock()
	l.WriteUnlock()
	if !l.ReadRetry(s) {
		t.Fatal("read section overlapping a write was not invalidated")
	}
}

func TestWritersSerialize(t *testing.T) {
	var l Lock
	var counter int
	var wg sync.WaitGroup
	const workers, iters = 6, 1500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.WriteLock()
				counter++
				l.WriteUnlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d", counter, workers*iters)
	}
}
