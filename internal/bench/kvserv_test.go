package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	_ "github.com/bravolock/bravo/internal/locks/all"
)

func TestSplitRoles(t *testing.T) {
	for _, tc := range []struct{ threads, readers, writers int }{
		{1, 1, 1}, {2, 1, 1}, {4, 2, 2}, {8, 4, 4}, {16, 8, 8},
	} {
		r, w := splitRoles(tc.threads)
		if r != tc.readers || w != tc.writers {
			t.Errorf("splitRoles(%d) = %d/%d, want %d/%d", tc.threads, r, w, tc.readers, tc.writers)
		}
	}
}

func TestKVServPointValidation(t *testing.T) {
	cfg := Config{Interval: time.Millisecond, Runs: 1}
	if _, err := KVServPoint("bravo-go", 4, 2, 8, 64, "sideways", cfg); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := KVServPoint("bravo-go", 4, 2, 1, 64, "batched", cfg); err == nil {
		t.Fatal("batch < 2 accepted")
	}
	if _, err := KVServPoint("no-such-lock", 4, 2, 8, 64, "single", cfg); err == nil {
		t.Fatal("unknown lock accepted")
	}
}

// TestKVServSweepSmoke runs a tiny sweep end to end: both modes, stats
// plumbing, comparison pairing, and a JSON-marshalable report. The
// interval must comfortably cover a bias revocation on a loaded 1-CPU
// host, or the single-mode writer can finish its first Put after stop.
func TestKVServSweepSmoke(t *testing.T) {
	cfg := Config{Interval: 40 * time.Millisecond, Runs: 1}
	results, comps, err := KVServSweep([]string{"bravo-go"}, []int{4}, []int{2}, 8, 32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || len(comps) != 1 {
		t.Fatalf("sweep produced %d results, %d comparisons; want 2/1", len(results), len(comps))
	}
	single, batched := results[0], results[1]
	if single.Mode != "single" || batched.Mode != "batched" {
		t.Fatalf("mode order = %q, %q", single.Mode, batched.Mode)
	}
	if single.BatchSize != 1 || batched.BatchSize != 8 {
		t.Fatalf("batch sizes = %d/%d, want 1/8", single.BatchSize, batched.BatchSize)
	}
	for _, r := range results {
		if r.WriteKeysPerSec <= 0 {
			t.Fatalf("%s mode applied no writes", r.Mode)
		}
		if r.ReadOpsPerSec <= 0 {
			t.Fatalf("%s mode performed no reads", r.Mode)
		}
		if r.FastReadFraction < 0 || r.FastReadFraction > 1 {
			t.Fatalf("%s mode fast fraction = %v, want [0, 1] for a bravo lock", r.Mode, r.FastReadFraction)
		}
		if r.Readers != 1 || r.Writers != 1 {
			t.Fatalf("roles = %d/%d, want 1/1 at 2 threads", r.Readers, r.Writers)
		}
	}
	c := comps[0]
	if c.SingleWriteKeysPerSec != single.WriteKeysPerSec || c.BatchedWriteKeysPerSec != batched.WriteKeysPerSec {
		t.Fatal("comparison does not match its results")
	}
	if c.BatchedOverSingle <= 0 {
		t.Fatalf("ratio = %v", c.BatchedOverSingle)
	}
	if c.FastReadGap < 0 {
		t.Fatalf("fast gap = %v, want >= 0 for bravo locks", c.FastReadGap)
	}
	var buf bytes.Buffer
	rep := NewKVServReport(cfg, results, comps)
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back KVServReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Benchmark != "kvserv" || len(back.Results) != 2 {
		t.Fatalf("round-tripped report = %q with %d results", back.Benchmark, len(back.Results))
	}
	var tbl bytes.Buffer
	WriteKVServTable(&tbl, results)
	WriteKVServComparisons(&tbl, comps)
	if tbl.Len() == 0 {
		t.Fatal("table writers produced nothing")
	}
}

// TestKVServPlainLockNoStats checks the non-BRAVO degradation: fast
// fraction -1 and a comparison gap of -1 (unavailable) rather than NaN.
func TestKVServPlainLockNoStats(t *testing.T) {
	cfg := Config{Interval: 2 * time.Millisecond, Runs: 1}
	single, err := KVServPoint("go-rw", 2, 2, 4, 32, "single", cfg)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := KVServPoint("go-rw", 2, 2, 4, 32, "batched", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if single.FastReadFraction != -1 || batched.FastReadFraction != -1 {
		t.Fatalf("plain lock fast fractions = %v/%v, want -1/-1", single.FastReadFraction, batched.FastReadFraction)
	}
	c := compareKVServ(single, batched)
	if c.FastReadGap != -1 || c.FastGapWithin5Pct {
		t.Fatalf("plain lock gap = %v/%v, want -1/false", c.FastReadGap, c.FastGapWithin5Pct)
	}
}
