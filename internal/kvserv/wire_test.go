package kvserv

// The wire front-end's serving contract: same engine, same semantics as
// HTTP, over the pipelined binary protocol — plus the properties the
// protocol exists for (batch = one lock acquisition per shard group,
// responses batched per pipeline burst, malformed frames answered or the
// connection closed cleanly).

import (
	"bytes"
	"net"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/frame"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/wire"
)

// startWireServer boots a wire listener over engine (built fresh when
// nil) and returns its address, the engine, and the server.
func startWireServer(t *testing.T, engine *kvs.Sharded, cfg Config) (string, *kvs.Sharded, *Server) {
	t.Helper()
	if engine == nil {
		var err error
		engine, err = kvs.NewSharded(8, func() rwl.RWLock { return core.New(new(stdrw.Lock)) })
		if err != nil {
			t.Fatal(err)
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(engine, cfg)
	done := make(chan error, 1)
	go func() { done <- srv.ServeWire(l) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != ErrServerClosed {
			t.Errorf("ServeWire returned %v, want ErrServerClosed", err)
		}
	})
	return l.Addr().String(), engine, srv
}

func TestWireCRUD(t *testing.T) {
	addr, _, _ := startWireServer(t, nil, Config{ReapInterval: -1})
	cl := wire.NewClient(addr, time.Second)
	defer cl.Close()

	if _, ok, err := cl.Get(1, 0); err != nil || ok {
		t.Fatalf("get before put: ok=%v err=%v", ok, err)
	}
	if _, err := cl.Put(1, []byte("hello"), 0, false); err != nil {
		t.Fatalf("put: %v", err)
	}
	v, ok, err := cl.Get(1, 0)
	if err != nil || !ok || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("get: %q, %v, %v", v, ok, err)
	}
	if _, removed, err := cl.Delete(1); err != nil || !removed {
		t.Fatalf("delete: removed=%v err=%v", removed, err)
	}
	if _, removed, err := cl.Delete(1); err != nil || removed {
		t.Fatalf("delete miss: removed=%v err=%v", removed, err)
	}

	// TTL attaches an expiry the read path honors.
	if _, err := cl.Put(2, []byte("fleeting"), 10*time.Millisecond, false); err != nil {
		t.Fatalf("put ttl: %v", err)
	}
	if _, ok, _ := cl.Get(2, 0); !ok {
		t.Fatal("ttl value missing before expiry")
	}
	time.Sleep(20 * time.Millisecond)
	if _, ok, _ := cl.Get(2, 0); ok {
		t.Fatal("ttl value visible after expiry")
	}

	// Async enqueues; Flush applies.
	if _, err := cl.Put(3, []byte("queued"), 0, true); err != nil {
		t.Fatalf("put async: %v", err)
	}
	if n, err := cl.Flush(); err != nil || n < 1 {
		t.Fatalf("flush: %d, %v", n, err)
	}
	if v, ok, _ := cl.Get(3, 0); !ok || !bytes.Equal(v, []byte("queued")) {
		t.Fatalf("async value after flush: %q, %v", v, ok)
	}

	// Batches.
	keys := []uint64{10, 11, 12}
	vals := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	if _, err := cl.MPut(keys, vals, 0); err != nil {
		t.Fatalf("mput: %v", err)
	}
	got, err := cl.MGet([]uint64{10, 11, 12, 99}, 0)
	if err != nil || len(got) != 4 {
		t.Fatalf("mget: %v, %v", got, err)
	}
	for i := range keys {
		if !bytes.Equal(got[i], vals[i]) {
			t.Fatalf("mget[%d] = %q, want %q", i, got[i], vals[i])
		}
	}
	if got[3] != nil {
		t.Fatalf("mget absent key = %q, want nil", got[3])
	}
	removed, _, err := cl.MDelete([]uint64{10, 11, 99})
	if err != nil || removed != 2 {
		t.Fatalf("mdelete: %d, %v", removed, err)
	}

	// Stats over the wire is the /stats document.
	stats, err := cl.Stats()
	if err != nil || !bytes.Contains(stats, []byte(`"num_shards":8`)) {
		t.Fatalf("stats: %v, %.120s", err, stats)
	}
}

// TestWireBatchOneLockPerShardGroup is the acceptance check for the
// protocol's whole point: one wire batch of N keys spanning S shards is
// applied as exactly S combined write batches — S write-lock acquisitions
// — not N. Asserted on the engine's own counters, not timing.
func TestWireBatchOneLockPerShardGroup(t *testing.T) {
	addr, engine, _ := startWireServer(t, nil, Config{ReapInterval: -1})
	cl := wire.NewClient(addr, time.Second)
	defer cl.Close()

	const n = 64
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	shards := map[int]bool{}
	for i := range keys {
		keys[i] = uint64(i * 3)
		vals[i] = []byte("v")
		shards[engine.ShardOf(keys[i])] = true
	}
	s := len(shards)
	if s < 2 || s >= n {
		t.Fatalf("test keys span %d shards of %d keys: pick a better spread", s, n)
	}

	before := engine.Stats().Total()
	if _, err := cl.MPut(keys, vals, 0); err != nil {
		t.Fatalf("mput: %v", err)
	}
	after := engine.Stats().Total()

	if got := after.WriteBatches - before.WriteBatches; got != uint64(s) {
		t.Fatalf("MPUT of %d keys over %d shards took %d write-lock batches, want exactly %d", n, s, got, s)
	}
	if got := after.Puts - before.Puts; got != n {
		t.Fatalf("MPUT applied %d puts, want %d", got, n)
	}

	// Same contract on the delete batch.
	before = after
	if _, _, err := cl.MDelete(keys); err != nil {
		t.Fatalf("mdelete: %v", err)
	}
	after = engine.Stats().Total()
	if got := after.WriteBatches - before.WriteBatches; got != uint64(s) {
		t.Fatalf("MDELETE of %d keys over %d shards took %d write-lock batches, want exactly %d", n, s, got, s)
	}

	// And the read side: one shard-group batch per shard, not N gets
	// (MultiGetBatches counts per shard group).
	before = after
	if _, err := cl.MGet(keys, 0); err != nil {
		t.Fatalf("mget: %v", err)
	}
	after = engine.Stats().Total()
	if got := after.MultiGetBatches - before.MultiGetBatches; got != uint64(s) {
		t.Fatalf("MGET of %d keys over %d shards ran %d shard-group batches, want exactly %d", n, s, got, s)
	}
	if got := after.MultiGetKeys - before.MultiGetKeys; got != n {
		t.Fatalf("MGET carried %d keys, want %d", got, n)
	}
}

// TestWireMinLSNPrimary: a durable primary's commit tokens round-trip
// through the wire and gate reads the same way ?min_lsn= does.
func TestWireMinLSNPrimary(t *testing.T) {
	dir := t.TempDir()
	engine, err := kvs.OpenSharded(dir, 8, func() rwl.RWLock { return core.New(new(stdrw.Lock)) }, kvs.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { engine.Close() })
	addr, _, _ := startWireServer(t, engine, Config{ReapInterval: -1, MinLSNWait: 50 * time.Millisecond})
	cl := wire.NewClient(addr, time.Second)
	defer cl.Close()

	lsns, err := cl.Put(7, []byte("x"), 0, false)
	if err != nil || len(lsns) != 1 {
		t.Fatalf("put: lsns=%v err=%v", lsns, err)
	}
	// The token the write handed out covers the read.
	if _, ok, err := cl.Get(7, lsns[0].LSN); err != nil || !ok {
		t.Fatalf("get with own token: ok=%v err=%v", ok, err)
	}
	// A token this primary never issued is a conflict, not a wait.
	_, _, err = cl.Get(7, lsns[0].LSN+1000)
	se, isStatus := err.(*wire.StatusError)
	if !isStatus || se.Status != wire.StatusConflict {
		t.Fatalf("get with future token: %v, want StatusConflict", err)
	}
}

// TestWireMinLSNVolatile: tokens against a volatile server are a client
// bug and answer BadRequest, as on HTTP.
func TestWireMinLSNVolatile(t *testing.T) {
	addr, _, _ := startWireServer(t, nil, Config{ReapInterval: -1})
	cl := wire.NewClient(addr, time.Second)
	defer cl.Close()
	_, _, err := cl.Get(1, 5)
	se, ok := err.(*wire.StatusError)
	if !ok || se.Status != wire.StatusBadRequest {
		t.Fatalf("min_lsn on volatile: %v, want StatusBadRequest", err)
	}
}

// TestWireValueCaps: per-value caps answer StatusTooLarge, same limit as
// HTTP's 413.
func TestWireValueCaps(t *testing.T) {
	addr, _, _ := startWireServer(t, nil, Config{ReapInterval: -1})
	cl := wire.NewClient(addr, time.Second)
	defer cl.Close()
	big := make([]byte, MaxValueBytes+1)
	_, err := cl.Put(1, big, 0, false)
	se, ok := err.(*wire.StatusError)
	if !ok || se.Status != wire.StatusTooLarge {
		t.Fatalf("oversize put: %v, want StatusTooLarge", err)
	}
	_, err = cl.MPut([]uint64{1}, [][]byte{big}, 0)
	se, ok = err.(*wire.StatusError)
	if !ok || se.Status != wire.StatusTooLarge {
		t.Fatalf("oversize mput entry: %v, want StatusTooLarge", err)
	}
	// ttl+async is the one semantic exclusion.
	conn, err := cl.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Do(&wire.Request{Op: wire.OpPut, Key: 1, Value: []byte("x"), TTL: time.Second, Async: true})
	cl.Release(conn)
	if err != nil || resp.Status != wire.StatusBadRequest {
		t.Fatalf("ttl+async: %v status %v, want StatusBadRequest", err, resp.Status)
	}
}

// TestWireMalformedBody: a sound frame whose body does not decode is
// answered StatusBadRequest by id, and the connection keeps serving.
func TestWireMalformedBody(t *testing.T) {
	addr, _, _ := startWireServer(t, nil, Config{ReapInterval: -1})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Header parses (version, op GET, id 77) but the body is one byte
	// short of a key.
	bad := frame.Append(nil, []byte{wire.Version, byte(wire.OpGet), 0, 77, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3})
	if _, err := nc.Write(bad); err != nil {
		t.Fatal(err)
	}
	dec := wire.NewStreamDecoder(nc, 0)
	payload, err := dec.Next()
	if err != nil {
		t.Fatalf("reading malformed-body response: %v", err)
	}
	resp, ok := wire.DecodeResponse(payload)
	if !ok || resp.ID != 77 || resp.Status != wire.StatusBadRequest {
		t.Fatalf("malformed body answered %+v, want BadRequest id=77", resp)
	}

	// The connection survived: a valid request on it still works.
	good := wire.AppendRequest(nil, &wire.Request{Op: wire.OpGet, ID: 78, Key: 5})
	if _, err := nc.Write(good); err != nil {
		t.Fatal(err)
	}
	payload, err = dec.Next()
	if err != nil {
		t.Fatalf("reading post-malformed response: %v", err)
	}
	if resp, ok := wire.DecodeResponse(payload); !ok || resp.ID != 78 || resp.Status != wire.StatusNotFound {
		t.Fatalf("follow-up request answered %+v", resp)
	}
}

// TestWireCorruptFrameCloses: a corrupt envelope loses frame boundaries;
// the server closes the connection rather than guessing.
func TestWireCorruptFrameCloses(t *testing.T) {
	addr, _, _ := startWireServer(t, nil, Config{ReapInterval: -1})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	f := wire.AppendRequest(nil, &wire.Request{Op: wire.OpGet, ID: 1, Key: 5})
	f[len(f)-1]++ // CRC mismatch
	if _, err := nc.Write(f); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	var buf [64]byte
	if n, err := nc.Read(buf[:]); err == nil {
		t.Fatalf("server answered %d bytes to a corrupt frame, want close", n)
	}
}

// TestWireUnknownOp: an op the server does not recognize still gets a
// typed answer (DecodeRequest rejects it, the header fallback names it).
func TestWireUnknownOp(t *testing.T) {
	addr, _, _ := startWireServer(t, nil, Config{ReapInterval: -1})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	f := frame.Append(nil, []byte{wire.Version, 99, 0, 42, 0, 0, 0, 0, 0, 0, 0})
	if _, err := nc.Write(f); err != nil {
		t.Fatal(err)
	}
	dec := wire.NewStreamDecoder(nc, 0)
	payload, err := dec.Next()
	if err != nil {
		t.Fatalf("reading unknown-op response: %v", err)
	}
	resp, ok := wire.DecodeResponse(payload)
	if !ok || resp.ID != 42 || resp.Status != wire.StatusBadRequest {
		t.Fatalf("unknown op answered %+v", resp)
	}
}

// TestWireResponseBatching: a pipelined burst is answered in one (or few)
// TCP segments — observable as all responses arriving without interleaved
// flush round trips. Functional check: every response of a 100-deep burst
// arrives and correlates.
func TestWireResponseBatching(t *testing.T) {
	addr, _, _ := startWireServer(t, nil, Config{ReapInterval: -1})
	conn, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const depth = 100
	pendings := make([]*wire.Pending, depth)
	for i := range pendings {
		p, err := conn.Start(&wire.Request{Op: wire.OpPut, Key: uint64(i), Value: []byte("v")})
		if err != nil {
			t.Fatalf("Start %d: %v", i, err)
		}
		pendings[i] = p
	}
	if err := conn.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, p := range pendings {
		if _, err := p.Wait(); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
	}
}
