package kvs

// Atomic multi-key transactions over the sharded engine, built as
// shard-ordered two-phase locking on the locks the engine already has.
//
// A transaction declares its key set up front (bounded by MaxTxnKeys), and
// Txn acquires every participant shard's WAL mutex in ascending shard
// order, then every participant shard's write lock in ascending shard
// order — the same global rank every existing writer follows (a Put takes
// wal_i then shard_i; a checkpoint takes wal_i then shard_i's read lock),
// so transactions deadlock neither with each other nor with any
// single-shard path, by construction rather than by timeout. With all
// locks held the transaction body runs against a staged overlay: reads see
// the shard state plus the transaction's own writes, writes stage without
// touching the maps, and an error return (or a zero-write body) releases
// everything with nothing logged and nothing applied.
//
// Commit durability: a transaction whose staged writes land on one shard
// commits as an ordinary v2 group-commit record — indistinguishable from a
// MultiPut batch. One that spans shards appends a v4 witness record (see
// walVersionTxn in wal.go) to EVERY participant's log at that shard's own
// next LSN, carrying all entries plus the participant list; each log
// applier keeps only its own shard's entries, and recovery uses any
// surviving copy to roll forward participants whose copy was torn away —
// so atomicity survives crashes, replication, and failover through the
// machinery those paths already have.

import (
	"bytes"
	"errors"
	"fmt"
	"slices"
	"time"
)

// MaxTxnKeys bounds a transaction's declared key set. The bound keeps the
// lock footprint (and the witness record fan-out) small and the lock hold
// times short; it is a safety rail, not a tuning knob.
const MaxTxnKeys = 16

// Transaction validation errors.
var (
	// ErrTxnNoKeys reports a transaction declared with an empty key set.
	ErrTxnNoKeys = errors.New("kvs: transaction declares no keys")
	// ErrTxnTooManyKeys reports a transaction declaring more than
	// MaxTxnKeys keys.
	ErrTxnTooManyKeys = fmt.Errorf("kvs: transaction declares more than %d keys", MaxTxnKeys)
)

// Tx is the staged view a transaction body operates on: reads merge the
// shard state (as of the locked instant) with the transaction's own staged
// writes, and writes stage until the body returns nil. All methods accept
// only keys declared to Txn — touching an undeclared key panics, because
// its shard may not be locked and the 2PL guarantee would silently rot.
// A Tx is valid only inside its body, on the body's goroutine; values it
// returns must not be retained after the body returns.
type Tx struct {
	s      *Sharded
	keys   []uint64
	cur    [][]byte // nil = absent (expired counts as absent)
	staged []txnWrite
}

// txnWrite is one staged mutation.
type txnWrite struct {
	kind     byte // 0 untouched, walOpPut/walOpPutTTL/walOpDelete staged
	val      []byte
	deadline int64
}

// idx resolves a declared key to its position, panicking on an undeclared
// one (a programming error of the same class as an unbalanced unlock).
func (tx *Tx) idx(key uint64) int {
	for i, k := range tx.keys {
		if k == key {
			return i
		}
	}
	panic(fmt.Sprintf("kvs: transaction touched key %#x, which it did not declare", key))
}

// Get returns the value the transaction observes for key: its own staged
// write if it made one, otherwise the value visible at the locked instant.
// The returned slice must not be retained or mutated after the body
// returns.
func (tx *Tx) Get(key uint64) ([]byte, bool) {
	i := tx.idx(key)
	switch tx.staged[i].kind {
	case walOpPut, walOpPutTTL:
		return tx.staged[i].val, true
	case walOpDelete:
		return nil, false
	}
	return tx.cur[i], tx.cur[i] != nil
}

// Put stages a write of value under key. Within one transaction the last
// staged operation per key wins.
func (tx *Tx) Put(key uint64, value []byte) {
	tx.staged[tx.idx(key)] = txnWrite{kind: walOpPut, val: value}
}

// PutTTL stages a write with a time-to-live, with PutTTL's semantics.
func (tx *Tx) PutTTL(key uint64, value []byte, ttl time.Duration) {
	tx.staged[tx.idx(key)] = txnWrite{kind: walOpPutTTL, val: value, deadline: ttlDeadline(ttl)}
}

// Delete stages a removal of key.
func (tx *Tx) Delete(key uint64) {
	tx.staged[tx.idx(key)] = txnWrite{kind: walOpDelete}
}

// Txn runs body as an atomic transaction over the declared keys (at most
// MaxTxnKeys; duplicates are allowed and collapse). All participant shards
// are locked for the duration, so the body observes — and its staged
// writes replace — one consistent instant: no other writer can interleave,
// and readers see either none or all of the transaction's writes (shard by
// shard through the lock; across shards once every shard lock releases).
// A non-nil error from body aborts: nothing is logged, nothing applied,
// and the error is returned. On durable engines a committed transaction is
// logged before it is applied, like every other write.
//
// The body must not touch the engine through any other method — it holds
// the participant locks, so a nested Get/Put on a participant shard would
// self-deadlock. Everything it needs goes through the Tx.
func (s *Sharded) Txn(keys []uint64, body func(*Tx) error) error {
	if len(keys) == 0 {
		return ErrTxnNoKeys
	}
	if len(keys) > MaxTxnKeys {
		return ErrTxnTooManyKeys
	}
	// Dedupe, preserving first-declared order for the Tx view.
	uk := make([]uint64, 0, len(keys))
	for _, k := range keys {
		if !slices.Contains(uk, k) {
			uk = append(uk, k)
		}
	}
	// Participant shards, ascending: the 2PL lock order.
	shardIdx := make([]int, 0, len(uk))
	for _, k := range uk {
		if si := s.ShardOf(k); !slices.Contains(shardIdx, si) {
			shardIdx = append(shardIdx, si)
		}
	}
	slices.Sort(shardIdx)

	// Lock phase: every participant WAL mutex, then every participant
	// shard lock, each ascending — the same global rank as the
	// single-shard write paths, extended across shards.
	if s.durable {
		for _, si := range shardIdx {
			s.shards[si].wal.mu.Lock()
		}
	}
	for _, si := range shardIdx {
		s.shards[si].lock.Lock()
	}
	locked := true
	release := func() {
		if !locked {
			return
		}
		locked = false
		for i := len(shardIdx) - 1; i >= 0; i-- {
			s.shards[shardIdx[i]].lock.Unlock()
		}
		if s.durable {
			for i := len(shardIdx) - 1; i >= 0; i-- {
				// unlock publishes the applied LSN, so a committed
				// transaction's read-your-writes tokens are valid the
				// moment Txn returns.
				s.shards[shardIdx[i]].wal.unlock()
			}
		}
	}
	// A panic in the body must not strand the locks (the caller may
	// recover); the staged state is simply dropped.
	defer release()

	// Read phase: capture each key's visible value at the locked instant.
	tx := &Tx{
		s:      s,
		keys:   uk,
		cur:    make([][]byte, len(uk)),
		staged: make([]txnWrite, len(uk)),
	}
	for i, k := range uk {
		sh := &s.shards[s.ShardOf(k)]
		if c, ok := sh.data[k]; ok && !sh.expiredLocked(k) {
			tx.cur[i] = c.bytes()
		}
	}

	if err := body(tx); err != nil {
		for _, si := range shardIdx {
			s.shards[si].ops.txnAborts.Add(1)
		}
		release()
		return err
	}

	// Commit: group the staged writes by shard, in declared order.
	type shardGroup struct {
		shard   int
		entries []walEntry
	}
	groups := make([]shardGroup, 0, len(shardIdx))
	total := 0
	for _, si := range shardIdx {
		g := shardGroup{shard: si}
		for i, w := range tx.staged {
			if w.kind == 0 || s.ShardOf(uk[i]) != si {
				continue
			}
			e := walEntry{op: w.kind, key: uk[i], val: w.val}
			if w.kind == walOpPutTTL {
				e.rem = w.deadline // absolute deadline; encoded relative by addPut
			}
			g.entries = append(g.entries, e)
		}
		if len(g.entries) > 0 {
			groups = append(groups, g)
			total += len(g.entries)
		}
	}

	// Log phase (durable engines, before any map is touched). One writing
	// shard commits as a plain v2 record; several commit as one v4 witness
	// record appended to each writing shard's log. The participant LSNs
	// are all known here — every WAL mutex is held — so each copy carries
	// the full list and any one copy can drive recovery's roll-forward.
	if s.durable && total > 0 {
		if len(groups) == 1 {
			w := s.shards[groups[0].shard].wal
			w.begin(len(groups[0].entries))
			addTxnEntries(w, groups[0].entries)
			w.commit(len(groups[0].entries))
		} else {
			parts := make([]walPart, len(groups))
			for gi, g := range groups {
				parts[gi] = walPart{shard: uint32(g.shard), lsn: s.shards[g.shard].wal.lsn + 1}
			}
			var all []walEntry
			for _, g := range groups {
				all = append(all, g.entries...)
			}
			for gi, g := range groups {
				w := s.shards[g.shard].wal
				w.beginTxn(parts, len(all))
				addTxnEntries(w, all)
				// Count this shard's own entries toward its wal_keys; the
				// witness copies of other shards' entries are framing, not
				// payload the shard owns.
				w.commit(len(groups[gi].entries))
			}
		}
	}

	// Apply phase, under the already-held shard locks.
	for _, g := range groups {
		sh := &s.shards[g.shard]
		for _, e := range g.entries {
			switch e.op {
			case walOpPut:
				sh.ops.puts.Add(1) // total before rare: see the Stats load-order note
				sh.putCounted(e.key, e.val, 0)
			case walOpPutTTL:
				sh.ops.puts.Add(1)
				sh.putCounted(e.key, e.val, e.rem)
			case walOpDelete:
				sh.ops.deletes.Add(1)
				ok, expired := sh.deleteLocked(e.key)
				if !ok {
					sh.ops.delMisses.Add(1)
				}
				if expired {
					sh.ops.expired.Add(1)
				}
			}
		}
	}
	for _, si := range shardIdx {
		s.shards[si].ops.txnCommits.Add(1)
	}
	for _, g := range groups {
		sh := &s.shards[g.shard]
		sh.ops.txnKeys.Add(uint64(len(g.entries)))
		sh.ops.wbatches.Add(1)
		sh.ops.wbatchKeys.Add(uint64(len(g.entries)))
	}
	release()
	return nil
}

// addTxnEntries appends staged entries to a begun WAL record. Staged TTL
// writes carry absolute deadlines (ttlDeadline at stage time); addPut
// re-encodes them as remaining time, exactly like the non-transactional
// paths.
func addTxnEntries(w *shardWAL, entries []walEntry) {
	for _, e := range entries {
		switch e.op {
		case walOpPut:
			w.addPut(e.key, e.val, 0)
		case walOpPutTTL:
			w.addPut(e.key, e.val, e.rem)
		case walOpDelete:
			w.addDelete(e.key)
		}
	}
}

// CompareAndSwap atomically replaces key's value with new if its current
// visible value equals old. A nil old means "only if absent"; a nil new
// means "delete on match". It returns whether the swap applied. A CAS that
// finds a mismatch is a committed read-only transaction, not an abort.
func (s *Sharded) CompareAndSwap(key uint64, old, new []byte) (bool, error) {
	swapped := false
	err := s.Txn([]uint64{key}, func(tx *Tx) error {
		cur, ok := tx.Get(key)
		if old == nil {
			if ok {
				return nil
			}
		} else if !ok || !bytes.Equal(cur, old) {
			return nil
		}
		if new == nil {
			tx.Delete(key)
		} else {
			tx.Put(key, new)
		}
		swapped = true
		return nil
	})
	return swapped && err == nil, err
}

// Update atomically applies a read-modify-write to key: body receives the
// current visible value (nil, false when absent) and returns the new value
// and whether to write it. No other writer can interleave between the read
// and the write.
func (s *Sharded) Update(key uint64, body func(cur []byte, ok bool) ([]byte, bool)) error {
	return s.Txn([]uint64{key}, func(tx *Tx) error {
		cur, ok := tx.Get(key)
		if next, write := body(cur, ok); write {
			tx.Put(key, next)
		}
		return nil
	})
}
