package repl

// Transaction witness records on the wire. The stream ships WAL records
// verbatim, so a committed multi-shard txn arrives at each participant
// shard's puller as a v4 witness frame. A follower that cannot decode or
// apply those frames does not fail loudly — it drops the stream, retries,
// and loops forever one LSN short — so the regression signature asserted
// here is "caught up with zero reconnects", not just convergence.

import (
	"fmt"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/kvs"
)

func TestE2ETxnWitnessReplication(t *testing.T) {
	dir := t.TempDir()
	engine, url, _, _ := startPrimaryHost(t, dir, 8, mkBravo)

	// Baseline singles so witness frames land mid-sequence on some shards,
	// at LSN 1 on others.
	for k := uint64(0); k < 32; k++ {
		engine.Put(k, kvs.EncodeValue(k))
	}

	oracle := newLSNOracle(t)
	f := openFollower(t, url, func(c *Config) { c.OnApply = oracle.hook })
	if err := f.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Live tail: cross-shard commits stream to an already-attached
	// follower. Each txn writes some keys and deletes its last one, so
	// the witness carries both entry kinds.
	for i, keys := range [][]uint64{{100, 101, 102}, {7, 200}, {3, 300, 301, 302}} {
		err := engine.Txn(keys, func(tx *kvs.Tx) error {
			for _, k := range keys[:len(keys)-1] {
				tx.Put(k, []byte(fmt.Sprintf("txn%d-%d", i, k)))
			}
			tx.Delete(keys[len(keys)-1])
			return nil
		})
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	// An aborted txn must ship nothing.
	wantAbort := fmt.Errorf("no")
	if err := engine.Txn([]uint64{1, 2}, func(tx *kvs.Tx) error {
		tx.Put(1, []byte("never"))
		return wantAbort
	}); err != wantAbort {
		t.Fatalf("aborting txn returned %v", err)
	}

	if err := f.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatalf("follower stuck on witness frames: %v", err)
	}
	requireConverged(t, engine, f.Engine(), "live tail through txns")
	if got := f.Stats().Reconnects; got != 0 {
		t.Fatalf("clean stream took %d reconnects: witness frames are dropping the stream", got)
	}

	// Catch-up: a fresh follower replays the whole log — witness frames
	// included — from LSN 1.
	f2 := openFollower(t, url, nil)
	if err := f2.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatalf("fresh follower stuck replaying witness frames: %v", err)
	}
	requireConverged(t, engine, f2.Engine(), "fresh bootstrap over txn history")
	if got := f2.Stats().Reconnects; got != 0 {
		t.Fatalf("bootstrap took %d reconnects", got)
	}
}
