package bench

import (
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// RunMeta stamps a benchmark report with the environment that produced it,
// so the perf trajectory is attributable run to run: which commit, on how
// many CPUs, when.
type RunMeta struct {
	Commit     string `json:"commit"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Timestamp  string `json:"timestamp"`
}

// NewRunMeta captures the current environment. The commit comes from the
// binary's build info when present (go build stamps vcs.revision) and falls
// back to asking git, then to "unknown" — reports must stay writable from
// containers without either. Multi-row reports stamp a fresh RunMeta per
// workload row (the Timestamp marks when that row started), so NewRunMeta
// must stay cheap on repeat calls: the commit lookup — which may exec git
// twice — runs once per process and is cached.
func NewRunMeta() RunMeta {
	return RunMeta{
		Commit:     commit(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
}

var (
	commitOnce   sync.Once
	commitCached string
)

func commit() string {
	commitOnce.Do(func() { commitCached = lookupCommit() })
	return commitCached
}

func lookupCommit() string {
	rev, dirty := "", false
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	if rev == "" {
		if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
			rev = strings.TrimSpace(string(out))
			if st, err := exec.Command("git", "status", "--porcelain", "-uno").Output(); err == nil {
				dirty = len(strings.TrimSpace(string(st))) > 0
			}
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}
