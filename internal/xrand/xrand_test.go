package xrand

import (
	"testing"
	"testing/quick"
)

func TestMT19937MatchesReference(t *testing.T) {
	// The canonical check: with the default seed 5489, the 10000th output of
	// MT19937 is 4123659995 (this value is baked into the C++ standard's
	// test for std::mt19937).
	m := NewMT19937(5489)
	var v uint32
	for i := 0; i < 10000; i++ {
		v = m.Next()
	}
	if v != 4123659995 {
		t.Fatalf("10000th output = %d, want 4123659995", v)
	}
}

func TestMT19937SeedDeterminism(t *testing.T) {
	a, b := NewMT19937(12345), NewMT19937(12345)
	for i := 0; i < 2000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("divergence at step %d: %d != %d", i, x, y)
		}
	}
}

func TestMT19937Step(t *testing.T) {
	a, b := NewMT19937(7), NewMT19937(7)
	want := uint32(0)
	for i := 0; i < 10; i++ {
		want = a.Next()
	}
	if got := b.Step(10); got != want {
		t.Fatalf("Step(10) = %d, want %d", got, want)
	}
}

func TestXorShiftNeverZero(t *testing.T) {
	x := NewXorShift64(42)
	for i := 0; i < 100000; i++ {
		if x.Next() == 0 {
			t.Fatal("xorshift produced 0, which is an absorbing state")
		}
	}
}

func TestXorShiftZeroSeedRemapped(t *testing.T) {
	x := NewXorShift64(0)
	if x.Next() == 0 {
		t.Fatal("zero seed not remapped")
	}
}

func TestXorShiftDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewXorShift64(seed), NewXorShift64(seed)
		for i := 0; i < 16; i++ {
			if a.Next() != b.Next() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliRate(t *testing.T) {
	// P = 1/100 trials over n samples should land near n/100.
	x := NewXorShift64(99)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if x.Bernoulli(100) {
			hits++
		}
	}
	want := n / 100
	if hits < want*7/10 || hits > want*13/10 {
		t.Fatalf("Bernoulli(100) hit %d times in %d trials, want ≈%d", hits, n, want)
	}
}

func TestIntnInRange(t *testing.T) {
	f := func(seed uint64) bool {
		x := NewXorShift64(seed)
		for i := 0; i < 32; i++ {
			if x.Intn(200) >= 200 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(1), NewSplitMix64(1)
	for i := 0; i < 64; i++ {
		if a.Next() != b.Next() {
			t.Fatal("SplitMix64 not deterministic")
		}
	}
}

func TestSplitMix64Disperses(t *testing.T) {
	s := NewSplitMix64(0)
	seen := map[uint64]bool{}
	for i := 0; i < 4096; i++ {
		seen[s.Next()] = true
	}
	if len(seen) != 4096 {
		t.Fatalf("SplitMix64 repeated a value within 4096 outputs (%d distinct)", len(seen))
	}
}
