package kvs

// Crash-recovery torture: write through the WAL, "crash" (no Close),
// mutilate the log — truncation at every record boundary, at random
// mid-record offsets, and single-bit corruption — and demand that
// OpenSharded recovers exactly the state of some prefix of the applied
// operations. The oracle is independent of the decoder under test: the
// log file's byte size is recorded after every operation, so for a
// truncation at L bytes the expected state is the model after the last
// operation whose records fit entirely within L. Torn tails are dropped,
// never corrupt.

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/bravolock/bravo/internal/xrand"
)

// tortureOp is one logged operation and its model effect.
type tortureOp struct {
	apply func(s *Sharded)          // issue against the live engine
	model func(m map[uint64][]byte) // fold into the visible-state model
}

// tortureSchedule builds a deterministic randomized schedule. Async writes
// ride along: PutAsync appends nothing until a Flush applies the batch, so
// an op's model effect can be empty and a Flush's can be several keys —
// the offset oracle handles both for free.
func tortureSchedule(rng *xrand.XorShift64, n int, keyspace uint64) []tortureOp {
	ops := make([]tortureOp, 0, n)
	var pendKeys []uint64
	var pendVals [][]byte
	for i := 0; i < n; i++ {
		k := rng.Next() % keyspace
		switch rng.Intn(12) {
		case 0, 1, 2, 3:
			v := EncodeValue(rng.Next())
			ops = append(ops, tortureOp{
				apply: func(s *Sharded) { s.Put(k, v) },
				model: func(m map[uint64][]byte) { m[k] = v },
			})
		case 4:
			v := EncodeValue(rng.Next())
			ops = append(ops, tortureOp{
				apply: func(s *Sharded) { s.putDeadline(k, v, math.MaxInt64) },
				model: func(m map[uint64][]byte) { m[k] = v },
			})
		case 5:
			v := EncodeValue(rng.Next())
			ops = append(ops, tortureOp{
				apply: func(s *Sharded) { s.putDeadline(k, v, -1) },
				model: func(m map[uint64][]byte) { delete(m, k) },
			})
		case 6, 7:
			ops = append(ops, tortureOp{
				apply: func(s *Sharded) { s.Delete(k) },
				model: func(m map[uint64][]byte) { delete(m, k) },
			})
		case 8: // MultiPut: one record for the whole (single-shard) group
			bn := 2 + int(rng.Intn(5))
			keys := make([]uint64, bn)
			vals := make([][]byte, bn)
			for j := range keys {
				keys[j] = rng.Next() % keyspace
				vals[j] = EncodeValue(rng.Next())
			}
			ops = append(ops, tortureOp{
				apply: func(s *Sharded) { s.MultiPut(keys, vals) },
				model: func(m map[uint64][]byte) {
					for j, bk := range keys {
						m[bk] = vals[j]
					}
				},
			})
		case 9: // PutAsync: enqueued, logged only when a batch applies
			v := EncodeValue(rng.Next())
			pendKeys = append(pendKeys, k)
			pendVals = append(pendVals, v)
			ops = append(ops, tortureOp{
				apply: func(s *Sharded) { s.PutAsync(k, v) },
				model: func(m map[uint64][]byte) {},
			})
		case 10: // Flush: the queued batch becomes one record
			fk, fv := pendKeys, pendVals
			pendKeys, pendVals = nil, nil
			ops = append(ops, tortureOp{
				apply: func(s *Sharded) { s.Flush() },
				model: func(m map[uint64][]byte) {
					for j, bk := range fk {
						m[bk] = fv[j]
					}
				},
			})
		default: // Reap: appends nothing, changes nothing visible
			ops = append(ops, tortureOp{
				apply: func(s *Sharded) { s.Reap(16) },
				model: func(m map[uint64][]byte) {},
			})
		}
	}
	return ops
}

// modelAfter folds the first n ops into a fresh visible-state map.
func modelAfter(ops []tortureOp, n int) map[uint64][]byte {
	m := map[uint64][]byte{}
	for i := 0; i < n; i++ {
		ops[i].model(m)
	}
	return m
}

// cloneDirWithWAL copies MANIFEST into a fresh directory and installs wal
// as the single shard's log — the "disk image" a crash left behind.
func cloneDirWithWAL(t *testing.T, srcDir string, wal []byte) string {
	t.Helper()
	dst := t.TempDir()
	man, err := os.ReadFile(filepath.Join(srcDir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, manifestName), man, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, "shard-0000.wal"), wal, 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

// expectState opens the image and compares against want.
func expectState(t *testing.T, dir string, want map[uint64][]byte, label string) {
	t.Helper()
	r, err := OpenSharded(dir, 1, mkStd, SyncNone)
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	defer r.Close()
	got := r.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("%s: recovered %d keys, want %d", label, len(got), len(want))
	}
	for k, wv := range want {
		if gv, ok := got[k]; !ok || !bytes.Equal(gv, wv) {
			t.Fatalf("%s: key %d = %x (present %v), want %x", label, k, gv, ok, wv)
		}
	}
}

func TestTortureTruncatedTailIsPrefixConsistent(t *testing.T) {
	nOps, nCuts := 160, 60
	if testing.Short() {
		nOps, nCuts = 60, 15
	}
	dir := t.TempDir()
	s := openTestKV(t, dir, 1, SyncNone)
	s.SetAsyncBatch(1 << 30) // batches apply on Flush only: schedule-determined records
	rng := xrand.NewXorShift64(0x7027012E)
	ops := tortureSchedule(rng, nOps, 64)
	offsets := make([]int64, len(ops))
	walPath := s.walPath(0)
	for i, op := range ops {
		op.apply(s)
		st, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		offsets[i] = st.Size()
	}
	// The crash: no Close. Writes went straight to the file descriptor, so
	// the bytes are all there; the mutilations below simulate what a real
	// crash (or a half-written sector) can leave.
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(wal)) != offsets[len(offsets)-1] {
		t.Fatalf("wal is %d bytes, offsets say %d", len(wal), offsets[len(offsets)-1])
	}
	// prefixFor: how many ops are fully on disk in the first L bytes.
	prefixFor := func(L int64) int {
		n := 0
		for n < len(offsets) && offsets[n] <= L {
			n++
		}
		return n
	}
	cut := func(L int64, label string) {
		img := cloneDirWithWAL(t, dir, wal[:L])
		expectState(t, img, modelAfter(ops, prefixFor(L)), label)
	}
	// Every record boundary, including the empty log and the full log.
	cut(0, "empty")
	for i, off := range offsets {
		if i == len(offsets)-1 || off != offsets[i+1] {
			cut(off, "boundary")
		}
	}
	// Random offsets, most of them mid-record.
	for c := 0; c < nCuts; c++ {
		cut(int64(rng.Next()%uint64(len(wal)+1)), "random")
	}
	// Single-bit corruption: everything after the flipped byte's record is
	// dropped; nothing before it is touched; no panic, no garbage value.
	for c := 0; c < nCuts/3; c++ {
		p := int(rng.Next() % uint64(len(wal)))
		mut := append([]byte(nil), wal...)
		mut[p] ^= 1 << (rng.Next() % 8)
		img := cloneDirWithWAL(t, dir, mut)
		expectState(t, img, modelAfter(ops, prefixFor(int64(p))), "bitflip")
	}
}

// TestTortureRecoveredStoreIsWritable: after recovering from a mid-record
// cut, the reopened engine must truncate the torn bytes before appending —
// otherwise its own new records would sit beyond garbage and be lost to
// the *next* recovery.
func TestTortureRecoveredStoreIsWritable(t *testing.T) {
	dir := t.TempDir()
	s := openTestKV(t, dir, 1, SyncNone)
	for k := uint64(0); k < 16; k++ {
		s.Put(k, EncodeValue(k))
	}
	st, err := os.Stat(s.walPath(0))
	if err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(s.walPath(0))
	if err != nil {
		t.Fatal(err)
	}
	recSize := st.Size() / 16
	img := cloneDirWithWAL(t, dir, wal[:st.Size()-recSize/2]) // mid-record cut
	r, err := OpenSharded(img, 1, mkStd, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	r.Put(100, []byte("appended-after-recovery"))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenSharded(img, 1, mkStd, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if v, ok := r2.Get(100); !ok || string(v) != "appended-after-recovery" {
		t.Fatalf("record appended after a torn-tail recovery was lost: %q, %v", v, ok)
	}
	if n := len(r2.Snapshot()); n != 16 { // 15 survivors + the appended key
		t.Fatalf("recovered %d keys, want 16", n)
	}
}

// TestTortureMultiShardNeverCorrupts cuts every shard's log independently
// at random offsets: whatever survives must be values that were actually
// written — a recovered store may be behind, never wrong.
func TestTortureMultiShardNeverCorrupts(t *testing.T) {
	trials := 8
	nOps := 300
	if testing.Short() {
		trials, nOps = 3, 100
	}
	dir := t.TempDir()
	s := openTestKV(t, dir, 8, SyncNone)
	rng := xrand.NewXorShift64(0xC0FFEE)
	history := map[uint64]map[string]bool{}
	record := func(k uint64, v []byte) {
		if history[k] == nil {
			history[k] = map[string]bool{}
		}
		history[k][string(v)] = true
	}
	for i := 0; i < nOps; i++ {
		k := rng.Next() % 256
		switch rng.Intn(8) {
		case 0:
			s.Delete(k)
		case 1:
			keys := make([]uint64, 8)
			vals := make([][]byte, 8)
			for j := range keys {
				keys[j] = rng.Next() % 256
				vals[j] = EncodeValue(rng.Next())
				record(keys[j], vals[j])
			}
			s.MultiPut(keys, vals)
		default:
			v := EncodeValue(rng.Next())
			s.Put(k, v)
			record(k, v)
		}
	}
	// No Close. Capture all shard logs and the manifest.
	man, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	wals := make([][]byte, 8)
	for i := range wals {
		if wals[i], err = os.ReadFile(s.walPath(i)); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < trials; trial++ {
		img := t.TempDir()
		if err := os.WriteFile(filepath.Join(img, manifestName), man, 0o644); err != nil {
			t.Fatal(err)
		}
		for i, wal := range wals {
			cut := rng.Next() % uint64(len(wal)+1)
			name := filepath.Join(img, filepath.Base(s.walPath(i)))
			if err := os.WriteFile(name, wal[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
		}
		r, err := OpenSharded(img, 8, mkStd, SyncNone)
		if err != nil {
			t.Fatalf("trial %d: reopen: %v", trial, err)
		}
		r.Range(func(k uint64, v []byte) bool {
			if !history[k][string(v)] {
				t.Errorf("trial %d: key %d recovered value %x that was never written", trial, k, v)
			}
			return true
		})
		r.Close()
	}
}
