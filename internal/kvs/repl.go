package kvs

// The replication surface of the engine: everything internal/repl needs to
// ship a primary's WAL to read-only followers, kept here because it is
// intimate with the log's framing and file layout.
//
// Primary side: ReplRead returns a chunk of raw, already-CRC-framed
// records from one shard's log files, resuming at a cursor's LSN — the
// bytes go onto the wire verbatim, so the stream format IS the WAL record
// format (v2, LSN-stamped). When the wanted LSN has been checkpointed away
// it returns ErrReplSnapshotNeeded and the caller sends ReplSnapshotFrame
// instead: the shard's full state as one version-3 record at its LSN, the
// same framing, so a follower bootstraps and resumes through one decoder.
//
// The read side is lockless against writers: it reads the log files
// through its own descriptors, never touches the WAL mutex, and NEVER
// reports what it sees as engine corruption — a replication reader racing
// the appender routinely observes a torn tail (length header before
// payload, payload before CRC), which is in-flight data, not damage. Those
// reads stop cleanly at the torn frame and resume on the next call;
// shardWAL.setErr is reserved for the appender's own write/sync failures.
// Rotation is detected with the WAL's generation seqlock (odd while a
// checkpoint swaps files, even when stable): a read bracketed by the same
// even gen overlapped no rotation, anything else retries, and any
// inconsistency the bracket misses is caught by the per-record LSN check
// and repaired with a rescan.
//
// Follower side: DecodeReplFrame parses one stream frame (tolerating
// partial buffers, rejecting corrupt ones without panicking), and
// ApplyReplRecord applies a decoded record to a volatile engine through
// the ordinary shard write path — the follower's read fast paths are the
// same BRAVO-biased paths the primary serves with.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/frame"
)

// ReplOp identifies a replicated entry's operation.
type ReplOp byte

// Replicated entry operations, matching the WAL entry ops.
const (
	ReplPut    ReplOp = walOpPut
	ReplPutTTL ReplOp = walOpPutTTL
	ReplDelete ReplOp = walOpDelete
)

// ReplEntry is one decoded replicated operation.
type ReplEntry struct {
	Op  ReplOp
	Key uint64
	// Remaining is a ReplPutTTL entry's remaining time-to-live in
	// nanoseconds at encode time; the applier re-anchors it on its own
	// clock, so a TTL never fires early because of transit delay.
	Remaining int64
	// Value aliases the decode buffer; ApplyReplRecord copies it under the
	// shard lock, so callers that apply immediately need no copy.
	Value []byte
}

// ReplRecord is one decoded replication frame: a WAL record (one shard
// write batch) or, when Snapshot is set, a full-state snapshot of the
// shard as of LSN — the applier replaces the shard's contents instead of
// applying incrementally. Txn marks a multi-shard transaction witness
// record: Entries then spans every participant shard, and the applier
// keeps only the entries owned by the shard whose stream carried the frame
// (each participant's stream carries its own copy).
type ReplRecord struct {
	LSN      uint64
	Snapshot bool
	Txn      bool
	Entries  []ReplEntry
}

// ErrReplSnapshotNeeded reports that the LSN a replication cursor wants is
// no longer in the shard's log files — a checkpoint truncated it away.
// The caller resyncs the follower with ReplSnapshotFrame.
var ErrReplSnapshotNeeded = errors.New("kvs: requested LSN checkpointed out of the log; resync from a snapshot frame")

// ErrReplCorruptFrame reports stream bytes that can never become a valid
// frame: an insane declared length, a CRC mismatch over a fully-present
// payload, or a malformed payload. A follower reconnects on it.
var ErrReplCorruptFrame = errors.New("kvs: corrupt replication frame")

// DefaultReplChunk bounds the framed bytes one ReplRead returns when the
// caller passes no budget.
const DefaultReplChunk = 1 << 20

// CountReplFrames counts the complete frames at the head of chunk by
// walking the length headers only — no CRC, no payload decode. It is the
// cheap stats companion for chunks ReplRead already validated.
func CountReplFrames(chunk []byte) int {
	n := 0
	for len(chunk) >= walHeaderSize {
		flen := walHeaderSize + int(binary.LittleEndian.Uint32(chunk))
		if flen > len(chunk) {
			break
		}
		chunk = chunk[flen:]
		n++
	}
	return n
}

// DecodeReplFrame decodes the first frame of data. It returns (record,
// bytes consumed, nil) for a complete valid frame; (zero, 0, nil) when
// data is a valid-so-far prefix that needs more bytes; and (zero, 0,
// ErrReplCorruptFrame) when the head of data can never become a valid
// frame. It never panics, whatever the bytes (FuzzReplStream), and entry
// values alias data.
func DecodeReplFrame(data []byte) (ReplRecord, int, error) {
	payload, n, status := splitFrame(data)
	switch status {
	case frameIncomplete:
		return ReplRecord{}, 0, nil
	case frameCorrupt:
		return ReplRecord{}, 0, ErrReplCorruptFrame
	}
	rec, ok := walDecodePayload(payload)
	if !ok {
		return ReplRecord{}, 0, ErrReplCorruptFrame
	}
	out := ReplRecord{
		LSN:      rec.lsn,
		Snapshot: rec.version == walVersionSnap,
		Txn:      rec.version == walVersionTxn,
		Entries:  make([]ReplEntry, len(rec.entries)),
	}
	for i, e := range rec.entries {
		out.Entries[i] = ReplEntry{Op: ReplOp(e.op), Key: e.key, Remaining: e.rem, Value: e.val}
	}
	return out, n, nil
}

// ShardLSN returns the LSN of the last record applied to shard i — the
// commit LSN a writer that just returned can hand out as a
// read-your-writes token, and the position /repl/status reports. Volatile
// engines (no WAL, no LSNs) always return 0.
func (s *Sharded) ShardLSN(i int) uint64 {
	if !s.durable {
		return 0
	}
	return s.shards[i].wal.applied.Load()
}

// ReplLSNs returns every shard's applied LSN (nil for volatile engines).
func (s *Sharded) ReplLSNs() []uint64 {
	if !s.durable {
		return nil
	}
	out := make([]uint64, len(s.shards))
	for i := range s.shards {
		out[i] = s.shards[i].wal.applied.Load()
	}
	return out
}

// ReplCursor is a replication reader's position in one shard's log: Next
// is the LSN it wants next. The unexported fields cache a byte offset into
// the current log file so a tailing reader does not rescan the log on
// every call; they are invalidated by rotation (via the WAL generation
// counter) and by any LSN discontinuity, falling back to a full rescan.
// The zero value (or Next 0) starts from LSN 1.
type ReplCursor struct {
	Next uint64
	gen  uint64
	off  int64
	ok   bool
}

// ReplRead returns the next chunk of framed records from shard's log,
// resuming at cur.Next and advancing cur past what it returns. The bytes
// are verbatim log records (CRC framing included) ready for the wire. An
// empty result with a nil error means the reader is caught up — poll
// again after a beat. ErrReplSnapshotNeeded means cur.Next was truncated
// away by a checkpoint: send ReplSnapshotFrame and resume past its LSN.
// maxBytes bounds the returned chunk (0 means DefaultReplChunk); a single
// record larger than the budget is still returned whole.
//
// ReplRead is safe to call concurrently with writers and checkpoints: it
// takes no engine lock, and a torn tail it races into is "no more data
// yet", never an engine error (see the package note).
func (s *Sharded) ReplRead(shard int, cur *ReplCursor, maxBytes int) ([]byte, error) {
	if !s.durable {
		return nil, errNotDurable
	}
	if shard < 0 || shard >= len(s.shards) {
		return nil, fmt.Errorf("kvs: shard %d out of range [0,%d)", shard, len(s.shards))
	}
	if maxBytes <= 0 {
		maxBytes = DefaultReplChunk
	}
	if cur.Next == 0 {
		cur.Next = 1
	}
	w := s.shards[shard].wal

	// Fast path: same (even) generation as the last call, so the cached
	// offset into the current log file is still meaningful — read forward
	// from it. An odd gen is a rotation in flight: the files are not
	// stable, whatever the cached value says.
	if cur.ok {
		g := w.gen.Load()
		if g != cur.gen || g&1 == 1 {
			cur.ok = false
		} else {
			data, err := readFileFrom(s.walPath(shard), cur.off)
			if err != nil {
				return nil, err
			}
			if w.gen.Load() != g {
				cur.ok = false // rotation raced the read; rescan below
			} else {
				out, consumed, count, clean := collectFrames(data, cur.Next, maxBytes)
				if count > 0 || clean {
					cur.Next += uint64(count)
					cur.off += consumed
					if !clean {
						cur.ok = false
					}
					return out, nil
				}
				// First decodable frame had the wrong LSN: the cached
				// offset lies (e.g. in-place truncation). Rescan.
				cur.ok = false
			}
		}
	}

	// Slow path: scan wal.old + wal from the top, bracketing the lockless
	// reads with the generation seqlock so a concurrent checkpoint's file
	// swap sends us around again instead of into a frankenstein view.
	for attempt := 0; attempt < 8; attempt++ {
		g := w.gen.Load()
		if g&1 == 1 {
			continue // rotation in flight; go around
		}
		appliedBefore := w.applied.Load()
		oldData, err := readFileIfExists(s.walOldPath(shard))
		if err != nil {
			return nil, err
		}
		curData, err := readFileIfExists(s.walPath(shard))
		if err != nil {
			return nil, err
		}
		if w.gen.Load() != g {
			continue
		}
		out, _, nOld, _ := collectFrames(oldData, cur.Next, maxBytes)
		next := cur.Next + uint64(nOld)
		var consumedCur int64
		var nCur int
		var cleanCur bool
		if rem := maxBytes - len(out); nOld == 0 || rem > 0 {
			var more []byte
			more, consumedCur, nCur, cleanCur = collectFrames(curData, next, rem)
			out = append(out, more...)
			next += uint64(nCur)
		}
		if len(out) == 0 && appliedBefore >= cur.Next {
			// The shard committed cur.Next (applied was already past it
			// before we read the files, so the record was fully on disk),
			// yet neither file holds it: a checkpoint truncated it away.
			return nil, ErrReplSnapshotNeeded
		}
		cur.Next = next
		// The cached offset is only valid when we consumed into the
		// current file cleanly and no rotation interleaved.
		if nCur > 0 && cleanCur && w.gen.Load() == g {
			cur.gen, cur.off, cur.ok = g, consumedCur, true
		} else {
			cur.ok = false
		}
		return out, nil
	}
	// Checkpoints kept rotating under us; let the caller come back.
	return nil, nil
}

// collectFrames scans data for the contiguous run of valid frames whose
// LSNs count up from next, returning the run's raw bytes, the offset just
// past it, and the frame count. clean reports that the scan ended for a
// benign reason — end of data, a torn tail, or the byte budget — rather
// than an LSN discontinuity (a legacy v1 frame, which carries no LSN,
// counts as a discontinuity: it predates replication and is only ever
// covered by a snapshot resync). Frames with LSNs below next (already
// consumed: the wal.old replay window a checkpoint leaves behind) are
// skipped, not returned.
func collectFrames(data []byte, next uint64, maxBytes int) (out []byte, consumed int64, count int, clean bool) {
	off := 0
	for {
		payload, n, status := splitFrame(data[off:])
		if status != frameOK {
			return out, consumed, count, true
		}
		rec, ok := walDecodePayload(payload)
		if !ok || rec.version == walVersionSnap {
			return out, consumed, count, true // torn-tail posture: stop, retry later
		}
		if rec.version == walVersion1 {
			// The legacy region: v1 frames carry no LSN, so they are never
			// shippable (a cursor pointed into them resyncs via snapshot),
			// but in an upgraded log they all precede the v2 tail — skip
			// them to reach it. Mid-run they are a discontinuity.
			if count > 0 {
				return out, consumed, count, false
			}
			off += n
			continue
		}
		if rec.lsn > next {
			return out, consumed, count, false
		}
		if rec.lsn == next {
			if count > 0 && len(out)+n > maxBytes {
				return out, consumed, count, true
			}
			out = append(out, data[off:off+n]...)
			next++
			count++
			consumed = int64(off + n)
		}
		off += n
	}
}

// ReplSnapshotFrame encodes shard's full visible state as one framed
// snapshot record at the shard's current LSN: the stream's bootstrap and
// resync frame. It briefly blocks the shard's writers (the WAL mutex
// pins the LSN to the copied state) but never its readers; TTL entries
// are encoded with their remaining time and expired residue is compacted
// away, exactly like a checkpoint snapshot.
func (s *Sharded) ReplSnapshotFrame(shard int) ([]byte, uint64, error) {
	if !s.durable {
		return nil, 0, errNotDurable
	}
	if shard < 0 || shard >= len(s.shards) {
		return nil, 0, fmt.Errorf("kvs: shard %d out of range [0,%d)", shard, len(s.shards))
	}
	sh := &s.shards[shard]
	w := sh.wal
	w.mu.Lock()
	lsn := w.lsn
	tok := sh.lock.RLock()
	now := clock.Nanos()
	buf := make([]byte, walHeaderSize, walHeaderSize+64)
	buf = append(buf, walVersionSnap)
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	countOff := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // patched below
	count := 0
	for k, v := range sh.data {
		d, hasTTL := sh.exp[k]
		if hasTTL && now >= d {
			continue // compaction: expired residue is not shipped
		}
		if hasTTL {
			buf = append(buf, walOpPutTTL)
			buf = binary.LittleEndian.AppendUint64(buf, k)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(d-now))
		} else {
			buf = append(buf, walOpPut)
			buf = binary.LittleEndian.AppendUint64(buf, k)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.length()))
		buf = v.appendTo(buf)
		count++
	}
	sh.lock.RUnlock(tok)
	w.mu.Unlock()
	binary.LittleEndian.PutUint32(buf[countOff:], uint32(count))
	frame.Seal(buf)
	sh.ops.snapshots.Add(1)
	return buf, lsn, nil
}

// ApplyReplRecord applies one decoded replication record to shard through
// the ordinary write path (the same putLocked/deleteLocked every writer
// uses, one shard write-lock acquisition for the whole record — the
// follower inherits the primary's group-commit batching as write
// combining). Snapshot records replace the shard's contents. The engine
// must be volatile: a follower's log of record is its primary's WAL, and
// LSN accounting belongs to the puller that knows the stream position.
func (s *Sharded) ApplyReplRecord(shard int, rec ReplRecord) error {
	if s.durable {
		return errors.New("kvs: replication target must be a volatile engine (the primary's WAL is the log of record)")
	}
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("kvs: shard %d out of range [0,%d)", shard, len(s.shards))
	}
	if rec.Txn {
		// A transaction witness frame carries every participant's entries;
		// this shard's stream delivers it so this shard applies exactly its
		// own (the other participants' streams deliver their copies). The
		// follower shares the primary's shard count — repl targets are built
		// that way, and the MANIFEST pins it on the durable side.
		kept := rec.Entries[:0:0]
		for _, e := range rec.Entries {
			if s.ShardOf(e.Key) == shard {
				kept = append(kept, e)
			}
		}
		rec.Entries = kept
	}
	puts, dels := 0, 0
	for _, e := range rec.Entries {
		switch e.Op {
		case ReplPut, ReplPutTTL:
			puts++
		case ReplDelete:
			dels++
		default:
			return fmt.Errorf("kvs: replicated entry op %d unknown", e.Op)
		}
	}
	sh := &s.shards[shard]
	sh.lock.Lock()
	if rec.Snapshot {
		// Wholesale replacement is a mutation site like any other: it runs
		// inside the wrapped lock's write section, and replaceLocked resets
		// the seq index with the map so optimistic readers never probe a
		// table pointing at discarded cells as current.
		sh.replaceLocked(len(rec.Entries))
	}
	// Totals before rares, as in multiPut: see the Stats load-order note.
	if puts > 0 {
		sh.ops.puts.Add(uint64(puts))
	}
	if dels > 0 {
		sh.ops.deletes.Add(uint64(dels))
	}
	misses, expired := 0, 0
	for _, e := range rec.Entries {
		switch e.Op {
		case ReplPut:
			sh.putCounted(e.Key, e.Value, 0)
		case ReplPutTTL:
			sh.putCounted(e.Key, e.Value, deadlineFromRemaining(e.Remaining))
		case ReplDelete:
			ok, exp := sh.deleteLocked(e.Key)
			if !ok {
				misses++
			}
			if exp {
				expired++
			}
		}
	}
	sh.lock.Unlock()
	if misses > 0 {
		sh.ops.delMisses.Add(uint64(misses))
	}
	if expired > 0 {
		sh.ops.expired.Add(uint64(expired))
	}
	sh.ops.wbatches.Add(1)
	sh.ops.wbatchKeys.Add(uint64(len(rec.Entries)))
	return nil
}

// readFileIfExists reads a whole file, treating absence as emptiness.
func readFileIfExists(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	return data, err
}

// readFileFrom reads a file from offset to EOF, treating absence (and an
// offset at or past EOF) as emptiness.
func readFileFrom(path string, off int64) ([]byte, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return nil, err
	}
	return io.ReadAll(f)
}
