package core

import (
	"github.com/bravolock/bravo/internal/bias"
)

// Stats counts BRAVO path events (see bias.Stats). Collection is optional
// (WithStats); the counters add shared-memory traffic, like lockstat.
type Stats = bias.Stats

// Snapshot is an immutable copy of Stats.
type Snapshot = bias.Snapshot
