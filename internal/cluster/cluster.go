package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/repl"
	"github.com/bravolock/bravo/internal/rwl"
)

// Config sizes a cluster.
type Config struct {
	// Partitions is the primary count: how many ways the keyspace splits.
	Partitions int
	// Shards is each partition engine's shard count (power of two).
	Shards int
	// Followers is each partition's replica count — the failover pool. Zero
	// means no failover capacity (Failover errors).
	Followers int
	// Dir is the root data directory; each primary epoch gets a
	// subdirectory (pNN-eNNNNNN).
	Dir string
	// Policy is every primary's WAL sync policy.
	Policy kvs.SyncPolicy
	// MkLock builds per-shard locks for primaries and followers alike; nil
	// means each engine's own default.
	MkLock rwl.Factory
	// RetryInterval paces follower reconnects; 0 means repl's default.
	RetryInterval time.Duration
}

// Cluster is N hash-routed partitioned primaries, each with its own
// follower set, behind one keyspace. All methods are safe for concurrent
// use; during a partition's failover, operations touching that partition
// block until the promotion completes (the recovery-time-to-first-write
// the bench measures), while other partitions keep serving.
type Cluster struct {
	cfg    Config
	router *Router
	parts  []*partition

	closeOnce sync.Once
	closeErr  error
}

// partition is one slice of the keyspace: the current primary, its
// followers, and the fencing history. mu's write side is held only by
// Failover; every op and token check holds the read side, so a partition
// swap is atomic from the callers' perspective.
type partition struct {
	idx int

	mu         sync.RWMutex
	member     *Member
	followers  []*repl.Follower
	epoch      uint64
	promotions []promotion
	corpses    []*Member
}

// promotion records one epoch bump's surviving-history cut: per local
// shard, the highest LSN of the old epoch that made it into the promoted
// history. Cuts are monotonic per shard across promotions (each new
// primary's log starts at its cut), which is what lets checkTokenLocked
// use the first cut after a token's epoch as the binding one.
type promotion struct {
	epoch uint64
	cut   []uint64
}

// Open builds the cluster: one durable primary per partition (epoch 1),
// each with Followers live replicas streaming from it.
func Open(cfg Config) (*Cluster, error) {
	if cfg.Partitions <= 0 {
		return nil, fmt.Errorf("cluster: %d partitions", cfg.Partitions)
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("cluster: Dir is required (primaries are durable; failover needs their WALs)")
	}
	ids := make([]uint64, cfg.Partitions)
	for i := range ids {
		ids[i] = uint64(i)
	}
	router, err := NewRouter(ids)
	if err != nil {
		return nil, err
	}
	if cfg.MkLock == nil {
		cfg.MkLock = func() rwl.RWLock { return new(stdrw.Lock) }
	}
	c := &Cluster{cfg: cfg, router: router, parts: make([]*partition, cfg.Partitions)}
	for i := range c.parts {
		p := &partition{idx: i, epoch: 1}
		m, err := newMember(i, 1, c.partDir(i, 1), cfg.Shards, cfg.MkLock, cfg.Policy, nil)
		if err != nil {
			c.Close()
			return nil, err
		}
		p.member = m
		p.followers, err = c.openFollowers(m)
		if err != nil {
			m.Close()
			c.Close()
			return nil, err
		}
		c.parts[i] = p
	}
	return c, nil
}

func (c *Cluster) partDir(pi int, epoch uint64) string {
	return filepath.Join(c.cfg.Dir, fmt.Sprintf("p%02d-e%06d", pi, epoch))
}

func (c *Cluster) openFollowers(m *Member) ([]*repl.Follower, error) {
	fs := make([]*repl.Follower, 0, c.cfg.Followers)
	for i := 0; i < c.cfg.Followers; i++ {
		f, err := repl.Open(repl.Config{
			Primary:       m.URL(),
			MkLock:        c.cfg.MkLock,
			RetryInterval: c.cfg.RetryInterval,
		})
		if err != nil {
			for _, g := range fs {
				g.Close()
			}
			return nil, fmt.Errorf("cluster: partition %d follower %d: %w", m.partition, i, err)
		}
		fs = append(fs, f)
	}
	return fs, nil
}

// NumPartitions returns the primary count.
func (c *Cluster) NumPartitions() int { return c.cfg.Partitions }

// ShardsPerPartition returns each partition engine's shard count.
func (c *Cluster) ShardsPerPartition() int { return c.cfg.Shards }

// Partition returns the partition owning key.
func (c *Cluster) Partition(key uint64) int { return c.router.Partition(key) }

// Router returns the cluster's key router.
func (c *Cluster) Router() *Router { return c.router }

// Epoch returns partition pi's current fencing epoch.
func (c *Cluster) Epoch(pi int) uint64 {
	p := c.parts[pi]
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.epoch
}

// Member returns partition pi's current primary — chaos tests hold it to
// fence "the process" out from under the cluster and hammer the corpse.
func (c *Cluster) Member(pi int) *Member {
	p := c.parts[pi]
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.member
}

// Followers returns partition pi's current follower set.
func (c *Cluster) Followers(pi int) []*repl.Follower {
	p := c.parts[pi]
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]*repl.Follower(nil), p.followers...)
}

// globalShard widens a partition-local shard to the cluster-wide token
// namespace.
func (c *Cluster) globalShard(pi, shard int) uint32 {
	return uint32(pi*c.cfg.Shards + shard)
}

// SplitGlobalShard inverts globalShard: the partition and local shard a
// token's Shard names. ok is false when the shard is out of range.
func (c *Cluster) SplitGlobalShard(g uint32) (pi, shard int, ok bool) {
	pi, shard = int(g)/c.cfg.Shards, int(g)%c.cfg.Shards
	return pi, shard, pi < c.cfg.Partitions
}

// Get reads key through the owning partition's primary, appending into buf
// like kvs.GetIntoH.
func (c *Cluster) Get(h *rwl.Reader, key uint64, buf []byte) ([]byte, bool) {
	p := c.parts[c.router.Partition(key)]
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.member.engine.GetIntoH(h, key, buf)
}

// MultiGet fans a batch out per partition — each partition's group is one
// engine call, riding the shard-grouping pass — and scatters the values
// back in key order (nil marks absent).
func (c *Cluster) MultiGet(h *rwl.Reader, keys []uint64) [][]byte {
	out := make([][]byte, len(keys))
	groups := c.router.Split(keys)
	sub := make([]uint64, 0, len(keys))
	for pi, group := range groups {
		if len(group) == 0 {
			continue
		}
		sub = sub[:0]
		for _, i := range group {
			sub = append(sub, keys[i])
		}
		p := c.parts[pi]
		p.mu.RLock()
		vals := p.member.engine.MultiGetH(h, sub)
		p.mu.RUnlock()
		for j, i := range group {
			out[i] = vals[j]
		}
	}
	return out
}

// Put writes key through its partition's primary and returns the
// read-your-writes token.
func (c *Cluster) Put(key uint64, value []byte, ttl time.Duration) (ShardLSN, error) {
	pi := c.router.Partition(key)
	p := c.parts[pi]
	p.mu.RLock()
	defer p.mu.RUnlock()
	shard, lsn, err := p.member.Put(key, value, ttl)
	if err != nil {
		return ShardLSN{}, err
	}
	return ShardLSN{Shard: c.globalShard(pi, shard), LSN: lsn, Epoch: p.epoch}, nil
}

// PutAsync enqueues key on its partition's shard write queue; no token.
func (c *Cluster) PutAsync(key uint64, value []byte) error {
	p := c.parts[c.router.Partition(key)]
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.member.PutAsync(key, value)
}

// Delete removes key, reporting presence plus the token (deletes are
// logged even on a miss).
func (c *Cluster) Delete(key uint64) (bool, ShardLSN, error) {
	pi := c.router.Partition(key)
	p := c.parts[pi]
	p.mu.RLock()
	defer p.mu.RUnlock()
	ok, shard, lsn, err := p.member.Delete(key)
	if err != nil {
		return false, ShardLSN{}, err
	}
	return ok, ShardLSN{Shard: c.globalShard(pi, shard), LSN: lsn, Epoch: p.epoch}, nil
}

// ErrCrossPartitionTxn rejects a transaction whose keys hash to more than
// one partition. Transactions are shard-ordered two-phase locking inside
// one engine; partitions are independent failure domains with independent
// fencing epochs, and a cross-partition commit would need a distributed
// protocol the cluster deliberately does not have. Callers co-locate
// transactional keys (the router is stable, so a key set that routes
// together keeps routing together) or split the work.
var ErrCrossPartitionTxn = errors.New("cluster: transaction keys span multiple partitions (transactions are single-partition)")

// Cas runs a compare-and-swap on key's partition, returning whether it
// swapped plus the commit token.
func (c *Cluster) Cas(key uint64, old, new []byte) (bool, ShardLSN, error) {
	pi := c.router.Partition(key)
	p := c.parts[pi]
	p.mu.RLock()
	defer p.mu.RUnlock()
	swapped, shard, lsn, err := p.member.Cas(key, old, new)
	if err != nil {
		return false, ShardLSN{}, err
	}
	return swapped, ShardLSN{Shard: c.globalShard(pi, shard), LSN: lsn, Epoch: p.epoch}, nil
}

// Txn runs fn as a bounded multi-key transaction on the partition owning
// every key, returning the declared shards' commit tokens. Key sets that
// span partitions are rejected with ErrCrossPartitionTxn before any lock
// is taken.
func (c *Cluster) Txn(keys []uint64, fn func(*kvs.Tx) error) ([]ShardLSN, error) {
	if len(keys) == 0 {
		// Let the engine surface its own typed validation error.
		return nil, c.parts[0].member.engine.Txn(keys, fn)
	}
	pi := c.router.Partition(keys[0])
	for _, k := range keys[1:] {
		if other := c.router.Partition(k); other != pi {
			return nil, fmt.Errorf("%w: key %d routes to partition %d, key %d to %d",
				ErrCrossPartitionTxn, keys[0], pi, k, other)
		}
	}
	p := c.parts[pi]
	p.mu.RLock()
	defer p.mu.RUnlock()
	lsns, err := p.member.Txn(keys, fn, nil)
	if err != nil {
		return nil, err
	}
	for i := range lsns {
		lsns[i].Shard = c.globalShard(pi, int(lsns[i].Shard))
	}
	return lsns, nil
}

// MultiPut fans a batch out per partition (one engine call each) and
// returns the commit token of every global shard the batch touched. On a
// mid-batch fencing error the tokens already earned are returned alongside
// it: partitions are independent failure domains and the applied groups
// stay applied.
func (c *Cluster) MultiPut(keys []uint64, values [][]byte, ttl time.Duration) ([]ShardLSN, error) {
	var lsns []ShardLSN
	var firstErr error
	groups := c.router.Split(keys)
	subK := make([]uint64, 0, len(keys))
	subV := make([][]byte, 0, len(values))
	for pi, group := range groups {
		if len(group) == 0 {
			continue
		}
		subK, subV = subK[:0], subV[:0]
		for _, i := range group {
			subK = append(subK, keys[i])
			subV = append(subV, values[i])
		}
		base := len(lsns)
		p := c.parts[pi]
		p.mu.RLock()
		out, err := p.member.MultiPut(subK, subV, ttl, lsns)
		epoch := p.epoch
		p.mu.RUnlock()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: partition %d: %w", pi, err)
			}
			continue
		}
		lsns = out
		for i := base; i < len(lsns); i++ {
			lsns[i].Shard = c.globalShard(pi, int(lsns[i].Shard))
			lsns[i].Epoch = epoch
		}
	}
	return lsns, firstErr
}

// MultiDelete is MultiPut's removal twin: the removed count plus tokens.
func (c *Cluster) MultiDelete(keys []uint64) (int, []ShardLSN, error) {
	var lsns []ShardLSN
	var removed int
	var firstErr error
	groups := c.router.Split(keys)
	sub := make([]uint64, 0, len(keys))
	for pi, group := range groups {
		if len(group) == 0 {
			continue
		}
		sub = sub[:0]
		for _, i := range group {
			sub = append(sub, keys[i])
		}
		base := len(lsns)
		p := c.parts[pi]
		p.mu.RLock()
		n, out, err := p.member.MultiDelete(sub, lsns)
		epoch := p.epoch
		p.mu.RUnlock()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: partition %d: %w", pi, err)
			}
			continue
		}
		removed += n
		lsns = out
		for i := base; i < len(lsns); i++ {
			lsns[i].Shard = c.globalShard(pi, int(lsns[i].Shard))
			lsns[i].Epoch = epoch
		}
	}
	return removed, lsns, firstErr
}

// Flush applies every partition's queued async writes.
func (c *Cluster) Flush() int {
	total := 0
	for _, p := range c.parts {
		p.mu.RLock()
		n, err := p.member.Flush()
		p.mu.RUnlock()
		if err == nil {
			total += n
		}
	}
	return total
}

// Reap runs one bounded TTL sweep on every partition's primary.
func (c *Cluster) Reap(budget int) int {
	total := 0
	for _, p := range c.parts {
		p.mu.RLock()
		n, err := p.member.Reap(budget)
		p.mu.RUnlock()
		if err == nil {
			total += n
		}
	}
	return total
}

// Checkpoint snapshots every partition's primary and truncates its WALs.
func (c *Cluster) Checkpoint() error {
	for _, p := range c.parts {
		p.mu.RLock()
		err := p.member.engine.Checkpoint()
		p.mu.RUnlock()
		if err != nil {
			return fmt.Errorf("cluster: partition %d: %w", p.idx, err)
		}
	}
	return nil
}

// WaitCaughtUp blocks until every follower of every partition has applied
// its primary's current LSNs — the quiescence barrier graceful failover
// tests use for a zero-loss cut.
func (c *Cluster) WaitCaughtUp(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, p := range c.parts {
		p.mu.RLock()
		fs := append([]*repl.Follower(nil), p.followers...)
		p.mu.RUnlock()
		for _, f := range fs {
			if err := f.WaitCaughtUp(time.Until(deadline)); err != nil {
				return fmt.Errorf("cluster: partition %d: %w", p.idx, err)
			}
		}
	}
	return nil
}

// Close shuts the whole cluster down: followers, primaries, and the
// fenced corpses failovers left behind.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		for _, p := range c.parts {
			if p == nil {
				continue
			}
			p.mu.Lock()
			for _, f := range p.followers {
				f.Close()
			}
			if p.member != nil {
				if err := p.member.Close(); err != nil && c.closeErr == nil {
					c.closeErr = err
				}
			}
			for _, corpse := range p.corpses {
				corpse.Close()
			}
			p.mu.Unlock()
		}
	})
	return c.closeErr
}

// RemoveData deletes the cluster's data directory tree; call after Close
// in tests and benches that do not keep state.
func (c *Cluster) RemoveData() error { return os.RemoveAll(c.cfg.Dir) }
