package kvs

// Failover promotion support: turning a caught-up replica's volatile state
// into a fresh primary's durable directory without logging a single new
// record. The trick is to lie truthfully about history — write the state
// as if it were a checkpoint: MANIFEST plus one snapshot file per shard,
// each stamped with the LSN the replica had applied. Recovery then loads
// the snapshots and continues each shard's log from exactly that LSN, so
// the promoted primary's first record is cut+1 and every read-your-writes
// token issued before the failover stays comparable against its log.

import (
	"fmt"
	"os"
	"path/filepath"
)

// SeedSnapshotDir materializes src's current state into dir as a freshly
// checkpointed durable layout: MANIFEST plus a snapshot of every shard,
// shard i's snapshot stamped lsns[i], and no WAL. OpenSharded (or
// NewSharded with WithDurability) on dir then recovers exactly src's state
// with each shard's log continuing from its stamp. dir must not already
// hold an engine; src is typically a replication follower's volatile
// engine and lsns its applied positions — the failover cut.
func SeedSnapshotDir(dir string, src *Sharded, lsns []uint64) error {
	if len(lsns) != len(src.shards) {
		return fmt.Errorf("kvs: seeding %d LSNs for %d shards", len(lsns), len(src.shards))
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return fmt.Errorf("kvs: %s already holds an engine", dir)
	} else if !os.IsNotExist(err) {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeManifest(dir, len(src.shards)); err != nil {
		return err
	}
	for i := range src.shards {
		sh := &src.shards[i]
		// The checkpoint copy, minus the WAL rotation volatile engines do
		// not have: the shard's ordinary read lock makes the copy safe
		// against in-place value updates; a quiesced replica (pullers
		// stopped) makes the LSN stamp exact.
		tok := sh.lock.RLock()
		data := make(map[uint64][]byte, len(sh.data))
		for k, v := range sh.data {
			data[k] = v.bytes()
		}
		var exp ttlMap
		if len(sh.exp) > 0 {
			exp = make(ttlMap, len(sh.exp))
			for k, d := range sh.exp {
				exp[k] = d
			}
		}
		sh.lock.RUnlock(tok)
		path := filepath.Join(dir, fmt.Sprintf("shard-%04d.snap", i))
		if err := writeSnapshotFile(path, data, exp, lsns[i]); err != nil {
			return fmt.Errorf("kvs: seeding shard %d: %w", i, err)
		}
	}
	return syncDir(dir)
}
