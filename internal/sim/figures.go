package sim

import (
	"github.com/bravolock/bravo/internal/topo"
)

// Point is one (threads, throughput) sample; Value is operations per second
// of virtual time unless a figure documents otherwise.
type Point struct {
	Threads int
	Value   float64
}

// Series maps a lock name to its curve.
type Series map[string][]Point

// UserSpaceThreadCounts is the paper's user-space X axis (§5, Figures 2–6).
var UserSpaceThreadCounts = []int{1, 2, 5, 10, 20, 50}

// KernelThreadCounts is the paper's kernel X axis (§6, Figure 9, Tables).
var KernelThreadCounts = []int{1, 2, 4, 8, 16, 32, 72, 108, 142}

// lockCtor builds a fresh simulated lock on a fresh machine per data point.
type lockCtor func(m *Machine) RWLock

func userSpaceLocks() map[string]lockCtor {
	return map[string]lockCtor{
		"BA":            func(m *Machine) RWLock { return NewCentral(m) },
		"BRAVO-BA":      func(m *Machine) RWLock { return NewBravo(m, NewCentral(m), NewTable(m, 4096)) },
		"pthread":       func(m *Machine) RWLock { return NewBlockingCentral(m) },
		"BRAVO-pthread": func(m *Machine) RWLock { return NewBravo(m, NewBlockingCentral(m), NewTable(m, 4096)) },
		"Per-CPU":       func(m *Machine) RWLock { return NewPerCPU(m) },
		"Cohort-RW":     func(m *Machine) RWLock { return NewCohort(m) },
	}
}

func newUserMachine() *Machine   { return NewMachine(topo.X52, DefaultCosts()) }
func newKernelMachine() *Machine { return NewMachine(topo.X54, DefaultCosts()) }

// horizonNs is the simulated measurement interval. Virtual time is cheap;
// 50ms of virtual time gives stable rates for every workload here.
const horizonNs = 50e6

// lockedLoop drives the canonical benchmark loop — acquire, critical
// section, release, non-critical section — with acquire and release as
// separate engine events so concurrent threads interleave on lock state.
type lockedLoop struct {
	l RWLock
	// decide returns the next iteration's operation: write?, critical
	// section ns, non-critical section ns.
	decide func(th *Thread) (bool, float64, float64)

	inCS  []bool
	write []bool
	ncs   []float64
}

func newLockedLoop(nthreads int, l RWLock, decide func(th *Thread) (bool, float64, float64)) *lockedLoop {
	return &lockedLoop{
		l:      l,
		decide: decide,
		inCS:   make([]bool, nthreads),
		write:  make([]bool, nthreads),
		ncs:    make([]float64, nthreads),
	}
}

func (ll *lockedLoop) body(th *Thread) bool {
	if !ll.inCS[th.ID] {
		w, cs, ncs := ll.decide(th)
		ll.write[th.ID] = w
		ll.ncs[th.ID] = ncs
		var t float64
		if w {
			t = ll.l.AcquireWrite(th, th.Clk, cs)
		} else {
			t = ll.l.AcquireRead(th, th.Clk, cs)
		}
		th.Clk = t + cs
		ll.inCS[th.ID] = true
		return false
	}
	var t float64
	if ll.write[th.ID] {
		t = ll.l.ReleaseWrite(th, th.Clk)
	} else {
		t = ll.l.ReleaseRead(th, th.Clk)
	}
	th.Clk = t + ll.ncs[th.ID]
	ll.inCS[th.ID] = false
	return true
}

// Figure1Interference reproduces §5.1: 64 threads, a pool of nlocks
// BRAVO-BA locks sharing one 4096-slot table, read-only critical sections
// of 20 RNG steps and non-critical sections of 100 steps. It returns, for
// each pool size, the throughput fraction relative to an idealized variant
// giving each lock a private table.
func Figure1Interference(poolSizes []int) []Point {
	out := make([]Point, 0, len(poolSizes))
	for _, n := range poolSizes {
		shared := interferenceRun(n, true)
		private := interferenceRun(n, false)
		out = append(out, Point{Threads: n, Value: shared / private})
	}
	return out
}

func interferenceRun(nlocks int, sharedTable bool) float64 {
	m := newUserMachine()
	var table *Table
	if sharedTable {
		table = NewTable(m, 4096)
	}
	locks := make([]RWLock, nlocks)
	for i := range locks {
		tab := table
		if tab == nil {
			tab = NewTable(m, 4096)
		}
		locks[i] = NewBravo(m, NewCentral(m), tab)
	}
	threads := NewThreads(64, 1234, nil)
	held := make([]RWLock, len(threads))
	for _, th := range threads {
		th.body = func(th *Thread) bool {
			if held[th.ID] == nil {
				l := locks[th.Rng.Intn(uint64(nlocks))]
				cs := 20 * m.Cost.WorkUnitNs
				th.Clk = l.AcquireRead(th, th.Clk, cs) + cs
				held[th.ID] = l
				return false
			}
			t := held[th.ID].ReleaseRead(th, th.Clk)
			held[th.ID] = nil
			th.Clk = m.Work(t, 100)
			return true
		}
	}
	ops := Run(threads, horizonNs)
	return float64(ops)
}

// Figure2Alternator reproduces §5.2: threads in a notification ring, each
// performing one read acquire/release per step; at most one reader active
// at any moment. Reported value: steps per second of virtual time.
func Figure2Alternator(threadCounts []int) Series {
	out := Series{}
	for name, ctor := range userSpaceLocks() {
		var pts []Point
		for _, tc := range threadCounts {
			m := newUserMachine()
			l := ctor(m)
			flags := m.NewLines(tc) // per-thread notification words
			// The ring is strictly sequential: simulate it directly.
			threads := NewThreads(tc, 99, nil)
			t, steps := 0.0, 0
			for t < horizonNs {
				th := threads[steps%tc]
				// One handoff: consume our notification (the spin-wait load
				// pulls the flag line our left sibling just wrote), perform
				// one read acquire/release, and notify the right sibling.
				t = m.Load(th.CPU, flags[th.ID], t)
				t = l.AcquireRead(th, t, 0)
				t = l.ReleaseRead(th, t)
				t = m.Store(th.CPU, flags[(th.ID+1)%tc], t)
				steps++
			}
			pts = append(pts, Point{Threads: tc, Value: float64(steps) / (horizonNs / 1e9)})
		}
		out[name] = pts
	}
	return out
}

// Figure3TestRWLock reproduces §5.3 (test_rwlock, Desnoyers et al.): one
// fixed-role writer (10-unit CS, 1000-unit NCS) and T reader threads
// (10-unit CS, no NCS). Value: aggregate ops/sec.
func Figure3TestRWLock(threadCounts []int) Series {
	out := Series{}
	for name, ctor := range userSpaceLocks() {
		var pts []Point
		for _, tc := range threadCounts {
			m := newUserMachine()
			l := ctor(m)
			threads := NewThreads(tc+1, 77, nil)
			writer := threads[tc]
			writer.CPU = m.Top.NumCPUs() - 1 // keep the writer off reader CPUs
			ll := newLockedLoop(tc+1, l, func(th *Thread) (bool, float64, float64) {
				if th.ID == tc {
					return true, 10 * m.Cost.WorkUnitNs, 1000 * m.Cost.WorkUnitNs
				}
				return false, 10 * m.Cost.WorkUnitNs, 0
			})
			for _, th := range threads {
				th.body = ll.body
			}
			ops := Run(threads, horizonNs)
			pts = append(pts, Point{Threads: tc, Value: float64(ops) / (horizonNs / 1e9)})
		}
		out[name] = pts
	}
	return out
}

// Figure4RWBench reproduces §5.4 (RWBench, Calciu et al.): T threads, write
// probability writeProb (0.9, 0.5, 0.1, 0.01, 0.001, 0.0001), critical
// sections of 10 mt19937 steps, non-critical sections uniform in [0, 200)
// steps. Value: aggregate top-level loops/sec.
func Figure4RWBench(threadCounts []int, writeProb float64) Series {
	out := Series{}
	// Quantize the Bernoulli trial on a 1e6 grid so small probabilities
	// (1/10000) and large ones (9/10) are both represented exactly.
	threshold := uint64(writeProb * 1e6)
	for name, ctor := range userSpaceLocks() {
		var pts []Point
		for _, tc := range threadCounts {
			m := newUserMachine()
			l := ctor(m)
			threads := NewThreads(tc, 4242, nil)
			ll := newLockedLoop(tc, l, func(th *Thread) (bool, float64, float64) {
				w := th.Rng.Next()%1e6 < threshold
				return w, 10 * m.Cost.WorkUnitNs, float64(th.Rng.Intn(200)) * m.Cost.WorkUnitNs
			})
			for _, th := range threads {
				th.body = ll.body
			}
			ops := Run(threads, horizonNs)
			pts = append(pts, Point{Threads: tc, Value: float64(ops) / (horizonNs / 1e9)})
		}
		out[name] = pts
	}
	return out
}

// Figure5ReadWhileWriting reproduces the §5.5 rocksdb profile: one writer
// performing in-place updates back-to-back and T readers doing Get calls
// against the single memtable GetLock. Critical sections reflect rocksdb
// lookup/update costs (≈150/250 work units).
func Figure5ReadWhileWriting(threadCounts []int) Series {
	return readMostlyServerFigure(threadCounts, 1, 150, 250)
}

// Figure6HashTable reproduces the §5.6 rocksdb hash_table_bench profile:
// one inserter and one eraser running back-to-back against T readers on a
// single lock-protected hash table (≈100/200 work-unit sections).
func Figure6HashTable(threadCounts []int) Series {
	return readMostlyServerFigure(threadCounts, 2, 100, 200)
}

func readMostlyServerFigure(threadCounts []int, writers int, readCS, writeCS float64) Series {
	out := Series{}
	for name, ctor := range userSpaceLocks() {
		var pts []Point
		for _, tc := range threadCounts {
			m := newUserMachine()
			l := ctor(m)
			threads := NewThreads(tc+writers, 5150, nil)
			for i := 0; i < writers; i++ {
				threads[tc+i].CPU = m.Top.NumCPUs() - 1 - i
			}
			ll := newLockedLoop(tc+writers, l, func(th *Thread) (bool, float64, float64) {
				if th.ID >= tc {
					return true, writeCS * m.Cost.WorkUnitNs, 0
				}
				return false, readCS * m.Cost.WorkUnitNs, 0
			})
			for _, th := range threads {
				th.body = ll.body
			}
			Run(threads, horizonNs)
			var readerOps uint64
			for _, th := range threads[:tc] {
				readerOps += th.Ops
			}
			pts = append(pts, Point{Threads: tc, Value: float64(readerOps) / (horizonNs / 1e9)})
		}
		out[name] = pts
	}
	return out
}

// kernelLocks are the two §6 contenders: stock rwsem (readers write the
// owner field) and BRAVO-rwsem (fast-path readers plus the §4 owner-write
// fix on the underlying semaphore).
func kernelLocks() map[string]lockCtor {
	return map[string]lockCtor{
		"stock": func(m *Machine) RWLock { return NewRWSem(m, true) },
		"BRAVO": func(m *Machine) RWLock { return NewBravo(m, NewRWSem(m, false), NewTable(m, 4096)) },
	}
}

// Figure7Locktorture reproduces §6.1 with 1 writer: T readers holding the
// rwsem ≈50ms(!) and one writer holding ≈10ms. Value: acquisitions in a 30s
// (virtual) interval, reads and writes reported separately. Long critical
// sections mask indicator contention — both kernels scale on reads — while
// BRAVO's writes drop because every write acquisition revokes against 50ms
// readers.
func Figure7Locktorture(threadCounts []int) (reads, writes Series) {
	reads, writes = Series{}, Series{}
	const interval = 30e9
	for name, ctor := range kernelLocks() {
		var rpts, wpts []Point
		for _, tc := range threadCounts {
			m := newKernelMachine()
			l := ctor(m)
			threads := NewThreads(tc+1, 3131, nil)
			w := threads[tc]
			w.CPU = m.Top.NumCPUs() - 1
			ll := newLockedLoop(tc+1, l, func(th *Thread) (bool, float64, float64) {
				if th.ID == tc {
					return true, 10e6, 0 // 10ms write CS
				}
				return false, 50e6, 0 // 50ms read CS
			})
			for _, th := range threads {
				th.body = ll.body
			}
			Run(threads, interval)
			var readOps uint64
			for _, th := range threads[:tc] {
				readOps += th.Ops
			}
			rpts = append(rpts, Point{Threads: tc, Value: float64(readOps)})
			wpts = append(wpts, Point{Threads: tc, Value: float64(w.Ops)})
		}
		reads[name] = rpts
		writes[name] = wpts
	}
	return reads, writes
}

// Figure8Locktorture reproduces §6.1 with 0 writers: (a) the original 50ms
// read CS, where both kernels scale linearly, and (b) the modified 5µs CS,
// where the stock counter saturates and BRAVO keeps scaling.
func Figure8Locktorture(threadCounts []int, readCSNanos float64) Series {
	out := Series{}
	// The paper's interval is 30s. For microsecond-scale critical sections
	// that would mean hundreds of millions of simulated events, so we
	// simulate a stationary window of at least 1000 critical sections and
	// extrapolate the 30s count.
	interval := maxf(1000*readCSNanos, 50e6)
	if interval > 30e9 {
		interval = 30e9
	}
	scale := 30e9 / interval
	for name, ctor := range kernelLocks() {
		var pts []Point
		for _, tc := range threadCounts {
			m := newKernelMachine()
			l := ctor(m)
			threads := NewThreads(tc, 888, nil)
			ll := newLockedLoop(tc, l, func(th *Thread) (bool, float64, float64) {
				return false, readCSNanos, 0
			})
			for _, th := range threads {
				th.body = ll.body
			}
			ops := Run(threads, interval)
			pts = append(pts, Point{Threads: tc, Value: float64(ops) * scale})
		}
		out[name] = pts
	}
	return out
}

// Figure9WillItScale reproduces §6.2. page_fault iterations mmap a 128MB
// region (write), touch every page (32768 read acquisitions plus fault
// service work), and munmap (write); mmap iterations only map and unmap.
// Each engine step is a single semaphore operation so that concurrent
// threads interleave on the counter line exactly as the kernel threads do.
// Value: mmap_sem read acquisitions/sec for the page_fault flavours, and
// map+unmap pairs/sec for the mmap flavours. The test argument selects
// "page_fault1", "page_fault2" (shared mapping: an extra shared-line write
// per fault), "mmap1" or "mmap2".
func Figure9WillItScale(threadCounts []int, test string) Series {
	out := Series{}
	const (
		pages     = 32768 // 128M / 4K
		faultWork = 900.0 // ns to service one minor fault
		mmapWork  = 2500.0
	)
	pageFault := test == "page_fault1" || test == "page_fault2"
	for name, ctor := range kernelLocks() {
		var pts []Point
		for _, tc := range threadCounts {
			m := newKernelMachine()
			l := ctor(m)
			// Fault service takes the page allocator's zone/LRU locks — the
			// second-order bottleneck the paper cites ([11]: "The LRU lock
			// and mmap_sem") that bounds BRAVO's win on page_fault to tens
			// of percent rather than orders of magnitude.
			zoneLine := m.NewLine()
			var sharedLine LineID
			if test == "page_fault2" {
				sharedLine = m.NewLine()
			}
			threads := NewThreads(tc, 246, nil)
			faultsLeft := make([]int, tc)
			inCS := make([]bool, tc)
			for _, th := range threads {
				th.body = func(th *Thread) bool {
					t := th.Clk
					switch {
					case inCS[th.ID]:
						// Complete the in-flight fault: allocator/LRU lock,
						// then the optional shared-mapping write, then
						// release mmap_sem.
						t = m.RMW(th.CPU, zoneLine, t)
						if test == "page_fault2" {
							t = m.RMW(th.CPU, sharedLine, t)
						}
						th.Clk = l.ReleaseRead(th, t)
						inCS[th.ID] = false
						faultsLeft[th.ID]--
						return true
					case pageFault && faultsLeft[th.ID] > 0:
						th.Clk = l.AcquireRead(th, t, faultWork) + faultWork
						inCS[th.ID] = true
						return false
					default:
						// Remap: munmap + mmap under write locks.
						t = l.AcquireWrite(th, t, mmapWork)
						t = l.ReleaseWrite(th, t+mmapWork)
						t = l.AcquireWrite(th, t, mmapWork)
						t = l.ReleaseWrite(th, t+mmapWork)
						if pageFault {
							faultsLeft[th.ID] = pages
						} else if test == "mmap2" {
							// mmap2 touches the first page before unmapping.
							t = l.AcquireRead(th, t, faultWork)
							t = l.ReleaseRead(th, t+faultWork)
						}
						th.Clk = t
						return !pageFault
					}
				}
			}
			ops := Run(threads, 50e6)
			pts = append(pts, Point{Threads: tc, Value: float64(ops) / 0.05})
		}
		out[name] = pts
	}
	return out
}
