package repl

// Chaos certification of the stream: connections killed at every record
// boundary and at arbitrary mid-frame offsets, followers paused/resumed
// and fully restarted, the primary restarted (with recovery and forced
// checkpoint rotation) under an active follower. The invariant throughout
// is the LSN oracle: every applied record continues its shard's sequence
// by exactly one or is a snapshot jump — no lost, duplicated, or
// reordered record — and every scenario ends converged with the primary.

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/xrand"
)

// streamCutter wraps the primary handler and kills each /repl/stream
// response after a byte budget drawn from its schedule; once the schedule
// is exhausted, streams run uncut. Budgets land mid-frame as easily as on
// boundaries — the cut is bytes, not records.
type streamCutter struct {
	inner http.Handler
	mu    sync.Mutex
	cuts  []int64
}

func (c *streamCutter) push(cuts ...int64) {
	c.mu.Lock()
	c.cuts = append(c.cuts, cuts...)
	c.mu.Unlock()
}

func (c *streamCutter) next() (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.cuts) == 0 {
		return 0, false
	}
	n := c.cuts[0]
	c.cuts = c.cuts[1:]
	return n, true
}

func (c *streamCutter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/repl/stream" {
		if budget, ok := c.next(); ok {
			c.inner.ServeHTTP(&cutWriter{ResponseWriter: w, budget: budget}, r)
			return
		}
	}
	c.inner.ServeHTTP(w, r)
}

// cutWriter delivers at most budget bytes, flushes what it truncated to,
// and then aborts the connection — the follower (or its network) dying
// mid-frame, as far as the other side can tell.
type cutWriter struct {
	http.ResponseWriter
	budget int64
}

func (w *cutWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		panic(http.ErrAbortHandler)
	}
	if int64(len(p)) > w.budget {
		w.ResponseWriter.Write(p[:w.budget])
		w.budget = 0
		if f, ok := w.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	w.budget -= int64(len(p))
	return w.ResponseWriter.Write(p)
}

func (w *cutWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestChaosStreamCutAtEveryBoundaryAndMidFrame kills the follower's
// stream at every record boundary of the primary's log and at random
// mid-frame offsets. Each trial is a fresh follower whose first stream
// dies at the cut; it must resume with no lost/duplicated/reordered
// record (the oracle) and converge exactly.
func TestChaosStreamCutAtEveryBoundaryAndMidFrame(t *testing.T) {
	nOps, nRandom := 24, 14
	if testing.Short() {
		nOps, nRandom = 10, 5
	}
	dir := t.TempDir()
	engine, err := kvs.OpenSharded(dir, 1, mkBravo, kvs.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { engine.Close() })
	rng := xrand.NewXorShift64(0xC4A05)
	for i := 0; i < nOps; i++ {
		switch rng.Intn(4) {
		case 0:
			keys := make([]uint64, 2+rng.Intn(5))
			vals := make([][]byte, len(keys))
			for j := range keys {
				keys[j] = rng.Next() % 64
				vals[j] = kvs.EncodeValue(rng.Next())
			}
			engine.MultiPut(keys, vals)
		case 1:
			engine.Delete(rng.Next() % 64)
		default:
			engine.Put(rng.Next()%64, kvs.EncodeValue(rng.Next()))
		}
	}

	// Frame boundaries from the log itself: the byte offsets at which a
	// kill severs the stream exactly between records.
	var cur kvs.ReplCursor
	stream, err := engine.ReplRead(0, &cur, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	var boundaries []int64
	off := int64(0)
	for rest := stream; len(rest) > 0; {
		_, n, derr := kvs.DecodeReplFrame(rest)
		if derr != nil || n == 0 {
			t.Fatalf("reference stream corrupt at %d: %v", off, derr)
		}
		off += int64(n)
		boundaries = append(boundaries, off)
		rest = rest[n:]
	}
	cuts := append([]int64{0}, boundaries...)
	for i := 0; i < nRandom; i++ {
		cuts = append(cuts, int64(rng.Next()%uint64(len(stream))))
	}

	cutter := &streamCutter{}
	ph := &primaryHost{}
	ph.set(engine, func(h http.Handler) http.Handler { cutter.inner = h; return cutter })
	srv := newChaosServer(t, ph)

	extra := uint64(10_000)
	for _, cut := range cuts {
		cutter.push(cut)
		oracle := newLSNOracle(t)
		f := openFollower(t, srv, func(c *Config) {
			c.RetryInterval = 2 * time.Millisecond
			c.OnApply = oracle.hook
		})
		if err := f.WaitCaughtUp(10 * time.Second); err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		// A cut at (or past) the stream's current end only fires when more
		// bytes flow: push one more record through the wire.
		engine.Put(extra, kvs.EncodeValue(extra))
		extra++
		deadline := time.Now().Add(10 * time.Second)
		for f.Stats().Reconnects == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if f.Stats().Reconnects == 0 {
			t.Fatalf("cut at %d never severed the stream", cut)
		}
		if err := f.WaitCaughtUp(10 * time.Second); err != nil {
			t.Fatalf("cut at %d, after reconnect: %v", cut, err)
		}
		requireConverged(t, engine, f.Engine(), "after cut")
		f.Close()
	}
}

// newChaosServer serves ph on a real TCP socket and returns the base URL.
func newChaosServer(t *testing.T, ph *primaryHost) string {
	t.Helper()
	srv := newTestServer(ph)
	t.Cleanup(srv.close)
	return srv.url
}

// TestChaosFollowerPauseResumeAndRestart exercises both recovery shapes:
// Stop/Start keeps the replica and resumes incrementally (no snapshot
// when the log still holds the gap), while Close plus a fresh Open starts
// empty and must bootstrap — after a checkpoint, necessarily via a
// snapshot frame. Writes keep landing throughout.
func TestChaosFollowerPauseResumeAndRestart(t *testing.T) {
	engine, url, _ := startPrimary(t, t.TempDir(), 2, mkBravo)
	for k := uint64(0); k < 64; k++ {
		engine.Put(k, kvs.EncodeValue(k))
	}
	oracle := newLSNOracle(t)
	f := openFollower(t, url, func(c *Config) { c.OnApply = oracle.hook })
	if err := f.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Pause, write through the pause, resume: incremental, no snapshot.
	f.Stop()
	before := oracle.snapshots()
	for k := uint64(64); k < 96; k++ {
		engine.Put(k, kvs.EncodeValue(k))
	}
	frozen := f.Engine().Len() // the replica serves, frozen, while paused
	if frozen == 0 {
		t.Fatal("paused replica lost its state")
	}
	f.Start()
	if err := f.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	requireConverged(t, engine, f.Engine(), "after resume")
	if oracle.snapshots() != before {
		t.Fatal("an incremental resume used a snapshot: the log still held the gap")
	}

	// Full restart after a checkpoint: fresh follower, empty engine, must
	// resnapshot.
	f.Close()
	if err := engine.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	engine.Put(1000, []byte("post-checkpoint"))
	oracle2 := newLSNOracle(t)
	f2 := openFollower(t, url, func(c *Config) { c.OnApply = oracle2.hook })
	if err := f2.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	requireConverged(t, engine, f2.Engine(), "after restart")
	if oracle2.snapshots() == 0 {
		t.Fatal("a restarted follower behind a checkpoint must resnapshot")
	}
}

// TestChaosPrimaryRestartUnderActiveFollower crashes and recovers the
// primary (no Close — recovery replays its WAL), forces checkpoint
// rotation on the way back up, and keeps writing, all under a live
// follower. The follower must ride through every cycle: reconnect,
// resnapshot or resume as the log dictates, and end converged.
func TestChaosPrimaryRestartUnderActiveFollower(t *testing.T) {
	cycles := 3
	if testing.Short() {
		cycles = 2
	}
	dir := t.TempDir()
	engine, err := kvs.OpenSharded(dir, 2, mkBravo, kvs.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	ph := &primaryHost{}
	ph.set(engine, nil)
	srv := newTestServer(ph)
	t.Cleanup(srv.close)

	rng := xrand.NewXorShift64(0xFA11)
	write := func(n int) {
		for i := 0; i < n; i++ {
			engine.Put(rng.Next()%128, kvs.EncodeValue(rng.Next()))
		}
	}
	write(64)
	oracle := newLSNOracle(t)
	f := openFollower(t, srv.url, func(c *Config) { c.OnApply = oracle.hook })
	if err := f.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	for cycle := 0; cycle < cycles; cycle++ {
		write(48)
		// Crash: host down, connections severed, engine abandoned without
		// Close (its records are on disk; recovery must find them).
		ph.set(nil, nil)
		srv.closeConns()
		write(8) // writes that landed before the crash finished killing it
		reopened, err := kvs.OpenSharded(dir, 2, mkBravo, kvs.SyncNone)
		if err != nil {
			t.Fatalf("cycle %d: primary recovery: %v", cycle, err)
		}
		engine = reopened
		// Forced rotation on the way up: followers whose position was
		// pruned must resnapshot; others resume.
		if err := engine.Checkpoint(); err != nil {
			t.Fatalf("cycle %d: checkpoint: %v", cycle, err)
		}
		ph.set(engine, nil)
		write(32)
		if err := f.WaitCaughtUp(15 * time.Second); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		requireConverged(t, engine, f.Engine(), "after primary restart")
	}
	t.Cleanup(func() { engine.Close() })

	// A checkpoint under a live, caught-up stream (rotation with no
	// restart) must also pass unnoticed.
	write(16)
	if err := engine.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	write(16)
	if err := f.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	requireConverged(t, engine, f.Engine(), "after live checkpoint")
}
